// Fixture: every would-be violation below carries a well-formed,
// reasoned suppression, so this file must lint CLEAN (and the honored-
// suppression counter must advance by three).
#include <cstdio>
#include <iostream>

void debug_dump(double mean) {
  printf("mean = %f\n", mean);  // omvlint: allow(stdout-discipline) debug-only dump, never runs under the campaign driver
  // omvlint: allow(stdout-discipline) comment-above form covers the next line
  std::cout << "mean = " << mean << "\n";
  std::fprintf(stdout, "mean = %f\n", mean);  // omvlint: allow(stdout-discipline) fixture exercises the raw-handle match
}
