// Fixture: malformed suppression attempts. Each bad comment must trip
// [suppression] (the escape hatch itself is linted), and the printf they
// fail to cover must still trip [stdout-discipline].
#include <cstdio>

void broken_escapes(double mean) {
  // omvlint: allow(stdout-discipline)
  printf("missing reason above, so this still fires\n");
  // omvlint: allow(no-such-rule) the rule name is unknown
  // omvlint: permit(stdout-discipline) wrong directive verb
  (void)mean;
}
