// Fixture: direct stdout in a harness path. Every line below must trip
// [stdout-discipline] — science output may only flow through
// ctx.print/ctx.emit so capture-replay stays byte-identical.
#include <cstdio>
#include <iostream>

void report_results(double mean) {
  printf("mean = %f\n", mean);               // banned call
  std::cout << "mean = " << mean << "\n";    // banned stream
  std::fprintf(stdout, "mean = %f\n", mean); // banned handle
  std::fprintf(stderr, "log line\n");        // fine: stderr is for logs
}
