// Fixture: range-for over unordered containers on an artifact path. Both
// loops must trip [unordered-iteration] — hash iteration order is
// unspecified, so serialized bytes would differ across libstdc++
// versions (and across runs with hardened hashing).
#include <string>
#include <unordered_map>
#include <unordered_set>

using CellIndex = std::unordered_map<std::string, int>;

std::string serialize(const CellIndex& cells,
                      const std::unordered_set<std::string>& tags) {
  std::string out;
  for (const auto& [name, value] : cells) {  // banned: unordered order
    out += name + "=" + std::to_string(value) + "\n";
  }
  for (const auto& tag : tags) {  // banned: unordered order
    out += tag + "\n";
  }
  return out;
}
