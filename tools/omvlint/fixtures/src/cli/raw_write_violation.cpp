// Fixture: raw (non-atomic) file writes in a crash-safe path. Both sites
// must trip [atomic-writes] — cache/snapshot/artifact bytes commit only
// through core/atomic_file so torn/ENOSPC injection stays meaningful.
#include <cstdio>
#include <fstream>
#include <string>

void save_artifact(const std::string& path, const std::string& bytes) {
  std::ofstream out(path);  // torn file on crash
  out << bytes;
}

void save_marker(const char* path) {
  FILE* f = fopen(path, "w");  // same, C flavor
  if (f) fclose(f);
}
