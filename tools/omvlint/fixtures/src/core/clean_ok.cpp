// Fixture: an in-scope file (src/core/snapshot.* scoping does not cover
// this name, but src/core is walked) using only allowed constructs —
// ordered containers, stderr logging, seed-derived RNG — must produce no
// diagnostics at all.
#include <cstdio>
#include <map>
#include <string>

std::string serialize_sorted(const std::map<std::string, int>& cells) {
  std::string out;
  for (const auto& [name, value] : cells) {  // std::map: ordered, fine
    out += name + "=" + std::to_string(value) + "\n";
  }
  std::fprintf(stderr, "serialized %zu cells\n", cells.size());
  return out;
}
