// Fixture: SIMD intrinsics outside the per-TU kernel files. The include
// and both intrinsic uses must trip [isa-guard] — only batch_avx2.cpp /
// batch_avx512.cpp may contain ISA-specific code, or the baseline build
// faults and runtime dispatch loses its scalar oracle.
#include <immintrin.h>

double sum4(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  __m256d h = _mm256_hadd_pd(v, v);
  double out[4];
  _mm256_storeu_pd(out, h);
  return out[0] + out[2];
}
