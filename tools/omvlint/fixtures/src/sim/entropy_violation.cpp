// Fixture: ambient entropy and wall clocks in the simulator core. Each
// marked line must trip [no-ambient-entropy] — simulator randomness
// derives from run_seed and never from process-ambient sources.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned ambient_seed() {
  std::random_device rd;  // banned: nondeterministic seed
  return rd();
}

long ambient_clock() {
  auto now = std::chrono::system_clock::now();  // banned: wall clock
  (void)now;
  return std::time(nullptr);  // banned: wall clock
}

int ambient_rand() {
  return rand();  // banned: hidden global RNG state
}
