#pragma once
// omvlint — the project's determinism-contract checker.
//
// A deliberately small, libclang-free lint: a C++ tokenizer plus per-rule
// token matchers over the source tree. It does not type-check; every rule
// is a syntactic invariant chosen so that a match is near-certainly a
// violation of the repo's byte-identity contract:
//
//   stdout-discipline    harness science output only via ctx.print/emit
//   atomic-writes        cache/snapshot/artifact writes only through
//                        core/atomic_file
//   no-ambient-entropy   no wall clocks or ambient randomness in the
//                        simulator core (RNG flows from run_seed)
//   unordered-iteration  no range-for over unordered containers on
//                        serialization/fingerprint/artifact paths
//   isa-guard            SIMD intrinsics confined to the per-TU kernel
//                        files batch_avx2.cpp / batch_avx512.cpp
//
// Violations print "file:line: [rule] message". A site is suppressed with
// an explicit, reasoned comment on the same line (or alone on the line
// above):
//
//   // omvlint: allow(<rule>[,<rule>...]) <reason text>
//
// A comment that names omvlint but does not parse to that grammar (or
// names an unknown rule, or omits the reason) is itself a violation of the
// pseudo-rule "suppression", so stale or typo'd escapes can never silently
// disable a check.

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace omv::lint {

/// One violation, anchored to a file position. `file` is the path relative
/// to the lint root using '/' separators — rules are scoped by these
/// relative paths, so fixture trees that mirror the repo layout exercise
/// the same scoping as the real tree.
struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Aggregate outcome of a lint run.
struct LintResult {
  std::vector<Diagnostic> diagnostics;
  std::size_t files_scanned = 0;
  /// Count of would-be violations silenced by a well-formed
  /// `omvlint: allow(...)` comment.
  std::size_t suppressions_honored = 0;
};

/// The checkable rule names, in report order (excludes the "suppression"
/// pseudo-rule, which cannot be allowed away).
const std::vector<std::string>& rule_names();

/// Lints one in-memory translation unit as if it lived at `relpath` under
/// the lint root. The primary entry for tests.
LintResult lint_source(std::string_view relpath, std::string_view content);

/// Lints every C/C++ source file under `root` (skipping build trees, VCS
/// dirs, and omvlint's own fixture corpus).
LintResult lint_tree(const std::filesystem::path& root);

/// "file:line: [rule] message" — the stable diagnostic format asserted by
/// tests and grepped by CI.
std::string format(const Diagnostic& d);

}  // namespace omv::lint
