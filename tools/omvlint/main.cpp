// omvlint CLI: lints a source tree against the determinism contract and
// exits nonzero on any unsuppressed violation. Registered as the
// `omvlint_tree` ctest and the CI lint lane.
//
// Usage:
//   omvlint [--root DIR] [FILE...]   lint FILEs (relative to DIR), or the
//                                    whole tree under DIR when no FILE
//   omvlint --list-rules             print the rule names, one per line

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "omvlint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [FILE...]\n"
               "       %s --list-rules\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const auto& r : omv::lint::rule_names()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    }
    if (std::strcmp(argv[i], "--root") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      root = argv[++i];
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "omvlint: unknown option '%s'\n", argv[i]);
      return usage(argv[0]);
    } else {
      files.emplace_back(argv[i]);
    }
  }

  omv::lint::LintResult result;
  if (files.empty()) {
    result = omv::lint::lint_tree(root);
  } else {
    for (const auto& rel : files) {
      const std::filesystem::path full =
          std::filesystem::path(root) / rel;
      std::ifstream in(full, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "omvlint: cannot read '%s'\n",
                     full.string().c_str());
        return 2;
      }
      std::string content((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
      omv::lint::LintResult one = omv::lint::lint_source(rel, content);
      result.files_scanned += one.files_scanned;
      result.suppressions_honored += one.suppressions_honored;
      for (auto& d : one.diagnostics) {
        result.diagnostics.push_back(std::move(d));
      }
    }
  }

  for (const auto& d : result.diagnostics) {
    std::printf("%s\n", omv::lint::format(d).c_str());
  }
  std::fprintf(stderr,
               "omvlint: %zu file(s) scanned, %zu violation(s), %zu "
               "suppression(s) honored\n",
               result.files_scanned, result.diagnostics.size(),
               result.suppressions_honored);
  return result.diagnostics.empty() ? 0 : 1;
}
