#include "omvlint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <unordered_set>

namespace omv::lint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,      // identifiers and keywords
  kPunct,      // operators/punctuation ("::" and "->" are single tokens)
  kNumber,     // pp-numbers (kept so prev-token context checks see them)
  kDirective,  // one whole preprocessor logical line, continuations joined
};

struct Token {
  TokKind kind;
  std::string text;
  std::size_t line = 0;
};

/// A comment mentioning omvlint, either a parsed allow() or malformed.
struct SuppressComment {
  std::size_t line = 0;
  bool alone_on_line = false;  // nothing but the comment before it
  bool well_formed = false;
  std::set<std::string> rules;  // rules named in allow(...)
  std::string error;            // set when !well_formed
};

struct TokenizedFile {
  std::vector<Token> tokens;
  std::vector<SuppressComment> suppressions;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

bool known_rule(std::string_view name);

/// Parses a comment whose trimmed body starts with the "omvlint:" marker
/// (prose that merely mentions the tool is never a suppression attempt).
/// Grammar after the marker: allow(<rule>[,<rule>...]) <non-empty reason>
void parse_omvlint_comment(std::string_view body, std::size_t line,
                           bool alone_on_line,
                           std::vector<SuppressComment>& out) {
  const std::string_view trimmed = trim(body);
  constexpr std::string_view kMarker = "omvlint:";
  if (trimmed.substr(0, kMarker.size()) != kMarker) return;
  SuppressComment sc;
  sc.line = line;
  sc.alone_on_line = alone_on_line;
  std::string_view rest = trim(trimmed.substr(kMarker.size()));
  auto malformed = [&](std::string why) {
    sc.well_formed = false;
    sc.error = std::move(why);
    out.push_back(std::move(sc));
  };
  if (rest.substr(0, 5) != "allow") {
    return malformed("only 'allow(<rule>) <reason>' is a valid directive");
  }
  rest = trim(rest.substr(5));
  if (rest.empty() || rest.front() != '(') {
    return malformed("missing '(' after allow");
  }
  const auto close = rest.find(')');
  if (close == std::string_view::npos) {
    return malformed("missing ')' after allow(");
  }
  std::string_view list = rest.substr(1, close - 1);
  std::string_view reason = trim(rest.substr(close + 1));
  while (!list.empty()) {
    const auto comma = list.find(',');
    const std::string_view name =
        trim(comma == std::string_view::npos ? list : list.substr(0, comma));
    if (name.empty() || !known_rule(name)) {
      return malformed("unknown rule '" + std::string(name) +
                       "' in allow()");
    }
    sc.rules.insert(std::string(name));
    if (comma == std::string_view::npos) break;
    list = list.substr(comma + 1);
  }
  if (sc.rules.empty()) {
    return malformed("allow() must name at least one rule");
  }
  if (reason.empty()) {
    return malformed("suppression needs a reason after allow(...)");
  }
  sc.well_formed = true;
  out.push_back(std::move(sc));
}

/// Tokenizes one file: skips comments/strings, folds preprocessor logical
/// lines into single kDirective tokens, and records omvlint comments.
TokenizedFile tokenize(std::string_view src) {
  TokenizedFile out;
  std::size_t i = 0;
  std::size_t line = 1;
  bool line_has_token = false;  // a non-comment token appeared on this line
  const std::size_t n = src.size();

  auto newline = [&] {
    ++line;
    line_has_token = false;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      parse_omvlint_comment(src.substr(start, i - start), line,
                            !line_has_token, out.suppressions);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start_line = line;
      const bool alone = !line_has_token;
      const std::size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') newline();
        ++i;
      }
      const std::size_t end = std::min(i, n);
      i = std::min(i + 2, n);
      parse_omvlint_comment(src.substr(start, end - start), start_line,
                            alone, out.suppressions);
      continue;
    }
    // Preprocessor directive: '#' as first token of the line; consume the
    // logical line including backslash continuations.
    if (c == '#' && !line_has_token) {
      const std::size_t start_line = line;
      std::string text;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          newline();
          i += 2;
          text += ' ';
          continue;
        }
        if (src[i] == '\n') break;
        // Strip comments inside the directive line.
        if (src[i] == '/' && i + 1 < n && src[i + 1] == '/') {
          while (i < n && src[i] != '\n') ++i;
          break;
        }
        if (src[i] == '/' && i + 1 < n && src[i + 1] == '*') {
          i += 2;
          while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
            if (src[i] == '\n') newline();
            ++i;
          }
          i = std::min(i + 2, n);
          text += ' ';
          continue;
        }
        text += src[i];
        ++i;
      }
      out.tokens.push_back({TokKind::kDirective, std::move(text),
                            start_line});
      line_has_token = true;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n') delim += src[j++];
      const std::string closer = ")" + delim + "\"";
      const auto end = src.find(closer, j);
      for (std::size_t k = i; k < std::min(end, n); ++k) {
        if (src[k] == '\n') newline();
      }
      i = end == std::string_view::npos ? n : end + closer.size();
      line_has_token = true;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
        } else if (src[i] == '\n') {
          newline();  // unterminated literal: resync at the newline
          break;
        }
        ++i;
      }
      if (i < n && src[i] == quote) ++i;
      line_has_token = true;
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back(
          {TokKind::kIdent, std::string(src.substr(i, j - i)), line});
      i = j;
      line_has_token = true;
      continue;
    }
    // Number (pp-number; precise shape does not matter to any rule).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.')) ++j;
      out.tokens.push_back(
          {TokKind::kNumber, std::string(src.substr(i, j - i)), line});
      i = j;
      line_has_token = true;
      continue;
    }
    // Punctuation; "::" and "->" matter as single tokens for context.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
    } else if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line});
      i += 2;
    } else {
      out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
      ++i;
    }
    line_has_token = true;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Path scoping helpers
// ---------------------------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool is_harness_allowlisted(std::string_view p) {
  // The two files the contract names as legitimate direct-stdout sites:
  // the harness scaffolding's ad-hoc helpers and the standalone driver
  // that owns the process's stdout.
  return p == "bench/harness.hpp" || p == "src/cli/standalone_main.cpp";
}

bool in_stdout_scope(std::string_view p) {
  return (starts_with(p, "bench/") || starts_with(p, "src/bench_suite/")) &&
         !is_harness_allowlisted(p);
}

bool in_atomic_scope(std::string_view p) {
  if (p == "src/core/atomic_file.cpp" || p == "src/core/atomic_file.hpp") {
    return false;  // the one module allowed to touch raw file APIs
  }
  return starts_with(p, "src/cli/") || starts_with(p, "src/freqlog/") ||
         p == "src/core/snapshot.cpp" || p == "src/core/snapshot.hpp";
}

bool in_entropy_scope(std::string_view p) {
  return starts_with(p, "src/sim/") || starts_with(p, "src/topo/") ||
         starts_with(p, "src/omp_model/");
}

bool in_unordered_scope(std::string_view p) {
  // Serialization / fingerprint / artifact paths: anywhere bytes that end
  // up in a cache entry, snapshot, JSON artifact, trace file, or spec hash
  // are produced in iteration order.
  static const std::unordered_set<std::string_view> files = {
      "src/core/snapshot.cpp",    "src/core/snapshot.hpp",
      "src/core/json_writer.cpp", "src/core/json_writer.hpp",
      "src/core/trace_io.cpp",    "src/core/trace_io.hpp",
      "src/core/spec_hash.cpp",   "src/core/spec_hash.hpp",
      "src/core/run_matrix.cpp",  "src/core/run_matrix.hpp",
  };
  return starts_with(p, "src/cli/") || starts_with(p, "src/scenario/") ||
         starts_with(p, "src/freqlog/") || files.count(p) != 0;
}

bool is_isa_kernel_tu(std::string_view p) {
  return p == "src/sim/batch_avx2.cpp" || p == "src/sim/batch_avx512.cpp";
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

constexpr std::string_view kStdout = "stdout-discipline";
constexpr std::string_view kAtomic = "atomic-writes";
constexpr std::string_view kEntropy = "no-ambient-entropy";
constexpr std::string_view kUnordered = "unordered-iteration";
constexpr std::string_view kIsa = "isa-guard";
constexpr std::string_view kSuppression = "suppression";

bool known_rule(std::string_view name) {
  return name == kStdout || name == kAtomic || name == kEntropy ||
         name == kUnordered || name == kIsa;
}

struct Emitter {
  std::string_view file;
  std::vector<Diagnostic>* out;
  void operator()(std::size_t line, std::string_view rule,
                  std::string message) const {
    out->push_back(
        {std::string(file), line, std::string(rule), std::move(message)});
  }
};

/// True when tokens[i] is a function-call use: next token is '(' and the
/// previous token is not a member access (so `obj.time(...)` never fires).
bool is_free_call(const std::vector<Token>& toks, std::size_t i) {
  const bool called =
      i + 1 < toks.size() && toks[i + 1].text == "(";
  const bool member =
      i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
  return called && !member;
}

void check_stdout_discipline(std::string_view path,
                             const std::vector<Token>& toks,
                             const Emitter& emit) {
  if (!in_stdout_scope(path)) return;
  static const std::unordered_set<std::string_view> banned_calls = {
      "printf", "vprintf", "puts", "putchar", "putc_unlocked"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (banned_calls.count(t.text) != 0 && is_free_call(toks, i)) {
      emit(t.line, kStdout,
           t.text + " writes to stdout directly; harness science output "
                    "must flow through ctx.print/ctx.emit so the cell "
                    "scheduler's capture-replay stays byte-identical");
    } else if (t.text == "cout" || t.text == "stdout") {
      emit(t.line, kStdout,
           "direct use of " + t.text +
               " in a harness path; route output through "
               "ctx.print/ctx.emit (stderr is fine for logs)");
    }
  }
}

void check_atomic_writes(std::string_view path,
                         const std::vector<Token>& toks,
                         const Emitter& emit) {
  if (!in_atomic_scope(path)) return;
  static const std::unordered_set<std::string_view> banned = {
      "ofstream", "fopen", "freopen", "fwrite"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || banned.count(t.text) == 0) continue;
    emit(t.line, kAtomic,
         t.text + " performs a raw (non-atomic) file write in a "
                  "crash-safe path; commit bytes through "
                  "core/atomic_file::atomic_write_file so named-site "
                  "torn/ENOSPC injection and concurrent readers stay "
                  "sound");
  }
}

void check_ambient_entropy(std::string_view path,
                           const std::vector<Token>& toks,
                           const Emitter& emit) {
  if (!in_entropy_scope(path)) return;
  static const std::unordered_set<std::string_view> banned_idents = {
      "random_device", "system_clock", "high_resolution_clock",
      "steady_clock",  "srand",        "drand48",
      "lrand48",       "mrand48",      "timespec_get",
      "gettimeofday"};
  static const std::unordered_set<std::string_view> banned_calls = {
      "rand", "time"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    // "clock" is core simulator vocabulary (SimTeam's simulated clocks),
    // so only the ::-qualified libc form is matched for it.
    const bool qualified_clock =
        t.text == "clock" && i > 0 && toks[i - 1].text == "::" &&
        i + 1 < toks.size() && toks[i + 1].text == "(";
    const bool hit = banned_idents.count(t.text) != 0 ||
                     (banned_calls.count(t.text) != 0 &&
                      is_free_call(toks, i)) ||
                     qualified_clock;
    if (!hit) continue;
    emit(t.line, kEntropy,
         t.text + " is ambient entropy/wall-clock in the simulator core; "
                  "all randomness must derive from run_seed "
                  "(core/rng.hpp) and clocks belong only in bench timing "
                  "and supervisor backoff");
  }
}

/// Skips a balanced template argument list starting at toks[i] == "<".
/// Returns the index one past the closing ">", or i when not a "<".
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t i) {
  if (i >= toks.size() || toks[i].text != "<") return i;
  std::size_t depth = 0;
  while (i < toks.size()) {
    const std::string& s = toks[i].text;
    if (s == "<") {
      ++depth;
    } else if (s == ">") {
      if (--depth == 0) return i + 1;
    } else if (s == ">>") {  // not produced by this tokenizer, but safe
      if (depth <= 2) return i + 1;
      depth -= 2;
    } else if (s == ";") {
      return i;  // malformed; bail out
    }
    ++i;
  }
  return i;
}

void check_unordered_iteration(std::string_view path,
                               const std::vector<Token>& toks,
                               const Emitter& emit) {
  if (!in_unordered_scope(path)) return;
  static const std::unordered_set<std::string_view> unordered_types = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};

  // Pass 1: names bound to unordered containers — direct declarations
  // (`std::unordered_map<K,V> name`), type aliases (`using T = ...
  // unordered_map ...;`) and declarations through those aliases.
  std::unordered_set<std::string> aliases;
  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (toks[i].text == "using" && i + 2 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdent && toks[i + 2].text == "=") {
      for (std::size_t j = i + 3;
           j < toks.size() && toks[j].text != ";"; ++j) {
        if (unordered_types.count(toks[j].text) != 0) {
          aliases.insert(toks[i + 1].text);
          break;
        }
      }
      continue;
    }
    const bool unordered_here =
        unordered_types.count(toks[i].text) != 0 ||
        aliases.count(toks[i].text) != 0;
    if (!unordered_here) continue;
    std::size_t j = skip_template_args(toks, i + 1);
    // Skip ref/pointer/const qualifiers between type and name.
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      names.insert(toks[j].text);
    }
  }

  // Pass 2: range-for statements whose range expression names one of the
  // collected identifiers.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
    std::size_t depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      const std::string& s = toks[j].text;
      if (s == "(") {
        ++depth;
      } else if (s == ")") {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (s == ":" && depth == 1 && colon == 0) {
        colon = j;
      } else if (s == ";" && depth == 1) {
        colon = 0;  // classic for, not a range-for
        break;
      }
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind == TokKind::kIdent &&
          names.count(toks[j].text) != 0) {
        emit(toks[i].line, kUnordered,
             "range-for over unordered container '" + toks[j].text +
                 "' on a serialization/fingerprint/artifact path; "
                 "iteration order is unspecified across libstdc++ "
                 "versions — copy keys into a sorted container first");
        break;
      }
    }
  }
}

void check_isa_guard(std::string_view path, const std::vector<Token>& toks,
                     const Emitter& emit) {
  if (is_isa_kernel_tu(path)) return;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kDirective) {
      if (t.text.find("immintrin.h") != std::string::npos ||
          t.text.find("x86intrin.h") != std::string::npos) {
        emit(t.line, kIsa,
             "intrinsics header included outside the per-TU kernel "
             "files; runtime ISA dispatch requires SIMD code confined "
             "to batch_avx2.cpp/batch_avx512.cpp");
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    const bool simd =
        starts_with(t.text, "_mm_") || starts_with(t.text, "_mm256_") ||
        starts_with(t.text, "_mm512_") || starts_with(t.text, "__m128") ||
        starts_with(t.text, "__m256") || starts_with(t.text, "__m512") ||
        starts_with(t.text, "__builtin_ia32_");
    if (simd) {
      emit(t.line, kIsa,
           "SIMD intrinsic '" + t.text +
               "' outside batch_avx2.cpp/batch_avx512.cpp; a "
               "baseline-ISA build would fault here and the scalar "
               "oracle could diverge");
    }
  }
}

// ---------------------------------------------------------------------------
// Suppression application + tree walking
// ---------------------------------------------------------------------------

struct FileLint {
  std::vector<Diagnostic> kept;
  std::size_t suppressions_honored = 0;
};

FileLint lint_tokens(std::string_view relpath, const TokenizedFile& tf) {
  std::vector<Diagnostic> raw;
  const Emitter emit{relpath, &raw};
  check_stdout_discipline(relpath, tf.tokens, emit);
  check_atomic_writes(relpath, tf.tokens, emit);
  check_ambient_entropy(relpath, tf.tokens, emit);
  check_unordered_iteration(relpath, tf.tokens, emit);
  check_isa_guard(relpath, tf.tokens, emit);

  FileLint out;
  for (const SuppressComment& sc : tf.suppressions) {
    if (!sc.well_formed) {
      out.kept.push_back({std::string(relpath), sc.line,
                          std::string(kSuppression),
                          "malformed omvlint comment (" + sc.error +
                              "); grammar: // omvlint: allow(<rule>) "
                              "<reason>"});
    }
  }
  for (Diagnostic& d : raw) {
    bool suppressed = false;
    for (const SuppressComment& sc : tf.suppressions) {
      if (!sc.well_formed || sc.rules.count(d.rule) == 0) continue;
      // Same-line comments cover their line; a comment alone on its line
      // covers the next line.
      if (sc.line == d.line ||
          (sc.alone_on_line && sc.line + 1 == d.line)) {
        suppressed = true;
        break;
      }
    }
    if (suppressed) {
      ++out.suppressions_honored;
    } else {
      out.kept.push_back(std::move(d));
    }
  }
  std::stable_sort(out.kept.begin(), out.kept.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return out;
}

bool lintable_extension(const std::filesystem::path& p) {
  static const std::unordered_set<std::string> exts = {
      ".cpp", ".cc", ".cxx", ".hpp", ".hh", ".hxx", ".h", ".inl"};
  return exts.count(p.extension().string()) != 0;
}

bool skip_directory(const std::string& name) {
  return name == ".git" || name == "fixtures" ||
         starts_with(name, "build") || name == "CMakeFiles" ||
         name == "third_party";
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      std::string(kStdout), std::string(kAtomic), std::string(kEntropy),
      std::string(kUnordered), std::string(kIsa)};
  return names;
}

LintResult lint_source(std::string_view relpath, std::string_view content) {
  LintResult r;
  r.files_scanned = 1;
  FileLint fl = lint_tokens(relpath, tokenize(content));
  r.diagnostics = std::move(fl.kept);
  r.suppressions_honored = fl.suppressions_honored;
  return r;
}

LintResult lint_tree(const std::filesystem::path& root) {
  LintResult r;
  std::vector<std::filesystem::path> files;
  std::filesystem::recursive_directory_iterator it(
      root, std::filesystem::directory_options::skip_permission_denied);
  for (const auto& entry : it) {
    if (entry.is_directory()) {
      if (skip_directory(entry.path().filename().string())) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (entry.is_regular_file() && lintable_extension(entry.path())) {
      files.push_back(entry.path());
    }
  }
  // Deterministic report order regardless of directory enumeration order.
  std::vector<std::pair<std::string, std::filesystem::path>> rel;
  rel.reserve(files.size());
  for (const auto& f : files) {
    rel.emplace_back(
        std::filesystem::relative(f, root).generic_string(), f);
  }
  std::sort(rel.begin(), rel.end());

  for (const auto& [relpath, full] : rel) {
    std::ifstream in(full, std::ios::binary);
    if (!in) continue;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    ++r.files_scanned;
    FileLint fl = lint_tokens(relpath, tokenize(content));
    r.suppressions_honored += fl.suppressions_honored;
    for (Diagnostic& d : fl.kept) r.diagnostics.push_back(std::move(d));
  }
  return r;
}

std::string format(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

}  // namespace omv::lint
