#!/usr/bin/env sh
# Runs the checked-in .clang-tidy baseline over the project's own sources
# using the compile database a CMake configure always exports
# (CMAKE_EXPORT_COMPILE_COMMANDS=ON is unconditional).
#
#   tools/run_clang_tidy.sh [BUILD_DIR]     default BUILD_DIR: build
#
# Exits 0 with a notice when clang-tidy is not installed, so the script is
# safe to call from environments (and CI lanes) that only carry gcc.

set -eu

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "run_clang_tidy: clang-tidy not installed; skipping (install it" \
         "and re-run for the bugprone/concurrency/performance baseline)"
    exit 0
fi

db="$repo_root/$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
    echo "run_clang_tidy: $db not found; configure first:" \
         "cmake -B $build_dir -S ." >&2
    exit 2
fi

# Project sources only: everything the compile database knows about under
# src/, tools/ and bench/ (tests are gtest-macro heavy and third-party
# noise dominates; extend the filter once the suites are tidy-clean).
files=$(python3 - "$db" "$repo_root" <<'EOF'
import json, sys
db, root = sys.argv[1], sys.argv[2]
seen = []
for entry in json.load(open(db)):
    f = entry["file"]
    rel = f[len(root) + 1:] if f.startswith(root + "/") else f
    if rel.startswith(("src/", "tools/", "bench/")) and rel not in seen:
        seen.append(rel)
print("\n".join(seen))
EOF
)

status=0
for f in $files; do
    echo "== clang-tidy $f"
    clang-tidy -p "$repo_root/$build_dir" --quiet "$repo_root/$f" || status=1
done
exit $status
