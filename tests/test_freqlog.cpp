// Tests for freqlog: trace analysis, simulator sampling, background logger.

#include "freqlog/logger.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace omv::freqlog {
namespace {

FreqTrace make_trace(std::initializer_list<double> ghz_values) {
  FreqTrace t;
  double time = 0.0;
  for (double g : ghz_values) {
    t.add({time, 0, g});
    time += 0.1;
  }
  return t;
}

TEST(FreqTrace, FractionBelow) {
  const auto t = make_trace({3.7, 3.7, 3.0, 2.9});
  // Threshold 95% of 3.7 = 3.515: two samples below.
  EXPECT_DOUBLE_EQ(t.fraction_below(3.7, 0.95), 0.5);
  EXPECT_DOUBLE_EQ(FreqTrace{}.fraction_below(3.7, 0.95), 0.0);
}

TEST(FreqTrace, PerCoreFmaxThresholds) {
  // Core 0 is a 3.7 GHz P-core, core 1 a 2.6 GHz E-core. The E-core
  // cruising at its own fmax must not count as a dip; a genuine E-core
  // dip must.
  FreqTrace t;
  t.add({0.0, 0, 3.7});
  t.add({0.0, 1, 2.6});
  t.add({0.1, 0, 3.0});   // P dip
  t.add({0.1, 1, 2.0});   // E dip
  const std::vector<double> fmax{3.7, 2.6};
  EXPECT_DOUBLE_EQ(t.fraction_below(fmax, 0.95), 0.5);
  EXPECT_EQ(t.episode_count(fmax, 0.95), 2u);
  // The machine-wide threshold would miscount the healthy E sample.
  EXPECT_DOUBLE_EQ(t.fraction_below(3.7, 0.95), 0.75);
  // Uniform table == scalar overload, bit for bit.
  const auto u = make_trace({3.7, 3.7, 3.0, 2.9});
  EXPECT_DOUBLE_EQ(u.fraction_below(std::vector<double>{3.7}, 0.95),
                   u.fraction_below(3.7, 0.95));
  // Cores beyond the table are never below.
  FreqTrace beyond;
  beyond.add({0.0, 5, 0.5});
  EXPECT_DOUBLE_EQ(beyond.fraction_below(fmax, 0.95), 0.0);
  EXPECT_EQ(beyond.episode_count(fmax, 0.95), 0u);
}

TEST(FreqTrace, Extremes) {
  const auto t = make_trace({3.0, 3.5, 2.5});
  const auto e = t.extremes();
  EXPECT_DOUBLE_EQ(e.min, 2.5);
  EXPECT_DOUBLE_EQ(e.max, 3.5);
  EXPECT_NEAR(e.mean, 3.0, 1e-12);
}

TEST(FreqTrace, EpisodeCountPerCore) {
  FreqTrace t;
  // Core 0: high, low, low, high, low -> 2 episodes below threshold.
  for (double g : {3.7, 2.0, 2.0, 3.7, 2.0}) t.add({0.0, 0, g});
  // Core 1: always high -> 0 episodes.
  for (double g : {3.7, 3.7}) t.add({0.0, 1, g});
  EXPECT_EQ(t.episode_count(3.7, 0.9), 2u);
}

TEST(FreqTrace, Append) {
  auto a = make_trace({3.0});
  const auto b = make_trace({2.0, 1.0});
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
}

TEST(SimFreqReader, SamplesModel) {
  topo::Machine m = topo::Machine::vera();
  sim::FreqModel model(m, sim::FreqConfig::flat());
  model.begin_run(1);
  SimFreqReader reader(model, m.n_cores());
  EXPECT_EQ(reader.n_cores(), 32u);
  reader.set_time(1.0);
  const auto g = reader.read_ghz(0);
  ASSERT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(*g, m.max_ghz());
}

TEST(SampleSim, GridSampling) {
  topo::Machine m = topo::Machine::vera();
  sim::FreqModel model(m, sim::FreqConfig::flat());
  model.begin_run(1);
  SimFreqReader reader(model, m.n_cores());
  const auto trace = sample_sim(reader, 0.0, 1.0, 0.1);
  // 10 time points x 32 cores.
  EXPECT_EQ(trace.size(), 320u);
  EXPECT_DOUBLE_EQ(trace.extremes().min, m.max_ghz());
}

TEST(SampleSim, ZeroIntervalSafe) {
  topo::Machine m = topo::Machine::vera();
  sim::FreqModel model(m, sim::FreqConfig::flat());
  SimFreqReader reader(model, m.n_cores());
  EXPECT_EQ(sample_sim(reader, 0.0, 1.0, 0.0).size(), 0u);
}

TEST(SampleSim, DetectsSimulatedDips) {
  // The Fig. 6 pipeline: cross-NUMA activity -> dips -> nonzero
  // fraction_below.
  topo::Machine m = topo::Machine::vera();
  sim::FreqModel model(m, sim::FreqConfig::vera_dippy());
  model.begin_run(3);
  model.set_activity_domains(2);
  SimFreqReader reader(model, m.n_cores());
  const auto trace = sample_sim(reader, 0.0, 60.0, 0.05);
  EXPECT_GT(trace.fraction_below(m.max_ghz(), 0.95), 0.0);
  EXPECT_GT(trace.episode_count(m.max_ghz(), 0.95), 0u);
}

TEST(SysfsFreqReader, GracefulWhenUnavailable) {
  SysfsFreqReader reader;
  // Must not crash; may or may not be available in the CI container.
  if (reader.available() && reader.n_cores() > 0) {
    const auto g = reader.read_ghz(0);
    if (g) {
      EXPECT_GT(*g, 0.0);
    }
  } else {
    SUCCEED();
  }
}

TEST(BackgroundLogger, CollectsSamplesAndStops) {
  topo::Machine m = topo::Machine::vera();
  sim::FreqModel model(m, sim::FreqConfig::flat());
  model.begin_run(1);
  SimFreqReader reader(model, 4);
  BackgroundLogger logger(reader, 0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto trace = logger.stop();
  EXPECT_GT(trace.size(), 0u);
  // Second stop is idempotent.
  const auto again = logger.stop();
  EXPECT_EQ(again.size(), trace.size());
}

TEST(BackgroundLogger, PinnedLoggerStillWorks) {
  topo::Machine m = topo::Machine::vera();
  sim::FreqModel model(m, sim::FreqConfig::flat());
  model.begin_run(1);
  SimFreqReader reader(model, 2);
  BackgroundLogger logger(reader, 0.001, /*logger_cpu=*/0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GT(logger.stop().size(), 0u);
}

}  // namespace
}  // namespace omv::freqlog
