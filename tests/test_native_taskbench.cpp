// Tests for the native taskbench backend (tiny workloads; semantics only).

#include <gtest/gtest.h>

#include "bench_suite/native.hpp"

namespace omv::bench {
namespace {

NativeConfig tiny() {
  NativeConfig cfg;
  cfg.n_threads = std::min<std::size_t>(2, native_max_threads());
  return cfg;
}

EpccParams tiny_params() {
  auto p = EpccParams::syncbench();
  p.delay_us = 0.5;
  return p;
}

TEST(NativeTaskBench, RejectsZeroThreads) {
  NativeConfig cfg;
  cfg.n_threads = 0;
  EXPECT_THROW((NativeTaskBench{cfg}), std::invalid_argument);
}

TEST(NativeTaskBench, ParallelGenerationRuns) {
  NativeTaskBench tb(tiny(), tiny_params());
  const double us = tb.parallel_generation_rep_us(64);
  EXPECT_GT(us, 0.0);
}

TEST(NativeTaskBench, MasterGenerationRuns) {
  NativeTaskBench tb(tiny(), tiny_params());
  const double us = tb.master_generation_rep_us(128);
  EXPECT_GT(us, 0.0);
}

TEST(NativeTaskBench, WorkScalesWithTaskCount) {
  NativeTaskBench tb(tiny(), tiny_params());
  double small = 1e300;
  double large = 1e300;
  for (int i = 0; i < 3; ++i) {
    small = std::min(small, tb.master_generation_rep_us(64));
    large = std::min(large, tb.master_generation_rep_us(640));
  }
  EXPECT_GT(large, small * 3.0);
}

TEST(NativeTaskBench, UsableInExperimentProtocol) {
  NativeTaskBench tb(tiny(), tiny_params());
  ExperimentSpec spec;
  spec.runs = 2;
  spec.reps = 3;
  spec.warmup = 1;
  const auto m = run_experiment(spec, [&](const RepContext&) {
    return tb.parallel_generation_rep_us(32);
  });
  EXPECT_EQ(m.runs(), 2u);
  EXPECT_GT(m.grand_mean(), 0.0);
}

}  // namespace
}  // namespace omv::bench
