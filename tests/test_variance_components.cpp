// Unit tests for core/variance_components: the between-run vs within-run
// decomposition at the heart of the paper's run-to-run analysis.

#include "core/variance_components.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.hpp"

namespace omv::stats {
namespace {

TEST(VarianceComponents, DegenerateInputs) {
  EXPECT_EQ(decompose_variance({}).icc, 0.0);
  const std::vector<std::vector<double>> one = {{1.0, 2.0}};
  EXPECT_EQ(decompose_variance(one).icc, 0.0);
}

TEST(VarianceComponents, SkipsEmptyGroups) {
  const std::vector<std::vector<double>> g = {
      {1.0, 2.0}, {}, {1.5, 2.5}, {}};
  const auto vc = decompose_variance(g);
  EXPECT_GT(vc.var_within, 0.0);
}

TEST(VarianceComponents, PureWithinNoise) {
  // All runs identical in distribution: ICC should be near zero.
  Rng rng(1);
  std::vector<std::vector<double>> groups;
  for (int r = 0; r < 10; ++r) {
    std::vector<double> g;
    for (int k = 0; k < 100; ++k) g.push_back(rng.normal(50.0, 2.0));
    groups.push_back(std::move(g));
  }
  const auto vc = decompose_variance(groups);
  EXPECT_LT(vc.icc, 0.15);
  EXPECT_GT(vc.p_value, 0.001);
  EXPECT_NEAR(vc.grand_mean, 50.0, 0.5);
  EXPECT_NEAR(vc.var_within, 4.0, 1.0);
}

TEST(VarianceComponents, RunLevelShiftDominates) {
  // One slow run (Table 2's run 9): between-run variance appears.
  Rng rng(2);
  std::vector<std::vector<double>> groups;
  for (int r = 0; r < 10; ++r) {
    std::vector<double> g;
    const double offset = (r == 8) ? 30.0 : 0.0;
    for (int k = 0; k < 100; ++k) {
      g.push_back(100.0 + offset + rng.normal(0.0, 0.5));
    }
    groups.push_back(std::move(g));
  }
  const auto vc = decompose_variance(groups);
  EXPECT_GT(vc.icc, 0.8);
  EXPECT_LT(vc.p_value, 1e-6);
  EXPECT_GT(vc.var_between, vc.var_within);
}

TEST(VarianceComponents, UnequalGroupSizes) {
  Rng rng(3);
  std::vector<std::vector<double>> groups;
  for (int r = 0; r < 6; ++r) {
    std::vector<double> g;
    for (int k = 0; k < 20 + 10 * r; ++k) g.push_back(rng.normal(10.0, 1.0));
    groups.push_back(std::move(g));
  }
  const auto vc = decompose_variance(groups);
  EXPECT_GE(vc.var_between, 0.0);
  EXPECT_GT(vc.var_within, 0.0);
  EXPECT_GE(vc.icc, 0.0);
  EXPECT_LE(vc.icc, 1.0);
}

TEST(VarianceComponents, ZeroWithinVarianceDistinctMeans) {
  const std::vector<std::vector<double>> g = {{1.0, 1.0}, {2.0, 2.0}};
  const auto vc = decompose_variance(g);
  EXPECT_EQ(vc.p_value, 0.0);
  EXPECT_GT(vc.var_between, 0.0);
}

TEST(VarianceComponents, AllConstant) {
  const std::vector<std::vector<double>> g = {{5.0, 5.0}, {5.0, 5.0}};
  const auto vc = decompose_variance(g);
  EXPECT_EQ(vc.var_between, 0.0);
  EXPECT_EQ(vc.var_within, 0.0);
  EXPECT_EQ(vc.icc, 0.0);
}

TEST(VarianceComponents, NanObservationPoisonsEveryField) {
  // Regression: NaN sums used to flow into `ms_within > 0.0` (false for
  // NaN) and return a plausible-looking f=0 / p=1 verdict.
  const std::vector<std::vector<double>> g{
      {1.0, 2.0, 3.0},
      {4.0, std::numeric_limits<double>::quiet_NaN(), 6.0}};
  const auto vc = decompose_variance(g);
  EXPECT_TRUE(std::isnan(vc.grand_mean));
  EXPECT_TRUE(std::isnan(vc.var_between));
  EXPECT_TRUE(std::isnan(vc.var_within));
  EXPECT_TRUE(std::isnan(vc.icc));
  EXPECT_TRUE(std::isnan(vc.f_statistic));
  EXPECT_TRUE(std::isnan(vc.p_value));
}

TEST(VarianceComponents, SingleElementGroupsAreDegenerate) {
  // Two one-element groups: no within-group degrees of freedom.
  const std::vector<std::vector<double>> g{{1.0}, {2.0}};
  const auto vc = decompose_variance(g);
  EXPECT_EQ(vc.var_between, 0.0);
  EXPECT_EQ(vc.var_within, 0.0);
  EXPECT_EQ(vc.f_statistic, 0.0);
  EXPECT_EQ(vc.p_value, 1.0);
}

}  // namespace
}  // namespace omv::stats
