// Unit tests for topo/topology: the machine model and platform presets.

#include "topo/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace omv::topo {
namespace {

TEST(Machine, DardelGeometry) {
  const auto m = Machine::dardel();
  EXPECT_EQ(m.name(), "dardel");
  EXPECT_EQ(m.n_threads(), 256u);
  EXPECT_EQ(m.n_cores(), 128u);
  EXPECT_EQ(m.n_numa(), 8u);
  EXPECT_EQ(m.n_sockets(), 2u);
  EXPECT_EQ(m.smt_per_core(), 2u);
  EXPECT_DOUBLE_EQ(m.base_ghz(), 2.25);
  EXPECT_DOUBLE_EQ(m.max_ghz(), 3.4);
}

TEST(Machine, VeraGeometry) {
  const auto m = Machine::vera();
  EXPECT_EQ(m.n_threads(), 32u);
  EXPECT_EQ(m.n_cores(), 32u);
  EXPECT_EQ(m.n_numa(), 2u);
  EXPECT_EQ(m.n_sockets(), 2u);
  EXPECT_EQ(m.smt_per_core(), 1u);
  EXPECT_DOUBLE_EQ(m.max_ghz(), 3.7);
}

TEST(Machine, DardelLinuxSmtNumbering) {
  // Linux convention: os_ids 0..127 are the first siblings, 128..255 the
  // second siblings of cores 0..127.
  const auto m = Machine::dardel();
  EXPECT_EQ(m.thread(0).core, 0u);
  EXPECT_EQ(m.thread(0).smt_index, 0u);
  EXPECT_EQ(m.thread(128).core, 0u);
  EXPECT_EQ(m.thread(128).smt_index, 1u);
  EXPECT_EQ(m.thread(127).core, 127u);
  EXPECT_EQ(m.thread(255).core, 127u);
}

TEST(Machine, DardelNumaLayout) {
  const auto m = Machine::dardel();
  // 16 cores per NUMA domain, 4 domains per socket.
  EXPECT_EQ(m.thread(0).numa, 0u);
  EXPECT_EQ(m.thread(15).numa, 0u);
  EXPECT_EQ(m.thread(16).numa, 1u);
  EXPECT_EQ(m.thread(63).numa, 3u);
  EXPECT_EQ(m.thread(64).numa, 4u);
  EXPECT_EQ(m.thread(64).socket, 1u);
  EXPECT_EQ(m.thread(63).socket, 0u);
}

TEST(Machine, SiblingLookup) {
  const auto m = Machine::dardel();
  EXPECT_EQ(m.sibling(0), 128u);
  EXPECT_EQ(m.sibling(128), 0u);
  const auto v = Machine::vera();
  EXPECT_FALSE(v.sibling(0).has_value());
}

TEST(Machine, CoreAndNumaSets) {
  const auto m = Machine::dardel();
  EXPECT_EQ(m.core_threads(0).to_string(), "0,128");
  EXPECT_EQ(m.numa_threads(0).count(), 32u);  // 16 cores x 2 HW threads
  EXPECT_EQ(m.socket_threads(0).count(), 128u);
  EXPECT_EQ(m.all_threads().count(), 256u);
}

TEST(Machine, PrimaryThreads) {
  const auto m = Machine::dardel();
  const auto p = m.primary_threads();
  EXPECT_EQ(p.count(), 128u);
  EXPECT_TRUE(p.contains(0));
  EXPECT_FALSE(p.contains(128));
}

TEST(Machine, SameNumaSocketPredicates) {
  const auto m = Machine::dardel();
  EXPECT_TRUE(m.same_numa(0, 15));
  EXPECT_FALSE(m.same_numa(0, 16));
  EXPECT_TRUE(m.same_socket(0, 63));
  EXPECT_FALSE(m.same_socket(0, 64));
}

TEST(Machine, UniformValidation) {
  EXPECT_THROW(Machine::uniform("x", 0, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(Machine::uniform("x", 1, 1, 1, 0), std::invalid_argument);
}

TEST(Machine, ConstructorValidatesDenseIds) {
  std::vector<HwThread> threads(2);
  threads[0].os_id = 0;
  threads[1].os_id = 5;  // gap
  EXPECT_THROW(Machine("bad", std::move(threads)), std::invalid_argument);
}

TEST(Machine, ConstructorValidatesFrequencies) {
  std::vector<HwThread> threads(1);
  EXPECT_THROW(Machine("bad", threads, 3.0, 2.0), std::invalid_argument);
  EXPECT_THROW(Machine("bad", threads, -1.0, 2.0), std::invalid_argument);
}

TEST(Machine, EmptyThrows) {
  EXPECT_THROW(Machine("bad", {}), std::invalid_argument);
}

TEST(Machine, CustomUniform) {
  const auto m = Machine::uniform("mini", 1, 2, 4, 2, 1.0, 2.0);
  EXPECT_EQ(m.n_cores(), 8u);
  EXPECT_EQ(m.n_threads(), 16u);
  EXPECT_EQ(m.n_numa(), 2u);
  EXPECT_EQ(m.n_sockets(), 1u);
}

TEST(Machine, DetectNativeIsOptional) {
  // Must not throw regardless of host support.
  const auto m = Machine::detect_native();
  if (m) {
    EXPECT_GT(m->n_threads(), 0u);
    EXPECT_GT(m->n_cores(), 0u);
  }
}

}  // namespace
}  // namespace omv::topo
