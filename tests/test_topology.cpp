// Unit tests for topo/topology: the machine model and platform presets.

#include "topo/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace omv::topo {
namespace {

TEST(Machine, DardelGeometry) {
  const auto m = Machine::dardel();
  EXPECT_EQ(m.name(), "dardel");
  EXPECT_EQ(m.n_threads(), 256u);
  EXPECT_EQ(m.n_cores(), 128u);
  EXPECT_EQ(m.n_numa(), 8u);
  EXPECT_EQ(m.n_sockets(), 2u);
  EXPECT_EQ(m.max_smt_per_core(), 2u);
  EXPECT_DOUBLE_EQ(m.base_ghz(), 2.25);
  EXPECT_DOUBLE_EQ(m.max_ghz(), 3.4);
}

TEST(Machine, VeraGeometry) {
  const auto m = Machine::vera();
  EXPECT_EQ(m.n_threads(), 32u);
  EXPECT_EQ(m.n_cores(), 32u);
  EXPECT_EQ(m.n_numa(), 2u);
  EXPECT_EQ(m.n_sockets(), 2u);
  EXPECT_EQ(m.max_smt_per_core(), 1u);
  EXPECT_DOUBLE_EQ(m.max_ghz(), 3.7);
}

TEST(Machine, DardelLinuxSmtNumbering) {
  // Linux convention: os_ids 0..127 are the first siblings, 128..255 the
  // second siblings of cores 0..127.
  const auto m = Machine::dardel();
  EXPECT_EQ(m.thread(0).core, 0u);
  EXPECT_EQ(m.thread(0).smt_index, 0u);
  EXPECT_EQ(m.thread(128).core, 0u);
  EXPECT_EQ(m.thread(128).smt_index, 1u);
  EXPECT_EQ(m.thread(127).core, 127u);
  EXPECT_EQ(m.thread(255).core, 127u);
}

TEST(Machine, DardelNumaLayout) {
  const auto m = Machine::dardel();
  // 16 cores per NUMA domain, 4 domains per socket.
  EXPECT_EQ(m.thread(0).numa, 0u);
  EXPECT_EQ(m.thread(15).numa, 0u);
  EXPECT_EQ(m.thread(16).numa, 1u);
  EXPECT_EQ(m.thread(63).numa, 3u);
  EXPECT_EQ(m.thread(64).numa, 4u);
  EXPECT_EQ(m.thread(64).socket, 1u);
  EXPECT_EQ(m.thread(63).socket, 0u);
}

TEST(Machine, SiblingLookup) {
  const auto m = Machine::dardel();
  EXPECT_EQ(m.sibling(0), 128u);
  EXPECT_EQ(m.sibling(128), 0u);
  const auto v = Machine::vera();
  EXPECT_FALSE(v.sibling(0).has_value());
}

TEST(Machine, CoreAndNumaSets) {
  const auto m = Machine::dardel();
  EXPECT_EQ(m.core_threads(0).to_string(), "0,128");
  EXPECT_EQ(m.numa_threads(0).count(), 32u);  // 16 cores x 2 HW threads
  EXPECT_EQ(m.socket_threads(0).count(), 128u);
  EXPECT_EQ(m.all_threads().count(), 256u);
}

TEST(Machine, PrimaryThreads) {
  const auto m = Machine::dardel();
  const auto p = m.primary_threads();
  EXPECT_EQ(p.count(), 128u);
  EXPECT_TRUE(p.contains(0));
  EXPECT_FALSE(p.contains(128));
}

TEST(Machine, SameNumaSocketPredicates) {
  const auto m = Machine::dardel();
  EXPECT_TRUE(m.same_numa(0, 15));
  EXPECT_FALSE(m.same_numa(0, 16));
  EXPECT_TRUE(m.same_socket(0, 63));
  EXPECT_FALSE(m.same_socket(0, 64));
}

TEST(Machine, UniformValidation) {
  EXPECT_THROW(Machine::uniform("x", 0, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(Machine::uniform("x", 1, 1, 1, 0), std::invalid_argument);
}

TEST(Machine, ConstructorValidatesDenseIds) {
  std::vector<HwThread> threads(2);
  threads[0].os_id = 0;
  threads[1].os_id = 5;  // gap
  EXPECT_THROW(Machine("bad", std::move(threads)), std::invalid_argument);
}

// ------------------------------------------------- asymmetric machines

/// 2 P-cores (SMT-2) + 2 E-cores (SMT-1), one socket, one NUMA domain per
/// cluster. os ids follow the Linux convention: primaries 0..3, then the
/// P-cores' second siblings 4..5.
Machine mixed_machine() {
  std::vector<CoreClass> classes{{"P", 2.5, 3.8}, {"E", 1.8, 2.6}};
  std::vector<HwThread> t(6);
  for (std::size_t i = 0; i < 6; ++i) t[i].os_id = i;
  t[0] = {0, 0, 0, 0, 0, 0};
  t[1] = {1, 1, 0, 0, 0, 0};
  t[2] = {2, 2, 1, 0, 0, 1};
  t[3] = {3, 3, 1, 0, 0, 1};
  t[4] = {4, 0, 0, 0, 1, 0};
  t[5] = {5, 1, 0, 0, 1, 0};
  return Machine("mixed", std::move(t), std::move(classes));
}

TEST(Machine, MixedSmtPerCoreQueries) {
  const Machine m = mixed_machine();
  EXPECT_EQ(m.n_cores(), 4u);
  EXPECT_EQ(m.n_threads(), 6u);
  EXPECT_EQ(m.n_numa(), 2u);
  EXPECT_EQ(m.n_sockets(), 1u);
  // The retired smt_per_core() floor average would have said 6/4 = 1 here
  // — "no SMT" on a machine with two SMT-2 cores.
  EXPECT_EQ(m.max_smt_per_core(), 2u);
  EXPECT_EQ(m.smt_of_core(0), 2u);
  EXPECT_EQ(m.smt_of_core(1), 2u);
  EXPECT_EQ(m.smt_of_core(2), 1u);
  EXPECT_EQ(m.smt_of_core(3), 1u);
  EXPECT_THROW((void)m.smt_of_core(4), std::out_of_range);
  EXPECT_EQ(m.cores_with_smt(2), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(m.cores_with_smt(1), (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(m.cores_in_numa(0), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(m.cores_in_numa(1), (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(m.sibling(0), 4u);
  EXPECT_FALSE(m.sibling(2).has_value());
}

TEST(Machine, MixedCoreClassQueries) {
  const Machine m = mixed_machine();
  ASSERT_EQ(m.n_classes(), 2u);
  EXPECT_EQ(m.classes()[0].name, "P");
  EXPECT_EQ(m.classes()[1].name, "E");
  EXPECT_EQ(m.core_class(0), 0u);
  EXPECT_EQ(m.core_class(3), 1u);
  EXPECT_DOUBLE_EQ(m.core_max_ghz(0), 3.8);
  EXPECT_DOUBLE_EQ(m.core_max_ghz(2), 2.6);
  EXPECT_DOUBLE_EQ(m.core_base_ghz(2), 1.8);
  // Machine-wide range spans the classes: lowest base, highest boost.
  EXPECT_DOUBLE_EQ(m.base_ghz(), 1.8);
  EXPECT_DOUBLE_EQ(m.max_ghz(), 3.8);
  // Homogeneous machines have exactly one implicit class.
  EXPECT_EQ(Machine::vera().n_classes(), 1u);
  EXPECT_EQ(Machine::vera().core_class(5), 0u);
}

TEST(Machine, RejectsCoreSpanningNumaDomains) {
  std::vector<HwThread> t(2);
  t[0] = {0, 0, 0, 0, 0, 0};
  t[1] = {1, 0, 1, 0, 1, 0};  // same core, different NUMA domain
  try {
    Machine("bad", std::move(t));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("core 0 spans NUMA domains 0 and 1"),
              std::string::npos)
        << e.what();
  }
}

TEST(Machine, RejectsNumaDomainSpanningSockets) {
  std::vector<HwThread> t(2);
  t[0] = {0, 0, 0, 0, 0, 0};
  t[1] = {1, 1, 0, 1, 0, 0};  // same NUMA domain, different socket
  try {
    Machine("bad", std::move(t));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(
        std::string(e.what()).find("NUMA domain 0 spans sockets 0 and 1"),
        std::string::npos)
        << e.what();
  }
}

TEST(Machine, RejectsDuplicateAndGappedSmtIndex) {
  {
    std::vector<HwThread> t(2);
    t[0] = {0, 0, 0, 0, 0, 0};
    t[1] = {1, 0, 0, 0, 0, 0};  // duplicate smt_index 0 on core 0
    try {
      Machine("bad", std::move(t));
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("duplicate smt_index 0 on core 0"),
                std::string::npos)
          << e.what();
    }
  }
  {
    std::vector<HwThread> t(3);
    t[0] = {0, 0, 0, 0, 0, 0};
    t[1] = {1, 0, 0, 0, 2, 0};  // smt_index jumps 0 -> 2 (1 missing)
    t[2] = {2, 1, 0, 0, 0, 0};
    try {
      Machine("bad", std::move(t));
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(
                    "smt_index values on core 0 are not dense"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(Machine, RejectsGappedCoreNumaSocketAndClassIds) {
  {
    std::vector<HwThread> t(2);
    t[0] = {0, 0, 0, 0, 0, 0};
    t[1] = {1, 2, 0, 0, 0, 0};  // core 1 missing
    EXPECT_THROW(Machine("bad", std::move(t)), std::invalid_argument);
  }
  {
    std::vector<HwThread> t(2);
    t[0] = {0, 0, 0, 0, 0, 0};
    t[1] = {1, 1, 2, 0, 0, 0};  // NUMA domain 1 missing
    EXPECT_THROW(Machine("bad", std::move(t)), std::invalid_argument);
  }
  {
    std::vector<HwThread> t(2);
    t[0] = {0, 0, 0, 0, 0, 0};
    t[1] = {1, 1, 1, 2, 0, 0};  // socket 1 missing (and numa 1 in socket 2)
    EXPECT_THROW(Machine("bad", std::move(t)), std::invalid_argument);
  }
  {
    std::vector<HwThread> t(1);
    t[0] = {0, 0, 0, 0, 0, 3};  // class 3 of 1 defined
    EXPECT_THROW(Machine("bad", std::move(t)), std::invalid_argument);
  }
}

TEST(Machine, RejectsWildIdsWithoutAllocatingForThem) {
  // Ids far outside the dense range must produce the validation error,
  // not a SIZE_MAX-wrapped resize (UB) or an O(max_id) table allocation.
  {
    std::vector<HwThread> t(2);
    t[1] = {1, 0, 0, 0, static_cast<std::size_t>(-1), 0};  // smt_index MAX
    EXPECT_THROW(Machine("bad", std::move(t)), std::invalid_argument);
  }
  {
    std::vector<HwThread> t(2);
    t[1] = {1, std::size_t{1} << 40, 0, 0, 1, 0};  // ~2^40 core id
    EXPECT_THROW(Machine("bad", std::move(t)), std::invalid_argument);
  }
}

TEST(Machine, RejectsCoreMixingClassesAndBadClassFrequencies) {
  {
    std::vector<CoreClass> classes{{"P", 2.0, 3.0}, {"E", 1.5, 2.0}};
    std::vector<HwThread> t(2);
    t[0] = {0, 0, 0, 0, 0, 0};
    t[1] = {1, 0, 0, 0, 1, 1};  // core 0 thread in class 1
    try {
      Machine("bad", std::move(t), std::move(classes));
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("core 0 mixes core classes"),
                std::string::npos)
          << e.what();
    }
  }
  {
    std::vector<CoreClass> classes{{"P", 3.0, 2.0}};  // max < base
    std::vector<HwThread> t(1);
    EXPECT_THROW(Machine("bad", std::move(t), std::move(classes)),
                 std::invalid_argument);
  }
  {
    std::vector<HwThread> t(1);
    EXPECT_THROW(Machine("bad", std::move(t), std::vector<CoreClass>{}),
                 std::invalid_argument);
  }
  {
    // Every defined class must own at least one core.
    std::vector<CoreClass> classes{{"P", 2.0, 3.0}, {"E", 1.5, 2.5}};
    std::vector<HwThread> t(1);  // one thread, cls 0 — class 1 unused
    try {
      Machine("bad", std::move(t), std::move(classes));
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("class 1 ('E') has no cores"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(Machine, ConstructorValidatesFrequencies) {
  std::vector<HwThread> threads(1);
  EXPECT_THROW(Machine("bad", threads, 3.0, 2.0), std::invalid_argument);
  EXPECT_THROW(Machine("bad", threads, -1.0, 2.0), std::invalid_argument);
}

TEST(Machine, EmptyThrows) {
  EXPECT_THROW(Machine("bad", {}), std::invalid_argument);
}

TEST(Machine, CustomUniform) {
  const auto m = Machine::uniform("mini", 1, 2, 4, 2, 1.0, 2.0);
  EXPECT_EQ(m.n_cores(), 8u);
  EXPECT_EQ(m.n_threads(), 16u);
  EXPECT_EQ(m.n_numa(), 2u);
  EXPECT_EQ(m.n_sockets(), 1u);
}

TEST(Machine, DetectNativeIsOptional) {
  // Must not throw regardless of host support.
  const auto m = Machine::detect_native();
  if (m) {
    EXPECT_GT(m->n_threads(), 0u);
    EXPECT_GT(m->n_cores(), 0u);
  }
}

}  // namespace
}  // namespace omv::topo
