// Scenario layer tests: catalog lookup, the differential pin of the
// dardel/vera presets against the legacy factory bundles, serialization /
// file-load fingerprint round-trips, and the parser's error paths.

#include "scenario/registry.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "sim/simulator.hpp"
#include "topo/topology.hpp"

namespace omv::scenario {
namespace {

// ---------------------------------------------------------------- catalog

TEST(ScenarioRegistry, CatalogHoldsPaperPlatformsAndNewPresets) {
  const auto& reg = ScenarioRegistry::instance();
  ASSERT_GE(reg.all().size(), 8u);
  for (const char* name : {"dardel", "vera", "epyc-like", "noisy-cloud",
                           "quiet-hpc", "dvfs-dippy", "biglittle",
                           "lopsided-numa"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  // Name-sorted listing.
  for (std::size_t i = 1; i < reg.all().size(); ++i) {
    EXPECT_LT(reg.all()[i - 1].name, reg.all()[i].name);
  }
  // Fingerprints are pairwise distinct (a shared fingerprint would let
  // the campaign cache serve one scenario's cells to another).
  for (const auto& a : reg.all()) {
    for (const auto& b : reg.all()) {
      if (&a != &b) {
        EXPECT_NE(a.fingerprint(), b.fingerprint());
      }
    }
  }
}

TEST(ScenarioRegistry, UnknownNameThrowsWithCatalog) {
  const auto& reg = ScenarioRegistry::instance();
  EXPECT_EQ(reg.find("hal9000"), nullptr);
  try {
    (void)reg.get("hal9000");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("dardel"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("vera"), std::string::npos);
  }
}

TEST(ScenarioResolve, NameResolvesPathLoadsOtherThrows) {
  EXPECT_EQ(resolve("vera").name, "vera");
  EXPECT_THROW((void)resolve("not-a-scenario"), std::runtime_error);
  // Looks like a path (contains '/' or '.') but does not exist.
  EXPECT_THROW((void)resolve("/nonexistent/path.scenario"),
               std::runtime_error);
}

// ----------------------------------------------- differential factory pin

void expect_machine_equal(const topo::Machine& a, const topo::Machine& b) {
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.base_ghz(), b.base_ghz());
  EXPECT_EQ(a.max_ghz(), b.max_ghz());
  ASSERT_EQ(a.n_threads(), b.n_threads());
  EXPECT_EQ(a.n_cores(), b.n_cores());
  EXPECT_EQ(a.n_numa(), b.n_numa());
  EXPECT_EQ(a.n_sockets(), b.n_sockets());
  for (std::size_t h = 0; h < a.n_threads(); ++h) {
    EXPECT_EQ(a.thread(h).core, b.thread(h).core) << h;
    EXPECT_EQ(a.thread(h).numa, b.thread(h).numa) << h;
    EXPECT_EQ(a.thread(h).socket, b.thread(h).socket) << h;
    EXPECT_EQ(a.thread(h).smt_index, b.thread(h).smt_index) << h;
  }
}

TEST(ScenarioDifferential, DardelPresetIsBitIdenticalToLegacyFactories) {
  const auto& s = ScenarioRegistry::instance().get("dardel");
  EXPECT_EQ(s.display, "Dardel");
  expect_machine_equal(s.machine.build(), topo::Machine::dardel());
  // Substituting the legacy bundle must not move the fingerprint: the
  // fingerprint covers every model parameter bit-exactly (shortest
  // round-trip doubles), so equality here pins every field of every
  // config struct at once.
  ScenarioSpec probe = s;
  probe.sim = sim::SimConfig::dardel();
  probe.freq_session = sim::FreqConfig::dardel();
  EXPECT_EQ(probe.fingerprint(), s.fingerprint());
}

TEST(ScenarioDifferential, VeraPresetIsBitIdenticalToLegacyFactories) {
  const auto& s = ScenarioRegistry::instance().get("vera");
  EXPECT_EQ(s.display, "Vera");
  expect_machine_equal(s.machine.build(), topo::Machine::vera());
  ScenarioSpec probe = s;
  probe.sim = sim::SimConfig::vera();
  probe.freq_session = sim::FreqConfig::vera_dippy();
  EXPECT_EQ(probe.fingerprint(), s.fingerprint());
}

TEST(ScenarioDifferential, FingerprintMovesWithAnyKnob) {
  const auto& base = ScenarioRegistry::instance().get("vera");
  {
    ScenarioSpec s = base;
    s.sim.noise.daemon_rate += 1.0;
    EXPECT_NE(s.fingerprint(), base.fingerprint());
  }
  {
    ScenarioSpec s = base;
    s.machine.cores_per_numa += 1;
    EXPECT_NE(s.fingerprint(), base.fingerprint());
  }
  {
    ScenarioSpec s = base;
    s.freq_session.episode_rate *= 2.0;
    EXPECT_NE(s.fingerprint(), base.fingerprint());
  }
  {
    ScenarioSpec s = base;
    s.name = "vera2";
    EXPECT_NE(s.fingerprint(), base.fingerprint());
  }
}

// ------------------------------------------------- asymmetric presets (v2)

TEST(ScenarioAsymmetric, BigLittleComposesIntoOneHeterogeneousMachine) {
  const auto& s = ScenarioRegistry::instance().get("biglittle");
  ASSERT_TRUE(s.machine.asymmetric());
  EXPECT_EQ(s.machine.n_cores(), 8u);
  EXPECT_EQ(s.machine.n_threads(), 12u);
  const topo::Machine m = s.machine.build();
  EXPECT_EQ(m.n_cores(), 8u);
  EXPECT_EQ(m.n_threads(), 12u);
  EXPECT_EQ(m.n_numa(), 2u);
  EXPECT_EQ(m.n_sockets(), 1u);  // E cluster pinned onto the P socket
  EXPECT_EQ(m.max_smt_per_core(), 2u);
  EXPECT_EQ(m.smt_of_core(0), 2u);  // P
  EXPECT_EQ(m.smt_of_core(4), 1u);  // E
  ASSERT_EQ(m.n_classes(), 2u);
  EXPECT_EQ(m.classes()[0].name, "P");
  EXPECT_EQ(m.classes()[1].name, "E");
  EXPECT_EQ(m.core_class(0), 0u);
  EXPECT_EQ(m.core_class(7), 1u);
  EXPECT_DOUBLE_EQ(m.core_max_ghz(0), 3.8);
  EXPECT_DOUBLE_EQ(m.core_max_ghz(7), 2.6);
  // Linux-convention numbering generalized: primaries 0..7 (= core ids),
  // the P cores' second siblings 8..11.
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_EQ(m.thread(c).core, c);
    EXPECT_EQ(m.thread(c).smt_index, 0u);
  }
  EXPECT_EQ(m.thread(8).core, 0u);
  EXPECT_EQ(m.thread(8).smt_index, 1u);
  EXPECT_EQ(m.sibling(0), 8u);
  EXPECT_FALSE(m.sibling(4).has_value());
  // Per-class calibration rides on the sim bundle.
  ASSERT_EQ(s.sim.class_work_rate.size(), 2u);
  EXPECT_DOUBLE_EQ(s.sim.class_work_rate[0], 1.0);
  EXPECT_DOUBLE_EQ(s.sim.class_work_rate[1], 0.55);
}

TEST(ScenarioAsymmetric, LopsidedNumaHasUnevenDomains) {
  const auto& s = ScenarioRegistry::instance().get("lopsided-numa");
  const topo::Machine m = s.machine.build();
  EXPECT_EQ(m.n_cores(), 16u);
  EXPECT_EQ(m.n_numa(), 2u);
  EXPECT_EQ(m.n_sockets(), 1u);
  EXPECT_EQ(m.cores_in_numa(0).size(), 12u);
  EXPECT_EQ(m.cores_in_numa(1).size(), 4u);
  EXPECT_EQ(m.max_smt_per_core(), 2u);
}

TEST(ScenarioAsymmetric, GroupStanzasParseAndBuild) {
  const ScenarioSpec s = parse_text(
      "name = hybrid\n"
      "noise.daemon_rate = 5\n"
      "[group big]\n"
      "sockets = 2\n"
      "numa = 2\n"
      "cores = 3\n"
      "smt = 2\n"
      "base_ghz = 2.2\n"
      "max_ghz = 3.2\n"
      "[group little]\n"
      "socket = 0\n"
      "cores = 4\n"
      "base_ghz = 1.5\n"
      "max_ghz = 2\n"
      "work_rate = 0.5\n",
      "test");
  ASSERT_EQ(s.machine.groups.size(), 2u);
  EXPECT_EQ(s.machine.groups[0].name, "big");
  EXPECT_FALSE(s.machine.groups[0].socket_pinned());
  EXPECT_TRUE(s.machine.groups[1].socket_pinned());
  EXPECT_EQ(s.sim.noise.daemon_rate, 5.0);
  const topo::Machine m = s.machine.build();
  // big: 2 sockets x 2 numa x 3 cores SMT-2; little: 4 cores on socket 0.
  EXPECT_EQ(m.n_cores(), 16u);
  EXPECT_EQ(m.n_threads(), 28u);
  EXPECT_EQ(m.n_sockets(), 2u);
  EXPECT_EQ(m.n_numa(), 5u);
  EXPECT_EQ(m.thread(12).socket, 0u);  // little cores land on socket 0
  ASSERT_EQ(s.sim.class_work_rate.size(), 2u);
  EXPECT_DOUBLE_EQ(s.sim.class_work_rate[1], 0.5);
}

TEST(ScenarioAsymmetric, V2RoundTripIsBitIdentical) {
  // parse -> fingerprint -> serialize -> parse: the fingerprint must be
  // stable and the re-serialization byte-identical (acceptance criterion).
  for (const char* name : {"biglittle", "lopsided-numa"}) {
    const auto& s = ScenarioRegistry::instance().get(name);
    const std::string text = s.to_text();
    const ScenarioSpec back = parse_text(text, "roundtrip");
    EXPECT_EQ(back.fingerprint(), s.fingerprint()) << name;
    EXPECT_EQ(back.to_text(), text) << name;
  }
}

TEST(ScenarioAsymmetric, FingerprintMovesWithGroupKnobs) {
  const auto& base = ScenarioRegistry::instance().get("biglittle");
  {
    ScenarioSpec s = base;
    s.machine.groups[1].cores += 1;
    EXPECT_NE(s.fingerprint(), base.fingerprint());
  }
  {
    ScenarioSpec s = base;
    s.machine.groups[1].work_rate = 0.7;
    s.sim.class_work_rate = s.machine.class_work_rates();
    EXPECT_NE(s.fingerprint(), base.fingerprint());
  }
  {
    ScenarioSpec s = base;
    s.machine.groups[0].name = "Prime";
    EXPECT_NE(s.fingerprint(), base.fingerprint());
  }
  {
    ScenarioSpec s = base;
    s.machine.groups[1].socket = NodeGroupSpec::kFreshSocket;
    s.machine.groups[1].sockets = 1;  // own socket instead of the pin
    EXPECT_NE(s.fingerprint(), base.fingerprint());
  }
}

TEST(ScenarioAsymmetric, BaseInheritanceInteractsWithGroups) {
  // base with groups + global overrides before stanzas: groups kept.
  {
    const ScenarioSpec s = parse_text(
        "name = tuned-bl\n"
        "base = biglittle\n"
        "noise.daemon_rate = 99\n",
        "test");
    ASSERT_EQ(s.machine.groups.size(), 2u);
    EXPECT_EQ(s.sim.noise.daemon_rate, 99.0);
    ASSERT_EQ(s.sim.class_work_rate.size(), 2u);
  }
  // base with groups + fresh stanzas: the file's groups replace the
  // preset's wholesale.
  {
    const ScenarioSpec s = parse_text(
        "name = re-bl\n"
        "base = biglittle\n"
        "[group solo]\n"
        "cores = 2\n",
        "test");
    ASSERT_EQ(s.machine.groups.size(), 1u);
    EXPECT_EQ(s.machine.groups[0].name, "solo");
    EXPECT_EQ(s.machine.build().n_cores(), 2u);
    ASSERT_EQ(s.sim.class_work_rate.size(), 1u);
  }
  // uniform base + stanzas: geometry becomes the groups, calibration stays.
  {
    const ScenarioSpec s = parse_text(
        "name = grouped-dardel\n"
        "base = dardel\n"
        "[group all]\n"
        "cores = 8\n"
        "smt = 2\n",
        "test");
    ASSERT_EQ(s.machine.groups.size(), 1u);
    EXPECT_EQ(s.machine.build().n_threads(), 16u);
  }
}

TEST(ScenarioAsymmetric, ParserRejectsMalformedGroupInput) {
  // machine.* geometry keys cannot be mixed with stanzas.
  EXPECT_THROW((void)parse_text("name = x\nmachine.smt = 2\n[group g]\n"
                                "cores = 2\n",
                                "t"),
               std::runtime_error);
  // Overriding a groups-based base with machine.* keys is equally wrong.
  EXPECT_THROW((void)parse_text("name = x\nbase = biglittle\n"
                                "machine.smt = 2\n",
                                "t"),
               std::runtime_error);
  // Global keys must precede stanzas — with the misplacement named, not
  // a misleading "unknown key in group".
  try {
    (void)parse_text("name = x\n[group g]\ncores = 2\n"
                     "noise.daemon_rate = 5\n",
                     "t");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("must precede every [group"),
              std::string::npos)
        << e.what();
  }
  // Unknown key inside a group.
  EXPECT_THROW((void)parse_text("name = x\n[group g]\nbogus = 2\n", "t"),
               std::runtime_error);
  // Duplicate group name / duplicate key within a group.
  EXPECT_THROW((void)parse_text("name = x\n[group g]\ncores = 2\n"
                                "[group g]\ncores = 2\n",
                                "t"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_text("name = x\n[group g]\ncores = 2\ncores = 3\n", "t"),
      std::runtime_error);
  // sockets and socket are mutually exclusive.
  EXPECT_THROW((void)parse_text("name = x\n[group a]\ncores = 1\n"
                                "[group b]\nsockets = 2\nsocket = 0\n",
                                "t"),
               std::runtime_error);
  // A socket pin must reference an earlier group's socket.
  EXPECT_THROW(
      (void)parse_text("name = x\n[group g]\ncores = 2\nsocket = 3\n", "t"),
      std::runtime_error);
  // Malformed stanza headers.
  EXPECT_THROW((void)parse_text("name = x\n[group ]\n", "t"),
               std::runtime_error);
  EXPECT_THROW((void)parse_text("name = x\n[cluster g]\n", "t"),
               std::runtime_error);
  EXPECT_THROW((void)parse_text("name = x\n[group g\n", "t"),
               std::runtime_error);
  // Zero-sized group dimensions and bad frequencies surface at parse time.
  EXPECT_THROW((void)parse_text("name = x\n[group g]\ncores = 0\n", "t"),
               std::runtime_error);
  EXPECT_THROW((void)parse_text("name = x\n[group g]\ncores = 1\n"
                                "base_ghz = 4\n",
                                "t"),
               std::runtime_error);  // max (3.0 default) < base
  EXPECT_THROW((void)parse_text("name = x\n[group g]\ncores = 1\n"
                                "work_rate = 0\n",
                                "t"),
               std::runtime_error);
}

TEST(ScenarioAsymmetric, GroupErrorsNameOriginAndLine) {
  try {
    (void)parse_text("name = x\n[group g]\ncores = 2\nwat = 1\n",
                     "conf/bl.scn");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("conf/bl.scn:4"), std::string::npos) << what;
    EXPECT_NE(what.find("'wat'"), std::string::npos) << what;
    EXPECT_NE(what.find("group 'g'"), std::string::npos) << what;
  }
}

// ------------------------------------------------------------ round-trips

TEST(ScenarioText, SerializeParseRoundTripsEveryPreset) {
  for (const auto& s : ScenarioRegistry::instance().all()) {
    const ScenarioSpec back = parse_text(s.to_text(), "roundtrip");
    EXPECT_EQ(back.name, s.name);
    EXPECT_EQ(back.display, s.display);
    EXPECT_EQ(back.fingerprint(), s.fingerprint()) << s.name;
  }
}

TEST(ScenarioText, FileLoadIsFingerprintStable) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "omnivar_scenario_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "box.scenario").string();
  ScenarioSpec s = ScenarioRegistry::instance().get("noisy-cloud");
  s.name = "my-box";
  s.display = "MyBox";
  s.sim.noise.daemon_rate = 123.456;
  {
    std::ofstream f(path, std::ios::binary);
    f << s.to_text();
  }
  const ScenarioSpec a = load_file(path);
  const ScenarioSpec b = load_file(path);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), s.fingerprint());
  EXPECT_EQ(a.sim.noise.daemon_rate, 123.456);  // bit-exact double
  EXPECT_EQ(resolve(path).fingerprint(), s.fingerprint());
  std::filesystem::remove_all(dir);
}

TEST(ScenarioText, BaseInheritanceOverridesSelectedFields) {
  const ScenarioSpec s = parse_text(
      "name = dippy-dardel\n"
      "base = dardel\n"
      "freq.episode_rate = 0.5\n",
      "test");
  const auto& dardel = ScenarioRegistry::instance().get("dardel");
  EXPECT_EQ(s.name, "dippy-dardel");
  EXPECT_EQ(s.display, "dippy-dardel");  // fresh name => fresh display
  EXPECT_EQ(s.machine.sockets, dardel.machine.sockets);
  EXPECT_EQ(s.sim.noise.daemon_rate, dardel.sim.noise.daemon_rate);
  EXPECT_EQ(s.sim.freq.episode_rate, 0.5);
  EXPECT_NE(s.fingerprint(), dardel.fingerprint());
}

TEST(ScenarioText, CommentsBlanksAndCrlfTolerated) {
  const ScenarioSpec s = parse_text(
      "# a comment\r\n"
      "\n"
      "name = tiny\r\n"
      "  machine.sockets = 1 \n"
      "machine.cores_per_numa = 2\n",
      "test");
  EXPECT_EQ(s.name, "tiny");
  EXPECT_EQ(s.display, "tiny");  // defaults to name
  EXPECT_EQ(s.machine.label, "tiny");
  EXPECT_EQ(s.machine.sockets, 1u);
  EXPECT_EQ(s.machine.cores_per_numa, 2u);
}

// ------------------------------------------------------------ error paths

TEST(ScenarioText, ParserRejectsMalformedInput) {
  // Unknown key.
  EXPECT_THROW((void)parse_text("name = x\nnoise.bogus = 1\n", "t"),
               std::runtime_error);
  // Malformed numeric values.
  EXPECT_THROW((void)parse_text("name = x\nnoise.daemon_rate = fast\n", "t"),
               std::runtime_error);
  EXPECT_THROW((void)parse_text("name = x\nmachine.smt = -1\n", "t"),
               std::runtime_error);
  // Missing '='.
  EXPECT_THROW((void)parse_text("name = x\njust words\n", "t"),
               std::runtime_error);
  // Duplicate assignment.
  EXPECT_THROW(
      (void)parse_text("name = x\nmem.domain_gbps = 1\nmem.domain_gbps = 2\n",
                       "t"),
      std::runtime_error);
  // Missing name.
  EXPECT_THROW((void)parse_text("machine.sockets = 1\n", "t"),
               std::runtime_error);
  // Unknown base preset.
  EXPECT_THROW((void)parse_text("name = x\nbase = nope\n", "t"),
               std::runtime_error);
  // base after an overridden field.
  EXPECT_THROW(
      (void)parse_text("name = x\nmachine.smt = 2\nbase = dardel\n", "t"),
      std::runtime_error);
  // Geometry errors surface at parse time.
  EXPECT_THROW((void)parse_text("name = x\nmachine.sockets = 0\n", "t"),
               std::runtime_error);
  EXPECT_THROW((void)parse_text("name = x\nmachine.base_ghz = 4\n", "t"),
               std::runtime_error);  // max (3.0 default) < base
}

TEST(ScenarioText, ErrorsNameOriginAndLine) {
  try {
    (void)parse_text("name = x\n\nnoise.bogus = 1\n", "conf/box.scn");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("conf/box.scn:3"), std::string::npos) << what;
    EXPECT_NE(what.find("noise.bogus"), std::string::npos) << what;
  }
}

TEST(ScenarioText, MissingFileThrows) {
  EXPECT_THROW((void)load_file("/nonexistent/omnivar.scenario"),
               std::runtime_error);
}

}  // namespace
}  // namespace omv::scenario
