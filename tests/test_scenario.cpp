// Scenario layer tests: catalog lookup, the differential pin of the
// dardel/vera presets against the legacy factory bundles, serialization /
// file-load fingerprint round-trips, and the parser's error paths.

#include "scenario/registry.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "sim/simulator.hpp"
#include "topo/topology.hpp"

namespace omv::scenario {
namespace {

// ---------------------------------------------------------------- catalog

TEST(ScenarioRegistry, CatalogHoldsPaperPlatformsAndNewPresets) {
  const auto& reg = ScenarioRegistry::instance();
  ASSERT_GE(reg.all().size(), 6u);
  for (const char* name : {"dardel", "vera", "epyc-like", "noisy-cloud",
                           "quiet-hpc", "dvfs-dippy"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  // Name-sorted listing.
  for (std::size_t i = 1; i < reg.all().size(); ++i) {
    EXPECT_LT(reg.all()[i - 1].name, reg.all()[i].name);
  }
  // Fingerprints are pairwise distinct (a shared fingerprint would let
  // the campaign cache serve one scenario's cells to another).
  for (const auto& a : reg.all()) {
    for (const auto& b : reg.all()) {
      if (&a != &b) EXPECT_NE(a.fingerprint(), b.fingerprint());
    }
  }
}

TEST(ScenarioRegistry, UnknownNameThrowsWithCatalog) {
  const auto& reg = ScenarioRegistry::instance();
  EXPECT_EQ(reg.find("hal9000"), nullptr);
  try {
    (void)reg.get("hal9000");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("dardel"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("vera"), std::string::npos);
  }
}

TEST(ScenarioResolve, NameResolvesPathLoadsOtherThrows) {
  EXPECT_EQ(resolve("vera").name, "vera");
  EXPECT_THROW((void)resolve("not-a-scenario"), std::runtime_error);
  // Looks like a path (contains '/' or '.') but does not exist.
  EXPECT_THROW((void)resolve("/nonexistent/path.scenario"),
               std::runtime_error);
}

// ----------------------------------------------- differential factory pin

void expect_machine_equal(const topo::Machine& a, const topo::Machine& b) {
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.base_ghz(), b.base_ghz());
  EXPECT_EQ(a.max_ghz(), b.max_ghz());
  ASSERT_EQ(a.n_threads(), b.n_threads());
  EXPECT_EQ(a.n_cores(), b.n_cores());
  EXPECT_EQ(a.n_numa(), b.n_numa());
  EXPECT_EQ(a.n_sockets(), b.n_sockets());
  for (std::size_t h = 0; h < a.n_threads(); ++h) {
    EXPECT_EQ(a.thread(h).core, b.thread(h).core) << h;
    EXPECT_EQ(a.thread(h).numa, b.thread(h).numa) << h;
    EXPECT_EQ(a.thread(h).socket, b.thread(h).socket) << h;
    EXPECT_EQ(a.thread(h).smt_index, b.thread(h).smt_index) << h;
  }
}

TEST(ScenarioDifferential, DardelPresetIsBitIdenticalToLegacyFactories) {
  const auto& s = ScenarioRegistry::instance().get("dardel");
  EXPECT_EQ(s.display, "Dardel");
  expect_machine_equal(s.machine.build(), topo::Machine::dardel());
  // Substituting the legacy bundle must not move the fingerprint: the
  // fingerprint covers every model parameter bit-exactly (shortest
  // round-trip doubles), so equality here pins every field of every
  // config struct at once.
  ScenarioSpec probe = s;
  probe.sim = sim::SimConfig::dardel();
  probe.freq_session = sim::FreqConfig::dardel();
  EXPECT_EQ(probe.fingerprint(), s.fingerprint());
}

TEST(ScenarioDifferential, VeraPresetIsBitIdenticalToLegacyFactories) {
  const auto& s = ScenarioRegistry::instance().get("vera");
  EXPECT_EQ(s.display, "Vera");
  expect_machine_equal(s.machine.build(), topo::Machine::vera());
  ScenarioSpec probe = s;
  probe.sim = sim::SimConfig::vera();
  probe.freq_session = sim::FreqConfig::vera_dippy();
  EXPECT_EQ(probe.fingerprint(), s.fingerprint());
}

TEST(ScenarioDifferential, FingerprintMovesWithAnyKnob) {
  const auto& base = ScenarioRegistry::instance().get("vera");
  {
    ScenarioSpec s = base;
    s.sim.noise.daemon_rate += 1.0;
    EXPECT_NE(s.fingerprint(), base.fingerprint());
  }
  {
    ScenarioSpec s = base;
    s.machine.cores_per_numa += 1;
    EXPECT_NE(s.fingerprint(), base.fingerprint());
  }
  {
    ScenarioSpec s = base;
    s.freq_session.episode_rate *= 2.0;
    EXPECT_NE(s.fingerprint(), base.fingerprint());
  }
  {
    ScenarioSpec s = base;
    s.name = "vera2";
    EXPECT_NE(s.fingerprint(), base.fingerprint());
  }
}

// ------------------------------------------------------------ round-trips

TEST(ScenarioText, SerializeParseRoundTripsEveryPreset) {
  for (const auto& s : ScenarioRegistry::instance().all()) {
    const ScenarioSpec back = parse_text(s.to_text(), "roundtrip");
    EXPECT_EQ(back.name, s.name);
    EXPECT_EQ(back.display, s.display);
    EXPECT_EQ(back.fingerprint(), s.fingerprint()) << s.name;
  }
}

TEST(ScenarioText, FileLoadIsFingerprintStable) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "omnivar_scenario_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "box.scenario").string();
  ScenarioSpec s = ScenarioRegistry::instance().get("noisy-cloud");
  s.name = "my-box";
  s.display = "MyBox";
  s.sim.noise.daemon_rate = 123.456;
  {
    std::ofstream f(path, std::ios::binary);
    f << s.to_text();
  }
  const ScenarioSpec a = load_file(path);
  const ScenarioSpec b = load_file(path);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), s.fingerprint());
  EXPECT_EQ(a.sim.noise.daemon_rate, 123.456);  // bit-exact double
  EXPECT_EQ(resolve(path).fingerprint(), s.fingerprint());
  std::filesystem::remove_all(dir);
}

TEST(ScenarioText, BaseInheritanceOverridesSelectedFields) {
  const ScenarioSpec s = parse_text(
      "name = dippy-dardel\n"
      "base = dardel\n"
      "freq.episode_rate = 0.5\n",
      "test");
  const auto& dardel = ScenarioRegistry::instance().get("dardel");
  EXPECT_EQ(s.name, "dippy-dardel");
  EXPECT_EQ(s.display, "dippy-dardel");  // fresh name => fresh display
  EXPECT_EQ(s.machine.sockets, dardel.machine.sockets);
  EXPECT_EQ(s.sim.noise.daemon_rate, dardel.sim.noise.daemon_rate);
  EXPECT_EQ(s.sim.freq.episode_rate, 0.5);
  EXPECT_NE(s.fingerprint(), dardel.fingerprint());
}

TEST(ScenarioText, CommentsBlanksAndCrlfTolerated) {
  const ScenarioSpec s = parse_text(
      "# a comment\r\n"
      "\n"
      "name = tiny\r\n"
      "  machine.sockets = 1 \n"
      "machine.cores_per_numa = 2\n",
      "test");
  EXPECT_EQ(s.name, "tiny");
  EXPECT_EQ(s.display, "tiny");  // defaults to name
  EXPECT_EQ(s.machine.label, "tiny");
  EXPECT_EQ(s.machine.sockets, 1u);
  EXPECT_EQ(s.machine.cores_per_numa, 2u);
}

// ------------------------------------------------------------ error paths

TEST(ScenarioText, ParserRejectsMalformedInput) {
  // Unknown key.
  EXPECT_THROW((void)parse_text("name = x\nnoise.bogus = 1\n", "t"),
               std::runtime_error);
  // Malformed numeric values.
  EXPECT_THROW((void)parse_text("name = x\nnoise.daemon_rate = fast\n", "t"),
               std::runtime_error);
  EXPECT_THROW((void)parse_text("name = x\nmachine.smt = -1\n", "t"),
               std::runtime_error);
  // Missing '='.
  EXPECT_THROW((void)parse_text("name = x\njust words\n", "t"),
               std::runtime_error);
  // Duplicate assignment.
  EXPECT_THROW(
      (void)parse_text("name = x\nmem.domain_gbps = 1\nmem.domain_gbps = 2\n",
                       "t"),
      std::runtime_error);
  // Missing name.
  EXPECT_THROW((void)parse_text("machine.sockets = 1\n", "t"),
               std::runtime_error);
  // Unknown base preset.
  EXPECT_THROW((void)parse_text("name = x\nbase = nope\n", "t"),
               std::runtime_error);
  // base after an overridden field.
  EXPECT_THROW(
      (void)parse_text("name = x\nmachine.smt = 2\nbase = dardel\n", "t"),
      std::runtime_error);
  // Geometry errors surface at parse time.
  EXPECT_THROW((void)parse_text("name = x\nmachine.sockets = 0\n", "t"),
               std::runtime_error);
  EXPECT_THROW((void)parse_text("name = x\nmachine.base_ghz = 4\n", "t"),
               std::runtime_error);  // max (3.0 default) < base
}

TEST(ScenarioText, ErrorsNameOriginAndLine) {
  try {
    (void)parse_text("name = x\n\nnoise.bogus = 1\n", "conf/box.scn");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("conf/box.scn:3"), std::string::npos) << what;
    EXPECT_NE(what.find("noise.bogus"), std::string::npos) << what;
  }
}

TEST(ScenarioText, MissingFileThrows) {
  EXPECT_THROW((void)load_file("/nonexistent/omnivar.scenario"),
               std::runtime_error);
}

}  // namespace
}  // namespace omv::scenario
