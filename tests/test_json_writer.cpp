// Unit tests for core/json_writer: structure, escaping, number rendering,
// and misuse detection.

#include "core/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace omv::json {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  {
    JsonWriter w;
    w.begin_object().end_object();
    EXPECT_EQ(w.str(), "{}\n");
  }
  {
    JsonWriter w;
    w.begin_array().end_array();
    EXPECT_EQ(w.str(), "[]\n");
  }
}

TEST(JsonWriter, NestedStructure) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("fig3");
  w.key("ok").value(true);
  w.key("count").value(std::uint64_t{42});
  w.key("points").begin_array();
  w.value(1.5);
  w.value(2.5);
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"name\": \"fig3\",\n"
            "  \"ok\": true,\n"
            "  \"count\": 42,\n"
            "  \"points\": [\n"
            "    1.5,\n"
            "    2.5\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(escape("line1\nline2\ttab"), "line1\\nline2\\ttab");
  EXPECT_EQ(escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, NumbersRoundTripShortest) {
  EXPECT_EQ(number(1.0), "1");
  EXPECT_EQ(number(0.1), "0.1");
  EXPECT_EQ(number(-2.5), "-2.5");
  // Shortest form must parse back to the identical double.
  const double v = 1.0 / 3.0;
  EXPECT_EQ(std::stod(number(v)), v);
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(number(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1.0), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key in array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), std::logic_error);  // incomplete document
  }
}

}  // namespace
}  // namespace omv::json
