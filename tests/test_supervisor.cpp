// Unit tests for supervised cell execution: error taxonomy, seeded
// backoff, retry-then-succeed, quarantine, and the cooperative deadline.

#include "cli/supervisor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

#include "cli/exit_codes.hpp"
#include "core/deadline.hpp"
#include "core/faultinject.hpp"
#include "core/snapshot.hpp"

namespace omv::cli {
namespace {

RunMatrix tiny_matrix() {
  RunMatrix m("cell");
  m.add_run({1.0});
  return m;
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::clear_active_plan(); }
  void TearDown() override {
    fault::clear_active_plan();
    core::clear_cell_deadline();
  }
};

// --------------------------------------------------------------- taxonomy

TEST_F(SupervisorTest, ClassifiesExceptionsIntoTheTaxonomy) {
  const auto classify = [](auto&& thrower) {
    try {
      thrower();
    } catch (...) {
      return classify_current_exception();
    }
    return std::string("no-throw");
  };
  EXPECT_EQ(classify([] { throw core::CellTimeout("t"); }), "timeout");
  EXPECT_EQ(classify([] { throw fault::InjectedFault("io", "torn"); }),
            "io");
  EXPECT_EQ(classify([] { throw fault::InjectedFault("exception", "x"); }),
            "exception");
  EXPECT_EQ(classify([] { throw std::ios_base::failure("disk"); }), "io");
  EXPECT_EQ(classify([] { throw std::runtime_error("boom"); }),
            "exception");
  EXPECT_EQ(classify([] { throw 42; }), "exception");
}

// ---------------------------------------------------------------- backoff

TEST_F(SupervisorTest, BackoffIsDeterministicBoundedAndGrows) {
  // Same (seed, attempt) -> same delay; the schedule is reproducible.
  EXPECT_EQ(backoff_delay(7, 1), backoff_delay(7, 1));
  // Different seeds desynchronize the herd.
  bool any_differs = false;
  for (std::uint64_t s = 0; s < 8 && !any_differs; ++s) {
    any_differs = backoff_delay(s, 1) != backoff_delay(s + 100, 1);
  }
  EXPECT_TRUE(any_differs);
  // 75%..125% of the exponential base (25ms doubling, 2s cap).
  for (std::size_t attempt = 1; attempt <= 12; ++attempt) {
    std::uint64_t base = 25;
    for (std::size_t i = 1; i < attempt && base < 2000; ++i) base *= 2;
    if (base > 2000) base = 2000;
    const auto d = backoff_delay(42, attempt).count();
    EXPECT_GE(d, static_cast<long>(3 * base / 4)) << "attempt " << attempt;
    EXPECT_LE(d, static_cast<long>(base + base / 2 + 1))
        << "attempt " << attempt;
  }
}

// ------------------------------------------------------------ supervision

TEST_F(SupervisorTest, SuccessfulBodyPassesThrough) {
  SupervisorConfig cfg;
  const auto m = supervise_cell(cfg, "cell", "hash", [] {
    return tiny_matrix();
  });
  EXPECT_EQ(m.runs(), 1u);
}

TEST_F(SupervisorTest, RetriesThenSucceeds) {
  SupervisorConfig cfg;
  cfg.retries = 2;
  int calls = 0;
  const auto m = supervise_cell(cfg, "cell", "hash", [&] {
    if (++calls < 3) throw std::runtime_error("flaky");
    return tiny_matrix();
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(m.runs(), 1u);
}

TEST_F(SupervisorTest, QuarantineCarriesTheFailureRecord) {
  SupervisorConfig cfg;
  cfg.retries = 1;
  int calls = 0;
  try {
    (void)supervise_cell(cfg, "fig3/64t", "abcd1234", [&]() -> RunMatrix {
      ++calls;
      throw std::runtime_error("model blew up");
    });
    FAIL() << "expected CellQuarantined";
  } catch (const CellQuarantined& q) {
    EXPECT_EQ(calls, 2);  // 1 + retries
    EXPECT_EQ(q.failure.label, "fig3/64t");
    EXPECT_EQ(q.failure.hash, "abcd1234");
    EXPECT_EQ(q.failure.taxonomy, "exception");
    EXPECT_EQ(q.failure.error, "model blew up");
    EXPECT_EQ(q.failure.attempts, 2u);
  }
}

TEST_F(SupervisorTest, InjectedCellThrowIsRetriedWhenOccurrenceCounted) {
  // An @N fault fires once; the retry's attempt advances past it.
  fault::set_active_spec("cell_throw@1");
  SupervisorConfig cfg;
  cfg.retries = 1;
  int calls = 0;
  const auto m = supervise_cell(cfg, "cell", "hash", [&] {
    ++calls;
    return tiny_matrix();
  });
  EXPECT_EQ(calls, 1);  // first attempt faulted before the body ran
  EXPECT_EQ(m.runs(), 1u);
}

TEST_F(SupervisorTest, PersistentInjectedFaultQuarantines) {
  fault::set_active_spec("cell_throw:fig1*");
  SupervisorConfig cfg;
  cfg.retries = 1;
  try {
    (void)supervise_cell(cfg, "fig1/2t", "h", [] { return tiny_matrix(); });
    FAIL() << "expected CellQuarantined";
  } catch (const CellQuarantined& q) {
    EXPECT_EQ(q.failure.taxonomy, "exception");
    EXPECT_EQ(q.failure.attempts, 2u);
  }
  // Non-matching cells are untouched.
  const auto m =
      supervise_cell(cfg, "fig2/2t", "h", [] { return tiny_matrix(); });
  EXPECT_EQ(m.runs(), 1u);
}

TEST_F(SupervisorTest, CheckpointStopPropagatesUnretried) {
  SupervisorConfig cfg;
  cfg.retries = 5;
  int calls = 0;
  EXPECT_THROW(
      (void)supervise_cell(cfg, "cell", "h",
                           [&]() -> RunMatrix {
                             ++calls;
                             throw snap::CheckpointStop("deliberate stop");
                           }),
      snap::CheckpointStop);
  EXPECT_EQ(calls, 1);  // a deliberate stop is never a failure
}

TEST_F(SupervisorTest, TimeoutInsideBodyClassifiesAsTimeout) {
  SupervisorConfig cfg;
  cfg.timeout = std::chrono::milliseconds(20);
  try {
    (void)supervise_cell(cfg, "slow", "h", [] {
      // Simulates a repetition loop polling the armed deadline.
      for (;;) core::interruptible_stall(std::chrono::milliseconds(50));
      return tiny_matrix();  // unreachable
    });
    FAIL() << "expected CellQuarantined";
  } catch (const CellQuarantined& q) {
    EXPECT_EQ(q.failure.taxonomy, "timeout");
    EXPECT_EQ(q.failure.attempts, 1u);
  }
  // The deadline is disarmed on exit: the next cell is unaffected.
  EXPECT_FALSE(core::cell_deadline_exceeded());
}

TEST_F(SupervisorTest, SlowCellStallTripsTheTimeoutDeterministically) {
  // slow_cell:...:200ms against a 30ms budget: the injected stall burns the
  // budget before the body starts — the body must never run.
  fault::set_active_spec("slow_cell:slow*:200ms");
  SupervisorConfig cfg;
  cfg.timeout = std::chrono::milliseconds(30);
  int calls = 0;
  try {
    (void)supervise_cell(cfg, "slow/cell", "h", [&] {
      ++calls;
      return tiny_matrix();
    });
    FAIL() << "expected CellQuarantined";
  } catch (const CellQuarantined& q) {
    EXPECT_EQ(q.failure.taxonomy, "timeout");
  }
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace omv::cli
