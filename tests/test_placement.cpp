// Unit tests for sim/os_placement: pinned stability, unpinned migrations,
// oversubscription bookkeeping.

#include "sim/os_placement.hpp"

#include <gtest/gtest.h>

#include <set>

namespace omv::sim {
namespace {

std::vector<topo::CpuSet> singleton_affinities(std::size_t n) {
  std::vector<topo::CpuSet> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(topo::CpuSet::single(i));
  return v;
}

std::vector<topo::CpuSet> unbound_affinities(const topo::Machine& m,
                                             std::size_t n) {
  return {n, m.all_threads()};
}

TEST(Placement, PinnedStaysPut) {
  topo::Machine m = topo::Machine::vera();
  PlacementModel pm(m, singleton_affinities(8), /*pinned=*/true, {}, 1);
  const auto initial = pm.current().hw;
  for (int rep = 0; rep < 50; ++rep) {
    const auto& pl = pm.next_rep();
    EXPECT_EQ(pl.hw, initial);
    for (bool mig : pl.migrated) EXPECT_FALSE(mig);
  }
}

TEST(Placement, PinnedHonorsAffinity) {
  topo::Machine m = topo::Machine::vera();
  PlacementModel pm(m, singleton_affinities(8), true, {}, 1);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(pm.current().hw[i], i);
  }
}

TEST(Placement, InitialPlacementSpreadsOverCores) {
  // Unbound threads fill distinct physical cores (smt 0 first).
  topo::Machine m = topo::Machine::dardel();
  PlacementModel pm(m, unbound_affinities(m, 16), false, {}, 1);
  std::set<std::size_t> cores;
  for (std::size_t h : pm.current().hw) {
    EXPECT_EQ(m.thread(h).smt_index, 0u);
    cores.insert(m.thread(h).core);
  }
  EXPECT_EQ(cores.size(), 16u);
}

TEST(Placement, SharedPlaceDistributesWithin) {
  // Two threads pinned to the same 2-thread core place use both siblings.
  topo::Machine m = topo::Machine::dardel();
  std::vector<topo::CpuSet> aff{m.core_threads(0), m.core_threads(0)};
  PlacementModel pm(m, std::move(aff), true, {}, 1);
  const auto& pl = pm.current();
  EXPECT_NE(pl.hw[0], pl.hw[1]);
  EXPECT_EQ(m.thread(pl.hw[0]).core, 0u);
  EXPECT_EQ(m.thread(pl.hw[1]).core, 0u);
  EXPECT_TRUE(pl.smt_coscheduled[0]);
  EXPECT_TRUE(pl.smt_coscheduled[1]);
}

TEST(Placement, MixedSmtCoScheduleIsPerCore) {
  // 2 P-cores (SMT-2) + 4 E-cores (SMT-1): 8 HW threads over 6 cores, so
  // the retired floor-average smt_per_core() was 8/6 = 1 and the old
  // co-schedule flag could never fire on this machine. The per-core query
  // must flag both siblings of P-core 0 as co-scheduled.
  std::vector<topo::CoreClass> classes{{"P", 2.5, 3.8}, {"E", 1.8, 2.6}};
  std::vector<topo::HwThread> t(8);
  t[0] = {0, 0, 0, 0, 0, 0};
  t[1] = {1, 1, 0, 0, 0, 0};
  t[2] = {2, 2, 1, 0, 0, 1};
  t[3] = {3, 3, 1, 0, 0, 1};
  t[4] = {4, 4, 1, 0, 0, 1};
  t[5] = {5, 5, 1, 0, 0, 1};
  t[6] = {6, 0, 0, 0, 1, 0};
  t[7] = {7, 1, 0, 0, 1, 0};
  topo::Machine m("mixed", std::move(t), std::move(classes));

  {
    // Both siblings of P-core 0 host team threads: SMT co-scheduled.
    std::vector<topo::CpuSet> aff{topo::CpuSet::single(0),
                                  topo::CpuSet::single(6)};
    PlacementModel pm(m, std::move(aff), true, {}, 1);
    EXPECT_TRUE(pm.current().smt_coscheduled[0]);
    EXPECT_TRUE(pm.current().smt_coscheduled[1]);
    EXPECT_EQ(pm.current().share[0], 1u);
  }
  {
    // Two threads stacked on one single-context E-core HW thread: that is
    // oversubscription (share 2), not SMT co-scheduling.
    std::vector<topo::CpuSet> aff(2, topo::CpuSet::single(2));
    PlacementModel pm(m, std::move(aff), true, {}, 1);
    EXPECT_FALSE(pm.current().smt_coscheduled[0]);
    EXPECT_FALSE(pm.current().smt_coscheduled[1]);
    EXPECT_EQ(pm.current().share[0], 2u);
  }
}

TEST(Placement, FirstTouchDataDomainRecorded) {
  topo::Machine m = topo::Machine::dardel();
  PlacementModel pm(m, singleton_affinities(64), true, {}, 1);
  const auto& pl = pm.current();
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(pl.data_domain[i], m.thread(pl.hw[i]).numa);
  }
}

TEST(Placement, UnpinnedEventuallyMigrates) {
  topo::Machine m = topo::Machine::dardel();
  PlacementConfig cfg;
  cfg.migrate_prob = 0.2;
  PlacementModel pm(m, unbound_affinities(m, 32), false, cfg, 3);
  bool any_migration = false;
  for (int rep = 0; rep < 100 && !any_migration; ++rep) {
    const auto& pl = pm.next_rep();
    for (bool mig : pl.migrated) any_migration |= mig;
  }
  EXPECT_TRUE(any_migration);
}

TEST(Placement, UnpinnedDataDomainSurvivesMigration) {
  topo::Machine m = topo::Machine::dardel();
  PlacementConfig cfg;
  cfg.migrate_prob = 0.5;
  cfg.bad_migration_prob = 1.0;
  PlacementModel pm(m, unbound_affinities(m, 8), false, cfg, 7);
  const auto original = pm.current().data_domain;
  for (int rep = 0; rep < 20; ++rep) pm.next_rep();
  EXPECT_EQ(pm.current().data_domain, original);
}

TEST(Placement, ShareCountsOversubscription) {
  // Force all threads onto one HW thread via affinity.
  topo::Machine m = topo::Machine::vera();
  std::vector<topo::CpuSet> aff(3, topo::CpuSet::single(5));
  PlacementModel pm(m, std::move(aff), true, {}, 1);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(pm.current().share[i], 3u);
  }
}

TEST(Placement, BusySetMatchesPlacement) {
  topo::Machine m = topo::Machine::vera();
  PlacementModel pm(m, singleton_affinities(4), true, {}, 1);
  EXPECT_EQ(pm.busy_set().to_string(), "0-3");
}

TEST(Placement, DeterministicPerSeed) {
  topo::Machine m = topo::Machine::dardel();
  PlacementConfig cfg;
  cfg.migrate_prob = 0.3;
  PlacementModel a(m, unbound_affinities(m, 16), false, cfg, 99);
  PlacementModel b(m, unbound_affinities(m, 16), false, cfg, 99);
  for (int rep = 0; rep < 20; ++rep) {
    EXPECT_EQ(a.next_rep().hw, b.next_rep().hw);
  }
}

TEST(Placement, RescueReducesStacking) {
  // With rescue enabled, oversubscription episodes clear up over time.
  topo::Machine m = topo::Machine::dardel();
  PlacementConfig cfg;
  cfg.migrate_prob = 0.05;
  cfg.bad_migration_prob = 1.0;
  cfg.rescue_prob = 1.0;
  PlacementModel pm(m, unbound_affinities(m, 16), false, cfg, 5);
  int stacked_reps = 0;
  int clean_reps = 0;
  for (int rep = 0; rep < 300; ++rep) {
    const auto& pl = pm.next_rep();
    bool stacked = false;
    for (auto s : pl.share) stacked |= (s > 1);
    (stacked ? stacked_reps : clean_reps)++;
  }
  // Both states occur: stacking happens and rescue clears it.
  EXPECT_GT(stacked_reps, 0);
  EXPECT_GT(clean_reps, 0);
}

TEST(Placement, ThrowsOnEmpty) {
  topo::Machine m = topo::Machine::vera();
  EXPECT_THROW(PlacementModel(m, {}, true, {}, 1), std::invalid_argument);
  std::vector<topo::CpuSet> empty_aff{topo::CpuSet{}};
  EXPECT_THROW(PlacementModel(m, std::move(empty_aff), true, {}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace omv::sim
