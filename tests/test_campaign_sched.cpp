// Campaign cell-scheduler byte-identity: fork/exec the REAL omnivar driver
// and assert the scheduler's determinism contract —
//   * a multi-harness, multi-scenario campaign at --cell-jobs 4 produces
//     byte-identical stdout, per-harness JSON artifacts, and cache
//     contents to the serial --cell-jobs 1 run (campaign.json is exempt:
//     it records wall-clock seconds and the cell_jobs setting);
//   * the same identity holds under an injected cell_throw quarantine
//     (the driver forces serial dispatch while a fault plan is armed and
//     still exits 4 with the FAILED line in the right stdout position);
//   * enumeration matches execution: the --plan listing's spec hashes are
//     exactly the cells a serial campaign commits to the cache.
//
// The driver binary path arrives via OMNIVAR_BIN (set by the CMake test
// harness to $<TARGET_FILE:omnivar>); the suite skips when it is absent so
// the test library builds standalone.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

const char* omnivar_bin() { return std::getenv("OMNIVAR_BIN"); }

// Three harnesses x three scenario presets = nine (harness, scenario)
// units, protocol-heavy and quick-mode sized.
const std::vector<std::string> kHarnesses = {"fig1", "fig3", "table2"};
const std::vector<std::string> kScenarios = {"vera", "epyc-like",
                                             "quiet-hpc"};

/// fork/execs the driver with the standard multi-harness multi-scenario
/// selection plus `extra_args`, stdout > `stdout_path`. OMNIVAR_QUICK=1
/// and serial run-sharding keep the workload CI-sized; `fault_spec`
/// non-empty arms the deterministic fault plan in the child.
pid_t spawn_campaign(const std::string& bin,
                     const std::vector<std::string>& extra_args,
                     const std::string& stdout_path,
                     const std::string& fault_spec = {}) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (!::freopen(stdout_path.c_str(), "w", stdout)) ::_exit(97);
  ::setenv("OMNIVAR_QUICK", "1", 1);
  ::setenv("OMNIVAR_JOBS", "1", 1);
  if (!fault_spec.empty()) {
    ::setenv("OMNIVAR_FAULT_SPEC", fault_spec.c_str(), 1);
  }
  std::vector<std::string> args{bin};
  for (const auto& h : kHarnesses) {
    args.push_back("--only");
    args.push_back(h);
  }
  for (const auto& s : kScenarios) {
    args.push_back("--scenario");
    args.push_back(s);
  }
  for (const auto& a : extra_args) args.push_back(a);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(bin.c_str(), argv.data());
  ::_exit(98);
}

int wait_exit_code(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
}

std::string slurp(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(f),
          std::istreambuf_iterator<char>()};
}

/// Maps out-dir-relative path -> bytes for everything a campaign writes,
/// campaign.json excluded (it records wall-clock seconds and cell_jobs).
std::map<std::string, std::string> artifact_contents(const fs::path& out) {
  std::map<std::string, std::string> m;
  for (const auto& e : fs::recursive_directory_iterator(out)) {
    if (!e.is_regular_file()) continue;
    const std::string rel =
        fs::relative(e.path(), out).generic_string();
    if (rel == "campaign.json") continue;
    m[rel] = slurp(e.path());
  }
  return m;
}

void expect_identical_trees(const fs::path& serial, const fs::path& par) {
  const auto expected = artifact_contents(serial);
  const auto got = artifact_contents(par);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(got.size(), expected.size());
  for (const auto& [rel, bytes] : expected) {
    const auto it = got.find(rel);
    if (it == got.end()) {
      ADD_FAILURE() << "missing from cell-parallel run: " << rel;
      continue;
    }
    EXPECT_EQ(it->second, bytes) << "artifact differs: " << rel;
  }
}

class CampaignSchedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (omnivar_bin() == nullptr || !fs::exists(omnivar_bin())) {
      GTEST_SKIP() << "OMNIVAR_BIN not set / not built; skipping the "
                      "campaign scheduler end-to-end test";
    }
    dir_ = fs::temp_directory_path() /
           ("omnivar_sched_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(CampaignSchedTest, CellParallelCampaignBytesMatchSerial) {
  const std::string bin = omnivar_bin();

  const fs::path serial_out = dir_ / "serial";
  const pid_t serial = spawn_campaign(
      bin, {"--out", serial_out.string(), "--cell-jobs", "1"},
      (dir_ / "serial.log").string());
  ASSERT_EQ(wait_exit_code(serial), 0);

  const fs::path par_out = dir_ / "par4";
  const pid_t par = spawn_campaign(
      bin, {"--out", par_out.string(), "--cell-jobs", "4"},
      (dir_ / "par4.log").string());
  ASSERT_EQ(wait_exit_code(par), 0);

  // Science stdout is replayed in registry x scenario order: byte-equal.
  const std::string serial_log = slurp(dir_ / "serial.log");
  ASSERT_FALSE(serial_log.empty());
  EXPECT_EQ(slurp(dir_ / "par4.log"), serial_log);

  // Per-unit JSON artifacts and every cache entry byte-equal.
  expect_identical_trees(serial_out, par_out);

  // A warm re-run through the scheduler serves everything from cache and
  // stays byte-identical.
  const pid_t warm = spawn_campaign(
      bin, {"--out", par_out.string(), "--cell-jobs", "4"},
      (dir_ / "warm.log").string());
  ASSERT_EQ(wait_exit_code(warm), 0);
  EXPECT_EQ(slurp(dir_ / "warm.log"), serial_log);
}

TEST_F(CampaignSchedTest, QuarantineUnderCellParallelMatchesSerial) {
  const std::string bin = omnivar_bin();

  // Persistent fault: every fig1 Vera/t2/reduction attempt throws, in
  // every scenario — the cell quarantines its harness, the campaign
  // continues, exit 4.
  const std::string spec = "cell_throw:*/t2/reduction";

  const fs::path serial_out = dir_ / "serial";
  const pid_t serial = spawn_campaign(
      bin, {"--out", serial_out.string(), "--cell-jobs", "1"},
      (dir_ / "serial.log").string(), spec);
  ASSERT_EQ(wait_exit_code(serial), 4);  // kExitQuarantined

  const fs::path par_out = dir_ / "par4";
  const pid_t par = spawn_campaign(
      bin, {"--out", par_out.string(), "--cell-jobs", "4"},
      (dir_ / "par4.log").string(), spec);
  ASSERT_EQ(wait_exit_code(par), 4);

  // Identical stdout (the FAILED lines land in the same replayed
  // positions) and identical surviving artifacts/cache.
  const std::string serial_log = slurp(dir_ / "serial.log");
  EXPECT_NE(serial_log.find("[omnivar] FAILED cell"), std::string::npos);
  EXPECT_EQ(slurp(dir_ / "par4.log"), serial_log);
  expect_identical_trees(serial_out, par_out);
}

TEST_F(CampaignSchedTest, EnumerationMatchesExecution) {
  const std::string bin = omnivar_bin();

  // --plan: every cell the selection would run, one line per cell:
  // harness<TAB>scenario<TAB>label<TAB>hash<TAB>cost.
  const pid_t plan = spawn_campaign(bin, {"--plan"},
                                    (dir_ / "plan.tsv").string());
  ASSERT_EQ(wait_exit_code(plan), 0);
  std::set<std::string> planned;
  {
    std::istringstream in(slurp(dir_ / "plan.tsv"));
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::vector<std::string> cols;
      std::istringstream ls(line);
      std::string col;
      while (std::getline(ls, col, '\t')) cols.push_back(col);
      ASSERT_EQ(cols.size(), 5u) << "malformed plan line: " << line;
      planned.insert(cols[3]);
    }
  }
  ASSERT_FALSE(planned.empty());

  // Serial execution commits exactly the enumerated cells: the cache's
  // .key marker set is the planned hash set.
  const fs::path out = dir_ / "serial";
  const pid_t run = spawn_campaign(
      bin, {"--out", out.string(), "--cell-jobs", "1"},
      (dir_ / "serial.log").string());
  ASSERT_EQ(wait_exit_code(run), 0);
  std::set<std::string> computed;
  for (const auto& e : fs::directory_iterator(out / "cache")) {
    const std::string name = e.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".key") == 0) {
      computed.insert(name.substr(0, name.size() - 4));
    }
  }
  EXPECT_EQ(computed, planned);
}

}  // namespace
