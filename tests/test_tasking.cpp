// Unit tests for omp_model/tasking: the EPCC taskbench subset.

#include "omp_model/tasking.hpp"

#include <gtest/gtest.h>

namespace omv::ompsim {
namespace {

class TaskingTest : public ::testing::Test {
 protected:
  sim::Simulator sim_{topo::Machine::dardel(), sim::SimConfig::ideal()};

  SimTeam make_team(std::size_t threads) {
    TeamConfig cfg;
    cfg.n_threads = threads;
    SimTeam t(sim_, cfg);
    t.begin_run(1);
    return t;
  }
};

TEST_F(TaskingTest, ParallelGenerationCompletesAllWork) {
  auto team = make_team(4);
  const double t0 = team.now();
  parallel_task_generation(team, 64, 1e-6);
  // 256 tasks x 1us on 4 threads: at least 64us of pure work.
  EXPECT_GE(team.now() - t0, 64e-6);
}

TEST_F(TaskingTest, ParallelGenerationEndsAligned) {
  auto team = make_team(8);
  parallel_task_generation(team, 16, 1e-6);
  for (std::size_t i = 1; i < team.size(); ++i) {
    EXPECT_DOUBLE_EQ(team.clock(i), team.clock(0));
  }
}

TEST_F(TaskingTest, CreationOverheadGrowsWithContention) {
  // Same total work, more producers: per-task creation gets pricier, so
  // the overhead beyond pure work grows.
  auto small = make_team(2);
  const double t0 = small.now();
  parallel_task_generation(small, 512, 0.0);
  const double overhead_small = (small.now() - t0) / 512.0;

  auto big = make_team(64);
  const double t1 = big.now();
  parallel_task_generation(big, 512, 0.0);
  const double overhead_big = (big.now() - t1) / 512.0;
  EXPECT_GT(overhead_big, overhead_small);
}

TEST_F(TaskingTest, MasterGenerationSerializesOnProducer) {
  // With tiny tasks, the single producer bounds throughput: doubling the
  // team barely helps (the EPCC master-task shape).
  TaskCosts costs;
  auto t4 = make_team(4);
  const double a0 = t4.now();
  master_task_generation(t4, 1024, 0.0, costs);
  const double small_team = t4.now() - a0;

  auto t64 = make_team(64);
  const double b0 = t64.now();
  master_task_generation(t64, 1024, 0.0, costs);
  const double big_team = t64.now() - b0;

  EXPECT_GT(big_team, small_team * 0.5);
  // Both are bounded below by the serial creation time.
  EXPECT_GE(small_team, 1024 * costs.create);
  EXPECT_GE(big_team, 1024 * costs.create);
}

TEST_F(TaskingTest, ParallelGenerationScalesBetterThanMaster) {
  // With enough work per task, parallel generation uses the team while
  // master generation still pays the serial producer.
  const double work = 2e-6;
  auto a = make_team(32);
  const double a0 = a.now();
  parallel_task_generation(a, 32, work);  // 1024 tasks
  const double par = a.now() - a0;

  auto b = make_team(32);
  const double b0 = b.now();
  master_task_generation(b, 1024, work);
  const double mas = b.now() - b0;
  EXPECT_LT(par, mas);
}

TEST_F(TaskingTest, MasterGenerationRespectsReadyTimes) {
  // One huge team, tiny work: workers cannot execute tasks faster than
  // the producer creates them.
  TaskCosts costs;
  auto team = make_team(64);
  const double t0 = team.now();
  master_task_generation(team, 256, 0.0, costs);
  EXPECT_GE(team.now() - t0, 256 * costs.create);
}

TEST_F(TaskingTest, NoiseAffectsTasking) {
  auto cfg = sim::SimConfig::ideal();
  cfg.noise.kworker_rate_per_cpu = 100.0;
  cfg.noise.kworker_mean = 1e-3;
  sim::Simulator noisy(topo::Machine::dardel(), cfg);
  TeamConfig tc;
  tc.n_threads = 8;
  SimTeam quiet_team(sim_, tc);
  quiet_team.begin_run(1);
  SimTeam noisy_team(noisy, tc);
  noisy_team.begin_run(1);
  const double q0 = quiet_team.now();
  parallel_task_generation(quiet_team, 128, 10e-6);
  const double quiet_time = quiet_team.now() - q0;
  const double n0 = noisy_team.now();
  parallel_task_generation(noisy_team, 128, 10e-6);
  const double noisy_time = noisy_team.now() - n0;
  EXPECT_GT(noisy_time, quiet_time);
}

}  // namespace
}  // namespace omv::ompsim
