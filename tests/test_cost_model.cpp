// Unit tests for sim/cost_model: the per-platform runtime cost constants
// and the ceil_log2 helper the tree-barrier/reduction costs are built on.

#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

namespace omv::sim {
namespace {

TEST(CostModel, DefaultsArePositive) {
  const CostModel c;
  EXPECT_GT(c.fork_base, 0.0);
  EXPECT_GT(c.fork_per_thread, 0.0);
  EXPECT_GT(c.barrier_base, 0.0);
  EXPECT_GT(c.barrier_per_level, 0.0);
  EXPECT_GT(c.barrier_numa_step, 0.0);
  EXPECT_GT(c.barrier_socket_step, 0.0);
  EXPECT_GT(c.barrier_central_per_thread, 0.0);
  EXPECT_GT(c.reduction_per_level, 0.0);
  EXPECT_GT(c.critical_enter, 0.0);
  EXPECT_GT(c.lock_op, 0.0);
  EXPECT_GT(c.atomic_op, 0.0);
  EXPECT_GT(c.atomic_contention, 0.0);
  EXPECT_GT(c.static_setup, 0.0);
  EXPECT_GT(c.sched_grab_base, 0.0);
  EXPECT_GT(c.sched_grab_contention, 0.0);
  EXPECT_GT(c.migration_cost, 0.0);
  EXPECT_GT(c.oversub_stall_mean, 0.0);
  EXPECT_GT(c.work_scale, 0.0);
}

TEST(CostModel, SmtFractionsAreFractions) {
  const CostModel c;
  EXPECT_GT(c.smt_throughput, 0.0);
  EXPECT_LT(c.smt_throughput, 1.0);
  EXPECT_GE(c.smt_jitter, 0.0);
  EXPECT_GT(c.smt_sync_overhead, 0.0);
  EXPECT_GT(c.smt_sync_jitter, 0.0);
}

TEST(CostModel, VeraIsCalibratedSlowerThanDardel) {
  const CostModel d = CostModel::dardel();
  const CostModel v = CostModel::vera();
  // The paper's Table 2: Vera's delay loop runs ~7% long, its dynamic
  // chunk grabs are costlier, and cross-socket traffic is pricier.
  EXPECT_DOUBLE_EQ(d.work_scale, 1.0);
  EXPECT_GT(v.work_scale, 1.0);
  EXPECT_GT(v.sched_grab_base, d.sched_grab_base);
  EXPECT_GT(v.sched_grab_contention, d.sched_grab_contention);
  EXPECT_GT(v.barrier_socket_step, d.barrier_socket_step);
  EXPECT_GT(v.fork_per_thread, d.fork_per_thread);
}

TEST(CostModel, CentralizedBarrierScalesLinearly) {
  // The centralized-barrier cost at paper scale must exceed the tree
  // barrier's log-depth cost — that gap is why production runtimes (and
  // the ablation bench) default to trees.
  const CostModel c;
  const std::size_t threads = 128;
  const double central =
      c.barrier_central_per_thread * static_cast<double>(threads);
  const double tree =
      c.barrier_per_level * static_cast<double>(ceil_log2(threads));
  EXPECT_GT(central, tree);
}

TEST(CeilLog2, ExactPowersAndInBetween) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(8), 3u);
  EXPECT_EQ(ceil_log2(9), 4u);
  EXPECT_EQ(ceil_log2(128), 7u);
  EXPECT_EQ(ceil_log2(129), 8u);
  EXPECT_EQ(ceil_log2(1024), 10u);
}

TEST(CeilLog2, PaperThreadCounts) {
  // Dardel sweeps up to 254 HW threads (8 levels), Vera to 30 (5 levels).
  EXPECT_EQ(ceil_log2(254), 8u);
  EXPECT_EQ(ceil_log2(256), 8u);
  EXPECT_EQ(ceil_log2(30), 5u);
}

}  // namespace
}  // namespace omv::sim
