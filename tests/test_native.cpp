// Tests for the native OpenMP backends. The CI host may have a single core;
// these tests run at 1-2 threads with tiny workloads and check semantics,
// not performance.

#include "bench_suite/native.hpp"

#include <gtest/gtest.h>

namespace omv::bench {
namespace {

NativeConfig tiny_cfg() {
  NativeConfig cfg;
  cfg.n_threads = std::min<std::size_t>(2, native_max_threads());
  return cfg;
}

EpccParams tiny_sync_params() {
  auto p = EpccParams::syncbench();
  p.test_time_us = 100.0;  // keep reps short on slow CI
  return p;
}

TEST(NativeBackend, MaxThreadsPositive) {
  EXPECT_GE(native_max_threads(), 1u);
}

TEST(NativeSyncBench, RejectsZeroThreads) {
  NativeConfig cfg;
  cfg.n_threads = 0;
  EXPECT_THROW((NativeSyncBench{cfg}), std::invalid_argument);
}

TEST(NativeSyncBench, ReferenceTimePositive) {
  NativeSyncBench sb(tiny_cfg(), tiny_sync_params());
  EXPECT_GT(sb.reference_us(), 0.0);
}

TEST(NativeSyncBench, InnerrepsCachedAndPositive) {
  NativeSyncBench sb(tiny_cfg(), tiny_sync_params());
  const auto a = sb.innerreps(SyncConstruct::barrier);
  const auto b = sb.innerreps(SyncConstruct::barrier);
  EXPECT_GE(a, 1u);
  EXPECT_EQ(a, b);
}

TEST(NativeSyncBench, RepTimeMeasurable) {
  NativeSyncBench sb(tiny_cfg(), tiny_sync_params());
  for (auto c : {SyncConstruct::parallel, SyncConstruct::barrier,
                 SyncConstruct::critical, SyncConstruct::atomic,
                 SyncConstruct::reduction}) {
    EXPECT_GT(sb.rep_time_us(c), 0.0) << sync_construct_name(c);
  }
}

TEST(NativeSyncBench, ProtocolShape) {
  NativeSyncBench sb(tiny_cfg(), tiny_sync_params());
  ExperimentSpec spec;
  spec.runs = 2;
  spec.reps = 3;
  spec.warmup = 1;
  const auto m = sb.run_protocol(SyncConstruct::single, spec);
  EXPECT_EQ(m.runs(), 2u);
  EXPECT_EQ(m.run(0).size(), 3u);
}

TEST(NativeSchedBench, AllSchedulesRun) {
  auto params = EpccParams::schedbench();
  params.itersperthr = 64;  // tiny loop for CI
  params.delay_us = 0.5;
  NativeSchedBench sb(tiny_cfg(), params);
  EXPECT_GT(sb.rep_time_us("static", 1), 0.0);
  EXPECT_GT(sb.rep_time_us("dynamic", 1), 0.0);
  EXPECT_GT(sb.rep_time_us("guided", 1), 0.0);
  EXPECT_THROW(static_cast<void>(sb.rep_time_us("fancy", 1)), std::invalid_argument);
}

TEST(NativeSchedBench, WorkScalesWithIterations) {
  auto small = EpccParams::schedbench();
  small.itersperthr = 32;
  small.delay_us = 1.0;
  auto large = small;
  large.itersperthr = 320;
  NativeSchedBench sb_small(tiny_cfg(), small);
  NativeSchedBench sb_large(tiny_cfg(), large);
  // Take the min of a few measurements to shed scheduler noise.
  double t_small = 1e300;
  double t_large = 1e300;
  for (int i = 0; i < 3; ++i) {
    t_small = std::min(t_small, sb_small.rep_time_us("static", 1));
    t_large = std::min(t_large, sb_large.rep_time_us("static", 1));
  }
  EXPECT_GT(t_large, t_small * 3.0);
}

TEST(NativeStream, ValidatesSolution) {
  NativeConfig cfg = tiny_cfg();
  NativeStream st(cfg, 1 << 16);
  EXPECT_TRUE(st.validate());
}

TEST(NativeStream, KernelTimesPositive) {
  NativeStream st(tiny_cfg(), 1 << 16);
  for (auto k : all_stream_kernels()) {
    EXPECT_GT(st.kernel_time_s(k), 0.0) << stream_kernel_name(k);
  }
}

TEST(NativeStream, RunKernelOrdering) {
  NativeStream st(tiny_cfg(), 1 << 16);
  const auto r = st.run_kernel(StreamKernel::triad, 5);
  EXPECT_LE(r.min_s, r.avg_s);
  EXPECT_LE(r.avg_s, r.max_s);
}

}  // namespace
}  // namespace omv::bench
