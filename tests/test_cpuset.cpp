// Unit tests for topo/cpuset.

#include "topo/cpuset.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace omv::topo {
namespace {

TEST(CpuSet, EmptyByDefault) {
  CpuSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.contains(0));
}

TEST(CpuSet, AddRemoveContains) {
  CpuSet s;
  s.add(3);
  s.add(100);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(100));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.count(), 2u);
  s.remove(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.count(), 1u);
  s.remove(999);  // no-op
  EXPECT_EQ(s.count(), 1u);
}

TEST(CpuSet, SingleAndRange) {
  EXPECT_EQ(CpuSet::single(5).to_vector(), (std::vector<std::size_t>{5}));
  EXPECT_EQ(CpuSet::range(2, 3).to_vector(),
            (std::vector<std::size_t>{2, 3, 4}));
  EXPECT_TRUE(CpuSet::range(0, 0).empty());
}

TEST(CpuSet, FirstAndThrowOnEmpty) {
  CpuSet s;
  s.add(65);
  s.add(7);
  EXPECT_EQ(s.first(), 7u);
  EXPECT_THROW(static_cast<void>(CpuSet{}.first()), std::out_of_range);
}

TEST(CpuSet, ParseSimpleList) {
  const auto s = CpuSet::parse("0,2,4");
  EXPECT_EQ(s.to_vector(), (std::vector<std::size_t>{0, 2, 4}));
}

TEST(CpuSet, ParseRanges) {
  const auto s = CpuSet::parse("0-3,8,10-11");
  EXPECT_EQ(s.to_vector(),
            (std::vector<std::size_t>{0, 1, 2, 3, 8, 10, 11}));
}

TEST(CpuSet, ParseEmptyString) {
  EXPECT_TRUE(CpuSet::parse("").empty());
}

TEST(CpuSet, ParseRejectsMalformed) {
  EXPECT_THROW(CpuSet::parse("a"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("1-"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("3-1"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("1,,2"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("1 2"), std::invalid_argument);
}

TEST(CpuSet, ToStringRoundTrip) {
  const auto s = CpuSet::parse("0-3,8,10-11");
  EXPECT_EQ(s.to_string(), "0-3,8,10-11");
  EXPECT_EQ(CpuSet::parse(s.to_string()), s);
}

TEST(CpuSet, ToStringCollapsesRuns) {
  CpuSet s;
  for (std::size_t i = 5; i <= 9; ++i) s.add(i);
  EXPECT_EQ(s.to_string(), "5-9");
}

TEST(CpuSet, UnionIntersectionDifference) {
  const auto a = CpuSet::parse("0-4");
  const auto b = CpuSet::parse("3-6");
  EXPECT_EQ((a | b).to_string(), "0-6");
  EXPECT_EQ((a & b).to_string(), "3-4");
  EXPECT_EQ((a - b).to_string(), "0-2");
}

TEST(CpuSet, OperationsAcrossWordBoundaries) {
  const auto a = CpuSet::parse("60-70");
  const auto b = CpuSet::parse("64-80");
  EXPECT_EQ((a & b).to_string(), "64-70");
  EXPECT_EQ((a | b).count(), 21u);
}

TEST(CpuSet, EqualityIgnoresTrailingZeros) {
  CpuSet a;
  a.add(200);
  a.remove(200);
  EXPECT_EQ(a, CpuSet{});
}

TEST(CpuSet, LargeIds) {
  CpuSet s;
  s.add(1023);
  EXPECT_TRUE(s.contains(1023));
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.first(), 1023u);
}

TEST(CpuSetIteration, MatchesToVector) {
  CpuSet s = CpuSet::parse("0-3,63-65,640");
  std::vector<std::size_t> iterated;
  for (std::size_t cpu : s) iterated.push_back(cpu);
  EXPECT_EQ(iterated, s.to_vector());
  EXPECT_EQ(iterated.size(), s.count());
}

TEST(CpuSetIteration, EmptySet) {
  CpuSet s;
  EXPECT_TRUE(s.begin() == s.end());
  s.add(5);
  s.remove(5);
  for (std::size_t cpu : s) {
    FAIL() << "unexpected member " << cpu;
  }
}

TEST(CpuSetIteration, SkipsInteriorEmptyWords) {
  // Members in words 0 and 3, nothing in words 1-2.
  CpuSet s;
  s.add(1);
  s.add(200);
  std::vector<std::size_t> iterated;
  for (std::size_t cpu : s) iterated.push_back(cpu);
  EXPECT_EQ(iterated, (std::vector<std::size_t>{1, 200}));
}

TEST(CpuSetIteration, ForwardIteratorSemantics) {
  CpuSet s = CpuSet::parse("4,7");
  auto it = s.begin();
  EXPECT_EQ(*it, 4u);
  auto copy = it++;
  EXPECT_EQ(*copy, 4u);
  EXPECT_EQ(*it, 7u);
  ++it;
  EXPECT_TRUE(it == s.end());
}

}  // namespace
}  // namespace omv::topo
