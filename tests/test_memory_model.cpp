// Unit tests for sim/memory: bandwidth sharing and NUMA penalties.

#include "sim/memory.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace omv::sim {
namespace {

class MemoryModelTest : public ::testing::Test {
 protected:
  topo::Machine m_ = topo::Machine::vera();  // 2 sockets, 1 domain each
  MemConfig cfg_ = MemConfig::vera();
  MemoryModel model_{m_, cfg_};
};

TEST_F(MemoryModelTest, SingleThreadLimitedByCore) {
  // One thread cannot exceed the per-core ceiling.
  EXPECT_DOUBLE_EQ(model_.thread_gbps(0, 0, 1), cfg_.per_core_gbps);
}

TEST_F(MemoryModelTest, ManySharersLimitedByDomain) {
  const double bw = model_.thread_gbps(0, 0, 16);
  EXPECT_DOUBLE_EQ(bw, cfg_.domain_gbps / 16.0);
}

TEST_F(MemoryModelTest, RemoteSocketPenalty) {
  // Thread on socket 1 (hw 16) accessing domain 0 pays the socket factor.
  const double local = model_.thread_gbps(0, 0, 4);
  const double remote = model_.thread_gbps(16, 0, 4);
  EXPECT_NEAR(remote, local * cfg_.remote_socket_factor, 1e-12);
}

TEST_F(MemoryModelTest, RemoteNumaSameSocketOnDardel) {
  topo::Machine d = topo::Machine::dardel();
  MemConfig cfg = MemConfig::dardel();
  MemoryModel model(d, cfg);
  // HW 0 is numa 0; numa 1 is the adjacent domain on the same socket.
  const double local = model.thread_gbps(0, 0, 1);
  const double near_remote = model.thread_gbps(0, 1, 1);
  const double far_remote = model.thread_gbps(0, 4, 1);  // other socket
  EXPECT_LT(near_remote, local);
  EXPECT_LT(far_remote, near_remote);
}

TEST_F(MemoryModelTest, PhaseTimesBasic) {
  const std::vector<std::size_t> hw{0, 1};
  const std::vector<std::size_t> dom{0, 0};
  const std::vector<double> jitter{1.0, 1.0};
  const double bytes = 1e9;
  const auto t = model_.phase_times(hw, dom, bytes, jitter);
  ASSERT_EQ(t.size(), 2u);
  // Two sharers of domain 0, per-core cap 14 < 60/2=30: core-limited.
  EXPECT_NEAR(t[0], bytes / (cfg_.per_core_gbps * 1e9), 1e-12);
  EXPECT_DOUBLE_EQ(t[0], t[1]);
}

TEST_F(MemoryModelTest, PhaseTimesJitterScales) {
  const std::vector<std::size_t> hw{0};
  const std::vector<std::size_t> dom{0};
  const auto fast = model_.phase_times(hw, dom, 1e9, {2.0});
  const auto slow = model_.phase_times(hw, dom, 1e9, {0.5});
  EXPECT_NEAR(slow[0] / fast[0], 4.0, 1e-9);
}

TEST_F(MemoryModelTest, PhaseTimesValidatesSizes) {
  EXPECT_THROW(static_cast<void>(model_.phase_times({0, 1}, {0}, 1.0, {1.0, 1.0})),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(model_.phase_times({0}, {0}, 1.0, {})),
               std::invalid_argument);
}

TEST_F(MemoryModelTest, MoreThreadsNeverSlowerTotal) {
  // Fixed total bytes split across more threads never increases the
  // per-thread time (the Fig. 2 scaling property).
  const double total = 8e9;
  double prev = 1e300;
  for (std::size_t t = 1; t <= 16; t *= 2) {
    std::vector<std::size_t> hw;
    std::vector<std::size_t> dom(t, 0);
    std::vector<double> jit(t, 1.0);
    for (std::size_t i = 0; i < t; ++i) hw.push_back(i);
    const auto times =
        model_.phase_times(hw, dom, total / static_cast<double>(t), jit);
    const double worst = *std::max_element(times.begin(), times.end());
    EXPECT_LE(worst, prev + 1e-12) << t;
    prev = worst;
  }
}

}  // namespace
}  // namespace omv::sim
