// Unit tests for core/run_matrix: the paper's 10x100 protocol container and
// its derived metrics.

#include "core/run_matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace omv {
namespace {

RunMatrix sample_matrix() {
  RunMatrix m("test");
  m.add_run({10.0, 12.0, 11.0});
  m.add_run({20.0, 22.0, 21.0});
  return m;
}

TEST(RunMatrix, Label) { EXPECT_EQ(sample_matrix().label(), "test"); }

TEST(RunMatrix, RunsAndAccess) {
  const auto m = sample_matrix();
  EXPECT_EQ(m.runs(), 2u);
  EXPECT_EQ(m.run(0).size(), 3u);
  EXPECT_DOUBLE_EQ(m.run(1)[0], 20.0);
}

TEST(RunMatrix, RunMeans) {
  const auto m = sample_matrix();
  EXPECT_DOUBLE_EQ(m.run_mean(0), 11.0);
  EXPECT_DOUBLE_EQ(m.run_mean(1), 21.0);
  const auto means = m.run_means();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[1], 21.0);
}

TEST(RunMatrix, NormalizedMinMaxPerRun) {
  const auto m = sample_matrix();
  EXPECT_NEAR(m.run_norm_min(0), 10.0 / 11.0, 1e-12);
  EXPECT_NEAR(m.run_norm_max(0), 12.0 / 11.0, 1e-12);
}

TEST(RunMatrix, RunCv) {
  RunMatrix m;
  m.add_run({5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(m.run_cv(0), 0.0);
  m.add_run({1.0, 2.0, 3.0});
  EXPECT_GT(m.run_cv(1), 0.0);
}

TEST(RunMatrix, GrandMeanAndSpread) {
  const auto m = sample_matrix();
  EXPECT_DOUBLE_EQ(m.grand_mean(), 16.0);
  EXPECT_NEAR(m.run_mean_spread(), 21.0 / 11.0, 1e-12);
}

TEST(RunMatrix, RunToRunCv) {
  RunMatrix m;
  m.add_run({10.0, 10.0});
  m.add_run({10.0, 10.0});
  EXPECT_DOUBLE_EQ(m.run_to_run_cv(), 0.0);
  m.add_run({30.0, 30.0});
  EXPECT_GT(m.run_to_run_cv(), 0.3);
}

TEST(RunMatrix, FlattenRowMajor) {
  const auto m = sample_matrix();
  const auto f = m.flatten();
  ASSERT_EQ(f.size(), 6u);
  EXPECT_DOUBLE_EQ(f[0], 10.0);
  EXPECT_DOUBLE_EQ(f[3], 20.0);
}

TEST(RunMatrix, PooledSummary) {
  const auto m = sample_matrix();
  const auto s = m.pooled_summary();
  EXPECT_EQ(s.n, 6u);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 22.0);
}

TEST(RunMatrix, VarianceComponentsSeparateRunEffect) {
  const auto m = sample_matrix();  // two runs with distinct means
  const auto vc = m.variance_components();
  EXPECT_GT(vc.icc, 0.5);
}

TEST(RunMatrix, UnequalRepCountsSupported) {
  RunMatrix m;
  m.add_run({1.0});
  m.add_run({2.0, 3.0, 4.0});
  EXPECT_EQ(m.runs(), 2u);
  EXPECT_EQ(m.flatten().size(), 4u);
  EXPECT_DOUBLE_EQ(m.run_mean(1), 3.0);
}

TEST(RunMatrix, EmptyMatrixSafeDefaults) {
  RunMatrix m;
  EXPECT_EQ(m.runs(), 0u);
  EXPECT_DOUBLE_EQ(m.run_mean_spread(), 1.0);
  EXPECT_EQ(m.flatten().size(), 0u);
}

}  // namespace
}  // namespace omv
