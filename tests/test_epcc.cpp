// Unit tests for bench_suite/epcc: the measurement protocol helpers.

#include "bench_suite/epcc.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace omv::bench {
namespace {

TEST(EpccParams, Table1Defaults) {
  const auto sched = EpccParams::schedbench();
  EXPECT_EQ(sched.outer_reps, 100u);
  EXPECT_DOUBLE_EQ(sched.delay_us, 15.0);
  EXPECT_DOUBLE_EQ(sched.test_time_us, 1000.0);
  EXPECT_EQ(sched.itersperthr, 8192u);

  const auto sync = EpccParams::syncbench();
  EXPECT_EQ(sync.outer_reps, 100u);
  EXPECT_DOUBLE_EQ(sync.delay_us, 0.1);
  EXPECT_DOUBLE_EQ(sync.test_time_us, 1000.0);
}

TEST(SyncConstructs, AllNineListed) {
  EXPECT_EQ(all_sync_constructs().size(), 9u);
}

TEST(SyncConstructs, NamesAreUnique) {
  std::set<std::string> names;
  for (auto c : all_sync_constructs()) {
    names.insert(sync_construct_name(c));
  }
  EXPECT_EQ(names.size(), 9u);
  EXPECT_TRUE(names.count("reduction"));
  EXPECT_TRUE(names.count("parallel"));
}

TEST(CalibrateInnerreps, TargetsTestTime) {
  EXPECT_EQ(calibrate_innerreps(10.0, 1000.0), 100u);
  EXPECT_EQ(calibrate_innerreps(1000.0, 1000.0), 1u);
}

TEST(CalibrateInnerreps, ClampsToBounds) {
  EXPECT_EQ(calibrate_innerreps(1e9, 1000.0), 1u);
  EXPECT_EQ(calibrate_innerreps(1e-9, 1000.0), 1000000u);
  EXPECT_EQ(calibrate_innerreps(0.0, 1000.0), 1000u);  // degenerate guard
}

TEST(OverheadUs, EpccDefinition) {
  // 100 instances took 1500us, reference payload is 10us/instance:
  // overhead = 15 - 10 = 5us.
  EXPECT_DOUBLE_EQ(overhead_us(1500.0, 100, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(overhead_us(1500.0, 0, 10.0), 0.0);
}

TEST(DelayLoop, CalibrationIsPositive) {
  const double ipu = calibrate_delay_per_us();
  EXPECT_GT(ipu, 0.0);
}

// Note: the wall-clock-sensitive spin-delay accuracy check lives in
// test_epcc_timing.cpp (labeled `integration`, excluded from the quick
// lane) — under a parallel ctest run the scheduler can stretch any single
// spin batch far past its target, which made it flaky here.

TEST(DelayLoop, ZeroDelayReturnsImmediately) {
  spin_delay(0.0, 1000.0);  // must not hang or crash
  spin_delay(-5.0, 1000.0);
  SUCCEED();
}

}  // namespace
}  // namespace omv::bench
