// Unit tests for core/report: table/series rendering in all formats.

#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace omv::report {
namespace {

Table sample_table() {
  Table t({"run", "mean", "cv"});
  t.add_row({"1", "10.5", "0.01"});
  t.add_row({"2", "11.0", "0.02"});
  return t;
}

TEST(Table, Dimensions) {
  const auto t = sample_table();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, AsciiContainsHeaderAndSeparator) {
  const auto s = sample_table().render(Format::ascii);
  EXPECT_NE(s.find("run"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("11.0"), std::string::npos);
}

TEST(Table, CsvFormat) {
  const auto s = sample_table().render(Format::csv);
  EXPECT_NE(s.find("run,mean,cv"), std::string::npos);
  EXPECT_NE(s.find("1,10.5,0.01"), std::string::npos);
}

TEST(Table, MarkdownFormat) {
  const auto s = sample_table().render(Format::markdown);
  EXPECT_NE(s.find("| run |"), std::string::npos);
  EXPECT_NE(s.find("---|"), std::string::npos);
}

TEST(Table, PrintToStream) {
  std::ostringstream os;
  sample_table().print(os, Format::csv);
  EXPECT_FALSE(os.str().empty());
}

TEST(Fmt, FixedDigits) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(3.0, 0), "3");
  EXPECT_EQ(fmt(1234.5678, 1), "1234.6");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_pct(0.031, 1), "3.1%");
  EXPECT_EQ(fmt_pct(1.5, 0), "150%");
}

TEST(Banner, ContainsTitle) {
  const auto b = banner("Table 2");
  EXPECT_NE(b.find("Table 2"), std::string::npos);
  EXPECT_NE(b.find("===="), std::string::npos);
}

TEST(Series, RendersColumns) {
  Series s("threads", {"mean_us", "cv"});
  s.add(4, {124020.0, 0.001});
  s.add(254, {154277.0, 0.030});
  const auto out = s.render(Format::ascii, 3);
  EXPECT_NE(out.find("threads"), std::string::npos);
  EXPECT_NE(out.find("mean_us"), std::string::npos);
  EXPECT_NE(out.find("254"), std::string::npos);
}

TEST(Series, SizeMismatchThrows) {
  Series s("x", {"y"});
  EXPECT_THROW(s.add(1, {1.0, 2.0}), std::invalid_argument);
}

TEST(Series, CsvRendering) {
  Series s("x", {"y"});
  s.add(1, {2.0});
  const auto out = s.render(Format::csv, 1);
  EXPECT_NE(out.find("x,y"), std::string::npos);
  EXPECT_NE(out.find("1,2.0"), std::string::npos);
}

}  // namespace
}  // namespace omv::report
