// Unit tests for core/descriptive: streaming stats, percentiles, MAD,
// geometric mean, batch summaries.

#include "core/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace omv::stats {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(OnlineStats, CvIsStdOverMean) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_NEAR(s.cv(), s.stddev() / 2.0, 1e-15);
}

TEST(OnlineStats, CvZeroMeanGuard) {
  OnlineStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(OnlineStats, MinMaxTracking) {
  OnlineStats s;
  for (double x : {3.0, -2.0, 10.0, 7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0 + i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(OnlineStats, NumericallyStableNearConstant) {
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(1e9 + (i % 2) * 1e-3);
  EXPECT_NEAR(s.variance(), 0.25e-6, 1e-9);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 7.0);
}

TEST(Percentile, MedianEvenCountInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Percentile, MedianOddCount) {
  const std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
}

TEST(Percentile, QuartilesType7) {
  // numpy.percentile([1..5], 25) == 2.0 (linear / type-7).
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 4.0);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 150.0), 3.0);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Mad, ConstantSampleIsZero) {
  const std::vector<double> v{4.0, 4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(mad(v), 0.0);
}

TEST(Mad, KnownValue) {
  // median = 2, abs devs = {1,0,1} -> MAD = 1 * 1.4826.
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_NEAR(mad(v), 1.4826, 1e-12);
}

TEST(Mad, RobustToOneOutlier) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const double base = mad(v);
  v.back() = 5000.0;
  EXPECT_NEAR(mad(v), base, 1.5);  // still the same order of magnitude
}

TEST(Geomean, KnownValue) {
  const std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(v), 4.0, 1e-12);
}

TEST(Geomean, SkipsNonPositive) {
  const std::vector<double> v{-1.0, 0.0, 4.0, 4.0};
  EXPECT_NEAR(geomean(v), 4.0, 1e-12);
}

TEST(Geomean, EmptyReturnsZero) { EXPECT_EQ(geomean({}), 0.0); }

TEST(Summarize, EmptySample) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.norm_min(), 0.0);
  EXPECT_EQ(s.norm_max(), 0.0);
}

TEST(Summarize, BasicFields) {
  const std::vector<double> v{2.0, 4.0, 6.0, 8.0};
  const auto s = summarize(v);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.iqr, s.p75 - s.p25);
}

TEST(Summarize, NormalizedMinMax) {
  const std::vector<double> v{8.0, 10.0, 12.0};
  const auto s = summarize(v);
  EXPECT_NEAR(s.norm_min(), 0.8, 1e-12);
  EXPECT_NEAR(s.norm_max(), 1.2, 1e-12);
}

TEST(Summarize, SymmetricSampleHasNearZeroSkew) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto s = summarize(v);
  EXPECT_NEAR(s.skewness, 0.0, 1e-12);
}

TEST(Summarize, RightSkewedSamplePositiveSkew) {
  const std::vector<double> v{1.0, 1.0, 1.0, 1.0, 100.0};
  EXPECT_GT(summarize(v).skewness, 1.0);
}

TEST(Summarize, ConstantSampleZeroCv) {
  const std::vector<double> v{3.0, 3.0, 3.0, 3.0};
  const auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.skewness, 0.0);
}

TEST(SortedCopy, SortsAscending) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  const auto s = sorted_copy(v);
  EXPECT_EQ(s, (std::vector<double>{1.0, 2.0, 3.0}));
}

// Property sweep: percentile_sorted is monotone in p for random-ish samples.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  const int n = GetParam();
  std::vector<double> v;
  for (int i = 0; i < n; ++i) {
    v.push_back(std::fmod(static_cast<double>(i) * 7919.0, 97.0));
  }
  const auto sorted = sorted_copy(v);
  double prev = percentile_sorted(sorted, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile_sorted(sorted, p);
    EXPECT_GE(cur, prev) << "p=" << p << " n=" << n;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PercentileMonotone,
                         ::testing::Values(1, 2, 3, 5, 10, 33, 100, 1000));

// NaN robustness: NaN breaks std::sort's strict weak ordering, so every
// order statistic of a poisoned sample must propagate NaN instead of
// returning sort garbage.

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(NanRobustness, HasNanDetects) {
  EXPECT_FALSE(has_nan({}));
  EXPECT_FALSE(has_nan(std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(has_nan(std::vector<double>{1.0, kNan, 2.0}));
}

TEST(NanRobustness, PercentilePropagatesNan) {
  const std::vector<double> v{3.0, kNan, 1.0, 2.0};
  EXPECT_TRUE(std::isnan(percentile(v, 50.0)));
  EXPECT_TRUE(std::isnan(percentile(v, 0.0)));
}

TEST(NanRobustness, MadPropagatesNan) {
  const std::vector<double> v{1.0, 2.0, kNan};
  EXPECT_TRUE(std::isnan(mad(v)));
}

TEST(NanRobustness, GeomeanPropagatesNanButSkipsNonPositive) {
  EXPECT_TRUE(std::isnan(geomean(std::vector<double>{1.0, kNan})));
  // Non-positive values are skipped by design (documented behavior).
  EXPECT_DOUBLE_EQ(geomean(std::vector<double>{-5.0, 0.0, 4.0, 9.0}), 6.0);
}

TEST(NanRobustness, SummarizePoisonsEveryMoment) {
  const std::vector<double> v{10.0, kNan, 30.0};
  const auto s = summarize(v);
  EXPECT_EQ(s.n, 3u);
  EXPECT_TRUE(std::isnan(s.mean));
  EXPECT_TRUE(std::isnan(s.stddev));
  EXPECT_TRUE(std::isnan(s.cv));
  EXPECT_TRUE(std::isnan(s.min));
  EXPECT_TRUE(std::isnan(s.max));
  EXPECT_TRUE(std::isnan(s.median));
  EXPECT_TRUE(std::isnan(s.p99));
  EXPECT_TRUE(std::isnan(s.iqr));
  EXPECT_TRUE(std::isnan(s.mad));
  EXPECT_TRUE(std::isnan(s.skewness));
  EXPECT_TRUE(std::isnan(s.kurtosis));
}

TEST(NanRobustness, OnlineStatsExtremaPropagateNan) {
  OnlineStats s;
  s.add(5.0);
  s.add(kNan);
  s.add(1.0);  // NaN must stick even when later samples are clean
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_EQ(s.count(), 3u);
}

TEST(PercentileInPlace, BitIdenticalToSortedPath) {
  // percentile() now selects with nth_element instead of sorting; the
  // selected elements are the exact order statistics, so the interpolated
  // result must match the sorted path bit for bit — including fractional
  // ranks, duplicates, and negative values.
  std::vector<double> xs = {5.0,  -3.25, 7.5, 7.5, 0.0,  12.125,
                            -3.25, 2.0,  9.0, 1.0, 42.0, -17.5};
  for (double p : {0.0, 1.0, 10.0, 25.0, 33.3, 50.0, 66.7, 75.0, 90.0,
                   99.0, 100.0}) {
    const auto sorted = sorted_copy(xs);
    std::vector<double> scratch = xs;
    EXPECT_EQ(percentile_in_place(scratch, p), percentile_sorted(sorted, p))
        << "p=" << p;
    EXPECT_EQ(percentile(xs, p), percentile_sorted(sorted, p)) << "p=" << p;
  }
}

TEST(PercentileInPlace, DegenerateSizes) {
  std::vector<double> empty;
  EXPECT_EQ(percentile_in_place(empty, 50.0), 0.0);
  std::vector<double> one = {3.5};
  EXPECT_EQ(percentile_in_place(one, 50.0), 3.5);
  std::vector<double> two = {4.0, 2.0};
  EXPECT_EQ(percentile_in_place(two, 50.0), 3.0);
  EXPECT_EQ(percentile_in_place(two, 100.0), 4.0);
}

TEST(PercentileInPlace, ComposesAfterPartialReordering) {
  // bootstrap_ci selects two bounds from the same buffer; the second
  // selection must still find exact order statistics on the partially
  // reordered data.
  std::vector<double> xs;
  for (int i = 0; i < 501; ++i) xs.push_back(std::cos(i * 0.7) * 100.0);
  const auto sorted = sorted_copy(xs);
  std::vector<double> scratch = xs;
  const double lo = percentile_in_place(scratch, 2.5);
  const double hi = percentile_in_place(scratch, 97.5);
  EXPECT_EQ(lo, percentile_sorted(sorted, 2.5));
  EXPECT_EQ(hi, percentile_sorted(sorted, 97.5));
}

}  // namespace
}  // namespace omv::stats
