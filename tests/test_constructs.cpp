// Unit tests for omp_model/constructs: per-construct cost structure on an
// ideal (noise-free) simulator where timings are exact.

#include "omp_model/constructs.hpp"

#include <gtest/gtest.h>

namespace omv::ompsim {
namespace {

class ConstructsTest : public ::testing::Test {
 protected:
  sim::Simulator sim_{topo::Machine::dardel(), sim::SimConfig::ideal()};

  SimTeam make_team(std::size_t threads) {
    TeamConfig cfg;
    cfg.n_threads = threads;
    SimTeam t(sim_, cfg);
    t.begin_run(1);
    return t;
  }

  double elapsed(SimTeam& team, const std::function<void(SimTeam&)>& fn) {
    const double t0 = team.now();
    fn(team);
    return team.now() - t0;
  }
};

TEST_F(ConstructsTest, ParallelRegionCost) {
  auto team = make_team(8);
  const double e = elapsed(team, [](SimTeam& t) {
    parallel_region(t, 1e-6);
  });
  EXPECT_NEAR(e, team.fork_cost() + 1e-6 + team.barrier_cost(), 1e-12);
}

TEST_F(ConstructsTest, BarrierConstructCost) {
  auto team = make_team(8);
  const double e = elapsed(team, [](SimTeam& t) {
    barrier_construct(t, 1e-6);
  });
  EXPECT_NEAR(e, 1e-6 + team.barrier_cost(), 1e-12);
}

TEST_F(ConstructsTest, ForConstructAddsSetup) {
  auto team = make_team(8);
  const double e = elapsed(team, [](SimTeam& t) { for_construct(t, 1e-6); });
  EXPECT_NEAR(e, 1e-6 + sim_.costs().static_setup + team.barrier_cost(),
              1e-12);
}

TEST_F(ConstructsTest, SingleOnlyOneThreadWorks) {
  auto team = make_team(8);
  const double e = elapsed(team, [](SimTeam& t) {
    single_construct(t, 5e-6);
  });
  // Payload appears once, not 8 times.
  EXPECT_NEAR(e,
              5e-6 + sim_.costs().single_arbitration + team.barrier_cost(),
              1e-12);
}

TEST_F(ConstructsTest, CriticalSerializesAllThreads) {
  auto team = make_team(8);
  const double work = 2e-6;
  const double e = elapsed(team, [&](SimTeam& t) {
    critical_construct(t, work);
  });
  // 8 threads through a work+enter section, serialized.
  EXPECT_NEAR(e, 8.0 * (work + sim_.costs().critical_enter), 1e-12);
}

TEST_F(ConstructsTest, LockMirrorsCriticalWithLockCost) {
  auto team = make_team(4);
  const double e = elapsed(team, [](SimTeam& t) { lock_construct(t, 1e-6); });
  EXPECT_NEAR(e, 4.0 * (1e-6 + sim_.costs().lock_op), 1e-12);
}

TEST_F(ConstructsTest, OrderedPipelines) {
  auto team = make_team(4);
  const double e = elapsed(team, [](SimTeam& t) {
    ordered_construct(t, 1e-6);
  });
  EXPECT_NEAR(e,
              4.0 * (1e-6 + sim_.costs().ordered_wait) + team.barrier_cost(),
              1e-12);
}

TEST_F(ConstructsTest, AtomicContentionGrowsWithTeam) {
  auto small = make_team(2);
  auto big = make_team(128);
  const double e_small =
      elapsed(small, [](SimTeam& t) { atomic_construct(t); });
  const double e_big = elapsed(big, [](SimTeam& t) { atomic_construct(t); });
  EXPECT_GT(e_big, e_small);
}

TEST_F(ConstructsTest, ReductionCostlierThanBarrier) {
  // The paper singles out reduction as the most expensive sync construct.
  auto team_r = make_team(64);
  const double red = elapsed(team_r, [](SimTeam& t) {
    reduction_construct(t, 1e-7);
  });
  auto team_b = make_team(64);
  const double bar = elapsed(team_b, [](SimTeam& t) {
    barrier_construct(t, 1e-7);
  });
  EXPECT_GT(red, bar);
}

TEST_F(ConstructsTest, ReductionScalesWithLog2Threads) {
  double prev = 0.0;
  for (std::size_t t : {4u, 16u, 64u}) {
    auto team = make_team(t);
    const double e = elapsed(team, [](SimTeam& tm) {
      reduction_construct(tm, 0.0);
    });
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST_F(ConstructsTest, RepeatsScaleDeterministicCosts) {
  auto team1 = make_team(8);
  const double one = elapsed(team1, [](SimTeam& t) {
    parallel_region(t, 1e-6, 1);
  });
  auto team10 = make_team(8);
  const double ten = elapsed(team10, [](SimTeam& t) {
    parallel_region(t, 1e-6, 10);
  });
  EXPECT_NEAR(ten, 10.0 * one, 1e-10);
}

TEST_F(ConstructsTest, RepeatsZeroTreatedAsOne) {
  auto a = make_team(4);
  const double e0 = elapsed(a, [](SimTeam& t) {
    barrier_construct(t, 1e-6, 0);
  });
  auto b = make_team(4);
  const double e1 = elapsed(b, [](SimTeam& t) {
    barrier_construct(t, 1e-6, 1);
  });
  EXPECT_DOUBLE_EQ(e0, e1);
}

TEST_F(ConstructsTest, SerializedConstructsLeaveThreadsUnaligned) {
  auto team = make_team(4);
  critical_construct(team, 1e-6);
  // The last thread out holds the frontier; earlier threads are behind.
  EXPECT_LT(team.clock(0), team.now());
}

}  // namespace
}  // namespace omv::ompsim
