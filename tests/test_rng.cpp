// Unit tests for core/rng: determinism, fork independence, and first-moment
// sanity of the distributions the simulator relies on.

#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace omv {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 7.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, NextBelowRange) {
  Rng rng(5);
  bool saw_zero = false;
  bool saw_max = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    saw_zero |= (v == 0);
    saw_max |= (v == 6);
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_max);
}

TEST(Rng, ForkIsOrderIndependent) {
  const Rng base(9);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = base.fork(1);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());
  Rng g1 = f1;
  Rng g2 = f2;
  EXPECT_NE(g1.next_u64(), g2.next_u64());
}

TEST(Rng, ExponentialMeanApproximatesInverseRate) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, LognormalMean) {
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  Rng rng(8);
  const double mu = std::log(100.0) - 0.5 * 0.5 * 0.5;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, 0.5);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ParetoHeavyTail) {
  // With alpha 1.5, the max of many draws should dwarf the median.
  Rng rng(10);
  double mx = 0.0;
  for (int i = 0; i < 20000; ++i) mx = std::max(mx, rng.pareto(1.0, 1.5));
  EXPECT_GT(mx, 50.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitMix64KnownAnswerVectors) {
  // The canonical SplitMix64 output stream for seed 0 (Vigna's reference
  // implementation). Pinning these freezes the generator: any change to
  // the increment or finalizer invalidates every archived seed, cache
  // entry and snapshot in existence.
  Rng rng(0);
  EXPECT_EQ(rng.next_u64(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(rng.next_u64(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(rng.next_u64(), 0x06c45d188009454fULL);
  EXPECT_EQ(rng.next_u64(), 0xf88bb8a8724c81ecULL);
  EXPECT_EQ(rng.next_u64(), 0x1b39896a51a8749bULL);
}

TEST(Rng, SplitMix64KnownAnswerNonzeroSeed) {
  Rng rng(0x123456789abcdef0ULL);
  EXPECT_EQ(rng.next_u64(), 0x161922c645ce50e8ULL);
  EXPECT_EQ(rng.next_u64(), 0xad760cafa1697b60ULL);
  EXPECT_EQ(rng.next_u64(), 0x3501ff44902ca50dULL);
}

TEST(Rng, StateAccessorExposesCursor) {
  // The state IS the seed before the first draw, and advances by the
  // SplitMix64 golden-gamma increment per draw — the cursor contract the
  // snapshot subsystem serializes.
  Rng rng(0);
  EXPECT_EQ(rng.state(), 0u);
  (void)rng.next_u64();
  EXPECT_EQ(rng.state(), 0x9e3779b97f4a7c15ULL);
  (void)rng.next_u64();
  EXPECT_EQ(rng.state(), 0x9e3779b97f4a7c15ULL * 2);
}

TEST(Rng, SetStateReplaysStream) {
  Rng rng(77);
  for (int i = 0; i < 5; ++i) (void)rng.next_u64();
  const std::uint64_t cursor = rng.state();
  const std::uint64_t a = rng.next_u64();
  const std::uint64_t b = rng.next_u64();

  Rng replay(0);
  replay.set_state(cursor);
  EXPECT_EQ(replay.next_u64(), a);
  EXPECT_EQ(replay.next_u64(), b);
}

TEST(Rng, SetStateMatchesFreshSeed) {
  // set_state(s) is exactly Rng(s): the constructor stores the seed as the
  // initial cursor.
  Rng a(0xabcdULL);
  Rng b(0);
  b.set_state(0xabcdULL);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace omv
