// Unit tests for core/rng: determinism, fork independence, and first-moment
// sanity of the distributions the simulator relies on.

#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace omv {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 7.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, NextBelowRange) {
  Rng rng(5);
  bool saw_zero = false;
  bool saw_max = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    saw_zero |= (v == 0);
    saw_max |= (v == 6);
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_max);
}

TEST(Rng, ForkIsOrderIndependent) {
  const Rng base(9);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = base.fork(1);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());
  Rng g1 = f1;
  Rng g2 = f2;
  EXPECT_NE(g1.next_u64(), g2.next_u64());
}

TEST(Rng, ExponentialMeanApproximatesInverseRate) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, LognormalMean) {
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  Rng rng(8);
  const double mu = std::log(100.0) - 0.5 * 0.5 * 0.5;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, 0.5);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ParetoHeavyTail) {
  // With alpha 1.5, the max of many draws should dwarf the median.
  Rng rng(10);
  double mx = 0.0;
  for (int i = 0; i < 20000; ++i) mx = std::max(mx, rng.pareto(1.0, 1.5));
  EXPECT_GT(mx, 50.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace omv
