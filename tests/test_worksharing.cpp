// Unit tests for omp_model/worksharing: schedule semantics and the
// central-queue engine.

#include "omp_model/worksharing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace omv::ompsim {
namespace {

sim::Simulator ideal_dardel() {
  return sim::Simulator(topo::Machine::dardel(), sim::SimConfig::ideal());
}

SimTeam make_team(sim::Simulator& s, std::size_t threads) {
  TeamConfig cfg;
  cfg.n_threads = threads;
  SimTeam team(s, cfg);
  team.begin_run(1);
  return team;
}

TEST(Schedule, ParseAndNames) {
  EXPECT_EQ(parse_schedule("static"), Schedule::static_);
  EXPECT_EQ(parse_schedule("dynamic"), Schedule::dynamic);
  EXPECT_EQ(parse_schedule("guided"), Schedule::guided);
  EXPECT_THROW(static_cast<void>(parse_schedule("chaotic")), std::invalid_argument);
  EXPECT_STREQ(schedule_name(Schedule::static_), "static");
  EXPECT_STREQ(schedule_name(Schedule::dynamic), "dynamic");
  EXPECT_STREQ(schedule_name(Schedule::guided), "guided");
}

// Property: static chunk assignment covers every iteration exactly once.
struct StaticCase {
  std::size_t threads;
  std::size_t chunk;
  std::size_t total;
};

class StaticCoverage : public ::testing::TestWithParam<StaticCase> {};

TEST_P(StaticCoverage, AllIterationsAssignedOnce) {
  const auto [t, c, total] = GetParam();
  std::size_t sum = 0;
  for (std::size_t i = 0; i < t; ++i) {
    sum += static_iters_for_thread(i, t, c, total);
  }
  EXPECT_EQ(sum, total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StaticCoverage,
    ::testing::Values(StaticCase{1, 1, 100}, StaticCase{4, 1, 100},
                      StaticCase{4, 0, 100},  // blocked (no chunk)
                      StaticCase{4, 7, 100}, StaticCase{30, 1, 8192 * 30},
                      StaticCase{254, 1, 8192 * 254}, StaticCase{3, 8, 7},
                      StaticCase{8, 16, 15},  // fewer chunks than threads
                      StaticCase{5, 3, 0}));

TEST(StaticIters, BlockedIsNearEqual) {
  // schedule(static) without chunk: sizes differ by at most one.
  const std::size_t t = 7;
  const std::size_t total = 100;
  std::size_t mn = total;
  std::size_t mx = 0;
  for (std::size_t i = 0; i < t; ++i) {
    const auto n = static_iters_for_thread(i, t, 0, total);
    mn = std::min(mn, n);
    mx = std::max(mx, n);
  }
  EXPECT_LE(mx - mn, 1u);
}

TEST(StaticIters, RoundRobinChunk1IsBalanced) {
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(static_iters_for_thread(i, 4, 1, 8), 2u);
  }
}

TEST(ForLoop, StaticIdealTimeMatchesWorkPerThread) {
  auto s = ideal_dardel();
  auto team = make_team(s, 4);
  const double t0 = team.now();
  for_loop(team, Schedule::static_, 1, 4 * 100, 1e-6);
  const double elapsed = team.now() - t0;
  // 100 iterations per thread + setup + barrier.
  const double expected = 100e-6 + s.costs().static_setup +
                          team.barrier_cost();
  EXPECT_NEAR(elapsed, expected, 1e-9);
}

TEST(ForLoop, DynamicCompletesAllWork) {
  auto s = ideal_dardel();
  auto team = make_team(s, 8);
  const double t0 = team.now();
  for_loop(team, Schedule::dynamic, 1, 8 * 64, 1e-6);
  // All 512 iterations of 1us each on 8 threads: at least 64us of pure work.
  EXPECT_GE(team.now() - t0, 64e-6);
}

TEST(ForLoop, DynamicOverheadGrowsWithThreads) {
  auto s = ideal_dardel();
  // Per-iteration overhead = grab cost, which grows with contention.
  auto team_small = make_team(s, 2);
  const double t0 = team_small.now();
  for_loop(team_small, Schedule::dynamic, 1, 2 * 256, 1e-6);
  const double per_iter_small = (team_small.now() - t0) / 256.0;

  auto team_big = make_team(s, 128);
  const double t1 = team_big.now();
  for_loop(team_big, Schedule::dynamic, 1, 128 * 256, 1e-6);
  const double per_iter_big = (team_big.now() - t1) / 256.0;

  EXPECT_GT(per_iter_big, per_iter_small);
}

TEST(ForLoop, DynamicBalancesHeterogeneousSpeeds) {
  // One slow thread (oversubscribed x2): dynamic self-balances so the
  // total is far below the static worst case.
  auto cfg = sim::SimConfig::ideal();
  sim::Simulator s(topo::Machine::dardel(), cfg);

  TeamConfig slow_cfg;
  slow_cfg.n_threads = 4;
  // Threads 0 and 1 share HW thread 0; threads 2,3 get their own.
  slow_cfg.places_spec = "{0},{0},{1},{2}";
  SimTeam dyn_team(s, slow_cfg);
  dyn_team.begin_run(1);
  const double t0 = dyn_team.now();
  for_loop(dyn_team, Schedule::dynamic, 1, 400, 1e-6);
  const double dyn_time = dyn_team.now() - t0;

  SimTeam stat_team(s, slow_cfg);
  stat_team.begin_run(1);
  const double t1 = stat_team.now();
  for_loop(stat_team, Schedule::static_, 1, 400, 1e-6);
  const double stat_time = stat_team.now() - t1;

  EXPECT_LT(dyn_time, stat_time);
}

TEST(ForLoop, GuidedCheaperThanDynamicChunk1) {
  // Guided's decaying chunk sizes mean far fewer grabs.
  auto s = ideal_dardel();
  auto team_d = make_team(s, 16);
  const double t0 = team_d.now();
  for_loop(team_d, Schedule::dynamic, 1, 16 * 512, 1e-7);
  const double dyn = team_d.now() - t0;

  auto team_g = make_team(s, 16);
  const double t1 = team_g.now();
  for_loop(team_g, Schedule::guided, 1, 16 * 512, 1e-7);
  const double gui = team_g.now() - t1;
  EXPECT_LT(gui, dyn);
}

TEST(ForLoop, CoarseningPreservesTotalWithinTolerance) {
  auto s = ideal_dardel();
  auto team_exact = make_team(s, 8);
  const double t0 = team_exact.now();
  for_loop(team_exact, Schedule::dynamic, 1, 8 * 128, 1e-6, /*coarsen=*/1);
  const double exact = team_exact.now() - t0;

  auto team_coarse = make_team(s, 8);
  const double t1 = team_coarse.now();
  for_loop(team_coarse, Schedule::dynamic, 1, 8 * 128, 1e-6, /*coarsen=*/16);
  const double coarse = team_coarse.now() - t1;

  EXPECT_NEAR(coarse, exact, exact * 0.02);
}

TEST(ForLoop, ZeroIterationsJustBarriers) {
  auto s = ideal_dardel();
  auto team = make_team(s, 4);
  const double t0 = team.now();
  for_loop(team, Schedule::dynamic, 1, 0, 1e-6);
  EXPECT_NEAR(team.now() - t0, team.barrier_cost(), 1e-9);
}

TEST(ForLoop, EndsWithAlignedClocks) {
  auto s = ideal_dardel();
  auto team = make_team(s, 8);
  for_loop(team, Schedule::guided, 1, 1000, 1e-6);
  for (std::size_t i = 1; i < team.size(); ++i) {
    EXPECT_DOUBLE_EQ(team.clock(i), team.clock(0));
  }
}

}  // namespace
}  // namespace omv::ompsim
