// Batched-vs-loop differential tests for SimTeam's compute phase.
//
// SimTeam::compute now routes every lockstep compute segment through one
// Simulator::exec_batch call. These tests pin the contract that rewrite
// rests on: the batched phase is bit-identical to the retained per-thread
// loop (SimTeam::compute_loop) — same clocks, same RNG draw order, same
// lazy noise/frequency materialization — on every catalog preset, on the
// committed degenerate asymmetric scenario file, on unpinned teams, and
// under every ISA the host can dispatch the batched kernels to.

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "omp_model/team.hpp"
#include "scenario/registry.hpp"
#include "sim/isa.hpp"
#include "sim/simulator.hpp"
#include "topo/proc_bind.hpp"

namespace omv::ompsim {
namespace {

/// RAII pin of the batched-kernel dispatch for one test scope.
class IsaGuard {
 public:
  explicit IsaGuard(sim::Isa isa) { sim::force_isa(isa); }
  ~IsaGuard() { sim::reset_isa(); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;
};

/// The bench harness's "full but not oversaturated" team size, restated
/// here so the test exercises the same span perf_hotpath times.
std::size_t full_team(const topo::Machine& m) {
  return std::min(m.n_cores(),
                  m.n_threads() > 2 ? m.n_threads() - 2 : m.n_threads());
}

TeamConfig pinned(std::size_t threads) {
  TeamConfig cfg;
  cfg.n_threads = threads;
  cfg.places_spec = "threads";
  cfg.bind = topo::ProcBind::close;
  return cfg;
}

/// Drives one team through a representative phase mix (uniform work,
/// heterogeneous spans with zero-work holes, barriers, a fork/join pair,
/// several repetitions) and records every thread clock after each compute.
/// `batched` selects compute() (the production batched phase) or
/// compute_loop() (the per-thread reference).
std::vector<double> drive(SimTeam& team, bool batched) {
  const auto step_uniform = [&](double work) {
    if (batched) {
      team.compute(work);
    } else {
      team.compute_loop(work);
    }
  };
  const auto step_span = [&](std::span<const double> work) {
    if (batched) {
      team.compute(work);
    } else {
      team.compute_loop(work);
    }
  };

  std::vector<double> trace;
  const auto snap = [&] {
    for (const double c : team.clocks()) trace.push_back(c);
  };

  team.begin_run(3);
  std::vector<double> hetero(team.size());
  for (std::size_t i = 0; i < hetero.size(); ++i) {
    // Zero-work holes every third thread: exec still draws the SMT
    // throughput sample before its early-out, so the RNG sequence (and
    // with it every later clock) is sensitive to getting these right.
    hetero[i] = (i % 3 == 2) ? 0.0 : 1e-5 * static_cast<double>(i + 1);
  }
  for (int rep = 0; rep < 3; ++rep) {
    team.begin_rep();
    team.fork();
    step_uniform(1e-4);
    snap();
    team.barrier();
    step_span(hetero);
    snap();
    team.barrier();
    step_uniform(2e-3);
    snap();
    team.join();
    snap();
  }
  return trace;
}

/// Runs the drive sequence twice on identically seeded simulators — once
/// batched, once per-thread — and demands bit-identical clock traces.
void expect_batched_matches_loop(const scenario::ScenarioSpec& spec,
                                 const TeamConfig& cfg) {
  const topo::Machine machine = spec.machine.build();
  sim::Simulator sim_batched(machine, spec.sim);
  SimTeam team_batched(sim_batched, cfg, 1);
  sim::Simulator sim_loop(machine, spec.sim);
  SimTeam team_loop(sim_loop, cfg, 1);

  const std::vector<double> got = drive(team_batched, /*batched=*/true);
  const std::vector<double> want = drive(team_loop, /*batched=*/false);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < got.size(); ++k) {
    ASSERT_EQ(got[k], want[k])
        << spec.name << ": clock trace diverged at sample " << k << " of "
        << got.size();
  }
}

TEST(TeamBatch, BatchedComputeMatchesLoopOnEveryPreset) {
  for (const auto& spec : scenario::ScenarioRegistry::instance().all()) {
    expect_batched_matches_loop(
        spec, pinned(full_team(spec.machine.build())));
  }
}

TEST(TeamBatch, BatchedComputeMatchesLoopOnDegenerateScenarioFile) {
  const auto path = std::filesystem::path(__FILE__).parent_path()
                        .parent_path() /
                    "scenarios" / "degenerate-pe.scenario";
  ASSERT_TRUE(std::filesystem::exists(path))
      << "committed scenario file missing: " << path;
  const scenario::ScenarioSpec spec = scenario::load_file(path.string());
  const topo::Machine machine = spec.machine.build();
  // 3 HW threads, 2 cores: run the team at every legal size.
  for (std::size_t t = 1; t <= machine.n_threads(); ++t) {
    expect_batched_matches_loop(spec, pinned(t));
  }
}

TEST(TeamBatch, BatchedComputeMatchesLoopUnpinned) {
  // Unpinned teams re-place threads between repetitions (shares and SMT
  // co-scheduling change under the batch), drawing from a placement RNG
  // that must stay in step across the two implementations.
  const scenario::ScenarioSpec spec =
      scenario::ScenarioRegistry::instance().get("noisy-cloud");
  TeamConfig cfg;
  cfg.n_threads = full_team(spec.machine.build());
  cfg.bind = topo::ProcBind::none;
  expect_batched_matches_loop(spec, cfg);
}

TEST(TeamBatch, TeamClocksInvariantAcrossIsas) {
  // The only ISA-dispatched kernel on the team path is scale_work, which
  // is per-lane exact (mul/div, no reassociation) — so team clocks must be
  // bit-identical under every dispatch level, not merely close.
  const scenario::ScenarioSpec spec =
      scenario::ScenarioRegistry::instance().get("vera");
  const topo::Machine machine = spec.machine.build();
  const TeamConfig cfg = pinned(full_team(machine));

  std::vector<double> scalar_trace;
  for (const sim::Isa isa : sim::available_isas()) {
    IsaGuard guard(isa);
    sim::Simulator simulator(machine, spec.sim);
    SimTeam team(simulator, cfg, 1);
    std::vector<double> trace = drive(team, /*batched=*/true);
    if (isa == sim::Isa::scalar) {
      scalar_trace = std::move(trace);
      continue;
    }
    ASSERT_EQ(trace.size(), scalar_trace.size());
    for (std::size_t k = 0; k < trace.size(); ++k) {
      ASSERT_EQ(trace[k], scalar_trace[k])
          << sim::isa_name(isa) << " diverged from scalar at sample " << k;
    }
  }
}

TEST(TeamBatch, ExecBatchValidatesSpans) {
  const topo::Machine machine = topo::Machine::vera();
  sim::Simulator simulator(machine, sim::SimConfig::vera());
  simulator.begin_run(1, machine.primary_threads());
  sim::Placement pl;
  pl.hw = {0, 1};
  pl.share = {1, 1};
  pl.smt_coscheduled = {false, false};
  std::vector<double> clocks(3, 0.0);
  EXPECT_THROW(simulator.exec_batch(pl, 1e-3, clocks),
               std::invalid_argument);
  clocks.resize(2);
  const std::vector<double> work{1e-3, 1e-3, 1e-3};
  EXPECT_THROW(simulator.exec_batch(pl, work, clocks),
               std::invalid_argument);
  EXPECT_NO_THROW(simulator.exec_batch(pl, 1e-3, clocks));
  EXPECT_GT(clocks[0], 0.0);
}

}  // namespace
}  // namespace omv::ompsim
