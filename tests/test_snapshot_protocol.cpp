// Differential suite for checkpointed protocol execution: interrupting a
// protocol cell at a checkpoint and resuming it in fresh objects must be
// bit-identical to straight-line execution — same RunMatrix cells, same
// end-of-run hook side effects (frequency traces) — on every catalog
// preset, on the committed degenerate asymmetric scenario file, across
// --jobs, and under both the scalar oracle ISA and the best dispatched
// one.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_suite/checkpoint.hpp"
#include "bench_suite/protocol.hpp"
#include "bench_suite/syncbench_sim.hpp"
#include "freqlog/logger.hpp"
#include "scenario/registry.hpp"
#include "sim/isa.hpp"
#include "sim/simulator.hpp"
#include "topo/proc_bind.hpp"

namespace omv::bench {
namespace {

/// RAII pin of the batched-kernel dispatch for one test scope.
class IsaGuard {
 public:
  explicit IsaGuard(sim::Isa isa) { sim::force_isa(isa); }
  ~IsaGuard() { sim::reset_isa(); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;
};

/// Scratch directory for one test's snapshot files.
class SnapDir {
 public:
  SnapDir() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("omv-ckpt-" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this))))
               .string();
    std::filesystem::create_directories(dir_);
  }
  ~SnapDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] std::string path(const std::string& name) const {
    return dir_ + "/" + name;
  }

 private:
  std::string dir_;
};

ompsim::TeamConfig team_cfg(const topo::Machine& m) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = std::min<std::size_t>(8, m.n_cores());
  cfg.places_spec = "threads";
  cfg.bind = topo::ProcBind::close;
  return cfg;
}

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "ckpt-diff";
  spec.runs = 3;
  spec.reps = 6;
  spec.warmup = 1;
  spec.seed = 1;
  return spec;
}

void expect_matrices_identical(const RunMatrix& got, const RunMatrix& want,
                               const std::string& context) {
  ASSERT_EQ(got.runs(), want.runs()) << context;
  for (std::size_t r = 0; r < got.runs(); ++r) {
    const auto& a = got.run(r);
    const auto& b = want.run(r);
    ASSERT_EQ(a.size(), b.size()) << context << " run " << r;
    for (std::size_t k = 0; k < a.size(); ++k) {
      // Exact double equality: the checkpoint path must be bit-identical,
      // not merely close.
      ASSERT_EQ(a[k], b[k])
          << context << " run " << r << " rep " << k << " diverged";
    }
  }
}

/// Runs the cell straight through, then checkpointed with a mid-protocol
/// CheckpointStop kill and a fresh-object resume, and demands bit-identical
/// matrices from all paths.
void expect_checkpoint_roundtrip(const scenario::ScenarioSpec& scn,
                                 const std::string& context) {
  const topo::Machine machine = scn.machine.build();
  const auto cfg = team_cfg(machine);
  const auto spec = small_spec();
  sim::Simulator base(machine, scn.sim);

  const auto make_bench = [cfg](sim::Simulator& sim) {
    return SimSyncBench(sim, cfg);
  };
  const auto rep = [](SimSyncBench& bench, ompsim::SimTeam& team) {
    return bench.rep_time_us(team, SyncConstruct::reduction);
  };

  const RunMatrix serial =
      run_protocol_sharded(base, cfg, spec, 1, make_bench, rep);
  const RunMatrix sharded =
      run_protocol_sharded(base, cfg, spec, 2, make_bench, rep);
  expect_matrices_identical(sharded, serial, context + " [jobs 1 vs 2]");

  SnapDir dir;
  snap::CheckpointPolicy pol;
  pol.path = dir.path("cell.snap");
  pol.every_reps = 2;
  pol.stamp.engine = "test-engine";
  pol.stamp.cell = "cell";
  // Kill the protocol at its third checkpoint write — that lands mid run 1
  // (after (r0,2), (r0,4), (r1,2)), so the resume exercises both the
  // completed-run replay and the mid-run continuation.
  snap::reset_checkpoint_writes();
  pol.stop_after = 3;
  bool stopped = false;
  try {
    (void)run_protocol_sharded(base, cfg, spec, 1, make_bench, rep,
                               NoRunEndHook{}, &pol);
  } catch (const snap::CheckpointStop&) {
    stopped = true;
  }
  ASSERT_TRUE(stopped) << context << ": stop_after did not trip";
  ASSERT_TRUE(std::filesystem::exists(pol.path)) << context;

  snap::reset_checkpoint_writes();
  snap::CheckpointPolicy resume = pol;
  resume.stop_after = 0;
  resume.resume_from = pol.path;
  const RunMatrix resumed = run_protocol_sharded(
      base, cfg, spec, 1, make_bench, rep, NoRunEndHook{}, &resume);
  expect_matrices_identical(resumed, serial, context + " [resume]");
  // The completed cell must clear its own checkpoint.
  EXPECT_FALSE(std::filesystem::exists(pol.path)) << context;
}

TEST(SnapshotProtocol, ResumeIsBitIdenticalOnEveryPreset) {
  for (const auto& scn : scenario::ScenarioRegistry::instance().all()) {
    expect_checkpoint_roundtrip(scn, scn.name);
  }
}

TEST(SnapshotProtocol, ResumeIsBitIdenticalOnDegenerateScenarioFile) {
  const auto path = std::filesystem::path(__FILE__).parent_path()
                        .parent_path() /
                    "scenarios" / "degenerate-pe.scenario";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  expect_checkpoint_roundtrip(scenario::load_file(path.string()),
                              "degenerate-pe");
}

TEST(SnapshotProtocol, ResumeIsBitIdenticalUnderEveryIsa) {
  const auto& reg = scenario::ScenarioRegistry::instance();
  for (const sim::Isa isa : sim::available_isas()) {
    IsaGuard guard(isa);
    expect_checkpoint_roundtrip(reg.get("vera"),
                                std::string("vera/") + sim::isa_name(isa));
    expect_checkpoint_roundtrip(
        reg.get("noisy-cloud"),
        std::string("noisy-cloud/") + sim::isa_name(isa));
  }
}

TEST(SnapshotProtocol, ScalarOracleMatchesBestIsaOnResume) {
  // The scalar lane is the bit-exactness oracle: a resumed run under the
  // best dispatched ISA must equal the straight-line scalar run.
  const auto scn = scenario::ScenarioRegistry::instance().get("dvfs-dippy");
  const topo::Machine machine = scn.machine.build();
  const auto cfg = team_cfg(machine);
  const auto spec = small_spec();
  sim::Simulator base(machine, scn.sim);
  const auto make_bench = [cfg](sim::Simulator& sim) {
    return SimSyncBench(sim, cfg);
  };
  const auto rep = [](SimSyncBench& bench, ompsim::SimTeam& team) {
    return bench.rep_time_us(team, SyncConstruct::barrier);
  };

  RunMatrix scalar_straight = [&] {
    IsaGuard guard(sim::Isa::scalar);
    return run_protocol_sharded(base, cfg, spec, 1, make_bench, rep);
  }();
  RunMatrix best_resumed = [&] {
    IsaGuard guard(sim::available_isas().back());
    SnapDir dir;
    snap::CheckpointPolicy pol;
    pol.path = dir.path("cell.snap");
    pol.every_reps = 3;
    snap::reset_checkpoint_writes();
    pol.stop_after = 2;
    try {
      (void)run_protocol_sharded(base, cfg, spec, 1, make_bench, rep,
                                 NoRunEndHook{}, &pol);
    } catch (const snap::CheckpointStop&) {
    }
    snap::reset_checkpoint_writes();
    snap::CheckpointPolicy resume = pol;
    resume.stop_after = 0;
    resume.resume_from = pol.path;
    return run_protocol_sharded(base, cfg, spec, 1, make_bench, rep,
                                NoRunEndHook{}, &resume);
  }();
  expect_matrices_identical(best_resumed, scalar_straight,
                            "scalar oracle vs best-ISA resume");
}

TEST(SnapshotProtocol, HookReplayRebuildsIdenticalTraces) {
  // End-of-run hooks (the freq-panel trace sampler) must replay
  // bit-identically for runs completed before the checkpoint: the hook
  // draws from model RNG streams, so it runs from each run's restored
  // end-of-run state.
  const auto scn = scenario::ScenarioRegistry::instance().get("vera");
  const topo::Machine machine = scn.machine.build();
  const auto cfg = team_cfg(machine);
  const auto spec = small_spec();
  sim::Simulator base(machine, scn.sim);

  const auto make_bench = [cfg](sim::Simulator& sim) {
    return SimSyncBench(sim, cfg);
  };
  const auto rep = [](SimSyncBench& bench, ompsim::SimTeam& team) {
    return bench.rep_time_us(team, SyncConstruct::reduction);
  };
  const auto run_with_hook = [&](const snap::CheckpointPolicy* pol,
                                 std::vector<freqlog::FreqTrace>& traces) {
    traces.assign(spec.runs, freqlog::FreqTrace{});
    freqlog::FreqTrace* slots = traces.data();
    return run_protocol_sharded(
        base, cfg, spec, 1, make_bench, rep,
        [slots](SimSyncBench&, ompsim::SimTeam& team, sim::Simulator& sim,
                const RunSlot& slot) {
          freqlog::SimFreqReader reader(sim.freq(), sim.machine().n_cores());
          slots[slot.run].append(
              freqlog::sample_sim(reader, 0.0, team.now(), 0.01));
        },
        pol);
  };

  std::vector<freqlog::FreqTrace> straight_traces;
  const RunMatrix straight = run_with_hook(nullptr, straight_traces);

  SnapDir dir;
  snap::CheckpointPolicy pol;
  pol.path = dir.path("cell.snap");
  pol.every_reps = 2;
  snap::reset_checkpoint_writes();
  pol.stop_after = 4;  // lands at (r1,4): run 0 complete, run 1 mid-flight
  std::vector<freqlog::FreqTrace> dropped;
  try {
    (void)run_with_hook(&pol, dropped);
  } catch (const snap::CheckpointStop&) {
  }
  snap::reset_checkpoint_writes();
  snap::CheckpointPolicy resume = pol;
  resume.stop_after = 0;
  resume.resume_from = pol.path;
  std::vector<freqlog::FreqTrace> resumed_traces;
  const RunMatrix resumed = run_with_hook(&resume, resumed_traces);

  expect_matrices_identical(resumed, straight, "hook replay");
  ASSERT_EQ(resumed_traces.size(), straight_traces.size());
  for (std::size_t r = 0; r < straight_traces.size(); ++r) {
    const auto& a = straight_traces[r].samples();
    const auto& b = resumed_traces[r].samples();
    ASSERT_EQ(a.size(), b.size()) << "trace " << r;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].time, b[i].time) << "trace " << r << " sample " << i;
      ASSERT_EQ(a[i].core, b[i].core) << "trace " << r << " sample " << i;
      ASSERT_EQ(a[i].ghz, b[i].ghz) << "trace " << r << " sample " << i;
    }
  }
}

TEST(SnapshotProtocol, ResumeRejectsChangedSpec) {
  const auto scn = scenario::ScenarioRegistry::instance().get("vera");
  const topo::Machine machine = scn.machine.build();
  const auto cfg = team_cfg(machine);
  sim::Simulator base(machine, scn.sim);
  const auto make_bench = [cfg](sim::Simulator& sim) {
    return SimSyncBench(sim, cfg);
  };
  const auto rep = [](SimSyncBench& bench, ompsim::SimTeam& team) {
    return bench.rep_time_us(team, SyncConstruct::barrier);
  };

  SnapDir dir;
  snap::CheckpointPolicy pol;
  pol.path = dir.path("cell.snap");
  pol.every_reps = 2;
  snap::reset_checkpoint_writes();
  pol.stop_after = 1;
  try {
    (void)run_protocol_sharded(base, cfg, small_spec(), 1, make_bench, rep,
                               NoRunEndHook{}, &pol);
  } catch (const snap::CheckpointStop&) {
  }

  // Shrinking reps below the checkpoint cursor must fail loudly, not
  // silently mis-resume.
  ExperimentSpec shrunk = small_spec();
  shrunk.reps = 1;
  snap::CheckpointPolicy resume = pol;
  resume.stop_after = 0;
  resume.resume_from = pol.path;
  snap::reset_checkpoint_writes();
  EXPECT_THROW((void)run_protocol_sharded(base, cfg, shrunk, 1, make_bench,
                                          rep, NoRunEndHook{}, &resume),
               snap::SnapshotError);
}

}  // namespace
}  // namespace omv::bench
