// omvlint's own test suite: the determinism-contract checker is asserted
// rule by rule against the fixture corpus under tools/omvlint/fixtures
// (one deliberately-violating file per rule, a suppressed-clean case and
// a malformed-suppression case), plus in-memory sources that pin the
// tokenizer's corner cases (strings, comments, scoping, allowlists).

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "tools/omvlint/omvlint.hpp"

namespace {

using omv::lint::Diagnostic;
using omv::lint::LintResult;
using omv::lint::lint_source;
using omv::lint::lint_tree;

#ifndef OMVLINT_FIXTURE_DIR
#error "build must define OMVLINT_FIXTURE_DIR"
#endif
const char* const kFixtures = OMVLINT_FIXTURE_DIR;

std::string read_fixture(const std::string& rel) {
  const std::string path = std::string(kFixtures) + "/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

LintResult lint_fixture(const std::string& rel) {
  return lint_source(rel, read_fixture(rel));
}

std::vector<std::string> rules_of(const LintResult& r) {
  std::vector<std::string> out;
  out.reserve(r.diagnostics.size());
  for (const auto& d : r.diagnostics) out.push_back(d.rule);
  return out;
}

std::size_t count_rule(const LintResult& r, const std::string& rule) {
  const std::vector<std::string> rules = rules_of(r);
  return static_cast<std::size_t>(
      std::count(rules.begin(), rules.end(), rule));
}

TEST(OmvlintRules, StdoutDisciplineFlagsEachDirectWrite) {
  const LintResult r = lint_fixture("bench/stdout_violation.cpp");
  EXPECT_EQ(r.diagnostics.size(), 3u);
  EXPECT_EQ(count_rule(r, "stdout-discipline"), 3u);
  // printf call, cout stream, raw stdout handle — one diagnostic each,
  // and the stderr log line stays clean.
  std::vector<std::size_t> lines;
  for (const auto& d : r.diagnostics) lines.push_back(d.line);
  EXPECT_EQ(lines, (std::vector<std::size_t>{8, 9, 10}));
}

TEST(OmvlintRules, AtomicWritesFlagsOfstreamAndFopen) {
  const LintResult r = lint_fixture("src/cli/raw_write_violation.cpp");
  EXPECT_EQ(r.diagnostics.size(), 2u);
  EXPECT_EQ(count_rule(r, "atomic-writes"), 2u);
  EXPECT_NE(r.diagnostics[0].message.find("atomic_write_file"),
            std::string::npos);
}

TEST(OmvlintRules, AmbientEntropyFlagsRngAndClocks) {
  const LintResult r = lint_fixture("src/sim/entropy_violation.cpp");
  EXPECT_EQ(count_rule(r, "no-ambient-entropy"), 4u);
  EXPECT_EQ(r.diagnostics.size(), 4u);  // random_device, system_clock,
                                        // time(), rand()
}

TEST(OmvlintRules, UnorderedIterationFlagsRangeForIncludingAlias) {
  const LintResult r = lint_fixture("src/cli/unordered_violation.cpp");
  EXPECT_EQ(count_rule(r, "unordered-iteration"), 2u);
  EXPECT_EQ(r.diagnostics.size(), 2u);  // direct decl + through alias
}

TEST(OmvlintRules, IsaGuardFlagsHeaderAndIntrinsics) {
  const LintResult r = lint_fixture("src/sim/isa_violation.cpp");
  // 1 include + 2 __m256d types + 3 _mm256_* calls.
  EXPECT_EQ(count_rule(r, "isa-guard"), 6u);
  EXPECT_EQ(r.diagnostics.size(), 6u);
}

TEST(OmvlintRules, IsaKernelTusAreExempt) {
  const std::string body = read_fixture("src/sim/isa_violation.cpp");
  EXPECT_TRUE(lint_source("src/sim/batch_avx2.cpp", body)
                  .diagnostics.empty());
  EXPECT_TRUE(lint_source("src/sim/batch_avx512.cpp", body)
                  .diagnostics.empty());
  // The same code one directory over is NOT exempt.
  EXPECT_FALSE(lint_source("src/sim/batch_neon.cpp", body)
                   .diagnostics.empty());
}

TEST(OmvlintSuppression, ReasonedAllowsSilenceAndAreCounted) {
  const LintResult r = lint_fixture("bench/suppressed_ok.cpp");
  EXPECT_TRUE(r.diagnostics.empty())
      << omv::lint::format(r.diagnostics.front());
  EXPECT_EQ(r.suppressions_honored, 3u);
}

TEST(OmvlintSuppression, MalformedEscapesAreThemselvesViolations) {
  const LintResult r = lint_fixture("bench/malformed_suppression.cpp");
  EXPECT_EQ(count_rule(r, "suppression"), 3u);
  // The reason-less allow() does not cover the printf under it.
  EXPECT_EQ(count_rule(r, "stdout-discipline"), 1u);
  EXPECT_EQ(r.diagnostics.size(), 4u);
  EXPECT_EQ(r.suppressions_honored, 0u);
}

TEST(OmvlintSuppression, CleanInScopeFileHasNoDiagnostics) {
  const LintResult r = lint_fixture("src/core/clean_ok.cpp");
  EXPECT_TRUE(r.diagnostics.empty());
  EXPECT_EQ(r.suppressions_honored, 0u);
}

TEST(OmvlintTree, FixtureWalkFindsEveryPlantedViolation) {
  const LintResult r = lint_tree(kFixtures);
  EXPECT_EQ(r.files_scanned, 8u);
  EXPECT_EQ(count_rule(r, "stdout-discipline"), 4u);  // 3 + 1 uncovered
  EXPECT_EQ(count_rule(r, "atomic-writes"), 2u);
  EXPECT_EQ(count_rule(r, "no-ambient-entropy"), 4u);
  EXPECT_EQ(count_rule(r, "unordered-iteration"), 2u);
  EXPECT_EQ(count_rule(r, "isa-guard"), 6u);
  EXPECT_EQ(count_rule(r, "suppression"), 3u);
  EXPECT_EQ(r.suppressions_honored, 3u);
  // Walk order (and thus report order) is sorted-by-path deterministic.
  std::vector<std::string> files;
  for (const auto& d : r.diagnostics) files.push_back(d.file);
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
}

TEST(OmvlintFormat, DiagnosticFormatIsStable) {
  Diagnostic d{"src/sim/x.cpp", 42, "isa-guard", "boom"};
  EXPECT_EQ(omv::lint::format(d), "src/sim/x.cpp:42: [isa-guard] boom");
}

TEST(OmvlintScoping, RulesDoNotFireOutsideTheirPaths) {
  // printf outside bench/ and src/bench_suite/ is not stdout-discipline's
  // business; ofstream outside the crash-safe dirs is fine; entropy in
  // core (supervisor backoff, bench timing) is allowlisted by scope.
  const std::string stdout_body = read_fixture("bench/stdout_violation.cpp");
  EXPECT_TRUE(lint_source("src/core/report.cpp", stdout_body)
                  .diagnostics.empty());
  const std::string write_body =
      read_fixture("src/cli/raw_write_violation.cpp");
  EXPECT_TRUE(lint_source("src/core/descriptive.cpp", write_body)
                  .diagnostics.empty());
  const std::string entropy_body =
      read_fixture("src/sim/entropy_violation.cpp");
  EXPECT_TRUE(lint_source("src/core/deadline.cpp", entropy_body)
                  .diagnostics.empty());
}

TEST(OmvlintScoping, HarnessAllowlistCoversTheNamedFilesOnly) {
  const std::string body = read_fixture("bench/stdout_violation.cpp");
  EXPECT_TRUE(lint_source("bench/harness.hpp", body).diagnostics.empty());
  EXPECT_TRUE(lint_source("src/cli/standalone_main.cpp", body)
                  .diagnostics.empty());
  EXPECT_FALSE(lint_source("bench/harness_util.hpp", body)
                   .diagnostics.empty());
}

TEST(OmvlintTokenizer, StringsAndCommentsNeverTrigger) {
  const std::string body =
      "// printf in a comment\n"
      "/* std::cout in a block comment */\n"
      "const char* s = \"printf(\\\"x\\\")\";\n"
      "const char* r = R\"(std::cout << rand())\";\n";
  EXPECT_TRUE(lint_source("bench/strings.cpp", body).diagnostics.empty());
}

TEST(OmvlintTokenizer, MemberCallsDoNotTriggerCallRules) {
  const std::string body =
      "void f(Timer& t) { t.time(); obj->rand(); }\n";
  EXPECT_TRUE(lint_source("src/sim/members.cpp", body)
                  .diagnostics.empty());
}

TEST(OmvlintApi, RuleNamesAreTheFiveContractRules) {
  const auto& names = omv::lint::rule_names();
  EXPECT_EQ(names, (std::vector<std::string>{
                       "stdout-discipline", "atomic-writes",
                       "no-ambient-entropy", "unordered-iteration",
                       "isa-guard"}));
}

}  // namespace
