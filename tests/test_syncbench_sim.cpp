// Tests for bench_suite/syncbench_sim: calibration, protocol shape, and the
// pinning/noise behaviours the paper reports for synchronization constructs.

#include "bench_suite/syncbench_sim.hpp"

#include <gtest/gtest.h>

namespace omv::bench {
namespace {

ompsim::TeamConfig team_cfg(std::size_t threads,
                            topo::ProcBind bind = topo::ProcBind::close) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = threads;
  cfg.bind = bind;
  return cfg;
}

ExperimentSpec quick_spec(std::uint64_t seed) {
  ExperimentSpec spec;
  spec.runs = 5;
  spec.reps = 20;
  spec.warmup = 1;
  spec.seed = seed;
  return spec;
}

TEST(SimSyncBench, InnerrepsCalibratedToTestTime) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::ideal());
  SimSyncBench sb(s, team_cfg(128));
  for (auto c : all_sync_constructs()) {
    const auto inner = sb.innerreps(c);
    const double instance = sb.ideal_instance_us(c);
    EXPECT_GE(inner, 1u);
    // One repetition should land near test_time (within 2x).
    const double rep = instance * static_cast<double>(inner);
    if (inner > 1 && inner < 1000000) {
      EXPECT_GT(rep, 400.0) << sync_construct_name(c);
      EXPECT_LT(rep, 2100.0) << sync_construct_name(c);
    }
  }
}

TEST(SimSyncBench, IdealRepTimeNearTestTime) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::ideal());
  SimSyncBench sb(s, team_cfg(64));
  ompsim::SimTeam team(s, team_cfg(64), 1);
  team.begin_run(1);
  const double rep = sb.rep_time_us(team, SyncConstruct::reduction);
  EXPECT_GT(rep, 300.0);
  EXPECT_LT(rep, 3000.0);
}

TEST(SimSyncBench, ReductionMostExpensiveOfTeamWideConstructs) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::ideal());
  SimSyncBench sb(s, team_cfg(128));
  // Reduction > parallel > barrier in per-instance cost.
  EXPECT_GT(sb.ideal_instance_us(SyncConstruct::reduction),
            sb.ideal_instance_us(SyncConstruct::parallel));
  EXPECT_GT(sb.ideal_instance_us(SyncConstruct::parallel),
            sb.ideal_instance_us(SyncConstruct::barrier));
}

TEST(SimSyncBench, ProtocolShape) {
  sim::Simulator s(topo::Machine::vera(), sim::SimConfig::vera());
  SimSyncBench sb(s, team_cfg(8));
  const auto spec = quick_spec(11);
  const auto m = sb.run_protocol(SyncConstruct::barrier, spec);
  EXPECT_EQ(m.runs(), 5u);
  EXPECT_EQ(m.run(0).size(), 20u);
  EXPECT_GT(m.pooled_summary().mean, 0.0);
}

TEST(SimSyncBench, DeterministicProtocol) {
  sim::Simulator s1(topo::Machine::vera(), sim::SimConfig::vera());
  sim::Simulator s2(topo::Machine::vera(), sim::SimConfig::vera());
  SimSyncBench a(s1, team_cfg(8));
  SimSyncBench b(s2, team_cfg(8));
  const auto spec = quick_spec(21);
  const auto ma = a.run_protocol(SyncConstruct::reduction, spec);
  const auto mb = b.run_protocol(SyncConstruct::reduction, spec);
  for (std::size_t r = 0; r < ma.runs(); ++r) {
    EXPECT_EQ(ma.run(r).size(), mb.run(r).size());
    for (std::size_t k = 0; k < ma.run(r).size(); ++k) {
      EXPECT_DOUBLE_EQ(ma.run(r)[k], mb.run(r)[k]);
    }
  }
}

TEST(SimSyncBench, PinningReducesVariability) {
  // The paper's Fig. 4 centerpiece, as a regression test.
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  const auto spec = quick_spec(31);

  SimSyncBench pinned(s, team_cfg(128, topo::ProcBind::close));
  const auto mp = pinned.run_protocol(SyncConstruct::reduction, spec);

  SimSyncBench unpinned(s, team_cfg(128, topo::ProcBind::none));
  const auto mu = unpinned.run_protocol(SyncConstruct::reduction, spec);

  EXPECT_LT(mp.pooled_summary().cv, mu.pooled_summary().cv);
  EXPECT_LT(mp.pooled_summary().max, mu.pooled_summary().max);
  // Unpinned worst case is orders of magnitude above the pinned mean.
  EXPECT_GT(mu.pooled_summary().max, mp.pooled_summary().mean * 50.0);
}

TEST(SimSyncBench, OverheadComputation) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::ideal());
  SimSyncBench sb(s, team_cfg(16));
  const double rep = 1000.0;
  const double ov = sb.overhead_from_rep_us(rep, SyncConstruct::barrier);
  // Overhead strictly below the raw per-instance time (reference > 0).
  EXPECT_LT(ov, rep / static_cast<double>(
                        sb.innerreps(SyncConstruct::barrier)));
}

TEST(SimSyncBench, GroupsBoundSimulationCost) {
  // groups=4 and groups=64 should give similar means on an ideal sim.
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::ideal());
  SimSyncBench coarse(s, team_cfg(32), EpccParams::syncbench(), 4);
  SimSyncBench fine(s, team_cfg(32), EpccParams::syncbench(), 64);
  ompsim::SimTeam t1(s, team_cfg(32), 1);
  t1.begin_run(1);
  const double a = coarse.rep_time_us(t1, SyncConstruct::barrier);
  ompsim::SimTeam t2(s, team_cfg(32), 1);
  t2.begin_run(1);
  const double b = fine.rep_time_us(t2, SyncConstruct::barrier);
  EXPECT_NEAR(a, b, a * 0.05);
}

}  // namespace
}  // namespace omv::bench
