// Unit tests for freqlog/trace_csv: frequency-trace CSV round-trips and
// strict parsing (the fig6/fig7 cache sidecar format).

#include "freqlog/trace_csv.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace omv::freqlog {
namespace {

FreqTrace sample() {
  FreqTrace t;
  t.add({0.00, 0, 2.45});
  t.add({0.01, 0, 2.25});
  t.add({0.00, 1, 2.45 / 3.0});  // exercise full precision
  return t;
}

TEST(TraceCsv, RoundTripExact) {
  const auto t = sample();
  const auto back = freq_trace_from_csv(freq_trace_to_csv(t));
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.samples()[i].time, t.samples()[i].time);
    EXPECT_EQ(back.samples()[i].core, t.samples()[i].core);
    EXPECT_EQ(back.samples()[i].ghz, t.samples()[i].ghz);
  }
}

TEST(TraceCsv, RoundTripPreservesDerivedStatistics) {
  const auto t = sample();
  const auto back = freq_trace_from_csv(freq_trace_to_csv(t));
  EXPECT_EQ(back.fraction_below(2.45, 0.95), t.fraction_below(2.45, 0.95));
  EXPECT_EQ(back.episode_count(2.45, 0.95), t.episode_count(2.45, 0.95));
  EXPECT_EQ(back.extremes().mean, t.extremes().mean);
}

TEST(TraceCsv, EmptyTraceRoundTrips) {
  const auto back = freq_trace_from_csv(freq_trace_to_csv(FreqTrace{}));
  EXPECT_EQ(back.size(), 0u);
}

TEST(TraceCsv, RejectsMalformedInput) {
  EXPECT_THROW(static_cast<void>(freq_trace_from_csv("")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(freq_trace_from_csv("nope\n")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(freq_trace_from_csv("time,core,ghz\nx,0,2.0\n")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(freq_trace_from_csv("time,core,ghz\n0.0,y,2.0\n")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(freq_trace_from_csv("time,core,ghz\n0.0,0,zz\n")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(freq_trace_from_csv("time,core,ghz\n0.0,0,2.0,junk\n")),
               std::invalid_argument);
}

TEST(TraceCsv, ToleratesCommentsBlanksAndCrlf) {
  const auto t = freq_trace_from_csv(
      "time,core,ghz\r\n# comment\r\n\r\n0.5,3,2.25\r\n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.samples()[0].core, 3u);
  EXPECT_DOUBLE_EQ(t.samples()[0].ghz, 2.25);
}

TEST(TraceCsv, FileErrorsThrow) {
  EXPECT_THROW(static_cast<void>(load_freq_trace("/nonexistent/dir/x.csv")),
               std::runtime_error);
  EXPECT_THROW(save_freq_trace("/nonexistent/dir/x.csv", FreqTrace{}),
               std::runtime_error);
}

}  // namespace
}  // namespace omv::freqlog
