// Unit tests for topo/proc_bind: the close/spread/primary mapping.

#include "topo/proc_bind.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace omv::topo {
namespace {

PlaceList simple_places(std::size_t n) {
  PlaceList p;
  for (std::size_t i = 0; i < n; ++i) p.push_back(CpuSet::single(i));
  return p;
}

TEST(ParseProcBind, AllSpellings) {
  EXPECT_EQ(parse_proc_bind("close"), ProcBind::close);
  EXPECT_EQ(parse_proc_bind("spread"), ProcBind::spread);
  EXPECT_EQ(parse_proc_bind("primary"), ProcBind::primary);
  EXPECT_EQ(parse_proc_bind("master"), ProcBind::primary);
  EXPECT_EQ(parse_proc_bind("none"), ProcBind::none);
  EXPECT_EQ(parse_proc_bind("false"), ProcBind::none);
  EXPECT_EQ(parse_proc_bind("true"), ProcBind::close);
  EXPECT_THROW(static_cast<void>(parse_proc_bind("sideways")), std::invalid_argument);
}

TEST(ProcBindName, Names) {
  EXPECT_STREQ(proc_bind_name(ProcBind::close), "close");
  EXPECT_STREQ(proc_bind_name(ProcBind::spread), "spread");
  EXPECT_STREQ(proc_bind_name(ProcBind::primary), "primary");
  EXPECT_STREQ(proc_bind_name(ProcBind::none), "none");
}

TEST(AssignPlaces, NoneReturnsEmpty) {
  EXPECT_TRUE(assign_places(4, simple_places(8), ProcBind::none).empty());
}

TEST(AssignPlaces, CloseFewerThreadsThanPlaces) {
  const auto map = assign_places(4, simple_places(8), ProcBind::close);
  EXPECT_EQ(map, (ThreadPlaceMap{0, 1, 2, 3}));
}

TEST(AssignPlaces, CloseWrapsFromPrimary) {
  const auto map = assign_places(4, simple_places(8), ProcBind::close, 6);
  EXPECT_EQ(map, (ThreadPlaceMap{6, 7, 0, 1}));
}

TEST(AssignPlaces, CloseMoreThreadsThanPlaces) {
  // 7 threads on 3 places: 3,2,2 consecutive.
  const auto map = assign_places(7, simple_places(3), ProcBind::close);
  EXPECT_EQ(map, (ThreadPlaceMap{0, 0, 0, 1, 1, 2, 2}));
}

TEST(AssignPlaces, CloseExactFit) {
  const auto map = assign_places(3, simple_places(3), ProcBind::close);
  EXPECT_EQ(map, (ThreadPlaceMap{0, 1, 2}));
}

TEST(AssignPlaces, SpreadSubpartitions) {
  // 2 threads over 8 places: subpartitions of 4, first place of each.
  const auto map = assign_places(2, simple_places(8), ProcBind::spread);
  EXPECT_EQ(map, (ThreadPlaceMap{0, 4}));
}

TEST(AssignPlaces, SpreadUnevenSubpartitions) {
  // 3 threads over 8 places: partitions 3,3,2 -> first places 0,3,6.
  const auto map = assign_places(3, simple_places(8), ProcBind::spread);
  EXPECT_EQ(map, (ThreadPlaceMap{0, 3, 6}));
}

TEST(AssignPlaces, SpreadOversubscribedFallsBackToClose) {
  const auto spread = assign_places(7, simple_places(3), ProcBind::spread);
  const auto close = assign_places(7, simple_places(3), ProcBind::close);
  EXPECT_EQ(spread, close);
}

TEST(AssignPlaces, PrimaryAllOnPrimaryPlace) {
  const auto map = assign_places(5, simple_places(8), ProcBind::primary, 3);
  for (auto p : map) EXPECT_EQ(p, 3u);
}

TEST(AssignPlaces, ValidatesInputs) {
  EXPECT_THROW(static_cast<void>(assign_places(2, {}, ProcBind::close)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(assign_places(2, simple_places(4), ProcBind::close, 9)),
               std::invalid_argument);
}

TEST(ThreadAffinities, NoneGivesAllThreads) {
  const auto m = Machine::vera();
  const auto places = parse_places("threads", m);
  const auto aff = thread_affinities(4, places, ProcBind::none, m);
  ASSERT_EQ(aff.size(), 4u);
  for (const auto& a : aff) EXPECT_EQ(a.count(), 32u);
}

TEST(ThreadAffinities, CloseGivesSingletonSets) {
  const auto m = Machine::vera();
  const auto places = parse_places("threads", m);
  const auto aff = thread_affinities(4, places, ProcBind::close, m);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(aff[i].to_string(), std::to_string(i));
  }
}

TEST(ThreadAffinities, CoresPlacesKeepSiblingsTogether) {
  const auto m = Machine::dardel();
  const auto places = parse_places("cores", m);
  const auto aff = thread_affinities(2, places, ProcBind::close, m);
  EXPECT_EQ(aff[0].to_string(), "0,128");
  EXPECT_EQ(aff[1].to_string(), "1,129");
}

// Property sweep over the close policy: every thread gets a valid place and
// consecutive threads are never more than one place apart (contiguity).
struct CloseCase {
  std::size_t threads;
  std::size_t places;
};

class CloseProperty : public ::testing::TestWithParam<CloseCase> {};

TEST_P(CloseProperty, ValidAndContiguous) {
  const auto [t, p] = GetParam();
  const auto map = assign_places(t, simple_places(p), ProcBind::close);
  ASSERT_EQ(map.size(), t);
  for (auto pl : map) EXPECT_LT(pl, p);
  for (std::size_t i = 1; i < map.size(); ++i) {
    const auto step = (map[i] + p - map[i - 1]) % p;
    EXPECT_LE(step, 1u) << "thread " << i;
  }
}

TEST_P(CloseProperty, LoadBalanced) {
  const auto [t, p] = GetParam();
  const auto map = assign_places(t, simple_places(p), ProcBind::close);
  std::vector<std::size_t> load(p, 0);
  for (auto pl : map) ++load[pl];
  const auto [mn, mx] = std::minmax_element(load.begin(), load.end());
  EXPECT_LE(*mx - *mn, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CloseProperty,
    ::testing::Values(CloseCase{1, 1}, CloseCase{4, 8}, CloseCase{8, 8},
                      CloseCase{9, 8}, CloseCase{16, 8}, CloseCase{17, 8},
                      CloseCase{254, 256}, CloseCase{256, 256},
                      CloseCase{30, 32}, CloseCase{128, 128}));

}  // namespace
}  // namespace omv::topo
