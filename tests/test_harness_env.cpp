// Tests for the bench-harness environment handling: the OMNIVAR_QUICK /
// OMNIVAR_RUNS / OMNIVAR_REPS protocol overrides and the --jobs /
// OMNIVAR_JOBS sharding knob in bench/harness.hpp.

#include "bench/harness.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace omv::harness {
namespace {

/// Clears every OMNIVAR_* variable and the --jobs override around each
/// test so cases cannot leak protocol settings into each other.
class HarnessEnvTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }

  static void clear() {
    ::unsetenv("OMNIVAR_QUICK");
    ::unsetenv("OMNIVAR_RUNS");
    ::unsetenv("OMNIVAR_REPS");
    ::unsetenv("OMNIVAR_JOBS");
    jobs_override() = 0;
  }
};

TEST_F(HarnessEnvTest, PaperSpecDefaultsMatchPaperProtocol) {
  const auto spec = paper_spec(77);
  EXPECT_EQ(spec.runs, 10u);
  EXPECT_EQ(spec.reps, 100u);
  EXPECT_EQ(spec.warmup, 1u);
  EXPECT_EQ(spec.seed, 77u);
}

TEST_F(HarnessEnvTest, PaperSpecHonorsExplicitArguments) {
  const auto spec = paper_spec(1, 4, 25);
  EXPECT_EQ(spec.runs, 4u);
  EXPECT_EQ(spec.reps, 25u);
}

TEST_F(HarnessEnvTest, QuickClampsProtocol) {
  ::setenv("OMNIVAR_QUICK", "1", 1);
  const auto spec = paper_spec(1);
  EXPECT_EQ(spec.runs, 3u);
  EXPECT_EQ(spec.reps, 10u);
}

TEST_F(HarnessEnvTest, QuickOnlyClampsNeverGrows) {
  ::setenv("OMNIVAR_QUICK", "1", 1);
  const auto spec = paper_spec(1, 2, 5);
  EXPECT_EQ(spec.runs, 2u);
  EXPECT_EQ(spec.reps, 5u);
}

TEST_F(HarnessEnvTest, QuickZeroIsDisabled) {
  ::setenv("OMNIVAR_QUICK", "0", 1);
  const auto spec = paper_spec(1);
  EXPECT_EQ(spec.runs, 10u);
  EXPECT_EQ(spec.reps, 100u);
}

TEST_F(HarnessEnvTest, RunsAndRepsOverrideExplicitly) {
  ::setenv("OMNIVAR_RUNS", "6", 1);
  ::setenv("OMNIVAR_REPS", "33", 1);
  const auto spec = paper_spec(1);
  EXPECT_EQ(spec.runs, 6u);
  EXPECT_EQ(spec.reps, 33u);
}

TEST_F(HarnessEnvTest, MalformedRunsRepsKeepDefaults) {
  ::setenv("OMNIVAR_RUNS", "abc", 1);
  ::setenv("OMNIVAR_REPS", "-5", 1);
  const auto spec = paper_spec(1);
  EXPECT_EQ(spec.runs, 10u);   // not strtoul's silent 0
  EXPECT_EQ(spec.reps, 100u);
}

TEST_F(HarnessEnvTest, ZeroRunsRepsAreRejected) {
  ::setenv("OMNIVAR_RUNS", "0", 1);
  const auto spec = paper_spec(1);
  EXPECT_EQ(spec.runs, 10u);  // an empty protocol is never useful
}

TEST_F(HarnessEnvTest, ExplicitOverridesBeatQuick) {
  ::setenv("OMNIVAR_QUICK", "1", 1);
  ::setenv("OMNIVAR_RUNS", "8", 1);
  const auto spec = paper_spec(1);
  EXPECT_EQ(spec.runs, 8u);   // explicit override applies after the clamp
  EXPECT_EQ(spec.reps, 10u);  // quick clamp still applies to reps
}

TEST_F(HarnessEnvTest, JobsDefaultsToSerial) { EXPECT_EQ(jobs(), 1u); }

TEST_F(HarnessEnvTest, JobsReadsEnvironment) {
  ::setenv("OMNIVAR_JOBS", "3", 1);
  EXPECT_EQ(jobs(), 3u);
}

TEST_F(HarnessEnvTest, JobsZeroMeansHardwareConcurrency) {
  ::setenv("OMNIVAR_JOBS", "0", 1);
  EXPECT_GE(jobs(), 1u);
  EXPECT_EQ(jobs(), resolve_jobs(0));
}

TEST_F(HarnessEnvTest, ParseArgsEqualsForm) {
  const char* argv[] = {"bench", "--jobs=5"};
  parse_args(2, const_cast<char**>(argv));
  EXPECT_EQ(jobs(), 5u);
}

TEST_F(HarnessEnvTest, ParseArgsSeparateForm) {
  const char* argv[] = {"bench", "--jobs", "7"};
  parse_args(3, const_cast<char**>(argv));
  EXPECT_EQ(jobs(), 7u);
}

TEST_F(HarnessEnvTest, ParseArgsOverridesEnvironment) {
  ::setenv("OMNIVAR_JOBS", "2", 1);
  const char* argv[] = {"bench", "--jobs=9"};
  parse_args(2, const_cast<char**>(argv));
  EXPECT_EQ(jobs(), 9u);
}

TEST_F(HarnessEnvTest, ParseJobCountStrict) {
  std::size_t n = 0;
  EXPECT_TRUE(parse_job_count("5", n));
  EXPECT_EQ(n, 5u);
  EXPECT_TRUE(parse_job_count("0", n));
  EXPECT_EQ(n, resolve_jobs(0));
  EXPECT_FALSE(parse_job_count("", n));
  EXPECT_FALSE(parse_job_count("abc", n));
  EXPECT_FALSE(parse_job_count("1O", n));  // letter O typo
  EXPECT_FALSE(parse_job_count("4 ", n));
  EXPECT_FALSE(parse_job_count(nullptr, n));
  EXPECT_FALSE(parse_job_count("-4", n));  // strtoul would wrap this
  EXPECT_FALSE(parse_job_count("+4", n));
  EXPECT_FALSE(parse_job_count("99999999999999999999999", n));  // ERANGE
}

TEST_F(HarnessEnvTest, MalformedJobsFlagIsIgnoredNotExpanded) {
  const char* argv[] = {"bench", "--jobs=1O"};
  parse_args(2, const_cast<char**>(argv));
  EXPECT_EQ(jobs(), 1u);  // stays serial, does not become all cores
}

TEST_F(HarnessEnvTest, MalformedJobsEnvFallsBackToSerial) {
  ::setenv("OMNIVAR_JOBS", "abc", 1);
  EXPECT_EQ(jobs(), 1u);
}

TEST_F(HarnessEnvTest, NegativeJobsIsRejectedNotWrapped) {
  const char* argv[] = {"bench", "--jobs=-4"};
  parse_args(2, const_cast<char**>(argv));
  EXPECT_EQ(jobs(), 1u);  // not ULONG_MAX-3 workers
  ::setenv("OMNIVAR_JOBS", "-4", 1);
  EXPECT_EQ(jobs(), 1u);
}

TEST_F(HarnessEnvTest, TrailingJobsFlagWithoutValueIsIgnored) {
  const char* argv[] = {"bench", "--jobs"};
  parse_args(2, const_cast<char**>(argv));
  EXPECT_EQ(jobs(), 1u);
}

TEST_F(HarnessEnvTest, ParseArgsIgnoresUnknownArguments) {
  const char* argv[] = {"bench", "--frobnicate", "--jobs=4", "positional"};
  parse_args(4, const_cast<char**>(argv));
  EXPECT_EQ(jobs(), 4u);
}

TEST_F(HarnessEnvTest, RunShardedHonorsJobsKnob) {
  ::setenv("OMNIVAR_JOBS", "4", 1);
  ExperimentSpec spec;
  spec.runs = 5;
  spec.reps = 3;
  spec.seed = 11;
  const auto factory = [](const RunSlot&) -> RepKernel {
    return [](const RepContext& c) {
      return static_cast<double>(c.run_seed % 1000) +
             static_cast<double>(c.rep);
    };
  };
  const auto sharded = run_sharded(spec, factory);
  const auto serial = run_experiment(spec, [](const RepContext& c) {
    return static_cast<double>(c.run_seed % 1000) +
           static_cast<double>(c.rep);
  });
  ASSERT_EQ(sharded.runs(), serial.runs());
  for (std::size_t r = 0; r < serial.runs(); ++r) {
    for (std::size_t k = 0; k < serial.run(r).size(); ++k) {
      EXPECT_EQ(sharded.run(r)[k], serial.run(r)[k]);
    }
  }
}

}  // namespace
}  // namespace omv::harness
