// Unit tests for cli/hotpath_report: the BENCH_hotpath.json renderer.

#include "cli/hotpath_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace omv::cli {
namespace {

HotpathReport sample_report() {
  HotpathReport r;
  r.quick = true;
  r.sim_machine = "vera";
  r.isa = "avx2";
  r.isa_overridden = true;
  r.noise_scan_cutover = 48;
  r.freq_scan_cutover = 48;
  r.kernels.push_back({"preemption_delay", "high", 120000, 70.0, 1400.0});
  r.kernels.push_back({"team_barrier_phase", "vera16", 0, 800.0, 0.0});
  return r;
}

TEST(HotpathReport, RendersSchemaAndKernels) {
  const std::string json = hotpath_report_json(sample_report());
  EXPECT_NE(json.find("\"schema\": \"omnivar-bench-hotpath-v2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"quick\": true"), std::string::npos);
  EXPECT_NE(json.find("\"sim_machine\": \"vera\""), std::string::npos);
  EXPECT_NE(json.find("\"hardware_concurrency\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel\": \"preemption_delay\""),
            std::string::npos);
  EXPECT_NE(json.find("\"stream_events\": 120000"), std::string::npos);
  EXPECT_NE(json.find("\"baseline_ns_per_op\": 1400"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\": 20"), std::string::npos);
}

TEST(HotpathReport, RendersDispatchMetadataAndRegressionFlags) {
  const std::string json = hotpath_report_json(sample_report());
  EXPECT_NE(json.find("\"isa\": \"avx2\""), std::string::npos);
  EXPECT_NE(json.find("\"isa_override\": true"), std::string::npos);
  EXPECT_NE(json.find("\"noise_scan_window\": 48"), std::string::npos);
  EXPECT_NE(json.find("\"freq_scan_episodes\": 48"), std::string::npos);
  EXPECT_NE(json.find("\"baseline_kind\": \"reference_scan\""),
            std::string::npos);
  EXPECT_NE(json.find("\"regression\": false"), std::string::npos);
  EXPECT_NE(json.find("\"any_regression\": false"), std::string::npos);
}

TEST(HotpathReport, FlagsRegressionWhenBaselineBeatsOptimized) {
  HotpathReport r = sample_report();
  r.kernels.push_back(
      {"mean_factor_batch", "low", 10, 200.0, 100.0, "indexed_per_call"});
  EXPECT_TRUE(r.kernels.back().regression());
  const std::string json = hotpath_report_json(r);
  EXPECT_NE(json.find("\"baseline_kind\": \"indexed_per_call\""),
            std::string::npos);
  EXPECT_NE(json.find("\"regression\": true"), std::string::npos);
  EXPECT_NE(json.find("\"any_regression\": true"), std::string::npos);
}

TEST(HotpathReport, BaselineFreeKernelOmitsSpeedup) {
  const std::string json = hotpath_report_json(sample_report());
  // Exactly one kernel carries a baseline, so exactly one speedup entry.
  std::size_t n = 0;
  for (std::size_t pos = json.find("\"speedup\""); pos != std::string::npos;
       pos = json.find("\"speedup\"", pos + 1)) {
    ++n;
  }
  EXPECT_EQ(n, 1u);
}

TEST(HotpathReport, EmptyReportThrows) {
  HotpathReport empty;
  empty.sim_machine = "vera";
  EXPECT_THROW((void)hotpath_report_json(empty), std::invalid_argument);
}

TEST(HotpathReport, WriteRoundTripsToDisk) {
  const std::string path = "hotpath_report_test.json";
  ASSERT_TRUE(write_hotpath_report(sample_report(), path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), hotpath_report_json(sample_report()) + "\n");
  in.close();
  std::remove(path.c_str());
}

TEST(HotpathReport, WriteToUnwritablePathFails) {
  EXPECT_FALSE(
      write_hotpath_report(sample_report(), "/nonexistent-dir/x.json"));
}

}  // namespace
}  // namespace omv::cli
