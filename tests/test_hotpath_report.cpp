// Unit tests for cli/hotpath_report: the BENCH_hotpath.json renderer.

#include "cli/hotpath_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace omv::cli {
namespace {

HotpathReport sample_report() {
  HotpathReport r;
  r.quick = true;
  r.sim_machine = "vera";
  r.kernels.push_back({"preemption_delay", "high", 120000, 70.0, 1400.0});
  r.kernels.push_back({"team_barrier_phase", "vera16", 0, 800.0, 0.0});
  return r;
}

TEST(HotpathReport, RendersSchemaAndKernels) {
  const std::string json = hotpath_report_json(sample_report());
  EXPECT_NE(json.find("\"schema\": \"omnivar-bench-hotpath-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"quick\": true"), std::string::npos);
  EXPECT_NE(json.find("\"sim_machine\": \"vera\""), std::string::npos);
  EXPECT_NE(json.find("\"hardware_concurrency\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel\": \"preemption_delay\""),
            std::string::npos);
  EXPECT_NE(json.find("\"stream_events\": 120000"), std::string::npos);
  EXPECT_NE(json.find("\"baseline_ns_per_op\": 1400"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\": 20"), std::string::npos);
}

TEST(HotpathReport, BaselineFreeKernelOmitsSpeedup) {
  const std::string json = hotpath_report_json(sample_report());
  // Exactly one kernel carries a baseline, so exactly one speedup entry.
  std::size_t n = 0;
  for (std::size_t pos = json.find("\"speedup\""); pos != std::string::npos;
       pos = json.find("\"speedup\"", pos + 1)) {
    ++n;
  }
  EXPECT_EQ(n, 1u);
}

TEST(HotpathReport, EmptyReportThrows) {
  HotpathReport empty;
  empty.sim_machine = "vera";
  EXPECT_THROW((void)hotpath_report_json(empty), std::invalid_argument);
}

TEST(HotpathReport, WriteRoundTripsToDisk) {
  const std::string path = "hotpath_report_test.json";
  ASSERT_TRUE(write_hotpath_report(sample_report(), path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), hotpath_report_json(sample_report()) + "\n");
  in.close();
  std::remove(path.c_str());
}

TEST(HotpathReport, WriteToUnwritablePathFails) {
  EXPECT_FALSE(
      write_hotpath_report(sample_report(), "/nonexistent-dir/x.json"));
}

}  // namespace
}  // namespace omv::cli
