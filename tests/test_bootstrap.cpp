// Unit tests for core/bootstrap.

#include "core/bootstrap.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/descriptive.hpp"

namespace omv::stats {
namespace {

std::vector<double> ramp(int n) {
  std::vector<double> v;
  for (int i = 0; i < n; ++i) v.push_back(10.0 + 0.1 * i);
  return v;
}

TEST(Bootstrap, EmptyInput) {
  const auto ci = bootstrap_mean_ci({});
  EXPECT_EQ(ci.point, 0.0);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 0.0);
}

TEST(Bootstrap, SingleElementCollapses) {
  const std::vector<double> v{4.0};
  const auto ci = bootstrap_mean_ci(v);
  EXPECT_DOUBLE_EQ(ci.point, 4.0);
  EXPECT_DOUBLE_EQ(ci.lo, 4.0);
  EXPECT_DOUBLE_EQ(ci.hi, 4.0);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  const auto v = ramp(30);
  const auto a = bootstrap_mean_ci(v, 500, 0.95, 123);
  const auto b = bootstrap_mean_ci(v, 500, 0.95, 123);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, DifferentSeedsDiffer) {
  const auto v = ramp(30);
  const auto a = bootstrap_mean_ci(v, 500, 0.95, 1);
  const auto b = bootstrap_mean_ci(v, 500, 0.95, 2);
  EXPECT_NE(a.lo, b.lo);
}

TEST(Bootstrap, IntervalBracketsPoint) {
  const auto v = ramp(50);
  const auto ci = bootstrap_mean_ci(v, 1000);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(Bootstrap, IntervalCoversTrueMeanForCleanData) {
  const auto v = ramp(100);
  const double true_mean = summarize(v).mean;
  const auto ci = bootstrap_mean_ci(v, 2000);
  EXPECT_LE(ci.lo, true_mean);
  EXPECT_GE(ci.hi, true_mean);
}

TEST(Bootstrap, WiderAtHigherConfidence) {
  const auto v = ramp(40);
  const auto c90 = bootstrap_mean_ci(v, 2000, 0.90, 7);
  const auto c99 = bootstrap_mean_ci(v, 2000, 0.99, 7);
  EXPECT_LE(c99.lo, c90.lo);
  EXPECT_GE(c99.hi, c90.hi);
}

TEST(Bootstrap, MedianAndCvVariants) {
  const auto v = ramp(60);
  const auto med = bootstrap_median_ci(v, 500);
  EXPECT_NEAR(med.point, percentile(v, 50.0), 1e-12);
  const auto cv = bootstrap_cv_ci(v, 500);
  EXPECT_NEAR(cv.point, summarize(v).cv, 1e-12);
  EXPECT_GE(cv.hi, cv.lo);
}

TEST(Bootstrap, CustomStatistic) {
  const auto v = ramp(20);
  const auto ci = bootstrap_ci(
      v, [](std::span<const double> s) { return summarize(s).max; }, 300);
  EXPECT_DOUBLE_EQ(ci.point, summarize(v).max);
  EXPECT_LE(ci.hi, ci.point + 1e-12);  // max of resample <= sample max
}

TEST(Bootstrap, NanInputPropagatesToWholeInterval) {
  const std::vector<double> v{1.0, std::numeric_limits<double>::quiet_NaN(),
                              3.0};
  const auto ci = bootstrap_mean_ci(v, 200);
  EXPECT_TRUE(std::isnan(ci.point));
  EXPECT_TRUE(std::isnan(ci.lo));
  EXPECT_TRUE(std::isnan(ci.hi));
  EXPECT_DOUBLE_EQ(ci.level, 0.95);
}

TEST(Bootstrap, SingleElementCollapsesToPoint) {
  const std::vector<double> v{4.25};
  const auto ci = bootstrap_median_ci(v, 500);
  EXPECT_DOUBLE_EQ(ci.point, 4.25);
  EXPECT_DOUBLE_EQ(ci.lo, 4.25);
  EXPECT_DOUBLE_EQ(ci.hi, 4.25);
}

}  // namespace
}  // namespace omv::stats
