// Unit tests for core/stat_tests: Welch t, Mann-Whitney U, KS,
// Brown-Forsythe, and the distribution helpers.

#include "core/stat_tests.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"

namespace omv::stats {
namespace {

std::vector<double> normal_sample(double mu, double sigma, int n,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(n);
  for (int i = 0; i < n; ++i) v.push_back(rng.normal(mu, sigma));
  return v;
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(TTwoSidedP, LargeDfMatchesNormal) {
  EXPECT_NEAR(t_two_sided_p(1.96, 1000.0), 0.05, 5e-3);
  EXPECT_NEAR(t_two_sided_p(0.0, 1000.0), 1.0, 1e-9);
}

TEST(TTwoSidedP, SmallDfHeavierTail) {
  // At 5 df, |t| = 1.96 is less significant than under the normal.
  EXPECT_GT(t_two_sided_p(1.96, 5.0), 0.05);
}

TEST(FUpperP, Monotone) {
  EXPECT_GT(f_upper_p(1.0, 5.0, 50.0), f_upper_p(4.0, 5.0, 50.0));
  EXPECT_NEAR(f_upper_p(0.0, 5.0, 50.0), 1.0, 1e-12);
}

TEST(WelchT, IdenticalSamplesNotSignificant) {
  const auto a = normal_sample(10.0, 1.0, 100, 1);
  const auto r = welch_t_test(a, a);
  EXPECT_GT(r.p_value, 0.9);
  EXPECT_FALSE(r.significant);
}

TEST(WelchT, ClearlyShiftedMeansSignificant) {
  const auto a = normal_sample(10.0, 1.0, 100, 1);
  const auto b = normal_sample(13.0, 1.0, 100, 2);
  const auto r = welch_t_test(a, b);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_TRUE(r.significant);
}

TEST(WelchT, SameMeanDifferentNoiseNotSignificant) {
  const auto a = normal_sample(10.0, 1.0, 200, 3);
  const auto b = normal_sample(10.0, 3.0, 200, 4);
  EXPECT_GT(welch_t_test(a, b).p_value, 0.01);
}

TEST(WelchT, TinySamplesGuarded) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{2.0, 3.0};
  const auto r = welch_t_test(a, b);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(WelchT, ZeroVarianceEqualMeans) {
  const std::vector<double> a{5.0, 5.0, 5.0};
  const auto r = welch_t_test(a, a);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(MannWhitney, ShiftDetected) {
  const auto a = normal_sample(0.0, 1.0, 80, 5);
  const auto b = normal_sample(1.5, 1.0, 80, 6);
  EXPECT_LT(mann_whitney_u(a, b).p_value, 1e-4);
}

TEST(MannWhitney, IdenticalNotSignificant) {
  const auto a = normal_sample(0.0, 1.0, 80, 7);
  EXPECT_GT(mann_whitney_u(a, a).p_value, 0.9);
}

TEST(MannWhitney, RobustToOutliers) {
  // Heavy contamination moves the mean but barely the ranks.
  auto a = normal_sample(0.0, 1.0, 100, 8);
  auto b = normal_sample(0.0, 1.0, 100, 9);
  b[0] = 1e6;
  EXPECT_GT(mann_whitney_u(a, b).p_value, 0.05);
}

TEST(MannWhitney, HandlesTies) {
  const std::vector<double> a{1.0, 1.0, 2.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 2.0, 2.0};
  const auto r = mann_whitney_u(a, b);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(KsTest, SameDistributionHighP) {
  const auto a = normal_sample(0.0, 1.0, 150, 10);
  const auto b = normal_sample(0.0, 1.0, 150, 11);
  EXPECT_GT(ks_test(a, b).p_value, 0.05);
}

TEST(KsTest, DifferentSpreadDetected) {
  // Same mean/median but different shape: KS catches it, t-test cannot.
  const auto a = normal_sample(0.0, 1.0, 300, 12);
  const auto b = normal_sample(0.0, 4.0, 300, 13);
  EXPECT_LT(ks_test(a, b).p_value, 0.01);
}

TEST(KsTest, StatisticInUnitRange) {
  const auto a = normal_sample(0.0, 1.0, 50, 14);
  const auto b = normal_sample(5.0, 1.0, 50, 15);
  const auto r = ks_test(a, b);
  EXPECT_GT(r.statistic, 0.5);
  EXPECT_LE(r.statistic, 1.0);
}

TEST(BrownForsythe, EqualVarianceNotSignificant) {
  const auto a = normal_sample(0.0, 2.0, 150, 16);
  const auto b = normal_sample(10.0, 2.0, 150, 17);  // mean shift only
  EXPECT_GT(brown_forsythe(a, b).p_value, 0.05);
}

TEST(BrownForsythe, UnequalVarianceDetected) {
  const auto a = normal_sample(0.0, 1.0, 150, 18);
  const auto b = normal_sample(0.0, 5.0, 150, 19);
  const auto r = brown_forsythe(a, b);
  EXPECT_LT(r.p_value, 1e-4);
  EXPECT_TRUE(r.significant);
}

TEST(BrownForsythe, PinnedVsUnpinnedShapedData) {
  // Mimics the paper's comparison: pinned = tight, unpinned = wild.
  Rng rng(20);
  std::vector<double> pinned;
  std::vector<double> unpinned;
  for (int i = 0; i < 100; ++i) {
    pinned.push_back(100.0 + rng.normal(0.0, 0.5));
    unpinned.push_back(100.0 + rng.normal(0.0, 0.5) +
                       (rng.bernoulli(0.2) ? rng.pareto(50.0, 1.5) : 0.0));
  }
  EXPECT_LT(brown_forsythe(pinned, unpinned).p_value, 0.01);
}

}  // namespace
}  // namespace omv::stats
