// Unit tests for omp_model/team: clocks, fork/barrier, sync episodes.

#include "omp_model/team.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace omv::ompsim {
namespace {

sim::Simulator ideal_vera() {
  return sim::Simulator(topo::Machine::vera(), sim::SimConfig::ideal());
}

TEST(SimTeam, ValidatesThreadCount) {
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 0;
  EXPECT_THROW(SimTeam(s, cfg), std::invalid_argument);
  cfg.n_threads = 33;  // Vera has 32 HW threads
  EXPECT_THROW(SimTeam(s, cfg), std::invalid_argument);
}

TEST(SimTeam, StartsAtZero) {
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 4;
  SimTeam team(s, cfg);
  team.begin_run(1);
  EXPECT_DOUBLE_EQ(team.now(), 0.0);
  EXPECT_EQ(team.size(), 4u);
}

TEST(SimTeam, ComputeAdvancesAllClocks) {
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 4;
  SimTeam team(s, cfg);
  team.begin_run(1);
  team.compute(0.25);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(team.clock(i), 0.25);
  }
}

TEST(SimTeam, HeterogeneousCompute) {
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 3;
  SimTeam team(s, cfg);
  team.begin_run(1);
  const std::vector<double> work{0.1, 0.2, 0.3};
  team.compute(work);
  EXPECT_DOUBLE_EQ(team.clock(0), 0.1);
  EXPECT_DOUBLE_EQ(team.clock(2), 0.3);
  EXPECT_DOUBLE_EQ(team.now(), 0.3);
}

TEST(SimTeam, ComputeSpanSizeMismatchThrows) {
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 2;
  SimTeam team(s, cfg);
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(team.compute(std::span<const double>(wrong)),
               std::invalid_argument);
}

TEST(SimTeam, BarrierWaitsForSlowest) {
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 3;
  SimTeam team(s, cfg);
  team.begin_run(1);
  team.compute({0.1, 0.5, 0.2});
  const double cost = team.barrier_cost();
  team.barrier();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(team.clock(i), 0.5 + cost);
  }
}

TEST(SimTeam, TreeBarrierCostGrowsLogarithmically) {
  auto s = sim::Simulator(topo::Machine::dardel(), sim::SimConfig::ideal());
  double prev = 0.0;
  for (std::size_t t : {2u, 4u, 16u, 64u}) {
    TeamConfig cfg;
    cfg.n_threads = t;
    SimTeam team(s, cfg);
    const double c = team.barrier_cost();
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(SimTeam, BarrierCostIncludesTopologySpan) {
  auto s = sim::Simulator(topo::Machine::dardel(), sim::SimConfig::ideal());
  // 16 threads within one NUMA domain vs 16 spread across both sockets.
  TeamConfig within;
  within.n_threads = 16;
  within.places_spec = "{0}:16:1";  // cores 0-15 = NUMA 0
  SimTeam a(s, within);

  TeamConfig across;
  across.n_threads = 16;
  across.bind = topo::ProcBind::spread;  // spread over all places
  SimTeam b(s, across);

  EXPECT_LT(a.barrier_cost(), b.barrier_cost());
}

TEST(SimTeam, CentralizedBarrierCostlierAtScale) {
  auto s = sim::Simulator(topo::Machine::dardel(), sim::SimConfig::ideal());
  TeamConfig tree;
  tree.n_threads = 128;
  tree.barrier_alg = BarrierAlgorithm::tree;
  TeamConfig central = tree;
  central.barrier_alg = BarrierAlgorithm::centralized;
  SimTeam a(s, tree);
  SimTeam b(s, central);
  EXPECT_LT(a.barrier_cost(), b.barrier_cost());
}

TEST(SimTeam, ForkAlignsToFrontier) {
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 2;
  SimTeam team(s, cfg);
  team.begin_run(1);
  team.compute({0.0, 1.0});
  team.fork();
  EXPECT_DOUBLE_EQ(team.clock(0), 1.0 + team.fork_cost());
}

TEST(SimTeam, BeginRepAlignsClocks) {
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 3;
  cfg.inter_rep_gap = 0.05;
  SimTeam team(s, cfg);
  team.begin_run(1);
  team.compute({0.1, 0.7, 0.3});
  team.begin_rep();
  // Clocks align at the frontier plus the inter-repetition gap.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(team.clock(i), 0.75);
  }
}

TEST(SimTeam, BeginRunResetsClocks) {
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 2;
  SimTeam team(s, cfg);
  team.begin_run(1);
  team.compute(5.0);
  team.begin_run(2);
  EXPECT_DOUBLE_EQ(team.now(), 0.0);
}

TEST(SimTeam, SetClocksValidates) {
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 2;
  SimTeam team(s, cfg);
  const std::vector<double> wrong{1.0, 2.0, 3.0};
  EXPECT_THROW(team.set_clocks(wrong), std::invalid_argument);
}

TEST(SimTeam, PinnedPlacementFollowsCloseMapping) {
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 4;
  cfg.bind = topo::ProcBind::close;
  SimTeam team(s, cfg);
  team.begin_run(1);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(team.placement().hw[i], i);
  }
}

TEST(SimTeam, SyncEpisodeChargesOversubscribedThreads) {
  // Pin two threads to the same HW thread via an explicit single place.
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 2;
  cfg.places_spec = "{3}";
  cfg.bind = topo::ProcBind::close;
  SimTeam team(s, cfg);
  team.begin_run(1);
  EXPECT_EQ(team.placement().share[0], 2u);
  const double before = team.now();
  team.sync_episode(0.0, 1);
  EXPECT_GT(team.now(), before);  // stall charged even with zero base cost
}

TEST(SimTeam, NoSmtCoscheduleOnVera) {
  auto s = ideal_vera();
  TeamConfig cfg;
  cfg.n_threads = 32;
  SimTeam team(s, cfg);
  EXPECT_FALSE(team.any_smt_coscheduled());
}

TEST(SimTeam, SmtCoscheduleDetectedOnDardelMt) {
  auto s = sim::Simulator(topo::Machine::dardel(), sim::SimConfig::ideal());
  TeamConfig cfg;
  cfg.n_threads = 32;
  cfg.places_spec = "{0}:16:1,{128}:16:1";  // both siblings of cores 0-15
  SimTeam team(s, cfg);
  EXPECT_TRUE(team.any_smt_coscheduled());
}

}  // namespace
}  // namespace omv::ompsim
