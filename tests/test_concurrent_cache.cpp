// Two-process cache race: fork/exec two real omnivar driver processes into
// ONE shared --out directory and assert the crash-safe concurrent-cache
// contract:
//   * the shared cache ends up with exactly the entries a serial campaign
//     produces, byte-identical (disjoint-or-identical commits: atomic
//     tmp+rename means the last writer of an entry wins with the same
//     bytes, and the per-cell lease means entries are usually computed
//     once);
//   * no torn files: every .csv parses, every .key carries the schema
//     stamp, no .tmp.* droppings or abandoned .lock files survive;
//   * both processes exit 0 and print byte-identical harness reports.
//
// The driver binary path arrives via OMNIVAR_BIN (set by the CMake test
// harness to $<TARGET_FILE:omnivar>); the suite skips when it is absent so
// the test library builds standalone.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

const char* omnivar_bin() { return std::getenv("OMNIVAR_BIN"); }

/// fork/execs `bin --only fig1 --out <out>` with stdout > `stdout_path`,
/// OMNIVAR_QUICK=1 and a serial single-job protocol. Returns the child pid.
pid_t spawn_campaign(const std::string& bin, const std::string& out,
                     const std::string& stdout_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child. Redirect stdout to the capture file; stderr stays on the
  // test's stderr for diagnosis.
  if (!::freopen(stdout_path.c_str(), "w", stdout)) ::_exit(97);
  ::setenv("OMNIVAR_QUICK", "1", 1);
  ::setenv("OMNIVAR_JOBS", "1", 1);
  ::execl(bin.c_str(), bin.c_str(), "--only", "fig1", "--out", out.c_str(),
          static_cast<char*>(nullptr));
  ::_exit(98);  // exec failed
}

int wait_exit_code(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
}

std::string slurp(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(f),
          std::istreambuf_iterator<char>()};
}

/// Maps cache filename -> bytes, ignoring lock files (advisory leases may
/// legitimately exist while a campaign runs; none should survive it —
/// asserted separately).
std::map<std::string, std::string> cache_contents(const fs::path& out) {
  std::map<std::string, std::string> m;
  const fs::path cache = out / "cache";
  if (!fs::exists(cache)) return m;
  for (const auto& e : fs::directory_iterator(cache)) {
    m[e.path().filename().string()] = slurp(e.path());
  }
  return m;
}

class ConcurrentCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (omnivar_bin() == nullptr || !fs::exists(omnivar_bin())) {
      GTEST_SKIP() << "OMNIVAR_BIN not set / not built; skipping the "
                      "two-process race test";
    }
    dir_ = fs::temp_directory_path() /
           ("omnivar_race_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(ConcurrentCacheTest, TwoRacingCampaignsMatchASerialCampaign) {
  const std::string bin = omnivar_bin();

  // Reference: one serial campaign into its own directory.
  const fs::path serial_out = dir_ / "serial";
  const pid_t ref =
      spawn_campaign(bin, serial_out.string(), (dir_ / "serial.log").string());
  ASSERT_EQ(wait_exit_code(ref), 0);
  const auto expected = cache_contents(serial_out);
  ASSERT_FALSE(expected.empty());

  // Race: two campaigns into ONE shared directory, started back-to-back.
  const fs::path shared_out = dir_ / "shared";
  const pid_t a =
      spawn_campaign(bin, shared_out.string(), (dir_ / "a.log").string());
  const pid_t b =
      spawn_campaign(bin, shared_out.string(), (dir_ / "b.log").string());
  EXPECT_EQ(wait_exit_code(a), 0);
  EXPECT_EQ(wait_exit_code(b), 0);

  // Every cache artifact is byte-identical to the serial campaign's; no
  // extra entries, no missing entries, no torn files.
  const auto got = cache_contents(shared_out);
  std::map<std::string, std::string> got_entries;
  for (const auto& [name, bytes] : got) {
    // Commit temp files and leases must not survive a completed campaign.
    EXPECT_EQ(name.find(".tmp."), std::string::npos) << name;
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".lock") == 0) {
      ADD_FAILURE() << "abandoned lease file: " << name;
      continue;
    }
    got_entries[name] = bytes;
  }
  EXPECT_EQ(got_entries.size(), expected.size());
  for (const auto& [name, bytes] : expected) {
    const auto it = got_entries.find(name);
    ASSERT_NE(it, got_entries.end()) << "missing cache entry " << name;
    EXPECT_EQ(it->second, bytes) << "cache entry differs: " << name;
  }

  // Every .key opens with the cache schema stamp (no torn markers).
  for (const auto& [name, bytes] : got_entries) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".key") == 0) {
      EXPECT_EQ(bytes.rfind("omnivar-cache-", 0), 0u) << name;
    }
  }

  // Both racing processes printed byte-identical science reports, equal to
  // the serial run's (stdout carries only harness output; driver chrome
  // goes to stderr).
  const std::string serial_log = slurp(dir_ / "serial.log");
  EXPECT_FALSE(serial_log.empty());
  EXPECT_EQ(slurp(dir_ / "a.log"), serial_log);
  EXPECT_EQ(slurp(dir_ / "b.log"), serial_log);

  // A third, warm campaign over the shared dir serves everything from
  // cache and stays byte-identical.
  const pid_t warm =
      spawn_campaign(bin, shared_out.string(), (dir_ / "warm.log").string());
  ASSERT_EQ(wait_exit_code(warm), 0);
  EXPECT_EQ(slurp(dir_ / "warm.log"), serial_log);
}

TEST_F(ConcurrentCacheTest, FaultInjectedCampaignExitsQuarantinedThenHeals) {
  const std::string bin = omnivar_bin();
  const fs::path out = dir_ / "faulted";

  // Arm a persistent cell fault for the first fig1 cell. The driver must
  // quarantine it (exit 4), keep the campaign alive, and print the FAILED
  // line on stdout.
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (!::freopen((dir_ / "faulted.log").c_str(), "w", stdout)) ::_exit(97);
    ::setenv("OMNIVAR_QUICK", "1", 1);
    ::setenv("OMNIVAR_JOBS", "1", 1);
    ::setenv("OMNIVAR_FAULT_SPEC", "cell_throw@1", 1);
    ::execl(bin.c_str(), bin.c_str(), "--only", "fig1", "--out",
            out.c_str(), static_cast<char*>(nullptr));
    ::_exit(98);
  }
  ASSERT_EQ(wait_exit_code(pid), 4);  // kExitQuarantined
  const std::string log = slurp(dir_ / "faulted.log");
  EXPECT_NE(log.find("[omnivar] FAILED cell"), std::string::npos);

  // campaign.json records the failure block with its taxonomy.
  const std::string campaign = slurp(out / "campaign.json");
  EXPECT_NE(campaign.find("\"schema\": \"omnivar-campaign-v3\""),
            std::string::npos);
  EXPECT_NE(campaign.find("\"failures\""), std::string::npos);
  EXPECT_NE(campaign.find("\"taxonomy\": \"exception\""),
            std::string::npos);
  EXPECT_NE(campaign.find("\"exit_code\": 4"), std::string::npos);

  // Un-faulted re-run over the same directory heals: exit 0, and the
  // quarantined cell is simply computed this time.
  const pid_t heal =
      spawn_campaign(bin, out.string(), (dir_ / "healed.log").string());
  ASSERT_EQ(wait_exit_code(heal), 0);
  const std::string healed = slurp(dir_ / "healed.log");
  EXPECT_EQ(healed.find("[omnivar] FAILED cell"), std::string::npos);
}

}  // namespace
