// Unit tests for core/characterize: the variability-signature classifier.

#include "core/characterize.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace omv {
namespace {

RunMatrix make_matrix(
    const std::function<double(std::size_t run, std::size_t rep, Rng&)>& gen,
    std::size_t runs = 10, std::size_t reps = 100) {
  RunMatrix m;
  Rng rng(77);
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<double> v;
    for (std::size_t k = 0; k < reps; ++k) v.push_back(gen(r, k, rng));
    m.add_run(std::move(v));
  }
  return m;
}

TEST(Characterize, EmptyMatrix) {
  const auto c = characterize(RunMatrix{});
  EXPECT_TRUE(c.signatures.empty());
  EXPECT_EQ(c.to_string(), "unclassified");
}

TEST(Characterize, StableMatrix) {
  const auto m = make_matrix([](std::size_t, std::size_t, Rng& rng) {
    return 100.0 + rng.normal(0.0, 0.05);
  });
  const auto c = characterize(m);
  EXPECT_TRUE(c.has(Signature::stable)) << c.to_string();
  EXPECT_FALSE(c.has(Signature::jittery));
}

TEST(Characterize, OutlierRunDetected) {
  const auto m = make_matrix([](std::size_t run, std::size_t, Rng& rng) {
    return 100.0 + (run == 8 ? 12.0 : 0.0) + rng.normal(0.0, 0.1);
  });
  const auto c = characterize(m);
  EXPECT_TRUE(c.has(Signature::outlier_runs)) << c.to_string();
  EXPECT_GT(c.icc, 0.5);
}

TEST(Characterize, HeavyTailDetected) {
  const auto m = make_matrix([](std::size_t, std::size_t, Rng& rng) {
    return 100.0 + rng.normal(0.0, 0.2) +
           (rng.bernoulli(0.05) ? rng.pareto(20.0, 1.5) : 0.0);
  });
  const auto c = characterize(m);
  EXPECT_TRUE(c.has(Signature::heavy_tail)) << c.to_string();
  EXPECT_GT(c.high_tail_fraction, 0.02);
}

TEST(Characterize, BimodalDetected) {
  const auto m = make_matrix([](std::size_t, std::size_t rep, Rng& rng) {
    return (rep % 2 ? 100.0 : 160.0) + rng.normal(0.0, 1.0);
  });
  const auto c = characterize(m);
  EXPECT_TRUE(c.multimodal);
  EXPECT_TRUE(c.has(Signature::bimodal)) << c.to_string();
}

TEST(Characterize, DriftDetected) {
  const auto m = make_matrix([](std::size_t run, std::size_t, Rng& rng) {
    return 100.0 + 2.0 * static_cast<double>(run) + rng.normal(0.0, 0.1);
  });
  const auto c = characterize(m);
  EXPECT_GT(c.drift_corr, 0.9);
  EXPECT_TRUE(c.has(Signature::drift)) << c.to_string();
}

TEST(Characterize, JitteryDetected) {
  const auto m = make_matrix([](std::size_t, std::size_t, Rng& rng) {
    return 100.0 + rng.normal(0.0, 15.0);
  });
  const auto c = characterize(m);
  EXPECT_TRUE(c.has(Signature::jittery)) << c.to_string();
}

TEST(Characterize, ToStringJoinsWithPlus) {
  Characterization c;
  c.signatures = {Signature::outlier_runs, Signature::heavy_tail};
  EXPECT_EQ(c.to_string(), "outlier_runs+heavy_tail");
}

TEST(SignatureName, AllNamed) {
  EXPECT_STREQ(signature_name(Signature::stable), "stable");
  EXPECT_STREQ(signature_name(Signature::outlier_runs), "outlier_runs");
  EXPECT_STREQ(signature_name(Signature::heavy_tail), "heavy_tail");
  EXPECT_STREQ(signature_name(Signature::bimodal), "bimodal");
  EXPECT_STREQ(signature_name(Signature::drift), "drift");
  EXPECT_STREQ(signature_name(Signature::jittery), "jittery");
}

TEST(IndexRankCorrelation, PerfectTrend) {
  const std::vector<double> up{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_NEAR(index_rank_correlation(up), 1.0, 1e-12);
  const std::vector<double> down{5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(index_rank_correlation(down), -1.0, 1e-12);
}

TEST(IndexRankCorrelation, NoTrendNearZero) {
  const std::vector<double> v{3.0, 1.0, 4.0, 1.5, 5.0, 9.0, 2.0, 6.0};
  EXPECT_LT(std::abs(index_rank_correlation(v)), 0.6);
}

TEST(IndexRankCorrelation, TinyInputZero) {
  EXPECT_EQ(index_rank_correlation(std::vector<double>{1.0, 2.0}), 0.0);
}

}  // namespace
}  // namespace omv
