// Unit tests for bench_suite/ftq: the fixed-time-quantum noise probe.

#include "bench_suite/ftq.hpp"

#include <gtest/gtest.h>

#include "core/autocorrelation.hpp"

namespace omv::bench {
namespace {

TEST(FtqAnalyze, EmptyTrace) {
  const auto r = analyze_ftq({});
  EXPECT_EQ(r.mean_work, 0.0);
  EXPECT_EQ(r.noise_fraction, 0.0);
}

TEST(FtqAnalyze, CleanTraceZeroNoise) {
  std::vector<FtqSample> s;
  for (int i = 0; i < 10; ++i) s.push_back({i * 0.001, 100.0});
  const auto r = analyze_ftq(s);
  EXPECT_DOUBLE_EQ(r.mean_work, 100.0);
  EXPECT_DOUBLE_EQ(r.noise_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.disturbed_quanta, 0.0);
}

TEST(FtqAnalyze, DisturbedQuantaCounted) {
  std::vector<FtqSample> s;
  for (int i = 0; i < 9; ++i) s.push_back({i * 0.001, 100.0});
  s.push_back({0.009, 50.0});  // one robbed quantum
  const auto r = analyze_ftq(s);
  EXPECT_DOUBLE_EQ(r.max_work, 100.0);
  EXPECT_NEAR(r.noise_fraction, 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(r.disturbed_quanta, 0.1);
}

TEST(FtqDeficits, RelativeToBestQuantum) {
  std::vector<FtqSample> s{{0.0, 100.0}, {0.001, 80.0}, {0.002, 100.0}};
  const auto d = ftq_deficits(s);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 20.0);
}

TEST(FtqSim, QuietSimulatorIsNoiseFree) {
  sim::Simulator s(topo::Machine::vera(), sim::SimConfig::ideal());
  s.begin_run(1, topo::CpuSet::range(0, 4));
  const auto trace = run_ftq_sim(s, 0, 0.0, 100, 0.001);
  ASSERT_EQ(trace.size(), 100u);
  const auto r = analyze_ftq(trace);
  EXPECT_NEAR(r.noise_fraction, 0.0, 1e-9);
}

TEST(FtqSim, NoisySimulatorShowsDeficits) {
  auto cfg = sim::SimConfig::ideal();
  cfg.noise.kworker_rate_per_cpu = 20.0;
  cfg.noise.kworker_mean = 200e-6;
  sim::Simulator s(topo::Machine::vera(), cfg);
  s.begin_run(1, topo::CpuSet::range(0, 4));
  const auto trace = run_ftq_sim(s, 0, 0.0, 500, 0.001);
  const auto r = analyze_ftq(trace);
  EXPECT_GT(r.noise_fraction, 0.001);
  EXPECT_GT(r.disturbed_quanta, 0.0);
}

TEST(FtqSim, DetectsPeriodicTickNoise) {
  // Ticks every 4 ms with 1 ms quanta -> deficit every 4th quantum.
  auto cfg = sim::SimConfig::ideal();
  cfg.noise.tick_period = 0.004;
  cfg.noise.tick_duration = 50e-6;
  sim::Simulator s(topo::Machine::vera(), cfg);
  s.begin_run(7, topo::CpuSet::range(0, 4));
  const auto trace = run_ftq_sim(s, 0, 0.0, 400, 0.001);
  const auto period = stats::dominant_period(ftq_deficits(trace), 16);
  EXPECT_TRUE(period.significant);
  EXPECT_EQ(period.lag, 4u);
}

TEST(FtqSim, FrequencyDipsReduceWork) {
  auto cfg = sim::SimConfig::ideal();
  cfg.freq.episode_rate = 50.0;  // dips essentially always active
  cfg.freq.episode_mean = 1.0;
  cfg.freq.depth_lo = 0.5;
  cfg.freq.depth_hi = 0.5;
  sim::Simulator s(topo::Machine::vera(), cfg);
  s.begin_run(3, topo::CpuSet::range(0, 4));
  const auto trace = run_ftq_sim(s, 0, 0.0, 50, 0.001);
  const auto r = analyze_ftq(trace);
  EXPECT_LT(r.mean_work, 0.75 * 0.001);  // well below full-speed quanta
}

TEST(FtqNative, ProducesPlausibleTrace) {
  const auto trace = run_ftq_native(20, 0.0005);
  ASSERT_EQ(trace.size(), 20u);
  const auto r = analyze_ftq(trace);
  EXPECT_GT(r.max_work, 0.0);
  EXPECT_GE(r.noise_fraction, 0.0);
  EXPECT_LE(r.noise_fraction, 1.0);
  // Start times increase.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].start_s, trace[i - 1].start_s);
  }
}

}  // namespace
}  // namespace omv::bench
