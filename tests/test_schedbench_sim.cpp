// Tests for bench_suite/schedbench_sim, including the Table 2 calibration.

#include "bench_suite/schedbench_sim.hpp"

#include <gtest/gtest.h>

namespace omv::bench {
namespace {

ompsim::TeamConfig team_cfg(std::size_t threads) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = threads;
  cfg.bind = topo::ProcBind::close;
  return cfg;
}

ExperimentSpec quick_spec(std::uint64_t seed, std::size_t runs = 3,
                          std::size_t reps = 5) {
  ExperimentSpec spec;
  spec.runs = runs;
  spec.reps = reps;
  spec.warmup = 0;
  spec.seed = seed;
  return spec;
}

TEST(SimSchedBench, CoarsenBoundsGrabs) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  SimSchedBench sb(s, team_cfg(254), EpccParams::schedbench(), 20000);
  // 254 * 8192 chunk-1 grabs must coarsen to stay near the budget.
  const auto c = sb.coarsen_for(1);
  EXPECT_GE(c, 100u);
  const std::size_t grabs = 254 * 8192 / c;
  EXPECT_LE(grabs, 25000u);
}

TEST(SimSchedBench, NoCoarseningAtSmallScale) {
  sim::Simulator s(topo::Machine::vera(), sim::SimConfig::vera());
  SimSchedBench sb(s, team_cfg(2), EpccParams::schedbench(), 20000);
  EXPECT_EQ(sb.coarsen_for(8192), 1u);
}

TEST(SimSchedBench, BaseWorkDominatesRepTime) {
  // One rep is itersperthr x delay ~= 123 ms plus overhead.
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::ideal());
  SimSchedBench sb(s, team_cfg(4));
  ompsim::SimTeam team(s, team_cfg(4), 1);
  team.begin_run(1);
  const double rep = sb.rep_time_us(team, ompsim::Schedule::static_, 1);
  EXPECT_GT(rep, 120000.0);
  EXPECT_LT(rep, 130000.0);
}

TEST(SimSchedBench, Table2DardelCalibration) {
  // Paper Table 2 (Dardel, dynamic_1): ~124.0 ms at 4 threads, ~154.2 ms at
  // 254 threads. The simulator should land within ~5%.
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  {
    SimSchedBench sb(s, team_cfg(4));
    const auto m =
        sb.run_protocol(ompsim::Schedule::dynamic, 1, quick_spec(2));
    EXPECT_NEAR(m.pooled_summary().median, 124000.0, 6000.0);
  }
  {
    SimSchedBench sb(s, team_cfg(254));
    const auto m =
        sb.run_protocol(ompsim::Schedule::dynamic, 1, quick_spec(2));
    EXPECT_NEAR(m.pooled_summary().median, 154200.0, 10000.0);
  }
}

TEST(SimSchedBench, Table2VeraCalibration) {
  // Paper Table 2 (Vera, dynamic_1): ~136.5 ms at 4 threads, ~164.7 ms at
  // 30 threads.
  sim::Simulator s(topo::Machine::vera(), sim::SimConfig::vera());
  {
    SimSchedBench sb(s, team_cfg(4));
    const auto m =
        sb.run_protocol(ompsim::Schedule::dynamic, 1, quick_spec(3));
    EXPECT_NEAR(m.pooled_summary().median, 136500.0, 7000.0);
  }
  {
    SimSchedBench sb(s, team_cfg(30));
    const auto m =
        sb.run_protocol(ompsim::Schedule::dynamic, 1, quick_spec(3));
    EXPECT_NEAR(m.pooled_summary().median, 164700.0, 10000.0);
  }
}

TEST(SimSchedBench, DynamicOverheadGrowsWithThreads) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::ideal());
  double prev = 0.0;
  for (std::size_t t : {4u, 64u, 254u}) {
    SimSchedBench sb(s, team_cfg(t));
    ompsim::SimTeam team(s, team_cfg(t), 1);
    team.begin_run(1);
    const double rep = sb.rep_time_us(team, ompsim::Schedule::dynamic, 1);
    EXPECT_GT(rep, prev) << t;
    prev = rep;
  }
}

TEST(SimSchedBench, StaticCheaperThanDynamicChunk1) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::ideal());
  SimSchedBench sb(s, team_cfg(128));
  ompsim::SimTeam t1(s, team_cfg(128), 1);
  t1.begin_run(1);
  const double stat = sb.rep_time_us(t1, ompsim::Schedule::static_, 1);
  ompsim::SimTeam t2(s, team_cfg(128), 1);
  t2.begin_run(1);
  const double dyn = sb.rep_time_us(t2, ompsim::Schedule::dynamic, 1);
  EXPECT_LT(stat, dyn);
}

TEST(SimSchedBench, LargerChunksReduceDynamicOverhead) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::ideal());
  SimSchedBench sb(s, team_cfg(64));
  ompsim::SimTeam t1(s, team_cfg(64), 1);
  t1.begin_run(1);
  const double chunk1 = sb.rep_time_us(t1, ompsim::Schedule::dynamic, 1);
  ompsim::SimTeam t2(s, team_cfg(64), 1);
  t2.begin_run(1);
  const double chunk64 = sb.rep_time_us(t2, ompsim::Schedule::dynamic, 64);
  EXPECT_LT(chunk64, chunk1);
}

TEST(SimSchedBench, GuidedBetweenStaticAndDynamic) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::ideal());
  SimSchedBench sb(s, team_cfg(64));
  ompsim::SimTeam t1(s, team_cfg(64), 1);
  t1.begin_run(1);
  const double stat = sb.rep_time_us(t1, ompsim::Schedule::static_, 1);
  ompsim::SimTeam t2(s, team_cfg(64), 1);
  t2.begin_run(1);
  const double gui = sb.rep_time_us(t2, ompsim::Schedule::guided, 1);
  ompsim::SimTeam t3(s, team_cfg(64), 1);
  t3.begin_run(1);
  const double dyn = sb.rep_time_us(t3, ompsim::Schedule::dynamic, 1);
  EXPECT_LE(stat, gui);
  EXPECT_LE(gui, dyn);
}

TEST(SimSchedBench, ProtocolDeterministic) {
  sim::Simulator s1(topo::Machine::vera(), sim::SimConfig::vera());
  sim::Simulator s2(topo::Machine::vera(), sim::SimConfig::vera());
  SimSchedBench a(s1, team_cfg(8));
  SimSchedBench b(s2, team_cfg(8));
  const auto ma = a.run_protocol(ompsim::Schedule::guided, 1,
                                 quick_spec(5, 2, 3));
  const auto mb = b.run_protocol(ompsim::Schedule::guided, 1,
                                 quick_spec(5, 2, 3));
  EXPECT_DOUBLE_EQ(ma.pooled_summary().mean, mb.pooled_summary().mean);
}

}  // namespace
}  // namespace omv::bench
