// Unit tests for core/compare: the A/B configuration comparison.

#include "core/compare.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace omv {
namespace {

RunMatrix gaussian_matrix(const std::string& label, double mean, double sd,
                          std::uint64_t seed, std::size_t runs = 6,
                          std::size_t reps = 50) {
  Rng rng(seed);
  RunMatrix m(label);
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<double> v;
    for (std::size_t k = 0; k < reps; ++k) v.push_back(rng.normal(mean, sd));
    m.add_run(std::move(v));
  }
  return m;
}

TEST(HedgesG, ZeroForIdentical) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(hedges_g(a, a), 0.0, 1e-12);
}

TEST(HedgesG, SignFollowsDirection) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{5.0, 6.0, 7.0, 8.0};
  EXPECT_GT(hedges_g(a, b), 1.0);   // b slower
  EXPECT_LT(hedges_g(b, a), -1.0);  // reversed
}

TEST(HedgesG, DegenerateInputs) {
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_EQ(hedges_g(one, two), 0.0);
  const std::vector<double> constant{3.0, 3.0, 3.0};
  EXPECT_EQ(hedges_g(constant, constant), 0.0);
}

TEST(Compare, LabelsPropagate) {
  const auto a = gaussian_matrix("pinned", 100.0, 1.0, 1);
  const auto b = gaussian_matrix("unpinned", 100.0, 1.0, 2);
  const auto c = compare(a, b);
  EXPECT_EQ(c.label_a, "pinned");
  EXPECT_EQ(c.label_b, "unpinned");
}

TEST(Compare, IdenticalConfigsNotSignificant) {
  const auto a = gaussian_matrix("a", 100.0, 2.0, 3);
  const auto b = gaussian_matrix("b", 100.0, 2.0, 4);
  const auto c = compare(a, b);
  EXPECT_FALSE(c.b_more_variable());
  EXPECT_FALSE(c.b_less_variable());
  EXPECT_NEAR(c.mean_ratio, 1.0, 0.01);
  EXPECT_GT(c.welch.p_value, 0.01);
}

TEST(Compare, DetectsSlowerMean) {
  const auto a = gaussian_matrix("a", 100.0, 1.0, 5);
  const auto b = gaussian_matrix("b", 110.0, 1.0, 6);
  const auto c = compare(a, b);
  EXPECT_GT(c.mean_ratio, 1.05);
  EXPECT_TRUE(c.welch.significant);
  EXPECT_TRUE(c.mann_whitney.significant);
  EXPECT_GT(c.hedges_g, 2.0);
}

TEST(Compare, DetectsMoreVariableB) {
  const auto a = gaussian_matrix("pinned", 100.0, 0.5, 7);
  const auto b = gaussian_matrix("unpinned", 100.0, 5.0, 8);
  const auto c = compare(a, b);
  EXPECT_TRUE(c.b_more_variable());
  EXPECT_FALSE(c.b_less_variable());
  EXPECT_GT(c.cv_ratio, 3.0);
}

TEST(Compare, DetectsMitigation) {
  const auto before = gaussian_matrix("before", 100.0, 5.0, 9);
  const auto after = gaussian_matrix("after", 100.0, 0.5, 10);
  const auto c = compare(before, after);
  EXPECT_TRUE(c.b_less_variable());
}

TEST(Compare, VerdictMentionsLabelsAndDirection) {
  const auto a = gaussian_matrix("st", 100.0, 0.5, 11);
  const auto b = gaussian_matrix("mt", 105.0, 4.0, 12);
  const auto v = compare(a, b).verdict();
  EXPECT_NE(v.find("mt vs st"), std::string::npos);
  EXPECT_NE(v.find("MORE variable"), std::string::npos);
}

TEST(Compare, EmptyLabelsGetDefaults) {
  const auto a = gaussian_matrix("", 1.0, 0.1, 13);
  const auto c = compare(a, a);
  EXPECT_EQ(c.label_a, "A");
  EXPECT_EQ(c.label_b, "B");
}

}  // namespace
}  // namespace omv
