// Unit tests for core/snapshot: the versioned binary format, its strict
// byte-offset-numbered error paths, the Capture/Restore field visitors,
// and snapshot round-trips of the stateful simulator components.

#include "core/snapshot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_suite/checkpoint.hpp"
#include "core/rng.hpp"
#include "omp_model/team.hpp"
#include "scenario/registry.hpp"
#include "sim/noise.hpp"
#include "sim/simulator.hpp"
#include "topo/proc_bind.hpp"

namespace omv::snap {
namespace {

/// Runs `f` and returns the SnapshotError message it must throw.
template <typename F>
std::string error_of(F f) {
  try {
    f();
  } catch (const SnapshotError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected SnapshotError, none thrown";
  return {};
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(SnapshotFormat, RoundTripsEveryFieldType) {
  SnapshotWriter w;
  w.field_u64("u", 0xdeadbeefcafef00dULL);
  w.field_f64("f", -0.1);
  w.field_bool("b", true);
  w.field_str("s", "hello");
  w.field_vec_f64("vf", {1.5, -2.5, 0.0});
  w.field_vec_u64("vu", {7, 8, 9});
  w.field_bytes("raw", std::string("\x00\x01\xff", 3));

  SnapshotReader r(w.buffer(), "test");
  EXPECT_EQ(r.field_u64("u"), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(r.field_f64("f"), -0.1);
  EXPECT_TRUE(r.field_bool("b"));
  EXPECT_EQ(r.field_str("s"), "hello");
  EXPECT_EQ(r.field_vec_f64("vf"), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(r.field_vec_u64("vu"), (std::vector<std::uint64_t>{7, 8, 9}));
  EXPECT_EQ(r.field_bytes("raw"), std::string("\x00\x01\xff", 3));
  r.expect_end();
}

TEST(SnapshotFormat, Float64RoundTripIsBitExact) {
  // f64 travels as a bit_cast u64, so NaN payloads, -0.0 and subnormals
  // survive exactly.
  SnapshotWriter w;
  w.field_f64("nz", -0.0);
  w.field_f64("sub", 5e-324);
  SnapshotReader r(w.buffer(), "test");
  const double nz = r.field_f64("nz");
  EXPECT_EQ(std::signbit(nz), true);
  EXPECT_EQ(r.field_f64("sub"), 5e-324);
}

TEST(SnapshotFormat, WrongMagicFailsAtByteZero) {
  SnapshotWriter w;
  w.field_u64("x", 1);
  std::string bytes = w.take();
  bytes[0] = 'X';
  const std::string msg =
      error_of([&] { SnapshotReader r(bytes, "corrupt.snap"); });
  EXPECT_TRUE(contains(msg, "corrupt.snap: byte 0:")) << msg;
  EXPECT_TRUE(contains(msg, "bad magic")) << msg;
}

TEST(SnapshotFormat, VersionSkewFailsAtVersionOffset) {
  SnapshotWriter w;
  w.field_u64("x", 1);
  std::string bytes = w.take();
  bytes[kMagic.size()] = 99;  // little-endian low byte of the version word
  const std::string msg =
      error_of([&] { SnapshotReader r(bytes, "old.snap"); });
  EXPECT_TRUE(contains(msg, "old.snap: byte 12:")) << msg;
  EXPECT_TRUE(contains(msg, "format version 99 unsupported")) << msg;
}

TEST(SnapshotFormat, TruncationReportsNeedAndHave) {
  SnapshotWriter w;
  w.field_vec_f64("v", {1.0, 2.0, 3.0});
  std::string bytes = w.take();
  bytes.resize(bytes.size() - 10);
  SnapshotReader r(bytes, "short.snap");
  const std::string msg = error_of([&] { (void)r.field_vec_f64("v"); });
  EXPECT_TRUE(contains(msg, "short.snap: byte ")) << msg;
  EXPECT_TRUE(contains(msg, "truncated snapshot")) << msg;
}

TEST(SnapshotFormat, TruncatedHeaderFails) {
  const std::string msg = error_of([&] {
    SnapshotReader r(std::string(kMagic.substr(0, 5)), "stub.snap");
  });
  EXPECT_TRUE(contains(msg, "stub.snap: byte 0:")) << msg;
}

TEST(SnapshotFormat, WrongFieldNameFailsAtRecordOffset) {
  SnapshotWriter w;
  w.field_u64("actual", 1);
  SnapshotReader r(w.buffer(), "test");
  const std::string msg = error_of([&] { (void)r.field_u64("expected"); });
  // The header is 12 magic + 4 version bytes; the record starts at 16.
  EXPECT_TRUE(contains(msg, "test: byte 16:")) << msg;
  EXPECT_TRUE(contains(msg, "expected field 'expected', found 'actual'"))
      << msg;
}

TEST(SnapshotFormat, WrongFieldTypeFails) {
  SnapshotWriter w;
  w.field_u64("x", 1);
  SnapshotReader r(w.buffer(), "test");
  const std::string msg = error_of([&] { (void)r.field_f64("x"); });
  EXPECT_TRUE(contains(msg, "expected type f64")) << msg;
}

TEST(SnapshotFormat, BoolPayloadMustBeZeroOrOne) {
  SnapshotWriter w;
  w.field_bool("flag", true);
  std::string bytes = w.take();
  bytes.back() = 2;
  SnapshotReader r(bytes, "test");
  const std::string msg = error_of([&] { (void)r.field_bool("flag"); });
  EXPECT_TRUE(contains(msg, "bool byte must be 0 or 1")) << msg;
}

TEST(SnapshotFormat, ExpectEndRejectsTrailingBytes) {
  SnapshotWriter w;
  w.field_u64("x", 1);
  w.field_u64("extra", 2);
  SnapshotReader r(w.buffer(), "test");
  (void)r.field_u64("x");
  const std::string msg = error_of([&] { r.expect_end(); });
  EXPECT_TRUE(contains(msg, "trailing bytes")) << msg;
}

TEST(SnapshotFormat, ExpectU64GuardsGeometry) {
  SnapshotWriter w;
  w.field_u64("sim.n_threads", 256);
  SnapshotReader r(w.buffer(), "other-machine.snap");
  const std::string msg = error_of(
      [&] { r.expect_u64("sim.n_threads", 32, "machine geometry"); });
  EXPECT_TRUE(contains(msg, "machine geometry mismatch")) << msg;
  EXPECT_TRUE(contains(msg, "snapshot has 256, this process has 32")) << msg;
}

// ---------------------------------------------------------------------------
// Stamp
// ---------------------------------------------------------------------------

SnapshotStamp test_stamp() {
  SnapshotStamp s;
  s.engine = "engine-A";
  s.scenario = "fp-1";
  s.cell = "cell-1";
  s.run = 3;
  s.rep = 14;
  return s;
}

TEST(SnapshotStamp, RoundTrips) {
  SnapshotWriter w;
  write_stamp(w, test_stamp());
  SnapshotReader r(w.buffer(), "test");
  const SnapshotStamp want = test_stamp();
  const SnapshotStamp got = read_stamp(r, &want);
  EXPECT_EQ(got.engine, "engine-A");
  EXPECT_EQ(got.scenario, "fp-1");
  EXPECT_EQ(got.cell, "cell-1");
  EXPECT_EQ(got.run, 3u);
  EXPECT_EQ(got.rep, 14u);
  r.expect_end();
}

TEST(SnapshotStamp, EngineVersionMismatchIsStrict) {
  SnapshotWriter w;
  write_stamp(w, test_stamp());
  SnapshotReader r(w.buffer(), "test");
  SnapshotStamp want = test_stamp();
  want.engine = "engine-B";
  const std::string msg = error_of([&] { read_stamp(r, &want); });
  EXPECT_TRUE(contains(msg, "engine version mismatch")) << msg;
  EXPECT_TRUE(contains(msg, "'engine-A'")) << msg;
  EXPECT_TRUE(contains(msg, "'engine-B'")) << msg;
}

TEST(SnapshotStamp, ScenarioFingerprintMismatchIsStrict) {
  SnapshotWriter w;
  write_stamp(w, test_stamp());
  SnapshotReader r(w.buffer(), "test");
  SnapshotStamp want = test_stamp();
  want.scenario = "";  // scenario-less process must reject a stamped file
  const std::string msg = error_of([&] { read_stamp(r, &want); });
  EXPECT_TRUE(contains(msg, "scenario fingerprint mismatch")) << msg;
}

TEST(SnapshotStamp, CellMismatchIsStrict) {
  SnapshotWriter w;
  write_stamp(w, test_stamp());
  SnapshotReader r(w.buffer(), "test");
  SnapshotStamp want = test_stamp();
  want.cell = "cell-2";
  const std::string msg = error_of([&] { read_stamp(r, &want); });
  EXPECT_TRUE(contains(msg, "campaign cell mismatch")) << msg;
}

TEST(SnapshotStamp, PeekReturnsNulloptOnGarbage) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "omv-snap-test").string();
  std::filesystem::create_directories(dir);
  EXPECT_FALSE(try_peek_stamp(dir + "/absent.snap").has_value());

  save_snapshot_file(dir + "/garbage.snap", "this is not a snapshot");
  EXPECT_FALSE(try_peek_stamp(dir + "/garbage.snap").has_value());

  SnapshotWriter w;
  write_stamp(w, test_stamp());
  save_snapshot_file(dir + "/good.snap", w.take());
  const auto st = try_peek_stamp(dir + "/good.snap");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->cell, "cell-1");
  std::filesystem::remove_all(dir);
}

TEST(SnapshotFile, SaveIsAtomicAndLoadRoundTrips) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "omv-snap-file").string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/cell.snap";
  SnapshotWriter w;
  w.field_u64("x", 42);
  const std::string bytes = w.take();
  save_snapshot_file(path, bytes);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(load_snapshot_file(path), bytes);
  const std::string msg =
      error_of([&] { (void)load_snapshot_file(dir + "/absent.snap"); });
  EXPECT_TRUE(contains(msg, "cannot open snapshot file")) << msg;
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Component round-trips
// ---------------------------------------------------------------------------

TEST(SnapshotVisitors, RngRoundTripPreservesStream) {
  Rng rng(1234);
  for (int i = 0; i < 7; ++i) (void)rng.next_u64();
  // Draw one normal so the Box–Muller spare cache is populated: the
  // snapshot must carry it or the restored stream would skew by one draw.
  (void)rng.normal(0.0, 1.0);

  SnapshotWriter w;
  Capture cap(w);
  cap.object("rng", rng);

  Rng restored(0);
  SnapshotReader r(w.buffer(), "test");
  Restore res(r);
  res.object("rng", restored);
  r.expect_end();

  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(restored.normal(1.0, 2.0), rng.normal(1.0, 2.0)) << i;
    EXPECT_EQ(restored.next_u64(), rng.next_u64()) << i;
  }
}

TEST(SnapshotVisitors, VectorBoolRejectsNonBinaryElements) {
  std::vector<std::uint64_t> raw{0, 1, 2};
  SnapshotWriter w;
  w.field_vec_u64("flags", raw);
  SnapshotReader r(w.buffer(), "test");
  Restore res(r);
  std::vector<bool> out;
  const std::string msg = error_of([&] { res.field("flags", out); });
  EXPECT_TRUE(contains(msg, "bool element must be 0 or 1")) << msg;
}

ompsim::TeamConfig team_cfg(std::size_t threads) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = threads;
  cfg.places_spec = "threads";
  cfg.bind = topo::ProcBind::close;
  return cfg;
}

/// Advances a team through a few phases, forcing noise + frequency +
/// placement state to materialize.
void advance(ompsim::SimTeam& team, int phases) {
  for (int i = 0; i < phases; ++i) {
    team.begin_rep();
    team.fork();
    team.compute(5e-4);
    team.barrier();
    team.compute(1e-4);
    team.join();
  }
}

std::vector<double> clocks_after(ompsim::SimTeam& team, int phases) {
  advance(team, phases);
  return {team.clocks().begin(), team.clocks().end()};
}

TEST(SnapshotComponents, TeamRestoreContinuesBitIdentically) {
  const auto spec = scenario::ScenarioRegistry::instance().get("noisy-cloud");
  const topo::Machine machine = spec.machine.build();
  const auto cfg = team_cfg(8);

  // Straight line: begin a run, advance, keep going.
  sim::Simulator sim_a(machine, spec.sim);
  ompsim::SimTeam team_a(sim_a, cfg, 1);
  team_a.begin_run(99);
  advance(team_a, 3);

  // Capture mid-run, then restore into freshly built objects.
  const std::string blob = bench::capture_run_state(team_a);
  sim::Simulator sim_b(machine, spec.sim);
  ompsim::SimTeam team_b(sim_b, cfg, 1);
  bench::restore_run_state(blob, "mid-run blob", team_b);

  const auto want = clocks_after(team_a, 4);
  const auto got = clocks_after(team_b, 4);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "clock " << i;
  }
}

TEST(SnapshotComponents, GeometryMismatchIsRejected) {
  const auto& reg = scenario::ScenarioRegistry::instance();
  const auto small = reg.get("noisy-cloud");
  const auto big = reg.get("dardel");
  const topo::Machine m_small = small.machine.build();
  const topo::Machine m_big = big.machine.build();
  ASSERT_NE(m_small.n_threads(), m_big.n_threads());

  sim::Simulator sim_a(m_small, small.sim);
  ompsim::SimTeam team_a(sim_a, team_cfg(4), 1);
  team_a.begin_run(7);
  const std::string blob = bench::capture_run_state(team_a);

  sim::Simulator sim_b(m_big, big.sim);
  ompsim::SimTeam team_b(sim_b, team_cfg(4), 1);
  const std::string msg = error_of(
      [&] { bench::restore_run_state(blob, "cross-machine", team_b); });
  EXPECT_TRUE(contains(msg, "cross-machine: byte ")) << msg;
  EXPECT_TRUE(contains(msg, "machine geometry")) << msg;
}

TEST(SnapshotComponents, TeamSizeMismatchIsRejected) {
  const auto spec = scenario::ScenarioRegistry::instance().get("vera");
  const topo::Machine machine = spec.machine.build();

  sim::Simulator sim_a(machine, spec.sim);
  ompsim::SimTeam team_a(sim_a, team_cfg(8), 1);
  team_a.begin_run(7);
  const std::string blob = bench::capture_run_state(team_a);

  sim::Simulator sim_b(machine, spec.sim);
  ompsim::SimTeam team_b(sim_b, team_cfg(16), 1);
  const std::string msg = error_of(
      [&] { bench::restore_run_state(blob, "resized", team_b); });
  EXPECT_TRUE(contains(msg, "team size mismatch")) << msg;
}

TEST(SnapshotComponents, TeamForkSameSaltIsDeterministic) {
  const auto spec = scenario::ScenarioRegistry::instance().get("noisy-cloud");
  const topo::Machine machine = spec.machine.build();
  const auto cfg = team_cfg(8);

  sim::Simulator sim_a(machine, spec.sim);
  ompsim::SimTeam team_a(sim_a, cfg, 1);
  team_a.begin_run(42);
  advance(team_a, 2);
  const std::string blob = bench::capture_run_state(team_a);

  // Two independent restores forked with the same salt must continue
  // bit-identically — fork() is a pure function of (state, salt).
  sim::Simulator s1(machine, spec.sim);
  ompsim::SimTeam t1(s1, cfg, 1);
  bench::restore_run_state(blob, "fork-base", t1);
  t1.fork_streams(5);
  sim::Simulator s2(machine, spec.sim);
  ompsim::SimTeam t2(s2, cfg, 1);
  bench::restore_run_state(blob, "fork-base", t2);
  t2.fork_streams(5);

  EXPECT_EQ(clocks_after(t1, 3), clocks_after(t2, 3));
}

/// Materialized-event signature of a noise model over a long window: the
/// per-stream column lengths plus time/duration sums. Forked RNG streams
/// must change the post-fork tail of this signature.
std::vector<double> noise_signature(sim::NoiseModel& nm) {
  // Force horizon extension well past the lazy 0.25 s chunking so the
  // post-fork streams actually draw.
  for (std::size_t h = 0; h < nm.n_event_streams(); ++h) {
    (void)nm.preemption_delay(h, 1.9, 2.0);
  }
  std::vector<double> sig;
  for (std::size_t h = 0; h < nm.n_event_streams(); ++h) {
    const auto times = nm.event_times(h);
    const auto durs = nm.event_durations(h);
    double ts = 0.0, ds = 0.0;
    for (const double t : times) ts += t;
    for (const double d : durs) ds += d;
    sig.push_back(static_cast<double>(times.size()));
    sig.push_back(ts);
    sig.push_back(ds);
  }
  return sig;
}

TEST(SnapshotComponents, NoiseForkDerivesIndependentStreams) {
  const topo::Machine m = topo::Machine::vera();
  const auto busy = topo::CpuSet::range(0, m.n_threads());
  sim::NoiseModel a(m, sim::NoiseConfig::vera());
  sim::NoiseModel b(m, sim::NoiseConfig::vera());
  sim::NoiseModel c(m, sim::NoiseConfig::vera());
  sim::NoiseModel d(m, sim::NoiseConfig::vera());
  a.begin_run(11, busy);
  b.begin_run(11, busy);
  c.begin_run(11, busy);
  d.begin_run(11, busy);
  b.fork_streams(3);
  c.fork_streams(3);
  d.fork_streams(4);

  const auto sa = noise_signature(a);
  const auto sb = noise_signature(b);
  const auto sc = noise_signature(c);
  const auto sd = noise_signature(d);
  EXPECT_EQ(sb, sc);  // same salt: identical derived streams
  EXPECT_NE(sb, sa);  // forked vs unforked diverge past the fork point
  EXPECT_NE(sb, sd);  // different salts diverge from each other
}

TEST(SnapshotCheckpoint, PolicyEngagement) {
  CheckpointPolicy p;
  EXPECT_FALSE(p.engaged());
  p.every_reps = 5;
  EXPECT_TRUE(p.engaged());
  p.every_reps = 0;
  p.resume_from = "x.snap";
  EXPECT_TRUE(p.engaged());
}

}  // namespace
}  // namespace omv::snap
