// Unit tests for sim/noise: determinism, tick analytics, daemon placement
// and the absorption mechanisms.

#include "sim/noise.hpp"

#include <gtest/gtest.h>

namespace omv::sim {
namespace {

topo::CpuSet busy_range(std::size_t n) { return topo::CpuSet::range(0, n); }

TEST(NoiseConfig, QuietDisablesEverything) {
  const auto c = NoiseConfig::quiet();
  topo::Machine m = topo::Machine::vera();
  NoiseModel nm(m, c);
  nm.begin_run(1, busy_range(32));
  EXPECT_EQ(nm.preemption_delay(0, 0.0, 10.0), 0.0);
}

TEST(NoiseModel, DeterministicAcrossRuns) {
  topo::Machine m = topo::Machine::vera();
  NoiseModel a(m, NoiseConfig::vera());
  NoiseModel b(m, NoiseConfig::vera());
  a.begin_run(42, busy_range(32));
  b.begin_run(42, busy_range(32));
  for (int i = 0; i < 10; ++i) {
    const double t0 = i * 0.1;
    EXPECT_DOUBLE_EQ(a.preemption_delay(3, t0, t0 + 0.1),
                     b.preemption_delay(3, t0, t0 + 0.1));
  }
}

TEST(NoiseModel, QueryOrderIndependent) {
  topo::Machine m = topo::Machine::vera();
  NoiseModel a(m, NoiseConfig::vera());
  NoiseModel b(m, NoiseConfig::vera());
  a.begin_run(7, busy_range(32));
  b.begin_run(7, busy_range(32));
  // a queries far future first, b queries in order; sums must agree.
  const double far = a.preemption_delay(5, 2.0, 3.0);
  (void)b.preemption_delay(5, 0.0, 1.0);
  const double far_b = b.preemption_delay(5, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(far, far_b);
}

TEST(NoiseModel, TickCountAnalytic) {
  NoiseConfig c = NoiseConfig::quiet();
  c.tick_period = 0.004;
  c.tick_duration = 2e-6;
  topo::Machine m = topo::Machine::vera();
  NoiseModel nm(m, c);
  nm.begin_run(1, busy_range(32));
  // Over exactly 1 second there are ~250 ticks regardless of phase.
  const double d = nm.preemption_delay(0, 0.0, 1.0);
  EXPECT_NEAR(d, 250.0 * 2e-6, 2e-6 * 2);
}

TEST(NoiseModel, TickWindowAdditivity) {
  NoiseConfig c = NoiseConfig::quiet();
  c.tick_period = 0.004;
  c.tick_duration = 2e-6;
  topo::Machine m = topo::Machine::vera();
  NoiseModel nm(m, c);
  nm.begin_run(3, busy_range(32));
  const double whole = nm.preemption_delay(1, 0.0, 0.5);
  const double split = nm.preemption_delay(1, 0.0, 0.25) +
                       nm.preemption_delay(1, 0.25, 0.5);
  EXPECT_NEAR(whole, split, 1e-12);
}

TEST(NoiseModel, EmptyWindowIsZero) {
  topo::Machine m = topo::Machine::vera();
  NoiseModel nm(m, NoiseConfig::vera());
  nm.begin_run(1, busy_range(32));
  EXPECT_EQ(nm.preemption_delay(0, 1.0, 1.0), 0.0);
  EXPECT_EQ(nm.preemption_delay(0, 2.0, 1.0), 0.0);
}

TEST(NoiseModel, DaemonsAbsorbedWhenIdleCoresExist) {
  // Only 4 of 32 Vera cores busy: nearly all daemons land on idle cores.
  NoiseConfig c = NoiseConfig::quiet();
  c.daemon_rate = 100.0;
  c.daemon_mean = 1e-3;
  c.daemon_miss_factor = 0.0;  // disable wake-affinity misses
  topo::Machine m = topo::Machine::vera();
  NoiseModel nm(m, c);
  nm.begin_run(5, busy_range(4));
  double total = 0.0;
  for (std::size_t h = 0; h < 4; ++h) total += nm.preemption_delay(h, 0.0, 5.0);
  EXPECT_EQ(total, 0.0);
}

TEST(NoiseModel, DaemonsHitWhenMachineFull) {
  NoiseConfig c = NoiseConfig::quiet();
  c.daemon_rate = 100.0;
  c.daemon_mean = 1e-3;
  topo::Machine m = topo::Machine::vera();
  NoiseModel nm(m, c);
  nm.begin_run(5, busy_range(32));  // no idle core, no SMT on Vera
  double total = 0.0;
  for (std::size_t h = 0; h < 32; ++h) {
    total += nm.preemption_delay(h, 0.0, 5.0);
  }
  // ~500 events x ~1ms: expect hundreds of ms of preemption in total.
  EXPECT_GT(total, 0.1);
}

TEST(NoiseModel, SmtSiblingAbsorbsOnDardel) {
  // 128 busy first-siblings on Dardel: daemons land on the idle second
  // siblings and cost only the absorb fraction.
  NoiseConfig full = NoiseConfig::quiet();
  full.daemon_rate = 50.0;
  full.daemon_mean = 1e-3;
  full.daemon_miss_factor = 0.0;
  topo::Machine m = topo::Machine::dardel();

  NoiseModel st(m, full);
  st.begin_run(9, busy_range(128));  // ST: siblings idle
  double st_total = 0.0;
  for (std::size_t h = 0; h < 128; ++h) {
    st_total += st.preemption_delay(h, 0.0, 5.0);
  }

  NoiseModel mt(m, full);
  mt.begin_run(9, m.all_threads());  // MT: every HW thread busy
  double mt_total = 0.0;
  for (std::size_t h = 0; h < 256; ++h) {
    mt_total += mt.preemption_delay(h, 0.0, 5.0);
  }
  EXPECT_GT(st_total, 0.0);
  EXPECT_GT(mt_total, st_total * 2.0);
}

/// 2 P-cores (SMT-2) + 2 E-cores (SMT-1), one socket, one domain per
/// cluster: primaries 0..3 (P0 P1 E2 E3), P second siblings 4..5.
topo::Machine mixed_machine() {
  std::vector<topo::CoreClass> classes{{"P", 2.5, 3.8}, {"E", 1.8, 2.6}};
  std::vector<topo::HwThread> t(6);
  t[0] = {0, 0, 0, 0, 0, 0};
  t[1] = {1, 1, 0, 0, 0, 0};
  t[2] = {2, 2, 1, 0, 0, 1};
  t[3] = {3, 3, 1, 0, 0, 1};
  t[4] = {4, 0, 0, 0, 1, 0};
  t[5] = {5, 1, 0, 0, 1, 0};
  return topo::Machine("mixed", std::move(t), std::move(classes));
}

TEST(NoiseModel, MixedMachineDaemonsAbsorbedByIdleEfficiencyCores) {
  // Both P cores fully busy, E cores idle: every daemon lands on an idle
  // E core with zero impact (the idle-core scan is per-core, so the
  // single-thread E cores count as fully idle cores).
  NoiseConfig c = NoiseConfig::quiet();
  c.daemon_rate = 200.0;
  c.daemon_mean = 1e-3;
  c.daemon_miss_factor = 0.0;
  topo::Machine m = mixed_machine();
  NoiseModel nm(m, c);
  topo::CpuSet busy;
  for (std::size_t h : {0u, 1u, 4u, 5u}) busy.add(h);
  nm.begin_run(3, busy);
  double total = 0.0;
  for (std::size_t h = 0; h < m.n_threads(); ++h) {
    total += nm.preemption_delay(h, 0.0, 5.0);
  }
  EXPECT_EQ(total, 0.0);
}

TEST(NoiseModel, MixedMachineSmtAbsorptionTargetsTheIdleSiblingsCore) {
  // Everything busy except P-core-0's second sibling (os 4): no fully
  // idle core exists, so every daemon is absorbed through the one idle
  // SMT context and charges only core 0's busy primary at the absorb
  // fraction. E cores have no sibling to absorb through.
  NoiseConfig c = NoiseConfig::quiet();
  c.daemon_rate = 200.0;
  c.daemon_mean = 1e-3;
  c.daemon_miss_factor = 0.0;
  topo::Machine m = mixed_machine();
  NoiseModel nm(m, c);
  topo::CpuSet busy = m.all_threads();
  busy.remove(4);
  nm.begin_run(3, busy);
  nm.materialize_to(5.0);
  for (std::size_t h = 0; h < m.n_threads(); ++h) {
    if (h == 0) {
      EXPECT_FALSE(nm.event_times(h).empty());
    } else {
      EXPECT_TRUE(nm.event_times(h).empty()) << h;
    }
  }
}

TEST(NoiseModel, KworkerPinnedToCpu) {
  NoiseConfig c = NoiseConfig::quiet();
  c.kworker_rate_per_cpu = 50.0;
  c.kworker_mean = 1e-3;
  topo::Machine m = topo::Machine::vera();
  NoiseModel nm(m, c);
  nm.begin_run(11, busy_range(32));
  // Every busy CPU should see some kworker time over a long window.
  int cpus_with_noise = 0;
  for (std::size_t h = 0; h < 32; ++h) {
    if (nm.preemption_delay(h, 0.0, 2.0) > 0.0) ++cpus_with_noise;
  }
  EXPECT_GT(cpus_with_noise, 24);
}

TEST(NoiseModel, IrqLandsOnLowCpus) {
  NoiseConfig c = NoiseConfig::quiet();
  c.irq_rate = 50.0;
  c.irq_cpus = 4;
  topo::Machine m = topo::Machine::vera();
  NoiseModel nm(m, c);
  nm.begin_run(13, busy_range(32));
  double low = 0.0;
  double high = 0.0;
  for (std::size_t h = 0; h < 4; ++h) low += nm.preemption_delay(h, 0.0, 2.0);
  for (std::size_t h = 4; h < 32; ++h) {
    high += nm.preemption_delay(h, 0.0, 2.0);
  }
  EXPECT_GT(low, 0.0);
  EXPECT_EQ(high, 0.0);
}

TEST(NoiseModel, DegradedRunsOccurAtConfiguredRate) {
  NoiseConfig c = NoiseConfig::vera();
  c.degrade_prob = 0.5;
  topo::Machine m = topo::Machine::vera();
  NoiseModel nm(m, c);
  int degraded = 0;
  for (std::uint64_t s = 0; s < 200; ++s) {
    nm.begin_run(s * 977 + 13, busy_range(32));
    degraded += nm.degraded();
  }
  EXPECT_GT(degraded, 60);
  EXPECT_LT(degraded, 140);
}

TEST(NoiseModel, PresetsDiffer) {
  const auto d = NoiseConfig::dardel();
  const auto v = NoiseConfig::vera();
  EXPECT_NE(d.daemon_rate, v.daemon_rate);
}

}  // namespace
}  // namespace omv::sim
