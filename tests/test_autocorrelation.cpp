// Unit tests for core/autocorrelation: periodic-noise detection.

#include "core/autocorrelation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.hpp"

namespace omv::stats {
namespace {

std::vector<double> periodic_series(std::size_t n, std::size_t period,
                                    double spike, double noise_sd,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double x = 100.0 + rng.normal(0.0, noise_sd);
    if (period && i % period == 0) x += spike;
    v.push_back(x);
  }
  return v;
}

TEST(Autocorrelation, DegenerateInputs) {
  EXPECT_TRUE(autocorrelation({}, 5).empty());
  const std::vector<double> two{1.0, 2.0};
  EXPECT_TRUE(autocorrelation(two, 5).empty());
  const std::vector<double> flat(10, 3.0);
  EXPECT_TRUE(autocorrelation(flat, 5).empty());
}

TEST(Autocorrelation, LagCappedBySeriesLength) {
  const std::vector<double> v{1.0, 2.0, 1.0, 2.0, 1.0};
  EXPECT_EQ(autocorrelation(v, 100).size(), 4u);
}

TEST(Autocorrelation, AlternatingSeriesNegativeLag1) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 2 ? 1.0 : -1.0);
  const auto r = autocorrelation(v, 4);
  EXPECT_LT(r[0], -0.8);  // lag 1 strongly negative
  EXPECT_GT(r[1], 0.8);   // lag 2 strongly positive
}

TEST(Autocorrelation, WhiteNoiseInsideBand) {
  Rng rng(5);
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) v.push_back(rng.normal(0.0, 1.0));
  const auto r = autocorrelation(v, 20);
  const double band = 3.0 / std::sqrt(2000.0);
  int outside = 0;
  for (double x : r) {
    if (std::abs(x) > band) ++outside;
  }
  EXPECT_LE(outside, 2);
}

TEST(DominantPeriod, FindsInjectedPeriod) {
  const auto v = periodic_series(1000, 7, 25.0, 0.5, 1);
  const auto p = dominant_period(v, 30);
  EXPECT_TRUE(p.significant);
  EXPECT_EQ(p.lag, 7u);
  EXPECT_GT(p.correlation, 0.2);
}

TEST(DominantPeriod, NoFalsePositiveOnWhiteNoise) {
  Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.normal(0.0, 1.0));
  const auto p = dominant_period(v, 30);
  EXPECT_FALSE(p.significant);
  EXPECT_EQ(p.lag, 0u);
}

TEST(DominantPeriod, LongerPeriodDetected) {
  const auto v = periodic_series(2000, 25, 30.0, 0.5, 3);
  const auto p = dominant_period(v, 60);
  EXPECT_TRUE(p.significant);
  EXPECT_EQ(p.lag, 25u);
}

TEST(LjungBox, WhiteNoiseHighP) {
  Rng rng(4);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.normal(0.0, 1.0));
  EXPECT_GT(ljung_box(v).p_value, 0.01);
}

TEST(LjungBox, StructuredSeriesLowP) {
  const auto v = periodic_series(500, 5, 20.0, 0.5, 6);
  EXPECT_LT(ljung_box(v).p_value, 1e-4);
}

TEST(LjungBox, DegenerateInput) {
  EXPECT_EQ(ljung_box({}).p_value, 1.0);
}

TEST(Autocorrelation, NanInputYieldsNoCorrelogram) {
  // Regression: `NaN <= 0.0` is false, so a poisoned series used to
  // produce an all-NaN correlogram that peak scans read as "no
  // periodicity" while ljung_box reported NaN statistics.
  std::vector<double> v;
  for (int i = 0; i < 32; ++i) v.push_back(i % 4);
  v[7] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(autocorrelation(v, 10).empty());
  const auto p = dominant_period(v, 10);
  EXPECT_FALSE(p.significant);
  EXPECT_EQ(p.lag, 0u);
  const auto lb = ljung_box(v, 10);
  EXPECT_EQ(lb.statistic, 0.0);
  EXPECT_EQ(lb.p_value, 1.0);
}

TEST(Autocorrelation, TinySeriesYieldNoCorrelogram) {
  EXPECT_TRUE(autocorrelation(std::vector<double>{}, 5).empty());
  EXPECT_TRUE(autocorrelation(std::vector<double>{1.0}, 5).empty());
  EXPECT_TRUE(autocorrelation(std::vector<double>{1.0, 2.0}, 5).empty());
  EXPECT_TRUE(
      autocorrelation(std::vector<double>{1.0, 2.0, 3.0}, 0).empty());
}

}  // namespace
}  // namespace omv::stats
