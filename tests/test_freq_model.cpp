// Unit tests for sim/freq: episodes, run caps, integration, logger sampling.

#include "sim/freq.hpp"

#include <gtest/gtest.h>

namespace omv::sim {
namespace {

TEST(FreqModel, FlatConfigIsConstant) {
  topo::Machine m = topo::Machine::vera();
  FreqModel f(m, FreqConfig::flat());
  f.begin_run(1);
  for (double t = 0.0; t < 5.0; t += 0.5) {
    EXPECT_DOUBLE_EQ(f.factor(0, t), 1.0);
    EXPECT_DOUBLE_EQ(f.sample_ghz(0, t), m.max_ghz());
  }
}

TEST(FreqModel, FlatElapsedEqualsWork) {
  topo::Machine m = topo::Machine::vera();
  FreqModel f(m, FreqConfig::flat());
  f.begin_run(1);
  EXPECT_DOUBLE_EQ(f.elapsed_for_work(0, 0.0, 0.125), 0.125);
  EXPECT_DOUBLE_EQ(f.elapsed_for_work(0, 0.0, 0.0), 0.0);
}

TEST(FreqModel, DeterministicPerSeed) {
  topo::Machine m = topo::Machine::vera();
  FreqModel a(m, FreqConfig::vera_dippy());
  FreqModel b(m, FreqConfig::vera_dippy());
  a.begin_run(5);
  b.begin_run(5);
  a.set_activity_domains(2);
  b.set_activity_domains(2);
  for (double t = 0.0; t < 20.0; t += 1.0) {
    EXPECT_DOUBLE_EQ(a.factor(0, t), b.factor(0, t));
  }
}

TEST(FreqModel, EpisodesLowerTheFactor) {
  FreqConfig c = FreqConfig::flat();
  c.episode_rate = 5.0;  // very frequent dips
  c.episode_mean = 0.5;
  c.depth_lo = 0.7;
  c.depth_hi = 0.8;
  topo::Machine m = topo::Machine::vera();
  FreqModel f(m, c);
  f.begin_run(3);
  bool saw_dip = false;
  for (double t = 0.0; t < 20.0; t += 0.05) {
    const double v = f.factor(0, t);
    EXPECT_GE(v, 0.7 - 1e-12);
    EXPECT_LE(v, 1.0);
    if (v < 1.0) saw_dip = true;
  }
  EXPECT_TRUE(saw_dip);
}

TEST(FreqModel, EpisodesAreNumaCorrelated) {
  FreqConfig c = FreqConfig::flat();
  c.episode_rate = 2.0;
  c.episode_mean = 1.0;
  c.depth_lo = 0.8;
  c.depth_hi = 0.9;
  topo::Machine m = topo::Machine::vera();  // cores 0-15 numa 0, 16-31 numa 1
  FreqModel f(m, c);
  f.begin_run(9);
  for (double t = 0.0; t < 10.0; t += 0.1) {
    // Same domain => identical factor.
    EXPECT_DOUBLE_EQ(f.factor(0, t), f.factor(15, t));
  }
  // Different domains have independent episode streams: factors must differ
  // somewhere over a long window.
  bool differ = false;
  for (double t = 0.0; t < 20.0; t += 0.05) {
    if (f.factor(0, t) != f.factor(16, t)) {
      differ = true;
      break;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(FreqModel, MeanFactorIntegratesEpisodes) {
  FreqConfig c = FreqConfig::flat();
  c.episode_rate = 1.0;
  c.episode_mean = 0.5;
  c.depth_lo = 0.5;
  c.depth_hi = 0.5;
  topo::Machine m = topo::Machine::vera();
  FreqModel f(m, c);
  f.begin_run(21);
  const double mean = f.mean_factor(0, 0.0, 30.0);
  EXPECT_GT(mean, 0.5);
  EXPECT_LE(mean, 1.0);
}

TEST(FreqModel, ElapsedInvertsIntegral) {
  FreqConfig c = FreqConfig::flat();
  c.episode_rate = 2.0;
  c.episode_mean = 0.3;
  c.depth_lo = 0.6;
  c.depth_hi = 0.9;
  topo::Machine m = topo::Machine::vera();
  FreqModel f(m, c);
  f.begin_run(33);
  const double work = 2.0;
  const double d = f.elapsed_for_work(0, 1.0, work);
  EXPECT_GE(d, work);                // can only be slower than fmax
  EXPECT_LE(d, work / 0.6 + 1e-9);   // bounded by deepest dip
  // The integral over the chosen window matches the work.
  EXPECT_NEAR(f.mean_factor(0, 1.0, 1.0 + d) * d, work, 0.02 * work);
}

TEST(FreqModel, RunCapGatedByLoad) {
  FreqConfig c = FreqConfig::flat();
  c.run_cap_prob = 1.0;  // every run capped...
  c.run_cap_depth = 0.9;
  c.cap_load_threshold = 0.5;
  topo::Machine m = topo::Machine::vera();
  FreqModel f(m, c);
  f.begin_run(2);
  f.set_load_fraction(0.1);  // ...but the node is nearly idle
  EXPECT_FALSE(f.run_capped());
  EXPECT_DOUBLE_EQ(f.factor(0, 0.0), 1.0);
  f.set_load_fraction(0.9);
  EXPECT_TRUE(f.run_capped());
  EXPECT_DOUBLE_EQ(f.factor(0, 0.0), 0.9);
}

TEST(FreqModel, CrossNumaActivityRaisesEpisodeRate) {
  FreqConfig c = FreqConfig::flat();
  c.episode_rate = 0.05;
  c.episode_mean = 0.4;
  c.depth_lo = 0.8;
  c.depth_hi = 0.9;
  c.cross_numa_rate_mult = 20.0;
  topo::Machine m = topo::Machine::vera();

  auto count_dips = [&](std::size_t domains) {
    FreqModel f(m, c);
    f.begin_run(17);
    f.set_activity_domains(domains);
    int dips = 0;
    for (double t = 0.0; t < 60.0; t += 0.05) {
      if (f.factor(0, t) < 1.0) ++dips;
    }
    return dips;
  };
  EXPECT_GT(count_dips(2), count_dips(1) * 2);
}

TEST(FreqModel, SampleGhzWithinPhysicalRange) {
  topo::Machine m = topo::Machine::vera();
  FreqModel f(m, FreqConfig::vera());
  f.begin_run(8);
  for (double t = 0.0; t < 5.0; t += 0.1) {
    const double g = f.sample_ghz(3, t);
    EXPECT_GT(g, 1.0);
    EXPECT_LT(g, 4.0);
  }
}

TEST(FreqModel, SampleGhzUsesPerClassBoostClock) {
  // 1 P-core + 1 E-core with different boost clocks: a flat profile must
  // sample each core at its own class fmax, not a machine-wide one.
  std::vector<topo::CoreClass> classes{{"P", 2.5, 3.8}, {"E", 1.8, 2.6}};
  std::vector<topo::HwThread> t(3);
  t[0] = {0, 0, 0, 0, 0, 0};
  t[1] = {1, 1, 1, 0, 0, 1};
  t[2] = {2, 0, 0, 0, 1, 0};
  topo::Machine m("hybrid", std::move(t), std::move(classes));
  FreqModel f(m, FreqConfig::flat());
  f.begin_run(1);
  EXPECT_DOUBLE_EQ(f.sample_ghz(0, 1.0), 3.8);
  EXPECT_DOUBLE_EQ(f.sample_ghz(1, 1.0), 2.6);
  // Ghost cores keep the historical machine-wide fallback.
  EXPECT_DOUBLE_EQ(f.sample_ghz(99, 1.0), 3.8);
}

TEST(FreqModel, DardelFlatterThanVeraDippy) {
  topo::Machine md = topo::Machine::dardel();
  topo::Machine mv = topo::Machine::vera();
  FreqModel fd(md, FreqConfig::dardel());
  FreqModel fv(mv, FreqConfig::vera_dippy());
  fd.begin_run(4);
  fv.begin_run(4);
  fd.set_activity_domains(8);
  fv.set_activity_domains(2);
  int dips_d = 0;
  int dips_v = 0;
  for (double t = 0.0; t < 60.0; t += 0.05) {
    if (fd.factor(0, t) < 0.995 && !fd.run_capped()) ++dips_d;
    if (fv.factor(0, t) < 0.995) ++dips_v;
  }
  EXPECT_GT(dips_v, dips_d);
}

}  // namespace
}  // namespace omv::sim
