// Unit tests for topo/places: the OMP_PLACES grammar.

#include "topo/places.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace omv::topo {
namespace {

class PlacesTest : public ::testing::Test {
 protected:
  Machine dardel_ = Machine::dardel();
  Machine vera_ = Machine::vera();
};

TEST_F(PlacesTest, AbstractThreads) {
  const auto p = parse_places("threads", vera_);
  ASSERT_EQ(p.size(), 32u);
  EXPECT_EQ(p[0].to_string(), "0");
  EXPECT_EQ(p[31].to_string(), "31");
}

TEST_F(PlacesTest, AbstractThreadsWithCount) {
  const auto p = parse_places("threads(4)", vera_);
  EXPECT_EQ(p.size(), 4u);
}

TEST_F(PlacesTest, AbstractCoresGroupSiblings) {
  const auto p = parse_places("cores", dardel_);
  ASSERT_EQ(p.size(), 128u);
  EXPECT_EQ(p[0].to_string(), "0,128");  // both SMT siblings of core 0
}

TEST_F(PlacesTest, AbstractSockets) {
  const auto p = parse_places("sockets", dardel_);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].count(), 128u);
}

TEST_F(PlacesTest, AbstractNumaDomains) {
  const auto p = parse_places("numa_domains", dardel_);
  ASSERT_EQ(p.size(), 8u);
  EXPECT_EQ(p[0].count(), 32u);
}

TEST_F(PlacesTest, UnknownAbstractNameThrows) {
  EXPECT_THROW(static_cast<void>(parse_places("flibbles", vera_)), std::invalid_argument);
}

TEST_F(PlacesTest, ExplicitSinglePlace) {
  const auto p = parse_places("{0,1,2}", vera_);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].to_string(), "0-2");
}

TEST_F(PlacesTest, ExplicitPlaceList) {
  const auto p = parse_places("{0,1},{2,3}", vera_);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[1].to_string(), "2-3");
}

TEST_F(PlacesTest, ResourceInterval) {
  // {0:4} = threads 0,1,2,3.
  const auto p = parse_places("{0:4}", vera_);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].to_string(), "0-3");
}

TEST_F(PlacesTest, ResourceIntervalWithStride) {
  // {0:4:2} = threads 0,2,4,6.
  const auto p = parse_places("{0:4:2}", vera_);
  EXPECT_EQ(p[0].to_string(), "0,2,4,6");
}

TEST_F(PlacesTest, PlaceIntervalReplication) {
  // {0:4}:8:4 = 8 places of 4 threads, starting at 0,4,8,...
  const auto p = parse_places("{0:4}:8:4", vera_);
  ASSERT_EQ(p.size(), 8u);
  EXPECT_EQ(p[0].to_string(), "0-3");
  EXPECT_EQ(p[7].to_string(), "28-31");
}

TEST_F(PlacesTest, PlaceIntervalDefaultStride) {
  const auto p = parse_places("{0}:4", vera_);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[3].to_string(), "3");
}

TEST_F(PlacesTest, SmtPairExplicit) {
  // The ST/MT experiment setup: 16 cores with both siblings.
  const auto p = parse_places("{0,128}:16:1", dardel_);
  ASSERT_EQ(p.size(), 16u);
  EXPECT_EQ(p[0].to_string(), "0,128");
  EXPECT_EQ(p[15].to_string(), "15,143");
}

TEST_F(PlacesTest, WhitespaceTolerated) {
  const auto p = parse_places("{ 0 , 1 } , { 2 }", vera_);
  ASSERT_EQ(p.size(), 2u);
}

TEST_F(PlacesTest, RejectsOutOfRangeThread) {
  EXPECT_THROW(static_cast<void>(parse_places("{40}", vera_)), std::invalid_argument);
  EXPECT_NO_THROW(static_cast<void>(parse_places("{40}", dardel_)));
}

TEST_F(PlacesTest, RejectsSyntaxErrors) {
  EXPECT_THROW(static_cast<void>(parse_places("{0", vera_)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(parse_places("0}", vera_)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(parse_places("{}", vera_)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(parse_places("{0},", vera_)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(parse_places("{0:0}", vera_)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(parse_places("{0}:0", vera_)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(parse_places("", vera_)), std::invalid_argument);
}

TEST_F(PlacesTest, RejectsNegativeShift) {
  // Stride can be negative but may not shift a place below zero.
  EXPECT_THROW(static_cast<void>(parse_places("{0:2}:3:-4", vera_)), std::invalid_argument);
}

TEST_F(PlacesTest, NegativeStrideValidWhenInRange) {
  const auto p = parse_places("{8:2}:3:-4", vera_);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0].to_string(), "8-9");
  EXPECT_EQ(p[2].to_string(), "0-1");
}

TEST_F(PlacesTest, ToStringRoundTrips) {
  const auto p = parse_places("{0:4}:8:4", vera_);
  const auto p2 = parse_places(to_string(p), vera_);
  ASSERT_EQ(p.size(), p2.size());
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(p[i], p2[i]);
}

// Property: every helper place list covers each HW thread exactly once.
class PlaceCoverage : public ::testing::TestWithParam<const char*> {};

TEST_P(PlaceCoverage, PartitionsMachine) {
  const auto m = Machine::dardel();
  const auto p = parse_places(GetParam(), m);
  CpuSet seen;
  std::size_t total = 0;
  for (const auto& place : p) {
    total += place.count();
    seen = seen | place;
  }
  EXPECT_EQ(total, m.n_threads());
  EXPECT_EQ(seen.count(), m.n_threads());
}

INSTANTIATE_TEST_SUITE_P(AbstractNames, PlaceCoverage,
                         ::testing::Values("threads", "cores", "sockets",
                                           "numa_domains"));

}  // namespace
}  // namespace omv::topo
