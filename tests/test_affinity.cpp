// Unit tests for topo/affinity (native pinning). These must pass on any
// host, including single-core containers.

#include "topo/affinity.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace omv::topo {
namespace {

TEST(Affinity, UsableCpuCountPositive) {
  EXPECT_GE(usable_cpu_count(), 1u);
}

TEST(Affinity, EmptySetRejected) {
  EXPECT_FALSE(pin_current_thread(CpuSet{}));
}

TEST(Affinity, PinToCpuZeroUsuallyWorks) {
  // CPU 0 exists on every Linux host; non-Linux returns false gracefully.
  const CpuSet before = current_thread_affinity();
  const bool ok = pin_current_thread(CpuSet::single(0));
#if defined(__linux__)
  EXPECT_TRUE(ok);
  const CpuSet after = current_thread_affinity();
  EXPECT_TRUE(after.contains(0));
  EXPECT_EQ(after.count(), 1u);
#else
  EXPECT_FALSE(ok);
#endif
  if (!before.empty()) pin_current_thread(before);  // restore
}

TEST(Affinity, PinInsideStdThread) {
  bool ok = false;
  std::thread t([&] { ok = pin_current_thread(CpuSet::single(0)); });
  t.join();
#if defined(__linux__)
  EXPECT_TRUE(ok);
#endif
}

TEST(Affinity, CurrentAffinityNonEmptyOnLinux) {
#if defined(__linux__)
  EXPECT_FALSE(current_thread_affinity().empty());
#endif
}

}  // namespace
}  // namespace omv::topo
