// Wall-clock-sensitive EPCC delay-loop checks, separated from test_epcc.cpp
// and labeled `integration` so the quick ctest lane stays load-independent.
//
// Even here the assertion is made load-tolerant: a single spin batch can be
// stretched arbitrarily by scheduler preemption under `ctest -j`, so the
// check takes the *minimum* per-call time across several small batches —
// robust against preemption spikes (the minimum of repeated timings is the
// standard noise-resistant estimator) — and only bounds the overshoot side
// loosely.

#include "bench_suite/epcc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

namespace omv::bench {
namespace {

TEST(DelayLoopTiming, SpinDelayApproximatesTarget) {
  using clock = std::chrono::steady_clock;
  const double ipu = calibrate_delay_per_us();
  constexpr double target_us = 50.0;
  constexpr int kBatches = 20;
  constexpr int kCallsPerBatch = 5;

  double best_us = 1e300;
  for (int b = 0; b < kBatches; ++b) {
    const auto t0 = clock::now();
    for (int i = 0; i < kCallsPerBatch; ++i) spin_delay(target_us, ipu);
    const auto t1 = clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        kCallsPerBatch;
    best_us = std::min(best_us, us);
  }

  // The best (least-preempted) batch must be the right order of magnitude:
  // not returning immediately, not calibrated an order of magnitude slow.
  EXPECT_GT(best_us, target_us / 4.0);
  EXPECT_LT(best_us, target_us * 10.0);
}

}  // namespace
}  // namespace omv::bench
