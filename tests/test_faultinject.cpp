// Unit tests for the deterministic fault-injection module: spec grammar,
// occurrence counting, site/label glob matching, and the process-wide plan.

#include "core/faultinject.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace omv::fault {
namespace {

// ------------------------------------------------------------------ globs

TEST(FaultGlob, MatchesSitesAndLabels) {
  EXPECT_TRUE(glob_match("cache", "cache"));
  EXPECT_FALSE(glob_match("cache", "cache2"));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("fig?", "fig3"));
  EXPECT_FALSE(glob_match("fig?", "fig"));
  EXPECT_TRUE(glob_match("*side*", "sidecar"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

// ---------------------------------------------------------------- parsing

TEST(FaultSpec, ParsesEveryClauseKind) {
  const auto plan = FaultPlan::parse(
      "cell_throw@3, torn_write:cache@2, enospc@5, slow_cell:fig3*:200ms, "
      "cell_throw:fig1*, enospc:snapshot@1");
  ASSERT_EQ(plan.clauses().size(), 6u);
  EXPECT_EQ(plan.clauses()[0].kind, FaultKind::kCellThrow);
  EXPECT_EQ(plan.clauses()[0].occurrence, 3u);
  EXPECT_EQ(plan.clauses()[1].kind, FaultKind::kTornWrite);
  EXPECT_EQ(plan.clauses()[1].pattern, "cache");
  EXPECT_EQ(plan.clauses()[2].kind, FaultKind::kEnospc);
  EXPECT_TRUE(plan.clauses()[2].pattern.empty());
  EXPECT_EQ(plan.clauses()[3].kind, FaultKind::kSlowCell);
  EXPECT_EQ(plan.clauses()[3].pattern, "fig3*");
  EXPECT_EQ(plan.clauses()[3].delay.count(), 200);
  EXPECT_EQ(plan.clauses()[4].pattern, "fig1*");
  EXPECT_EQ(plan.clauses()[4].occurrence, 0u);  // every match
  EXPECT_EQ(plan.clauses()[5].pattern, "snapshot");
}

TEST(FaultSpec, EmptySpecDisarms) {
  EXPECT_FALSE(FaultPlan::parse("").armed());
  EXPECT_FALSE(FaultPlan::parse("  ").armed());
  EXPECT_TRUE(FaultPlan::parse("enospc@1").armed());
}

TEST(FaultSpec, MalformedSpecsThrow) {
  // A typo'd plan must never silently run a healthy campaign.
  EXPECT_THROW((void)FaultPlan::parse("cell_throw"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("cell_throw@0"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("cell_throw@x"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("torn_write@2"),
               std::invalid_argument);  // site required
  EXPECT_THROW((void)FaultPlan::parse("torn_write:cache"),
               std::invalid_argument);  // occurrence required
  EXPECT_THROW((void)FaultPlan::parse("enospc"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("slow_cell:fig3"),
               std::invalid_argument);  // duration required
  EXPECT_THROW((void)FaultPlan::parse("slow_cell:fig3:200"),
               std::invalid_argument);  // 'ms' suffix required
  EXPECT_THROW((void)FaultPlan::parse("slow_cell:fig3:0ms"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("slow_cell::200ms"),
               std::invalid_argument);  // empty glob
  EXPECT_THROW((void)FaultPlan::parse("rm_rf@1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("enospc@1,,enospc@2"),
               std::invalid_argument);  // stray comma
}

// --------------------------------------------------------- write counters

TEST(FaultPlanCounters, TornWriteFiresOnExactlyTheNthSiteMatch) {
  auto plan = FaultPlan::parse("torn_write:cache@2");
  EXPECT_EQ(plan.on_write("cache"), WriteAction::kNone);   // 1st
  EXPECT_EQ(plan.on_write("key"), WriteAction::kNone);     // other site
  EXPECT_EQ(plan.on_write("cache"), WriteAction::kTorn);   // 2nd
  EXPECT_EQ(plan.on_write("cache"), WriteAction::kNone);   // 3rd: spent
}

TEST(FaultPlanCounters, EnospcAnySiteAndPrecedenceOverTorn) {
  auto plan = FaultPlan::parse("enospc@1,torn_write:cache@1");
  // Both clauses fire on the first cache write; kFail wins.
  EXPECT_EQ(plan.on_write("cache"), WriteAction::kFail);
  EXPECT_EQ(plan.on_write("cache"), WriteAction::kNone);
}

TEST(FaultPlanCounters, EmptySiteNeverMatches) {
  auto plan = FaultPlan::parse("enospc@1");
  // Un-named writes are exempt from injection (atomicity still applies).
  EXPECT_EQ(plan.on_write(""), WriteAction::kNone);
  EXPECT_EQ(plan.on_write("cache"), WriteAction::kFail);
}

// ---------------------------------------------------------- cell attempts

TEST(FaultPlanCounters, CellThrowByOccurrence) {
  auto plan = FaultPlan::parse("cell_throw@3");
  EXPECT_EQ(plan.on_cell_attempt("a").count(), 0);
  EXPECT_EQ(plan.on_cell_attempt("b").count(), 0);
  EXPECT_THROW((void)plan.on_cell_attempt("c"), InjectedFault);
  EXPECT_EQ(plan.on_cell_attempt("d").count(), 0);  // spent
}

TEST(FaultPlanCounters, CellThrowByGlobTaxonomyIsException) {
  auto plan = FaultPlan::parse("cell_throw:fig1*");
  EXPECT_EQ(plan.on_cell_attempt("fig2/cell").count(), 0);
  try {
    (void)plan.on_cell_attempt("fig1/cell");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.taxonomy(), "exception");
  }
  // No occurrence selector: fires on every matching attempt (so a retried
  // cell keeps failing — the quarantine-path test fixture).
  EXPECT_THROW((void)plan.on_cell_attempt("fig1/cell"), InjectedFault);
}

TEST(FaultPlanCounters, SlowCellStallsAccumulate) {
  auto plan = FaultPlan::parse("slow_cell:fig3*:200ms,slow_cell:*:50ms");
  EXPECT_EQ(plan.on_cell_attempt("fig3/cell").count(), 250);
  EXPECT_EQ(plan.on_cell_attempt("fig1/cell").count(), 50);
}

TEST(FaultPlanCounters, DeterministicAcrossReplays) {
  // The same spec against the same operation sequence fires identically —
  // the property every fault-survival CI lane leans on.
  const auto run = [] {
    auto plan = FaultPlan::parse("torn_write:cache@2,cell_throw@2");
    std::string trace;
    for (const char* site : {"cache", "key", "cache", "cache"}) {
      switch (plan.on_write(site)) {
        case WriteAction::kNone: trace += 'n'; break;
        case WriteAction::kTorn: trace += 't'; break;
        case WriteAction::kFail: trace += 'f'; break;
      }
    }
    for (const char* cell : {"a", "b", "c"}) {
      try {
        (void)plan.on_cell_attempt(cell);
        trace += '.';
      } catch (const InjectedFault&) {
        trace += 'X';
      }
    }
    return trace;
  };
  EXPECT_EQ(run(), "nntn.X.");
  EXPECT_EQ(run(), run());
}

// ------------------------------------------------------- process-wide plan

TEST(ActivePlan, SetClearAndEnvFallback) {
  clear_active_plan();
  ::unsetenv("OMNIVAR_FAULT_SPEC");
  EXPECT_FALSE(active_plan().armed());

  set_active_spec("enospc@1");
  EXPECT_TRUE(active_plan().armed());
  set_active_spec("");  // disarm
  EXPECT_FALSE(active_plan().armed());

  // A malformed spec throws and leaves the previous plan armed.
  set_active_spec("enospc@1");
  EXPECT_THROW(set_active_spec("bogus@1"), std::invalid_argument);
  EXPECT_TRUE(active_plan().armed());

  // The environment arms the plan lazily after a clear.
  clear_active_plan();
  ::setenv("OMNIVAR_FAULT_SPEC", "cell_throw@7", 1);
  EXPECT_TRUE(active_plan().armed());
  ::unsetenv("OMNIVAR_FAULT_SPEC");
  clear_active_plan();
  EXPECT_FALSE(active_plan().armed());
}

}  // namespace
}  // namespace omv::fault
