// Unit tests for sim/event_queue.

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace omv::sim {
namespace {

TEST(EventQueue, EmptyByDefault) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(0); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, NowTracksLastExecuted) {
  EventQueue q;
  q.schedule(5.5, [] {});
  q.run();
  EXPECT_DOUBLE_EQ(q.now(), 5.5);
}

TEST(EventQueue, RunUntilStopsEarly) {
  EventQueue q;
  int executed = 0;
  q.schedule(1.0, [&] { ++executed; });
  q.schedule(10.0, [&] { ++executed; });
  const auto n = q.run(5.0);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) q.schedule(q.now() + 1.0, chain);
  };
  q.schedule(0.0, chain);
  q.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueue, NextTime) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.schedule(1.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
}

}  // namespace
}  // namespace omv::sim
