// Unit tests for the crash-safe file helpers: atomic tmp+rename commits,
// fault-injected torn/failed writes, and the advisory cache lease.

#include "core/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>

#include "core/faultinject.hpp"
#include "core/lockfile.hpp"

namespace omv::core {
namespace {

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("omnivar_atomic_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    fault::clear_active_plan();
  }
  void TearDown() override {
    fault::clear_active_plan();
    std::filesystem::remove_all(dir_);
  }
  std::string dir_;
};

TEST_F(AtomicFileTest, WriteReadRoundTripAndOverwrite) {
  const std::string path = dir_ + "/a.txt";
  atomic_write_file(path, "first");
  std::string got;
  ASSERT_TRUE(read_file(path, got));
  EXPECT_EQ(got, "first");

  atomic_write_file(path, "second, longer payload");
  ASSERT_TRUE(read_file(path, got));
  EXPECT_EQ(got, "second, longer payload");

  // No temp droppings survive a successful commit.
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(AtomicFileTest, ReadAbsentFileReturnsFalse) {
  std::string got = "untouched";
  EXPECT_FALSE(read_file(dir_ + "/missing", got));
  EXPECT_EQ(got, "untouched");
}

TEST_F(AtomicFileTest, RemoveIfExists) {
  const std::string path = dir_ + "/r.txt";
  EXPECT_FALSE(remove_file_if_exists(path));
  atomic_write_file(path, "x");
  EXPECT_TRUE(remove_file_if_exists(path));
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(AtomicFileTest, WriteIntoMissingDirectoryThrows) {
  EXPECT_THROW(atomic_write_file(dir_ + "/nope/deep/a.txt", "x"),
               std::runtime_error);
}

TEST_F(AtomicFileTest, InjectedEnospcWritesNothing) {
  fault::set_active_spec("enospc:cache@1");
  const std::string path = dir_ + "/entry.csv";
  try {
    atomic_write_file(path, "payload", "cache");
    FAIL() << "expected InjectedFault";
  } catch (const fault::InjectedFault& e) {
    EXPECT_EQ(e.taxonomy(), "io");
  }
  // Fails before writing anything: no final file, no temp file.
  EXPECT_TRUE(std::filesystem::is_empty(dir_));

  // The occurrence is spent: the retry commits cleanly.
  atomic_write_file(path, "payload", "cache");
  std::string got;
  ASSERT_TRUE(read_file(path, got));
  EXPECT_EQ(got, "payload");
}

TEST_F(AtomicFileTest, InjectedTornWriteLeavesHalfThePayload) {
  fault::set_active_spec("torn_write:cache@1");
  const std::string path = dir_ + "/entry.csv";
  EXPECT_THROW(atomic_write_file(path, "0123456789", "cache"),
               fault::InjectedFault);
  // The torn file a crashed non-atomic writer would leave: the first half,
  // AT the final path (this is what readers must treat as a miss).
  std::string got;
  ASSERT_TRUE(read_file(path, got));
  EXPECT_EQ(got, "01234");

  // A clean retry replaces the torn file atomically.
  atomic_write_file(path, "0123456789", "cache");
  ASSERT_TRUE(read_file(path, got));
  EXPECT_EQ(got, "0123456789");
}

TEST_F(AtomicFileTest, UnnamedSitesAreExemptFromInjection) {
  fault::set_active_spec("enospc@1");
  const std::string path = dir_ + "/plain.txt";
  atomic_write_file(path, "ok");  // no site: never matches
  std::string got;
  ASSERT_TRUE(read_file(path, got));
  EXPECT_EQ(got, "ok");
}

// ------------------------------------------------------------------ lease

class FileLeaseTest : public AtomicFileTest {};

TEST_F(FileLeaseTest, AcquireReleaseReacquire) {
  const std::string path = dir_ + "/cell.lock";
  auto l1 = FileLease::acquire(path, std::chrono::milliseconds(0));
  ASSERT_TRUE(l1.has_value());
  EXPECT_TRUE(std::filesystem::exists(path));

  l1->release();
  EXPECT_FALSE(std::filesystem::exists(path));

  auto l2 = FileLease::acquire(path, std::chrono::milliseconds(0));
  ASSERT_TRUE(l2.has_value());  // released leases can be retaken
}

TEST_F(FileLeaseTest, ReleaseOnDestruction) {
  const std::string path = dir_ + "/cell.lock";
  {
    auto l = FileLease::acquire(path, std::chrono::milliseconds(0));
    ASSERT_TRUE(l.has_value());
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(FileLeaseTest, SecondAcquireTimesOutWhileHeld) {
  const std::string path = dir_ + "/cell.lock";
  auto held = FileLease::acquire(path, std::chrono::milliseconds(0));
  ASSERT_TRUE(held.has_value());

  // flock state is per-open-file-description, so a second acquire in the
  // same process genuinely contends (it opens the file separately).
  bool waited = false;
  auto blocked =
      FileLease::acquire(path, std::chrono::milliseconds(50), &waited);
  EXPECT_FALSE(blocked.has_value());
  EXPECT_TRUE(waited);

  // Once the holder releases, the next acquire succeeds within its wait.
  held->release();
  auto next = FileLease::acquire(path, std::chrono::milliseconds(500));
  EXPECT_TRUE(next.has_value());
}

TEST_F(FileLeaseTest, StaleLockFileOfDeadProcessIsTakenOver) {
  const std::string path = dir_ + "/cell.lock";
  // Forge a lock file naming a PID that cannot be alive (PID_MAX on Linux
  // is < 2^22 by default; 999999999 exceeds any configurable max), with no
  // flock held — exactly what a crashed holder leaves on filesystems where
  // the unlink in release() never ran.
  atomic_write_file(path, "pid 999999999\nsince 0\n");
  bool waited = false;
  auto l = FileLease::acquire(path, std::chrono::milliseconds(200), &waited);
  ASSERT_TRUE(l.has_value());  // dead holder detected, file removed, retaken
}

TEST_F(FileLeaseTest, MoveTransfersOwnership) {
  const std::string path = dir_ + "/cell.lock";
  auto l1 = FileLease::acquire(path, std::chrono::milliseconds(0));
  ASSERT_TRUE(l1.has_value());
  FileLease l2 = std::move(*l1);
  l1.reset();  // destroying the moved-from lease must not release
  EXPECT_TRUE(std::filesystem::exists(path));
  l2.release();
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace omv::core
