// Unit tests for core/advisor: the mitigation playbook.

#include "core/advisor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace omv::advisor {
namespace {

Characterization with(std::initializer_list<Signature> sigs) {
  Characterization c;
  c.signatures = sigs;
  return c;
}

bool recommends(const Advice& a, const std::string& action_substr) {
  for (const auto& r : a.recommendations) {
    if (r.action.find(action_substr) != std::string::npos) return true;
  }
  return false;
}

TEST(Advisor, StableMaxThreadsSparesCores) {
  EXPECT_EQ(stable_max_threads(topo::Machine::dardel()), 126u);
  EXPECT_EQ(stable_max_threads(topo::Machine::vera()), 30u);
  EXPECT_EQ(stable_max_threads(topo::Machine::vera(), 0), 32u);
}

TEST(Advisor, StablePlacesUsesPrimarySiblings) {
  const auto m = topo::Machine::dardel();
  const auto p = stable_places(m, 3);
  EXPECT_EQ(p, "{0},{1},{2}");  // first siblings, not 128+
}

TEST(Advisor, StablePlacesValidates) {
  const auto m = topo::Machine::vera();
  EXPECT_THROW(static_cast<void>(stable_places(m, 0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(stable_places(m, 31)), std::invalid_argument);  // cap is 30
  EXPECT_NO_THROW(static_cast<void>(stable_places(m, 30)));
}

TEST(Advisor, UnpinnedHeavyTailRecommendsPinningFirst) {
  ObservedConfig obs;
  obs.n_threads = 128;
  obs.pinned = false;
  const auto a = advise(topo::Machine::dardel(),
                        with({Signature::heavy_tail, Signature::bimodal}),
                        obs);
  ASSERT_FALSE(a.recommendations.empty());
  EXPECT_EQ(a.recommendations[0].action, "pin threads");
  EXPECT_EQ(a.recommendations[0].omp_proc_bind, "close");
  EXPECT_EQ(a.recommendations[0].omp_num_threads, 126u);
  EXPECT_FALSE(a.recommendations[0].omp_places.empty());
}

TEST(Advisor, PinnedStableKeepsConfig) {
  ObservedConfig obs;
  obs.n_threads = 30;
  obs.pinned = true;
  obs.spare_cores = 2;
  const auto a =
      advise(topo::Machine::vera(), with({Signature::stable}), obs);
  ASSERT_EQ(a.recommendations.size(), 1u);
  EXPECT_EQ(a.recommendations[0].action, "keep the current configuration");
}

TEST(Advisor, SmtUsageFlagged) {
  ObservedConfig obs;
  obs.n_threads = 64;
  obs.pinned = true;
  obs.used_smt_siblings = true;
  obs.spare_cores = 2;
  const auto a =
      advise(topo::Machine::dardel(), with({Signature::jittery}), obs);
  EXPECT_TRUE(recommends(a, "leave SMT siblings"));
}

TEST(Advisor, NoSmtAdviceOnNonSmtMachine) {
  ObservedConfig obs;
  obs.n_threads = 16;
  obs.pinned = true;
  obs.used_smt_siblings = true;  // impossible on Vera; advisor checks hw
  obs.spare_cores = 2;
  const auto a =
      advise(topo::Machine::vera(), with({Signature::jittery}), obs);
  EXPECT_FALSE(recommends(a, "leave SMT siblings"));
}

TEST(Advisor, FullNodeNoiseRecommendsSpareCores) {
  ObservedConfig obs;
  obs.n_threads = 32;
  obs.pinned = true;
  obs.spare_cores = 0;
  const auto a =
      advise(topo::Machine::vera(), with({Signature::heavy_tail}), obs);
  EXPECT_TRUE(recommends(a, "spare two cores"));
}

TEST(Advisor, PinnedRunOutliersPointAtFrequency) {
  ObservedConfig obs;
  obs.n_threads = 254;
  obs.pinned = true;
  obs.spare_cores = 2;
  const auto a = advise(topo::Machine::dardel(),
                        with({Signature::outlier_runs}), obs);
  EXPECT_TRUE(recommends(a, "screen runs for frequency caps"));
}

TEST(Advisor, DriftRecommendsInterleaving) {
  ObservedConfig obs;
  obs.n_threads = 16;
  obs.pinned = true;
  obs.spare_cores = 2;
  const auto a =
      advise(topo::Machine::vera(), with({Signature::drift}), obs);
  EXPECT_TRUE(recommends(a, "interleave"));
}

TEST(Advisor, WorkloadKindSpecificAdvice) {
  ObservedConfig obs;
  obs.n_threads = 16;
  obs.pinned = true;
  obs.spare_cores = 2;
  const auto mem = advise(topo::Machine::vera(), with({}), obs,
                          WorkloadKind::memory_bound);
  EXPECT_TRUE(recommends(mem, "NUMA domains"));
  const auto sync = advise(topo::Machine::vera(), with({}), obs,
                           WorkloadKind::sync_heavy);
  EXPECT_TRUE(recommends(sync, "fewest NUMA domains"));
}

TEST(Advisor, SummaryMentionsPrimaryAction) {
  ObservedConfig obs;
  obs.n_threads = 8;
  obs.pinned = false;
  const auto a = advise(topo::Machine::vera(), with({}), obs);
  EXPECT_NE(a.summary.find(a.recommendations[0].action), std::string::npos);
}

}  // namespace
}  // namespace omv::advisor
