// Unit tests for core/histogram.

#include "core/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace omv::stats {
namespace {

TEST(Histogram, CountsLandInRightBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.5);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, ZeroBinsBecomesOne) {
  Histogram h(0.0, 1.0, 0);
  EXPECT_EQ(h.bin_count(), 1u);
}

TEST(Histogram, DegenerateRangeWidens) {
  Histogram h(5.0, 5.0, 4);
  h.add(5.0);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, FromDataSpansRange) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const auto h = Histogram::from_data(v, 3);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.lo(), 1.0);
  EXPECT_DOUBLE_EQ(h.hi(), 4.0);
}

TEST(Histogram, AutoBinnedNonEmpty) {
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(static_cast<double>(i % 17));
  const auto h = Histogram::auto_binned(v);
  EXPECT_GE(h.bin_count(), 1u);
  EXPECT_EQ(h.total(), 200u);
}

TEST(Histogram, SmoothedPreservesMass) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(5.0);
  const auto sm = h.smoothed(0);
  EXPECT_DOUBLE_EQ(sm[5], 100.0);
}

TEST(Histogram, SmoothedSpreadsPeaks) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(5.0);
  const auto sm = h.smoothed(1);
  // Mass leaks into the adjacent bins but not beyond the radius.
  EXPECT_GT(sm[4], 0.0);
  EXPECT_GT(sm[6], 0.0);
  EXPECT_DOUBLE_EQ(sm[3], 0.0);
  EXPECT_DOUBLE_EQ(sm[7], 0.0);
}

TEST(Histogram, SparklineLengthMatchesBins) {
  Histogram h(0.0, 1.0, 8);
  h.add(0.5);
  const auto s = h.sparkline();
  // UTF-8 glyphs are 3 bytes (or 1 for space): at least 8 chars logically.
  EXPECT_FALSE(s.empty());
}

TEST(SturgesBins, KnownValues) {
  EXPECT_EQ(sturges_bins(1), 1u);
  EXPECT_EQ(sturges_bins(100), 8u);   // ceil(log2(100)) + 1 = 7 + 1
  EXPECT_EQ(sturges_bins(1024), 11u);
}

TEST(FreedmanDiaconis, ZeroForTinySamples) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_EQ(freedman_diaconis_bins(v), 0u);
}

TEST(FreedmanDiaconis, ZeroForZeroIqr) {
  const std::vector<double> v{5.0, 5.0, 5.0, 5.0, 5.0};
  EXPECT_EQ(freedman_diaconis_bins(v), 0u);
}

TEST(FreedmanDiaconis, ReasonableForUniform) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(static_cast<double>(i));
  const auto bins = freedman_diaconis_bins(v);
  EXPECT_GT(bins, 3u);
  EXPECT_LT(bins, 100u);
}

}  // namespace
}  // namespace omv::stats
