// Unit tests for core/outliers.

#include "core/outliers.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace omv::stats {
namespace {

std::vector<double> base_sample() {
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) v.push_back(100.0 + (i % 10));
  return v;
}

TEST(TukeyOutliers, CleanSampleHasNone) {
  const auto r = tukey_outliers(base_sample());
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.tail, Tail::none);
}

TEST(TukeyOutliers, DetectsHighTail) {
  auto v = base_sample();
  v.push_back(500.0);
  const auto r = tukey_outliers(v);
  EXPECT_EQ(r.count(), 1u);
  EXPECT_EQ(r.n_high, 1u);
  EXPECT_EQ(r.tail, Tail::high);
  EXPECT_EQ(r.indices[0], v.size() - 1);
}

TEST(TukeyOutliers, DetectsLowTail) {
  auto v = base_sample();
  v.push_back(1.0);
  const auto r = tukey_outliers(v);
  EXPECT_EQ(r.n_low, 1u);
  EXPECT_EQ(r.tail, Tail::low);
}

TEST(TukeyOutliers, BothTails) {
  auto v = base_sample();
  v.push_back(500.0);
  v.push_back(-500.0);
  EXPECT_EQ(tukey_outliers(v).tail, Tail::both);
}

TEST(TukeyOutliers, StricterKFlagsFewer) {
  auto v = base_sample();
  v.push_back(130.0);
  v.push_back(500.0);
  const auto loose = tukey_outliers(v, 1.5);
  const auto strict = tukey_outliers(v, 3.0);
  EXPECT_GE(loose.count(), strict.count());
}

TEST(TukeyOutliers, TinySampleReturnsEmpty) {
  const std::vector<double> v{1.0, 2.0, 100.0};
  EXPECT_EQ(tukey_outliers(v).count(), 0u);
}

TEST(MadOutliers, DetectsSpike) {
  auto v = base_sample();
  v.push_back(1000.0);
  const auto r = mad_outliers(v);
  EXPECT_GE(r.n_high, 1u);
}

TEST(MadOutliers, SurvivesHeavyContamination) {
  // 30% contamination: Tukey's fences get dragged, MAD-z still works.
  std::vector<double> v;
  for (int i = 0; i < 70; ++i) v.push_back(100.0 + (i % 5) * 0.1);
  for (int i = 0; i < 30; ++i) v.push_back(200.0 + i);
  const auto r = mad_outliers(v);
  EXPECT_GE(r.n_high, 25u);
}

TEST(MadOutliers, FallsBackOnZeroMad) {
  // >50% identical values -> MAD == 0 -> Tukey fallback.
  std::vector<double> v(20, 7.0);
  v.push_back(100.0);
  const auto r = mad_outliers(v);
  EXPECT_EQ(r.n_high, 1u);
}

TEST(OutlierReport, FractionHelper) {
  OutlierReport r;
  r.indices = {1, 2};
  EXPECT_DOUBLE_EQ(r.fraction(10), 0.2);
  EXPECT_DOUBLE_EQ(r.fraction(0), 0.0);
}

TEST(TailName, AllValuesNamed) {
  EXPECT_STREQ(tail_name(Tail::none), "none");
  EXPECT_STREQ(tail_name(Tail::high), "high");
  EXPECT_STREQ(tail_name(Tail::low), "low");
  EXPECT_STREQ(tail_name(Tail::both), "both");
}

}  // namespace
}  // namespace omv::stats
