// Unit tests for core/trace_io: CSV round-trips.

#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/rng.hpp"

namespace omv::io {
namespace {

RunMatrix sample() {
  RunMatrix m("t2");
  m.add_run({124020.18, 124062.15, 123989.57});
  m.add_run({154277.48, 154162.74});
  return m;
}

TEST(TraceIo, CsvHasHeaderAndRows) {
  const auto csv = run_matrix_to_csv(sample());
  EXPECT_EQ(csv.rfind("run,rep,time", 0), 0u);
  EXPECT_NE(csv.find("0,0,"), std::string::npos);
  EXPECT_NE(csv.find("1,1,"), std::string::npos);
}

TEST(TraceIo, RoundTripExact) {
  const auto m = sample();
  const auto back = run_matrix_from_csv(run_matrix_to_csv(m), "t2");
  ASSERT_EQ(back.runs(), m.runs());
  EXPECT_EQ(back.label(), "t2");
  for (std::size_t r = 0; r < m.runs(); ++r) {
    ASSERT_EQ(back.run(r).size(), m.run(r).size());
    for (std::size_t k = 0; k < m.run(r).size(); ++k) {
      EXPECT_DOUBLE_EQ(back.run(r)[k], m.run(r)[k]);
    }
  }
}

TEST(TraceIo, RoundTripPreservesStatistics) {
  const auto m = sample();
  const auto back = run_matrix_from_csv(run_matrix_to_csv(m));
  EXPECT_DOUBLE_EQ(back.grand_mean(), m.grand_mean());
  EXPECT_DOUBLE_EQ(back.pooled_summary().cv, m.pooled_summary().cv);
}

TEST(TraceIo, EmptyMatrixRoundTrips) {
  const auto back = run_matrix_from_csv(run_matrix_to_csv(RunMatrix{}));
  EXPECT_EQ(back.runs(), 0u);
}

TEST(TraceIo, RejectsBadHeader) {
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("nope\n1,2,3\n")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("")), std::invalid_argument);
}

TEST(TraceIo, RejectsMalformedRows) {
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("run,rep,time\nx,0,1.0\n")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("run,rep,time\n0,zero,1.0\n")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("run,rep,time\n0,0,abc\n")),
               std::invalid_argument);
}

TEST(TraceIo, RejectsTrailingGarbageAfterTime) {
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("run,rep,time\n0,0,1.5,junk\n")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("run,rep,time\n0,0,1.5 \n")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("run,rep,time\n0,0,1.5x\n")),
               std::invalid_argument);
}

TEST(TraceIo, RejectsDuplicateCells) {
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("run,rep,time\n0,0,1.0\n0,0,2.0\n")),
      std::invalid_argument);
}

TEST(TraceIo, RejectsGappedRepIndices) {
  // rep 1 is missing: silently compacting would misalign rep-indexed
  // analyses (periodic-noise detection).
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("run,rep,time\n0,0,1.0\n0,2,3.0\n")),
      std::invalid_argument);
}

TEST(TraceIo, RejectsRunGapWithoutMetadata) {
  // No "# runs=" line: a run with no rows means the file is truncated.
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("run,rep,time\n0,0,1.0\n2,0,3.0\n")),
      std::invalid_argument);
}

TEST(TraceIo, MetadataPreservesEmptyRuns) {
  RunMatrix m("holes");
  m.add_run({1.0, 2.0});
  m.add_run({});       // empty middle run
  m.add_run({5.0});
  m.add_run({});       // empty trailing run
  const auto back = run_matrix_from_csv(run_matrix_to_csv(m), "holes");
  ASSERT_EQ(back.runs(), 4u);
  EXPECT_EQ(back.run(0).size(), 2u);
  EXPECT_EQ(back.run(1).size(), 0u);
  EXPECT_EQ(back.run(2).size(), 1u);
  EXPECT_EQ(back.run(3).size(), 0u);
}

TEST(TraceIo, RejectsRowBeyondDeclaredRuns) {
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("run,rep,time\n# runs=1\n1,0,2.0\n")),
      std::invalid_argument);
  EXPECT_THROW(static_cast<void>(run_matrix_from_csv("run,rep,time\n# runs=x\n0,0,1.0\n")),
      std::invalid_argument);
}

TEST(TraceIo, ToleratesCrlfAndComments) {
  const auto m = run_matrix_from_csv(
      "run,rep,time\r\n# a comment\r\n0,0,1.5\r\n0,1,2.5\r\n");
  ASSERT_EQ(m.runs(), 1u);
  EXPECT_DOUBLE_EQ(m.run(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(m.run(0)[1], 2.5);
}

TEST(TraceIo, ToleratesBlankLinesAndShuffledRows) {
  const auto m = run_matrix_from_csv(
      "run,rep,time\n1,0,5.0\n\n0,1,2.0\n0,0,1.0\n");
  ASSERT_EQ(m.runs(), 2u);
  EXPECT_DOUBLE_EQ(m.run(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(m.run(0)[1], 2.0);
  EXPECT_DOUBLE_EQ(m.run(1)[0], 5.0);
}

TEST(TraceIo, RoundTripExactForRaggedFullPrecisionMatrices) {
  // Property: write -> read is the identity for every representable
  // double, including adversarial precision and ragged/empty rows.
  omv::Rng rng(20260729);
  RunMatrix m("precision");
  for (std::size_t r = 0; r < 8; ++r) {
    std::vector<double> reps;
    const std::size_t k = r == 3 ? 0 : 1 + (r * 7) % 13;  // ragged + empty
    for (std::size_t i = 0; i < k; ++i) {
      // Stress the 17-digit path: irrational-ish products over wide
      // magnitudes.
      const double x = rng.normal(0.0, 1.0) * std::pow(10.0, (int(i) % 9) - 4);
      reps.push_back(x * (1.0 / 3.0) + 0.1);
    }
    m.add_run(std::move(reps));
  }
  const auto back = run_matrix_from_csv(run_matrix_to_csv(m), "precision");
  ASSERT_EQ(back.runs(), m.runs());
  for (std::size_t r = 0; r < m.runs(); ++r) {
    ASSERT_EQ(back.run(r).size(), m.run(r).size());
    for (std::size_t k = 0; k < m.run(r).size(); ++k) {
      // Bit-exact, not just close.
      EXPECT_EQ(back.run(r)[k], m.run(r)[k]) << "run " << r << " rep " << k;
    }
  }
  // Identical derived metrics (the property the result cache rests on).
  EXPECT_EQ(back.grand_mean(), m.grand_mean());
  EXPECT_EQ(back.pooled_summary().cv, m.pooled_summary().cv);
  EXPECT_EQ(back.run_to_run_cv(), m.run_to_run_cv());
}

TEST(TraceIo, FileSaveLoad) {
  const std::string path = "/tmp/omnivar_trace_io_test.csv";
  save_run_matrix(path, sample());
  const auto back = load_run_matrix(path, "from-file");
  EXPECT_EQ(back.runs(), 2u);
  EXPECT_EQ(back.label(), "from-file");
  std::remove(path.c_str());
}

TEST(TraceIo, FileErrorsThrow) {
  EXPECT_THROW(static_cast<void>(load_run_matrix("/nonexistent/dir/x.csv")),
               std::runtime_error);
  EXPECT_THROW(save_run_matrix("/nonexistent/dir/x.csv", sample()),
               std::runtime_error);
}

}  // namespace
}  // namespace omv::io
