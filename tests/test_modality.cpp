// Unit tests for core/modality.

#include "core/modality.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"

namespace omv::stats {
namespace {

TEST(CountPeaks, EmptyAndFlat) {
  EXPECT_EQ(count_peaks({}), 0u);
  // An all-flat density is one maximal plateau: a single (degenerate) peak.
  const std::vector<double> flat{1.0, 1.0, 1.0};
  EXPECT_EQ(count_peaks(flat), 1u);
}

TEST(CountPeaks, SinglePeak) {
  const std::vector<double> v{0.0, 1.0, 3.0, 1.0, 0.0};
  EXPECT_EQ(count_peaks(v), 1u);
}

TEST(CountPeaks, TwoPeaks) {
  const std::vector<double> v{0.0, 3.0, 0.5, 0.5, 4.0, 0.0};
  EXPECT_EQ(count_peaks(v), 2u);
}

TEST(CountPeaks, PlateauPeakCountsOnce) {
  const std::vector<double> v{0.0, 2.0, 2.0, 2.0, 0.0};
  EXPECT_EQ(count_peaks(v), 1u);
}

TEST(CountPeaks, ProminenceFloorFiltersRipples) {
  const std::vector<double> v{0.0, 100.0, 0.0, 1.0, 0.0};
  EXPECT_EQ(count_peaks(v, 0.05), 1u);   // 1.0 < 5% of 100
  EXPECT_EQ(count_peaks(v, 0.001), 2u);  // lowered floor keeps it
}

TEST(CountPeaks, EdgePeaks) {
  const std::vector<double> v{5.0, 1.0, 0.0, 1.0, 6.0};
  EXPECT_EQ(count_peaks(v), 2u);
}

TEST(AnalyzeModality, TinySampleUnclassified) {
  const std::vector<double> v{1.0, 2.0};
  const auto r = analyze_modality(v);
  EXPECT_FALSE(r.likely_multimodal);
}

TEST(AnalyzeModality, UnimodalNormalNotFlagged) {
  Rng rng(1);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.normal(100.0, 3.0));
  const auto r = analyze_modality(v);
  EXPECT_FALSE(r.likely_multimodal);
  EXPECT_LT(r.bimodality_coefficient, 0.6);
}

TEST(AnalyzeModality, ClearBimodalFlagged) {
  // The timing pattern the paper attributes to migration: a fast mode and
  // a well-separated slow mode.
  Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.normal(100.0, 1.0));
  for (int i = 0; i < 500; ++i) v.push_back(rng.normal(140.0, 1.0));
  const auto r = analyze_modality(v);
  EXPECT_TRUE(r.likely_multimodal);
  EXPECT_GE(r.peak_count, 2u);
  EXPECT_GT(r.bimodality_coefficient, 5.0 / 9.0);
}

TEST(AnalyzeModality, ConstantSampleSafe) {
  const std::vector<double> v(100, 42.0);
  const auto r = analyze_modality(v);
  EXPECT_FALSE(r.likely_multimodal);
}

}  // namespace
}  // namespace omv::stats
