// Unit tests for core/experiment: the runs x reps protocol runner.

#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace omv {
namespace {

TEST(Experiment, ShapeMatchesSpec) {
  ExperimentSpec spec;
  spec.runs = 4;
  spec.reps = 7;
  spec.warmup = 2;
  const auto m = run_experiment(
      spec, [](const RepContext& c) { return static_cast<double>(c.rep); });
  EXPECT_EQ(m.runs(), 4u);
  for (std::size_t r = 0; r < m.runs(); ++r) {
    EXPECT_EQ(m.run(r).size(), 7u);
  }
}

TEST(Experiment, WarmupsAreDiscarded) {
  ExperimentSpec spec;
  spec.runs = 1;
  spec.reps = 3;
  spec.warmup = 2;
  int warmups_seen = 0;
  const auto m = run_experiment(spec, [&](const RepContext& c) {
    if (c.warmup) ++warmups_seen;
    return 1.0;
  });
  EXPECT_EQ(warmups_seen, 2);
  EXPECT_EQ(m.run(0).size(), 3u);
}

TEST(Experiment, HooksCalledPerRun) {
  ExperimentSpec spec;
  spec.runs = 3;
  spec.reps = 1;
  spec.warmup = 0;
  std::vector<std::size_t> before;
  std::vector<std::size_t> after;
  RunHooks hooks;
  hooks.before_run = [&](std::size_t r, std::uint64_t) { before.push_back(r); };
  hooks.after_run = [&](std::size_t r) { after.push_back(r); };
  (void)run_experiment(spec, [](const RepContext&) { return 0.0; }, hooks);
  EXPECT_EQ(before, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(after, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Experiment, RunSeedsAreDistinctAndStable) {
  const auto s0 = derive_run_seed(42, 0);
  const auto s1 = derive_run_seed(42, 1);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(s0, derive_run_seed(42, 0));
  EXPECT_NE(derive_run_seed(42, 0), derive_run_seed(43, 0));
}

TEST(Experiment, KernelSeesDerivedRunSeed) {
  ExperimentSpec spec;
  spec.runs = 2;
  spec.reps = 1;
  spec.warmup = 0;
  spec.seed = 9;
  std::vector<std::uint64_t> seen;
  (void)run_experiment(spec, [&](const RepContext& c) {
    seen.push_back(c.run_seed);
    return 0.0;
  });
  EXPECT_EQ(seen[0], derive_run_seed(9, 0));
  EXPECT_EQ(seen[1], derive_run_seed(9, 1));
}

TEST(Experiment, TimeHelpersArePositive) {
  const double s = time_seconds([] {
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  });
  EXPECT_GE(s, 0.0);
  const double us = time_micros([] {});
  EXPECT_GE(us, 0.0);
}

TEST(Experiment, LabelPropagates) {
  ExperimentSpec spec;
  spec.name = "my-exp";
  spec.runs = 1;
  spec.reps = 1;
  const auto m =
      run_experiment(spec, [](const RepContext&) { return 1.0; });
  EXPECT_EQ(m.label(), "my-exp");
}

}  // namespace
}  // namespace omv
