// Unit tests for core/parallel_runner: the work-stealing sharded
// experiment executor. The load-bearing property is bit-identity: for a
// deterministic kernel, the parallel path must produce exactly the
// RunMatrix the serial run_experiment path produces, at any job count.

#include "core/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench_suite/syncbench_sim.hpp"
#include "core/rng.hpp"
#include "sim/simulator.hpp"
#include "topo/topology.hpp"

namespace omv {
namespace {

/// A deterministic kernel: pure function of (run_seed, rep), exactly what
/// the simulator-backed kernels are after begin_run re-derives their state.
double pure_kernel(const RepContext& c) {
  Rng rng(c.run_seed);
  double v = 0.0;
  for (std::size_t i = 0; i <= c.rep; ++i) v = rng.next_double();
  return v + static_cast<double>(c.rep);
}

RunKernelFactory pure_factory() {
  return [](const RunSlot&) -> RepKernel { return pure_kernel; };
}

ExperimentSpec small_spec(std::uint64_t seed = 42) {
  ExperimentSpec spec;
  spec.name = "parallel-test";
  spec.runs = 7;
  spec.reps = 11;
  spec.warmup = 2;
  spec.seed = seed;
  return spec;
}

void expect_bit_identical(const RunMatrix& a, const RunMatrix& b) {
  ASSERT_EQ(a.runs(), b.runs());
  EXPECT_EQ(a.label(), b.label());
  for (std::size_t r = 0; r < a.runs(); ++r) {
    ASSERT_EQ(a.run(r).size(), b.run(r).size()) << "run " << r;
    for (std::size_t k = 0; k < a.run(r).size(); ++k) {
      // Exact double equality on purpose: the guarantee is bit-identity,
      // not approximate agreement.
      EXPECT_EQ(a.run(r)[k], b.run(r)[k]) << "run " << r << " rep " << k;
    }
  }
}

TEST(ParallelRunner, MatchesSerialBitIdentical) {
  const auto spec = small_spec();
  const RunMatrix serial = run_experiment(spec, pure_kernel);
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                           std::size_t{16}}) {
    const RunMatrix parallel =
        run_experiment_parallel(spec, pure_factory(), jobs);
    expect_bit_identical(serial, parallel);
  }
}

TEST(ParallelRunner, SimSyncBenchParallelMatchesSerial) {
  sim::Simulator s(topo::Machine::vera(), sim::SimConfig::vera());
  ompsim::TeamConfig team;
  team.n_threads = 8;
  bench::SimSyncBench sb(s, team);
  ExperimentSpec spec;
  spec.runs = 4;
  spec.reps = 5;
  spec.seed = 99;
  const auto serial = sb.run_protocol(bench::SyncConstruct::reduction, spec);
  const auto parallel =
      sb.run_protocol(bench::SyncConstruct::reduction, spec, 3);
  expect_bit_identical(serial, parallel);
}

TEST(ParallelRunner, Jobs1RunsInlineOnCallingThread) {
  std::atomic<int> off_thread{0};
  const auto caller = std::this_thread::get_id();
  ExperimentSpec spec = small_spec();
  const auto factory = [&](const RunSlot&) -> RepKernel {
    return [&, caller](const RepContext& c) {
      if (std::this_thread::get_id() != caller) ++off_thread;
      return pure_kernel(c);
    };
  };
  const auto m = run_experiment_parallel(spec, factory, 1);
  EXPECT_EQ(off_thread.load(), 0);
  expect_bit_identical(run_experiment(spec, pure_kernel), m);
}

TEST(ParallelRunner, MoreJobsThanRunsStillCorrect) {
  ExperimentSpec spec = small_spec();
  spec.runs = 2;
  const auto m = run_experiment_parallel(spec, pure_factory(), 64);
  expect_bit_identical(run_experiment(spec, pure_kernel), m);
}

TEST(ParallelRunner, KernelExceptionPropagates) {
  ExperimentSpec spec = small_spec();
  const auto factory = [](const RunSlot& slot) -> RepKernel {
    return [run = slot.run](const RepContext& c) -> double {
      if (run == 3 && c.rep == 1 && !c.warmup) {
        throw std::runtime_error("kernel blew up");
      }
      return 1.0;
    };
  };
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    EXPECT_THROW((void)run_experiment_parallel(spec, factory, jobs),
                 std::runtime_error)
        << "jobs=" << jobs;
  }
}

TEST(ParallelRunner, FactoryExceptionPropagates) {
  ExperimentSpec spec = small_spec();
  const auto factory = [](const RunSlot& slot) -> RepKernel {
    if (slot.run == 1) throw std::logic_error("no kernel for you");
    return pure_kernel;
  };
  EXPECT_THROW((void)run_experiment_parallel(spec, factory, 4),
               std::logic_error);
}

TEST(ParallelRunner, FactorySeesProtocolRunSeeds) {
  ExperimentSpec spec = small_spec(1234);
  std::mutex mu;
  std::vector<RunSlot> slots;
  const auto factory = [&](const RunSlot& slot) -> RepKernel {
    {
      std::lock_guard lock(mu);
      slots.push_back(slot);
    }
    return pure_kernel;
  };
  (void)run_experiment_parallel(spec, factory, 4);
  ASSERT_EQ(slots.size(), spec.runs);
  for (const auto& slot : slots) {
    EXPECT_EQ(slot.cell, 0u);
    EXPECT_EQ(slot.run_seed, derive_run_seed(spec.seed, slot.run));
  }
}

TEST(ParallelRunner, SweepPreservesCellOrderAndLabels) {
  std::vector<ExperimentCell> cells;
  for (int i = 0; i < 5; ++i) {
    ExperimentCell cell;
    cell.spec = small_spec(100 + static_cast<std::uint64_t>(i));
    cell.spec.name = "cell-" + std::to_string(i);
    cell.spec.runs = 3 + static_cast<std::size_t>(i);
    cell.make_kernel = pure_factory();
    cells.push_back(std::move(cell));
  }
  ParallelConfig cfg;
  cfg.jobs = 4;
  const BatchResult batch = ParallelRunner(cfg).run_sweep(cells);
  ASSERT_EQ(batch.size(), cells.size());
  EXPECT_EQ(batch.total_runs(), 3u + 4u + 5u + 6u + 7u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expect_bit_identical(run_experiment(cells[i].spec, pure_kernel),
                         batch.matrix(i));
  }
  EXPECT_NE(batch.find("cell-2"), nullptr);
  EXPECT_EQ(batch.find("cell-2"), &batch.matrix(2));
  EXPECT_EQ(batch.find("no-such-cell"), nullptr);
}

TEST(ParallelRunner, BatchResultMerge) {
  BatchResult a;
  a.add(RunMatrix("one"));
  BatchResult b;
  RunMatrix two("two");
  two.add_run({1.0, 2.0});
  b.add(std::move(two));
  a.merge(std::move(b));
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.matrix(0).label(), "one");
  EXPECT_EQ(a.matrix(1).label(), "two");
  EXPECT_EQ(a.total_runs(), 1u);
}

TEST(ParallelRunner, ResolveJobs) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
}

TEST(RunMatrix, AppendRunsMergesShards) {
  RunMatrix a("shard");
  a.add_run({1.0, 2.0});
  RunMatrix b("ignored-label");
  b.add_run({3.0, 4.0});
  b.add_run({5.0});
  a.append_runs(b);
  ASSERT_EQ(a.runs(), 3u);
  EXPECT_EQ(a.label(), "shard");
  EXPECT_EQ(a.run(1)[0], 3.0);
  EXPECT_EQ(a.run(2)[0], 5.0);
}

TEST(RunMatrix, SelfAppendDuplicatesRuns) {
  RunMatrix m("self");
  m.add_run({1.0});
  m.add_run({2.0, 3.0});
  m.append_runs(m);
  ASSERT_EQ(m.runs(), 4u);
  EXPECT_EQ(m.run(2)[0], 1.0);
  EXPECT_EQ(m.run(3)[0], 2.0);
  EXPECT_EQ(m.run(3)[1], 3.0);
}

}  // namespace
}  // namespace omv
