// Integration tests: each test encodes one qualitative claim from the
// paper's evaluation (Section 5) and checks the simulator + benchmark stack
// reproduces it. Experiments run with reduced runs/reps to stay fast; the
// bench/ harnesses run the full protocol.

#include <gtest/gtest.h>

#include "bench_suite/schedbench_sim.hpp"
#include "bench_suite/stream_sim.hpp"
#include "bench_suite/syncbench_sim.hpp"
#include "core/characterize.hpp"
#include "core/stat_tests.hpp"

namespace omv {
namespace {

ompsim::TeamConfig cfg(std::size_t threads, const std::string& places = "",
                       topo::ProcBind bind = topo::ProcBind::close) {
  ompsim::TeamConfig c;
  c.n_threads = threads;
  if (!places.empty()) c.places_spec = places;
  c.bind = bind;
  return c;
}

ExperimentSpec spec(std::uint64_t seed, std::size_t runs = 6,
                    std::size_t reps = 25) {
  ExperimentSpec s;
  s.runs = runs;
  s.reps = reps;
  s.warmup = 1;
  s.seed = seed;
  return s;
}

// --- Section 5.1: scalability ---------------------------------------------

TEST(Paper, Fig1SyncbenchTimeGrowsWithThreads) {
  // Fig. 1 plots the per-construct time; one outer repetition is always
  // calibrated to ~test_time, so compare rep_time / innerreps.
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  double prev = 0.0;
  for (std::size_t t : {4u, 16u, 64u, 128u}) {
    bench::SimSyncBench sb(s, cfg(t));
    const auto m =
        sb.run_protocol(bench::SyncConstruct::reduction, spec(100 + t, 3, 10));
    const double per_instance =
        m.grand_mean() /
        static_cast<double>(sb.innerreps(bench::SyncConstruct::reduction));
    EXPECT_GT(per_instance, prev) << t;
    prev = per_instance;
  }
}

TEST(Paper, Fig1SocketCrossingJump) {
  // Sharp increase when the team starts spanning the second socket.
  sim::Simulator s(topo::Machine::vera(), sim::SimConfig::ideal());
  bench::SimSyncBench b14(s, cfg(14));
  bench::SimSyncBench b16(s, cfg(16));
  bench::SimSyncBench b18(s, cfg(18));
  const double i14 = b14.ideal_instance_us(bench::SyncConstruct::reduction);
  const double i16 = b16.ideal_instance_us(bench::SyncConstruct::reduction);
  const double i18 = b18.ideal_instance_us(bench::SyncConstruct::reduction);
  // 14 -> 16 stays on one socket; 16 -> 18 crosses.
  EXPECT_GT(i18 - i16, (i16 - i14) * 2.0);
}

TEST(Paper, Fig1SmtEngagementJumpOnDardel) {
  // Beyond 128 threads, SMT siblings engage and sync costs jump.
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  bench::SimSyncBench b128(s, cfg(128));
  bench::SimSyncBench b254(s, cfg(254));
  const auto m128 =
      b128.run_protocol(bench::SyncConstruct::reduction, spec(7, 3, 10));
  const auto m254 =
      b254.run_protocol(bench::SyncConstruct::reduction, spec(7, 3, 10));
  const double per128 =
      m128.grand_mean() /
      static_cast<double>(b128.innerreps(bench::SyncConstruct::reduction));
  const double per254 =
      m254.grand_mean() /
      static_cast<double>(b254.innerreps(bench::SyncConstruct::reduction));
  EXPECT_GT(per254, per128 * 1.1);
}

TEST(Paper, Fig2StreamScalesDown) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  double prev = 1e300;
  for (std::size_t t : {2u, 16u, 128u}) {
    bench::SimStream st(s, cfg(t));
    const auto m =
        st.run_protocol(bench::StreamKernel::triad, spec(200 + t, 3, 8));
    const double mean = m.grand_mean();
    EXPECT_LT(mean, prev * 1.02) << t;
    prev = mean;
  }
}

TEST(Paper, Fig3VariabilityGrowsWithThreadCountForSyncbench) {
  // Norm-max spread at high thread counts exceeds the low-count spread.
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  auto spread_at = [&](std::size_t t) {
    bench::SimSyncBench sb(s, cfg(t));
    const auto m =
        sb.run_protocol(bench::SyncConstruct::reduction, spec(300, 8, 30));
    double worst = 0.0;
    for (std::size_t r = 0; r < m.runs(); ++r) {
      worst = std::max(worst, m.run_norm_max(r) - m.run_norm_min(r));
    }
    return worst;
  };
  EXPECT_GT(spread_at(254), spread_at(8));
}

TEST(Paper, SchedbenchLeastSensitiveToScale) {
  // Fig. 3 first column: schedbench's normalized spread stays small
  // compared to syncbench at the same scale (dynamic self-balances).
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  bench::SimSchedBench sched(s, cfg(128));
  const auto ms =
      sched.run_protocol(ompsim::Schedule::dynamic, 1, spec(400, 4, 5));
  bench::SimSyncBench sync(s, cfg(128));
  const auto my =
      sync.run_protocol(bench::SyncConstruct::reduction, spec(400, 4, 30));
  const auto ss = ms.pooled_summary();
  const auto sy = my.pooled_summary();
  EXPECT_LT(ss.cv, sy.cv + 0.05);
}

// --- Section 5.2: thread pinning ------------------------------------------

TEST(Paper, Fig4PinningRemovesRunToRunVariability) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  const auto sp = spec(500, 8, 25);

  bench::SimSyncBench pinned(s, cfg(128, "", topo::ProcBind::close));
  const auto mp = pinned.run_protocol(bench::SyncConstruct::reduction, sp);

  bench::SimSyncBench unpinned(s, cfg(128, "", topo::ProcBind::none));
  const auto mu = unpinned.run_protocol(bench::SyncConstruct::reduction, sp);

  EXPECT_LT(mp.run_to_run_cv(), mu.run_to_run_cv());
  // Brown-Forsythe confirms the variance difference is significant.
  const auto bf = stats::brown_forsythe(mp.flatten(), mu.flatten());
  EXPECT_TRUE(bf.significant);
}

TEST(Paper, Fig4UnpinnedSyncbenchSpansOrdersOfMagnitude) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  bench::SimSyncBench unpinned(s, cfg(128, "", topo::ProcBind::none));
  const auto m =
      unpinned.run_protocol(bench::SyncConstruct::reduction, spec(600, 8, 30));
  const auto su = m.pooled_summary();
  EXPECT_GT(su.max / su.min, 50.0);
}

TEST(Paper, Fig4UnpinnedIsHeavyTailedOrBimodal) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  bench::SimSyncBench unpinned(s, cfg(128, "", topo::ProcBind::none));
  const auto m =
      unpinned.run_protocol(bench::SyncConstruct::reduction, spec(700, 8, 30));
  const auto c = characterize(m);
  EXPECT_TRUE(c.has(Signature::heavy_tail) || c.has(Signature::bimodal) ||
              c.has(Signature::jittery))
      << c.to_string();
}

TEST(Paper, Fig4PinningHelpsStreamToo) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  const auto sp = spec(800, 6, 20);
  bench::SimStream pinned(s, cfg(128, "", topo::ProcBind::close));
  bench::SimStream unpinned(s, cfg(128, "", topo::ProcBind::none));
  const auto mp = pinned.run_protocol(bench::StreamKernel::copy, sp);
  const auto mu = unpinned.run_protocol(bench::StreamKernel::copy, sp);
  EXPECT_LT(mp.pooled_summary().norm_max(), mu.pooled_summary().norm_max());
}

// --- Section 5.3: SMT -------------------------------------------------------

TEST(Paper, Fig5MtNoisierThanStForSyncbench) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  const auto sp = spec(900, 6, 25);
  // ST: 32 threads on 32 distinct cores. MT: 32 threads on 16 cores.
  bench::SimSyncBench st(s, cfg(32, "{0}:32:1"));
  bench::SimSyncBench mt(s, cfg(32, "{0}:16:1,{128}:16:1"));
  const auto ms = st.run_protocol(bench::SyncConstruct::reduction, sp);
  const auto mm = mt.run_protocol(bench::SyncConstruct::reduction, sp);
  // Every run's CV is higher under MT on average; compare pooled CV.
  EXPECT_GT(mm.pooled_summary().cv, ms.pooled_summary().cv * 2.0);
}

TEST(Paper, Fig5StAbsorbsNoiseThroughIdleSiblings) {
  // With heavy daemon noise, ST's idle siblings absorb wakeups; MT at the
  // same thread count cannot.
  auto noisy = sim::SimConfig::dardel();
  noisy.noise.daemon_rate = 200.0;
  noisy.noise.daemon_miss_factor = 0.0;
  sim::Simulator s(topo::Machine::dardel(), noisy);
  const auto sp = spec(1000, 4, 20);
  bench::SimSyncBench st(s, cfg(128, "{0}:128:1"));
  bench::SimSyncBench mt(s, cfg(128, "{0}:64:1,{128}:64:1"));
  const auto ms = st.run_protocol(bench::SyncConstruct::barrier, sp);
  const auto mm = mt.run_protocol(bench::SyncConstruct::barrier, sp);
  EXPECT_GT(mm.pooled_summary().cv, ms.pooled_summary().cv);
}

TEST(Paper, Fig5StreamIndifferentAtLowThreadCounts) {
  // "ST does not outperform MT much for BabelStream when only a few
  // threads are used" — bandwidth-bound work is SMT-neutral-ish.
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  const auto sp = spec(1100, 4, 10);
  bench::SimStream st(s, cfg(8, "{0}:8:1"));
  bench::SimStream mt(s, cfg(8, "{0}:4:1,{128}:4:1"));
  const auto ms = st.run_protocol(bench::StreamKernel::triad, sp);
  const auto mm = mt.run_protocol(bench::StreamKernel::triad, sp);
  // Means within 2x of each other (no dramatic ST win at small scale).
  EXPECT_LT(mm.grand_mean() / ms.grand_mean(), 2.0);
}

// --- Section 5.4: frequency variation ---------------------------------------

TEST(Paper, Fig6CrossNumaShowsMoreVariabilityOnVera) {
  sim::Simulator s(topo::Machine::vera(), sim::SimConfig::vera());
  const auto sp = spec(1200, 6, 10);
  // 16 threads within NUMA 0 vs 8+8 across both domains.
  bench::SimSchedBench within(s, cfg(16, "{0}:16:1"));
  bench::SimSchedBench across(s, cfg(16, "{0}:8:1,{16}:8:1"));
  const auto mw =
      within.run_protocol(ompsim::Schedule::static_, 1, sp);
  const auto ma =
      across.run_protocol(ompsim::Schedule::static_, 1, sp);
  EXPECT_GT(ma.pooled_summary().cv, mw.pooled_summary().cv);
}

TEST(Paper, Fig7SyncbenchCrossNumaMirrorsSchedbench) {
  auto vcfg = sim::SimConfig::vera();
  vcfg.freq = sim::FreqConfig::vera_dippy();
  sim::Simulator s(topo::Machine::vera(), vcfg);
  const auto sp = spec(1300, 6, 25);
  bench::SimSyncBench within(s, cfg(16, "{0}:16:1"));
  bench::SimSyncBench across(s, cfg(16, "{0}:8:1,{16}:8:1"));
  const auto mw = within.run_protocol(bench::SyncConstruct::reduction, sp);
  const auto ma = across.run_protocol(bench::SyncConstruct::reduction, sp);
  EXPECT_GT(ma.pooled_summary().cv, mw.pooled_summary().cv * 0.9);
  EXPECT_GT(ma.grand_mean(), mw.grand_mean());
}

TEST(Paper, DardelFrequencyFlatterThanVera) {
  // Section 5.4's closing observation, via the freq model directly.
  topo::Machine md = topo::Machine::dardel();
  topo::Machine mv = topo::Machine::vera();
  sim::FreqModel fd(md, sim::FreqConfig::dardel());
  sim::FreqModel fv(mv, sim::FreqConfig::vera_dippy());
  fd.begin_run(5);
  fd.set_load_fraction(0.0);  // ungated: look at episodic variation only
  fv.begin_run(5);
  fv.set_activity_domains(2);
  int dips_d = 0;
  int dips_v = 0;
  for (double t = 0.0; t < 120.0; t += 0.1) {
    if (fd.factor(0, t) < 0.999) ++dips_d;
    if (fv.factor(0, t) < 0.999) ++dips_v;
  }
  EXPECT_LT(dips_d, dips_v);
}

// --- Table 2 -----------------------------------------------------------------

TEST(Paper, Table2RunLevelOutlierAppearsAtScaleNotAtFourThreads) {
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  // Search a few seeds for one where a capped run occurs (prob 0.08/run).
  bool found_outlier_at_scale = false;
  for (std::uint64_t seed = 1; seed <= 6 && !found_outlier_at_scale; ++seed) {
    bench::SimSchedBench big(s, cfg(254));
    const auto mb =
        big.run_protocol(ompsim::Schedule::dynamic, 1, spec(seed, 10, 3));
    if (mb.run_mean_spread() > 1.05) {
      found_outlier_at_scale = true;
      // Same seed at 4 threads: tight (cap is load-gated).
      bench::SimSchedBench small(s, cfg(4));
      const auto msm =
          small.run_protocol(ompsim::Schedule::dynamic, 1, spec(seed, 10, 3));
      EXPECT_LT(msm.run_mean_spread(), 1.01);
    }
  }
  EXPECT_TRUE(found_outlier_at_scale);
}

}  // namespace
}  // namespace omv
