// Differential property tests: the indexed hot-path queries
// (NoiseModel::preemption_delay, FreqModel::factor/mean_factor/
// elapsed_for_work) against the retained brute-force references
// (sim/reference.hpp) over randomized event/episode sets and windows —
// including overlapping episodes, window-boundary partial overlaps, dense
// streams (prefix-sum path) and empty streams.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/prefix_index.hpp"
#include "core/rng.hpp"
#include "sim/freq.hpp"
#include "sim/isa.hpp"
#include "sim/noise.hpp"
#include "sim/reference.hpp"
#include "topo/topology.hpp"

namespace omv::sim {
namespace {

/// Indexed results may differ from the sequential reference only where the
/// prefix-sum path engages; the compensated sums keep that drift within a
/// few ulps of the result.
constexpr double kRelTol = 1e-12;

void expect_close(double got, double want, const char* what, double t0,
                  double t1) {
  const double tol = kRelTol * std::max({1.0, std::abs(want)});
  EXPECT_NEAR(got, want, tol)
      << what << " window [" << t0 << ", " << t1 << ")";
}

TEST(HotpathDifferential, PreemptionDelayMatchesBruteForceAcrossDensities) {
  const topo::Machine machine = topo::Machine::vera();
  Rng windows(2024);
  for (const double rate : {0.0, 0.5, 40.0, 3000.0}) {
    NoiseConfig cfg = NoiseConfig::vera();
    cfg.kworker_rate_per_cpu = rate;
    NoiseModel model(machine, cfg);
    model.begin_run(7, machine.primary_threads());
    const double horizon = 2.0;
    model.materialize_to(horizon);

    for (int i = 0; i < 400; ++i) {
      const std::size_t h = windows.next_below(machine.n_threads());
      const double t0 = windows.uniform(0.0, 0.8 * horizon);
      const double t1 = t0 + windows.uniform(0.0, 0.4);
      const double got = model.preemption_delay(h, t0, t1);
      const double want =
          reference::preemption_delay(model, machine, h, t0, t1);
      expect_close(got, want, "preemption_delay", t0, t1);
    }
    // Degenerate and boundary windows.
    EXPECT_EQ(model.preemption_delay(0, 0.5, 0.5), 0.0);
    EXPECT_EQ(model.preemption_delay(0, 0.5, 0.4), 0.0);
    EXPECT_EQ(model.preemption_delay(machine.n_threads() + 3, 0.0, 1.0),
              0.0);
  }
}

TEST(HotpathDifferential, PreemptionDelayExactOnSparseStreams) {
  // Sparse streams stay on the sequential scan path, which must be
  // bit-identical to the brute-force reference — not merely close.
  const topo::Machine machine = topo::Machine::dardel();
  NoiseModel model(machine, NoiseConfig::dardel());
  model.begin_run(11, machine.primary_threads());
  model.materialize_to(3.0);
  Rng windows(77);
  for (int i = 0; i < 400; ++i) {
    const std::size_t h = windows.next_below(machine.n_threads());
    const double t0 = windows.uniform(0.0, 2.0);
    const double t1 = t0 + windows.uniform(0.0, 0.05);
    EXPECT_EQ(model.preemption_delay(h, t0, t1),
              reference::preemption_delay(model, machine, h, t0, t1));
  }
}

TEST(HotpathDifferential, MeanFactorMatchesBruteForceAcrossDensities) {
  const topo::Machine machine = topo::Machine::vera();
  Rng windows(31);
  // Sweep density and dip length: long dips at high rate produce heavily
  // *overlapping* episodes, exercising the boundary-straddler paths.
  const struct {
    double rate;
    double mean;
  } cases[] = {{0.0, 0.5}, {0.5, 0.6}, {30.0, 0.2}, {400.0, 0.003},
               {200.0, 0.5}};
  for (const auto& c : cases) {
    FreqConfig cfg = FreqConfig::vera_dippy();
    cfg.episode_rate = c.rate;
    cfg.episode_mean = c.mean;
    FreqModel model(machine, cfg);
    model.begin_run(13);
    model.set_activity_domains(machine.n_numa());
    const double horizon = 3.0;
    model.materialize_to(horizon);

    for (int i = 0; i < 300; ++i) {
      const std::size_t core = windows.next_below(machine.n_cores());
      const double t0 = windows.uniform(0.0, 0.8 * horizon);
      const double t1 = t0 + windows.uniform(0.0, 0.5);
      const double got = model.mean_factor(core, t0, t1);
      const double want = reference::mean_factor(model, core, t0, t1);
      expect_close(got, want, "mean_factor", t0, t1);
      EXPECT_EQ(model.factor(core, t0),
                reference::factor(model, core, t0))
          << "factor at t=" << t0;
    }
  }
}

TEST(HotpathDifferential, MeanFactorExactOnSparseDomains) {
  // Domains holding few episodes stay on the historical full scan —
  // bit-identical, not merely close.
  const topo::Machine machine = topo::Machine::vera();
  FreqConfig cfg = FreqConfig::vera_dippy();
  FreqModel model(machine, cfg);
  model.begin_run(5);
  model.set_activity_domains(2);
  model.materialize_to(10.0);
  Rng windows(19);
  for (int i = 0; i < 300; ++i) {
    const std::size_t core = windows.next_below(machine.n_cores());
    const double t0 = windows.uniform(0.0, 8.0);
    const double t1 = t0 + windows.uniform(0.0, 1.0);
    EXPECT_EQ(model.mean_factor(core, t0, t1),
              reference::mean_factor(model, core, t0, t1));
  }
}

TEST(HotpathDifferential, MeanFactorMatchesUnderRunCap) {
  // The capped base uses the second weight index (run_cap_depth-relative
  // weights, including depth > base episodes that clamp to zero weight).
  const topo::Machine machine = topo::Machine::vera();
  FreqConfig cfg = FreqConfig::dardel();
  cfg.run_cap_prob = 1.0;  // always capped
  cfg.episode_rate = 300.0;
  cfg.episode_mean = 0.004;
  cfg.depth_lo = 0.85;   // straddles run_cap_depth = 0.91: both weight
  cfg.depth_hi = 0.99;   // signs occur.
  FreqModel model(machine, cfg);
  model.begin_run(3);
  model.set_load_fraction(1.0);
  ASSERT_TRUE(model.run_capped());
  model.materialize_to(2.0);
  Rng windows(101);
  for (int i = 0; i < 300; ++i) {
    const std::size_t core = windows.next_below(machine.n_cores());
    const double t0 = windows.uniform(0.0, 1.5);
    const double t1 = t0 + windows.uniform(0.0, 0.3);
    const double got = model.mean_factor(core, t0, t1);
    const double want = reference::mean_factor(model, core, t0, t1);
    expect_close(got, want, "capped mean_factor", t0, t1);
  }
}

TEST(HotpathDifferential, ElapsedForWorkMatchesBruteForce) {
  const topo::Machine machine = topo::Machine::vera();
  for (const double rate : {0.0, 5.0, 500.0}) {
    FreqConfig cfg = FreqConfig::vera_dippy();
    cfg.episode_rate = rate;
    cfg.episode_mean = rate > 100.0 ? 0.003 : 0.1;
    FreqModel model(machine, cfg);
    model.begin_run(23);
    model.materialize_to(4.0);
    Rng windows(55);
    for (int i = 0; i < 200; ++i) {
      const std::size_t core = windows.next_below(machine.n_cores());
      const double t0 = windows.uniform(0.0, 2.0);
      const double work = windows.uniform(1e-7, 0.02);
      const double got = model.elapsed_for_work(core, t0, work);
      const double want = reference::elapsed_for_work(model, core, t0, work);
      const double tol = kRelTol * std::max(1.0, std::abs(want));
      EXPECT_NEAR(got, want, tol) << "elapsed_for_work t0=" << t0
                                  << " work=" << work << " rate=" << rate;
    }
  }
}

TEST(HotpathDifferential, MeanFactorGuardsEmptyCoreThreads) {
  // Regression: factor() always guarded cores with no HW threads (mapping
  // them to domain 0); mean_factor dereferenced CpuSet::first() on the
  // empty set and threw. Both now share the cached core→numa table.
  const topo::Machine machine = topo::Machine::vera();
  FreqModel model(machine, FreqConfig::vera_dippy());
  model.begin_run(9);
  model.materialize_to(2.0);
  const std::size_t ghost_core = machine.n_cores() + 7;
  ASSERT_TRUE(machine.core_threads(ghost_core).empty());
  double mean = 0.0;
  EXPECT_NO_THROW(mean = model.mean_factor(ghost_core, 0.25, 0.75));
  // A ghost core resolves to domain 0 — identical to a real domain-0 core.
  std::size_t domain0_core = 0;
  ASSERT_EQ(model.core_numa(domain0_core), 0u);
  EXPECT_EQ(mean, model.mean_factor(domain0_core, 0.25, 0.75));
  EXPECT_EQ(model.factor(ghost_core, 0.5), model.factor(domain0_core, 0.5));
}

TEST(HotpathDifferential, ReferenceQueriesThrowPastMaterializedHorizon) {
  // The reference queries are pure: reading past the materialized horizon
  // used to silently return a plausible answer over an event-free future
  // (the documented PR 3 footgun). Misuse now throws std::logic_error.
  const topo::Machine machine = topo::Machine::vera();
  NoiseModel noise(machine, NoiseConfig::vera());
  noise.begin_run(7, machine.primary_threads());
  noise.materialize_to(1.0);
  const double edge = noise.materialized_horizon();
  EXPECT_GE(edge, 1.0);
  EXPECT_NO_THROW(
      (void)reference::preemption_delay(noise, machine, 0, 0.1, edge));
  EXPECT_THROW((void)reference::preemption_delay(noise, machine, 0, 0.1,
                                                 edge + 0.5),
               std::logic_error);

  FreqModel freq(machine, FreqConfig::vera_dippy());
  freq.begin_run(7);
  freq.materialize_to(1.0);
  const double fedge = freq.materialized_horizon();
  EXPECT_NO_THROW((void)reference::mean_factor(freq, 0, 0.1, fedge));
  EXPECT_THROW((void)reference::mean_factor(freq, 0, 0.1, fedge + 0.5),
               std::logic_error);
  EXPECT_THROW((void)reference::factor(freq, 0, fedge + 0.5),
               std::logic_error);
  // The degenerate-window early path still answers (it reads t0 only).
  EXPECT_NO_THROW((void)reference::mean_factor(freq, 0, 0.5, 0.5));
  // The indexed production queries self-materialize and stay unaffected.
  EXPECT_NO_THROW((void)noise.preemption_delay(0, 0.1, edge + 2.0));
  EXPECT_NO_THROW((void)freq.mean_factor(0, 0.1, fedge + 2.0));
}

// ---------------------------------------------------------------------
// Batched-query fuzz rig: seeded density sweep, every window answered by
// the brute-force reference, the per-call indexed path, and the batched
// path under every ISA this host can dispatch to. The scalar batch must
// reproduce the per-call results bit for bit (including lazy
// materialization order); wider ISAs may reassociate within-window sums,
// bounded by kRelTol.
// ---------------------------------------------------------------------

/// RAII pin of the batched-kernel dispatch for one test scope.
class IsaGuard {
 public:
  explicit IsaGuard(Isa isa) { force_isa(isa); }
  ~IsaGuard() { reset_isa(); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;
};

/// One fuzzed window set: mostly random windows, salted with the
/// degenerate shapes the batched APIs must guard (empty window, inverted
/// window, out-of-range place, and windows straddling the materialized
/// horizon so the batch itself drives lazy extension).
struct FuzzWindows {
  std::vector<std::size_t> where;
  std::vector<double> t0, t1;

  FuzzWindows(std::uint64_t seed, std::size_t n_places, double horizon,
              double max_len) {
    Rng rng(seed);
    for (int i = 0; i < 160; ++i) {
      where.push_back(rng.next_below(n_places));
      const double a = rng.uniform(0.0, 0.9 * horizon);
      t0.push_back(a);
      t1.push_back(a + rng.uniform(0.0, max_len));
    }
    // Degenerate shapes, interleaved mid-sequence so the lazy
    // materialization order is exercised around them.
    add(0, 0.5 * horizon, 0.5 * horizon);            // empty window
    add(0, 0.5 * horizon, 0.4 * horizon);            // inverted window
    add(n_places + 5, 0.1 * horizon, 0.6 * horizon); // out-of-range place
    add(1 % n_places, 0.95 * horizon, 1.4 * horizon); // straddles horizon
    add(0, 1.45 * horizon, 1.5 * horizon);            // fully past horizon
  }

  void add(std::size_t w, double a, double b) {
    where.push_back(w);
    t0.push_back(a);
    t1.push_back(b);
  }

  [[nodiscard]] std::size_t size() const { return t0.size(); }
};

TEST(HotpathDifferential, BatchedPreemptionDelayMatchesPerCallPerIsa) {
  const topo::Machine machine = topo::Machine::vera();
  // Density sweep: empty stream, sparse (some threads hold 0–1 events),
  // mid, and dense enough to cross the prefix cutover.
  for (const double rate : {0.0, 0.4, 60.0, 6000.0}) {
    NoiseConfig cfg = NoiseConfig::vera();
    cfg.kworker_rate_per_cpu = rate;
    const double horizon = 1.0;
    const FuzzWindows w(9000 + static_cast<std::uint64_t>(rate),
                        machine.n_threads(), horizon, 0.3);

    // Per-call oracle on its own model instance: the batch must reproduce
    // this stream *content* too, so each run starts from the same seed and
    // materializes lazily in the same window order.
    NoiseModel per_call(machine, cfg);
    per_call.begin_run(3, machine.primary_threads());
    per_call.materialize_to(horizon);
    std::vector<double> want(w.size());
    for (std::size_t k = 0; k < w.size(); ++k) {
      want[k] = per_call.preemption_delay(w.where[k], w.t0[k], w.t1[k]);
    }

    for (const Isa isa : available_isas()) {
      IsaGuard guard(isa);
      NoiseModel batched(machine, cfg);
      batched.begin_run(3, machine.primary_threads());
      batched.materialize_to(horizon);
      std::vector<double> got(w.size());
      batched.preemption_delay_batch(w.where, w.t0, w.t1, got);
      for (std::size_t k = 0; k < w.size(); ++k) {
        if (isa == Isa::scalar) {
          EXPECT_EQ(got[k], want[k])
              << "scalar batch vs per-call, rate=" << rate
              << " window " << k;
        } else {
          expect_close(got[k], want[k], isa_name(isa), w.t0[k], w.t1[k]);
        }
      }
      // The batch's lazy extensions must leave the same stream content as
      // the per-call sequence (shared-RNG interleave order).
      ASSERT_EQ(batched.n_event_streams(), per_call.n_event_streams());
      for (std::size_t h = 0; h < per_call.n_event_streams(); ++h) {
        ASSERT_EQ(batched.event_times(h).size(),
                  per_call.event_times(h).size())
            << "stream content diverged on thread " << h;
      }
    }

    // Reference answers over the now fully materialized oracle stream.
    for (std::size_t k = 0; k < w.size(); ++k) {
      if (w.where[k] >= machine.n_threads() || w.t1[k] <= w.t0[k]) continue;
      expect_close(
          want[k],
          reference::preemption_delay(per_call, machine, w.where[k],
                                      w.t0[k], w.t1[k]),
          "reference", w.t0[k], w.t1[k]);
    }
  }
}

TEST(HotpathDifferential, BatchedFreqQueriesMatchPerCallPerIsa) {
  const topo::Machine machine = topo::Machine::vera();
  const struct {
    double rate;
    double mean;
  } cases[] = {{0.0, 0.1}, {0.3, 0.4}, {25.0, 0.05}, {2500.0, 0.002}};
  for (const auto& c : cases) {
    FreqConfig cfg = FreqConfig::vera_dippy();
    cfg.episode_rate = c.rate;
    cfg.episode_mean = c.mean;
    const double horizon = 1.0;
    const FuzzWindows w(7100 + static_cast<std::uint64_t>(c.rate),
                        machine.n_cores(), horizon, 0.4);
    std::vector<double> work(w.size());
    Rng wrng(31337);
    for (auto& v : work) v = wrng.uniform(0.0, 5e-3);
    work[3] = 0.0;  // degenerate: zero work must answer 0 elapsed.

    FreqModel per_call(machine, cfg);
    per_call.begin_run(17);
    per_call.materialize_to(horizon);
    std::vector<double> want_mf(w.size()), want_ew(w.size());
    // Two separate passes, matching the batch call order: the bit-identity
    // contract is "one batch call == the same per-call sequence", and an
    // interleaved oracle would materialize episodes at different points,
    // flipping the scan/prefix cutover (ULP-visible) for some windows.
    for (std::size_t k = 0; k < w.size(); ++k) {
      want_mf[k] = per_call.mean_factor(w.where[k], w.t0[k], w.t1[k]);
    }
    for (std::size_t k = 0; k < w.size(); ++k) {
      want_ew[k] = per_call.elapsed_for_work(w.where[k], w.t0[k], work[k]);
    }

    for (const Isa isa : available_isas()) {
      IsaGuard guard(isa);
      FreqModel batched(machine, cfg);
      batched.begin_run(17);
      batched.materialize_to(horizon);
      std::vector<double> got_mf(w.size()), got_ew(w.size());
      batched.mean_factor_batch(w.where, w.t0, w.t1, got_mf);
      batched.elapsed_for_work_batch(w.where, w.t0, work, got_ew);
      for (std::size_t k = 0; k < w.size(); ++k) {
        if (isa == Isa::scalar) {
          EXPECT_EQ(got_mf[k], want_mf[k])
              << "scalar mean_factor_batch, rate=" << c.rate
              << " window " << k;
          EXPECT_EQ(got_ew[k], want_ew[k])
              << "scalar elapsed_for_work_batch, rate=" << c.rate
              << " window " << k;
        } else {
          expect_close(got_mf[k], want_mf[k], isa_name(isa), w.t0[k],
                       w.t1[k]);
          expect_close(got_ew[k], want_ew[k], isa_name(isa), w.t0[k],
                       w.t1[k]);
        }
      }
      EXPECT_EQ(got_ew[3], 0.0);
    }

    // Reference sweep over the materialized oracle.
    for (std::size_t k = 0; k < w.size(); ++k) {
      if (w.t1[k] > per_call.materialized_horizon() ||
          w.t0[k] > per_call.materialized_horizon()) {
        continue;
      }
      expect_close(want_mf[k],
                   reference::mean_factor(per_call, w.where[k], w.t0[k],
                                          w.t1[k]),
                   "reference mean_factor", w.t0[k], w.t1[k]);
    }
  }
}

TEST(HotpathDifferential, BatchedQueriesRejectMismatchedSpans) {
  const topo::Machine machine = topo::Machine::vera();
  NoiseModel noise(machine, NoiseConfig::vera());
  noise.begin_run(1, machine.primary_threads());
  std::vector<std::size_t> h(4);
  std::vector<double> a(4), b(3), out(4);
  EXPECT_THROW(noise.preemption_delay_batch(h, a, b, out),
               std::invalid_argument);
  FreqModel freq(machine, FreqConfig::vera_dippy());
  freq.begin_run(1);
  EXPECT_THROW(freq.mean_factor_batch(h, a, b, out), std::invalid_argument);
  EXPECT_THROW(freq.elapsed_for_work_batch(h, b, a, out),
               std::invalid_argument);
}

TEST(HotpathDifferential, ForceIsaRejectsUnsupportedAndResets) {
  // force_isa must refuse levels the host cannot run (the differential
  // rig iterates available_isas(), so this is its safety net), and
  // reset_isa must restore env/auto resolution.
  const std::vector<Isa> avail = available_isas();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), Isa::scalar);
  {
    IsaGuard guard(Isa::scalar);
    EXPECT_EQ(active_isa(), Isa::scalar);
  }
  if (!isa_supported(Isa::avx512)) {
    EXPECT_THROW(force_isa(Isa::avx512), std::invalid_argument);
  }
  Isa parsed = Isa::scalar;
  EXPECT_TRUE(parse_isa("avx2", parsed));
  EXPECT_EQ(parsed, Isa::avx2);
  EXPECT_TRUE(parse_isa("avx512f", parsed));
  EXPECT_EQ(parsed, Isa::avx512);
  EXPECT_FALSE(parse_isa("neon", parsed));
}

TEST(HotpathDifferential, NoiseEventsStaySortedAcrossExtensions) {
  const topo::Machine machine = topo::Machine::vera();
  NoiseConfig cfg = NoiseConfig::vera();
  cfg.kworker_rate_per_cpu = 200.0;
  NoiseModel model(machine, cfg);
  model.begin_run(17, machine.primary_threads());
  // Force many incremental horizon extensions.
  for (double t = 0.05; t < 3.0; t += 0.05) model.materialize_to(t);
  for (std::size_t h = 0; h < model.n_event_streams(); ++h) {
    const auto times = model.event_times(h);
    for (std::size_t k = 1; k < times.size(); ++k) {
      ASSERT_LE(times[k - 1], times[k]);
    }
  }
}

TEST(PrefixSum, RangeMatchesDirectSummation) {
  stats::PrefixSum ps;
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.uniform(0.0, 1e-3));
    ps.append(xs.back());
  }
  ASSERT_EQ(ps.size(), xs.size());
  Rng w(4);
  for (int q = 0; q < 200; ++q) {
    const std::size_t i = w.next_below(xs.size());
    const std::size_t j = i + w.next_below(xs.size() - i + 1);
    // Reference in extended precision: a plain double loop would itself
    // carry ~n·eps error — more than the compensated index under test.
    long double direct = 0.0L;
    for (std::size_t k = i; k < j; ++k) direct += xs[k];
    const double want = static_cast<double>(direct);
    EXPECT_NEAR(ps.range(i, j), want,
                4e-16 * std::max(1.0, std::abs(want)));
  }
  EXPECT_EQ(ps.range(0, 0), 0.0);
  ps.clear();
  EXPECT_EQ(ps.size(), 0u);
  EXPECT_EQ(ps.total(), 0.0);
}

TEST(PrefixSum, StaysConditionedOnLongStreams) {
  // The motivating failure mode: narrow windows deep into a long stream.
  // A plain running-sum difference loses ~eps·prefix absolute accuracy;
  // the compensated pairs must stay relative to the *range*.
  stats::PrefixSum ps;
  std::vector<double> xs;
  Rng rng(9);
  for (int i = 0; i < 200000; ++i) {
    xs.push_back(rng.uniform(0.9e-4, 1.1e-4));
    ps.append(xs.back());
  }
  for (std::size_t i : {std::size_t{199900}, std::size_t{100000}}) {
    long double direct = 0.0L;
    for (std::size_t k = i; k < i + 3; ++k) direct += xs[k];
    const double want = static_cast<double>(direct);
    EXPECT_NEAR(ps.range(i, i + 3), want, 1e-15 * want);
  }
}

}  // namespace
}  // namespace omv::sim
