// Tests for bench_suite/stream_sim: BabelStream on the simulator.

#include "bench_suite/stream_sim.hpp"

#include <gtest/gtest.h>

namespace omv::bench {
namespace {

ompsim::TeamConfig team_cfg(std::size_t threads,
                            topo::ProcBind bind = topo::ProcBind::close) {
  ompsim::TeamConfig cfg;
  cfg.n_threads = threads;
  cfg.bind = bind;
  return cfg;
}

TEST(StreamKernels, NamesAndTraffic) {
  EXPECT_EQ(all_stream_kernels().size(), 5u);
  EXPECT_STREQ(stream_kernel_name(StreamKernel::triad), "triad");
  // add/triad move 3 streams, copy/mul/dot 2.
  EXPECT_GT(stream_bytes_per_elem(StreamKernel::add),
            stream_bytes_per_elem(StreamKernel::copy));
  EXPECT_DOUBLE_EQ(stream_bytes_per_elem(StreamKernel::triad),
                   stream_bytes_per_elem(StreamKernel::add));
}

TEST(SimStream, MoreThreadsNeverSlower) {
  // Fig. 2: execution time decreases (or saturates) with thread count.
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::ideal());
  double prev = 1e300;
  for (std::size_t t : {2u, 8u, 32u, 128u}) {
    SimStream st(s, team_cfg(t));
    ompsim::SimTeam team(s, team_cfg(t), 1);
    team.begin_run(1);
    const double kt = st.kernel_time_s(team, StreamKernel::triad);
    EXPECT_LE(kt, prev * 1.02) << t;
    prev = kt;
  }
}

TEST(SimStream, TriadSlowerThanCopy) {
  // 24 vs 16 bytes per element.
  sim::Simulator s(topo::Machine::vera(), sim::SimConfig::ideal());
  SimStream st(s, team_cfg(8));
  ompsim::SimTeam team(s, team_cfg(8), 1);
  team.begin_run(1);
  const double copy = st.kernel_time_s(team, StreamKernel::copy);
  const double triad = st.kernel_time_s(team, StreamKernel::triad);
  EXPECT_GT(triad, copy);
}

TEST(SimStream, DotAddsReductionCost) {
  sim::Simulator s(topo::Machine::vera(), sim::SimConfig::ideal());
  SimStream st(s, team_cfg(8));
  ompsim::SimTeam t1(s, team_cfg(8), 1);
  t1.begin_run(1);
  const double dot = st.kernel_time_s(t1, StreamKernel::dot);
  ompsim::SimTeam t2(s, team_cfg(8), 1);
  t2.begin_run(1);
  const double copy = st.kernel_time_s(t2, StreamKernel::copy);
  EXPECT_GT(dot, copy);  // same traffic + reduction tree
}

TEST(SimStream, RunKernelMinAvgMaxOrdering) {
  sim::Simulator s(topo::Machine::vera(), sim::SimConfig::vera());
  SimStream st(s, team_cfg(8));
  ompsim::SimTeam team(s, team_cfg(8), 1);
  team.begin_run(7);
  const auto r = st.run_kernel(team, StreamKernel::add, 20);
  EXPECT_LE(r.min_s, r.avg_s);
  EXPECT_LE(r.avg_s, r.max_s);
  EXPECT_GT(r.min_s, 0.0);
  EXPECT_LE(r.norm_min(), 1.0);
  EXPECT_GE(r.norm_max(), 1.0);
}

TEST(SimStream, ZeroRepsSafe) {
  sim::Simulator s(topo::Machine::vera(), sim::SimConfig::ideal());
  SimStream st(s, team_cfg(4));
  ompsim::SimTeam team(s, team_cfg(4), 1);
  team.begin_run(1);
  const auto r = st.run_kernel(team, StreamKernel::copy, 0);
  EXPECT_EQ(r.avg_s, 0.0);
}

TEST(SimStream, PinningTightensNormalizedSpread) {
  // Fig. 4 third column: unpinned BabelStream shows a much wider
  // min/max spread than pinned.
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::dardel());
  ExperimentSpec spec;
  spec.runs = 5;
  spec.reps = 20;
  spec.seed = 17;

  SimStream pinned(s, team_cfg(128, topo::ProcBind::close));
  const auto mp = pinned.run_protocol(StreamKernel::triad, spec);

  SimStream unpinned(s, team_cfg(128, topo::ProcBind::none));
  const auto mu = unpinned.run_protocol(StreamKernel::triad, spec);

  const auto sp = mp.pooled_summary();
  const auto su = mu.pooled_summary();
  EXPECT_LT(sp.norm_max() - sp.norm_min(), su.norm_max() - su.norm_min());
}

TEST(SimStream, ProtocolDeterministic) {
  sim::Simulator s1(topo::Machine::vera(), sim::SimConfig::vera());
  sim::Simulator s2(topo::Machine::vera(), sim::SimConfig::vera());
  ExperimentSpec spec;
  spec.runs = 2;
  spec.reps = 5;
  spec.seed = 9;
  SimStream a(s1, team_cfg(8));
  SimStream b(s2, team_cfg(8));
  const auto ma = a.run_protocol(StreamKernel::mul, spec);
  const auto mb = b.run_protocol(StreamKernel::mul, spec);
  EXPECT_DOUBLE_EQ(ma.pooled_summary().mean, mb.pooled_summary().mean);
}

TEST(SimStream, BandwidthPlausible) {
  // 128 pinned Dardel threads on triad: total bandwidth should land in the
  // hundreds of GB/s (8 domains x ~48 GB/s).
  sim::Simulator s(topo::Machine::dardel(), sim::SimConfig::ideal());
  SimStream st(s, team_cfg(128));
  ompsim::SimTeam team(s, team_cfg(128), 1);
  team.begin_run(1);
  const double t = st.kernel_time_s(team, StreamKernel::triad);
  const double bytes = static_cast<double>(st.array_elems()) *
                       stream_bytes_per_elem(StreamKernel::triad);
  const double gbps = bytes / t / 1e9;
  EXPECT_GT(gbps, 150.0);
  EXPECT_LT(gbps, 500.0);
}

}  // namespace
}  // namespace omv::bench
