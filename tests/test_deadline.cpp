// Task-scoped cell deadlines and the campaign CellPool.
//
// The campaign cell scheduler runs many supervised cells concurrently in
// one process, so the --cell-timeout deadline must be task-scoped: each
// thread arms its own slot, worker threads adopt the submitting task's
// slot, and no cell can trip or disarm another cell's budget. These are
// the regression tests for the process-global slot the scheduler replaced
// (one atomic for the whole process — any concurrent cell rearming it
// would shorten or erase its neighbour's budget).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/deadline.hpp"
#include "core/parallel_runner.hpp"

namespace {

using namespace std::chrono_literals;
using omv::CellPool;
using omv::core::adopt_cell_deadline;
using omv::core::arm_cell_deadline;
using omv::core::cell_deadline_exceeded;
using omv::core::CellTimeout;
using omv::core::check_cell_deadline;
using omv::core::clear_cell_deadline;
using omv::core::current_cell_deadline;
using omv::core::interruptible_stall;

TEST(Deadline, DisarmedByDefault) {
  EXPECT_EQ(current_cell_deadline(), nullptr);
  EXPECT_FALSE(cell_deadline_exceeded());
  EXPECT_NO_THROW(check_cell_deadline());
}

TEST(Deadline, ArmTripClearOnOneThread) {
  arm_cell_deadline(1ms);
  EXPECT_NE(current_cell_deadline(), nullptr);
  std::this_thread::sleep_for(5ms);
  EXPECT_TRUE(cell_deadline_exceeded());
  EXPECT_THROW(check_cell_deadline(), CellTimeout);
  clear_cell_deadline();
  EXPECT_EQ(current_cell_deadline(), nullptr);
  EXPECT_NO_THROW(check_cell_deadline());
}

TEST(Deadline, ZeroBudgetDisarms) {
  arm_cell_deadline(50ms);
  ASSERT_NE(current_cell_deadline(), nullptr);
  arm_cell_deadline(0ms);
  EXPECT_EQ(current_cell_deadline(), nullptr);
  EXPECT_FALSE(cell_deadline_exceeded());
}

// The core regression: two overlapping cells with different budgets on
// different threads. Under the old process-global slot, cell B's 10s
// re-arm would erase cell A's 20ms budget (A never times out) and A's
// expiry could trip B. Task-scoped slots keep the budgets independent.
TEST(Deadline, OverlappingCellsKeepIndependentBudgets) {
  std::atomic<bool> a_armed{false};
  std::atomic<bool> b_armed{false};
  std::atomic<bool> a_timed_out{false};
  std::atomic<bool> b_timed_out{false};

  std::thread cell_a([&] {
    arm_cell_deadline(20ms);
    a_armed.store(true);
    while (!b_armed.load()) std::this_thread::sleep_for(1ms);
    // B re-armed its own (much longer) budget after A armed; A's 20ms
    // budget must still trip.
    try {
      interruptible_stall(500ms);
    } catch (const CellTimeout&) {
      a_timed_out.store(true);
    }
    clear_cell_deadline();
  });
  std::thread cell_b([&] {
    while (!a_armed.load()) std::this_thread::sleep_for(1ms);
    arm_cell_deadline(10'000ms);
    b_armed.store(true);
    // Wait past A's expiry (and past A's clear): B's own budget is huge
    // and must never trip, even while A's slot expires and disarms.
    std::this_thread::sleep_for(60ms);
    try {
      check_cell_deadline();
    } catch (const CellTimeout&) {
      b_timed_out.store(true);
    }
    clear_cell_deadline();
  });
  cell_a.join();
  cell_b.join();
  EXPECT_TRUE(a_timed_out.load()) << "cell A's 20ms budget never tripped";
  EXPECT_FALSE(b_timed_out.load()) << "cell B tripped a deadline it "
                                      "never exceeded";
}

// Shard workers adopt the submitting cell's slot: the adopted thread
// observes the owner's budget, and clearing on the worker detaches the
// worker without disarming the owner.
TEST(Deadline, AdoptionSharesTheOwnersBudget) {
  arm_cell_deadline(5ms);
  omv::core::CellDeadline* owner = current_cell_deadline();
  ASSERT_NE(owner, nullptr);

  std::atomic<bool> worker_saw_timeout{false};
  std::thread worker([&] {
    EXPECT_EQ(current_cell_deadline(), nullptr);
    omv::core::CellDeadline* prev = adopt_cell_deadline(owner);
    EXPECT_EQ(prev, nullptr);
    EXPECT_EQ(current_cell_deadline(), owner);
    std::this_thread::sleep_for(10ms);
    worker_saw_timeout.store(cell_deadline_exceeded());
    // Detaching the worker must not touch the owner's armed value.
    adopt_cell_deadline(prev);
    EXPECT_EQ(current_cell_deadline(), nullptr);
  });
  worker.join();
  EXPECT_TRUE(worker_saw_timeout.load());
  // The owner still observes its own (expired) deadline.
  EXPECT_TRUE(cell_deadline_exceeded());
  clear_cell_deadline();
}

TEST(CellPool, RunsTasksAndReturnsResults) {
  CellPool pool(2);
  EXPECT_EQ(pool.workers(), 2u);
  std::atomic<int> sum{0};
  pool.run(0.0, [&] { sum += 7; });
  pool.run(1.0, [&] { sum += 35; });
  EXPECT_EQ(sum.load(), 42);
}

TEST(CellPool, AtLeastOneWorker) {
  CellPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
  bool ran = false;
  pool.run(0.0, [&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(CellPool, PropagatesExceptionsToTheSubmitter) {
  CellPool pool(1);
  EXPECT_THROW(
      pool.run(0.0, [] { throw std::runtime_error("cell exploded"); }),
      std::runtime_error);
  // The pool survives a throwing task and keeps serving.
  bool ran = false;
  pool.run(0.0, [&] { ran = true; });
  EXPECT_TRUE(ran);
}

// Higher priority dispatches first; ties break by submission order. A
// single worker plus pre-queued tasks makes dispatch order observable.
TEST(CellPool, DispatchesHighestPriorityFirstThenSubmissionOrder) {
  CellPool pool(1);
  std::vector<int> order;
  std::mutex order_mutex;
  const auto record = [&](int id) {
    std::lock_guard lock(order_mutex);
    order.push_back(id);
  };

  // Block the single worker so the remaining submissions queue up.
  std::atomic<bool> release{false};
  std::thread gate([&] {
    pool.run(100.0, [&] {
      while (!release.load()) std::this_thread::sleep_for(1ms);
    });
  });
  // Submitters block inside run(); queue from their own threads.
  std::atomic<int> queued{0};
  const auto submit = [&](double prio, int id) {
    return std::thread([&, prio, id] {
      ++queued;
      pool.run(prio, [&, id] { record(id); });
    });
  };
  std::thread t1 = submit(1.0, 1);
  while (queued.load() < 1) std::this_thread::sleep_for(1ms);
  std::this_thread::sleep_for(5ms);  // let t1 actually enqueue
  std::thread t2 = submit(5.0, 2);
  std::this_thread::sleep_for(5ms);
  std::thread t3 = submit(5.0, 3);
  std::this_thread::sleep_for(5ms);
  release.store(true);
  gate.join();
  t1.join();
  t2.join();
  t3.join();
  // 2 and 3 share the top priority (submission order breaks the tie);
  // 1 dispatches last.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(order[2], 1);
}

// A supervised cell running on a pool worker arms the worker's own slot;
// concurrent cells on different workers keep independent budgets even
// inside the pool.
TEST(CellPool, WorkersCarryIndependentDeadlines) {
  CellPool pool(2);
  std::atomic<bool> short_armed{false};
  std::atomic<bool> long_armed{false};
  std::atomic<bool> short_tripped{false};
  std::atomic<bool> long_tripped{false};

  std::thread a([&] {
    pool.run(0.0, [&] {
      arm_cell_deadline(10ms);
      short_armed.store(true);
      while (!long_armed.load()) std::this_thread::sleep_for(1ms);
      try {
        interruptible_stall(500ms);
      } catch (const CellTimeout&) {
        short_tripped.store(true);
      }
      clear_cell_deadline();
    });
  });
  std::thread b([&] {
    pool.run(0.0, [&] {
      while (!short_armed.load()) std::this_thread::sleep_for(1ms);
      arm_cell_deadline(10'000ms);
      long_armed.store(true);
      std::this_thread::sleep_for(40ms);
      try {
        check_cell_deadline();
      } catch (const CellTimeout&) {
        long_tripped.store(true);
      }
      clear_cell_deadline();
    });
  });
  a.join();
  b.join();
  EXPECT_TRUE(short_tripped.load());
  EXPECT_FALSE(long_tripped.load());
}

}  // namespace
