// Unit tests for sim/simulator: the exec primitive and config presets.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace omv::sim {
namespace {

TEST(SimConfig, Presets) {
  const auto d = SimConfig::dardel();
  const auto v = SimConfig::vera();
  const auto i = SimConfig::ideal();
  EXPECT_NE(d.costs.sched_grab_contention, v.costs.sched_grab_contention);
  EXPECT_EQ(i.noise.daemon_rate, 0.0);
  EXPECT_EQ(i.freq.episode_rate, 0.0);
}

TEST(Simulator, IdealExecIsExactWork) {
  Simulator s(topo::Machine::vera(), SimConfig::ideal());
  s.begin_run(1, topo::CpuSet::range(0, 4));
  const double done = s.exec(0, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(done, 2.5);
}

TEST(Simulator, ZeroWorkIsInstant) {
  Simulator s(topo::Machine::vera(), SimConfig::ideal());
  s.begin_run(1, topo::CpuSet::range(0, 4));
  EXPECT_DOUBLE_EQ(s.exec(0, 3.0, 0.0), 3.0);
}

TEST(Simulator, WorkScaleApplied) {
  auto cfg = SimConfig::ideal();
  cfg.costs.work_scale = 1.07;
  Simulator s(topo::Machine::vera(), cfg);
  s.begin_run(1, topo::CpuSet::range(0, 4));
  EXPECT_NEAR(s.exec(0, 0.0, 1.0), 1.07, 1e-12);
}

/// 1 P-core (SMT-2) + 1 E-core (SMT-1): os 0 = P primary, os 1 = E,
/// os 2 = P second sibling.
topo::Machine tiny_hybrid() {
  std::vector<topo::CoreClass> classes{{"P", 2.5, 3.8}, {"E", 1.8, 2.6}};
  std::vector<topo::HwThread> t(3);
  t[0] = {0, 0, 0, 0, 0, 0};
  t[1] = {1, 1, 1, 0, 0, 1};
  t[2] = {2, 0, 0, 0, 1, 0};
  return topo::Machine("hybrid", std::move(t), std::move(classes));
}

TEST(Simulator, ClassWorkRateStretchesEfficiencyCores) {
  auto cfg = SimConfig::ideal();
  cfg.class_work_rate = {1.0, 0.5};  // E cores at half speed
  Simulator s(tiny_hybrid(), cfg);
  s.begin_run(1, topo::CpuSet::range(0, 2));
  const double on_p = s.exec(0, 0.0, 1.0);
  const double on_e = s.exec(1, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(on_p, 1.0);
  EXPECT_DOUBLE_EQ(on_e, 2.0);
  // The P sibling shares core 0's class rate.
  EXPECT_DOUBLE_EQ(s.exec(2, 0.0, 1.0), 1.0);
}

TEST(Simulator, EmptyClassWorkRateIsNominalEverywhere) {
  Simulator s(tiny_hybrid(), SimConfig::ideal());
  s.begin_run(1, topo::CpuSet::range(0, 2));
  EXPECT_DOUBLE_EQ(s.exec(1, 0.0, 1.0), 1.0);
}

TEST(Simulator, RejectsNonPositiveClassWorkRate) {
  auto cfg = SimConfig::ideal();
  cfg.class_work_rate = {1.0, 0.0};
  EXPECT_THROW(Simulator(tiny_hybrid(), cfg), std::invalid_argument);
}

TEST(Simulator, OversubscriptionShareScalesTime) {
  Simulator s(topo::Machine::vera(), SimConfig::ideal());
  s.begin_run(1, topo::CpuSet::range(0, 4));
  const double solo = s.exec(0, 0.0, 1.0, 1);
  const double shared = s.exec(0, 0.0, 1.0, 2);
  EXPECT_NEAR(shared, solo * 2.0, 1e-9);
}

TEST(Simulator, SmtBusySlowsExecution) {
  auto cfg = SimConfig::ideal();
  cfg.costs.smt_throughput = 0.8;
  cfg.costs.smt_jitter = 0.0;
  Simulator s(topo::Machine::dardel(), cfg);
  s.begin_run(1, topo::CpuSet::range(0, 8));
  const double solo = s.exec(0, 0.0, 1.0, 1, false);
  const double smt = s.exec(0, 0.0, 1.0, 1, true);
  EXPECT_NEAR(smt, solo / 0.8, 1e-9);
}

TEST(Simulator, NoiseExtendsExecution) {
  auto cfg = SimConfig::ideal();
  cfg.noise.tick_duration = 10e-6;
  cfg.noise.tick_period = 0.001;  // heavy tick load: 1% of time
  Simulator s(topo::Machine::vera(), cfg);
  s.begin_run(1, topo::CpuSet::range(0, 4));
  const double done = s.exec(0, 0.0, 1.0);
  EXPECT_GT(done, 1.005);
  EXPECT_LT(done, 1.05);
}

TEST(Simulator, FixedPointCatchesNoiseInExtension) {
  // Work of 1s with 1% tick load: the extension itself contains ticks.
  auto cfg = SimConfig::ideal();
  cfg.noise.tick_duration = 10e-6;
  cfg.noise.tick_period = 0.001;
  Simulator s(topo::Machine::vera(), cfg);
  s.begin_run(1, topo::CpuSet::range(0, 4));
  const double elapsed = s.exec(0, 0.0, 1.0) - 0.0;
  // Converged value ~ 1 / (1 - 0.01): the geometric series, not just 1.01.
  EXPECT_NEAR(elapsed, 1.0101, 0.002);
}

TEST(Simulator, DeterministicPerRunSeed) {
  Simulator a(topo::Machine::dardel(), SimConfig::dardel());
  Simulator b(topo::Machine::dardel(), SimConfig::dardel());
  a.begin_run(42, topo::CpuSet::range(0, 128));
  b.begin_run(42, topo::CpuSet::range(0, 128));
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a.exec(i, 0.0, 0.01), b.exec(i, 0.0, 0.01));
  }
}

TEST(Simulator, SmtThroughputSampleBounded) {
  Simulator s(topo::Machine::dardel(), SimConfig::dardel());
  s.begin_run(7, topo::CpuSet::range(0, 8));
  for (int i = 0; i < 1000; ++i) {
    const double v = s.sample_smt_throughput();
    EXPECT_GE(v, 0.35);
    EXPECT_LE(v, 0.95);
  }
}

}  // namespace
}  // namespace omv::sim
