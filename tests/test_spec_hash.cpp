// Unit tests for core/spec_hash: canonical keys, field aliasing defense,
// and hash stability.

#include "core/spec_hash.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace omv {
namespace {

TEST(SpecHash, Fnv1aKnownVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 12638187200555641996ull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(SpecHash, CanonicalStringIsLengthPrefixed) {
  SpecKey k;
  k.add("bench", "syncbench");
  EXPECT_EQ(k.canonical(), "5:bench=9:syncbench;");
}

TEST(SpecHash, AdjacentFieldsCannotAlias) {
  SpecKey a;
  a.add("ab", "c");
  SpecKey b;
  b.add("a", "bc");
  EXPECT_NE(a.canonical(), b.canonical());
  EXPECT_NE(a.hash64(), b.hash64());
}

TEST(SpecHash, FieldOrderMatters) {
  SpecKey a;
  a.add("x", std::uint64_t{1}).add("y", std::uint64_t{2});
  SpecKey b;
  b.add("y", std::uint64_t{2}).add("x", std::uint64_t{1});
  EXPECT_NE(a.hash64(), b.hash64());
}

TEST(SpecHash, DoublesAreExact) {
  SpecKey a;
  a.add("v", 0.1);
  SpecKey b;
  b.add("v", 0.1 + 1e-18);  // rounds to the same double
  SpecKey c;
  c.add("v", 0.2);
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_NE(a.canonical(), c.canonical());
}

TEST(SpecHash, AddSpecCoversProtocolParameters) {
  ExperimentSpec spec;
  spec.seed = 7;
  spec.runs = 10;
  spec.reps = 100;
  spec.warmup = 1;
  SpecKey a;
  a.add_spec(spec);
  spec.reps = 99;
  SpecKey b;
  b.add_spec(spec);
  EXPECT_NE(a.hash64(), b.hash64());
}

TEST(SpecHash, HexIsSixteenLowercaseDigits) {
  SpecKey k;
  k.add("bench", "syncbench");
  const auto h = k.hex();
  ASSERT_EQ(h.size(), 16u);
  for (char c : h) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
  // Stable across invocations (the cache's file names must not drift).
  SpecKey k2;
  k2.add("bench", "syncbench");
  EXPECT_EQ(k2.hex(), h);
}

}  // namespace
}  // namespace omv
