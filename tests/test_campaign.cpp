// Unit tests for the cli layer: option parsing, the harness registry and
// glob selection, the RunContext spec-hash result cache, and artifact
// determinism.

#include "cli/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cli/options.hpp"
#include "cli/registry.hpp"
#include "core/faultinject.hpp"
#include "scenario/registry.hpp"

namespace omv::cli {
namespace {

// ---------------------------------------------------------------- options

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return argv;
}

TEST(Options, ParsesAllFlags) {
  std::vector<std::string> args{"prog",   "--list", "--only",     "fig*",
                                "--jobs", "3",      "--scenario", "vera",
                                "--out",  "/tmp/x", "--scenarios"};
  auto argv = argv_of(args);
  const auto o = parse_options(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(o.list);
  EXPECT_TRUE(o.list_scenarios);
  ASSERT_EQ(o.only.size(), 1u);
  EXPECT_EQ(o.only[0], "fig*");
  EXPECT_EQ(o.jobs, 3u);
  ASSERT_EQ(o.scenarios.size(), 1u);
  EXPECT_EQ(o.scenarios[0], "vera");
  EXPECT_EQ(o.out_dir, "/tmp/x");
  EXPECT_TRUE(o.errors.empty());
}

TEST(Options, ScenarioEqualsFormAndEnvFallback) {
  std::vector<std::string> args{"prog", "--scenario=epyc-like"};
  auto argv = argv_of(args);
  const auto o = parse_options(static_cast<int>(argv.size()), argv.data());
  ASSERT_EQ(o.scenarios.size(), 1u);
  EXPECT_EQ(o.scenarios[0], "epyc-like");
  EXPECT_EQ(effective_scenario(o.scenarios[0]), "epyc-like");
  ::setenv("OMNIVAR_SCENARIO", "noisy-cloud", 1);
  EXPECT_EQ(effective_scenario(""), "noisy-cloud");
  EXPECT_EQ(effective_scenario("vera"), "vera");  // CLI wins
  ::unsetenv("OMNIVAR_SCENARIO");
  EXPECT_EQ(effective_scenario(""), "");
}

TEST(Options, EqualsFormAndRepeatedOnly) {
  std::vector<std::string> args{"prog", "--only=fig1", "--only=table*",
                                "--jobs=2", "--out=/tmp/y"};
  auto argv = argv_of(args);
  const auto o = parse_options(static_cast<int>(argv.size()), argv.data());
  ASSERT_EQ(o.only.size(), 2u);
  EXPECT_EQ(o.only[1], "table*");
  EXPECT_EQ(o.jobs, 2u);
  EXPECT_EQ(o.out_dir, "/tmp/y");
}

TEST(Options, MalformedAndUnknownArgumentsAreCollected) {
  std::vector<std::string> args{"prog", "--jobs", "-4", "--bogus",
                                "--only"};
  auto argv = argv_of(args);
  const auto o = parse_options(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(o.jobs, 0u);  // -4 rejected, not wrapped
  EXPECT_EQ(o.errors.size(), 3u);  // bad jobs, unknown, missing value
}

TEST(Options, ParsesSupervisionFlags) {
  std::vector<std::string> args{"prog",           "--retry-cells", "2",
                                "--cell-timeout", "1500",
                                "--fault-spec",   "cell_throw@3"};
  auto argv = argv_of(args);
  const auto o = parse_options(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(o.errors.empty());
  EXPECT_EQ(o.retry_cells, 2u);
  EXPECT_EQ(o.cell_timeout_ms, 1500u);
  EXPECT_EQ(o.fault_spec, "cell_throw@3");

  std::vector<std::string> bad{"prog", "--retry-cells=x",
                               "--cell-timeout=-5"};
  auto bargv = argv_of(bad);
  const auto b = parse_options(static_cast<int>(bargv.size()), bargv.data());
  EXPECT_EQ(b.errors.size(), 2u);
  EXPECT_EQ(b.retry_cells, 0u);
  EXPECT_EQ(b.cell_timeout_ms, 0u);
}

TEST(Options, SupervisionEnvFallbacks) {
  ::setenv("OMNIVAR_RETRY_CELLS", "4", 1);
  ::setenv("OMNIVAR_CELL_TIMEOUT_MS", "2500", 1);
  ::setenv("OMNIVAR_FAULT_SPEC", "enospc@1", 1);
  EXPECT_EQ(effective_retry_cells(0), 4u);
  EXPECT_EQ(effective_retry_cells(9), 9u);  // CLI wins
  EXPECT_EQ(effective_cell_timeout_ms(0), 2500u);
  EXPECT_EQ(effective_cell_timeout_ms(100), 100u);
  EXPECT_EQ(effective_fault_spec(""), "enospc@1");
  EXPECT_EQ(effective_fault_spec("cell_throw@1"), "cell_throw@1");
  ::unsetenv("OMNIVAR_RETRY_CELLS");
  ::unsetenv("OMNIVAR_CELL_TIMEOUT_MS");
  ::unsetenv("OMNIVAR_FAULT_SPEC");
  EXPECT_EQ(effective_retry_cells(0), 0u);
  EXPECT_EQ(effective_cell_timeout_ms(0), 0u);
  EXPECT_EQ(effective_fault_spec(""), "");
}

// --------------------------------------------------------------- registry

TEST(Registry, GlobMatch) {
  EXPECT_TRUE(glob_match("fig3", "fig3"));
  EXPECT_FALSE(glob_match("fig3", "fig31"));
  EXPECT_TRUE(glob_match("fig*", "fig31"));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("fig?", "fig7"));
  EXPECT_FALSE(glob_match("fig?", "fig"));
  EXPECT_TRUE(glob_match("*bench*", "ext_taskbench"));
  EXPECT_FALSE(glob_match("table*", "fig1"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

TEST(Registry, AddFindMatchAndDuplicateRejection) {
  Registry r;
  r.add({"fig2", "two", [](RunContext&) { return 0; }});
  r.add({"fig10", "ten", [](RunContext&) { return 0; }});
  r.add({"table1", "t1", [](RunContext&) { return 0; }});
  EXPECT_THROW(r.add({"fig2", "dup", [](RunContext&) { return 0; }}),
               std::invalid_argument);

  // Deterministic name-sorted listing regardless of insertion order.
  ASSERT_EQ(r.all().size(), 3u);
  EXPECT_EQ(r.all()[0].name, "fig10");
  EXPECT_EQ(r.all()[1].name, "fig2");
  EXPECT_EQ(r.all()[2].name, "table1");

  EXPECT_NE(r.find("table1"), nullptr);
  EXPECT_EQ(r.find("nope"), nullptr);

  const auto figs = r.match({"fig*"});
  ASSERT_EQ(figs.size(), 2u);
  EXPECT_EQ(r.match({}).size(), 3u);  // empty globs = everything
  EXPECT_TRUE(r.match({"zzz*"}).empty());
}

// ------------------------------------------------------------ run context

class CampaignCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("omnivar_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static ExperimentSpec small_spec() {
    ExperimentSpec spec;
    spec.runs = 2;
    spec.reps = 3;
    spec.warmup = 0;
    spec.seed = 11;
    return spec;
  }

  static RunMatrix make_matrix() {
    RunMatrix m("cell");
    m.add_run({1.0, 2.0, 3.0});
    m.add_run({4.0 / 3.0, 5.0, 6.0});
    return m;
  }

  std::string dir_;
};

TEST_F(CampaignCacheTest, SecondInvocationIsServedFromCache) {
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_matrix();
  };
  SpecKey key;
  key.add("bench", "fake");

  RunContext ctx1("testh", 1, dir_);
  const auto m1 = ctx1.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(ctx1.cache_misses(), 1u);
  EXPECT_EQ(ctx1.cache_hits(), 0u);

  RunContext ctx2("testh", 1, dir_);
  const auto m2 = ctx2.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 1);  // not recomputed
  EXPECT_EQ(ctx2.cache_hits(), 1u);
  ASSERT_EQ(m2.runs(), m1.runs());
  for (std::size_t r = 0; r < m1.runs(); ++r) {
    for (std::size_t k = 0; k < m1.run(r).size(); ++k) {
      EXPECT_EQ(m2.run(r)[k], m1.run(r)[k]);  // bit-identical
    }
  }
}

TEST_F(CampaignCacheTest, DifferentKeyOrHarnessOrSpecMisses) {
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_matrix();
  };
  SpecKey key;
  key.add("bench", "fake");
  {
    RunContext ctx("testh", 1, dir_);
    (void)ctx.protocol("cell", small_spec(), key, compute);
  }
  {
    SpecKey other;
    other.add("bench", "other");  // different config
    RunContext ctx("testh", 1, dir_);
    (void)ctx.protocol("cell", small_spec(), other, compute);
  }
  {
    RunContext ctx("otherh", 1, dir_);  // different harness
    (void)ctx.protocol("cell", small_spec(), key, compute);
  }
  {
    auto spec = small_spec();
    spec.seed = 12;  // different seed
    RunContext ctx("testh", 1, dir_);
    (void)ctx.protocol("cell", spec, key, compute);
  }
  EXPECT_EQ(computes, 4);
}

TEST_F(CampaignCacheTest, CorruptCsvOrKeyMismatchRecomputes) {
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_matrix();
  };
  SpecKey key;
  key.add("bench", "fake");
  RunContext ctx1("testh", 1, dir_);
  (void)ctx1.protocol("cell", small_spec(), key, compute);
  ASSERT_EQ(computes, 1);

  // Corrupt the stored CSV: the validated load must fall back to compute.
  const std::string cache = dir_ + "/cache";
  for (const auto& e : std::filesystem::directory_iterator(cache)) {
    if (e.path().extension() == ".csv") {
      std::ofstream f(e.path());
      f << "run,rep,time\n0,0,1.0,garbage\n";
    }
  }
  RunContext ctx2("testh", 1, dir_);
  (void)ctx2.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(ctx2.cache_hits(), 0u);

  // Healthy again after the recompute rewrote it.
  RunContext ctx3("testh", 1, dir_);
  (void)ctx3.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 2);

  // A stale .key (hash collision / hand-edited entry) must also recompute.
  for (const auto& e : std::filesystem::directory_iterator(cache)) {
    if (e.path().extension() == ".key") {
      std::ofstream f(e.path());
      f << "not-the-canonical-key";
    }
  }
  RunContext ctx4("testh", 1, dir_);
  (void)ctx4.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 3);
}

TEST_F(CampaignCacheTest, TruncatedButParseableCacheCsvRecomputes) {
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_matrix();
  };
  SpecKey key;
  key.add("bench", "fake");
  RunContext ctx1("testh", 1, dir_);
  (void)ctx1.protocol("cell", small_spec(), key, compute);
  ASSERT_EQ(computes, 1);

  // Rewrite the entry as a valid CSV with the right run count but too few
  // reps (an interrupted copy): the shape check must veto the hit.
  for (const auto& e :
       std::filesystem::directory_iterator(dir_ + "/cache")) {
    if (e.path().extension() == ".csv") {
      std::ofstream f(e.path());
      f << "run,rep,time\n# runs=2\n0,0,1.0\n0,1,2.0\n0,2,3.0\n1,0,4.0\n";
    }
  }
  RunContext ctx2("testh", 1, dir_);
  (void)ctx2.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(ctx2.cache_hits(), 0u);
}

TEST_F(CampaignCacheTest, ColdAndWarmMatricesHaveTheSameLabel) {
  SpecKey key;
  key.add("bench", "fake");
  RunContext ctx1("testh", 1, dir_);
  const auto cold =
      ctx1.protocol("cell", small_spec(), key, [] { return make_matrix(); });
  EXPECT_EQ(cold.label(), "cell");  // not make_matrix's internal label
  RunContext ctx2("testh", 1, dir_);
  const auto warm =
      ctx2.protocol("cell", small_spec(), key, [] { return make_matrix(); });
  EXPECT_EQ(warm.label(), cold.label());
}

TEST_F(CampaignCacheTest, SidecarVetoForcesRecompute) {
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_matrix();
  };
  SpecKey key;
  key.add("bench", "fake");
  bool sidecar_ok = false;
  const auto save = [](const std::string& stem) {
    std::ofstream f(stem + ".extra");
    f << "payload";
  };
  const auto load = [&](const std::string& stem) {
    std::ifstream f(stem + ".extra");
    return sidecar_ok && f.good();
  };
  RunContext ctx1("testh", 1, dir_);
  (void)ctx1.protocol("cell", small_spec(), key, compute, save, load);
  EXPECT_EQ(computes, 1);

  // load_extra returning false vetoes the hit.
  RunContext ctx2("testh", 1, dir_);
  (void)ctx2.protocol("cell", small_spec(), key, compute, save, load);
  EXPECT_EQ(computes, 2);

  sidecar_ok = true;
  RunContext ctx3("testh", 1, dir_);
  (void)ctx3.protocol("cell", small_spec(), key, compute, save, load);
  EXPECT_EQ(computes, 2);  // sidecar accepted: cache hit
  EXPECT_EQ(ctx3.cache_hits(), 1u);
}

TEST_F(CampaignCacheTest, NoOutDirDisablesCaching) {
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_matrix();
  };
  SpecKey key;
  key.add("bench", "fake");
  RunContext ctx("testh", 1, "");
  (void)ctx.protocol("cell", small_spec(), key, compute);
  (void)ctx.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 2);
  EXPECT_FALSE(ctx.caching());
}

TEST_F(CampaignCacheTest, ArtifactJsonIsDeterministicAndComplete) {
  const auto build = [&](RunContext& ctx) {
    SpecKey key;
    key.add("bench", "fake");
    (void)ctx.protocol("cell", small_spec(), key,
                       [] { return make_matrix(); });
    report::Series s("threads", {"a", "b"});
    s.add(1.0, {0.5, 1.0 / 3.0});
    // Silence the print during tests? The print goes to stdout; gtest
    // tolerates it and the byte-stability of the artifact is the point.
    ctx.series("main", s, 3);
    report::Table t({"k", "v"});
    t.add_row({"x", "1"});
    ctx.record_table("tbl", t);
    ctx.metric("speed", 2.5);
    ctx.verdict(true, "shape holds");
  };
  RunContext ctx1("testh", 1, dir_);
  build(ctx1);
  const auto a1 = ctx1.artifact_json("desc");

  RunContext ctx2("testh", 1, dir_);  // second pass: cells from cache
  build(ctx2);
  const auto a2 = ctx2.artifact_json("desc");
  EXPECT_EQ(a1, a2);  // byte-stable across cached re-runs

  EXPECT_NE(a1.find("\"schema\": \"omnivar-artifact-v2\""),
            std::string::npos);
  EXPECT_NE(a1.find("\"scenario\": null"), std::string::npos);
  EXPECT_NE(a1.find("\"platforms\""), std::string::npos);
  EXPECT_NE(a1.find("\"harness\": \"testh\""), std::string::npos);
  EXPECT_NE(a1.find("\"spec_hash\""), std::string::npos);
  EXPECT_NE(a1.find("\"x_name\": \"threads\""), std::string::npos);
  EXPECT_NE(a1.find("0.3333333333333333"), std::string::npos);  // full prec
  EXPECT_NE(a1.find("\"shape holds\""), std::string::npos);
  EXPECT_NE(a1.find("\"speed\""), std::string::npos);
  EXPECT_TRUE(ctx2.all_ok());
}

TEST_F(CampaignCacheTest, PreStampCacheKeyIsRejected) {
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_matrix();
  };
  SpecKey key;
  key.add("bench", "fake");
  RunContext ctx1("testh", 1, dir_);
  (void)ctx1.protocol("cell", small_spec(), key, compute);
  ASSERT_EQ(computes, 1);

  // The committed .key opens with the cache schema stamp.
  for (const auto& e :
       std::filesystem::directory_iterator(dir_ + "/cache")) {
    if (e.path().extension() == ".key") {
      std::ifstream f(e.path());
      std::string first;
      std::getline(f, first);
      EXPECT_EQ(first, std::string(kCacheKeySchema));
    }
  }

  // Rewrite the .key as an old-generation entry: the bare canonical key
  // without the stamp (what pre-stamp caches stored). The hit must be
  // rejected and the cell recomputed.
  SpecKey full = key;
  full.add("harness", "testh");
  full.add("label", "cell");
  full.add_spec(small_spec());
  for (const auto& e :
       std::filesystem::directory_iterator(dir_ + "/cache")) {
    if (e.path().extension() == ".key") {
      std::ofstream f(e.path(), std::ios::binary);
      f << full.canonical();
    }
  }
  RunContext ctx2("testh", 1, dir_);
  (void)ctx2.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(ctx2.cache_hits(), 0u);

  // A wrong-generation stamp is equally rejected.
  for (const auto& e :
       std::filesystem::directory_iterator(dir_ + "/cache")) {
    if (e.path().extension() == ".key") {
      std::ofstream f(e.path(), std::ios::binary);
      f << "omnivar-cache-v1\n" << full.canonical();
    }
  }
  RunContext ctx3("testh", 1, dir_);
  (void)ctx3.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 3);
}

TEST_F(CampaignCacheTest, EngineVersionStampInvalidatesPreBumpCaches) {
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_matrix();
  };
  SpecKey key;
  key.add("bench", "fake");
  ::unsetenv("OMNIVAR_ENGINE_VERSION");
  EXPECT_EQ(engine_version(), kEngineVersion);

  RunContext ctx1("testh", 1, dir_);
  (void)ctx1.protocol("cell", small_spec(), key, compute);
  ASSERT_EQ(computes, 1);

  // Same engine generation: served from cache.
  RunContext ctx2("testh", 1, dir_);
  (void)ctx2.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(ctx2.cache_hits(), 1u);

  // A different engine generation (the OMNIVAR_ENGINE_VERSION hook stands
  // in for a rebuilt binary with a bumped kEngineVersion): every cell key
  // hashes apart, so the pre-bump dir degrades to a recompute wholesale.
  ::setenv("OMNIVAR_ENGINE_VERSION", "test-engine-next", 1);
  EXPECT_EQ(engine_version(), "test-engine-next");
  RunContext ctx3("testh", 1, dir_);
  (void)ctx3.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(ctx3.cache_hits(), 0u);

  // Each generation's entries stay valid under that generation.
  RunContext ctx4("testh", 1, dir_);
  (void)ctx4.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(ctx4.cache_hits(), 1u);
  ::unsetenv("OMNIVAR_ENGINE_VERSION");
  RunContext ctx5("testh", 1, dir_);
  (void)ctx5.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(ctx5.cache_hits(), 1u);
}

TEST_F(CampaignCacheTest, AsymmetricScenarioArtifactCarriesGroupBlock) {
  const auto scn = scenario::ScenarioRegistry::instance().get("biglittle");
  RunContext ctx("testh", 1, "", scn);
  const auto a = ctx.artifact_json("desc");
  EXPECT_NE(a.find("\"name\": \"biglittle\""), std::string::npos);
  EXPECT_NE(a.find("\"groups\""), std::string::npos);
  EXPECT_NE(a.find("\"name\": \"P\""), std::string::npos);
  EXPECT_NE(a.find("\"name\": \"E\""), std::string::npos);
  EXPECT_NE(a.find("\"work_rate\": 0.55"), std::string::npos);
  EXPECT_NE(a.find("\"socket\": 0"), std::string::npos);
  // The uniform geometry keys are absent on group machines.
  EXPECT_EQ(a.find("\"cores_per_numa\""), std::string::npos);
}

TEST_F(CampaignCacheTest, ScenarioRidesOnContextAndArtifact) {
  const auto scn = scenario::ScenarioRegistry::instance().get("epyc-like");
  RunContext ctx("testh", 1, "", scn);
  ASSERT_NE(ctx.scenario(), nullptr);
  EXPECT_EQ(ctx.scenario()->name, "epyc-like");
  ctx.note_platform("EpycLike", scn.fingerprint());
  ctx.note_platform("EpycLike", scn.fingerprint());  // deduplicated
  const auto a = ctx.artifact_json("desc");
  EXPECT_NE(a.find("\"name\": \"epyc-like\""), std::string::npos);
  EXPECT_NE(a.find("\"fingerprint\": \"" + scn.fingerprint() + "\""),
            std::string::npos);
  EXPECT_NE(a.find("\"cores_per_numa\": 12"), std::string::npos);
  // The platform appears exactly once.
  const auto first = a.find("\"name\": \"EpycLike\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(a.find("\"name\": \"EpycLike\"", first + 1),
            std::string::npos);
}

TEST_F(CampaignCacheTest, VerdictTracksFailures) {
  RunContext ctx("testh", 1, "");
  ctx.verdict(true, "good");
  EXPECT_TRUE(ctx.all_ok());
  ctx.verdict(false, "bad");
  EXPECT_FALSE(ctx.all_ok());
  ASSERT_EQ(ctx.verdicts().size(), 2u);
}

// ------------------------------------------------- supervision/quarantine

class CampaignFaultTest : public CampaignCacheTest {
 protected:
  void SetUp() override {
    CampaignCacheTest::SetUp();
    fault::clear_active_plan();
  }
  void TearDown() override {
    fault::clear_active_plan();
    CampaignCacheTest::TearDown();
  }
};

TEST_F(CampaignFaultTest, ThrowingCellIsQuarantinedWithFailureRecord) {
  SpecKey key;
  key.add("bench", "fake");
  RunContext ctx("testh", 1, dir_);
  ctx.configure_supervision(0, std::chrono::milliseconds(0));
  try {
    (void)ctx.protocol("cell", small_spec(), key, []() -> RunMatrix {
      throw std::runtime_error("model blew up");
    });
    FAIL() << "expected CellQuarantined";
  } catch (const CellQuarantined&) {
  }
  ASSERT_EQ(ctx.failures().size(), 1u);
  const auto& f = ctx.failures()[0];
  EXPECT_EQ(f.label, "cell");
  EXPECT_EQ(f.hash.size(), 16u);  // the cell's spec hash
  EXPECT_EQ(f.taxonomy, "exception");
  EXPECT_EQ(f.error, "model blew up");
  EXPECT_EQ(f.attempts, 1u);
  // The failed cell committed nothing: no .key marker exists.
  for (const auto& e :
       std::filesystem::directory_iterator(dir_ + "/cache")) {
    EXPECT_NE(e.path().extension(), ".key");
  }
}

TEST_F(CampaignFaultTest, TornCacheWriteIsRetriedToACleanCommit) {
  // First commit attempt tears the cache CSV mid-write; the retry
  // recomputes and commits cleanly — and the entry then serves hits.
  fault::set_active_spec("torn_write:cache@1");
  SpecKey key;
  key.add("bench", "fake");
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_matrix();
  };
  RunContext ctx("testh", 1, dir_);
  ctx.configure_supervision(1, std::chrono::milliseconds(0));
  const auto m = ctx.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 2);  // attempt 1 tore, attempt 2 committed
  EXPECT_EQ(m.runs(), 2u);
  EXPECT_TRUE(ctx.failures().empty());

  RunContext ctx2("testh", 1, dir_);
  (void)ctx2.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(ctx2.cache_hits(), 1u);
}

TEST_F(CampaignFaultTest, TornKeyWriteDegradesToAPlainMissNextRun) {
  // The .key commit marker is written LAST: tearing it leaves valid data
  // behind a torn marker, which the next invocation treats as a miss —
  // never as a hit over unvalidated bytes.
  fault::set_active_spec("torn_write:key@1");
  SpecKey key;
  key.add("bench", "fake");
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_matrix();
  };
  {
    RunContext ctx("testh", 1, dir_);
    ctx.configure_supervision(0, std::chrono::milliseconds(0));
    EXPECT_THROW((void)ctx.protocol("cell", small_spec(), key, compute),
                 CellQuarantined);
    ASSERT_EQ(ctx.failures().size(), 1u);
    EXPECT_EQ(ctx.failures()[0].taxonomy, "io");
  }
  fault::clear_active_plan();
  RunContext ctx2("testh", 1, dir_);
  (void)ctx2.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 2);  // torn marker = miss, recomputed
  EXPECT_EQ(ctx2.cache_hits(), 0u);
}

TEST_F(CampaignFaultTest, InvalidatedEntryDropsItsSnapSidecar) {
  SpecKey key;
  key.add("bench", "fake");
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_matrix();
  };
  {
    RunContext ctx("testh", 1, dir_);
    (void)ctx.protocol("cell", small_spec(), key, compute);
  }
  // Corrupt the committed CSV and plant a .snap sidecar next to it (a
  // checkpoint of the now-dead entry).
  std::string snap_path;
  for (const auto& e :
       std::filesystem::directory_iterator(dir_ + "/cache")) {
    if (e.path().extension() == ".csv") {
      snap_path = e.path().string();
      snap_path.replace(snap_path.size() - 4, 4, ".snap");
      std::ofstream c(e.path(), std::ios::binary);
      c << "run,rep,time\ngarbage";
    }
  }
  ASSERT_FALSE(snap_path.empty());
  {
    std::ofstream s(snap_path, std::ios::binary);
    s << "stale checkpoint bytes";
  }
  RunContext ctx2("testh", 1, dir_);
  (void)ctx2.protocol("cell", small_spec(), key, compute);
  EXPECT_EQ(computes, 2);  // degraded to recompute
  // The orphaned sidecar went with the invalidated entry: --resume auto
  // cannot resurrect a dead cell's progress.
  EXPECT_FALSE(std::filesystem::exists(snap_path));
}

TEST_F(CampaignFaultTest, SurvivingCellsAreByteIdenticalAfterAFaultRun) {
  // The differential-proof core: a campaign where one cell faults leaves
  // every other cell's cache entry byte-identical to a healthy campaign's.
  SpecKey key_a;
  key_a.add("bench", "a");
  SpecKey key_b;
  key_b.add("bench", "b");
  const auto compute = [] { return make_matrix(); };

  // Healthy campaign into dir A.
  const std::string dir_healthy = dir_ + "_healthy";
  std::filesystem::remove_all(dir_healthy);
  {
    RunContext ctx("testh", 1, dir_healthy);
    (void)ctx.protocol("cell_a", small_spec(), key_a, compute);
    (void)ctx.protocol("cell_b", small_spec(), key_b, compute);
  }

  // Faulted campaign into dir B: cell_a quarantines, cell_b survives.
  fault::set_active_spec("cell_throw:cell_a");
  {
    RunContext ctx("testh", 1, dir_);
    ctx.configure_supervision(0, std::chrono::milliseconds(0));
    EXPECT_THROW((void)ctx.protocol("cell_a", small_spec(), key_a, compute),
                 CellQuarantined);
  }
  fault::clear_active_plan();
  {
    // The harness re-runs (the campaign driver reruns it or a dependent
    // cell-only harness runs next); cell_b computes cleanly.
    RunContext ctx("testh", 1, dir_);
    (void)ctx.protocol("cell_b", small_spec(), key_b, compute);
  }

  // Every cache artifact present in the faulted dir matches the healthy
  // dir byte-for-byte.
  std::size_t compared = 0;
  for (const auto& e :
       std::filesystem::directory_iterator(dir_ + "/cache")) {
    if (e.path().extension() == ".lock") continue;
    const auto healthy =
        std::filesystem::path(dir_healthy) / "cache" / e.path().filename();
    ASSERT_TRUE(std::filesystem::exists(healthy)) << e.path();
    std::ifstream f1(e.path(), std::ios::binary);
    std::ifstream f2(healthy, std::ios::binary);
    std::string b1((std::istreambuf_iterator<char>(f1)), {});
    std::string b2((std::istreambuf_iterator<char>(f2)), {});
    EXPECT_EQ(b1, b2) << e.path();
    ++compared;
  }
  EXPECT_EQ(compared, 2u);  // cell_b's .csv + .key; cell_a left nothing
  std::filesystem::remove_all(dir_healthy);
}

}  // namespace
}  // namespace omv::cli
