#pragma once
// Advisory per-cell cache lease for concurrent campaigns sharing one
// --out directory.
//
// A lease is an flock(2)-held lock file ("<hash>.lock") whose content
// records the holder's PID and acquisition timestamp. Two campaigns racing
// on one cache entry resolve as: one acquires the lease and computes; the
// other blocks (bounded by the lease wait), then either finds the freshly
// committed entry on re-check or — on lease expiry / a stuck holder —
// recomputes without the lease. Correctness never depends on the lease:
// every cache artifact commits via atomic tmp+rename and the entries are
// deterministic, so the worst un-leased outcome is duplicate work whose
// last rename wins with identical bytes. The lease only prevents that
// duplicate work.
//
// Stale-lease handling: flock state dies with the holder's process, so a
// crashed holder releases the kernel lock automatically; the PID+timestamp
// probe additionally detects lock FILES left by dead holders (probed with
// kill(pid, 0)) and removes them, and bounds the wait on live-but-stuck
// holders by treating a lease older than the wait budget as expired.
//
// On platforms without flock the lease degrades to "always acquired"
// (single-process semantics, the pre-PR behaviour).

#include <chrono>
#include <optional>
#include <string>

namespace omv::core {

/// A held cache lease; releases (unlink + unlock) on destruction.
class FileLease {
 public:
  FileLease(FileLease&& other) noexcept;
  FileLease& operator=(FileLease&& other) noexcept;
  FileLease(const FileLease&) = delete;
  FileLease& operator=(const FileLease&) = delete;
  ~FileLease();

  /// Tries to acquire the lease at `path`, waiting up to `wait` for a live
  /// holder. Returns the held lease, or nullopt when the wait expired with
  /// the lease still held (caller proceeds without it). `waited` (optional)
  /// reports whether another holder was observed at any point — the signal
  /// to re-check the cache before computing.
  static std::optional<FileLease> acquire(const std::string& path,
                                          std::chrono::milliseconds wait,
                                          bool* waited = nullptr);

  /// Releases early (idempotent).
  void release() noexcept;

 private:
  explicit FileLease(std::string path, int fd) noexcept
      : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
};

}  // namespace omv::core
