#include "core/snapshot.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/atomic_file.hpp"
#include "core/faultinject.hpp"

namespace omv::snap {

void fail(const std::string& origin, std::size_t offset,
          const std::string& what) {
  std::ostringstream os;
  os << origin << ": byte " << offset << ": " << what;
  throw SnapshotError(os.str());
}

const char* field_type_name(FieldType t) noexcept {
  switch (t) {
    case FieldType::kU64:
      return "u64";
    case FieldType::kF64:
      return "f64";
    case FieldType::kBool:
      return "bool";
    case FieldType::kStr:
      return "str";
    case FieldType::kVecF64:
      return "vec<f64>";
    case FieldType::kVecU64:
      return "vec<u64>";
    case FieldType::kBytes:
      return "bytes";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// SnapshotWriter
// ---------------------------------------------------------------------------

SnapshotWriter::SnapshotWriter() {
  buf_.append(kMagic.data(), kMagic.size());
  put_u32(kFormatVersion);
}

void SnapshotWriter::put_u8(std::uint8_t v) {
  buf_.push_back(static_cast<char>(v));
}

void SnapshotWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void SnapshotWriter::begin_field(std::string_view name, FieldType t) {
  put_u8(static_cast<std::uint8_t>(t));
  put_u32(static_cast<std::uint32_t>(name.size()));
  buf_.append(name.data(), name.size());
}

void SnapshotWriter::field_u64(std::string_view name, std::uint64_t v) {
  begin_field(name, FieldType::kU64);
  put_u64(v);
}

void SnapshotWriter::field_f64(std::string_view name, double v) {
  begin_field(name, FieldType::kF64);
  put_f64(v);
}

void SnapshotWriter::field_bool(std::string_view name, bool v) {
  begin_field(name, FieldType::kBool);
  put_u8(v ? 1 : 0);
}

void SnapshotWriter::field_str(std::string_view name, std::string_view v) {
  begin_field(name, FieldType::kStr);
  put_u32(static_cast<std::uint32_t>(v.size()));
  buf_.append(v.data(), v.size());
}

void SnapshotWriter::field_vec_f64(std::string_view name,
                                   const std::vector<double>& v) {
  begin_field(name, FieldType::kVecF64);
  put_u64(v.size());
  for (double x : v) put_f64(x);
}

void SnapshotWriter::field_vec_u64(std::string_view name,
                                   const std::vector<std::uint64_t>& v) {
  begin_field(name, FieldType::kVecU64);
  put_u64(v.size());
  for (std::uint64_t x : v) put_u64(x);
}

void SnapshotWriter::field_bytes(std::string_view name, std::string_view v) {
  begin_field(name, FieldType::kBytes);
  put_u64(v.size());
  buf_.append(v.data(), v.size());
}

// ---------------------------------------------------------------------------
// SnapshotReader
// ---------------------------------------------------------------------------

SnapshotReader::SnapshotReader(std::string_view bytes, std::string origin)
    : bytes_(bytes), origin_(std::move(origin)) {
  if (bytes_.size() < kMagic.size() ||
      bytes_.substr(0, kMagic.size()) != kMagic) {
    fail(origin_, 0, "bad magic: not an omnivar snapshot");
  }
  pos_ = kMagic.size();
  const std::size_t ver_off = pos_;
  const std::uint32_t ver = get_u32("format version");
  if (ver != kFormatVersion) {
    std::ostringstream os;
    os << "snapshot format version " << ver << " unsupported (engine reads "
       << kFormatVersion << ")";
    fail(origin_, ver_off, os.str());
  }
}

void SnapshotReader::fail_here(std::size_t offset,
                               const std::string& what) const {
  fail(origin_, offset, what);
}

std::string_view SnapshotReader::get_raw(std::size_t n, std::string_view what) {
  if (bytes_.size() - pos_ < n) {
    std::ostringstream os;
    os << "truncated snapshot: need " << n << " bytes for " << what << ", have "
       << (bytes_.size() - pos_);
    fail(origin_, pos_, os.str());
  }
  std::string_view out = bytes_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t SnapshotReader::get_u8(std::string_view what) {
  return static_cast<std::uint8_t>(get_raw(1, what)[0]);
}

std::uint32_t SnapshotReader::get_u32(std::string_view what) {
  std::string_view raw = get_raw(4, what);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(raw[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t SnapshotReader::get_u64(std::string_view what) {
  std::string_view raw = get_raw(8, what);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(raw[i]))
         << (8 * i);
  }
  return v;
}

double SnapshotReader::get_f64(std::string_view what) {
  return std::bit_cast<double>(get_u64(what));
}

std::size_t SnapshotReader::begin_field(std::string_view name, FieldType t) {
  const std::size_t start = pos_;
  const auto code = get_u8("field type");
  const std::uint32_t name_len = get_u32("field name length");
  std::string_view got_name = get_raw(name_len, "field name");
  if (got_name != name) {
    std::ostringstream os;
    os << "expected field '" << name << "', found '" << std::string(got_name)
       << "'";
    fail(origin_, start, os.str());
  }
  if (code != static_cast<std::uint8_t>(t)) {
    std::ostringstream os;
    os << "field '" << name << "': expected type " << field_type_name(t)
       << ", found type code " << static_cast<unsigned>(code);
    fail(origin_, start, os.str());
  }
  return start;
}

std::uint64_t SnapshotReader::field_u64(std::string_view name) {
  begin_field(name, FieldType::kU64);
  return get_u64(name);
}

double SnapshotReader::field_f64(std::string_view name) {
  begin_field(name, FieldType::kF64);
  return get_f64(name);
}

bool SnapshotReader::field_bool(std::string_view name) {
  const std::size_t start = begin_field(name, FieldType::kBool);
  const auto v = get_u8(name);
  if (v > 1) {
    std::ostringstream os;
    os << "field '" << name << "': bool byte must be 0 or 1, found "
       << static_cast<unsigned>(v);
    fail(origin_, start, os.str());
  }
  return v == 1;
}

std::string SnapshotReader::field_str(std::string_view name) {
  begin_field(name, FieldType::kStr);
  const std::uint32_t len = get_u32(name);
  return std::string(get_raw(len, name));
}

std::vector<double> SnapshotReader::field_vec_f64(std::string_view name) {
  begin_field(name, FieldType::kVecF64);
  const std::uint64_t n = get_u64(name);
  std::vector<double> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(get_f64(name));
  return out;
}

std::vector<std::uint64_t> SnapshotReader::field_vec_u64(
    std::string_view name) {
  begin_field(name, FieldType::kVecU64);
  const std::uint64_t n = get_u64(name);
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(get_u64(name));
  return out;
}

std::string SnapshotReader::field_bytes(std::string_view name) {
  begin_field(name, FieldType::kBytes);
  const std::uint64_t len = get_u64(name);
  return std::string(get_raw(len, name));
}

void SnapshotReader::expect_u64(std::string_view name, std::uint64_t want,
                                std::string_view what) {
  const std::size_t start = pos_;
  const std::uint64_t got = field_u64(name);
  if (got != want) {
    std::ostringstream os;
    os << what << " mismatch: snapshot has " << got << ", this process has "
       << want;
    fail(origin_, start, os.str());
  }
}

void SnapshotReader::expect_end() {
  if (pos_ != bytes_.size()) {
    std::ostringstream os;
    os << "trailing bytes after final field (" << (bytes_.size() - pos_)
       << " unread)";
    fail(origin_, pos_, os.str());
  }
}

// ---------------------------------------------------------------------------
// Stamp
// ---------------------------------------------------------------------------

void write_stamp(SnapshotWriter& w, const SnapshotStamp& s) {
  w.field_str("stamp.engine", s.engine);
  w.field_str("stamp.scenario", s.scenario);
  w.field_str("stamp.cell", s.cell);
  w.field_u64("stamp.run", s.run);
  w.field_u64("stamp.rep", s.rep);
}

namespace {
void check_stamp_field(SnapshotReader& r, std::size_t offset,
                       std::string_view what, const std::string& got,
                       const std::string& want) {
  if (got != want) {
    std::ostringstream os;
    os << what << " mismatch: snapshot was taken by '" << got
       << "', this process is '" << want << "'";
    r.fail_here(offset, os.str());
  }
}
}  // namespace

SnapshotStamp read_stamp(SnapshotReader& r, const SnapshotStamp* want) {
  SnapshotStamp s;
  std::size_t off = r.offset();
  s.engine = r.field_str("stamp.engine");
  if (want) check_stamp_field(r, off, "engine version", s.engine, want->engine);
  off = r.offset();
  s.scenario = r.field_str("stamp.scenario");
  if (want) {
    check_stamp_field(r, off, "scenario fingerprint", s.scenario,
                      want->scenario);
  }
  off = r.offset();
  s.cell = r.field_str("stamp.cell");
  if (want) check_stamp_field(r, off, "campaign cell", s.cell, want->cell);
  s.run = r.field_u64("stamp.run");
  s.rep = r.field_u64("stamp.rep");
  return s;
}

std::optional<SnapshotStamp> try_peek_stamp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  const std::string bytes = os.str();
  try {
    SnapshotReader r(bytes, path);
    return read_stamp(r);
  } catch (const SnapshotError&) {
    return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Files
// ---------------------------------------------------------------------------

void save_snapshot_file(const std::string& path, const std::string& bytes) {
  // The shared atomic commit (tmp + rename) with the "snapshot" fault
  // site. Injected faults keep their taxonomy; plain I/O failures keep
  // this module's SnapshotError contract.
  try {
    core::atomic_write_file(path, bytes, "snapshot");
  } catch (const fault::InjectedFault&) {
    throw;
  } catch (const std::exception& e) {
    fail(path, 0, e.what());
  }
}

std::string load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, 0, "cannot open snapshot file");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// Visitor helpers for composite containers
// ---------------------------------------------------------------------------

void Capture::field(std::string_view name, std::vector<bool>& v) {
  std::vector<std::uint64_t> tmp(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) tmp[i] = v[i] ? 1 : 0;
  w_.field_vec_u64(prefix_.full(name), tmp);
}

void Restore::field(std::string_view name, std::vector<bool>& v) {
  const std::string full = prefix_.full(name);
  const std::size_t start = r_.offset();
  const auto tmp = r_.field_vec_u64(full);
  v.assign(tmp.size(), false);
  for (std::size_t i = 0; i < tmp.size(); ++i) {
    if (tmp[i] > 1) {
      r_.fail_here(start, "field '" + full + "': bool element must be 0 or 1");
    }
    v[i] = tmp[i] == 1;
  }
}

void Capture::field(std::string_view name, std::vector<std::vector<double>>& v) {
  const std::string full = prefix_.full(name);
  w_.field_u64(full + ".n", v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    w_.field_vec_f64(full + "." + std::to_string(i), v[i]);
  }
}

void Restore::field(std::string_view name, std::vector<std::vector<double>>& v) {
  const std::string full = prefix_.full(name);
  const std::uint64_t n = r_.field_u64(full + ".n");
  v.assign(n, {});
  for (std::uint64_t i = 0; i < n; ++i) {
    v[i] = r_.field_vec_f64(full + "." + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Checkpoint write counter
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::size_t> g_checkpoint_writes{0};
}

std::size_t checkpoint_writes() noexcept {
  return g_checkpoint_writes.load(std::memory_order_relaxed);
}

void note_checkpoint_write() noexcept {
  g_checkpoint_writes.fetch_add(1, std::memory_order_relaxed);
}

void reset_checkpoint_writes() noexcept {
  g_checkpoint_writes.store(0, std::memory_order_relaxed);
}

}  // namespace omv::snap
