#include "core/experiment.hpp"

#include "core/deadline.hpp"
#include "core/rng.hpp"

namespace omv {

std::uint64_t derive_run_seed(std::uint64_t base, std::size_t run) noexcept {
  return Rng(base).fork(0x5eedULL + run).next_u64();
}

std::vector<double> execute_run(const ExperimentSpec& spec,
                                const RepKernel& kernel, std::size_t run,
                                std::uint64_t run_seed) {
  RepContext ctx;
  ctx.run = run;
  ctx.run_seed = run_seed;

  // Cooperative cell-timeout poll at repetition granularity: whichever
  // worker thread runs this repetition observes the process-wide deadline
  // and throws CellTimeout — cancellation without signals, at the cost of
  // one repetition of latency.
  for (std::size_t w = 0; w < spec.warmup; ++w) {
    core::check_cell_deadline();
    ctx.rep = w;
    ctx.warmup = true;
    (void)kernel(ctx);
  }

  std::vector<double> times;
  times.reserve(spec.reps);
  ctx.warmup = false;
  for (std::size_t k = 0; k < spec.reps; ++k) {
    core::check_cell_deadline();
    ctx.rep = k;
    times.push_back(kernel(ctx));
  }
  return times;
}

RunMatrix run_experiment(const ExperimentSpec& spec, const RepKernel& kernel,
                         const RunHooks& hooks) {
  RunMatrix matrix(spec.name);
  for (std::size_t r = 0; r < spec.runs; ++r) {
    const std::uint64_t run_seed = derive_run_seed(spec.seed, r);
    if (hooks.before_run) hooks.before_run(r, run_seed);
    matrix.add_run(execute_run(spec, kernel, r, run_seed));
    if (hooks.after_run) hooks.after_run(r);
  }
  return matrix;
}

}  // namespace omv
