#include "core/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "core/descriptive.hpp"

namespace omv::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi) {
  if (bins == 0) bins = 1;
  if (hi_ <= lo_) hi_ = lo_ + 1.0;
  width_ = (hi_ - lo_) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

Histogram Histogram::from_data(std::span<const double> xs, std::size_t bins) {
  double lo = 0.0;
  double hi = 1.0;
  if (!xs.empty()) {
    lo = *std::min_element(xs.begin(), xs.end());
    hi = *std::max_element(xs.begin(), xs.end());
    if (hi == lo) hi = lo + 1.0;
  }
  Histogram h(lo, hi, bins);
  h.add_all(xs);
  return h;
}

Histogram Histogram::auto_binned(std::span<const double> xs) {
  std::size_t bins = freedman_diaconis_bins(xs);
  if (bins == 0) bins = sturges_bins(xs.size());
  bins = std::clamp<std::size_t>(bins, 1, 512);
  return from_data(xs, bins);
}

void Histogram::add(double x) noexcept {
  double pos = (x - lo_) / width_;
  auto bin = pos <= 0.0 ? 0
                        : std::min(static_cast<std::size_t>(pos),
                                   counts_.size() - 1);
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

std::vector<double> Histogram::smoothed(std::size_t radius) const {
  std::vector<double> out(counts_.size(), 0.0);
  const auto n = static_cast<std::ptrdiff_t>(counts_.size());
  const auto r = static_cast<std::ptrdiff_t>(radius);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double sum = 0.0;
    std::ptrdiff_t cnt = 0;
    for (std::ptrdiff_t j = std::max<std::ptrdiff_t>(0, i - r);
         j <= std::min(n - 1, i + r); ++j) {
      sum += static_cast<double>(counts_[static_cast<std::size_t>(j)]);
      ++cnt;
    }
    out[static_cast<std::size_t>(i)] = sum / static_cast<double>(cnt);
  }
  return out;
}

std::string Histogram::sparkline() const {
  static const char* kGlyphs[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  std::size_t maxc = 0;
  for (auto c : counts_) maxc = std::max(maxc, c);
  std::string out;
  for (auto c : counts_) {
    std::size_t level =
        maxc == 0 ? 0 : (c * 8 + maxc - 1) / maxc;  // ceil to 0..8
    out += kGlyphs[std::min<std::size_t>(level, 8)];
  }
  return out;
}

std::size_t sturges_bins(std::size_t n) noexcept {
  if (n < 2) return 1;
  return static_cast<std::size_t>(
             std::ceil(std::log2(static_cast<double>(n)))) +
         1;
}

std::size_t freedman_diaconis_bins(std::span<const double> xs) {
  if (xs.size() < 4) return 0;
  const auto sorted = sorted_copy(xs);
  const double iqr =
      percentile_sorted(sorted, 75.0) - percentile_sorted(sorted, 25.0);
  if (iqr <= 0.0) return 0;
  const double width =
      2.0 * iqr / std::cbrt(static_cast<double>(xs.size()));
  const double range = sorted.back() - sorted.front();
  if (width <= 0.0 || range <= 0.0) return 0;
  return static_cast<std::size_t>(std::ceil(range / width));
}

}  // namespace omv::stats
