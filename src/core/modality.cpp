#include "core/modality.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/descriptive.hpp"
#include "core/histogram.hpp"

namespace omv::stats {

std::size_t count_peaks(std::span<const double> density,
                        double min_prominence) {
  if (density.empty()) return 0;
  const double maxd = *std::max_element(density.begin(), density.end());
  if (maxd <= 0.0) return 0;
  const double floor_level = min_prominence * maxd;

  std::size_t peaks = 0;
  // A peak is a maximal plateau strictly higher than both neighbours and
  // above the prominence floor.
  std::size_t i = 0;
  const std::size_t n = density.size();
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && density[j + 1] == density[i]) ++j;
    const bool left_ok = i == 0 || density[i - 1] < density[i];
    const bool right_ok = j + 1 >= n || density[j + 1] < density[j];
    if (left_ok && right_ok && density[i] > floor_level) ++peaks;
    i = j + 1;
  }
  return peaks;
}

ModalityReport analyze_modality(std::span<const double> xs,
                                double bc_threshold) {
  ModalityReport r;
  if (xs.size() < 4) return r;
  const auto s = summarize(xs);
  const double n = static_cast<double>(s.n);
  const double denom =
      s.kurtosis + 3.0 * (n - 1.0) * (n - 1.0) / ((n - 2.0) * (n - 3.0));
  if (denom > 0.0) {
    r.bimodality_coefficient = (s.skewness * s.skewness + 1.0) / denom;
  }
  const auto hist = Histogram::auto_binned(xs);
  const auto smooth = hist.smoothed(std::max<std::size_t>(
      1, hist.bin_count() / 16));
  r.peak_count = count_peaks(smooth);
  r.likely_multimodal =
      r.bimodality_coefficient > bc_threshold && r.peak_count >= 2;
  return r;
}

}  // namespace omv::stats
