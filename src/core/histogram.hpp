#pragma once
// Fixed-width histograms with automatic bin selection, used by the modality
// detector and the report renderer (ASCII distribution sketches).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace omv::stats {

/// A fixed-width histogram over [lo, hi].
class Histogram {
 public:
  /// Builds a histogram with `bins` equal-width bins spanning [lo, hi].
  /// Values outside the range are clamped into the edge bins.
  Histogram(double lo, double hi, std::size_t bins);

  /// Builds a histogram over the data range using the given bin count.
  static Histogram from_data(std::span<const double> xs, std::size_t bins);

  /// Builds a histogram with the Freedman–Diaconis bin width (falls back to
  /// Sturges when IQR is zero). Good default for timing distributions.
  static Histogram auto_binned(std::span<const double> xs);

  /// Adds one observation.
  void add(double x) noexcept;
  /// Adds all observations.
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Center of bin `bin`.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] const std::vector<std::size_t>& counts() const noexcept {
    return counts_;
  }

  /// Counts smoothed with a centered moving average of half-width `radius`
  /// (used for peak counting; returns densities, not counts).
  [[nodiscard]] std::vector<double> smoothed(std::size_t radius) const;

  /// One-line ASCII sketch (unicode block glyphs), for logs and reports.
  [[nodiscard]] std::string sparkline() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Number of bins suggested by Sturges' rule.
[[nodiscard]] std::size_t sturges_bins(std::size_t n) noexcept;

/// Number of bins suggested by the Freedman–Diaconis rule (0 if degenerate).
[[nodiscard]] std::size_t freedman_diaconis_bins(std::span<const double> xs);

}  // namespace omv::stats
