#pragma once
// Deterministic random-number streams for omnivar.
//
// Every stochastic component in the library (bootstrap resampling, simulator
// noise sources, frequency wander) draws from an independently seeded
// SplitMix64 stream so experiments are exactly reproducible: the same
// (experiment, run, source) triple always yields the same numbers regardless
// of evaluation order elsewhere.

#include <cmath>
#include <cstdint>
#include <numbers>

namespace omv {

/// SplitMix64 generator (Steele, Lea, Flood 2014). Passes BigCrush for the
/// stream lengths used here, is trivially seedable, and allows cheap
/// derivation of independent sub-streams via `fork`.
class Rng {
 public:
  /// Seeds the stream. Distinct seeds yield (for our purposes) independent
  /// streams.
  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
      : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection-free
  /// multiply-shift (Lemire); bias is negligible for n << 2^64.
  constexpr std::uint64_t next_below(std::uint64_t n) noexcept {
    // 128-bit multiply-high.
    const auto x = next_u64();
    const auto hi = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * n) >> 64);
    return hi;
  }

  /// Exponentially distributed value with the given rate (mean = 1/rate).
  double exponential(double rate) noexcept {
    // Guard against log(0).
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -std::log(u) / rate;
  }

  /// Standard normal via Box–Muller (the spare value is cached).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with mean mu and standard deviation sigma.
  double normal(double mu, double sigma) noexcept {
    return mu + sigma * normal();
  }

  /// Lognormal: exp(N(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log) noexcept {
    return std::exp(normal(mu_log, sigma_log));
  }

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed; used for
  /// rare long OS-noise events).
  double pareto(double x_m, double alpha) noexcept {
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Derives an independent stream keyed by `salt`. The parent stream is not
  /// advanced, so forks are order-independent.
  [[nodiscard]] constexpr Rng fork(std::uint64_t salt) const noexcept {
    // Mix the salt through one SplitMix round against the current state.
    std::uint64_t z = state_ + 0x9e3779b97f4a7c15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

  /// Raw stream cursor. Together with `set_state` this pins the exact
  /// SplitMix64 position, so a snapshot/restore cycle resumes the identical
  /// stream. Note the Box–Muller spare cache is separate state; snapshots
  /// carry it via `snapshot_fields`.
  constexpr std::uint64_t state() const noexcept { return state_; }

  /// Repositions the stream cursor without touching the spare cache.
  constexpr void set_state(std::uint64_t s) noexcept { state_ = s; }

  /// Enumerates all run state for the snapshot visitors (cursor plus the
  /// Box–Muller spare cache).
  template <typename V>
  void snapshot_fields(V& v) {
    v.field("state", state_);
    v.field("spare", spare_);
    v.field("have_spare", have_spare_);
  }

 private:
  std::uint64_t state_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace omv
