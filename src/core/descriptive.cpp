#include "core/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace omv::stats {

void OnlineStats::add(double x) noexcept {
  if (!any_) {
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    any_ = true;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  // mean_/m2_ propagate NaN arithmetically, but std::min/max would drop it
  // (NaN comparisons are false) — force the extrema to NaN too so a
  // poisoned sample cannot report clean-looking min/max.
  if (std::isnan(x)) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::cv() const noexcept {
  return mean_ != 0.0 ? stddev() / mean_ : 0.0;
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

bool has_nan(std::span<const double> xs) noexcept {
  for (const double x : xs) {
    if (std::isnan(x)) return true;
  }
  return false;
}

double percentile_sorted(std::span<const double> sorted, double p) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  p = std::clamp(p, 0.0, 100.0);
  const double h = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile_in_place(std::span<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  if (xs.size() == 1) return xs[0];
  p = std::clamp(p, 0.0, 100.0);
  const double h = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = h - static_cast<double>(lo);
  // Select the lo-th order statistic, then the (lo+1)-th as the minimum of
  // the partitioned tail — the exact elements a full sort would place
  // there, so the interpolation below matches percentile_sorted bit for
  // bit while costing O(n) instead of O(n log n). At integral ranks
  // (frac == 0 — every odd-length median, p = 0/100) the upper element
  // carries zero weight, so the tail scan is skipped entirely.
  const auto mid = xs.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(xs.begin(), mid, xs.end());
  const double x_lo = *mid;
  const double x_hi =
      frac > 0.0 && hi > lo ? *std::min_element(mid + 1, xs.end()) : x_lo;
  return x_lo + frac * (x_hi - x_lo);
}

double percentile(std::span<const double> xs, double p) {
  // NaN breaks the strict weak ordering nth_element relies on, which would
  // make the selected order statistics garbage — propagate instead.
  if (has_nan(xs)) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> v(xs.begin(), xs.end());
  return percentile_in_place(v, p);
}

double mad(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  if (has_nan(xs)) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> v(xs.begin(), xs.end());
  const double med = percentile_in_place(v, 50.0);
  for (auto& x : v) x = std::abs(x - med);
  // 1.4826 makes MAD a consistent estimator of sigma under normality.
  return 1.4826 * percentile_in_place(v, 50.0);
}

double geomean(std::span<const double> xs) {
  // Non-positive values are skipped by design (documented); NaN is not a
  // "value outside the domain" but a poisoned input — propagate it.
  if (has_nan(xs)) return std::numeric_limits<double>::quiet_NaN();
  double sum_log = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x > 0.0) {
      sum_log += std::log(x);
      ++n;
    }
  }
  return n ? std::exp(sum_log / static_cast<double>(n)) : 0.0;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  if (has_nan(xs)) {
    // Order statistics are undefined once sorting is (NaN breaks the
    // comparator); make every moment NaN rather than returning a mixture
    // of garbage order stats and NaN means.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    s.mean = s.stddev = s.cv = s.min = s.max = nan;
    s.median = s.p25 = s.p75 = s.p99 = s.iqr = s.mad = nan;
    s.skewness = s.kurtosis = nan;
    return s;
  }

  OnlineStats acc;
  for (double x : xs) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.cv = acc.cv();
  s.min = acc.min();
  s.max = acc.max();

  const auto sorted = sorted_copy(xs);
  s.median = percentile_sorted(sorted, 50.0);
  s.p25 = percentile_sorted(sorted, 25.0);
  s.p75 = percentile_sorted(sorted, 75.0);
  s.p99 = percentile_sorted(sorted, 99.0);
  s.iqr = s.p75 - s.p25;
  s.mad = mad(xs);

  if (s.n >= 3 && s.stddev > 0.0) {
    double m3 = 0.0;
    double m4 = 0.0;
    for (double x : xs) {
      const double d = (x - s.mean) / s.stddev;
      m3 += d * d * d;
      m4 += d * d * d * d;
    }
    const double n = static_cast<double>(s.n);
    s.skewness = m3 / n;
    if (s.n >= 4) s.kurtosis = m4 / n - 3.0;
  }
  return s;
}

}  // namespace omv::stats
