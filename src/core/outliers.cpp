#include "core/outliers.hpp"

#include <cmath>

#include "core/descriptive.hpp"

namespace omv::stats {
namespace {

void classify_tail(OutlierReport& r) {
  if (r.n_high > 0 && r.n_low > 0) {
    r.tail = Tail::both;
  } else if (r.n_high > 0) {
    r.tail = Tail::high;
  } else if (r.n_low > 0) {
    r.tail = Tail::low;
  } else {
    r.tail = Tail::none;
  }
}

OutlierReport scan(std::span<const double> xs, double lo, double hi) {
  OutlierReport r;
  r.lower_bound = lo;
  r.upper_bound = hi;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > hi) {
      r.indices.push_back(i);
      ++r.n_high;
    } else if (xs[i] < lo) {
      r.indices.push_back(i);
      ++r.n_low;
    }
  }
  classify_tail(r);
  return r;
}

}  // namespace

OutlierReport tukey_outliers(std::span<const double> xs, double k) {
  if (xs.size() < 4) return {};
  const auto sorted = sorted_copy(xs);
  const double q1 = percentile_sorted(sorted, 25.0);
  const double q3 = percentile_sorted(sorted, 75.0);
  const double iqr = q3 - q1;
  return scan(xs, q1 - k * iqr, q3 + k * iqr);
}

OutlierReport mad_outliers(std::span<const double> xs, double z) {
  if (xs.size() < 4) return {};
  const double med = percentile(xs, 50.0);
  const double m = mad(xs);
  if (m <= 0.0) return tukey_outliers(xs);
  return scan(xs, med - z * m, med + z * m);
}

const char* tail_name(Tail t) noexcept {
  switch (t) {
    case Tail::none:
      return "none";
    case Tail::high:
      return "high";
    case Tail::low:
      return "low";
    case Tail::both:
      return "both";
  }
  return "?";
}

}  // namespace omv::stats
