#include "core/atomic_file.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/faultinject.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace omv::core {

namespace {

std::string process_unique_tmp(const std::string& path) {
  // Per-process temp names keep two concurrent writers of the same target
  // from clobbering each other's in-flight temp file; the final rename is
  // then a last-writer-wins commit of a complete payload either way.
#if defined(__unix__) || defined(__APPLE__)
  return path + ".tmp." + std::to_string(::getpid());
#else
  return path + ".tmp";
#endif
}

void write_whole(const std::string& path, std::string_view bytes,
                 const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error(std::string("cannot open ") + what + " '" +
                             path + "' for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    throw std::runtime_error(std::string("short write to ") + what + " '" +
                             path + "'");
  }
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view bytes,
                       std::string_view site) {
  if (!site.empty()) {
    switch (fault::active_plan().on_write(site)) {
      case fault::WriteAction::kNone:
        break;
      case fault::WriteAction::kFail:
        throw fault::InjectedFault(
            "io", "injected write failure (enospc) at site '" +
                      std::string(site) + "' for '" + path + "'");
      case fault::WriteAction::kTorn:
        // A torn write is what a crashed NON-atomic writer leaves behind:
        // half the payload at the final path. Bypass the tmp+rename
        // discipline deliberately, then report the failure.
        write_whole(path, bytes.substr(0, bytes.size() / 2), "torn file");
        throw fault::InjectedFault(
            "io", "injected torn write at site '" + std::string(site) +
                      "' for '" + path + "'");
    }
  }
  const std::string tmp = process_unique_tmp(path);
  write_whole(tmp, bytes, "temp file");
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    const std::string why = ec.message();
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("cannot commit '" + path +
                             "': rename failed: " + why);
  }
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::string buf;
  f.seekg(0, std::ios::end);
  const auto end = f.tellg();
  if (end > 0) buf.reserve(static_cast<std::size_t>(end));
  f.seekg(0, std::ios::beg);
  buf.assign(std::istreambuf_iterator<char>(f),
             std::istreambuf_iterator<char>());
  if (f.bad()) return false;
  out = std::move(buf);
  return true;
}

bool remove_file_if_exists(const std::string& path) noexcept {
  std::error_code ec;
  return std::filesystem::remove(path, ec) && !ec;
}

}  // namespace omv::core
