#pragma once
// One-way random-effects variance decomposition.
//
// The paper distinguishes run-to-run variability (between the 10 runs) from
// within-run variability (between the 100 outer repetitions of one run).
// This module quantifies that split: a classic one-way random-effects ANOVA
// where "run" is the random group factor.

#include <span>
#include <vector>

namespace omv::stats {

/// Result of decomposing total variance into between-run and within-run
/// components.
struct VarianceComponents {
  double grand_mean = 0.0;
  double var_between = 0.0;  ///< run-to-run variance component (sigma_b^2).
  double var_within = 0.0;   ///< within-run variance component (sigma_w^2).
  /// Fraction of total variance attributable to run-to-run effects
  /// (intraclass correlation). 0 = all noise is within-run, 1 = all
  /// variance is run-level (e.g. one slow run).
  double icc = 0.0;
  /// F statistic of the group effect and its p-value (run effect present?).
  double f_statistic = 0.0;
  double p_value = 1.0;
};

/// Decomposes `groups` (one vector of repetition times per run).
/// Groups may have unequal sizes; empty groups are skipped. Fewer than two
/// non-empty groups (or no within-group degrees of freedom) returns the
/// all-zero default; any NaN observation makes every derived field NaN
/// instead of the plausible-looking f=0/p=1 it used to produce.
[[nodiscard]] VarianceComponents decompose_variance(
    std::span<const std::vector<double>> groups);

}  // namespace omv::stats
