#pragma once
// RunMatrix — the central data structure of the paper's protocol.
//
// Every experimental configuration is executed as R independent *runs*
// (fresh process / fresh team in the paper: 10), each consisting of K outer
// *repetitions* of the kernel of interest (EPCC: 100). A RunMatrix stores the
// R x K execution times and provides the paper's derived metrics:
//   * per-run Summary (mean / min / max / CV),
//   * normalized min & max per run (Fig. 3, Fig. 4),
//   * per-run CV (Fig. 5),
//   * between-run vs within-run variance decomposition.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/descriptive.hpp"
#include "core/variance_components.hpp"

namespace omv {

/// R runs x K repetitions of execution times (seconds or microseconds —
/// the unit is the caller's; metrics are unit-free or in the same unit).
class RunMatrix {
 public:
  RunMatrix() = default;

  /// Creates an empty matrix labelled `label` (used by reports).
  explicit RunMatrix(std::string label) : label_(std::move(label)) {}

  /// Appends a completed run. Runs may have different repetition counts.
  void add_run(std::vector<double> rep_times);

  /// Appends every run of `other` after this matrix's runs. Public merge
  /// surface for external harnesses that split one configuration's runs
  /// across pools or processes; the in-process ParallelRunner does not
  /// need it (workers write into pre-sized row slots instead). The label
  /// of `other` is ignored.
  void append_runs(const RunMatrix& other);

  /// Number of runs recorded.
  [[nodiscard]] std::size_t runs() const noexcept { return data_.size(); }
  /// Repetition times of run `r`.
  [[nodiscard]] std::span<const double> run(std::size_t r) const {
    return data_.at(r);
  }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  /// Relabels the matrix (the result cache normalizes computed and
  /// cache-loaded matrices to the same cell label).
  void set_label(std::string label) { label_ = std::move(label); }

  /// Summary of run `r`.
  [[nodiscard]] stats::Summary run_summary(std::size_t r) const;
  /// Mean execution time of run `r`.
  [[nodiscard]] double run_mean(std::size_t r) const;
  /// Coefficient of variation within run `r` (Fig. 5 metric).
  [[nodiscard]] double run_cv(std::size_t r) const;
  /// min/mean of run `r` (Fig. 3/4 lower whisker).
  [[nodiscard]] double run_norm_min(std::size_t r) const;
  /// max/mean of run `r` (Fig. 3/4 upper whisker).
  [[nodiscard]] double run_norm_max(std::size_t r) const;

  /// Per-run means across all runs (the paper's "Avg." series).
  [[nodiscard]] std::vector<double> run_means() const;
  /// Per-run CVs across all runs.
  [[nodiscard]] std::vector<double> run_cvs() const;

  /// Summary over all repetitions of all runs pooled together.
  [[nodiscard]] stats::Summary pooled_summary() const;

  /// Grand mean over runs of run means.
  [[nodiscard]] double grand_mean() const;

  /// CV *of the run means* — the run-to-run variability metric.
  [[nodiscard]] double run_to_run_cv() const;

  /// Largest run mean divided by smallest run mean (>= 1); the paper's
  /// "run X took noticeably longer" indicator.
  [[nodiscard]] double run_mean_spread() const;

  /// Between/within variance decomposition over the whole matrix.
  [[nodiscard]] stats::VarianceComponents variance_components() const;

  /// All repetition times flattened (row-major).
  [[nodiscard]] std::vector<double> flatten() const;

  /// Underlying storage (for serialization).
  [[nodiscard]] const std::vector<std::vector<double>>& rows() const noexcept {
    return data_;
  }

 private:
  std::string label_;
  std::vector<std::vector<double>> data_;
};

}  // namespace omv
