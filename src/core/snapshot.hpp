#pragma once
// Versioned, endian-explicit binary snapshots of simulator run state.
//
// A snapshot is a flat sequence of named, typed field records behind a fixed
// header (magic + format version). Writers emit every multi-byte quantity in
// little-endian byte order regardless of host endianness; readers decode the
// same way, so snapshot files are portable across machines. Readers are
// strict: any mismatch — wrong magic, version skew, unexpected field name or
// type, truncated payload — raises `SnapshotError` with the byte offset of
// the offending record, mirroring the scenario parser's `origin:line`
// diagnostics.
//
// Stateful components implement a single private `snapshot_fields(V&)`
// template enumerating their fields once; the `Capture` and `Restore`
// visitors drive it for writing and reading respectively, so the two
// directions (and the field naming that versions the format) can't disagree.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace omv::snap {

/// 12-byte magic prefix of every snapshot buffer (no trailing NUL on disk).
inline constexpr std::string_view kMagic = "omnivar-snap";
/// Format version following the magic; bump on any layout change.
inline constexpr std::uint32_t kFormatVersion = 1;
/// Human-readable format tag, reported by `omnivar --version`.
inline constexpr const char* kSnapshotFormat = "omnivar-snap-v1";

/// Strict snapshot failure. Messages are byte-offset-numbered:
///   `<origin>: byte <offset>: <what>`
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws SnapshotError with the canonical `<origin>: byte <off>: ...` text.
[[noreturn]] void fail(const std::string& origin, std::size_t offset,
                       const std::string& what);

/// On-wire type codes for field records.
enum class FieldType : std::uint8_t {
  kU64 = 1,
  kF64 = 2,
  kBool = 3,
  kStr = 4,
  kVecF64 = 5,
  kVecU64 = 6,
  kBytes = 7,
};

/// Name of a field type for diagnostics.
const char* field_type_name(FieldType t) noexcept;

/// Serializes named, typed fields into a little-endian byte buffer. The
/// header (magic + version) is emitted by the constructor.
class SnapshotWriter {
 public:
  SnapshotWriter();

  void field_u64(std::string_view name, std::uint64_t v);
  void field_f64(std::string_view name, double v);
  void field_bool(std::string_view name, bool v);
  void field_str(std::string_view name, std::string_view v);
  void field_vec_f64(std::string_view name, const std::vector<double>& v);
  void field_vec_u64(std::string_view name,
                     const std::vector<std::uint64_t>& v);
  void field_bytes(std::string_view name, std::string_view v);

  /// The serialized buffer so far.
  const std::string& buffer() const noexcept { return buf_; }
  /// Moves the buffer out; the writer must not be reused afterwards.
  std::string take() noexcept { return std::move(buf_); }

 private:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  void begin_field(std::string_view name, FieldType t);

  std::string buf_;
};

/// Decodes a snapshot buffer produced by SnapshotWriter. The constructor
/// validates the header; every field accessor validates name and type before
/// decoding the payload. All failures throw SnapshotError with the byte
/// offset of the offending record.
class SnapshotReader {
 public:
  SnapshotReader(std::string_view bytes, std::string origin);

  std::uint64_t field_u64(std::string_view name);
  double field_f64(std::string_view name);
  bool field_bool(std::string_view name);
  std::string field_str(std::string_view name);
  std::vector<double> field_vec_f64(std::string_view name);
  std::vector<std::uint64_t> field_vec_u64(std::string_view name);
  std::string field_bytes(std::string_view name);

  /// Reads a u64 field and requires it to equal `want`; used for geometry
  /// guards (thread/core/NUMA counts) so cross-machine restores fail loudly.
  void expect_u64(std::string_view name, std::uint64_t want,
                  std::string_view what);

  /// Requires the buffer to be fully consumed.
  void expect_end();

  std::size_t offset() const noexcept { return pos_; }
  const std::string& origin() const noexcept { return origin_; }

  [[noreturn]] void fail_here(std::size_t offset, const std::string& what) const;

 private:
  std::uint8_t get_u8(std::string_view what);
  std::uint32_t get_u32(std::string_view what);
  std::uint64_t get_u64(std::string_view what);
  double get_f64(std::string_view what);
  std::string_view get_raw(std::size_t n, std::string_view what);
  /// Reads the record header and validates name + type; returns the record's
  /// start offset (for payload diagnostics).
  std::size_t begin_field(std::string_view name, FieldType t);

  std::string_view bytes_;
  std::size_t pos_ = 0;
  std::string origin_;
};

/// Identity stamp embedded in every snapshot: which engine + scenario + cell
/// produced it, and where the protocol cursor stood (run/rep) when it was
/// taken. Restores reject any mismatch strictly.
struct SnapshotStamp {
  std::string engine;    ///< cli engine version string
  std::string scenario;  ///< scenario fingerprint ("" when none)
  std::string cell;      ///< campaign cell hash ("" for standalone snapshots)
  std::uint64_t run = 0;
  std::uint64_t rep = 0;
};

/// Writes the stamp fields right after the header.
void write_stamp(SnapshotWriter& w, const SnapshotStamp& s);

/// Reads the stamp. When `want` is non-null, each identity field (engine,
/// scenario, cell) must equal the corresponding field of `*want` exactly;
/// a mismatch throws SnapshotError at that field's byte offset.
SnapshotStamp read_stamp(SnapshotReader& r, const SnapshotStamp* want = nullptr);

/// Loads just the stamp from a snapshot file, or nullopt if the file is
/// missing/unreadable/not a valid snapshot. Used by `--resume <path>` to
/// decide which campaign cell a snapshot belongs to.
std::optional<SnapshotStamp> try_peek_stamp(const std::string& path);

/// Atomically writes `bytes` to `path` (tmp file + rename).
void save_snapshot_file(const std::string& path, const std::string& bytes);

/// Reads a whole snapshot file; throws SnapshotError on I/O failure.
std::string load_snapshot_file(const std::string& path);

// ---------------------------------------------------------------------------
// Field visitors
// ---------------------------------------------------------------------------

namespace detail {
/// Shared prefix-stack bookkeeping: nested objects contribute dotted name
/// segments, so NoiseModel's daemon RNG cursor serializes as
/// "noise.daemon_rng.state".
class PrefixStack {
 public:
  void push(std::string_view seg) { stack_.emplace_back(seg); }
  void pop() { stack_.pop_back(); }
  std::string full(std::string_view name) const {
    std::string out;
    for (const auto& seg : stack_) {
      out += seg;
      out += '.';
    }
    out += name;
    return out;
  }

 private:
  std::vector<std::string> stack_;
};
}  // namespace detail

/// Writing visitor: `snapshot_fields(Capture&)` serializes each field.
class Capture {
 public:
  explicit Capture(SnapshotWriter& w) : w_(w) {}

  void field(std::string_view name, std::uint64_t& v) {
    w_.field_u64(prefix_.full(name), v);
  }
  void field(std::string_view name, double& v) {
    w_.field_f64(prefix_.full(name), v);
  }
  void field(std::string_view name, bool& v) {
    w_.field_bool(prefix_.full(name), v);
  }
  void field(std::string_view name, std::vector<double>& v) {
    w_.field_vec_f64(prefix_.full(name), v);
  }
  void field(std::string_view name, std::vector<std::uint64_t>& v) {
    w_.field_vec_u64(prefix_.full(name), v);
  }
  void field(std::string_view name, std::vector<bool>& v);
  void field(std::string_view name, std::vector<std::vector<double>>& v);

  /// Recurses into a nested stateful object under a dotted name segment.
  template <typename T>
  void object(std::string_view name, T& obj) {
    prefix_.push(name);
    obj.snapshot_fields(*this);
    prefix_.pop();
  }

  static constexpr bool is_restore = false;

 private:
  SnapshotWriter& w_;
  detail::PrefixStack prefix_;
};

/// Reading visitor: the same `snapshot_fields` drives strict decode-in-order.
class Restore {
 public:
  explicit Restore(SnapshotReader& r) : r_(r) {}

  void field(std::string_view name, std::uint64_t& v) {
    v = r_.field_u64(prefix_.full(name));
  }
  void field(std::string_view name, double& v) {
    v = r_.field_f64(prefix_.full(name));
  }
  void field(std::string_view name, bool& v) {
    v = r_.field_bool(prefix_.full(name));
  }
  void field(std::string_view name, std::vector<double>& v) {
    v = r_.field_vec_f64(prefix_.full(name));
  }
  void field(std::string_view name, std::vector<std::uint64_t>& v) {
    v = r_.field_vec_u64(prefix_.full(name));
  }
  void field(std::string_view name, std::vector<bool>& v);
  void field(std::string_view name, std::vector<std::vector<double>>& v);

  template <typename T>
  void object(std::string_view name, T& obj) {
    prefix_.push(name);
    obj.snapshot_fields(*this);
    prefix_.pop();
  }

  SnapshotReader& reader() noexcept { return r_; }

  static constexpr bool is_restore = true;

 private:
  SnapshotReader& r_;
  detail::PrefixStack prefix_;
};

// ---------------------------------------------------------------------------
// Checkpoint policy (threaded from the CLI through the protocol loop)
// ---------------------------------------------------------------------------

/// Where and how often the protocol loop checkpoints, and where it resumes
/// from. `stamp` carries the identity fields (engine/scenario/cell); the
/// run/rep cursor is filled per write.
struct CheckpointPolicy {
  std::string path;         ///< write destination ("" = never write)
  std::string resume_from;  ///< read source ("" = fresh start)
  std::size_t every_reps = 0;
  SnapshotStamp stamp;
  std::size_t stop_after = 0;  ///< test hook: abort after N writes (0 = off)

  bool engaged() const noexcept {
    return every_reps > 0 || !resume_from.empty();
  }
};

/// Thrown by the protocol loop when `CheckpointPolicy::stop_after` trips;
/// lets tests and the CI round-trip lane kill a run right after a
/// checkpoint lands, then resume it in a fresh process.
class CheckpointStop : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Process-wide count of checkpoint writes (for stop_after and tests).
std::size_t checkpoint_writes() noexcept;
void note_checkpoint_write() noexcept;
void reset_checkpoint_writes() noexcept;

}  // namespace omv::snap
