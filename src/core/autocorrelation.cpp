#include "core/autocorrelation.hpp"

#include <algorithm>
#include <cmath>

#include "core/stat_tests.hpp"

namespace omv::stats {

std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t max_lag) {
  const std::size_t n = xs.size();
  if (n < 3 || max_lag == 0) return {};
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);
  double denom = 0.0;
  for (double x : xs) denom += (x - mean) * (x - mean);
  // NaN input makes denom NaN, and `NaN <= 0.0` is false — without the
  // isnan check a poisoned series would produce an all-NaN correlogram
  // that downstream peak scans silently read as "no periodicity". Treat it
  // like the other degenerate inputs: no correlogram at all.
  if (std::isnan(denom) || denom <= 0.0) return {};

  max_lag = std::min(max_lag, n - 1);
  std::vector<double> r;
  r.reserve(max_lag);
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double num = 0.0;
    for (std::size_t i = 0; i + k < n; ++i) {
      num += (xs[i] - mean) * (xs[i + k] - mean);
    }
    r.push_back(num / denom);
  }
  return r;
}

Periodicity dominant_period(std::span<const double> xs, std::size_t max_lag) {
  Periodicity p;
  const auto r = autocorrelation(xs, max_lag);
  if (r.size() < 3) return p;
  const double band = 2.0 / std::sqrt(static_cast<double>(xs.size()));
  // Scan lags >= 2 (index 1) for the strongest local maximum.
  for (std::size_t i = 1; i < r.size(); ++i) {
    const bool left_ok = r[i] > r[i - 1];
    const bool right_ok = i + 1 >= r.size() || r[i] >= r[i + 1];
    if (left_ok && right_ok && r[i] > p.correlation) {
      p.lag = i + 1;  // r[0] is lag 1
      p.correlation = r[i];
    }
  }
  p.significant = p.lag != 0 && p.correlation > band;
  if (!p.significant) {
    p.lag = 0;
    p.correlation = p.lag ? p.correlation : 0.0;
  }
  return p;
}

LjungBox ljung_box(std::span<const double> xs, std::size_t lags) {
  LjungBox lb;
  const auto r = autocorrelation(xs, lags);
  if (r.empty()) return lb;
  const double n = static_cast<double>(xs.size());
  double q = 0.0;
  for (std::size_t k = 0; k < r.size(); ++k) {
    q += r[k] * r[k] / (n - static_cast<double>(k + 1));
  }
  lb.statistic = n * (n + 2.0) * q;
  // Chi-square upper tail with df = lags via Wilson-Hilferty.
  const double df = static_cast<double>(r.size());
  const double z = (std::cbrt(lb.statistic / df) - (1.0 - 2.0 / (9.0 * df))) /
                   std::sqrt(2.0 / (9.0 * df));
  lb.p_value = 1.0 - normal_cdf(z);
  return lb;
}

}  // namespace omv::stats
