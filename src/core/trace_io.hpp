#pragma once
// CSV import/export for experiment artifacts.
//
// RunMatrix and frequency traces round-trip through a plain CSV dialect so
// experiments can be archived, diffed across sessions, and analyzed with
// external tooling (the paper's methodology is exactly this: archive the
// runs, study the distributions offline).

#include <iosfwd>
#include <string>

#include "core/run_matrix.hpp"

namespace omv::io {

/// Writes a RunMatrix as CSV: header "run,rep,time", a "# runs=N" metadata
/// line (the authoritative run count, preserving empty runs), then one row
/// per repetition with 17-significant-digit times (lossless double
/// round-trip).
void write_run_matrix_csv(std::ostream& os, const RunMatrix& m);
[[nodiscard]] std::string run_matrix_to_csv(const RunMatrix& m);

/// Parses the CSV produced by write_run_matrix_csv. Rows may arrive in any
/// order; runs are reassembled by index; lines starting with '#' are
/// metadata/comments; CRLF line endings are tolerated. The parser is
/// strict — std::invalid_argument is thrown on:
///   * a bad header or malformed run/rep/time field,
///   * trailing garbage after the time field ("0,0,1.5,junk"),
///   * duplicate (run, rep) cells (would silently overwrite a measurement),
///   * gapped rep indices within a run (a lost repetition must not be
///     silently compacted),
///   * a gap in run indices when the file carries no "# runs=N" metadata
///     (files written by write_run_matrix_csv always do; in those, a run
///     with no rows is an intentionally empty run).
[[nodiscard]] RunMatrix read_run_matrix_csv(std::istream& is,
                                            std::string label = "");
[[nodiscard]] RunMatrix run_matrix_from_csv(const std::string& csv,
                                            std::string label = "");

/// Writes / reads to a file path (throws std::runtime_error on IO failure).
void save_run_matrix(const std::string& path, const RunMatrix& m);
[[nodiscard]] RunMatrix load_run_matrix(const std::string& path,
                                        std::string label = "");

}  // namespace omv::io
