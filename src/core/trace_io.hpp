#pragma once
// CSV import/export for experiment artifacts.
//
// RunMatrix and frequency traces round-trip through a plain CSV dialect so
// experiments can be archived, diffed across sessions, and analyzed with
// external tooling (the paper's methodology is exactly this: archive the
// runs, study the distributions offline).

#include <iosfwd>
#include <string>

#include "core/run_matrix.hpp"

namespace omv::io {

/// Writes a RunMatrix as CSV: header "run,rep,time", one row per
/// repetition.
void write_run_matrix_csv(std::ostream& os, const RunMatrix& m);
[[nodiscard]] std::string run_matrix_to_csv(const RunMatrix& m);

/// Parses the CSV produced by write_run_matrix_csv. Rows may arrive in any
/// order; runs are reassembled by index (missing runs become empty and are
/// dropped from the tail). Throws std::invalid_argument on malformed input.
[[nodiscard]] RunMatrix read_run_matrix_csv(std::istream& is,
                                            std::string label = "");
[[nodiscard]] RunMatrix run_matrix_from_csv(const std::string& csv,
                                            std::string label = "");

/// Writes / reads to a file path (throws std::runtime_error on IO failure).
void save_run_matrix(const std::string& path, const RunMatrix& m);
[[nodiscard]] RunMatrix load_run_matrix(const std::string& path,
                                        std::string label = "");

}  // namespace omv::io
