#pragma once
// Mitigation advisor.
//
// The paper's conclusion: variability "can be reduced considerably by
// applying thread-pinning, leaving the additional hardware threads
// implemented by SMT for OS activities", while sparing cores for the OS
// avoids the worst-case interference. This module turns that playbook into
// an API: given the machine and a measured characterization, recommend a
// concrete configuration (thread count, OMP_PLACES, OMP_PROC_BIND) plus a
// rationale per recommendation.

#include <string>
#include <vector>

#include "core/characterize.hpp"
#include "topo/topology.hpp"

namespace omv::advisor {

/// What the application was observed doing (changes the advice: memory-
/// bound codes care about NUMA data locality; sync-heavy codes care about
/// noise absorption the most).
enum class WorkloadKind { compute_bound, memory_bound, sync_heavy, unknown };

/// How the measured configuration was bound.
struct ObservedConfig {
  std::size_t n_threads = 0;
  bool pinned = false;
  bool used_smt_siblings = false;  ///< both HW threads of cores in use.
  std::size_t spare_cores = 0;     ///< physical cores left fully idle.
};

/// One actionable recommendation.
struct Recommendation {
  std::string action;     ///< short imperative ("pin threads", ...).
  std::string rationale;  ///< why, referencing the observed signature.
  /// Concrete environment to apply, when the action maps to one.
  std::string omp_places;
  std::string omp_proc_bind;
  std::size_t omp_num_threads = 0;
};

/// Full advice: ordered list (most impactful first) plus the suggested
/// final environment.
struct Advice {
  std::vector<Recommendation> recommendations;
  std::string summary;  ///< one-paragraph version.
};

/// Computes mitigation advice from a characterization of the observed runs.
[[nodiscard]] Advice advise(const topo::Machine& machine,
                            const Characterization& ch,
                            const ObservedConfig& observed,
                            WorkloadKind kind = WorkloadKind::unknown);

/// Builds the OMP_PLACES string for "n threads on distinct physical cores,
/// SMT siblings left idle, sparing the last `spare` cores for the OS" —
/// the paper's recommended stable configuration.
[[nodiscard]] std::string stable_places(const topo::Machine& machine,
                                        std::size_t n_threads,
                                        std::size_t spare = 2);

/// Largest thread count the stable configuration supports on a machine
/// (physical cores minus spares).
[[nodiscard]] std::size_t stable_max_threads(const topo::Machine& machine,
                                             std::size_t spare = 2);

}  // namespace omv::advisor
