#include "core/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "core/deadline.hpp"

namespace omv {

void BatchResult::merge(BatchResult other) {
  matrices_.reserve(matrices_.size() + other.matrices_.size());
  for (auto& m : other.matrices_) matrices_.push_back(std::move(m));
}

const RunMatrix* BatchResult::find(const std::string& label) const noexcept {
  for (const auto& m : matrices_) {
    if (m.label() == label) return &m;
  }
  return nullptr;
}

std::size_t BatchResult::total_runs() const noexcept {
  std::size_t n = 0;
  for (const auto& m : matrices_) n += m.runs();
  return n;
}

std::size_t resolve_jobs(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ParallelRunner::ParallelRunner(ParallelConfig cfg)
    : jobs_(resolve_jobs(cfg.jobs)) {}

namespace {

/// One (cell, run) work item plus where its rows land.
struct RunTask {
  RunSlot slot;
  std::vector<double>* out = nullptr;
};

/// Executes one task: build the run's private kernel, run warmups + timed
/// repetitions with the exact serial arithmetic (execute_run).
void execute_task(const std::vector<ExperimentCell>& cells,
                  const RunTask& task) {
  const ExperimentCell& cell = cells[task.slot.cell];
  const RepKernel kernel = cell.make_kernel(task.slot);
  *task.out = execute_run(cell.spec, kernel, task.slot.run,
                          task.slot.run_seed);
}

/// Minimal work-stealing scheduler over a fixed task set: each worker owns
/// a deque seeded round-robin, pops its own back (LIFO, cache-warm) and
/// steals from other queues' fronts (FIFO, oldest — classic Arora/
/// Blumofe/Plaxton discipline with locks instead of a lock-free deque;
/// run-granularity tasks are far too coarse for deque contention to show).
class StealingScheduler {
 public:
  StealingScheduler(std::size_t workers, std::vector<RunTask> tasks)
      : queues_(workers) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      queues_[i % workers].tasks.push_back(std::move(tasks[i]));
    }
  }

  /// Runs all tasks on `workers` threads; rethrows the first kernel
  /// exception after every worker has stopped. Workers adopt the calling
  /// thread's cell-deadline slot so a sharded cell's --cell-timeout is
  /// polled on every shard thread, not just the submitter.
  void run_all(const std::vector<ExperimentCell>& cells) {
    core::CellDeadline* deadline = core::current_cell_deadline();
    std::vector<std::thread> threads;
    threads.reserve(queues_.size());
    for (std::size_t w = 0; w < queues_.size(); ++w) {
      threads.emplace_back([this, &cells, w, deadline] {
        (void)core::adopt_cell_deadline(deadline);
        worker_loop(cells, w);
      });
    }
    for (auto& t : threads) t.join();
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<RunTask> tasks;
  };

  std::optional<RunTask> pop_own(std::size_t w) {
    std::lock_guard lock(queues_[w].mutex);
    if (queues_[w].tasks.empty()) return std::nullopt;
    RunTask t = std::move(queues_[w].tasks.back());
    queues_[w].tasks.pop_back();
    return t;
  }

  std::optional<RunTask> steal(std::size_t thief) {
    for (std::size_t k = 1; k < queues_.size(); ++k) {
      const std::size_t victim = (thief + k) % queues_.size();
      std::lock_guard lock(queues_[victim].mutex);
      if (queues_[victim].tasks.empty()) continue;
      RunTask t = std::move(queues_[victim].tasks.front());
      queues_[victim].tasks.pop_front();
      return t;
    }
    return std::nullopt;
  }

  void worker_loop(const std::vector<ExperimentCell>& cells, std::size_t w) {
    while (!cancelled_.load(std::memory_order_relaxed)) {
      auto task = pop_own(w);
      if (!task) task = steal(w);
      if (!task) return;  // every queue drained
      try {
        execute_task(cells, *task);
      } catch (...) {
        std::lock_guard lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
        cancelled_.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }

  std::vector<Queue> queues_;
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  std::atomic<bool> cancelled_{false};
};

}  // namespace

BatchResult ParallelRunner::run_sweep(
    const std::vector<ExperimentCell>& cells) const {
  // Pre-size the result grid so workers write to disjoint slots and the
  // final assembly preserves protocol (cell, run) order exactly.
  std::vector<std::vector<std::vector<double>>> grid(cells.size());
  std::vector<RunTask> tasks;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    grid[c].resize(cells[c].spec.runs);
    for (std::size_t r = 0; r < cells[c].spec.runs; ++r) {
      RunTask t;
      t.slot = {c, r, derive_run_seed(cells[c].spec.seed, r)};
      t.out = &grid[c][r];
      tasks.push_back(std::move(t));
    }
  }

  if (jobs_ <= 1 || tasks.size() <= 1) {
    // Inline fallback: no pool, same code path per task.
    for (const auto& t : tasks) execute_task(cells, t);
  } else {
    const std::size_t workers = std::min(jobs_, tasks.size());
    StealingScheduler scheduler(workers, std::move(tasks));
    scheduler.run_all(cells);
  }

  BatchResult batch;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    RunMatrix m(cells[c].spec.name);
    for (auto& row : grid[c]) m.add_run(std::move(row));
    batch.add(std::move(m));
  }
  return batch;
}

RunMatrix ParallelRunner::run(const ExperimentSpec& spec,
                              const RunKernelFactory& make_kernel) const {
  std::vector<ExperimentCell> cells(1);
  cells[0].spec = spec;
  cells[0].make_kernel = make_kernel;
  BatchResult batch = run_sweep(cells);
  return batch.take(0);
}

RunMatrix run_experiment_parallel(const ExperimentSpec& spec,
                                  const RunKernelFactory& make_kernel,
                                  std::size_t jobs) {
  ParallelConfig cfg;
  cfg.jobs = jobs;
  return ParallelRunner(cfg).run(spec, make_kernel);
}

CellPool::CellPool(std::size_t workers) {
  const std::size_t n = std::max<std::size_t>(1, workers);
  threads_.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

CellPool::~CellPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::shared_ptr<CellPool::Task> CellPool::pop_best() {
  // Linear scan for (max priority, min seq). Campaigns queue at most a few
  // hundred cells and submitters block per cell, so the live queue stays
  // tiny; a heap would not pay for its complexity here.
  std::size_t best = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (best == queue_.size() || queue_[i]->priority > queue_[best]->priority ||
        (queue_[i]->priority == queue_[best]->priority &&
         queue_[i]->seq < queue_[best]->seq)) {
      best = i;
    }
  }
  if (best == queue_.size()) return nullptr;
  std::shared_ptr<Task> task = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  return task;
}

void CellPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing pending
      task = pop_best();
    }
    try {
      (*task->fn)();
      task->done.set_value();
    } catch (...) {
      task->done.set_exception(std::current_exception());
    }
  }
}

void CellPool::run(double priority, const std::function<void()>& fn) {
  auto task = std::make_shared<Task>();
  task->priority = priority;
  task->fn = &fn;
  std::future<void> done = task->done.get_future();
  {
    std::lock_guard lock(mutex_);
    task->seq = next_seq_++;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  done.get();
}

}  // namespace omv
