#include "core/spec_hash.hpp"

#include <charconv>
#include <cstdio>

#include "core/experiment.hpp"

namespace omv {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

SpecKey& SpecKey::add(std::string_view field, std::string_view value) {
  canonical_ += std::to_string(field.size());
  canonical_ += ':';
  canonical_ += field;
  canonical_ += '=';
  canonical_ += std::to_string(value.size());
  canonical_ += ':';
  canonical_ += value;
  canonical_ += ';';
  return *this;
}

SpecKey& SpecKey::add_uint(std::string_view field, std::uint64_t value) {
  return add(field, std::string_view(std::to_string(value)));
}

SpecKey& SpecKey::add_int(std::string_view field, std::int64_t value) {
  return add(field, std::string_view(std::to_string(value)));
}

SpecKey& SpecKey::add(std::string_view field, bool value) {
  return add(field, std::string_view(value ? "true" : "false"));
}

SpecKey& SpecKey::add(std::string_view field, double value) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return add(field, std::string_view(buf, res.ptr - buf));
}

SpecKey& SpecKey::add_spec(const ExperimentSpec& spec) {
  add("seed", static_cast<std::uint64_t>(spec.seed));
  add("runs", spec.runs);
  add("reps", spec.reps);
  add("warmup", spec.warmup);
  return *this;
}

std::uint64_t SpecKey::hash64() const noexcept { return fnv1a64(canonical_); }

std::string SpecKey::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash64()));
  return buf;
}

}  // namespace omv
