#pragma once
// Canonical experiment-cell fingerprints for the result cache.
//
// A campaign cell (one run_protocol invocation of one harness) is uniquely
// identified by its label, protocol parameters (seed/runs/reps/warmup) and
// benchmark configuration (platform, threads, places, construct, ...). The
// SpecKey builds a canonical `field=value;` string out of those and hashes
// it with FNV-1a 64; the hex hash names the cached RunMatrix CSV while the
// canonical string is persisted alongside it so collisions and stale keys
// are detected on load instead of silently serving the wrong data.

#include <concepts>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace omv {

struct ExperimentSpec;

/// FNV-1a 64-bit over raw bytes (seed-stable across platforms and builds).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Ordered, canonical key of one cacheable experiment cell.
class SpecKey {
 public:
  /// Appends one field. Field order is significant (the canonical string is
  /// ordered), and both name and value are length-prefixed so adjacent
  /// fields cannot alias ("ab"+"c" vs "a"+"bc").
  SpecKey& add(std::string_view field, std::string_view value);
  /// Without this overload a string literal would convert to bool (a
  /// standard conversion, preferred over string_view's user-defined one)
  /// and every literal-valued field would silently become "true".
  SpecKey& add(std::string_view field, const char* value) {
    return add(field, std::string_view(value));
  }
  /// One template for all integer types: fixed-width overloads would be
  /// ambiguous for std::size_t on platforms where it is a distinct type.
  template <std::integral T>
    requires(!std::same_as<T, bool>)
  SpecKey& add(std::string_view field, T value) {
    if constexpr (std::is_signed_v<T>) {
      return add_int(field, static_cast<std::int64_t>(value));
    } else {
      return add_uint(field, static_cast<std::uint64_t>(value));
    }
  }
  SpecKey& add(std::string_view field, bool value);
  /// Doubles are rendered in shortest round-trip form, so the key is exact.
  SpecKey& add(std::string_view field, double value);

  /// Appends the protocol parameters of `spec` (seed, runs, reps, warmup).
  SpecKey& add_spec(const ExperimentSpec& spec);

  /// The canonical string all fields were folded into.
  [[nodiscard]] const std::string& canonical() const noexcept {
    return canonical_;
  }

  /// FNV-1a 64 of the canonical string.
  [[nodiscard]] std::uint64_t hash64() const noexcept;

  /// hash64 as 16 lowercase hex digits (cache file stem).
  [[nodiscard]] std::string hex() const;

 private:
  SpecKey& add_uint(std::string_view field, std::uint64_t value);
  SpecKey& add_int(std::string_view field, std::int64_t value);

  std::string canonical_;
};

}  // namespace omv
