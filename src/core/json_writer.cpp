#include "core/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace omv::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope::object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::object || pending_key_) {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope::array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::array) {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Scope::object || pending_key_) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
  os_ << '"' << escape(name) << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  os_ << '"' << escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  os_ << number(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value_uint(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value_int(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) {
    return;  // root value
  }
  if (stack_.back() == Scope::object) {
    if (!pending_key_) {
      throw std::logic_error("JsonWriter: value in object without key()");
    }
    pending_key_ = false;
    return;
  }
  // Array element.
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
}

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

std::string JsonWriter::str() const {
  if (!stack_.empty() || pending_key_) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return os_.str() + "\n";
}

}  // namespace omv::json
