#pragma once
// Percentile-bootstrap confidence intervals.
//
// The paper argues from repeated runs without kernel tracing; bootstrap CIs
// let the harness state whether an observed min/max spread or CV difference
// is statistically meaningful given only 10 runs x 100 repetitions.

#include <cstdint>
#include <functional>
#include <span>

namespace omv::stats {

/// A two-sided confidence interval for a statistic.
struct ConfidenceInterval {
  double point = 0.0;  ///< statistic on the original sample.
  double lo = 0.0;     ///< lower CI bound.
  double hi = 0.0;     ///< upper CI bound.
  double level = 0.95;
};

/// Statistic evaluated on a (resampled) sample.
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap CI with `resamples` resamples at confidence `level`.
/// Deterministic given `seed`. An empty sample returns the zero interval;
/// a single-element sample (or resamples == 0) collapses to a point
/// interval; a sample containing NaN yields NaN point/lo/hi.
[[nodiscard]] ConfidenceInterval bootstrap_ci(std::span<const double> xs,
                                              const Statistic& stat,
                                              std::size_t resamples = 2000,
                                              double level = 0.95,
                                              std::uint64_t seed = 42);

/// Convenience: CI of the mean.
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs,
                                                   std::size_t resamples = 2000,
                                                   double level = 0.95,
                                                   std::uint64_t seed = 42);

/// Convenience: CI of the median.
[[nodiscard]] ConfidenceInterval bootstrap_median_ci(
    std::span<const double> xs, std::size_t resamples = 2000,
    double level = 0.95, std::uint64_t seed = 42);

/// Convenience: CI of the coefficient of variation.
[[nodiscard]] ConfidenceInterval bootstrap_cv_ci(std::span<const double> xs,
                                                 std::size_t resamples = 2000,
                                                 double level = 0.95,
                                                 std::uint64_t seed = 42);

}  // namespace omv::stats
