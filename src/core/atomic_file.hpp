#pragma once
// Crash-safe file commits, shared by the cache, snapshot and artifact
// layers.
//
// atomic_write_file writes to a process-unique temp file in the target
// directory and renames it into place, so readers can never observe a
// half-written file — the same discipline snapshot I/O has used since the
// checkpoint PR, hoisted here so cache CSVs, .key commit markers, trace
// sidecars and JSON artifacts all commit the same way. Each call names its
// fault-injection site ("cache", "key", "sidecar", "snapshot", "artifact",
// "campaign", ...) so the deterministic fault plan (core/faultinject.hpp)
// can tear or fail exactly the write a test targets.

#include <string>
#include <string_view>

namespace omv::core {

/// Atomically commits `bytes` to `path` via tmp + rename. Throws
/// std::runtime_error on I/O failure and fault::InjectedFault when the
/// active fault plan fires at `site`:
///   * enospc: throws before writing anything;
///   * torn_write: writes the FIRST HALF of `bytes` directly to `path`
///     (no temp, no rename — the torn file a crashed non-atomic writer
///     would leave) and then throws, so readers' torn-entry tolerance is
///     exercised against a real torn file.
/// An empty `site` never matches fault clauses.
void atomic_write_file(const std::string& path, std::string_view bytes,
                       std::string_view site = {});

/// Reads a whole file into `out`. Returns false when the file is absent or
/// unreadable (no throw — absence is an expected cache miss).
[[nodiscard]] bool read_file(const std::string& path, std::string& out);

/// Best-effort unlink; returns true when the file existed and was removed.
bool remove_file_if_exists(const std::string& path) noexcept;

}  // namespace omv::core
