#include "core/compare.hpp"

#include <cmath>

#include "core/descriptive.hpp"
#include "core/report.hpp"

namespace omv {

double hedges_g(std::span<const double> a, std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2) return 0.0;
  const auto sa = stats::summarize(a);
  const auto sb = stats::summarize(b);
  const double na = static_cast<double>(sa.n);
  const double nb = static_cast<double>(sb.n);
  const double pooled_var = ((na - 1.0) * sa.stddev * sa.stddev +
                             (nb - 1.0) * sb.stddev * sb.stddev) /
                            (na + nb - 2.0);
  if (pooled_var <= 0.0) return 0.0;
  const double d = (sb.mean - sa.mean) / std::sqrt(pooled_var);
  // Small-sample correction.
  const double j = 1.0 - 3.0 / (4.0 * (na + nb) - 9.0);
  return d * j;
}

Comparison compare(const RunMatrix& a, const RunMatrix& b, double alpha) {
  Comparison c;
  c.label_a = a.label().empty() ? "A" : a.label();
  c.label_b = b.label().empty() ? "B" : b.label();

  const auto fa = a.flatten();
  const auto fb = b.flatten();
  const auto sa = stats::summarize(fa);
  const auto sb = stats::summarize(fb);
  c.mean_a = sa.mean;
  c.mean_b = sb.mean;
  c.mean_ratio = sa.mean != 0.0 ? sb.mean / sa.mean : 1.0;
  c.cv_a = sa.cv;
  c.cv_b = sb.cv;
  c.cv_ratio = sa.cv != 0.0 ? sb.cv / sa.cv : (sb.cv > 0.0 ? 1e9 : 1.0);
  c.hedges_g = hedges_g(fa, fb);

  c.welch = stats::welch_t_test(fa, fb, alpha);
  c.mann_whitney = stats::mann_whitney_u(fa, fb, alpha);
  c.ks = stats::ks_test(fa, fb, alpha);
  c.brown_forsythe = stats::brown_forsythe(fa, fb, alpha);
  return c;
}

std::string Comparison::verdict() const {
  std::string out = label_b + " vs " + label_a + ": mean x" +
                    report::fmt(mean_ratio, 3) + " (g=" +
                    report::fmt(hedges_g, 2) + ", p=" +
                    report::fmt(welch.p_value, 4) + "), cv x" +
                    report::fmt(cv_ratio, 2);
  if (b_more_variable()) {
    out += " — significantly MORE variable";
  } else if (b_less_variable()) {
    out += " — significantly LESS variable";
  } else {
    out += " — spread difference not significant";
  }
  return out;
}

}  // namespace omv
