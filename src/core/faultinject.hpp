#pragma once
// Deterministic fault injection for the campaign engine.
//
// A fault plan is parsed from a textual spec (the OMNIVAR_FAULT_SPEC
// environment variable or the --fault-spec flag) and armed process-wide.
// Named sites threaded through the engine — cache commits ("cache", "key",
// "sidecar"), snapshot I/O ("snapshot"), artifact writes ("artifact",
// "campaign") and supervised cell execution — consult the plan at each
// operation, so every failure mode the fault-tolerance layer handles is
// reproducible bit-for-bit in tests and CI: the same spec against the same
// campaign always fires at the same operation.
//
// Spec grammar (comma-separated clauses; whitespace around clauses ignored):
//   cell_throw@N            Nth supervised cell attempt throws (1-based,
//                           counted across the whole process)
//   cell_throw:GLOB         every cell whose label matches GLOB throws
//   cell_throw:GLOB@N       Nth attempt of cells matching GLOB throws
//   torn_write:SITE@N       Nth write at a site matching SITE commits only
//                           half its payload directly to the final path
//                           (simulating a crash mid-write), then reports an
//                           injected I/O error
//   enospc@N                Nth write at any site fails before writing
//   enospc:SITE@N           ... at a site matching SITE
//   slow_cell:GLOB:DURms    cells whose label matches GLOB stall DUR
//                           milliseconds before computing (trips the
//                           per-cell timeout deterministically)
//
// Occurrence counters are per clause and 1-based; a clause without @N fires
// on every match. Parsing is strict: a malformed spec throws
// std::invalid_argument naming the offending clause — a typo'd fault spec
// must never silently run a healthy campaign that CI then treats as a
// fault-survival proof.

#include <chrono>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace omv::fault {

/// Error raised by a fired fault clause. `taxonomy()` feeds the campaign
/// failure classification ("io" for torn_write/enospc, "exception" for
/// cell_throw).
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(std::string taxonomy, const std::string& what)
      : std::runtime_error(what), taxonomy_(std::move(taxonomy)) {}
  [[nodiscard]] const std::string& taxonomy() const noexcept {
    return taxonomy_;
  }

 private:
  std::string taxonomy_;
};

/// Glob match supporting '*' (any substring) and '?' (any one character) —
/// the same dialect as the harness selector globs.
[[nodiscard]] bool glob_match(std::string_view pattern,
                              std::string_view text) noexcept;

enum class FaultKind {
  kCellThrow,
  kTornWrite,
  kEnospc,
  kSlowCell,
};

/// One parsed clause plus its live occurrence counter.
struct FaultClause {
  FaultKind kind = FaultKind::kCellThrow;
  std::string pattern;  ///< site / cell-label glob ("" = any).
  std::size_t occurrence = 0;  ///< fire on the Nth match only (0 = every).
  std::chrono::milliseconds delay{0};  ///< slow_cell stall.
  std::size_t seen = 0;  ///< matches observed so far (counter state).
};

/// What a write site should do about the current operation.
enum class WriteAction {
  kNone,  ///< proceed normally
  kTorn,  ///< write half the payload to the final path, then raise
  kFail,  ///< raise before writing anything
};

/// A parsed fault plan with live counters. Thread-safe: sites may be hit
/// from worker threads.
class FaultPlan {
 public:
  FaultPlan() = default;
  // Movable despite the counter mutex (plans move only while unshared,
  // before any site can touch the counters).
  FaultPlan(FaultPlan&& other) noexcept
      : clauses_(std::move(other.clauses_)) {}
  FaultPlan& operator=(FaultPlan&& other) noexcept {
    clauses_ = std::move(other.clauses_);
    return *this;
  }

  /// Parses `spec`; throws std::invalid_argument naming the bad clause.
  static FaultPlan parse(std::string_view spec);

  /// True when at least one clause is armed.
  [[nodiscard]] bool armed() const noexcept { return !clauses_.empty(); }

  /// Consulted by atomic_write_file for every write at a named site.
  /// Advances matching torn_write/enospc counters; kFail wins over kTorn
  /// when both fire on the same operation.
  [[nodiscard]] WriteAction on_write(std::string_view site);

  /// Consulted by the cell supervisor at the start of every cell attempt.
  /// Advances matching slow_cell/cell_throw counters; returns the injected
  /// stall (zero when none) and throws InjectedFault("exception", ...) when
  /// a cell_throw clause fires. The stall is returned rather than slept
  /// here so the caller can slice it against the cell deadline.
  [[nodiscard]] std::chrono::milliseconds on_cell_attempt(
      std::string_view label);

  [[nodiscard]] const std::vector<FaultClause>& clauses() const noexcept {
    return clauses_;
  }

 private:
  std::vector<FaultClause> clauses_;
  std::mutex mutex_;
};

/// The process-wide plan: parsed lazily from OMNIVAR_FAULT_SPEC on first
/// use (a malformed env spec throws then — callers resolving at startup
/// surface it as a usage error). Never null.
[[nodiscard]] FaultPlan& active_plan();

/// Replaces the process-wide plan (parses `spec`; "" disarms). Used by the
/// CLI for --fault-spec and by tests; throws std::invalid_argument on a
/// malformed spec, leaving the previous plan armed.
void set_active_spec(std::string_view spec);

/// Disarms the process-wide plan and forgets any OMNIVAR_FAULT_SPEC read.
void clear_active_plan();

}  // namespace omv::fault
