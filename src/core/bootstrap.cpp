#include "core/bootstrap.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/descriptive.hpp"
#include "core/rng.hpp"

namespace omv::stats {

ConfidenceInterval bootstrap_ci(std::span<const double> xs,
                                const Statistic& stat, std::size_t resamples,
                                double level, std::uint64_t seed) {
  ConfidenceInterval ci;
  ci.level = level;
  if (xs.empty()) return ci;
  if (has_nan(xs)) {
    // Resampled statistics of a NaN-poisoned sample cannot be ordered, so
    // the percentile bounds would be garbage — propagate NaN throughout.
    ci.point = ci.lo = ci.hi = std::numeric_limits<double>::quiet_NaN();
    return ci;
  }
  ci.point = stat(xs);
  if (xs.size() == 1 || resamples == 0) {
    ci.lo = ci.hi = ci.point;
    return ci;
  }

  Rng rng(seed);
  std::vector<double> resample(xs.size());
  std::vector<double> stats;
  stats.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& v : resample) v = xs[rng.next_below(xs.size())];
    stats.push_back(stat(resample));
  }
  // Only the two interval bounds are needed — select them instead of
  // sorting all R resampled statistics (order statistics are invariant
  // under the partial reorderings selection leaves behind, so the two
  // calls compose and the bounds are bit-identical to the sorted path).
  const double alpha = (1.0 - level) / 2.0;
  ci.lo = percentile_in_place(stats, alpha * 100.0);
  ci.hi = percentile_in_place(stats, (1.0 - alpha) * 100.0);
  return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs,
                                     std::size_t resamples, double level,
                                     std::uint64_t seed) {
  return bootstrap_ci(
      xs, [](std::span<const double> s) { return summarize(s).mean; },
      resamples, level, seed);
}

ConfidenceInterval bootstrap_median_ci(std::span<const double> xs,
                                       std::size_t resamples, double level,
                                       std::uint64_t seed) {
  return bootstrap_ci(
      xs, [](std::span<const double> s) { return percentile(s, 50.0); },
      resamples, level, seed);
}

ConfidenceInterval bootstrap_cv_ci(std::span<const double> xs,
                                   std::size_t resamples, double level,
                                   std::uint64_t seed) {
  return bootstrap_ci(
      xs, [](std::span<const double> s) { return summarize(s).cv; },
      resamples, level, seed);
}

}  // namespace omv::stats
