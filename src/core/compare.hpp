#pragma once
// A/B comparison of two experimental configurations.
//
// The paper's core analytical move is comparing two RunMatrices (pinned vs
// unpinned, ST vs MT, one-NUMA vs cross-NUMA) and deciding whether the
// location and the *spread* differ. This module bundles that decision:
// effect sizes, all four two-sample tests, and a one-line verdict suitable
// for harness output.

#include <string>

#include "core/run_matrix.hpp"
#include "core/stat_tests.hpp"

namespace omv {

/// Result of comparing configuration A against configuration B.
struct Comparison {
  std::string label_a;
  std::string label_b;

  // Location.
  double mean_a = 0.0;
  double mean_b = 0.0;
  double mean_ratio = 1.0;  ///< mean_b / mean_a (>1: B slower).
  /// Hedges' g standardized mean difference (pooled SD, small-sample
  /// corrected). |g| ~ 0.2 small, 0.8 large.
  double hedges_g = 0.0;

  // Spread.
  double cv_a = 0.0;
  double cv_b = 0.0;
  double cv_ratio = 1.0;  ///< cv_b / cv_a (>1: B more variable).

  // Tests (A vs B, two-sided).
  stats::TestResult welch;           ///< means differ?
  stats::TestResult mann_whitney;    ///< distributions shifted?
  stats::TestResult ks;              ///< any distributional difference?
  stats::TestResult brown_forsythe;  ///< variances differ?

  /// True when B is significantly more variable than A (Brown–Forsythe
  /// significant AND cv_b > cv_a) — the paper's "X increases variability"
  /// claim shape.
  [[nodiscard]] bool b_more_variable() const noexcept {
    return brown_forsythe.significant && cv_b > cv_a;
  }
  /// Mirror image: B significantly less variable (a mitigation worked).
  [[nodiscard]] bool b_less_variable() const noexcept {
    return brown_forsythe.significant && cv_b < cv_a;
  }

  /// One-line human-readable verdict.
  [[nodiscard]] std::string verdict() const;
};

/// Compares the pooled repetition times of two matrices.
[[nodiscard]] Comparison compare(const RunMatrix& a, const RunMatrix& b,
                                 double alpha = 0.05);

/// Hedges' g for two samples (0 when either is degenerate).
[[nodiscard]] double hedges_g(std::span<const double> a,
                              std::span<const double> b);

}  // namespace omv
