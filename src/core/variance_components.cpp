#include "core/variance_components.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/stat_tests.hpp"

namespace omv::stats {

VarianceComponents decompose_variance(
    std::span<const std::vector<double>> groups) {
  VarianceComponents vc;

  double total_sum = 0.0;
  double total_n = 0.0;
  std::size_t k = 0;
  double sum_ni_sq = 0.0;
  bool any_nan = false;
  for (const auto& g : groups) {
    if (g.empty()) continue;
    ++k;
    const double ni = static_cast<double>(g.size());
    total_n += ni;
    sum_ni_sq += ni * ni;
    for (double x : g) {
      any_nan |= std::isnan(x);
      total_sum += x;
    }
  }
  if (k < 2 || total_n <= static_cast<double>(k)) return vc;
  if (any_nan) {
    // Without this, NaN sums flow into `ms_within > 0.0` (false for NaN)
    // and the function returns a plausible-looking f=0 / p=1 verdict for a
    // poisoned input. Make every derived quantity NaN instead.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    vc.grand_mean = vc.var_between = vc.var_within = nan;
    vc.icc = vc.f_statistic = vc.p_value = nan;
    return vc;
  }
  vc.grand_mean = total_sum / total_n;

  double ss_between = 0.0;
  double ss_within = 0.0;
  for (const auto& g : groups) {
    if (g.empty()) continue;
    double gsum = 0.0;
    for (double x : g) gsum += x;
    const double gmean = gsum / static_cast<double>(g.size());
    ss_between += static_cast<double>(g.size()) * (gmean - vc.grand_mean) *
                  (gmean - vc.grand_mean);
    for (double x : g) ss_within += (x - gmean) * (x - gmean);
  }

  const double df_between = static_cast<double>(k - 1);
  const double df_within = total_n - static_cast<double>(k);
  const double ms_between = ss_between / df_between;
  const double ms_within = ss_within / df_within;

  // Unequal group sizes: effective n0 (Searle).
  const double n0 = (total_n - sum_ni_sq / total_n) / df_between;

  vc.var_within = ms_within;
  vc.var_between = std::max(0.0, (ms_between - ms_within) / n0);
  const double total_var = vc.var_between + vc.var_within;
  vc.icc = total_var > 0.0 ? vc.var_between / total_var : 0.0;
  if (ms_within > 0.0) {
    vc.f_statistic = ms_between / ms_within;
    vc.p_value = f_upper_p(vc.f_statistic, df_between, df_within);
  } else {
    vc.f_statistic = ms_between > 0.0
                         ? std::numeric_limits<double>::infinity()
                         : 0.0;
    vc.p_value = ms_between > 0.0 ? 0.0 : 1.0;
  }
  return vc;
}

}  // namespace omv::stats
