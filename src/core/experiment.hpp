#pragma once
// Experiment protocol runner.
//
// Encodes the paper's measurement protocol: for each configuration, perform
// `runs` independent runs; within each run execute `warmup` discarded
// repetitions followed by `reps` timed repetitions. The kernel is an
// arbitrary callable returning the measured time of one repetition (the EPCC
// benchmarks measure internally; wall-clock helpers are provided for ad-hoc
// kernels).

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "core/run_matrix.hpp"

namespace omv {

/// Protocol parameters (defaults mirror the paper: 10 runs x 100 reps).
struct ExperimentSpec {
  std::string name = "experiment";
  std::size_t runs = 10;
  std::size_t reps = 100;
  std::size_t warmup = 1;  ///< discarded repetitions per run.
  std::uint64_t seed = 1;  ///< base seed forwarded to run setup.
};

/// Context passed to the per-repetition kernel.
struct RepContext {
  std::size_t run = 0;
  std::size_t rep = 0;       ///< timed repetition index (warmups excluded).
  bool warmup = false;
  std::uint64_t run_seed = 0;  ///< seed derived per run from spec.seed.
};

/// A kernel returns the execution time of one repetition, in the caller's
/// unit (the EPCC harness returns microseconds).
using RepKernel = std::function<double(const RepContext&)>;

/// Optional per-run hooks (e.g. re-create a thread team, reset a simulator).
struct RunHooks {
  std::function<void(std::size_t run, std::uint64_t run_seed)> before_run;
  std::function<void(std::size_t run)> after_run;
};

/// Executes the protocol and collects the RunMatrix.
[[nodiscard]] RunMatrix run_experiment(const ExperimentSpec& spec,
                                       const RepKernel& kernel,
                                       const RunHooks& hooks = {});

/// Executes the warmup + timed repetitions of run `run` and returns its
/// repetition times. This is the single arithmetic shared by the serial
/// run_experiment loop and the ParallelRunner shards, which is what makes
/// parallel results bit-identical to serial ones.
[[nodiscard]] std::vector<double> execute_run(const ExperimentSpec& spec,
                                              const RepKernel& kernel,
                                              std::size_t run,
                                              std::uint64_t run_seed);

/// Wall-clock helper: runs `fn` once and returns elapsed seconds.
template <typename F>
[[nodiscard]] double time_seconds(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  std::forward<F>(fn)();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Wall-clock helper in microseconds (the paper's reporting unit).
template <typename F>
[[nodiscard]] double time_micros(F&& fn) {
  return time_seconds(std::forward<F>(fn)) * 1e6;
}

/// Derives the per-run seed used by run_experiment (exposed so external
/// harnesses can reproduce individual runs).
[[nodiscard]] std::uint64_t derive_run_seed(std::uint64_t base,
                                            std::size_t run) noexcept;

}  // namespace omv
