#include "core/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/atomic_file.hpp"

namespace omv::io {

namespace {

[[noreturn]] void bad_line(const char* what, std::size_t line_no) {
  throw std::invalid_argument("run-matrix CSV: " + std::string(what) +
                              " at line " + std::to_string(line_no));
}

}  // namespace

void write_run_matrix_csv(std::ostream& os, const RunMatrix& m) {
  os << "run,rep,time\n";
  // Authoritative run count: empty runs write no data rows, so without this
  // a trailing empty run would silently vanish on read-back.
  os << "# runs=" << m.runs() << '\n';
  for (std::size_t r = 0; r < m.runs(); ++r) {
    const auto row = m.run(r);
    for (std::size_t k = 0; k < row.size(); ++k) {
      os << r << ',' << k << ',';
      // Full round-trip precision.
      char buf[32];
      const auto res =
          std::to_chars(buf, buf + sizeof(buf), row[k],
                        std::chars_format::general, 17);
      os.write(buf, res.ptr - buf);
      os << '\n';
    }
  }
}

std::string run_matrix_to_csv(const RunMatrix& m) {
  std::ostringstream os;
  write_run_matrix_csv(os, m);
  return os.str();
}

RunMatrix read_run_matrix_csv(std::istream& is, std::string label) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("run-matrix CSV: empty input");
  }
  if (line != "run,rep,time" && line != "run,rep,time\r") {
    throw std::invalid_argument("run-matrix CSV: bad header '" + line + "'");
  }
  std::map<std::size_t, std::map<std::size_t, double>> rows;
  bool have_declared_runs = false;
  std::size_t declared_runs = 0;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Metadata / comment line. "# runs=N" declares the authoritative run
      // count (it preserves empty runs, including trailing ones).
      const std::string_view sv(line);
      constexpr std::string_view kRunsKey = "# runs=";
      if (sv.rfind(kRunsKey, 0) == 0) {
        const char* p = line.data() + kRunsKey.size();
        const char* end = line.data() + line.size();
        std::size_t n = 0;
        const auto r = std::from_chars(p, end, n);
        if (r.ec != std::errc{} || r.ptr != end) {
          bad_line("malformed '# runs=' metadata", line_no);
        }
        have_declared_runs = true;
        declared_runs = n;
      }
      continue;
    }
    std::size_t run = 0;
    std::size_t rep = 0;
    double time = 0.0;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    auto r1 = std::from_chars(p, end, run);
    if (r1.ec != std::errc{} || r1.ptr == end || *r1.ptr != ',') {
      bad_line("bad run", line_no);
    }
    auto r2 = std::from_chars(r1.ptr + 1, end, rep);
    if (r2.ec != std::errc{} || r2.ptr == end || *r2.ptr != ',') {
      bad_line("bad rep", line_no);
    }
    auto r3 = std::from_chars(r2.ptr + 1, end, time);
    if (r3.ec != std::errc{}) {
      bad_line("bad time", line_no);
    }
    if (r3.ptr != end) {
      bad_line("trailing garbage after time", line_no);
    }
    const auto [it, inserted] = rows[run].emplace(rep, time);
    (void)it;
    if (!inserted) {
      throw std::invalid_argument(
          "run-matrix CSV: duplicate cell (run " + std::to_string(run) +
          ", rep " + std::to_string(rep) + ") at line " +
          std::to_string(line_no));
    }
  }
  const std::size_t max_seen_runs =
      rows.empty() ? 0 : rows.rbegin()->first + 1;
  if (have_declared_runs && max_seen_runs > declared_runs) {
    throw std::invalid_argument(
        "run-matrix CSV: data row for run " +
        std::to_string(rows.rbegin()->first) + " but '# runs=" +
        std::to_string(declared_runs) + "' declared");
  }
  const std::size_t n_runs =
      have_declared_runs ? declared_runs : max_seen_runs;
  RunMatrix m(std::move(label));
  for (std::size_t r = 0; r < n_runs; ++r) {
    std::vector<double> reps;
    const auto it = rows.find(r);
    if (it == rows.end()) {
      // A run with no rows is an empty run — legitimate only when the file
      // declares its run count (our writer always does). In a legacy file
      // without metadata a gap means rows went missing: fail loudly rather
      // than emit an empty row that poisons per-run statistics downstream.
      if (!have_declared_runs) {
        throw std::invalid_argument(
            "run-matrix CSV: no rows for run " + std::to_string(r) +
            " (of " + std::to_string(n_runs) +
            ") — truncated or gapped input");
      }
      m.add_run(std::move(reps));
      continue;
    }
    // Rep indices must be exactly 0..K-1: a gap means a lost repetition,
    // and silently compacting it would misalign rep-indexed analyses
    // (autocorrelation, periodic-noise detection).
    std::size_t expected = 0;
    for (const auto& [rep, t] : it->second) {
      if (rep != expected) {
        throw std::invalid_argument(
            "run-matrix CSV: run " + std::to_string(r) + " is missing rep " +
            std::to_string(expected) + " (next present: rep " +
            std::to_string(rep) + ")");
      }
      ++expected;
      reps.push_back(t);
    }
    m.add_run(std::move(reps));
  }
  return m;
}

RunMatrix run_matrix_from_csv(const std::string& csv, std::string label) {
  std::istringstream is(csv);
  return read_run_matrix_csv(is, std::move(label));
}

void save_run_matrix(const std::string& path, const RunMatrix& m) {
  // Atomic commit: a crash mid-save must leave the previous file (or no
  // file), never a torn CSV. Site "cache" — in a campaign these files are
  // the cache entries the fault plan targets.
  core::atomic_write_file(path, run_matrix_to_csv(m), "cache");
}

RunMatrix load_run_matrix(const std::string& path, std::string label) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "'");
  return read_run_matrix_csv(f, std::move(label));
}

}  // namespace omv::io
