#include "core/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace omv::io {

void write_run_matrix_csv(std::ostream& os, const RunMatrix& m) {
  os << "run,rep,time\n";
  for (std::size_t r = 0; r < m.runs(); ++r) {
    const auto row = m.run(r);
    for (std::size_t k = 0; k < row.size(); ++k) {
      os << r << ',' << k << ',';
      // Full round-trip precision.
      char buf[32];
      const auto res =
          std::to_chars(buf, buf + sizeof(buf), row[k],
                        std::chars_format::general, 17);
      os.write(buf, res.ptr - buf);
      os << '\n';
    }
  }
}

std::string run_matrix_to_csv(const RunMatrix& m) {
  std::ostringstream os;
  write_run_matrix_csv(os, m);
  return os.str();
}

RunMatrix read_run_matrix_csv(std::istream& is, std::string label) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("run-matrix CSV: empty input");
  }
  if (line != "run,rep,time" && line != "run,rep,time\r") {
    throw std::invalid_argument("run-matrix CSV: bad header '" + line + "'");
  }
  std::map<std::size_t, std::map<std::size_t, double>> rows;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::size_t run = 0;
    std::size_t rep = 0;
    double time = 0.0;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    auto r1 = std::from_chars(p, end, run);
    if (r1.ec != std::errc{} || r1.ptr == end || *r1.ptr != ',') {
      throw std::invalid_argument("run-matrix CSV: bad run at line " +
                                  std::to_string(line_no));
    }
    auto r2 = std::from_chars(r1.ptr + 1, end, rep);
    if (r2.ec != std::errc{} || r2.ptr == end || *r2.ptr != ',') {
      throw std::invalid_argument("run-matrix CSV: bad rep at line " +
                                  std::to_string(line_no));
    }
    auto r3 = std::from_chars(r2.ptr + 1, end, time);
    if (r3.ec != std::errc{}) {
      throw std::invalid_argument("run-matrix CSV: bad time at line " +
                                  std::to_string(line_no));
    }
    rows[run][rep] = time;
  }
  RunMatrix m(std::move(label));
  if (rows.empty()) return m;
  const std::size_t n_runs = rows.rbegin()->first + 1;
  for (std::size_t r = 0; r < n_runs; ++r) {
    std::vector<double> reps;
    const auto it = rows.find(r);
    if (it != rows.end()) {
      for (const auto& [rep, t] : it->second) {
        (void)rep;
        reps.push_back(t);
      }
    }
    m.add_run(std::move(reps));
  }
  return m;
}

RunMatrix run_matrix_from_csv(const std::string& csv, std::string label) {
  std::istringstream is(csv);
  return read_run_matrix_csv(is, std::move(label));
}

void save_run_matrix(const std::string& path, const RunMatrix& m) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "' for writing");
  write_run_matrix_csv(f, m);
  if (!f) throw std::runtime_error("write failed for '" + path + "'");
}

RunMatrix load_run_matrix(const std::string& path, std::string label) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "'");
  return read_run_matrix_csv(f, std::move(label));
}

}  // namespace omv::io
