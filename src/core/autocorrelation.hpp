#pragma once
// Autocorrelation analysis of repetition-time series.
//
// Periodic noise sources (timer ticks, housekeeping daemons with fixed
// wakeup intervals) leave a periodic imprint on consecutive repetition
// times. The paper's future work asks to "pinpoint the exact sources of OS
// noise"; lag autocorrelation is the first tool for that: a significant
// peak at lag k means a disturbance recurring every k repetitions.

#include <cstddef>
#include <span>
#include <vector>

namespace omv::stats {

/// Sample autocorrelation at lags 1..max_lag (lag 0 omitted; it is 1).
/// Returns an empty vector when the series is shorter than 3, constant, or
/// contains NaN (a poisoned series has no meaningful correlogram; the
/// derived analyses below then report "no structure" instead of garbage).
[[nodiscard]] std::vector<double> autocorrelation(std::span<const double> xs,
                                                  std::size_t max_lag);

/// A detected periodic component.
struct Periodicity {
  std::size_t lag = 0;     ///< repetition period of the disturbance.
  double correlation = 0;  ///< autocorrelation at that lag.
  bool significant = false;  ///< |r| above the white-noise band 2/sqrt(n).
};

/// Strongest autocorrelation peak in lags [2, max_lag]; lag 0 result when
/// nothing is significant. A peak requires r(lag) to be a local maximum.
[[nodiscard]] Periodicity dominant_period(std::span<const double> xs,
                                          std::size_t max_lag = 50);

/// Ljung–Box portmanteau statistic over the first `lags` autocorrelations
/// with an approximate p-value (chi-square via Wilson–Hilferty). Low p =>
/// the series is not white noise (some temporal structure exists).
struct LjungBox {
  double statistic = 0.0;
  double p_value = 1.0;
};
[[nodiscard]] LjungBox ljung_box(std::span<const double> xs,
                                 std::size_t lags = 10);

}  // namespace omv::stats
