#pragma once
// Compensated prefix-sum index for interval queries over append-only event
// streams.
//
// The simulator's hot queries (NoiseModel::preemption_delay,
// FreqModel::mean_factor) reduce to "sum of a weight over the events inside
// a time window". A plain running-sum array answers that as
// prefix[j] - prefix[i], but the difference of two rounded prefixes carries
// an absolute error of ~eps * |prefix[j]| — catastrophic once the stream is
// long and the window short (the exact regime the perf_hotpath bench
// exercises). Storing each prefix as an unevaluated (sum, compensation)
// pair (Neumaier running compensation) makes range() accurate to a couple
// of ulps *of the range itself*, independent of how much history the
// stream has accumulated.

#include <cmath>
#include <cstddef>
#include <vector>

namespace omv::stats {

/// Append-only compensated prefix sums over a stream of doubles.
/// range(i, j) returns the sum of elements [i, j) with relative error on
/// the order of machine epsilon of that partial sum (not of the full
/// prefix), which is what keeps narrow-window interval queries over long
/// event histories well-conditioned.
class PrefixSum {
 public:
  PrefixSum() { clear(); }

  void clear() {
    sum_.assign(1, 0.0);
    comp_.assign(1, 0.0);
    s_ = 0.0;
    c_ = 0.0;
  }

  /// Number of appended elements.
  [[nodiscard]] std::size_t size() const noexcept { return sum_.size() - 1; }

  void reserve(std::size_t n) {
    sum_.reserve(n + 1);
    comp_.reserve(n + 1);
  }

  /// Appends one element in O(1) (amortized).
  void append(double x) {
    // Neumaier two-sum: s_ + x exactly equals t + err with
    // |err| <= ulp(t)/2; fold err into the running compensation.
    const double t = s_ + x;
    if (std::abs(s_) >= std::abs(x)) {
      c_ += (s_ - t) + x;
    } else {
      c_ += (x - t) + s_;
    }
    s_ = t;
    sum_.push_back(s_);
    comp_.push_back(c_);
  }

  /// Sum of elements [i, j). Requires i <= j <= size().
  [[nodiscard]] double range(std::size_t i, std::size_t j) const {
    // (sum + comp) approximates the true prefix to ~1 ulp; differencing the
    // two components separately keeps the error relative to the *range*.
    return (sum_[j] - sum_[i]) + (comp_[j] - comp_[i]);
  }

  /// Full compensated total.
  [[nodiscard]] double total() const { return s_ + c_; }

 private:
  std::vector<double> sum_;   ///< sum_[k] = running sum after k elements.
  std::vector<double> comp_;  ///< comp_[k] = accumulated rounding residue.
  double s_ = 0.0;
  double c_ = 0.0;
};

}  // namespace omv::stats
