#include "core/deadline.hpp"

#include <thread>

namespace omv::core {

namespace {

using Clock = std::chrono::steady_clock;

// Every thread owns one slot it can arm directly (arm_cell_deadline), and
// observes one active slot — its own, an adopted one, or none. Worker
// threads never arm: they adopt the submitting thread's active slot.
thread_local CellDeadline t_own_slot;
thread_local CellDeadline* t_active = nullptr;

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

CellDeadline* current_cell_deadline() noexcept { return t_active; }

CellDeadline* adopt_cell_deadline(CellDeadline* slot) noexcept {
  CellDeadline* prev = t_active;
  t_active = slot;
  return prev;
}

void arm_cell_deadline(std::chrono::milliseconds budget) noexcept {
  if (budget.count() <= 0) {
    t_own_slot.at_ns.store(0, std::memory_order_relaxed);
    if (t_active == &t_own_slot) t_active = nullptr;
    return;
  }
  const std::int64_t ns =
      now_ns() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(budget).count();
  t_own_slot.at_ns.store(ns, std::memory_order_relaxed);
  t_active = &t_own_slot;
}

void clear_cell_deadline() noexcept {
  t_own_slot.at_ns.store(0, std::memory_order_relaxed);
  t_active = nullptr;
}

bool cell_deadline_exceeded() noexcept {
  if (t_active == nullptr) return false;
  const std::int64_t d = t_active->at_ns.load(std::memory_order_relaxed);
  return d != 0 && now_ns() > d;
}

void check_cell_deadline() {
  if (cell_deadline_exceeded()) {
    throw CellTimeout(
        "cell wall-clock budget exceeded (--cell-timeout); aborted at a "
        "repetition boundary");
  }
}

void interruptible_stall(std::chrono::milliseconds stall) {
  const auto end = Clock::now() + stall;
  while (Clock::now() < end) {
    check_cell_deadline();
    const auto remaining = end - Clock::now();
    const auto slice = std::chrono::milliseconds(5);
    std::this_thread::sleep_for(remaining < slice ? remaining : slice);
  }
  check_cell_deadline();
}

}  // namespace omv::core
