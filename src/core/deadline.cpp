#include "core/deadline.hpp"

#include <atomic>
#include <thread>

namespace omv::core {

namespace {

using Clock = std::chrono::steady_clock;

// Deadline as nanoseconds since the steady epoch; 0 = disarmed. A single
// atomic keeps the per-repetition check wait-free for worker threads.
std::atomic<std::int64_t> g_deadline_ns{0};

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

void arm_cell_deadline(std::chrono::milliseconds budget) noexcept {
  if (budget.count() <= 0) {
    g_deadline_ns.store(0, std::memory_order_relaxed);
    return;
  }
  const std::int64_t ns =
      now_ns() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(budget).count();
  g_deadline_ns.store(ns, std::memory_order_relaxed);
}

void clear_cell_deadline() noexcept {
  g_deadline_ns.store(0, std::memory_order_relaxed);
}

bool cell_deadline_exceeded() noexcept {
  const std::int64_t d = g_deadline_ns.load(std::memory_order_relaxed);
  return d != 0 && now_ns() > d;
}

void check_cell_deadline() {
  if (cell_deadline_exceeded()) {
    throw CellTimeout(
        "cell wall-clock budget exceeded (--cell-timeout); aborted at a "
        "repetition boundary");
  }
}

void interruptible_stall(std::chrono::milliseconds stall) {
  const auto end = Clock::now() + stall;
  while (Clock::now() < end) {
    check_cell_deadline();
    const auto remaining = end - Clock::now();
    const auto slice = std::chrono::milliseconds(5);
    std::this_thread::sleep_for(remaining < slice ? remaining : slice);
  }
  check_cell_deadline();
}

}  // namespace omv::core
