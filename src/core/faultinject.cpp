#include "core/faultinject.hpp"

#include <cstdlib>
#include <memory>

namespace omv::fault {

bool glob_match(std::string_view pattern, std::string_view text) noexcept {
  // Iterative '*' backtracking (the classic two-cursor scan): on mismatch
  // past a star, re-anchor the star to swallow one more character.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

namespace {

[[noreturn]] void bad_clause(std::string_view clause,
                             const std::string& why) {
  throw std::invalid_argument("fault spec clause '" + std::string(clause) +
                              "': " + why);
}

/// Strict non-negative integer (no sign, no whitespace).
bool parse_count(std::string_view text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (v > (static_cast<std::size_t>(-1) - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

FaultClause parse_clause(std::string_view clause) {
  FaultClause c;

  // Split off a trailing "@N" occurrence selector.
  std::string_view body = clause;
  if (const auto at = body.rfind('@'); at != std::string_view::npos) {
    const std::string_view count = body.substr(at + 1);
    if (!parse_count(count, c.occurrence) || c.occurrence == 0) {
      bad_clause(clause, "occurrence '@" + std::string(count) +
                             "' must be a positive integer");
    }
    body = body.substr(0, at);
  }

  // Split "kind[:arg[:arg]]".
  std::string_view kind = body;
  std::string_view arg;
  if (const auto colon = body.find(':'); colon != std::string_view::npos) {
    kind = body.substr(0, colon);
    arg = body.substr(colon + 1);
  }

  if (kind == "cell_throw") {
    c.kind = FaultKind::kCellThrow;
    c.pattern = std::string(arg);
    if (c.pattern.empty() && c.occurrence == 0) {
      bad_clause(clause,
                 "needs a cell glob, an '@N' occurrence, or both (a bare "
                 "cell_throw would fail every cell)");
    }
  } else if (kind == "torn_write") {
    c.kind = FaultKind::kTornWrite;
    if (arg.empty()) {
      bad_clause(clause, "needs a site, e.g. torn_write:cache@2");
    }
    c.pattern = std::string(arg);
    if (c.occurrence == 0) {
      bad_clause(clause, "needs an '@N' occurrence (a torn write on every "
                         "commit would never converge)");
    }
  } else if (kind == "enospc") {
    c.kind = FaultKind::kEnospc;
    c.pattern = std::string(arg);  // empty = any site
    if (c.occurrence == 0) {
      bad_clause(clause, "needs an '@N' occurrence");
    }
  } else if (kind == "slow_cell") {
    c.kind = FaultKind::kSlowCell;
    // slow_cell:GLOB:DURms — the glob may itself contain ':'-free text
    // only; the duration is the final ':'-separated token.
    const auto last = arg.rfind(':');
    if (last == std::string_view::npos) {
      bad_clause(clause, "needs a glob and a duration, e.g. "
                         "slow_cell:fig3*:200ms");
    }
    c.pattern = std::string(arg.substr(0, last));
    std::string_view dur = arg.substr(last + 1);
    if (dur.size() < 3 || dur.substr(dur.size() - 2) != "ms") {
      bad_clause(clause, "duration must end in 'ms'");
    }
    std::size_t ms = 0;
    if (!parse_count(dur.substr(0, dur.size() - 2), ms) || ms == 0) {
      bad_clause(clause, "duration '" + std::string(dur) +
                             "' must be a positive millisecond count");
    }
    if (c.pattern.empty()) {
      bad_clause(clause, "needs a non-empty cell glob");
    }
    c.delay = std::chrono::milliseconds(ms);
  } else {
    bad_clause(clause, "unknown fault kind '" + std::string(kind) +
                           "' (expected cell_throw, torn_write, enospc or "
                           "slow_cell)");
  }
  return c;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const std::string_view raw =
        spec.substr(start, comma == std::string_view::npos
                               ? std::string_view::npos
                               : comma - start);
    const std::string_view clause = trim(raw);
    if (!clause.empty()) {
      plan.clauses_.push_back(parse_clause(clause));
    } else if (!trim(spec).empty()) {
      throw std::invalid_argument(
          "fault spec: empty clause (stray comma?) in '" +
          std::string(spec) + "'");
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return plan;
}

WriteAction FaultPlan::on_write(std::string_view site) {
  // Un-named writes are exempt: atomicity still applies, injection never
  // does (and their operations must not advance occurrence counters, or a
  // test-targeted "@N" would drift with unrelated writes).
  if (site.empty()) return WriteAction::kNone;
  std::lock_guard lock(mutex_);
  WriteAction action = WriteAction::kNone;
  for (auto& c : clauses_) {
    if (c.kind != FaultKind::kTornWrite && c.kind != FaultKind::kEnospc) {
      continue;
    }
    if (!c.pattern.empty() && !glob_match(c.pattern, site)) continue;
    ++c.seen;
    if (c.occurrence != 0 && c.seen != c.occurrence) continue;
    if (c.kind == FaultKind::kEnospc) {
      action = WriteAction::kFail;  // kFail wins over kTorn
    } else if (action == WriteAction::kNone) {
      action = WriteAction::kTorn;
    }
  }
  return action;
}

std::chrono::milliseconds FaultPlan::on_cell_attempt(
    std::string_view label) {
  std::chrono::milliseconds stall{0};
  bool do_throw = false;
  {
    std::lock_guard lock(mutex_);
    for (auto& c : clauses_) {
      if (c.kind == FaultKind::kSlowCell) {
        if (glob_match(c.pattern, label)) stall += c.delay;
        continue;
      }
      if (c.kind != FaultKind::kCellThrow) continue;
      if (!c.pattern.empty() && !glob_match(c.pattern, label)) continue;
      ++c.seen;
      if (c.occurrence == 0 || c.seen == c.occurrence) do_throw = true;
    }
  }
  if (do_throw) {
    throw InjectedFault("exception", "injected cell fault (cell_throw) at "
                                     "cell '" + std::string(label) + "'");
  }
  return stall;
}

namespace {

std::mutex g_plan_mutex;
std::unique_ptr<FaultPlan> g_plan;
bool g_env_read = false;

}  // namespace

FaultPlan& active_plan() {
  std::lock_guard lock(g_plan_mutex);
  if (!g_plan && !g_env_read) {
    g_env_read = true;
    const char* env = std::getenv("OMNIVAR_FAULT_SPEC");
    g_plan = std::make_unique<FaultPlan>(
        env ? FaultPlan::parse(env) : FaultPlan());
  }
  if (!g_plan) g_plan = std::make_unique<FaultPlan>();
  return *g_plan;
}

void set_active_spec(std::string_view spec) {
  auto plan = std::make_unique<FaultPlan>(FaultPlan::parse(spec));
  std::lock_guard lock(g_plan_mutex);
  g_plan = std::move(plan);
  g_env_read = true;
}

void clear_active_plan() {
  std::lock_guard lock(g_plan_mutex);
  g_plan.reset();
  g_env_read = false;
}

}  // namespace omv::fault
