#pragma once
// Outlier detection for timing samples.
//
// Two detectors: Tukey fences (IQR-based, the textbook boxplot rule) and a
// robust MAD-z detector (better when >25% of the data are affected). Both
// classify which tail the outliers sit in — timing noise almost always
// produces a *high* tail (delays), so a low tail hints at measurement error.

#include <cstddef>
#include <span>
#include <vector>

namespace omv::stats {

/// Where a sample's outliers are concentrated.
enum class Tail { none, high, low, both };

/// Result of an outlier scan.
struct OutlierReport {
  std::vector<std::size_t> indices;  ///< positions of outliers in the input.
  std::size_t n_high = 0;            ///< outliers above the upper bound.
  std::size_t n_low = 0;             ///< outliers below the lower bound.
  double lower_bound = 0.0;
  double upper_bound = 0.0;
  Tail tail = Tail::none;

  [[nodiscard]] std::size_t count() const noexcept { return indices.size(); }
  /// Fraction of the sample flagged as outliers.
  [[nodiscard]] double fraction(std::size_t n) const noexcept {
    return n ? static_cast<double>(indices.size()) / static_cast<double>(n)
             : 0.0;
  }
};

/// Tukey fences: outliers lie outside [Q1 - k*IQR, Q3 + k*IQR].
/// k = 1.5 is the standard "outlier", k = 3 the "far out" rule.
[[nodiscard]] OutlierReport tukey_outliers(std::span<const double> xs,
                                           double k = 1.5);

/// MAD-z detector: |x - median| / MAD > z flags an outlier. Falls back to
/// Tukey when MAD is 0 (more than half the sample identical).
[[nodiscard]] OutlierReport mad_outliers(std::span<const double> xs,
                                         double z = 3.5);

/// Human-readable tail name.
[[nodiscard]] const char* tail_name(Tail t) noexcept;

}  // namespace omv::stats
