#include "core/run_matrix.hpp"

#include <algorithm>

namespace omv {

void RunMatrix::add_run(std::vector<double> rep_times) {
  data_.push_back(std::move(rep_times));
}

void RunMatrix::append_runs(const RunMatrix& other) {
  if (&other == this) {
    // Self-append: inserting a vector's own range while it may reallocate
    // is UB; duplicate through a copy instead.
    std::vector<std::vector<double>> copy(data_);
    data_.insert(data_.end(), std::make_move_iterator(copy.begin()),
                 std::make_move_iterator(copy.end()));
    return;
  }
  data_.reserve(data_.size() + other.data_.size());
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
}

stats::Summary RunMatrix::run_summary(std::size_t r) const {
  return stats::summarize(run(r));
}

double RunMatrix::run_mean(std::size_t r) const { return run_summary(r).mean; }

double RunMatrix::run_cv(std::size_t r) const { return run_summary(r).cv; }

double RunMatrix::run_norm_min(std::size_t r) const {
  return run_summary(r).norm_min();
}

double RunMatrix::run_norm_max(std::size_t r) const {
  return run_summary(r).norm_max();
}

std::vector<double> RunMatrix::run_means() const {
  std::vector<double> out;
  out.reserve(runs());
  for (std::size_t r = 0; r < runs(); ++r) out.push_back(run_mean(r));
  return out;
}

std::vector<double> RunMatrix::run_cvs() const {
  std::vector<double> out;
  out.reserve(runs());
  for (std::size_t r = 0; r < runs(); ++r) out.push_back(run_cv(r));
  return out;
}

stats::Summary RunMatrix::pooled_summary() const {
  return stats::summarize(flatten());
}

double RunMatrix::grand_mean() const {
  const auto means = run_means();
  return stats::summarize(means).mean;
}

double RunMatrix::run_to_run_cv() const {
  const auto means = run_means();
  return stats::summarize(means).cv;
}

double RunMatrix::run_mean_spread() const {
  const auto means = run_means();
  if (means.empty()) return 1.0;
  const auto [mn, mx] = std::minmax_element(means.begin(), means.end());
  return *mn > 0.0 ? *mx / *mn : 1.0;
}

stats::VarianceComponents RunMatrix::variance_components() const {
  return stats::decompose_variance(data_);
}

std::vector<double> RunMatrix::flatten() const {
  std::vector<double> out;
  std::size_t total = 0;
  for (const auto& row : data_) total += row.size();
  out.reserve(total);
  for (const auto& row : data_) out.insert(out.end(), row.begin(), row.end());
  return out;
}

}  // namespace omv
