#include "core/report.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace omv::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> w(header.size(), 0);
  for (std::size_t c = 0; c < header.size(); ++c) w[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      w[c] = std::max(w[c], row[c].size());
    }
  }
  return w;
}

void render_padded(std::ostringstream& os, const std::string& s,
                   std::size_t width) {
  os << s;
  for (std::size_t i = s.size(); i < width; ++i) os << ' ';
}

}  // namespace

std::string Table::render(Format f) const {
  std::ostringstream os;
  switch (f) {
    case Format::csv: {
      for (std::size_t c = 0; c < header_.size(); ++c) {
        if (c) os << ',';
        os << header_[c];
      }
      os << '\n';
      for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
          if (c) os << ',';
          os << row[c];
        }
        os << '\n';
      }
      break;
    }
    case Format::markdown: {
      os << '|';
      for (const auto& h : header_) os << ' ' << h << " |";
      os << "\n|";
      for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
      os << '\n';
      for (const auto& row : rows_) {
        os << '|';
        for (const auto& cell : row) os << ' ' << cell << " |";
        os << '\n';
      }
      break;
    }
    case Format::ascii: {
      const auto w = column_widths(header_, rows_);
      for (std::size_t c = 0; c < header_.size(); ++c) {
        if (c) os << "  ";
        render_padded(os, header_[c], w[c]);
      }
      os << '\n';
      std::size_t total = 0;
      for (std::size_t c = 0; c < w.size(); ++c) {
        total += w[c] + (c ? 2 : 0);
      }
      os << std::string(total, '-') << '\n';
      for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
          if (c) os << "  ";
          render_padded(os, row[c], w[c]);
        }
        os << '\n';
      }
      break;
    }
  }
  return os.str();
}

void Table::print(std::ostream& os, Format f) const { os << render(f); }

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_pct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string banner(const std::string& title) {
  const std::string bar(title.size() + 10, '=');
  return bar + "\n==== " + title + " ====\n" + bar + "\n";
}

Series::Series(std::string x_name, std::vector<std::string> series_names)
    : x_name_(std::move(x_name)), names_(std::move(series_names)) {}

void Series::add(double x, std::vector<double> ys) {
  if (ys.size() != names_.size()) {
    throw std::invalid_argument("Series::add: series count mismatch");
  }
  points_.emplace_back(x, std::move(ys));
}

std::string Series::render(Format f, int digits) const {
  Table t([&] {
    std::vector<std::string> header{x_name_};
    header.insert(header.end(), names_.begin(), names_.end());
    return header;
  }());
  for (const auto& [x, ys] : points_) {
    std::vector<std::string> row{fmt_fixed(x, 0)};
    for (double y : ys) row.push_back(fmt_fixed(y, digits));
    t.add_row(std::move(row));
  }
  return t.render(f);
}

}  // namespace omv::report
