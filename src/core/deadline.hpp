#pragma once
// Cooperative wall-clock deadline for the currently supervised campaign
// cell.
//
// The cell supervisor arms a process-wide deadline before invoking a
// cell's compute function; every repetition loop (serial, sharded, and
// checkpointed) calls check_cell_deadline() between repetitions, so a cell
// that overruns its budget raises CellTimeout at the next repetition
// boundary on whichever worker thread notices first — worker-pool-based
// cancellation with no in-process signals. Granularity is therefore one
// repetition: a single wedged repetition cannot be interrupted (documented
// in README "Failure handling").
//
// A process-wide slot is correct because cells execute one at a time per
// process (runs within a cell shard across workers; cells never overlap).

#include <chrono>
#include <stdexcept>

namespace omv::core {

/// Raised by check_cell_deadline() once the armed deadline has passed.
class CellTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Arms the deadline `budget` from now; a zero budget disarms.
void arm_cell_deadline(std::chrono::milliseconds budget) noexcept;

/// Disarms the deadline (always call when the supervised region ends —
/// leaking an expired deadline would poison the next cell).
void clear_cell_deadline() noexcept;

/// True when a deadline is armed and has passed. Cheap: one relaxed
/// atomic load, plus a clock read only while armed.
[[nodiscard]] bool cell_deadline_exceeded() noexcept;

/// Throws CellTimeout when the armed deadline has passed; no-op otherwise.
void check_cell_deadline();

/// Sleeps up to `stall`, waking early (and throwing CellTimeout) when the
/// armed deadline passes mid-sleep. Used by injected slow_cell stalls so a
/// stall longer than the cell budget trips the timeout deterministically.
void interruptible_stall(std::chrono::milliseconds stall);

}  // namespace omv::core
