#pragma once
// Cooperative wall-clock deadline for the currently supervised campaign
// cell.
//
// The cell supervisor arms a deadline before invoking a cell's compute
// function; every repetition loop (serial, sharded, and checkpointed) calls
// check_cell_deadline() between repetitions, so a cell that overruns its
// budget raises CellTimeout at the next repetition boundary on whichever
// worker thread notices first — worker-pool-based cancellation with no
// in-process signals. Granularity is therefore one repetition: a single
// wedged repetition cannot be interrupted (documented in README "Failure
// handling").
//
// Deadlines are task-scoped, not process-wide: each thread observes one
// active slot (thread-local pointer), and worker threads spawned on behalf
// of a cell adopt the spawning thread's slot. The campaign cell scheduler
// runs many cells concurrently in one process, so a process-wide slot
// would let cell A's --cell-timeout trip or disarm cell B's — with the
// per-task slot each concurrent cell carries its own budget.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace omv::core {

/// Raised by check_cell_deadline() once the armed deadline has passed.
class CellTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One deadline slot: nanoseconds since the steady epoch, 0 = disarmed.
/// A single atomic keeps the per-repetition check wait-free for worker
/// threads sharing the slot.
struct CellDeadline {
  std::atomic<std::int64_t> at_ns{0};
};

/// The slot this thread currently observes (null = no deadline scope).
/// Worker pools capture this on the submitting thread and adopt it on
/// their workers so shard threads poll the owning cell's budget.
[[nodiscard]] CellDeadline* current_cell_deadline() noexcept;

/// Installs `slot` as this thread's active deadline (null detaches);
/// returns the previous slot so callers can restore it.
CellDeadline* adopt_cell_deadline(CellDeadline* slot) noexcept;

/// Arms this thread's own slot `budget` from now and makes it active; a
/// zero budget disarms (and detaches the own slot if it was active).
void arm_cell_deadline(std::chrono::milliseconds budget) noexcept;

/// Disarms this thread's deadline (always call when the supervised region
/// ends — leaking an expired deadline would poison the next cell). Leaves
/// an adopted slot's value untouched (the owning task controls it) but
/// detaches this thread from it.
void clear_cell_deadline() noexcept;

/// True when a deadline is armed on this thread's slot and has passed.
/// Cheap: one thread-local read and one relaxed atomic load, plus a clock
/// read only while armed.
[[nodiscard]] bool cell_deadline_exceeded() noexcept;

/// Throws CellTimeout when the armed deadline has passed; no-op otherwise.
void check_cell_deadline();

/// Sleeps up to `stall`, waking early (and throwing CellTimeout) when the
/// armed deadline passes mid-sleep. Used by injected slow_cell stalls so a
/// stall longer than the cell budget trips the timeout deterministically.
void interruptible_stall(std::chrono::milliseconds stall);

}  // namespace omv::core
