#include "core/lockfile.hpp"

#include <cerrno>
#include <cstdio>
#include <ctime>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define OMNIVAR_HAVE_FLOCK 1
#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define OMNIVAR_HAVE_FLOCK 0
#endif

namespace omv::core {

#if OMNIVAR_HAVE_FLOCK

namespace {

constexpr auto kPollSlice = std::chrono::milliseconds(10);

/// Writes "pid <pid>\nsince <unix-seconds>\n" into the held lock fd.
void write_lease_info(int fd) {
  char buf[64];
  const int n = std::snprintf(
      buf, sizeof(buf), "pid %ld\nsince %lld\n", static_cast<long>(::getpid()),
      static_cast<long long>(::time(nullptr)));
  if (n > 0) {
    (void)::ftruncate(fd, 0);
    (void)::pwrite(fd, buf, static_cast<std::size_t>(n), 0);
  }
}

/// Parses the holder PID out of a lease file; 0 when unreadable.
long read_lease_pid(int fd) {
  char buf[64] = {0};
  const ssize_t n = ::pread(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return 0;
  long pid = 0;
  if (std::sscanf(buf, "pid %ld", &pid) != 1) return 0;
  return pid;
}

}  // namespace

std::optional<FileLease> FileLease::acquire(const std::string& path,
                                            std::chrono::milliseconds wait,
                                            bool* waited) {
  if (waited) *waited = false;
  const auto deadline = std::chrono::steady_clock::now() + wait;
  for (;;) {
    // Re-open by name every attempt: a released lease unlinks its file, so
    // a blocked waiter must not keep flocking a dead inode.
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return std::nullopt;  // unwritable cache dir: no lease
    if (::flock(fd, LOCK_EX | LOCK_NB) == 0) {
      // Guard against the unlink race: if the path no longer names this
      // inode (the previous holder released between our open and flock),
      // retry on the fresh file.
      struct stat by_fd{};
      struct stat by_name{};
      if (::fstat(fd, &by_fd) == 0 && ::stat(path.c_str(), &by_name) == 0 &&
          by_fd.st_ino == by_name.st_ino && by_fd.st_dev == by_name.st_dev) {
        write_lease_info(fd);
        return FileLease(path, fd);
      }
      ::flock(fd, LOCK_UN);
      ::close(fd);
      continue;
    }
    // Lease held elsewhere. A lease file whose recorded holder is dead can
    // only appear where flock state outlived the process (or the content is
    // garbage); remove it and retry on a fresh inode.
    if (waited) *waited = true;
    const long pid = read_lease_pid(fd);
    ::close(fd);
    if (pid > 0 && ::kill(static_cast<pid_t>(pid), 0) != 0 &&
        errno == ESRCH) {
      (void)::unlink(path.c_str());
      continue;
    }
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(kPollSlice);
  }
}

void FileLease::release() noexcept {
  if (fd_ < 0) return;
  // Unlink while still holding the lock: new acquirers then race onto a
  // fresh inode instead of flocking this one after we let go.
  (void)::unlink(path_.c_str());
  (void)::flock(fd_, LOCK_UN);
  (void)::close(fd_);
  fd_ = -1;
}

#else  // !OMNIVAR_HAVE_FLOCK

std::optional<FileLease> FileLease::acquire(const std::string& path,
                                            std::chrono::milliseconds,
                                            bool* waited) {
  if (waited) *waited = false;
  return FileLease(path, -2);  // degraded: always "acquired", nothing held
}

void FileLease::release() noexcept { fd_ = -1; }

#endif

FileLease::FileLease(FileLease&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_) {
  other.fd_ = -1;
}

FileLease& FileLease::operator=(FileLease&& other) noexcept {
  if (this != &other) {
    release();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

FileLease::~FileLease() { release(); }

}  // namespace omv::core
