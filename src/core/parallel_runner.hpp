#pragma once
// ParallelRunner — sharded execution of the experiment protocol.
//
// The paper's protocol (R independent runs x K repetitions per
// configuration, swept over thread counts / places / bindings / governors)
// is embarrassingly parallel across (configuration, run) cells: every run
// derives its entire state from derive_run_seed(spec.seed, run), so the
// repetition times it produces do not depend on which thread executes it or
// when. ParallelRunner shards a sweep into per-run work items, executes
// them on a work-stealing thread pool, and reassembles RunMatrix rows in
// protocol order — the result is bit-identical to the serial
// run_experiment path for deterministic kernels.
//
// Kernels are provided through a per-run factory (RunKernelFactory): each
// run gets a private kernel instance, so kernels may own mutable state
// (simulators, thread teams) without any synchronization. RunHooks are not
// supported here: their sequential shared-state semantics is exactly what
// the per-run factory replaces.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/run_matrix.hpp"

namespace omv {

/// Identifies one run of one sweep cell.
struct RunSlot {
  std::size_t cell = 0;        ///< index of the cell within the sweep.
  std::size_t run = 0;         ///< run index within the cell's spec.
  std::uint64_t run_seed = 0;  ///< derive_run_seed(spec.seed, run).
};

/// Builds the kernel executing every repetition (warmup + timed) of one
/// run. Invoked once per run, possibly concurrently with other runs.
using RunKernelFactory = std::function<RepKernel(const RunSlot&)>;

/// One configuration of a sweep.
struct ExperimentCell {
  ExperimentSpec spec;
  RunKernelFactory make_kernel;
};

/// Aggregated sweep results, one RunMatrix per cell, in submission order.
class BatchResult {
 public:
  BatchResult() = default;

  /// Appends a completed cell result.
  void add(RunMatrix matrix) { matrices_.push_back(std::move(matrix)); }

  /// Appends all of `other`'s cell results (e.g. shards from another
  /// worker pool or process).
  void merge(BatchResult other);

  [[nodiscard]] std::size_t size() const noexcept { return matrices_.size(); }
  [[nodiscard]] bool empty() const noexcept { return matrices_.empty(); }
  [[nodiscard]] const RunMatrix& matrix(std::size_t i) const {
    return matrices_.at(i);
  }
  [[nodiscard]] const std::vector<RunMatrix>& matrices() const noexcept {
    return matrices_;
  }

  /// First matrix labelled `label`, or nullptr.
  [[nodiscard]] const RunMatrix* find(const std::string& label) const noexcept;

  /// Moves matrix `i` out (the slot is left empty).
  [[nodiscard]] RunMatrix take(std::size_t i) {
    return std::move(matrices_.at(i));
  }

  /// Total number of runs across all cells.
  [[nodiscard]] std::size_t total_runs() const noexcept;

 private:
  std::vector<RunMatrix> matrices_;
};

/// Runner configuration.
struct ParallelConfig {
  /// Worker threads. 0 = one per hardware thread; 1 = execute inline on
  /// the calling thread (no pool is created).
  std::size_t jobs = 0;
};

/// Resolves a job-count request: 0 becomes std::thread::hardware_concurrency
/// (at least 1); anything else is returned unchanged.
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested) noexcept;

/// Work-stealing sweep executor. Stateless between calls; a fresh pool is
/// spun up per sweep (run granularity is coarse enough that thread startup
/// is negligible against the paper's 10 x 100 protocol).
class ParallelRunner {
 public:
  explicit ParallelRunner(ParallelConfig cfg = {});

  /// Effective worker count.
  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// Runs one spec, sharding its runs across the pool.
  [[nodiscard]] RunMatrix run(const ExperimentSpec& spec,
                              const RunKernelFactory& make_kernel) const;

  /// Runs a whole sweep, sharding every (cell, run) pair across the pool.
  /// The first exception thrown by any kernel/factory is rethrown here
  /// after all workers have drained.
  [[nodiscard]] BatchResult run_sweep(
      const std::vector<ExperimentCell>& cells) const;

 private:
  std::size_t jobs_ = 1;
};

/// Convenience wrapper: parallel run_experiment with an explicit job count
/// (0 = hardware concurrency). Bit-identical to run_experiment for
/// deterministic kernels.
[[nodiscard]] RunMatrix run_experiment_parallel(
    const ExperimentSpec& spec, const RunKernelFactory& make_kernel,
    std::size_t jobs = 0);

/// Campaign-level cell pool: a fixed set of worker threads draining one
/// shared priority queue of whole-cell tasks. This is the layer above
/// ParallelRunner — the campaign scheduler routes every cold cell from
/// every (harness, scenario) unit through one pool, so cells from
/// different harnesses overlap while each submitting unit blocks on its
/// own cell (preserving the unit's internal data dependencies).
///
/// Ordering: higher priority first; ties break by submission order, so a
/// fixed submission sequence always dispatches identically — scheduling
/// affects wall-clock only, never results.
class CellPool {
 public:
  /// Spins up `workers` threads (>= 1 enforced). Workers hold no deadline
  /// slot of their own; supervised tasks arm one per attempt.
  explicit CellPool(std::size_t workers);

  /// Joins all workers. The queue is empty by construction at destruction
  /// time: every submitter blocks inside run() until its task finishes.
  ~CellPool();

  CellPool(const CellPool&) = delete;
  CellPool& operator=(const CellPool&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept {
    return threads_.size();
  }

  /// Enqueues `fn` with `priority` (higher dispatches first) and blocks
  /// until it has run on a pool worker, rethrowing any exception it threw.
  void run(double priority, const std::function<void()>& fn);

 private:
  struct Task {
    double priority = 0.0;
    std::uint64_t seq = 0;
    const std::function<void()>* fn = nullptr;
    std::promise<void> done;
  };

  void worker_loop();
  std::shared_ptr<Task> pop_best();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Task>> queue_;
  std::uint64_t next_seq_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace omv
