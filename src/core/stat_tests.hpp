#pragma once
// Two-sample hypothesis tests used to decide whether two experimental
// configurations (e.g. pinned vs unpinned, ST vs MT) differ significantly in
// location or spread. All tests return approximate p-values suitable for the
// sample sizes used in the paper's protocol (n in the tens to thousands).

#include <span>

namespace omv::stats {

/// Result of a two-sample hypothesis test.
struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;
  /// True when p_value < alpha used at call time (recorded for reporting).
  bool significant = false;
  double alpha = 0.05;
};

/// Welch's unequal-variance t-test for difference of means.
/// Uses the normal approximation to the t distribution for df > 30 and a
/// Hill-type approximation below; adequate for reporting purposes.
[[nodiscard]] TestResult welch_t_test(std::span<const double> a,
                                      std::span<const double> b,
                                      double alpha = 0.05);

/// Mann–Whitney U test (two-sided, normal approximation with tie
/// correction) for difference of distributions — robust to the heavy tails
/// typical of noisy timing data.
[[nodiscard]] TestResult mann_whitney_u(std::span<const double> a,
                                        std::span<const double> b,
                                        double alpha = 0.05);

/// Two-sample Kolmogorov–Smirnov test (asymptotic p-value) for any
/// distributional difference.
[[nodiscard]] TestResult ks_test(std::span<const double> a,
                                 std::span<const double> b,
                                 double alpha = 0.05);

/// Brown–Forsythe (median-centred Levene) test for equality of variances —
/// the relevant test when asking "did pinning reduce variability?".
[[nodiscard]] TestResult brown_forsythe(std::span<const double> a,
                                        std::span<const double> b,
                                        double alpha = 0.05);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z) noexcept;

/// Student-t two-sided p-value via normal/Hill approximation.
[[nodiscard]] double t_two_sided_p(double t, double df) noexcept;

/// F-distribution upper-tail probability approximation (Paulson/Wilson-
/// Hilferty normal approximation), used by Brown–Forsythe.
[[nodiscard]] double f_upper_p(double f, double df1, double df2) noexcept;

}  // namespace omv::stats
