#pragma once
// Minimal streaming JSON writer for machine-readable experiment artifacts.
//
// The campaign driver persists every harness's series, tables, verdicts and
// run-matrix provenance as JSON. The writer is deliberately tiny (no DOM, no
// parsing) and *deterministic*: doubles are rendered with std::to_chars in
// shortest round-trip form, so re-serializing identical data yields
// byte-identical files — the property the result cache's "second run is
// bit-identical" guarantee rests on.

#include <concepts>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace omv::json {

/// Escapes `s` for use inside a JSON string literal (no surrounding quotes).
[[nodiscard]] std::string escape(std::string_view s);

/// Renders a double as a JSON number token: shortest form that round-trips
/// to the same double ("1.5", "0.1", "1e+300"). NaN and infinities are not
/// representable in JSON and are rendered as null.
[[nodiscard]] std::string number(double v);

/// Streaming writer producing pretty-printed (2-space indent) JSON.
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("fig3");
///   w.key("points").begin_array(); w.value(1.0); w.end_array();
///   w.end_object();
///   std::string text = w.str();
/// Misuse (value without key inside an object, unbalanced end_*) throws
/// std::logic_error — artifact writing bugs must not produce silent garbage.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next emitted value belongs to it.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool b);
  /// One template for all integer types: fixed-width overloads would be
  /// ambiguous for std::size_t on platforms where it is a distinct type
  /// (e.g. unsigned long vs unsigned long long on macOS).
  template <std::integral T>
    requires(!std::same_as<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) {
      return value_int(static_cast<std::int64_t>(v));
    } else {
      return value_uint(static_cast<std::uint64_t>(v));
    }
  }
  JsonWriter& null();

  /// Finishes and returns the document. Throws if containers are unbalanced.
  [[nodiscard]] std::string str() const;

 private:
  enum class Scope : std::uint8_t { object, array };

  JsonWriter& value_uint(std::uint64_t v);
  JsonWriter& value_int(std::int64_t v);
  void before_value();
  void newline_indent();

  std::ostringstream os_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
  bool done_ = false;
};

}  // namespace omv::json
