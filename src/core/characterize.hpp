#pragma once
// Variability characterization — turns a RunMatrix into a qualitative
// signature, following the taxonomy the paper develops informally:
//
//   stable        — low CV everywhere, no outlier runs.
//   outlier_runs  — a few runs are much slower than the rest (Table 2 run 9;
//                   between-run variance dominates).
//   heavy_tail    — within-run high-tail outliers (daemon preemptions hitting
//                   individual repetitions).
//   bimodal       — repetitions split into fast/slow modes (migration,
//                   frequency states).
//   drift         — run means trend monotonically (thermal / frequency drift).
//   jittery       — uniformly high CV without structure (SMT interference).

#include <string>
#include <vector>

#include "core/run_matrix.hpp"

namespace omv {

/// Qualitative variability classes (a matrix may exhibit several).
enum class Signature {
  stable,
  outlier_runs,
  heavy_tail,
  bimodal,
  drift,
  jittery,
};

/// Thresholds for the classifier. Defaults are calibrated on the simulator's
/// baseline (pinned, ST, quiet-noise) configurations.
struct CharacterizeOptions {
  double stable_cv = 0.01;          ///< pooled CV below this => stable.
  double outlier_run_spread = 1.05; ///< max/min run mean above this => outlier runs.
  double heavy_tail_fraction = 0.02;  ///< >2% high-tail reps => heavy tail.
  double jitter_cv = 0.05;          ///< pooled CV above this => jittery.
  double drift_correlation = 0.8;   ///< |rank corr(run, mean)| above => drift.
};

/// Full characterization result.
struct Characterization {
  std::vector<Signature> signatures;   ///< detected classes (maybe empty).
  stats::Summary pooled;               ///< pooled summary.
  double run_to_run_cv = 0.0;
  double icc = 0.0;                    ///< between-run variance share.
  double high_tail_fraction = 0.0;
  bool multimodal = false;
  double drift_corr = 0.0;             ///< Spearman corr of run index vs mean.

  [[nodiscard]] bool has(Signature s) const noexcept;
  /// "stable" / "outlier_runs+heavy_tail" etc.
  [[nodiscard]] std::string to_string() const;
};

/// Classifies a RunMatrix.
[[nodiscard]] Characterization characterize(const RunMatrix& m,
                                            const CharacterizeOptions& opt = {});

/// Human-readable name of one signature.
[[nodiscard]] const char* signature_name(Signature s) noexcept;

/// Spearman rank correlation between x-index (0..n-1) and values.
[[nodiscard]] double index_rank_correlation(std::span<const double> values);

}  // namespace omv
