#include "core/stat_tests.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/descriptive.hpp"

namespace omv::stats {
namespace {

// Ranks with midrank tie handling. Returns ranks (1-based) aligned with the
// concatenation order, plus the tie-correction term sum(t^3 - t).
struct RankResult {
  std::vector<double> ranks;
  double tie_term = 0.0;
};

RankResult midranks(std::span<const double> concat) {
  const std::size_t n = concat.size();
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return concat[a] < concat[b]; });
  RankResult r;
  r.ranks.assign(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && concat[idx[j + 1]] == concat[idx[i]]) ++j;
    const double avg_rank =
        (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    const double t = static_cast<double>(j - i + 1);
    if (t > 1.0) r.tie_term += t * t * t - t;
    for (std::size_t k = i; k <= j; ++k) r.ranks[idx[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}

}  // namespace

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double t_two_sided_p(double t, double df) noexcept {
  if (df <= 0.0) return 1.0;
  const double at = std::abs(t);
  if (df > 100.0) return 2.0 * (1.0 - normal_cdf(at));
  // Hill (1970) style normalizing transformation of t to z.
  const double g = (df - 1.5) / ((df - 1.0) * (df - 1.0));
  const double w = at * at / df;
  const double z = std::sqrt(std::max(0.0, (df - 0.5) *
                                               std::log1p(w) *
                                               (1.0 - g * w)));
  return 2.0 * (1.0 - normal_cdf(z));
}

double f_upper_p(double f, double df1, double df2) noexcept {
  if (f <= 0.0) return 1.0;
  // Paulson's normal approximation to the F distribution.
  const double x = std::cbrt(f);
  const double a = 2.0 / (9.0 * df1);
  const double b = 2.0 / (9.0 * df2);
  const double num = x * (1.0 - b) - (1.0 - a);
  const double den = std::sqrt(std::max(1e-300, a + x * x * b));
  return 1.0 - normal_cdf(num / den);
}

TestResult welch_t_test(std::span<const double> a, std::span<const double> b,
                        double alpha) {
  TestResult r;
  r.alpha = alpha;
  if (a.size() < 2 || b.size() < 2) return r;
  const auto sa = summarize(a);
  const auto sb = summarize(b);
  const double va = sa.stddev * sa.stddev / static_cast<double>(sa.n);
  const double vb = sb.stddev * sb.stddev / static_cast<double>(sb.n);
  const double se = std::sqrt(va + vb);
  if (se == 0.0) {
    r.p_value = sa.mean == sb.mean ? 1.0 : 0.0;
    r.significant = r.p_value < alpha;
    return r;
  }
  r.statistic = (sa.mean - sb.mean) / se;
  const double df =
      (va + vb) * (va + vb) /
      (va * va / static_cast<double>(sa.n - 1) +
       vb * vb / static_cast<double>(sb.n - 1));
  r.p_value = t_two_sided_p(r.statistic, df);
  r.significant = r.p_value < alpha;
  return r;
}

TestResult mann_whitney_u(std::span<const double> a, std::span<const double> b,
                          double alpha) {
  TestResult r;
  r.alpha = alpha;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  if (a.empty() || b.empty()) return r;

  std::vector<double> concat(a.begin(), a.end());
  concat.insert(concat.end(), b.begin(), b.end());
  const auto rk = midranks(concat);

  double rank_sum_a = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) rank_sum_a += rk.ranks[i];
  const double u_a = rank_sum_a - na * (na + 1.0) / 2.0;
  r.statistic = u_a;

  const double n = na + nb;
  const double mu = na * nb / 2.0;
  const double tie_adj = rk.tie_term / (n * (n - 1.0));
  const double sigma2 = na * nb / 12.0 * ((n + 1.0) - tie_adj);
  if (sigma2 <= 0.0) {
    r.p_value = 1.0;
    return r;
  }
  const double z = (u_a - mu) / std::sqrt(sigma2);
  r.p_value = 2.0 * (1.0 - normal_cdf(std::abs(z)));
  r.significant = r.p_value < alpha;
  return r;
}

TestResult ks_test(std::span<const double> a, std::span<const double> b,
                   double alpha) {
  TestResult r;
  r.alpha = alpha;
  if (a.empty() || b.empty()) return r;
  auto sa = sorted_copy(a);
  auto sb = sorted_copy(b);
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());

  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }
  r.statistic = d;
  const double ne = na * nb / (na + nb);
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  // Asymptotic Kolmogorov Q-function (truncated series).
  double p = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = 2.0 * std::pow(-1.0, k - 1) *
                        std::exp(-2.0 * k * k * lambda * lambda);
    p += term;
    if (std::abs(term) < 1e-10) break;
  }
  r.p_value = std::clamp(p, 0.0, 1.0);
  r.significant = r.p_value < alpha;
  return r;
}

TestResult brown_forsythe(std::span<const double> a, std::span<const double> b,
                          double alpha) {
  TestResult r;
  r.alpha = alpha;
  if (a.size() < 2 || b.size() < 2) return r;
  const double med_a = percentile(a, 50.0);
  const double med_b = percentile(b, 50.0);
  std::vector<double> za;
  std::vector<double> zb;
  za.reserve(a.size());
  zb.reserve(b.size());
  for (double x : a) za.push_back(std::abs(x - med_a));
  for (double x : b) zb.push_back(std::abs(x - med_b));
  const auto su_a = summarize(za);
  const auto su_b = summarize(zb);
  const double na = static_cast<double>(za.size());
  const double nb = static_cast<double>(zb.size());
  const double n = na + nb;
  const double grand = (su_a.mean * na + su_b.mean * nb) / n;
  const double between = na * (su_a.mean - grand) * (su_a.mean - grand) +
                         nb * (su_b.mean - grand) * (su_b.mean - grand);
  double within = 0.0;
  for (double z : za) within += (z - su_a.mean) * (z - su_a.mean);
  for (double z : zb) within += (z - su_b.mean) * (z - su_b.mean);
  if (within <= 0.0) {
    r.p_value = between > 0.0 ? 0.0 : 1.0;
    r.significant = r.p_value < alpha;
    return r;
  }
  const double df1 = 1.0;  // two groups
  const double df2 = n - 2.0;
  r.statistic = (between / df1) / (within / df2);
  r.p_value = f_upper_p(r.statistic, df1, df2);
  r.significant = r.p_value < alpha;
  return r;
}

}  // namespace omv::stats
