#include "core/advisor.hpp"

#include <algorithm>
#include <stdexcept>

namespace omv::advisor {

std::size_t stable_max_threads(const topo::Machine& machine,
                               std::size_t spare) {
  const std::size_t cores = machine.n_cores();
  return cores > spare ? cores - spare : 0;
}

std::string stable_places(const topo::Machine& machine, std::size_t n_threads,
                          std::size_t spare) {
  const std::size_t cap = stable_max_threads(machine, spare);
  if (n_threads == 0 || n_threads > cap) {
    throw std::invalid_argument(
        "stable_places: thread count " + std::to_string(n_threads) +
        " exceeds " + std::to_string(cap) + " stable slots");
  }
  // One single-HW-thread place per physical core, first siblings only,
  // lowest core ids first (sparing the highest-numbered cores keeps the
  // IRQ landing zone on low CPUs occupied by exactly one place each —
  // matching the paper's "use 30 of 32 / 254 of 256" setup shape).
  std::string out;
  std::size_t emitted = 0;
  for (std::size_t core = 0; core < machine.n_cores() && emitted < n_threads;
       ++core) {
    const auto threads = machine.core_threads(core);
    if (threads.empty()) continue;
    std::size_t primary = threads.first();
    for (std::size_t h : threads) {
      if (machine.thread(h).smt_index == 0) primary = h;
    }
    if (!out.empty()) out += ',';
    out += '{' + std::to_string(primary) + '}';
    ++emitted;
  }
  return out;
}

namespace {

void add(Advice& a, std::string action, std::string rationale,
         std::string places = "", std::string bind = "",
         std::size_t threads = 0) {
  a.recommendations.push_back({std::move(action), std::move(rationale),
                               std::move(places), std::move(bind), threads});
}

}  // namespace

Advice advise(const topo::Machine& machine, const Characterization& ch,
              const ObservedConfig& observed, WorkloadKind kind) {
  Advice a;
  const std::size_t threads =
      observed.n_threads ? observed.n_threads
                         : stable_max_threads(machine);
  const std::size_t stable_cap = stable_max_threads(machine);
  const std::size_t capped_threads = std::min(threads, stable_cap);

  // 1. Pinning — the paper's most effective lever, triggered by the
  // signatures unpinned placement produces.
  if (!observed.pinned) {
    const bool severe = ch.has(Signature::heavy_tail) ||
                        ch.has(Signature::bimodal) ||
                        ch.has(Signature::jittery) ||
                        ch.has(Signature::outlier_runs);
    add(a, "pin threads",
        severe
            ? "unbound threads migrate and transiently stack on shared "
              "CPUs; the observed " +
                  ch.to_string() +
                  " signature is the classic unpinned pattern, and pinning "
                  "(OMP_PLACES + OMP_PROC_BIND=close) removes it"
            : "threads are unbound; pinning prevents future "
              "migration-induced variability even though the observed runs "
              "were calm",
        stable_places(machine, capped_threads), "close", capped_threads);
  }

  // 2. SMT: leave the second hardware context to the OS.
  if (observed.used_smt_siblings && machine.max_smt_per_core() > 1) {
    add(a, "leave SMT siblings to the OS",
        "with both hardware threads of a core running application threads, "
        "OS activity must preempt an application thread and SMT contention "
        "jitters every synchronization; one thread per core lets the "
        "sibling absorb interrupts (ST outperformed MT for stability in "
        "every paper experiment)",
        stable_places(machine, std::min(capped_threads, stable_cap)),
        "close", std::min(capped_threads, stable_cap));
  }

  // 3. Spare cores for housekeeping.
  if (observed.spare_cores < 2 &&
      (ch.has(Signature::heavy_tail) || ch.has(Signature::jittery))) {
    add(a, "spare two cores for OS housekeeping",
        "with every core busy, daemons and kworkers preempt application "
        "threads and barriers amplify each hit; leaving 2 cores idle gives "
        "the OS a landing zone (the paper spares 2 of 32 / 2 of 256)");
  }

  // 4. Run-level outliers: frequency / power state, not placement.
  if (ch.has(Signature::outlier_runs) && observed.pinned) {
    add(a, "screen runs for frequency caps",
        "whole-run slowdowns under pinning match run-scoped frequency or "
        "power states (Table 2's run 9); log per-core frequency on a spare "
        "core and discard or report capped runs separately");
  }

  // 5. Drift.
  if (ch.has(Signature::drift)) {
    add(a, "interleave and randomize run order",
        "run means trend monotonically (thermal or platform drift); "
        "interleave configurations and add cool-down gaps so drift does "
        "not masquerade as a configuration effect");
  }

  // 6. Workload-specific placement advice.
  if (kind == WorkloadKind::memory_bound) {
    add(a, "bind data and threads to the same NUMA domains",
        "memory-bound kernels lose bandwidth when migration turns "
        "first-touch-local pages remote; pinning plus NUMA-aware "
        "initialization keeps streams local (BabelStream's pinned/unpinned "
        "gap in Fig. 4)");
  } else if (kind == WorkloadKind::sync_heavy) {
    add(a, "keep the team inside the fewest NUMA domains",
        "barrier and reduction costs step up with every NUMA domain and "
        "socket the team spans; prefer close binding on contiguous cores "
        "(Fig. 1's socket-crossing jump)");
  }

  if (a.recommendations.empty()) {
    add(a, "keep the current configuration",
        "the observed distribution is " + ch.to_string() +
            "; pinning, ST execution and spare cores are already doing "
            "their job");
  }

  a.summary = "machine '" + machine.name() + "': " +
              std::to_string(a.recommendations.size()) +
              " recommendation(s); primary: " + a.recommendations[0].action +
              ".";
  return a;
}

}  // namespace omv::advisor
