#pragma once
// Report rendering: ASCII / Markdown / CSV tables and series, used by every
// bench harness to print paper-style tables and figure data.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace omv::report {

/// Output format for tables and series.
enum class Format { ascii, markdown, csv };

/// A rectangular table with a header row. Cells are preformatted strings;
/// numeric helpers below format doubles consistently.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; its size must equal the header's.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

  /// Raw header / row cells (artifact serialization).
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data()
      const noexcept {
    return rows_;
  }

  /// Renders to a string in the requested format.
  [[nodiscard]] std::string render(Format f = Format::ascii) const;

  /// Renders to a stream.
  void print(std::ostream& os, Format f = Format::ascii) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places.
[[nodiscard]] std::string fmt(double v, int digits = 2);

/// Formats a double in fixed notation with `digits` decimals.
[[nodiscard]] std::string fmt_fixed(double v, int digits = 2);

/// Formats as a percentage ("3.1%").
[[nodiscard]] std::string fmt_pct(double fraction, int digits = 1);

/// Section banner ("==== title ====") used between experiment blocks.
[[nodiscard]] std::string banner(const std::string& title);

/// An (x, series...) data block for figures: one x column plus one column
/// per named series, rendered like a Table.
class Series {
 public:
  Series(std::string x_name, std::vector<std::string> series_names);

  /// Appends one x value with its series values (must match series count).
  void add(double x, std::vector<double> ys);

  [[nodiscard]] std::string render(Format f = Format::ascii,
                                   int digits = 4) const;

  /// Raw data (artifact serialization: full precision, not the rendered
  /// fixed-digit strings).
  [[nodiscard]] const std::string& x_name() const noexcept { return x_name_; }
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }
  [[nodiscard]] const std::vector<std::pair<double, std::vector<double>>>&
  points() const noexcept {
    return points_;
  }

 private:
  std::string x_name_;
  std::vector<std::string> names_;
  std::vector<std::pair<double, std::vector<double>>> points_;
};

}  // namespace omv::report
