#pragma once
// Descriptive statistics for execution-time samples.
//
// Two entry points:
//   * OnlineStats  — streaming Welford accumulator (O(1) memory), used while
//                    an experiment is running.
//   * Summary      — batch summary of a finished sample, including order
//                    statistics (median, percentiles, IQR, MAD) which a
//                    streaming accumulator cannot provide.

#include <cstddef>
#include <span>
#include <vector>

namespace omv::stats {

/// Streaming mean/variance/extrema accumulator (Welford's algorithm,
/// numerically stable for long runs of near-equal timings).
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations added.
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// Arithmetic mean (0 if empty).
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 if fewer than two observations).
  [[nodiscard]] double variance() const noexcept;
  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;
  /// Coefficient of variation: stddev / mean (0 if mean is 0).
  [[nodiscard]] double cv() const noexcept;
  /// Smallest observation (+inf if empty).
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest observation (-inf if empty).
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel reduction of partial stats).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool any_ = false;
};

/// Linear-interpolation percentile (type-7, the numpy/R default).
/// `p` in [0, 100]. The input need not be sorted. Returns 0 for empty input
/// and NaN when any input value is NaN (NaN breaks sorting, so every order
/// statistic of such a sample is meaningless).
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Percentile of an already ascending-sorted sample (no copy). The input
/// must be genuinely sorted and NaN-free — use percentile() when that is
/// not guaranteed.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double p) noexcept;

/// Percentile via selection (std::nth_element) instead of a full sort:
/// O(n) rather than O(n log n) for one order statistic. Partially reorders
/// `xs` in place; the input must be NaN-free. Selects the exact elements a
/// full sort would, so the interpolated result is bit-identical to
/// percentile_sorted(sorted_copy(xs), p).
[[nodiscard]] double percentile_in_place(std::span<double> xs,
                                         double p) noexcept;

/// Median absolute deviation, scaled by 1.4826 so it estimates sigma for
/// normal data (robust spread estimate). NaN inputs propagate to NaN.
[[nodiscard]] double mad(std::span<const double> xs);

/// Geometric mean. Non-positive values are *silently skipped* — callers
/// averaging data that can legitimately contain zeros or negatives (e.g.
/// differences) must filter or transform first; the mean is taken over the
/// positive subset only. Returns 0 for empty/all-skipped input; NaN inputs
/// propagate to NaN.
[[nodiscard]] double geomean(std::span<const double> xs);

/// True when any element is NaN (the poisoned-sample check used by the
/// batch statistics above).
[[nodiscard]] bool has_nan(std::span<const double> xs) noexcept;

/// Batch summary of one sample of execution times.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double cv = 0.0;      ///< stddev / mean — the paper's Fig. 5 metric.
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p99 = 0.0;
  double iqr = 0.0;     ///< p75 - p25.
  double mad = 0.0;     ///< scaled median absolute deviation.
  double skewness = 0.0;  ///< sample skewness (g1); 0 if n < 3 or sd == 0.
  double kurtosis = 0.0;  ///< excess kurtosis (g2); 0 if n < 4 or sd == 0.

  /// min / mean — the paper's Fig. 3 normalized minimum.
  [[nodiscard]] double norm_min() const noexcept {
    return mean != 0.0 ? min / mean : 0.0;
  }
  /// max / mean — the paper's Fig. 3 normalized maximum.
  [[nodiscard]] double norm_max() const noexcept {
    return mean != 0.0 ? max / mean : 0.0;
  }
};

/// Computes the full summary of a sample. If any value is NaN, every
/// statistic of the returned Summary is NaN (n still reports the sample
/// size) — a poisoned sample must not yield plausible-looking numbers.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Returns an ascending-sorted copy.
[[nodiscard]] std::vector<double> sorted_copy(std::span<const double> xs);

}  // namespace omv::stats
