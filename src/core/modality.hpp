#pragma once
// Multimodality detection.
//
// Timing distributions under interference are often bimodal: a fast mode
// (undisturbed repetitions) plus a slow mode (repetitions that absorbed a
// daemon wakeup or migration). Two indicators are provided:
//   * the bimodality coefficient (sarle's BC) from skewness/kurtosis, and
//   * a smoothed-histogram peak count.

#include <cstddef>
#include <span>

namespace omv::stats {

/// Multimodality indicators for one sample.
struct ModalityReport {
  /// Sarle's bimodality coefficient: (g1^2 + 1) / (g2 + 3(n-1)^2/((n-2)(n-3))).
  /// > 0.555 (the uniform's value) suggests bi/multimodality.
  double bimodality_coefficient = 0.0;
  /// Number of local maxima in a smoothed auto-binned histogram.
  std::size_t peak_count = 0;
  /// Convenience verdict: BC above threshold AND at least 2 peaks.
  bool likely_multimodal = false;
};

/// Analyzes one sample. `bc_threshold` defaults to the uniform-distribution
/// benchmark value 5/9.
[[nodiscard]] ModalityReport analyze_modality(std::span<const double> xs,
                                              double bc_threshold = 5.0 / 9.0);

/// Counts local maxima of `density` ignoring ripples below
/// `min_prominence` * max(density).
[[nodiscard]] std::size_t count_peaks(std::span<const double> density,
                                      double min_prominence = 0.05);

}  // namespace omv::stats
