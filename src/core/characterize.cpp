#include "core/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/modality.hpp"
#include "core/outliers.hpp"

namespace omv {

const char* signature_name(Signature s) noexcept {
  switch (s) {
    case Signature::stable:
      return "stable";
    case Signature::outlier_runs:
      return "outlier_runs";
    case Signature::heavy_tail:
      return "heavy_tail";
    case Signature::bimodal:
      return "bimodal";
    case Signature::drift:
      return "drift";
    case Signature::jittery:
      return "jittery";
  }
  return "?";
}

bool Characterization::has(Signature s) const noexcept {
  return std::find(signatures.begin(), signatures.end(), s) !=
         signatures.end();
}

std::string Characterization::to_string() const {
  if (signatures.empty()) return "unclassified";
  std::string out;
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    if (i) out += "+";
    out += signature_name(signatures[i]);
  }
  return out;
}

double index_rank_correlation(std::span<const double> values) {
  const std::size_t n = values.size();
  if (n < 3) return 0.0;
  // Rank the values (midranks for ties); the index ranks are 1..n already.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> rank(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[idx[j + 1]] == values[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[idx[k]] = avg;
    i = j + 1;
  }
  // Pearson correlation between (1..n) and rank[].
  const double mean_i = (static_cast<double>(n) + 1.0) / 2.0;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double dx = static_cast<double>(k + 1) - mean_i;
    const double dy = rank[k] - mean_i;  // ranks also average (n+1)/2
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  return (sxx > 0.0 && syy > 0.0) ? sxy / std::sqrt(sxx * syy) : 0.0;
}

Characterization characterize(const RunMatrix& m,
                              const CharacterizeOptions& opt) {
  Characterization c;
  if (m.runs() == 0) return c;

  const auto flat = m.flatten();
  c.pooled = stats::summarize(flat);
  c.run_to_run_cv = m.run_to_run_cv();
  c.icc = m.variance_components().icc;

  const auto out = stats::tukey_outliers(flat, 3.0);
  c.high_tail_fraction =
      flat.empty() ? 0.0
                   : static_cast<double>(out.n_high) /
                         static_cast<double>(flat.size());
  c.multimodal = stats::analyze_modality(flat).likely_multimodal;

  const auto means = m.run_means();
  c.drift_corr = index_rank_correlation(means);

  const double spread = m.run_mean_spread();

  if (spread > opt.outlier_run_spread && c.icc > 0.25) {
    c.signatures.push_back(Signature::outlier_runs);
  }
  if (c.high_tail_fraction > opt.heavy_tail_fraction) {
    c.signatures.push_back(Signature::heavy_tail);
  }
  if (c.multimodal) {
    c.signatures.push_back(Signature::bimodal);
  }
  if (std::abs(c.drift_corr) > opt.drift_correlation && m.runs() >= 5 &&
      spread > opt.outlier_run_spread) {
    c.signatures.push_back(Signature::drift);
  }
  if (c.pooled.cv > opt.jitter_cv) {
    c.signatures.push_back(Signature::jittery);
  }
  if (c.signatures.empty() && c.pooled.cv < opt.stable_cv) {
    c.signatures.push_back(Signature::stable);
  }
  return c;
}

}  // namespace omv
