#pragma once
// OS thread-placement model.
//
// Pinned teams have a fixed thread->HW-thread map derived from the
// OMP_PLACES/OMP_PROC_BIND assignment. Unpinned teams (the paper's "before
// thread-pinning" configuration) are placed by a modelled OS scheduler:
// an initially balanced placement that is perturbed between repetitions by
// load-balancer migrations. Migrations carry a cache/TLB refill cost, may
// move a thread's execution away from its first-touch NUMA data, and can
// transiently stack two threads on one HW thread (oversubscription) while
// leaving other cores idle — the mechanism behind the paper's Fig. 4
// "orders of magnitude" syncbench outliers.

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "topo/places.hpp"
#include "topo/proc_bind.hpp"
#include "topo/topology.hpp"

namespace omv::snap {
class Capture;
class Restore;
}  // namespace omv::snap

namespace omv::sim {

/// Placement policy knobs for the unpinned case.
struct PlacementConfig {
  double migrate_prob = 0.02;  ///< per thread per repetition.
  /// Probability a migration is a "bad" one (to a random CPU, possibly
  /// stacking threads) rather than to an idle CPU; real balancers are mostly
  /// right, occasionally wrong.
  double bad_migration_prob = 0.20;
  /// Per-rep probability that the balancer rescues one thread off an
  /// oversubscribed CPU onto an idle one.
  double rescue_prob = 0.5;
};

/// Where each OpenMP thread currently is, plus per-rep derived state.
struct Placement {
  std::vector<std::size_t> hw;           ///< HW thread per OpenMP thread.
  std::vector<std::size_t> data_domain;  ///< first-touch NUMA domain.
  std::vector<bool> migrated;            ///< migrated since last rep.
  /// Oversubscription share: number of team threads on the same HW thread
  /// (>= 1). Compute time multiplies by this factor.
  std::vector<std::size_t> share;
  /// True when both SMT siblings of the thread's core host team threads.
  std::vector<bool> smt_coscheduled;
};

/// Maintains team placement across repetitions.
class PlacementModel {
 public:
  /// Pinned constructor: affinities[i] is the CpuSet thread i may use
  /// (from topo::thread_affinities); each thread sits on a deterministic
  /// member of its set, distributing threads that share a place.
  PlacementModel(const topo::Machine& machine,
                 std::vector<topo::CpuSet> affinities, bool pinned,
                 PlacementConfig cfg, std::uint64_t seed);

  /// Placement for the next repetition (applies migrations when unpinned).
  const Placement& next_rep();

  /// Current placement without advancing.
  [[nodiscard]] const Placement& current() const noexcept { return state_; }

  /// Set of busy HW threads (for the noise model's daemon placement).
  [[nodiscard]] topo::CpuSet busy_set() const;

  [[nodiscard]] bool pinned() const noexcept { return pinned_; }

  /// Re-derives the migration RNG stream keyed by `salt` (snapshot fork
  /// semantics; the current placement is untouched).
  void fork_streams(std::uint64_t salt) { rng_ = rng_.fork(salt); }

 private:
  friend class snap::Capture;
  friend class snap::Restore;

  /// Single field enumeration driving both snapshot directions. The
  /// placement vectors are the per-rep mutable state; the affinity sets and
  /// policy knobs are construction-time configuration and re-derived by the
  /// owner.
  template <typename V>
  void snapshot_fields(V& v) {
    v.object("rng", rng_);
    v.field("hw", state_.hw);
    v.field("data_domain", state_.data_domain);
    v.field("migrated", state_.migrated);
    v.field("share", state_.share);
    v.field("smt_coscheduled", state_.smt_coscheduled);
    v.field("first", first_);
  }

  void recompute_derived();
  void initial_place();

  // Pointer (not reference) so PlacementModel stays assignable: SimTeam
  // rebuilds its placement each run via assignment.
  const topo::Machine* machine_;
  std::vector<topo::CpuSet> affinities_;
  bool pinned_;
  PlacementConfig cfg_;
  Rng rng_;
  Placement state_;
  bool first_ = true;
};

}  // namespace omv::sim
