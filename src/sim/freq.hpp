#pragma once
// DVFS / core-frequency model.
//
// The paper observes (Section 5.4) that even under the `performance`
// governor, Vera shows frequency *dip episodes* — correlated within a NUMA
// domain — which translate directly into execution-time variability, while
// Dardel's frequency is nearly flat. We model per-NUMA-domain episodes:
// Poisson arrivals of dips with lognormal durations and uniform depth, plus
// small per-core white jitter. The instantaneous frequency of a core is
//
//   f(core, t) = fmax * depth(numa(core), t) * (1 + jitter)
//
// and the compute rate of a thread scales as f / fmax.

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "topo/topology.hpp"

namespace omv::sim {

/// Frequency model knobs. Depth is the fraction of fmax during a dip.
struct FreqConfig {
  double episode_rate = 0.0;     ///< dips per second per NUMA domain.
  double episode_mean = 0.5;     ///< mean dip duration (s).
  double episode_sigma_log = 0.6;
  double depth_lo = 0.80;        ///< dip depth range (fraction of fmax).
  double depth_hi = 0.93;
  double jitter = 0.002;         ///< white per-sample jitter (fraction).
  /// Probability that a run starts inside a long "capped" state (sustained
  /// sub-fmax operation: a power-limit / turbo-residency episode). The cap
  /// only takes effect when the machine-load fraction (busy HW threads /
  /// all HW threads, declared via set_load_fraction) reaches
  /// cap_load_threshold — lightly loaded nodes hold full boost, which is
  /// why Table 2's 4-thread columns are tight while the full-node column
  /// shows run-level outliers.
  double run_cap_prob = 0.0;
  double run_cap_depth = 0.92;
  double cap_load_threshold = 0.05;
  /// Episode-rate multiplier applied when the workload spans more than one
  /// NUMA domain (the paper's Fig. 6/7 observation: cross-NUMA experiments
  /// on Vera see far more frequency dips, as uncore/power budgets are
  /// stressed by remote traffic). Set via FreqModel::set_activity_domains.
  double cross_numa_rate_mult = 1.0;

  /// Vera: occasional NUMA-correlated dips, more frequent cross-NUMA.
  static FreqConfig vera();
  /// A Vera session with active frequency variation (Figs. 6/7's sessions).
  static FreqConfig vera_dippy();
  /// Dardel: nearly flat frequency.
  static FreqConfig dardel();
  /// No variation at all (ablation / unit tests).
  static FreqConfig flat();
};

/// One frequency-dip episode on a NUMA domain.
struct FreqEpisode {
  double start = 0.0;
  double end = 0.0;
  double depth = 1.0;  ///< multiplier vs fmax while active.
};

/// Deterministic per-run frequency model, queryable at any time.
class FreqModel {
 public:
  FreqModel(const topo::Machine& machine, FreqConfig cfg);

  /// Starts a new run: clears episodes, reseeds, samples the run-cap state.
  void begin_run(std::uint64_t run_seed);

  /// Declares how many NUMA domains the running workload spans; spanning
  /// more than one multiplies the episode rate by cross_numa_rate_mult.
  /// Call before generating episodes (i.e. right after begin_run).
  void set_activity_domains(std::size_t n_domains);

  /// Declares the busy fraction of the machine (gates the run cap).
  void set_load_fraction(double f) noexcept { load_fraction_ = f; }

  /// Frequency multiplier (0 < m <= ~1) for `core` at time `t`,
  /// without white jitter (deterministic component).
  double factor(std::size_t core, double t);

  /// Instantaneous frequency in GHz including white jitter — what the
  /// frequency *logger* samples (jitter models sysfs readout granularity).
  double sample_ghz(std::size_t core, double t);

  /// Mean multiplier over [t0, t1) for `core` (exact episode integration).
  double mean_factor(std::size_t core, double t0, double t1);

  /// Elapsed wall time to complete `work` seconds of fmax-rate compute
  /// starting at `t0` on `core` (inverts the factor integral; fixed-point
  /// iteration, converges in a few steps because factors are in [0.5, 1]).
  double elapsed_for_work(std::size_t core, double t0, double work);

  /// True when this run is frequency-capped (cap drawn AND load above the
  /// gating threshold).
  [[nodiscard]] bool run_capped() const noexcept {
    return run_capped_ && load_fraction_ >= cfg_.cap_load_threshold;
  }

  [[nodiscard]] const FreqConfig& config() const noexcept { return cfg_; }

  /// Episodes of a NUMA domain generated so far (diagnostics).
  [[nodiscard]] const std::vector<FreqEpisode>& episodes(std::size_t numa) {
    return episodes_.at(numa);
  }

 private:
  void ensure_horizon(double t);

  const topo::Machine& machine_;
  FreqConfig cfg_;
  Rng episode_rng_;
  Rng jitter_rng_;
  std::vector<std::vector<FreqEpisode>> episodes_;  ///< per NUMA domain.
  std::vector<double> next_arrival_;
  double horizon_ = 0.0;
  double rate_ = 0.0;
  double activity_mult_ = 1.0;
  double load_fraction_ = 1.0;
  bool run_capped_ = false;
};

}  // namespace omv::sim
