#pragma once
// DVFS / core-frequency model.
//
// The paper observes (Section 5.4) that even under the `performance`
// governor, Vera shows frequency *dip episodes* — correlated within a NUMA
// domain — which translate directly into execution-time variability, while
// Dardel's frequency is nearly flat. We model per-NUMA-domain episodes:
// Poisson arrivals of dips with lognormal durations and uniform depth, plus
// small per-core white jitter. The instantaneous frequency of a core is
//
//   f(core, t) = fmax * depth(numa(core), t) * (1 + jitter)
//
// and the compute rate of a thread scales as f / fmax.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/prefix_index.hpp"
#include "core/rng.hpp"
#include "topo/topology.hpp"

namespace omv::snap {
class Capture;
class Restore;
}  // namespace omv::snap

namespace omv::sim {

namespace batch {
struct Kernels;
}  // namespace batch

/// Frequency model knobs. Depth is the fraction of fmax during a dip.
struct FreqConfig {
  double episode_rate = 0.0;     ///< dips per second per NUMA domain.
  double episode_mean = 0.5;     ///< mean dip duration (s).
  double episode_sigma_log = 0.6;
  double depth_lo = 0.80;        ///< dip depth range (fraction of fmax).
  double depth_hi = 0.93;
  double jitter = 0.002;         ///< white per-sample jitter (fraction).
  /// Probability that a run starts inside a long "capped" state (sustained
  /// sub-fmax operation: a power-limit / turbo-residency episode). The cap
  /// only takes effect when the machine-load fraction (busy HW threads /
  /// all HW threads, declared via set_load_fraction) reaches
  /// cap_load_threshold — lightly loaded nodes hold full boost, which is
  /// why Table 2's 4-thread columns are tight while the full-node column
  /// shows run-level outliers.
  double run_cap_prob = 0.0;
  double run_cap_depth = 0.92;
  double cap_load_threshold = 0.05;
  /// Episode-rate multiplier applied when the workload spans more than one
  /// NUMA domain (the paper's Fig. 6/7 observation: cross-NUMA experiments
  /// on Vera see far more frequency dips, as uncore/power budgets are
  /// stressed by remote traffic). Set via FreqModel::set_activity_domains.
  double cross_numa_rate_mult = 1.0;

  /// Vera: occasional NUMA-correlated dips, more frequent cross-NUMA.
  static FreqConfig vera();
  /// A Vera session with active frequency variation (Figs. 6/7's sessions).
  static FreqConfig vera_dippy();
  /// Dardel: nearly flat frequency.
  static FreqConfig dardel();
  /// No variation at all (ablation / unit tests).
  static FreqConfig flat();
};

/// Deterministic per-run frequency model, queryable at any time. Episodes
/// are stored columnar (SoA) per NUMA domain — start/end/depth columns plus
/// derived search and reduction indices — the canonical representation that
/// both the query kernels and snapshots consume directly.
class FreqModel {
 public:
  /// Density-adaptive scan/index cutover (episodes per domain): domains
  /// holding at most this many episodes are integrated by the historical
  /// full scan (bit-identical to the pre-index accumulation and faster at
  /// low densities, where the two binary searches plus boundary back-scans
  /// of the prefix path used to regress); larger domains use the prefix
  /// index. Sits at the measured crossover of BENCH_hotpath.json's density
  /// sweep; may only ever be raised (see NoiseModel::kScanCutover).
  static constexpr std::size_t kScanCutover = 48;

  FreqModel(const topo::Machine& machine, FreqConfig cfg);

  /// Starts a new run: clears episodes, reseeds, samples the run-cap state.
  void begin_run(std::uint64_t run_seed);

  /// Declares how many NUMA domains the running workload spans; spanning
  /// more than one multiplies the episode rate by cross_numa_rate_mult.
  /// Call before generating episodes (i.e. right after begin_run).
  void set_activity_domains(std::size_t n_domains);

  /// Declares the busy fraction of the machine (gates the run cap).
  void set_load_fraction(double f) noexcept { load_fraction_ = f; }

  /// Frequency multiplier (0 < m <= ~1) for `core` at time `t`,
  /// without white jitter (deterministic component). Indexed: binary search
  /// on episode starts plus a max-end-pruned back-scan over straddlers.
  double factor(std::size_t core, double t);

  /// Instantaneous frequency in GHz including white jitter — what the
  /// frequency *logger* samples (jitter models sysfs readout granularity).
  double sample_ghz(std::size_t core, double t);

  /// Mean multiplier over [t0, t1) for `core` (exact episode integration).
  ///
  /// Indexed: two binary searches on the start-sorted episode vector; the
  /// episodes fully inside the window are integrated by compensated prefix
  /// sums in O(1), and the episodes partially overlapping either window
  /// boundary are enumerated and trimmed explicitly (a max-end-pruned
  /// back-scan), so partial overlaps are exact. Domains holding few
  /// episodes take the historical full-scan path, which reproduces the
  /// pre-index floating-point accumulation bit for bit.
  double mean_factor(std::size_t core, double t0, double t1);

  /// Batched mean_factor: answers one window per span element, in call
  /// order (lazy horizon growth ordered exactly as a per-call loop), with
  /// the episode scans dispatched through the active ISA's kernel table.
  /// Scalar ISA is bit-identical to per-call mean_factor; wider ISAs
  /// reassociate within-window sums (< 1e-12 relative, pinned by the
  /// differential rig). All spans must share one length.
  void mean_factor_batch(std::span<const std::size_t> core,
                         std::span<const double> t0,
                         std::span<const double> t1, std::span<double> out);

  /// Elapsed wall time to complete `work` seconds of fmax-rate compute
  /// starting at `t0` on `core` (inverts the factor integral; fixed-point
  /// iteration, converges in a few steps because factors are in [0.5, 1]).
  /// Flat-frequency windows — the common case — cost one indexed episode
  /// lookup per fixed-point step: a verified-flat span is carried between
  /// steps so shrinking windows skip the episode search entirely.
  double elapsed_for_work(std::size_t core, double t0, double work);

  /// Batched elapsed_for_work: same contract as mean_factor_batch (per-call
  /// bit-identity on the scalar ISA, call-order lazy materialization).
  void elapsed_for_work_batch(std::span<const std::size_t> core,
                              std::span<const double> t0,
                              std::span<const double> work,
                              std::span<double> out);

  /// Materializes episode arrivals up to time `t` (normally done lazily;
  /// exposed so the differential oracle and the perf_hotpath bench can pin
  /// the episode history before pure-query timing).
  void materialize_to(double t) { ensure_horizon(t); }

  /// Time up to which episodes have been materialized this run. The pure
  /// reference:: queries refuse to read past it (a query there would
  /// silently see an episode-free future).
  [[nodiscard]] double materialized_horizon() const noexcept {
    return horizon_;
  }

  /// NUMA domain hosting `core` (0 for cores with no HW threads — the
  /// guard FreqModel::factor always had and mean_factor historically
  /// lacked).
  [[nodiscard]] std::size_t core_numa(std::size_t core) const noexcept {
    return core < core_numa_.size() ? core_numa_[core] : 0;
  }

  /// True when this run is frequency-capped (cap drawn AND load above the
  /// gating threshold).
  [[nodiscard]] bool run_capped() const noexcept {
    return run_capped_ && load_fraction_ >= cfg_.cap_load_threshold;
  }

  [[nodiscard]] const FreqConfig& config() const noexcept { return cfg_; }

  /// Start times of the episodes materialized so far on a NUMA domain,
  /// sorted ascending (arrival order). Valid until the next materialization.
  [[nodiscard]] std::span<const double> episode_starts(std::size_t numa) const {
    return index_.at(numa).starts;
  }

  /// End times matching `episode_starts(numa)` element for element.
  [[nodiscard]] std::span<const double> episode_ends(std::size_t numa) const {
    return index_.at(numa).ends;
  }

  /// Dip depths matching `episode_starts(numa)` element for element.
  [[nodiscard]] std::span<const double> episode_depths(std::size_t numa) const {
    return index_.at(numa).depths;
  }

  /// Re-derives the RNG sub-streams keyed by `salt` without touching the
  /// materialized episode history — the fork half of snapshot fork
  /// semantics.
  void fork_streams(std::uint64_t salt);

 private:
  friend class snap::Capture;
  friend class snap::Restore;

  /// Canonical columnar storage plus query index for one domain's
  /// start-sorted episodes. Episodes arrive in start order, so all arrays
  /// are append-only and extended incrementally per horizon extension.
  struct DomainIndex {
    /// The domain's episode columns — binary searches and integration scans
    /// stream one contiguous double array each instead of striding through
    /// episode records (and they are what the ISA kernels consume, and what
    /// snapshots serialize directly).
    std::vector<double> starts;
    std::vector<double> ends;
    std::vector<double> depths;
    /// max episode end over episodes [0, k) — prunes the back-scan that
    /// enumerates episodes straddling a window boundary.
    std::vector<double> max_end;
    /// Σ (1 - depth)·(end - start): full-episode reduction under the
    /// uncapped base (base = 1).
    stats::PrefixSum red_uncapped;
    /// Σ max(0, run_cap_depth - depth)·(end - start): reduction under the
    /// capped base.
    stats::PrefixSum red_capped;

    void clear() {
      starts.clear();
      ends.clear();
      depths.clear();
      max_end.clear();
      red_uncapped.clear();
      red_capped.clear();
    }
  };

  void ensure_horizon(double t);
  /// Extends the derived search/reduction indices (max_end, reduction
  /// prefix sums) over episode columns appended since the last call.
  void index_new_episodes();
  /// Rebuilds derived state after a snapshot restore repopulated the
  /// serialized episode columns.
  void after_restore(snap::Restore& v);

  /// Single field enumeration driving both snapshot directions.
  template <typename V>
  void snapshot_fields(V& v) {
    v.object("episode_rng", episode_rng_);
    v.object("jitter_rng", jitter_rng_);
    for (std::size_t d = 0; d < index_.size(); ++d) {
      const std::string p = "dom" + std::to_string(d);
      v.field(p + ".starts", index_[d].starts);
      v.field(p + ".ends", index_[d].ends);
      v.field(p + ".depths", index_[d].depths);
    }
    v.field("next_arrival", next_arrival_);
    v.field("horizon", horizon_);
    v.field("rate", rate_);
    v.field("activity_mult", activity_mult_);
    v.field("load_fraction", load_fraction_);
    v.field("run_capped", run_capped_);
    if constexpr (V::is_restore) after_restore(v);
  }
  /// Reduction Σ w·|[t0,t1) ∩ episode| over domain `numa` under `base`,
  /// where w = base - min(base, depth). Indexed query (see mean_factor).
  double window_reduction(std::size_t numa, double t0, double t1,
                          double base) const;
  /// mean_factor plus a flatness report (`flat_out` true when no episode
  /// overlapped the window) feeding elapsed_for_work's early exit. `kern`,
  /// when non-null, answers the narrow episode scan through the ISA kernel
  /// table instead of the inlined scalar loop.
  double mean_factor_impl(std::size_t core, double t0, double t1,
                          bool* flat_out, const batch::Kernels* kern);
  /// elapsed_for_work with the kernel table threaded through to the
  /// per-step mean-factor queries.
  double elapsed_impl(std::size_t core, double t0, double work,
                      const batch::Kernels* kern);

  const topo::Machine& machine_;
  FreqConfig cfg_;
  Rng episode_rng_;
  Rng jitter_rng_;
  std::vector<DomainIndex> index_;  ///< per NUMA domain.
  std::vector<std::size_t> core_numa_;  ///< core → NUMA domain (guarded).
  std::vector<double> next_arrival_;
  double horizon_ = 0.0;
  double rate_ = 0.0;
  double activity_mult_ = 1.0;
  double load_fraction_ = 1.0;
  bool run_capped_ = false;
};

}  // namespace omv::sim
