#pragma once
// Runtime ISA selection for the batched simulator kernels.
//
// The batched interval-query kernels (sim/batch_kernels.hpp) ship in up to
// three builds — scalar, AVX2 and AVX-512 — compiled into separate
// translation units with the matching target flags. At startup the best
// level the host CPU supports is selected; the OMNIVAR_ISA environment
// variable ("scalar" / "avx2" / "avx512") clamps the choice for testing
// (requesting a level the host or build cannot run falls back to the best
// available one, with a stderr warning). The scalar level is always
// available and is the bit-identity oracle: every wider level is pinned
// against it by the differential rig (tests/test_hotpath_differential.cpp).

#include <string>
#include <vector>

namespace omv::sim {

/// Instruction-set level of the batched kernels, in ascending width.
enum class Isa { scalar = 0, avx2 = 1, avx512 = 2 };

/// Lowercase name used by OMNIVAR_ISA, --isa-report and the bench JSON.
[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// True when `isa` was compiled in AND the host CPU can execute it.
[[nodiscard]] bool isa_supported(Isa isa) noexcept;

/// All supported levels, ascending; always contains at least scalar.
[[nodiscard]] std::vector<Isa> available_isas();

/// Widest supported level (what auto-dispatch selects).
[[nodiscard]] Isa best_isa() noexcept;

/// The active dispatch level: resolved once from OMNIVAR_ISA (falling back
/// to best_isa()), unless force_isa() overrode it.
[[nodiscard]] Isa active_isa();

/// True when the active level came from an OMNIVAR_ISA override rather
/// than auto-detection (reported by the campaign driver and bench JSON).
[[nodiscard]] bool isa_overridden();

/// Test hook: pins the active level. Throws std::invalid_argument when the
/// level is not supported on this host/build.
void force_isa(Isa isa);

/// Test hook: drops any force_isa() pin and re-resolves from the
/// environment on the next active_isa() call.
void reset_isa();

/// Parses an OMNIVAR_ISA-style name. Returns false on unknown input.
[[nodiscard]] bool parse_isa(const std::string& name, Isa& out);

}  // namespace omv::sim
