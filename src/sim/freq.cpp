#include "sim/freq.hpp"

#include <algorithm>
#include <cmath>

namespace omv::sim {

FreqConfig FreqConfig::vera() {
  FreqConfig c;
  // Single-NUMA workloads see rare dips; cross-NUMA workloads stress the
  // uncore/power budget and dip an order of magnitude more often.
  // The default profile models a quiet session (the paper's Table 2 / Fig 3
  // sessions show tight Vera columns); vera_dippy() models the sessions
  // during which the paper observed active frequency variation (Figs 6/7).
  c.episode_rate = 0.002;
  c.episode_mean = 0.6;
  c.depth_lo = 0.82;
  c.depth_hi = 0.93;
  // No run-scoped cap: Vera's Table 2 columns are tight at both thread
  // counts; its variability is episodic (dips), not run-scoped.
  c.run_cap_prob = 0.0;
  c.cross_numa_rate_mult = 3.0;
  return c;
}

FreqConfig FreqConfig::dardel() {
  FreqConfig c;
  // Instantaneous frequency is nearly flat (the paper logs little variation
  // on Dardel), but whole runs occasionally start in a reduced
  // turbo-residency state — the Table 2 run-level outlier.
  c.episode_rate = 0.005;
  c.episode_mean = 0.2;
  c.depth_lo = 0.96;
  c.depth_hi = 0.99;
  c.run_cap_prob = 0.08;
  c.run_cap_depth = 0.91;
  return c;
}

FreqConfig FreqConfig::vera_dippy() {
  // A Vera session during which frequency variation is active — the
  // sessions behind Figs. 6 and 7. Same mechanics as vera(), higher
  // episode pressure.
  FreqConfig c = vera();
  c.episode_rate = 0.10;
  c.cross_numa_rate_mult = 10.0;
  return c;
}

FreqConfig FreqConfig::flat() {
  FreqConfig c;
  c.episode_rate = 0.0;
  c.jitter = 0.0;
  c.run_cap_prob = 0.0;
  return c;
}

FreqModel::FreqModel(const topo::Machine& machine, FreqConfig cfg)
    : machine_(machine), cfg_(cfg) {
  episodes_.resize(machine.n_numa());
  next_arrival_.resize(machine.n_numa(), 0.0);
  begin_run(0);
}

void FreqModel::begin_run(std::uint64_t run_seed) {
  Rng base(run_seed);
  episode_rng_ = base.fork(11);
  jitter_rng_ = base.fork(12);
  Rng cap_rng = base.fork(13);
  run_capped_ = cap_rng.bernoulli(cfg_.run_cap_prob);
  // The activity multiplier and load fraction are per-run state: carrying
  // a previous run's values into the arrival draws or the cap gate would
  // make a run's behaviour depend on what ran before it, breaking the
  // invariant that run state derives solely from run_seed (callers
  // re-declare both via set_activity_domains / set_load_fraction right
  // after begin_run).
  activity_mult_ = 1.0;
  load_fraction_ = 1.0;
  rate_ = cfg_.episode_rate * activity_mult_;
  for (auto& v : episodes_) v.clear();
  for (auto& t : next_arrival_) {
    t = rate_ > 0.0 ? episode_rng_.exponential(rate_) : 1e300;
  }
  horizon_ = 0.0;
}

void FreqModel::set_activity_domains(std::size_t n_domains) {
  activity_mult_ = n_domains > 1 ? cfg_.cross_numa_rate_mult : 1.0;
  const double new_rate = cfg_.episode_rate * activity_mult_;
  if (new_rate != rate_) {
    rate_ = new_rate;
    // Re-draw pending arrivals under the new rate (episodes already
    // generated are kept; only the future changes).
    for (auto& t : next_arrival_) {
      t = rate_ > 0.0 ? horizon_ + episode_rng_.exponential(rate_) : 1e300;
    }
  }
}

void FreqModel::ensure_horizon(double t) {
  if (t <= horizon_ || rate_ <= 0.0) {
    horizon_ = std::max(horizon_, t);
    return;
  }
  const double target = std::max(t * 1.25, horizon_ + 1.0);
  const double mu_log = std::log(cfg_.episode_mean) -
                        0.5 * cfg_.episode_sigma_log * cfg_.episode_sigma_log;
  for (std::size_t d = 0; d < episodes_.size(); ++d) {
    while (next_arrival_[d] < target) {
      FreqEpisode ep;
      ep.start = next_arrival_[d];
      ep.end = ep.start +
               episode_rng_.lognormal(mu_log, cfg_.episode_sigma_log);
      ep.depth = episode_rng_.uniform(cfg_.depth_lo, cfg_.depth_hi);
      episodes_[d].push_back(ep);
      next_arrival_[d] += episode_rng_.exponential(rate_);
    }
  }
  horizon_ = target;
}

double FreqModel::factor(std::size_t core, double t) {
  ensure_horizon(t);
  double f = run_capped() ? cfg_.run_cap_depth : 1.0;
  const std::size_t numa = machine_.core_threads(core).empty()
                               ? 0
                               : machine_.thread(machine_.core_threads(core)
                                                     .first())
                                     .numa;
  for (const auto& ep : episodes_[numa]) {
    if (t >= ep.start && t < ep.end) f = std::min(f, ep.depth);
  }
  return f;
}

double FreqModel::sample_ghz(std::size_t core, double t) {
  double f = factor(core, t);
  if (cfg_.jitter > 0.0) {
    f *= 1.0 + jitter_rng_.normal(0.0, cfg_.jitter);
  }
  return std::max(0.1, f) * machine_.max_ghz();
}

double FreqModel::mean_factor(std::size_t core, double t0, double t1) {
  if (t1 <= t0) return factor(core, t0);
  ensure_horizon(t1);
  const double base = run_capped() ? cfg_.run_cap_depth : 1.0;
  const std::size_t numa = machine_.thread(
      machine_.core_threads(core).first()).numa;
  // Integrate: base everywhere, lowered inside episodes. Episodes may
  // overlap; take min depth per overlap by processing in time order.
  // For simplicity (episodes rarely overlap at the configured rates),
  // accumulate reduction per episode and clamp.
  double integral = base * (t1 - t0);
  for (const auto& ep : episodes_[numa]) {
    const double lo = std::max(t0, ep.start);
    const double hi = std::min(t1, ep.end);
    if (hi > lo) {
      const double depth = std::min(base, ep.depth);
      integral -= (base - depth) * (hi - lo);
    }
  }
  return std::max(0.1, integral / (t1 - t0));
}

double FreqModel::elapsed_for_work(std::size_t core, double t0, double work) {
  if (work <= 0.0) return 0.0;
  double d = work;  // initial guess: full speed
  for (int iter = 0; iter < 4; ++iter) {
    const double m = mean_factor(core, t0, t0 + d);
    const double nd = work / m;
    if (std::abs(nd - d) < 1e-12) return nd;
    d = nd;
  }
  return d;
}

}  // namespace omv::sim
