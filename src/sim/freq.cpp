#include "sim/freq.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/snapshot.hpp"
#include "sim/batch_kernels.hpp"

namespace omv::sim {

FreqConfig FreqConfig::vera() {
  FreqConfig c;
  // Single-NUMA workloads see rare dips; cross-NUMA workloads stress the
  // uncore/power budget and dip an order of magnitude more often.
  // The default profile models a quiet session (the paper's Table 2 / Fig 3
  // sessions show tight Vera columns); vera_dippy() models the sessions
  // during which the paper observed active frequency variation (Figs 6/7).
  c.episode_rate = 0.002;
  c.episode_mean = 0.6;
  c.depth_lo = 0.82;
  c.depth_hi = 0.93;
  // No run-scoped cap: Vera's Table 2 columns are tight at both thread
  // counts; its variability is episodic (dips), not run-scoped.
  c.run_cap_prob = 0.0;
  c.cross_numa_rate_mult = 3.0;
  return c;
}

FreqConfig FreqConfig::dardel() {
  FreqConfig c;
  // Instantaneous frequency is nearly flat (the paper logs little variation
  // on Dardel), but whole runs occasionally start in a reduced
  // turbo-residency state — the Table 2 run-level outlier.
  c.episode_rate = 0.005;
  c.episode_mean = 0.2;
  c.depth_lo = 0.96;
  c.depth_hi = 0.99;
  c.run_cap_prob = 0.08;
  c.run_cap_depth = 0.91;
  return c;
}

FreqConfig FreqConfig::vera_dippy() {
  // A Vera session during which frequency variation is active — the
  // sessions behind Figs. 6 and 7. Same mechanics as vera(), higher
  // episode pressure.
  FreqConfig c = vera();
  c.episode_rate = 0.10;
  c.cross_numa_rate_mult = 10.0;
  return c;
}

FreqConfig FreqConfig::flat() {
  FreqConfig c;
  c.episode_rate = 0.0;
  c.jitter = 0.0;
  c.run_cap_prob = 0.0;
  return c;
}

FreqModel::FreqModel(const topo::Machine& machine, FreqConfig cfg)
    : machine_(machine), cfg_(cfg) {
  index_.resize(machine.n_numa());
  next_arrival_.resize(machine.n_numa(), 0.0);
  core_numa_.resize(machine.n_cores(), 0);
  for (std::size_t core = 0; core < machine.n_cores(); ++core) {
    const auto threads = machine.core_threads(core);
    core_numa_[core] =
        threads.empty() ? 0 : machine.thread(threads.first()).numa;
  }
  begin_run(0);
}

void FreqModel::begin_run(std::uint64_t run_seed) {
  Rng base(run_seed);
  episode_rng_ = base.fork(11);
  jitter_rng_ = base.fork(12);
  Rng cap_rng = base.fork(13);
  run_capped_ = cap_rng.bernoulli(cfg_.run_cap_prob);
  // The activity multiplier and load fraction are per-run state: carrying
  // a previous run's values into the arrival draws or the cap gate would
  // make a run's behaviour depend on what ran before it, breaking the
  // invariant that run state derives solely from run_seed (callers
  // re-declare both via set_activity_domains / set_load_fraction right
  // after begin_run).
  activity_mult_ = 1.0;
  load_fraction_ = 1.0;
  rate_ = cfg_.episode_rate * activity_mult_;
  for (auto& idx : index_) idx.clear();
  for (auto& t : next_arrival_) {
    t = rate_ > 0.0 ? episode_rng_.exponential(rate_) : 1e300;
  }
  horizon_ = 0.0;
}

void FreqModel::set_activity_domains(std::size_t n_domains) {
  activity_mult_ = n_domains > 1 ? cfg_.cross_numa_rate_mult : 1.0;
  const double new_rate = cfg_.episode_rate * activity_mult_;
  if (new_rate != rate_) {
    rate_ = new_rate;
    // Re-draw pending arrivals under the new rate (episodes already
    // generated are kept; only the future changes).
    for (auto& t : next_arrival_) {
      t = rate_ > 0.0 ? horizon_ + episode_rng_.exponential(rate_) : 1e300;
    }
  }
}

void FreqModel::index_new_episodes() {
  for (auto& idx : index_) {
    if (idx.max_end.empty()) {
      idx.max_end.push_back(-std::numeric_limits<double>::infinity());
    }
    for (std::size_t k = idx.red_uncapped.size(); k < idx.starts.size(); ++k) {
      const double end = idx.ends[k];
      const double depth = idx.depths[k];
      idx.max_end.push_back(std::max(idx.max_end.back(), end));
      const double len = end - idx.starts[k];
      idx.red_uncapped.append((1.0 - std::min(1.0, depth)) * len);
      idx.red_capped.append(
          (cfg_.run_cap_depth - std::min(cfg_.run_cap_depth, depth)) * len);
    }
  }
}

void FreqModel::ensure_horizon(double t) {
  if (t <= horizon_ || rate_ <= 0.0) {
    horizon_ = std::max(horizon_, t);
    return;
  }
  const double target = std::max(t * 1.25, horizon_ + 1.0);
  const double mu_log = std::log(cfg_.episode_mean) -
                        0.5 * cfg_.episode_sigma_log * cfg_.episode_sigma_log;
  for (std::size_t d = 0; d < index_.size(); ++d) {
    auto& idx = index_[d];
    while (next_arrival_[d] < target) {
      const double start = next_arrival_[d];
      const double end =
          start + episode_rng_.lognormal(mu_log, cfg_.episode_sigma_log);
      const double depth = episode_rng_.uniform(cfg_.depth_lo, cfg_.depth_hi);
      idx.starts.push_back(start);
      idx.ends.push_back(end);
      idx.depths.push_back(depth);
      next_arrival_[d] += episode_rng_.exponential(rate_);
    }
  }
  index_new_episodes();
  horizon_ = target;
}

double FreqModel::factor(std::size_t core, double t) {
  if (t > horizon_) ensure_horizon(t);
  double f = run_capped() ? cfg_.run_cap_depth : 1.0;
  const std::size_t numa = core_numa(core);
  const auto& idx = index_[numa];
  // Episodes active at t have start <= t (a start-sorted prefix) and
  // end > t; walk the prefix backwards, stopping once the running max end
  // proves no earlier episode can still be active. min() is exact, so this
  // matches the historical full scan bit for bit.
  const std::size_t j = static_cast<std::size_t>(
      std::upper_bound(idx.starts.begin(), idx.starts.end(), t) -
      idx.starts.begin());
  for (std::size_t k = j; k-- > 0;) {
    if (idx.max_end[k + 1] <= t) break;
    if (t < idx.ends[k]) f = std::min(f, idx.depths[k]);
  }
  return f;
}

double FreqModel::sample_ghz(std::size_t core, double t) {
  double f = factor(core, t);
  if (cfg_.jitter > 0.0) {
    f *= 1.0 + jitter_rng_.normal(0.0, cfg_.jitter);
  }
  // Per-class boost clock: on heterogeneous machines an E-core dips from
  // its own fmax, not the P-cores'. Ghost cores (>= n_cores) fall back to
  // the machine-wide max, mirroring the core_numa() guard above.
  const double fmax = core < machine_.n_cores() ? machine_.core_max_ghz(core)
                                                : machine_.max_ghz();
  return std::max(0.1, f) * fmax;
}

double FreqModel::window_reduction(std::size_t numa, double t0, double t1,
                                   double base) const {
  const auto& idx = index_[numa];
  const auto j0 = static_cast<std::size_t>(
      std::lower_bound(idx.starts.begin(), idx.starts.end(), t0) -
      idx.starts.begin());
  const auto j1 = static_cast<std::size_t>(
      std::lower_bound(idx.starts.begin(), idx.starts.end(), t1) -
      idx.starts.begin());
  // base is either 1.0 or run_cap_depth — pick the matching weight index.
  const stats::PrefixSum& red =
      base == 1.0 ? idx.red_uncapped : idx.red_capped;
  const auto weight = [&](std::size_t k) {
    return base - std::min(base, idx.depths[k]);
  };

  // Episodes starting inside [t0, t1), credited at full length by the
  // prefix sums; boundary overlaps are corrected explicitly below.
  double r = red.range(j0, j1);

  // Right boundary: episodes active at t1 (start < t1, end > t1). Those
  // starting inside the window were credited past t1 — trim the excess;
  // those starting before t0 cover the whole window. The back-scan stops
  // as soon as the running max end proves no earlier episode reaches t1.
  for (std::size_t k = j1; k-- > 0;) {
    if (idx.max_end[k + 1] <= t1) break;
    if (idx.ends[k] <= t1) continue;
    if (idx.starts[k] >= t0) {
      r -= weight(k) * (idx.ends[k] - t1);
    } else {
      r += weight(k) * (t1 - t0);
    }
  }

  // Left boundary: episodes straddling t0 (start < t0 < end <= t1) — the
  // window-covering case (end > t1) was already handled above.
  for (std::size_t k = j0; k-- > 0;) {
    if (idx.max_end[k + 1] <= t0) break;
    if (idx.ends[k] > t0 && idx.ends[k] <= t1) {
      r += weight(k) * (idx.ends[k] - t0);
    }
  }
  return r;
}

double FreqModel::mean_factor_impl(std::size_t core, double t0, double t1,
                                   bool* flat_out,
                                   const batch::Kernels* kern) {
  if (flat_out != nullptr) *flat_out = false;
  if (t1 <= t0) return factor(core, t0);
  if (t1 > horizon_) ensure_horizon(t1);
  const double base = run_capped() ? cfg_.run_cap_depth : 1.0;
  const std::size_t numa = core_numa(core);
  const auto& idx = index_[numa];
  const std::size_t n_eps = idx.starts.size();
  // Integrate: base everywhere, lowered inside episodes. Episodes may
  // overlap; accumulate reduction per episode and clamp (episodes rarely
  // overlap at the configured rates) — the historical semantics, now
  // answered by the index for large domains.
  double integral = base * (t1 - t0);
  // O(1) no-overlap fast path: the window sits entirely outside every
  // episode (empty domain, window before the first start, or past the
  // global max end). Exact — the scans below would find nothing, and the
  // division is kept so the returned value is bit-identical to theirs.
  if (n_eps == 0 || t1 <= idx.starts.front() || idx.max_end.back() <= t0) {
    if (flat_out != nullptr) *flat_out = true;
    return std::max(0.1, integral / (t1 - t0));
  }
  bool overlapped = false;
  if (n_eps <= kScanCutover) {
    // Domains holding fewer episodes than one vector (batch::kVecMin) stay
    // on the inline scan — the wide kernels' call/setup overhead beats
    // their lane parallelism there (perf_hotpath, low density).
    if (kern != nullptr && n_eps >= batch::kVecMin) {
      integral = kern->scan_episodes(integral, idx.starts.data(),
                                     idx.ends.data(), idx.depths.data(),
                                     n_eps, t0, t1, base, &overlapped);
    } else {
      // Historical accumulation order — bit-identical to the pre-index
      // scan.
      for (std::size_t k = 0; k < n_eps; ++k) {
        const double lo = std::max(t0, idx.starts[k]);
        const double hi = std::min(t1, idx.ends[k]);
        if (hi > lo) {
          overlapped = true;
          const double depth = std::min(base, idx.depths[k]);
          integral -= (base - depth) * (hi - lo);
        }
      }
    }
  } else {
    const double r = window_reduction(numa, t0, t1, base);
    overlapped = r != 0.0;
    integral -= r;
  }
  if (flat_out != nullptr) *flat_out = !overlapped;
  return std::max(0.1, integral / (t1 - t0));
}

double FreqModel::mean_factor(std::size_t core, double t0, double t1) {
  return mean_factor_impl(core, t0, t1, nullptr, nullptr);
}

void FreqModel::mean_factor_batch(std::span<const std::size_t> core,
                                  std::span<const double> t0,
                                  std::span<const double> t1,
                                  std::span<double> out) {
  const std::size_t n = out.size();
  if (core.size() != n || t0.size() != n || t1.size() != n) {
    throw std::invalid_argument(
        "FreqModel::mean_factor_batch: span sizes differ");
  }
  const batch::Kernels& kern = batch::kernels();
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = mean_factor_impl(core[k], t0[k], t1[k], nullptr, &kern);
  }
}

double FreqModel::elapsed_impl(std::size_t core, double t0, double work,
                               const batch::Kernels* kern) {
  if (work <= 0.0) return 0.0;
  double d = work;  // initial guess: full speed
  // Episode-boundary-aware early exit: once a window is verified
  // episode-free, any shorter window is flat too and the fixed-point step
  // costs pure arithmetic — no episode search, no horizon call (the wider
  // window already extended it).
  double flat_hi = t0;
  for (int iter = 0; iter < 4; ++iter) {
    const double t1 = t0 + d;
    double m;
    if (t1 > t0 && t1 <= flat_hi) {
      const double base = run_capped() ? cfg_.run_cap_depth : 1.0;
      const double integral = base * (t1 - t0);
      m = std::max(0.1, integral / (t1 - t0));
    } else {
      bool flat = false;
      m = mean_factor_impl(core, t0, t1, &flat, kern);
      if (flat && t1 > flat_hi) flat_hi = t1;
    }
    const double nd = work / m;
    if (std::abs(nd - d) < 1e-12) return nd;
    d = nd;
  }
  return d;
}

double FreqModel::elapsed_for_work(std::size_t core, double t0, double work) {
  return elapsed_impl(core, t0, work, nullptr);
}

void FreqModel::elapsed_for_work_batch(std::span<const std::size_t> core,
                                       std::span<const double> t0,
                                       std::span<const double> work,
                                       std::span<double> out) {
  const std::size_t n = out.size();
  if (core.size() != n || t0.size() != n || work.size() != n) {
    throw std::invalid_argument(
        "FreqModel::elapsed_for_work_batch: span sizes differ");
  }
  const batch::Kernels& kern = batch::kernels();
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = elapsed_impl(core[k], t0[k], work[k], &kern);
  }
}

void FreqModel::fork_streams(std::uint64_t salt) {
  episode_rng_ = episode_rng_.fork(salt);
  jitter_rng_ = jitter_rng_.fork(salt);
}

void FreqModel::after_restore(snap::Restore& v) {
  auto& r = v.reader();
  if (index_.size() != machine_.n_numa() ||
      next_arrival_.size() != machine_.n_numa()) {
    r.fail_here(r.offset(),
                "freq episode domains do not match machine geometry");
  }
  for (auto& idx : index_) {
    if (idx.starts.size() != idx.ends.size() ||
        idx.starts.size() != idx.depths.size()) {
      r.fail_here(r.offset(), "freq episode columns differ in length");
    }
    // Rebuild the derived index: replaying the append loop over the full
    // columns reproduces max_end and both compensated reduction sums bit
    // for bit.
    idx.max_end.clear();
    idx.red_uncapped.clear();
    idx.red_capped.clear();
  }
  index_new_episodes();
}

}  // namespace omv::sim
