#include "sim/noise.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/snapshot.hpp"
#include "sim/batch_kernels.hpp"

namespace omv::sim {

NoiseConfig NoiseConfig::dardel() {
  NoiseConfig c;
  // Cray OS image: moderately quiet, but 128 cores × per-CPU sources add up.
  c.daemon_rate = 30.0;
  c.kworker_rate_per_cpu = 0.06;
  // Light IRQ tail: the paper's Table 2 shows the 4-thread column (whose
  // threads sit on the IRQ landing CPUs) within ~0.1%.
  c.irq_rate = 0.05;
  c.irq_xm = 0.5e-3;
  c.irq_alpha = 2.2;
  c.degrade_prob = 0.08;
  return c;
}

NoiseConfig NoiseConfig::vera() {
  NoiseConfig c;
  // Rocky Linux with standard services; fewer CPUs to absorb them.
  c.daemon_rate = 20.0;
  c.kworker_rate_per_cpu = 0.10;
  c.irq_rate = 0.06;
  c.degrade_prob = 0.06;
  return c;
}

NoiseConfig NoiseConfig::quiet() {
  NoiseConfig c;
  c.tick_duration = 0.0;
  c.daemon_rate = 0.0;
  c.kworker_rate_per_cpu = 0.0;
  c.irq_rate = 0.0;
  c.degrade_prob = 0.0;
  return c;
}

NoiseModel::NoiseModel(const topo::Machine& machine, NoiseConfig cfg)
    : machine_(machine), cfg_(cfg) {
  times_.resize(machine.n_threads());
  durs_.resize(machine.n_threads());
  cum_.resize(machine.n_threads());
  indexed_len_.resize(machine.n_threads(), 0);
  absorb_factor_.resize(machine.n_threads(), 1.0);
  core_threads_.resize(machine.n_cores());
  for (std::size_t core = 0; core < machine.n_cores(); ++core) {
    for (std::size_t h : machine.core_threads(core)) {
      core_threads_[core].push_back(h);
    }
  }
  kworker_next_.resize(machine.n_threads(), 0.0);
  busy_.resize(machine.n_threads(), false);
  tick_phase_.resize(machine.n_threads(), 0.0);
  begin_run(0, {});
}

void NoiseModel::begin_run(std::uint64_t run_seed, const topo::CpuSet& busy) {
  Rng base(run_seed);
  daemon_rng_ = base.fork(1);
  kworker_rng_ = base.fork(2);
  irq_rng_ = base.fork(3);
  placement_rng_ = base.fork(4);
  Rng tick_rng = base.fork(5);
  Rng degrade_rng = base.fork(6);

  for (auto& v : times_) v.clear();
  for (auto& v : durs_) v.clear();
  for (auto& c : cum_) c.clear();
  std::fill(indexed_len_.begin(), indexed_len_.end(), 0);
  degraded_ = degrade_rng.bernoulli(cfg_.degrade_prob);

  const double daemon_rate =
      cfg_.daemon_rate * (degraded_ ? cfg_.degrade_rate_mult : 1.0);
  daemon_next_ = daemon_rate > 0.0 ? daemon_rng_.exponential(daemon_rate)
                                   : 1e300;
  irq_next_ = cfg_.irq_rate > 0.0 ? irq_rng_.exponential(cfg_.irq_rate) : 1e300;
  for (std::size_t h = 0; h < machine_.n_threads(); ++h) {
    kworker_next_[h] =
        cfg_.kworker_rate_per_cpu > 0.0
            ? kworker_rng_.exponential(cfg_.kworker_rate_per_cpu)
            : 1e300;
    tick_phase_[h] = tick_rng.uniform(0.0, cfg_.tick_period);
  }
  horizon_ = 0.0;
  set_busy(busy);
}

void NoiseModel::set_busy(const topo::CpuSet& busy) {
  std::fill(busy_.begin(), busy_.end(), false);
  for (std::size_t h : busy) {
    if (h < busy_.size()) busy_[h] = true;
  }
  refresh_absorb_factors();
}

void NoiseModel::refresh_absorb_factors() {
  for (std::size_t h = 0; h < absorb_factor_.size(); ++h) {
    double factor = 1.0;
    if (const auto sib = machine_.sibling(h);
        sib && *sib < busy_.size() && !busy_[*sib]) {
      factor = cfg_.smt_absorb_factor;
    }
    absorb_factor_[h] = factor;
  }
}

void NoiseModel::place_daemon(double t, double dur) {
  // Find a fully idle core; failing that, an idle sibling; failing that,
  // preempt a busy HW thread chosen uniformly.
  scratch_busy_.clear();
  for (std::size_t h = 0; h < busy_.size(); ++h) {
    if (busy_[h]) scratch_busy_.push_back(h);
  }
  if (scratch_busy_.empty()) return;  // nothing to disturb

  // Wake-affinity miss: land on the cache-hot previous CPU regardless of
  // idle capacity. More likely the fuller the node is.
  const double busy_fraction = static_cast<double>(scratch_busy_.size()) /
                               static_cast<double>(busy_.size());
  if (placement_rng_.bernoulli(cfg_.daemon_miss_factor * busy_fraction)) {
    const std::size_t victim =
        scratch_busy_[placement_rng_.next_below(scratch_busy_.size())];
    append_event(victim, t, dur);
    return;
  }

  // Idle core: a core none of whose HW threads are busy.
  for (const auto& threads : core_threads_) {
    bool any_busy = false;
    for (std::size_t h : threads) {
      if (busy_[h]) {
        any_busy = true;
        break;
      }
    }
    if (!any_busy) return;  // absorbed with zero impact
  }

  // Idle SMT sibling of a busy HW thread.
  scratch_siblings_.clear();
  for (std::size_t h = 0; h < busy_.size(); ++h) {
    if (busy_[h]) continue;
    const auto sib = machine_.sibling(h);
    if (sib && busy_[*sib]) scratch_siblings_.push_back(*sib);
  }
  if (!scratch_siblings_.empty()) {
    const std::size_t victim = scratch_siblings_[placement_rng_.next_below(
        scratch_siblings_.size())];
    append_event(victim, t, dur * cfg_.smt_absorb_factor);
    return;
  }

  // Full preemption of a random busy thread.
  const std::size_t victim =
      scratch_busy_[placement_rng_.next_below(scratch_busy_.size())];
  append_event(victim, t, dur);
}

void NoiseModel::index_new_events() {
  for (std::size_t h = 0; h < times_.size(); ++h) {
    auto& tv = times_[h];
    auto& dv = durs_[h];
    const std::size_t sorted = indexed_len_[h];
    if (tv.size() == sorted) continue;
    // Every event of this extension carries a time >= the previous horizon
    // (each source's next-arrival clock had crossed it), so sorting the
    // fresh tail alone restores global order — untouched CPUs and the
    // already-sorted head are never re-sorted. The joint (time, duration)
    // sort applies the exact permutation the retired AoS event sort did:
    // same comparator outcomes, same algorithm, same element order.
    sort_scratch_.clear();
    sort_scratch_.reserve(tv.size() - sorted);
    for (std::size_t k = sorted; k < tv.size(); ++k) {
      sort_scratch_.emplace_back(tv[k], dv[k]);
    }
    std::sort(sort_scratch_.begin(), sort_scratch_.end(),
              [](const std::pair<double, double>& a,
                 const std::pair<double, double>& b) {
                return a.first < b.first;
              });
    assert(sorted == 0 || sort_scratch_.front().first >= tv[sorted - 1]);
    auto& cum = cum_[h];
    cum.reserve(tv.size());
    for (std::size_t k = 0; k < sort_scratch_.size(); ++k) {
      tv[sorted + k] = sort_scratch_[k].first;
      dv[sorted + k] = sort_scratch_[k].second;
      cum.append(sort_scratch_[k].second);
    }
    indexed_len_[h] = tv.size();
  }
}

void NoiseModel::ensure_horizon(double t) {
  if (t <= horizon_) return;
  const double target = std::max(t * 1.25, horizon_ + 0.25);

  // Daemons.
  const double daemon_rate =
      cfg_.daemon_rate * (degraded_ ? cfg_.degrade_rate_mult : 1.0);
  while (daemon_next_ < target) {
    const double mu_log = std::log(cfg_.daemon_mean) -
                          0.5 * cfg_.daemon_sigma_log * cfg_.daemon_sigma_log;
    const double dur = daemon_rng_.lognormal(mu_log, cfg_.daemon_sigma_log);
    place_daemon(daemon_next_, dur);
    daemon_next_ += daemon_rng_.exponential(daemon_rate);
  }

  // IRQ storms: pinned to the first irq_cpus CPUs, full impact if busy.
  while (irq_next_ < target) {
    const double dur = irq_rng_.pareto(cfg_.irq_xm, cfg_.irq_alpha);
    const std::size_t cpu = irq_rng_.next_below(
        std::min<std::size_t>(cfg_.irq_cpus, machine_.n_threads()));
    append_event(cpu, irq_next_, dur);
    irq_next_ += irq_rng_.exponential(cfg_.irq_rate);
  }

  // Per-CPU kworkers.
  if (cfg_.kworker_rate_per_cpu > 0.0) {
    const double mu_log =
        std::log(cfg_.kworker_mean) -
        0.5 * cfg_.kworker_sigma_log * cfg_.kworker_sigma_log;
    for (std::size_t h = 0; h < machine_.n_threads(); ++h) {
      while (kworker_next_[h] < target) {
        const double dur =
            kworker_rng_.lognormal(mu_log, cfg_.kworker_sigma_log);
        append_event(h, kworker_next_[h], dur);
        kworker_next_[h] += kworker_rng_.exponential(cfg_.kworker_rate_per_cpu);
      }
    }
  }

  index_new_events();
  horizon_ = target;
}

double NoiseModel::event_delay(std::size_t h, double t0, double t1,
                               double acc, const batch::Kernels* kern) {
  // ST absorption: with an idle SMT sibling, the kernel runs interrupting
  // work on the sibling HW thread and the benchmark thread only loses a
  // share of core resources instead of being fully preempted. The factor
  // is cached per busy-set change (refresh_absorb_factors), not looked up
  // per query.
  const double factor = absorb_factor_[h];
  const auto& tv = times_[h];
  const double* times = tv.data();
  const std::size_t n = tv.size();
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(tv.begin(), tv.end(), t0) - tv.begin());
  // Density-adaptive dispatch, fused: narrow windows (the common case at
  // the densities the harnesses run) are summed by the historical
  // sequential scan — accumulating while counting, in the pre-index
  // floating-point order, with no second binary search. Only once the walk
  // proves the window holds more than kScanCutover events is the window
  // end located by binary search and the O(1) prefix-sum range used.
  const std::size_t cap = std::min(n, i + kScanCutover);
  if (kern != nullptr) {
    std::size_t k = i;
    while (k < cap && times[k] < t1) ++k;
    if (k < n && k == i + kScanCutover && times[k] < t1) {
      const std::size_t j = static_cast<std::size_t>(
          std::lower_bound(tv.begin() + static_cast<std::ptrdiff_t>(k),
                           tv.end(), t1) -
          tv.begin());
      return acc + cum_[h].range(i, j) * factor;
    }
    // Windows too narrow to fill a vector fall through to the fused
    // scalar scan below (batch::kVecMin); the scalar table entry computes
    // the identical left-to-right sum, so this is a pure perf gate.
    if (k - i >= batch::kVecMin) {
      return kern->scan_events(acc, durs_[h].data(), i, k, factor);
    }
  }
  const double* durs = durs_[h].data();
  double delay = acc;
  std::size_t k = i;
  while (k < cap && times[k] < t1) {
    delay += durs[k] * factor;
    ++k;
  }
  if (k < n && k == i + kScanCutover && times[k] < t1) {
    const std::size_t j = static_cast<std::size_t>(
        std::lower_bound(tv.begin() + static_cast<std::ptrdiff_t>(k),
                         tv.end(), t1) -
        tv.begin());
    return acc + cum_[h].range(i, j) * factor;
  }
  return delay;
}

double NoiseModel::preemption_delay(std::size_t h, double t0, double t1) {
  if (t1 <= t0 || h >= times_.size()) return 0.0;
  if (t1 > horizon_) ensure_horizon(t1);

  // Analytic timer ticks.
  double delay = 0.0;
  if (cfg_.tick_duration > 0.0 && cfg_.tick_period > 0.0) {
    delay = batch::tick_delay_one(t0, t1, tick_phase_[h], cfg_.tick_period,
                                  cfg_.tick_duration);
  }
  return event_delay(h, t0, t1, delay, nullptr);
}

void NoiseModel::preemption_delay_batch(std::span<const std::size_t> h,
                                        std::span<const double> t0,
                                        std::span<const double> t1,
                                        std::span<double> out) {
  const std::size_t n = out.size();
  if (h.size() != n || t0.size() != n || t1.size() != n) {
    throw std::invalid_argument(
        "NoiseModel::preemption_delay_batch: span sizes differ");
  }
  if (n == 0) return;
  const batch::Kernels& kern = batch::kernels();

  // Pass 1: analytic tick terms for every window in one ISA-dispatched
  // kernel call (pure arithmetic — no materialization, no per-window
  // state).
  if (cfg_.tick_duration > 0.0 && cfg_.tick_period > 0.0) {
    batch_phase_.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      batch_phase_[k] = h[k] < tick_phase_.size() ? tick_phase_[h[k]] : 0.0;
    }
    kern.tick_terms(t0.data(), t1.data(), batch_phase_.data(),
                    cfg_.tick_period, cfg_.tick_duration, out.data(), n);
  } else {
    std::fill(out.begin(), out.end(), 0.0);
  }

  // Pass 2: event sums, window by window in call order — horizon growth
  // stays lazy and ordered exactly as a per-call loop would leave it, so
  // the scalar ISA reproduces per-call preemption_delay results (and event
  // content) bit for bit.
  for (std::size_t k = 0; k < n; ++k) {
    if (t1[k] <= t0[k] || h[k] >= times_.size()) {
      out[k] = 0.0;
      continue;
    }
    if (t1[k] > horizon_) ensure_horizon(t1[k]);
    out[k] = event_delay(h[k], t0[k], t1[k], out[k], &kern);
  }
}

void NoiseModel::fork_streams(std::uint64_t salt) {
  daemon_rng_ = daemon_rng_.fork(salt);
  kworker_rng_ = kworker_rng_.fork(salt);
  irq_rng_ = irq_rng_.fork(salt);
  placement_rng_ = placement_rng_.fork(salt);
}

void NoiseModel::after_restore(snap::Restore& v) {
  auto& r = v.reader();
  if (times_.size() != machine_.n_threads() ||
      durs_.size() != machine_.n_threads()) {
    r.fail_here(r.offset(),
                "noise event streams do not match machine geometry");
  }
  for (std::size_t h = 0; h < times_.size(); ++h) {
    if (times_[h].size() != durs_[h].size()) {
      r.fail_here(r.offset(), "noise time/duration columns differ in length");
    }
  }
  if (kworker_next_.size() != machine_.n_threads() ||
      busy_.size() != machine_.n_threads() ||
      tick_phase_.size() != machine_.n_threads()) {
    r.fail_here(r.offset(),
                "noise per-thread state does not match machine geometry");
  }
  // Rebuild the derived index: replaying the prefix-sum appends in column
  // order reproduces the compensated accumulator state bit for bit.
  for (std::size_t h = 0; h < times_.size(); ++h) {
    cum_[h].clear();
    cum_[h].reserve(durs_[h].size());
    for (double d : durs_[h]) cum_[h].append(d);
    indexed_len_[h] = times_[h].size();
  }
  refresh_absorb_factors();
}

}  // namespace omv::sim
