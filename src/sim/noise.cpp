#include "sim/noise.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace omv::sim {
namespace {

/// Windows holding at most this many events are summed by the historical
/// sequential scan, which reproduces the pre-index floating-point
/// accumulation bit for bit; wider windows use the O(1) prefix-sum range.
constexpr std::size_t kScanWindow = 48;

}  // namespace

NoiseConfig NoiseConfig::dardel() {
  NoiseConfig c;
  // Cray OS image: moderately quiet, but 128 cores × per-CPU sources add up.
  c.daemon_rate = 30.0;
  c.kworker_rate_per_cpu = 0.06;
  // Light IRQ tail: the paper's Table 2 shows the 4-thread column (whose
  // threads sit on the IRQ landing CPUs) within ~0.1%.
  c.irq_rate = 0.05;
  c.irq_xm = 0.5e-3;
  c.irq_alpha = 2.2;
  c.degrade_prob = 0.08;
  return c;
}

NoiseConfig NoiseConfig::vera() {
  NoiseConfig c;
  // Rocky Linux with standard services; fewer CPUs to absorb them.
  c.daemon_rate = 20.0;
  c.kworker_rate_per_cpu = 0.10;
  c.irq_rate = 0.06;
  c.degrade_prob = 0.06;
  return c;
}

NoiseConfig NoiseConfig::quiet() {
  NoiseConfig c;
  c.tick_duration = 0.0;
  c.daemon_rate = 0.0;
  c.kworker_rate_per_cpu = 0.0;
  c.irq_rate = 0.0;
  c.degrade_prob = 0.0;
  return c;
}

NoiseModel::NoiseModel(const topo::Machine& machine, NoiseConfig cfg)
    : machine_(machine), cfg_(cfg) {
  per_cpu_events_.resize(machine.n_threads());
  cum_.resize(machine.n_threads());
  indexed_len_.resize(machine.n_threads(), 0);
  core_threads_.resize(machine.n_cores());
  for (std::size_t core = 0; core < machine.n_cores(); ++core) {
    for (std::size_t h : machine.core_threads(core)) {
      core_threads_[core].push_back(h);
    }
  }
  kworker_next_.resize(machine.n_threads(), 0.0);
  busy_.resize(machine.n_threads(), false);
  tick_phase_.resize(machine.n_threads(), 0.0);
  begin_run(0, {});
}

void NoiseModel::begin_run(std::uint64_t run_seed, const topo::CpuSet& busy) {
  Rng base(run_seed);
  daemon_rng_ = base.fork(1);
  kworker_rng_ = base.fork(2);
  irq_rng_ = base.fork(3);
  placement_rng_ = base.fork(4);
  Rng tick_rng = base.fork(5);
  Rng degrade_rng = base.fork(6);

  for (auto& v : per_cpu_events_) v.clear();
  for (auto& c : cum_) c.clear();
  std::fill(indexed_len_.begin(), indexed_len_.end(), 0);
  degraded_ = degrade_rng.bernoulli(cfg_.degrade_prob);

  const double daemon_rate =
      cfg_.daemon_rate * (degraded_ ? cfg_.degrade_rate_mult : 1.0);
  daemon_next_ = daemon_rate > 0.0 ? daemon_rng_.exponential(daemon_rate)
                                   : 1e300;
  irq_next_ = cfg_.irq_rate > 0.0 ? irq_rng_.exponential(cfg_.irq_rate) : 1e300;
  for (std::size_t h = 0; h < machine_.n_threads(); ++h) {
    kworker_next_[h] =
        cfg_.kworker_rate_per_cpu > 0.0
            ? kworker_rng_.exponential(cfg_.kworker_rate_per_cpu)
            : 1e300;
    tick_phase_[h] = tick_rng.uniform(0.0, cfg_.tick_period);
  }
  horizon_ = 0.0;
  set_busy(busy);
}

void NoiseModel::set_busy(const topo::CpuSet& busy) {
  std::fill(busy_.begin(), busy_.end(), false);
  for (std::size_t h : busy) {
    if (h < busy_.size()) busy_[h] = true;
  }
}

void NoiseModel::place_daemon(double t, double dur) {
  // Find a fully idle core; failing that, an idle sibling; failing that,
  // preempt a busy HW thread chosen uniformly.
  scratch_busy_.clear();
  for (std::size_t h = 0; h < busy_.size(); ++h) {
    if (busy_[h]) scratch_busy_.push_back(h);
  }
  if (scratch_busy_.empty()) return;  // nothing to disturb

  // Wake-affinity miss: land on the cache-hot previous CPU regardless of
  // idle capacity. More likely the fuller the node is.
  const double busy_fraction = static_cast<double>(scratch_busy_.size()) /
                               static_cast<double>(busy_.size());
  if (placement_rng_.bernoulli(cfg_.daemon_miss_factor * busy_fraction)) {
    const std::size_t victim =
        scratch_busy_[placement_rng_.next_below(scratch_busy_.size())];
    per_cpu_events_[victim].push_back({t, dur, victim});
    return;
  }

  // Idle core: a core none of whose HW threads are busy.
  for (const auto& threads : core_threads_) {
    bool any_busy = false;
    for (std::size_t h : threads) {
      if (busy_[h]) {
        any_busy = true;
        break;
      }
    }
    if (!any_busy) return;  // absorbed with zero impact
  }

  // Idle SMT sibling of a busy HW thread.
  scratch_siblings_.clear();
  for (std::size_t h = 0; h < busy_.size(); ++h) {
    if (busy_[h]) continue;
    const auto sib = machine_.sibling(h);
    if (sib && busy_[*sib]) scratch_siblings_.push_back(*sib);
  }
  if (!scratch_siblings_.empty()) {
    const std::size_t victim = scratch_siblings_[placement_rng_.next_below(
        scratch_siblings_.size())];
    per_cpu_events_[victim].push_back(
        {t, dur * cfg_.smt_absorb_factor, victim});
    return;
  }

  // Full preemption of a random busy thread.
  const std::size_t victim =
      scratch_busy_[placement_rng_.next_below(scratch_busy_.size())];
  per_cpu_events_[victim].push_back({t, dur, victim});
}

void NoiseModel::index_new_events() {
  for (std::size_t h = 0; h < per_cpu_events_.size(); ++h) {
    auto& v = per_cpu_events_[h];
    const std::size_t sorted = indexed_len_[h];
    if (v.size() == sorted) continue;
    // Every event of this extension carries a time >= the previous horizon
    // (each source's next-arrival clock had crossed it), so sorting the
    // fresh tail alone restores global order — untouched CPUs and the
    // already-sorted head are never re-sorted.
    std::sort(v.begin() + static_cast<std::ptrdiff_t>(sorted), v.end(),
              [](const NoiseEvent& a, const NoiseEvent& b) {
                return a.time < b.time;
              });
    assert(sorted == 0 || v[sorted].time >= v[sorted - 1].time);
    auto& cum = cum_[h];
    cum.reserve(v.size());
    for (std::size_t k = sorted; k < v.size(); ++k) {
      cum.append(v[k].duration);
    }
    indexed_len_[h] = v.size();
  }
}

void NoiseModel::ensure_horizon(double t) {
  if (t <= horizon_) return;
  const double target = std::max(t * 1.25, horizon_ + 0.25);

  // Daemons.
  const double daemon_rate =
      cfg_.daemon_rate * (degraded_ ? cfg_.degrade_rate_mult : 1.0);
  while (daemon_next_ < target) {
    const double mu_log = std::log(cfg_.daemon_mean) -
                          0.5 * cfg_.daemon_sigma_log * cfg_.daemon_sigma_log;
    const double dur = daemon_rng_.lognormal(mu_log, cfg_.daemon_sigma_log);
    place_daemon(daemon_next_, dur);
    daemon_next_ += daemon_rng_.exponential(daemon_rate);
  }

  // IRQ storms: pinned to the first irq_cpus CPUs, full impact if busy.
  while (irq_next_ < target) {
    const double dur = irq_rng_.pareto(cfg_.irq_xm, cfg_.irq_alpha);
    const std::size_t cpu = irq_rng_.next_below(
        std::min<std::size_t>(cfg_.irq_cpus, machine_.n_threads()));
    per_cpu_events_[cpu].push_back({irq_next_, dur, cpu});
    irq_next_ += irq_rng_.exponential(cfg_.irq_rate);
  }

  // Per-CPU kworkers.
  if (cfg_.kworker_rate_per_cpu > 0.0) {
    const double mu_log =
        std::log(cfg_.kworker_mean) -
        0.5 * cfg_.kworker_sigma_log * cfg_.kworker_sigma_log;
    for (std::size_t h = 0; h < machine_.n_threads(); ++h) {
      while (kworker_next_[h] < target) {
        const double dur =
            kworker_rng_.lognormal(mu_log, cfg_.kworker_sigma_log);
        per_cpu_events_[h].push_back({kworker_next_[h], dur, h});
        kworker_next_[h] += kworker_rng_.exponential(cfg_.kworker_rate_per_cpu);
      }
    }
  }

  index_new_events();
  horizon_ = target;
}

double NoiseModel::preemption_delay(std::size_t h, double t0, double t1) {
  if (t1 <= t0 || h >= per_cpu_events_.size()) return 0.0;
  ensure_horizon(t1);

  double delay = 0.0;
  // Analytic timer ticks.
  if (cfg_.tick_duration > 0.0 && cfg_.tick_period > 0.0) {
    const double phase = tick_phase_[h];
    const double first =
        std::ceil((t0 - phase) / cfg_.tick_period) * cfg_.tick_period + phase;
    if (first < t1) {
      const double n = std::floor((t1 - first) / cfg_.tick_period) + 1.0;
      delay += n * cfg_.tick_duration;
    }
  }

  // ST absorption: with an idle SMT sibling, the kernel runs interrupting
  // work on the sibling HW thread and the benchmark thread only loses a
  // share of core resources instead of being fully preempted.
  double factor = 1.0;
  if (const auto sib = machine_.sibling(h);
      sib && *sib < busy_.size() && !busy_[*sib]) {
    factor = cfg_.smt_absorb_factor;
  }

  const auto& v = per_cpu_events_[h];
  const auto by_time = [](const NoiseEvent& e, double t) {
    return e.time < t;
  };
  const auto lo = std::lower_bound(v.begin(), v.end(), t0, by_time);
  // Peek ahead: narrow windows (the common case) are summed by the
  // historical sequential scan, which reproduces the pre-index
  // floating-point accumulation bit for bit and needs no second binary
  // search. Only once the walk exceeds kScanWindow events is the window
  // end located by binary search and the prefix-sum range used.
  auto probe = lo;
  std::size_t in_window = 0;
  while (probe != v.end() && probe->time < t1 && in_window <= kScanWindow) {
    ++probe;
    ++in_window;
  }
  if (in_window <= kScanWindow) {
    for (auto it = lo; it != probe; ++it) {
      delay += it->duration * factor;
    }
  } else {
    const auto hi = std::lower_bound(probe, v.end(), t1, by_time);
    const auto i = static_cast<std::size_t>(lo - v.begin());
    const auto j = static_cast<std::size_t>(hi - v.begin());
    delay += cum_[h].range(i, j) * factor;
  }
  return delay;
}

}  // namespace omv::sim
