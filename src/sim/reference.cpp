#include "sim/reference.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace omv::sim::reference {

namespace {

/// The reference queries are pure: they never extend the model horizon, so
/// a window past it would silently read an event-free future and return a
/// plausible-but-wrong answer (the PR 3 footgun). Misuse now fails loudly.
void require_materialized(const char* what, double t, double horizon) {
  if (t > horizon) {
    throw std::logic_error(
        std::string("sim::reference::") + what + ": query time " +
        std::to_string(t) + " is beyond the materialized horizon " +
        std::to_string(horizon) + "; call materialize_to() first");
  }
}

}  // namespace

double preemption_delay(const NoiseModel& m, const topo::Machine& machine,
                        std::size_t h, double t0, double t1) {
  const NoiseConfig& cfg = m.config();
  if (t1 <= t0 || h >= m.n_event_streams()) return 0.0;
  require_materialized("preemption_delay", t1, m.materialized_horizon());

  double delay = 0.0;
  if (cfg.tick_duration > 0.0 && cfg.tick_period > 0.0) {
    const double phase = m.tick_phase(h);
    const double first =
        std::ceil((t0 - phase) / cfg.tick_period) * cfg.tick_period + phase;
    if (first < t1) {
      const double n = std::floor((t1 - first) / cfg.tick_period) + 1.0;
      delay += n * cfg.tick_duration;
    }
  }

  double factor = 1.0;
  if (const auto sib = machine.sibling(h); sib && !m.busy(*sib)) {
    factor = cfg.smt_absorb_factor;
  }

  const auto times = m.event_times(h);
  const auto durs = m.event_durations(h);
  const std::size_t begin = static_cast<std::size_t>(
      std::lower_bound(times.begin(), times.end(), t0) - times.begin());
  for (std::size_t k = begin; k < times.size() && times[k] < t1; ++k) {
    delay += durs[k] * factor;
  }
  return delay;
}

double mean_factor(FreqModel& m, std::size_t core, double t0, double t1) {
  if (t1 <= t0) return factor(m, core, t0);
  require_materialized("mean_factor", t1, m.materialized_horizon());
  const double base = m.run_capped() ? m.config().run_cap_depth : 1.0;
  double integral = base * (t1 - t0);
  const std::size_t numa = m.core_numa(core);
  const auto starts = m.episode_starts(numa);
  const auto ends = m.episode_ends(numa);
  const auto depths = m.episode_depths(numa);
  for (std::size_t k = 0; k < starts.size(); ++k) {
    const double lo = std::max(t0, starts[k]);
    const double hi = std::min(t1, ends[k]);
    if (hi > lo) {
      const double depth = std::min(base, depths[k]);
      integral -= (base - depth) * (hi - lo);
    }
  }
  return std::max(0.1, integral / (t1 - t0));
}

double factor(FreqModel& m, std::size_t core, double t) {
  require_materialized("factor", t, m.materialized_horizon());
  double f = m.run_capped() ? m.config().run_cap_depth : 1.0;
  const std::size_t numa = m.core_numa(core);
  const auto starts = m.episode_starts(numa);
  const auto ends = m.episode_ends(numa);
  const auto depths = m.episode_depths(numa);
  for (std::size_t k = 0; k < starts.size(); ++k) {
    if (t >= starts[k] && t < ends[k]) f = std::min(f, depths[k]);
  }
  return f;
}

double elapsed_for_work(FreqModel& m, std::size_t core, double t0,
                        double work) {
  if (work <= 0.0) return 0.0;
  double d = work;
  for (int iter = 0; iter < 4; ++iter) {
    const double mf = mean_factor(m, core, t0, t0 + d);
    const double nd = work / mf;
    if (std::abs(nd - d) < 1e-12) return nd;
    d = nd;
  }
  return d;
}

}  // namespace omv::sim::reference
