#pragma once
// Per-platform OpenMP-runtime cost constants (all in seconds).
//
// These are the microarchitectural "calibration" of the simulator: the cost
// of forking a team, the per-level cost of tree barriers and reductions, the
// contended cost of grabbing a dynamic chunk, and so on. Values are chosen
// to land EPCC-style overheads in the ranges the paper reports (Table 2 and
// Fig. 1); the bench harness only relies on their *shape* (log-tree barriers,
// linear atomic contention, NUMA/socket step costs).

#include <cstddef>

namespace omv::sim {

/// Runtime construct costs for one machine.
struct CostModel {
  // Team fork/join: fork = base + lin * T (sequential thread wake component).
  double fork_base = 1.0e-6;
  double fork_per_thread = 60e-9;

  // Tree barrier: base + per_level * ceil(log2 T), plus topology step costs
  // added once per barrier when the team spans multiple NUMA domains or
  // sockets (cache-line transfer distance).
  double barrier_base = 0.3e-6;
  double barrier_per_level = 0.25e-6;
  double barrier_numa_step = 0.8e-6;    ///< per extra NUMA domain spanned.
  double barrier_socket_step = 2.5e-6;  ///< per extra socket spanned.
  /// Centralized barrier: every arrival bangs on one cache line, so the
  /// cost is linear in team size (the reason production runtimes use trees).
  double barrier_central_per_thread = 60e-9;

  // Reduction: barrier + per-level combine.
  double reduction_per_level = 0.5e-6;

  // Mutual exclusion.
  double critical_enter = 0.25e-6;  ///< uncontended enter/exit pair.
  double lock_op = 0.20e-6;         ///< set/unset pair.
  double atomic_op = 25e-9;         ///< uncontended atomic RMW.
  double atomic_contention = 4e-9;  ///< extra per contending thread.

  // Worksharing.
  double static_setup = 0.15e-6;     ///< per worksharing region.
  double sched_grab_base = 80e-9;    ///< dynamic: uncontended chunk grab.
  double sched_grab_contention = 15e-9;  ///< extra per contending thread.
  double ordered_wait = 0.15e-6;     ///< per ordered hand-off.
  double single_arbitration = 0.3e-6;

  // OS effects.
  double migration_cost = 60e-6;  ///< cache/TLB refill after a migration.
  /// Oversubscription: a thread sharing its HW thread with another team
  /// thread waits for a scheduler timeslice at every synchronization
  /// episode. Lognormal stall: mean and log-sigma. This is the mechanism
  /// behind the paper's orders-of-magnitude unpinned syncbench outliers.
  double oversub_stall_mean = 1.5e-3;
  double oversub_stall_sigma = 1.3;

  /// Work-rate calibration: multiplier on nominal compute time (captures
  /// delay-loop calibration differences between platforms; the paper's
  /// Table 2 shows Vera's delay(15us) runs ~7% long).
  double work_scale = 1.0;

  // SMT execution: per-thread throughput fraction when both siblings of a
  // core compute simultaneously, and the per-phase jitter of that fraction.
  // The EPCC delay loop is a low-IPC dependency chain, so SMT sharing costs
  // little mean throughput — the damage is to *synchronization*: see below.
  double smt_throughput = 0.93;
  double smt_jitter = 0.02;
  /// Synchronization executed by SMT co-scheduled teams is slower and far
  /// more variable (siblings contend in the spin/wake paths): barrier and
  /// fork costs are multiplied by (1 + |N(overhead, jitter)|).
  double smt_sync_overhead = 0.30;
  double smt_sync_jitter = 0.35;

  static CostModel dardel();
  static CostModel vera();
};

inline CostModel CostModel::dardel() {
  CostModel c;
  c.work_scale = 1.0;
  c.sched_grab_base = 80e-9;
  c.sched_grab_contention = 8e-9;  // calibrated against Table 2 (254 thr).
  return c;
}

inline CostModel CostModel::vera() {
  CostModel c;
  // Xeon 6130: fewer cores, slower uncore, costlier cross-socket traffic.
  c.work_scale = 1.07;  // calibrated against Table 2 (4-thread column).
  c.sched_grab_base = 160e-9;
  c.sched_grab_contention = 110e-9;  // Table 2 (30-thread column).
  c.barrier_socket_step = 3.0e-6;
  c.fork_per_thread = 90e-9;
  return c;
}

/// ceil(log2(n)) for n >= 1.
inline std::size_t ceil_log2(std::size_t n) noexcept {
  std::size_t levels = 0;
  std::size_t cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++levels;
  }
  return levels;
}

}  // namespace omv::sim
