#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace omv::sim {

SimConfig SimConfig::dardel() {
  SimConfig c;
  c.noise = NoiseConfig::dardel();
  c.freq = FreqConfig::dardel();
  c.mem = MemConfig::dardel();
  c.costs = CostModel::dardel();
  return c;
}

SimConfig SimConfig::vera() {
  SimConfig c;
  c.noise = NoiseConfig::vera();
  c.freq = FreqConfig::vera();
  c.mem = MemConfig::vera();
  c.costs = CostModel::vera();
  return c;
}

SimConfig SimConfig::ideal() {
  SimConfig c;
  c.noise = NoiseConfig::quiet();
  c.freq = FreqConfig::flat();
  c.mem = MemConfig{};
  c.costs = CostModel{};
  return c;
}

Simulator::Simulator(topo::Machine machine, SimConfig cfg)
    : machine_(std::move(machine)), cfg_(std::move(cfg)) {
  if (!cfg_.class_work_rate.empty()) {
    for (const double r : cfg_.class_work_rate) {
      if (!(r > 0.0)) {
        throw std::invalid_argument(
            "Simulator: class_work_rate entries must be positive");
      }
    }
    core_rate_.resize(machine_.n_cores(), 1.0);
    for (std::size_t core = 0; core < machine_.n_cores(); ++core) {
      const std::size_t cls = machine_.core_class(core);
      if (cls < cfg_.class_work_rate.size()) {
        core_rate_[core] = cfg_.class_work_rate[cls];
      }
    }
  }
  noise_ = std::make_unique<NoiseModel>(machine_, cfg_.noise);
  freq_ = std::make_unique<FreqModel>(machine_, cfg_.freq);
  mem_ = std::make_unique<MemoryModel>(machine_, cfg_.mem);
}

void Simulator::begin_run(std::uint64_t run_seed, const topo::CpuSet& busy) {
  noise_->begin_run(run_seed, busy);
  freq_->begin_run(run_seed);
  misc_rng_ = Rng(run_seed).fork(0xA11CE);
}

double Simulator::sample_smt_throughput() {
  const double v =
      misc_rng_.normal(cfg_.costs.smt_throughput, cfg_.costs.smt_jitter);
  return std::clamp(v, 0.35, 0.95);
}

double Simulator::exec_scaled(std::size_t h, double t0, double work,
                              double rate_factor) {
  if (work <= 0.0) return t0;
  rate_factor = std::max(rate_factor, 1e-6);
  const std::size_t core = machine_.thread(h).core;
  double eff_work = work * cfg_.costs.work_scale / rate_factor;
  // Per-class calibration: slower classes (E-cores) stretch the nominal
  // work. The empty-vector fast path leaves the homogeneous arithmetic
  // bit-identical to the historical expression.
  if (!core_rate_.empty()) eff_work /= core_rate_[core];

  double d = freq_->elapsed_for_work(core, t0, eff_work);
  // Preemptions extend the window; a longer window may catch more
  // preemptions. Iterate to a fixed point (converges fast: noise density is
  // far below 1).
  for (int iter = 0; iter < 6; ++iter) {
    const double delay = noise_->preemption_delay(h, t0, t0 + d);
    const double nd = freq_->elapsed_for_work(core, t0, eff_work) + delay;
    if (nd <= d + 1e-12) {
      d = nd;
      break;
    }
    d = nd;
  }
  return t0 + d;
}

double Simulator::exec(std::size_t h, double t0, double work,
                       std::size_t share, bool smt_busy) {
  double rate = 1.0;
  if (share > 1) rate /= static_cast<double>(share);
  if (smt_busy) rate *= sample_smt_throughput();
  return exec_scaled(h, t0, work, rate);
}

}  // namespace omv::sim
