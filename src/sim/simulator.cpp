#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/snapshot.hpp"
#include "sim/batch_kernels.hpp"

namespace omv::sim {

SimConfig SimConfig::dardel() {
  SimConfig c;
  c.noise = NoiseConfig::dardel();
  c.freq = FreqConfig::dardel();
  c.mem = MemConfig::dardel();
  c.costs = CostModel::dardel();
  return c;
}

SimConfig SimConfig::vera() {
  SimConfig c;
  c.noise = NoiseConfig::vera();
  c.freq = FreqConfig::vera();
  c.mem = MemConfig::vera();
  c.costs = CostModel::vera();
  return c;
}

SimConfig SimConfig::ideal() {
  SimConfig c;
  c.noise = NoiseConfig::quiet();
  c.freq = FreqConfig::flat();
  c.mem = MemConfig{};
  c.costs = CostModel{};
  return c;
}

Simulator::Simulator(topo::Machine machine, SimConfig cfg)
    : machine_(std::move(machine)), cfg_(std::move(cfg)) {
  if (!cfg_.class_work_rate.empty()) {
    for (const double r : cfg_.class_work_rate) {
      if (!(r > 0.0)) {
        throw std::invalid_argument(
            "Simulator: class_work_rate entries must be positive");
      }
    }
    core_rate_.resize(machine_.n_cores(), 1.0);
    for (std::size_t core = 0; core < machine_.n_cores(); ++core) {
      const std::size_t cls = machine_.core_class(core);
      if (cls < cfg_.class_work_rate.size()) {
        core_rate_[core] = cfg_.class_work_rate[cls];
      }
    }
  }
  noise_ = std::make_unique<NoiseModel>(machine_, cfg_.noise);
  freq_ = std::make_unique<FreqModel>(machine_, cfg_.freq);
  mem_ = std::make_unique<MemoryModel>(machine_, cfg_.mem);
}

void Simulator::begin_run(std::uint64_t run_seed, const topo::CpuSet& busy) {
  noise_->begin_run(run_seed, busy);
  freq_->begin_run(run_seed);
  misc_rng_ = Rng(run_seed).fork(0xA11CE);
}

double Simulator::sample_smt_throughput() {
  const double v =
      misc_rng_.normal(cfg_.costs.smt_throughput, cfg_.costs.smt_jitter);
  return std::clamp(v, 0.35, 0.95);
}

double Simulator::advance(std::size_t h, std::size_t core, double t0,
                          double eff_work) {
  const double base_d = freq_->elapsed_for_work(core, t0, eff_work);
  double d = base_d;
  // Preemptions extend the window; a longer window may catch more
  // preemptions. Iterate to a fixed point (converges fast: noise density is
  // far below 1). The frequency term is constant across iterations (same
  // arguments, and the first call materialized every episode its window
  // reads), so base_d replaces the historical per-iteration recomputation
  // bit-identically.
  for (int iter = 0; iter < 6; ++iter) {
    const double delay = noise_->preemption_delay(h, t0, t0 + d);
    const double nd = base_d + delay;
    if (nd <= d + 1e-12) {
      d = nd;
      break;
    }
    d = nd;
  }
  return t0 + d;
}

double Simulator::exec_scaled(std::size_t h, double t0, double work,
                              double rate_factor) {
  if (work <= 0.0) return t0;
  rate_factor = std::max(rate_factor, 1e-6);
  const std::size_t core = machine_.thread(h).core;
  double eff_work = work * cfg_.costs.work_scale / rate_factor;
  // Per-class calibration: slower classes (E-cores) stretch the nominal
  // work. The empty-vector fast path leaves the homogeneous arithmetic
  // bit-identical to the historical expression.
  if (!core_rate_.empty()) eff_work /= core_rate_[core];
  return advance(h, core, t0, eff_work);
}

double Simulator::exec(std::size_t h, double t0, double work,
                       std::size_t share, bool smt_busy) {
  double rate = 1.0;
  if (share > 1) rate /= static_cast<double>(share);
  if (smt_busy) rate *= sample_smt_throughput();
  return exec_scaled(h, t0, work, rate);
}

void Simulator::exec_batch_impl(const Placement& pl, const double* work,
                                std::span<double> clocks) {
  const std::size_t n = clocks.size();
  if (pl.hw.size() != n || pl.share.size() != n ||
      pl.smt_coscheduled.size() != n) {
    throw std::invalid_argument(
        "Simulator::exec_batch: placement/clock sizes differ");
  }
  if (n == 0) return;

  // RNG pass in thread order: the misc-RNG draw sequence must match the
  // per-thread loop exactly, including threads whose work is <= 0 (exec
  // samples the SMT throughput before the zero-work early-out).
  batch_rate_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double rate = 1.0;
    if (pl.share[i] > 1) rate /= static_cast<double>(pl.share[i]);
    if (pl.smt_coscheduled[i]) rate *= sample_smt_throughput();
    batch_rate_[i] = std::max(rate, 1e-6);
  }

  // Per-thread core ids, plus gathered per-thread core rates on
  // heterogeneous machines.
  batch_core_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch_core_[i] = machine_.thread(pl.hw[i]).core;
  }
  const double* core_rate = nullptr;
  if (!core_rate_.empty()) {
    batch_core_rate_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch_core_rate_[i] = core_rate_[batch_core_[i]];
    }
    core_rate = batch_core_rate_.data();
  }

  // Effective work for the whole team in one ISA-dispatched kernel call
  // (per-lane mul/div — bit-identical to the scalar expression on every
  // ISA).
  batch_eff_.resize(n);
  batch::kernels().scale_work(work, cfg_.costs.work_scale,
                              batch_rate_.data(), core_rate,
                              batch_eff_.data(), n);

  // Clock advances in thread order: lazy noise/frequency materialization
  // happens in the same sequence as the per-thread loop, which is what
  // keeps the batched phase bit-identical to it.
  for (std::size_t i = 0; i < n; ++i) {
    if (work[i] <= 0.0) continue;
    clocks[i] = advance(pl.hw[i], batch_core_[i], clocks[i], batch_eff_[i]);
  }
}

void Simulator::exec_batch(const Placement& pl, double work,
                           std::span<double> clocks) {
  batch_work_.assign(clocks.size(), work);
  exec_batch_impl(pl, batch_work_.data(), clocks);
}

void Simulator::exec_batch(const Placement& pl, std::span<const double> work,
                           std::span<double> clocks) {
  if (work.size() != clocks.size()) {
    throw std::invalid_argument(
        "Simulator::exec_batch: work/clock sizes differ");
  }
  exec_batch_impl(pl, work.data(), clocks);
}

void Simulator::capture(snap::SnapshotWriter& w) {
  // Geometry guards lead the record so a cross-machine restore fails before
  // any model field is decoded.
  w.field_u64("sim.n_threads", machine_.n_threads());
  w.field_u64("sim.n_cores", machine_.n_cores());
  w.field_u64("sim.n_numa", machine_.n_numa());
  snap::Capture v(w);
  v.object("sim", *this);
}

void Simulator::restore(snap::SnapshotReader& r) {
  r.expect_u64("sim.n_threads", machine_.n_threads(),
               "machine geometry (hardware threads)");
  r.expect_u64("sim.n_cores", machine_.n_cores(), "machine geometry (cores)");
  r.expect_u64("sim.n_numa", machine_.n_numa(),
               "machine geometry (NUMA domains)");
  snap::Restore v(r);
  v.object("sim", *this);
}

void Simulator::fork_streams(std::uint64_t salt) {
  misc_rng_ = misc_rng_.fork(salt);
  noise_->fork_streams(salt);
  freq_->fork_streams(salt);
}

}  // namespace omv::sim
