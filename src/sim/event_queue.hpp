#pragma once
// Minimal discrete-event queue: a stable min-heap keyed by (time, sequence).
// Ties are broken by insertion order so simulations are fully deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace omv::sim {

/// An event: a timestamped action.
struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< insertion order, breaks time ties.
  std::function<void()> action;
};

/// Deterministic discrete-event queue.
class EventQueue {
 public:
  /// Schedules `action` at absolute time `time`.
  void schedule(double time, std::function<void()> action);

  /// True when no events remain.
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event (undefined when empty).
  [[nodiscard]] double next_time() const { return heap_.top().time; }

  /// Current simulation time (time of the last executed event).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Pops and executes the earliest event. Returns false when empty.
  bool step();

  /// Runs until the queue is empty or `until` is passed. Returns the number
  /// of events executed.
  std::size_t run(double until = 1e300);

  /// Drops all pending events and resets the clock.
  void clear();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace omv::sim
