#pragma once
// Per-ISA batched interval-query primitives.
//
// Each primitive exists in up to three builds (scalar / AVX2 / AVX-512),
// selected at runtime through a function-pointer table. The scalar build
// reproduces the historical per-call accumulation order bit for bit and is
// the oracle every wider build is tested against. The wide builds fall into
// two accuracy classes, and callers must respect the split:
//
//   * per-lane-exact: scale_work applies an identical mul/div operation
//     tree to every lane (no fma, no reassociation), so its results are
//     bit-identical across all ISAs. Safe on harness-visible paths.
//   * reassociating: scan_events / scan_episodes / tick_terms regroup
//     within-window sums in vector lanes; drift vs scalar is bounded by the
//     differential rig's 1e-12 relative tolerance. Only reachable through
//     the explicit *_batch query APIs, never from harness stdout paths.

#include <cmath>
#include <cstddef>

#include "sim/isa.hpp"

namespace omv::sim::batch {

/// Minimum element count before a wide kernel amortizes its indirect-call
/// and setup cost (one AVX-512 vector). Below this the fused scalar scan
/// beats any vector build, so dispatch sites fall back to their inline
/// loops — measured by perf_hotpath's *_batch rows at low density, which
/// regressed to 0.6–0.8x when tiny scans went through the table.
inline constexpr std::size_t kVecMin = 8;

/// Function table for one ISA level.
struct Kernels {
  /// Returns acc + sum_{k in [i,j)} durs[k]*factor. The scalar build
  /// accumulates strictly left to right with acc as the seed (acc enters as
  /// the analytic timer-tick term), matching the historical event scan.
  double (*scan_events)(double acc, const double* durs, std::size_t i,
                        std::size_t j, double factor);

  /// Historical episode integration: returns acc after subtracting
  /// (base - min(base, depths[k])) * |[t0,t1) ∩ [starts[k],ends[k])| for
  /// each of the n episodes, in order. *overlapped is set to true when any
  /// episode intersects the window (left untouched otherwise).
  double (*scan_episodes)(double acc, const double* starts,
                          const double* ends, const double* depths,
                          std::size_t n, double t0, double t1, double base,
                          bool* overlapped);

  /// Analytic timer-tick delay for n windows:
  ///   first = ceil((t0-phase)/period)*period + phase
  ///   out   = first < t1 ? (floor((t1-first)/period)+1) * duration : 0
  void (*tick_terms)(const double* t0, const double* t1, const double* phase,
                     double period, double duration, double* out,
                     std::size_t n);

  /// out[k] = work[k] * scale / rate[k], then / core_rate[k] when core_rate
  /// is non-null. Identical per-lane operation trees on every ISA (mul/div
  /// only), so results are bit-identical across paths.
  void (*scale_work)(const double* work, double scale, const double* rate,
                     const double* core_rate, double* out, std::size_t n);
};

/// Shared scalar helper for the analytic timer-tick term — used by the
/// production per-call path (NoiseModel::preemption_delay) and the scalar
/// tick_terms kernel so both compile the identical expression.
inline double tick_delay_one(double t0, double t1, double phase,
                             double period, double duration) {
  const double first = std::ceil((t0 - phase) / period) * period + phase;
  if (first < t1) {
    const double n = std::floor((t1 - first) / period) + 1.0;
    return n * duration;
  }
  return 0.0;
}

[[nodiscard]] const Kernels& kernels_scalar() noexcept;
[[nodiscard]] const Kernels& kernels_avx2() noexcept;    // scalar fallback
[[nodiscard]] const Kernels& kernels_avx512() noexcept;  // when not built
[[nodiscard]] const Kernels& kernels_for(Isa isa) noexcept;
/// Table for active_isa().
[[nodiscard]] const Kernels& kernels();

}  // namespace omv::sim::batch
