#pragma once
// Brute-force reference queries over the event-stream models.
//
// These reproduce, line for line, the pre-index O(events) query arithmetic
// that NoiseModel::preemption_delay / FreqModel::mean_factor shipped with
// before the interval indices landed. They are retained for two jobs:
//
//   * the differential property tests pin the indexed queries against them
//     over randomized event/episode sets and windows;
//   * the perf_hotpath bench times them as the in-file baseline, so every
//     BENCH_hotpath.json records the indexed-vs-scan speedup measured on
//     the same machine, same build, same event history.
//
// The reference functions are pure queries: they read the models' already
// materialized state (events()/episodes()) and never extend the horizon.
// Callers must materialize_to() past every queried time first — the
// generation side is shared with the indexed implementation and is not
// under test here. Misuse fails loudly: querying past the model's
// materialized_horizon() throws std::logic_error instead of silently
// reading an event-free future (the documented PR 3 footgun, retired).

#include <cstddef>

#include "sim/freq.hpp"
#include "sim/noise.hpp"
#include "topo/topology.hpp"

namespace omv::sim::reference {

/// Pre-index preemption_delay: analytic tick term plus a lower_bound and a
/// linear scan over every event of HW thread `h` inside [t0, t1).
/// Requires m.materialize_to(t1) to have happened.
[[nodiscard]] double preemption_delay(const NoiseModel& m,
                                      const topo::Machine& machine,
                                      std::size_t h, double t0, double t1);

/// Pre-index mean_factor: full scan over every episode of the core's NUMA
/// domain. Requires m.materialize_to(t1) to have happened.
[[nodiscard]] double mean_factor(FreqModel& m, std::size_t core, double t0,
                                 double t1);

/// Pre-index factor (instantaneous, no jitter): full scan over the
/// domain's episodes. Requires m.materialize_to(t) to have happened.
[[nodiscard]] double factor(FreqModel& m, std::size_t core, double t);

/// Pre-index elapsed_for_work: the same fixed-point iteration over the
/// brute-force mean_factor. Requires the episode horizon to already cover
/// every window the iteration can visit (t0 + 10·work is always enough,
/// since mean factors are clamped to >= 0.1).
[[nodiscard]] double elapsed_for_work(FreqModel& m, std::size_t core,
                                      double t0, double work);

}  // namespace omv::sim::reference
