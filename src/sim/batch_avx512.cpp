#include "sim/batch_kernels.hpp"

// AVX-512 build of the batched kernels (compiled with -mavx512f/-mavx512dq;
// only dispatched to after a runtime CPU check). Same accuracy contract as
// the AVX2 build: scale_work is per-lane bit-identical to scalar, the
// scan/tick kernels reassociate within 1e-12 relative of the scalar oracle.

#if defined(OMV_BUILD_AVX512) && defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>

namespace omv::sim::batch {
namespace {

// roundscale imm8: rounding mode in the low nibble (2 = toward +inf,
// 1 = toward -inf) | 0x08 suppresses precision exceptions.
constexpr int kCeilImm = 0x0A;
constexpr int kFloorImm = 0x09;

double scan_events_avx512(double acc, const double* durs, std::size_t i,
                          std::size_t j, double factor) {
  const __m512d f = _mm512_set1_pd(factor);
  __m512d sum = _mm512_setzero_pd();
  std::size_t k = i;
  for (; k + 8 <= j; k += 8) {
    sum = _mm512_add_pd(sum, _mm512_mul_pd(_mm512_loadu_pd(durs + k), f));
  }
  double total = _mm512_reduce_add_pd(sum);
  for (; k < j; ++k) total += durs[k] * factor;
  return acc + total;
}

double scan_episodes_avx512(double acc, const double* starts,
                            const double* ends, const double* depths,
                            std::size_t n, double t0, double t1, double base,
                            bool* overlapped) {
  const __m512d vt0 = _mm512_set1_pd(t0);
  const __m512d vt1 = _mm512_set1_pd(t1);
  const __m512d vbase = _mm512_set1_pd(base);
  const __m512d zero = _mm512_setzero_pd();
  __m512d red = zero;
  __mmask8 any = 0;
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512d lo = _mm512_max_pd(vt0, _mm512_loadu_pd(starts + k));
    const __m512d hi = _mm512_min_pd(vt1, _mm512_loadu_pd(ends + k));
    const __m512d len = _mm512_sub_pd(hi, lo);
    const __mmask8 mask = _mm512_cmp_pd_mask(len, zero, _CMP_GT_OQ);
    const __m512d depth = _mm512_min_pd(vbase, _mm512_loadu_pd(depths + k));
    const __m512d w = _mm512_mul_pd(_mm512_sub_pd(vbase, depth), len);
    red = _mm512_mask_add_pd(red, mask, red, w);
    any |= mask;
  }
  double total = _mm512_reduce_add_pd(red);
  bool ov = any != 0;
  for (; k < n; ++k) {
    const double lo = std::max(t0, starts[k]);
    const double hi = std::min(t1, ends[k]);
    if (hi > lo) {
      ov = true;
      const double depth = std::min(base, depths[k]);
      total += (base - depth) * (hi - lo);
    }
  }
  if (ov) *overlapped = true;
  return acc - total;
}

void tick_terms_avx512(const double* t0, const double* t1,
                       const double* phase, double period, double duration,
                       double* out, std::size_t n) {
  const __m512d vperiod = _mm512_set1_pd(period);
  const __m512d vdur = _mm512_set1_pd(duration);
  const __m512d one = _mm512_set1_pd(1.0);
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512d ph = _mm512_loadu_pd(phase + k);
    const __m512d a =
        _mm512_div_pd(_mm512_sub_pd(_mm512_loadu_pd(t0 + k), ph), vperiod);
    const __m512d first = _mm512_add_pd(
        _mm512_mul_pd(_mm512_roundscale_pd(a, kCeilImm), vperiod), ph);
    const __m512d vt1 = _mm512_loadu_pd(t1 + k);
    const __m512d m = _mm512_add_pd(
        _mm512_roundscale_pd(
            _mm512_div_pd(_mm512_sub_pd(vt1, first), vperiod), kFloorImm),
        one);
    const __m512d d = _mm512_mul_pd(m, vdur);
    const __mmask8 mask = _mm512_cmp_pd_mask(first, vt1, _CMP_LT_OQ);
    _mm512_storeu_pd(out + k, _mm512_maskz_mov_pd(mask, d));
  }
  for (; k < n; ++k) {
    out[k] = tick_delay_one(t0[k], t1[k], phase[k], period, duration);
  }
}

void scale_work_avx512(const double* work, double scale, const double* rate,
                       const double* core_rate, double* out, std::size_t n) {
  const __m512d vs = _mm512_set1_pd(scale);
  std::size_t k = 0;
  if (core_rate != nullptr) {
    for (; k + 8 <= n; k += 8) {
      const __m512d eff = _mm512_div_pd(
          _mm512_div_pd(_mm512_mul_pd(_mm512_loadu_pd(work + k), vs),
                        _mm512_loadu_pd(rate + k)),
          _mm512_loadu_pd(core_rate + k));
      _mm512_storeu_pd(out + k, eff);
    }
    for (; k < n; ++k) out[k] = work[k] * scale / rate[k] / core_rate[k];
  } else {
    for (; k + 8 <= n; k += 8) {
      const __m512d eff =
          _mm512_div_pd(_mm512_mul_pd(_mm512_loadu_pd(work + k), vs),
                        _mm512_loadu_pd(rate + k));
      _mm512_storeu_pd(out + k, eff);
    }
    for (; k < n; ++k) out[k] = work[k] * scale / rate[k];
  }
}

}  // namespace

const Kernels& kernels_avx512() noexcept {
  static const Kernels k{scan_events_avx512, scan_episodes_avx512,
                         tick_terms_avx512, scale_work_avx512};
  return k;
}

}  // namespace omv::sim::batch

#else  // scalar fallback when the AVX-512 build is unavailable

namespace omv::sim::batch {

const Kernels& kernels_avx512() noexcept { return kernels_scalar(); }

}  // namespace omv::sim::batch

#endif
