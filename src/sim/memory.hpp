#pragma once
// NUMA memory-bandwidth model for the BabelStream kernels.
//
// Each NUMA domain has a peak bandwidth shared by the threads streaming from
// it; a single core cannot exceed `per_core_gbps`. A thread whose data lives
// in another domain (first-touch placement followed by migration, or a
// deliberately remote layout) pays a remote-bandwidth factor, larger across
// sockets. This reproduces Fig. 2's scaling (per-thread time shrinks as
// threads are added until domain bandwidth saturates) and the unpinned
// BabelStream variability of Fig. 4 (migration turns local streams remote).

#include <cstddef>
#include <vector>

#include "topo/topology.hpp"

namespace omv::sim {

/// Bandwidth parameters. Units: GB/s and bytes.
struct MemConfig {
  double domain_gbps = 50.0;    ///< peak per NUMA domain.
  double per_core_gbps = 20.0;  ///< single-thread ceiling.
  double remote_numa_factor = 0.70;    ///< same socket, different domain.
  double remote_socket_factor = 0.45;  ///< across sockets.
  /// Multiplicative lognormal jitter sigma on per-phase bandwidth
  /// (prefetcher/row-buffer luck).
  double jitter_sigma_log = 0.015;

  static MemConfig dardel();  ///< 8 domains x ~48 GB/s.
  static MemConfig vera();    ///< 2 domains x ~60 GB/s.
};

/// Computes per-thread streaming time for one kernel phase.
class MemoryModel {
 public:
  MemoryModel(const topo::Machine& machine, MemConfig cfg);

  /// Streaming time (seconds) for each thread to move `bytes_per_thread`
  /// bytes, given each thread's current HW thread (`placement`) and the NUMA
  /// domain its data lives in (`data_domain`, same length). `jitter` in
  /// (0, +inf) multiplies effective bandwidth (1.0 = no jitter).
  [[nodiscard]] std::vector<double> phase_times(
      const std::vector<std::size_t>& placement,
      const std::vector<std::size_t>& data_domain, double bytes_per_thread,
      const std::vector<double>& jitter) const;

  /// Effective bandwidth of a single thread at `hw` accessing `data_domain`
  /// with `sharers` threads streaming from that domain.
  [[nodiscard]] double thread_gbps(std::size_t hw, std::size_t data_domain,
                                   std::size_t sharers) const;

  [[nodiscard]] const MemConfig& config() const noexcept { return cfg_; }

 private:
  const topo::Machine& machine_;
  MemConfig cfg_;
};

}  // namespace omv::sim
