#include <algorithm>
#include <cstddef>

#include "sim/batch_kernels.hpp"

// Scalar build of the batched kernels — the bit-identity oracle. Every loop
// here reproduces the historical per-call accumulation order exactly; the
// differential rig pins the wider builds against these.

namespace omv::sim::batch {
namespace {

double scan_events_scalar(double acc, const double* durs, std::size_t i,
                          std::size_t j, double factor) {
  for (std::size_t k = i; k < j; ++k) acc += durs[k] * factor;
  return acc;
}

double scan_episodes_scalar(double acc, const double* starts,
                            const double* ends, const double* depths,
                            std::size_t n, double t0, double t1, double base,
                            bool* overlapped) {
  for (std::size_t k = 0; k < n; ++k) {
    const double lo = std::max(t0, starts[k]);
    const double hi = std::min(t1, ends[k]);
    if (hi > lo) {
      *overlapped = true;
      const double depth = std::min(base, depths[k]);
      acc -= (base - depth) * (hi - lo);
    }
  }
  return acc;
}

void tick_terms_scalar(const double* t0, const double* t1, const double* phase,
                       double period, double duration, double* out,
                       std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = tick_delay_one(t0[k], t1[k], phase[k], period, duration);
  }
}

void scale_work_scalar(const double* work, double scale, const double* rate,
                       const double* core_rate, double* out, std::size_t n) {
  if (core_rate != nullptr) {
    for (std::size_t k = 0; k < n; ++k) {
      out[k] = work[k] * scale / rate[k] / core_rate[k];
    }
  } else {
    for (std::size_t k = 0; k < n; ++k) {
      out[k] = work[k] * scale / rate[k];
    }
  }
}

}  // namespace

const Kernels& kernels_scalar() noexcept {
  static const Kernels k{scan_events_scalar, scan_episodes_scalar,
                         tick_terms_scalar, scale_work_scalar};
  return k;
}

const Kernels& kernels_for(Isa isa) noexcept {
  switch (isa) {
    case Isa::avx2:
      return kernels_avx2();
    case Isa::avx512:
      return kernels_avx512();
    case Isa::scalar:
      break;
  }
  return kernels_scalar();
}

const Kernels& kernels() { return kernels_for(active_isa()); }

}  // namespace omv::sim::batch
