#pragma once
// Operating-system noise model.
//
// Four sources, mirroring the taxonomy of the OS-noise literature the paper
// builds on (ticks, daemons, kernel worker threads, interrupts):
//
//   * TimerTick  — strictly periodic per-HW-thread interrupt (CONFIG_HZ),
//                  cannot be moved; the unavoidable noise floor.
//   * Daemon     — node-wide Poisson wakeups of migratable system daemons.
//                  The (modelled) OS places each wakeup on a fully idle core
//                  when one exists (zero impact on the benchmark), else on an
//                  idle SMT sibling (small impact on the busy sibling via SMT
//                  resource sharing), else it preempts a random busy thread
//                  (full impact). This is the mechanism behind the paper's
//                  "spare 2 cores" observation and behind ST > MT stability.
//   * KWorker    — per-CPU bound kernel work (cannot migrate): bursty,
//                  preempts whoever runs on that CPU.
//   * IrqStorm   — rare heavy-tailed events pinned to low-numbered CPUs
//                  (interrupt landing zone).
//
// Additionally, a *run-scoped degradation* state is sampled per run with a
// small probability: for the duration of the run the daemon rate is
// multiplied, reproducing the occasional whole-run outlier of Table 2.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/prefix_index.hpp"
#include "core/rng.hpp"
#include "topo/topology.hpp"

namespace omv::snap {
class Capture;
class Restore;
}  // namespace omv::snap

namespace omv::sim {

namespace batch {
struct Kernels;
}  // namespace batch

/// Tuning knobs for all noise sources. Time unit: seconds.
struct NoiseConfig {
  // Timer tick.
  double tick_period = 0.004;     ///< 250 Hz.
  double tick_duration = 1.5e-6;  ///< ~1.5 us per tick.

  // Migratable daemons (node-wide).
  double daemon_rate = 25.0;          ///< wakeups per second per node.
  double daemon_mean = 150e-6;        ///< mean service time.
  double daemon_sigma_log = 0.8;      ///< lognormal shape.

  // Per-CPU kernel workers.
  double kworker_rate_per_cpu = 0.08;  ///< bursts per second per HW thread.
  double kworker_mean = 250e-6;
  double kworker_sigma_log = 0.7;

  // Rare heavy-tailed IRQ activity, pinned to the first `irq_cpus` CPUs.
  double irq_rate = 0.08;     ///< events per second per node.
  double irq_xm = 0.8e-3;     ///< Pareto scale (minimum duration).
  double irq_alpha = 1.7;     ///< Pareto shape (smaller = heavier tail).
  std::size_t irq_cpus = 4;

  // Run-scoped degradation (occasional noisy runs).
  double degrade_prob = 0.08;       ///< probability a run is degraded.
  double degrade_rate_mult = 12.0;  ///< daemon rate multiplier when degraded.

  /// Wake-affinity miss: even with idle CPUs available, the kernel places a
  /// waking daemon on its cache-hot previous CPU with probability
  /// daemon_miss_factor * (busy fraction) — which may be busy. This is what
  /// keeps nearly-full nodes (30/32, 254/256) noticeably noisier than
  /// half-empty ones even though spare CPUs exist.
  double daemon_miss_factor = 0.30;

  /// Impact fraction when a daemon is absorbed by an idle SMT sibling:
  /// the busy sibling loses only a share of core resources.
  double smt_absorb_factor = 0.15;

  /// Preset approximating Dardel's production-cluster noise profile.
  static NoiseConfig dardel();
  /// Preset approximating Vera's noise profile.
  static NoiseConfig vera();
  /// All sources disabled (for unit tests and ablations).
  static NoiseConfig quiet();
};

/// Deterministic per-run noise generator; all events are materialized lazily
/// up to a growing horizon, so queries are order-independent. Event streams
/// are stored columnar (SoA): per-CPU time and duration columns plus
/// compensated duration prefix sums — the canonical representation that both
/// the query kernels and snapshots consume directly.
class NoiseModel {
 public:
  /// Density-adaptive scan/index cutover (events per window): windows
  /// holding at most this many events are summed by the historical
  /// sequential scan (bit-identical to the pre-index accumulation and
  /// faster at the low densities where the prefix index used to regress);
  /// wider windows use the O(1) compensated prefix-sum range. The value
  /// sits at the measured crossover of BENCH_hotpath.json's density sweep
  /// and may only ever be raised: harness regimes are sparser than the
  /// cutover, so raising preserves stdout byte-identity while lowering
  /// would not.
  static constexpr std::size_t kScanCutover = 48;

  NoiseModel(const topo::Machine& machine, NoiseConfig cfg);

  /// Starts a new run: clears all events, reseeds, samples the run-scoped
  /// degradation state, and records which HW threads host benchmark threads
  /// (used for daemon placement).
  void begin_run(std::uint64_t run_seed, const topo::CpuSet& busy);

  /// Updates the busy set mid-run (e.g. unpinned placement changed). Only
  /// affects events generated after the call.
  void set_busy(const topo::CpuSet& busy);

  /// Total preemption seconds charged to HW thread `h` by events arriving in
  /// [t0, t1). Includes the analytic timer-tick term.
  ///
  /// Indexed: two binary searches locate the window in the per-CPU sorted
  /// event vector; narrow windows are summed by the pre-index sequential
  /// scan (bit-identical to the historical implementation), wide windows by
  /// the compensated duration prefix sums in O(1).
  double preemption_delay(std::size_t h, double t0, double t1);

  /// Answers a whole batch of preemption windows in one call: the analytic
  /// tick terms are computed for all windows by one ISA-dispatched kernel
  /// pass, then the event sums are answered window by window in call order
  /// (horizon growth stays lazy and ordered exactly as a per-call loop, so
  /// the scalar ISA reproduces `for (k) out[k] = preemption_delay(...)`
  /// bit for bit, materialization included). Wider ISAs reassociate
  /// within-window sums — drift is bounded by the differential rig's 1e-12
  /// relative tolerance. All spans must share one length.
  void preemption_delay_batch(std::span<const std::size_t> h,
                              std::span<const double> t0,
                              std::span<const double> t1,
                              std::span<double> out);

  /// Materializes all noise sources up to time `t` (normally done lazily by
  /// preemption_delay; exposed so the differential oracle and the
  /// perf_hotpath bench can pin the event history before pure-query timing).
  void materialize_to(double t) { ensure_horizon(t); }

  /// Time up to which events have been materialized this run. The pure
  /// reference:: queries refuse to read past it (a query there would
  /// silently see an event-free future).
  [[nodiscard]] double materialized_horizon() const noexcept {
    return horizon_;
  }

  /// Per-HW-thread timer-tick phase offset in [0, tick_period) — part of
  /// the analytic tick term (exposed for the brute-force reference query).
  [[nodiscard]] double tick_phase(std::size_t h) const {
    return tick_phase_.at(h);
  }

  /// True when HW thread `h` currently hosts a benchmark thread.
  [[nodiscard]] bool busy(std::size_t h) const noexcept {
    return h < busy_.size() && busy_[h];
  }

  /// True when the current run is in the degraded state.
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }

  /// Materialized (non-tick) event arrival times on HW thread `h`, sorted
  /// ascending. Valid until the next materialization.
  [[nodiscard]] std::span<const double> event_times(std::size_t h) const {
    return times_.at(h);
  }

  /// Durations matching `event_times(h)` element for element.
  [[nodiscard]] std::span<const double> event_durations(std::size_t h) const {
    return durs_.at(h);
  }

  /// Number of per-CPU event streams (== machine HW threads).
  [[nodiscard]] std::size_t n_event_streams() const noexcept {
    return times_.size();
  }

  [[nodiscard]] const NoiseConfig& config() const noexcept { return cfg_; }

  /// Re-derives all RNG sub-streams keyed by `salt` without touching the
  /// materialized event history — the fork half of snapshot fork semantics.
  void fork_streams(std::uint64_t salt);

 private:
  friend class snap::Capture;
  friend class snap::Restore;

  void ensure_horizon(double t);
  void place_daemon(double t, double dur);
  /// Appends one raw (not yet indexed) event to the SoA columns of `h`.
  void append_event(std::size_t h, double t, double dur) {
    times_[h].push_back(t);
    durs_[h].push_back(dur);
  }
  /// Sorts freshly appended per-CPU column tails by time and extends the
  /// duration prefix sums. Only CPUs whose columns grew since the last call
  /// are touched. Outside ensure_horizon the columns are always fully
  /// indexed (`indexed_len_[h] == times_[h].size()`).
  void index_new_events();
  /// Rebuilds derived state (prefix sums, indexed lengths, absorb factors)
  /// after a snapshot restore repopulated the serialized fields.
  void after_restore(snap::Restore& v);

  /// Single field enumeration driving both snapshot directions.
  template <typename V>
  void snapshot_fields(V& v) {
    v.object("daemon_rng", daemon_rng_);
    v.object("kworker_rng", kworker_rng_);
    v.object("irq_rng", irq_rng_);
    v.object("placement_rng", placement_rng_);
    v.field("times", times_);
    v.field("durs", durs_);
    v.field("kworker_next", kworker_next_);
    v.field("daemon_next", daemon_next_);
    v.field("irq_next", irq_next_);
    v.field("horizon", horizon_);
    v.field("degraded", degraded_);
    v.field("busy", busy_);
    v.field("tick_phase", tick_phase_);
    if constexpr (V::is_restore) after_restore(v);
  }
  /// Event-sum part of a preemption window: `acc` enters holding the
  /// analytic tick term. Fused narrow scan (accumulates while counting, in
  /// the historical order) with a bail-out to the prefix range past
  /// kScanCutover events; `kern`, when non-null, answers the narrow sum via
  /// the ISA kernel table instead of the inlined scalar loop.
  double event_delay(std::size_t h, double t0, double t1, double acc,
                     const batch::Kernels* kern);
  /// Recomputes the cached SMT-absorb factors from the busy set.
  void refresh_absorb_factors();

  const topo::Machine& machine_;
  NoiseConfig cfg_;
  Rng daemon_rng_;
  Rng kworker_rng_;
  Rng irq_rng_;
  Rng placement_rng_;
  /// Canonical columnar event storage: per-CPU arrival times and durations.
  /// The leading indexed_len_[h] entries are sorted by time; sources append
  /// raw tails which index_new_events() sorts in. Binary searches and scans
  /// touch one contiguous double stream instead of striding through
  /// 24-byte event records, and snapshots write these columns directly.
  std::vector<std::vector<double>> times_;
  std::vector<std::vector<double>> durs_;
  /// cum_[h] holds compensated prefix sums of durs_[h] (size == events + 1);
  /// kept in lockstep by index_new_events().
  std::vector<stats::PrefixSum> cum_;
  /// Per-HW-thread SMT-absorb factor (smt_absorb_factor when the sibling is
  /// idle, else 1.0), cached from the busy set so the per-query sibling
  /// lookup disappears from the hot path.
  std::vector<double> absorb_factor_;
  /// Scratch for preemption_delay_batch's tick pass (gathered phases).
  std::vector<double> batch_phase_;
  /// Number of leading events of times_[h]/durs_[h] already sorted+indexed.
  std::vector<std::size_t> indexed_len_;
  /// Scratch for index_new_events' joint (time, duration) tail sort.
  std::vector<std::pair<double, double>> sort_scratch_;
  /// Per-core HW-thread lists, cached from the (immutable) machine so the
  /// daemon-placement scan does not rebuild CpuSets per event.
  std::vector<std::vector<std::size_t>> core_threads_;
  /// Reusable scratch for place_daemon (busy CPUs / idle SMT siblings) —
  /// cleared per call, capacity retained across the run.
  std::vector<std::size_t> scratch_busy_;
  std::vector<std::size_t> scratch_siblings_;
  std::vector<double> kworker_next_;
  double daemon_next_ = 0.0;
  double irq_next_ = 0.0;
  double horizon_ = 0.0;
  bool degraded_ = false;
  std::vector<bool> busy_;
  std::vector<double> tick_phase_;
};

}  // namespace omv::sim
