#include "sim/event_queue.hpp"

#include <utility>

namespace omv::sim {

void EventQueue::schedule(double time, std::function<void()> action) {
  heap_.push(Event{time, next_seq_++, std::move(action)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-adjacent,
  // so copy the small fields and move the action through a local pop pattern.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  if (ev.action) ev.action();
  return true;
}

std::size_t EventQueue::run(double until) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_.top().time <= until) {
    step();
    ++n;
  }
  return n;
}

void EventQueue::clear() {
  heap_ = {};
  now_ = 0.0;
  next_seq_ = 0;
}

}  // namespace omv::sim
