#include "sim/isa.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace omv::sim {

namespace {

bool cpu_supports_avx2() {
#if defined(__x86_64__) && defined(OMV_BUILD_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if defined(__x86_64__) && defined(OMV_BUILD_AVX512)
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
#else
  return false;
#endif
}

// Forced level, one past the Isa range meaning "not forced".
constexpr int kNotForced = -1;
std::atomic<int> g_forced{kNotForced};
std::atomic<bool> g_env_override{false};

Isa resolve_from_env() {
  const char* env = std::getenv("OMNIVAR_ISA");
  if (env != nullptr && *env != '\0') {
    Isa parsed;
    if (!parse_isa(env, parsed)) {
      std::fprintf(stderr,
                   "[omnivar] warning: OMNIVAR_ISA=%s not recognized "
                   "(expected scalar|avx2|avx512); using auto-dispatch\n",
                   env);
    } else if (!isa_supported(parsed)) {
      std::fprintf(stderr,
                   "[omnivar] warning: OMNIVAR_ISA=%s not supported on this "
                   "host/build; using auto-dispatch\n",
                   env);
    } else {
      g_env_override.store(true, std::memory_order_relaxed);
      return parsed;
    }
  }
  return best_isa();
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::scalar:
      return "scalar";
    case Isa::avx2:
      return "avx2";
    case Isa::avx512:
      return "avx512";
  }
  return "scalar";
}

bool isa_supported(Isa isa) noexcept {
  switch (isa) {
    case Isa::scalar:
      return true;
    case Isa::avx2:
      return cpu_supports_avx2();
    case Isa::avx512:
      return cpu_supports_avx512();
  }
  return false;
}

std::vector<Isa> available_isas() {
  std::vector<Isa> out{Isa::scalar};
  if (isa_supported(Isa::avx2)) out.push_back(Isa::avx2);
  if (isa_supported(Isa::avx512)) out.push_back(Isa::avx512);
  return out;
}

Isa best_isa() noexcept {
  if (isa_supported(Isa::avx512)) return Isa::avx512;
  if (isa_supported(Isa::avx2)) return Isa::avx2;
  return Isa::scalar;
}

Isa active_isa() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced != kNotForced) return static_cast<Isa>(forced);
  static const Isa resolved = resolve_from_env();
  return resolved;
}

bool isa_overridden() {
  if (g_forced.load(std::memory_order_relaxed) != kNotForced) return true;
  (void)active_isa();  // make sure the env has been consulted
  return g_env_override.load(std::memory_order_relaxed);
}

void force_isa(Isa isa) {
  if (!isa_supported(isa)) {
    throw std::invalid_argument(std::string("force_isa: ") + isa_name(isa) +
                                " is not supported on this host/build");
  }
  g_forced.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void reset_isa() { g_forced.store(kNotForced, std::memory_order_relaxed); }

bool parse_isa(const std::string& name, Isa& out) {
  if (name == "scalar") {
    out = Isa::scalar;
    return true;
  }
  if (name == "avx2") {
    out = Isa::avx2;
    return true;
  }
  if (name == "avx512" || name == "avx512f") {
    out = Isa::avx512;
    return true;
  }
  return false;
}

}  // namespace omv::sim
