#include "sim/batch_kernels.hpp"

// AVX2 build of the batched kernels (compiled with -mavx2; only dispatched
// to after a runtime CPU check). scale_work keeps the scalar per-lane
// operation tree exactly (mul/div only — bit-identical); the scan/tick
// kernels reassociate within-window sums, which the differential rig bounds
// at 1e-12 relative vs the scalar oracle.

#if defined(OMV_BUILD_AVX2) && defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>

namespace omv::sim::batch {
namespace {

double hsum4(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swapped));
}

double scan_events_avx2(double acc, const double* durs, std::size_t i,
                        std::size_t j, double factor) {
  const __m256d f = _mm256_set1_pd(factor);
  __m256d sum = _mm256_setzero_pd();
  std::size_t k = i;
  for (; k + 4 <= j; k += 4) {
    sum = _mm256_add_pd(sum, _mm256_mul_pd(_mm256_loadu_pd(durs + k), f));
  }
  double total = hsum4(sum);
  for (; k < j; ++k) total += durs[k] * factor;
  return acc + total;
}

double scan_episodes_avx2(double acc, const double* starts,
                          const double* ends, const double* depths,
                          std::size_t n, double t0, double t1, double base,
                          bool* overlapped) {
  const __m256d vt0 = _mm256_set1_pd(t0);
  const __m256d vt1 = _mm256_set1_pd(t1);
  const __m256d vbase = _mm256_set1_pd(base);
  const __m256d zero = _mm256_setzero_pd();
  __m256d red = zero;
  __m256d any = zero;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d lo = _mm256_max_pd(vt0, _mm256_loadu_pd(starts + k));
    const __m256d hi = _mm256_min_pd(vt1, _mm256_loadu_pd(ends + k));
    const __m256d len = _mm256_sub_pd(hi, lo);
    const __m256d mask = _mm256_cmp_pd(len, zero, _CMP_GT_OQ);
    const __m256d depth = _mm256_min_pd(vbase, _mm256_loadu_pd(depths + k));
    const __m256d w = _mm256_mul_pd(_mm256_sub_pd(vbase, depth), len);
    red = _mm256_add_pd(red, _mm256_and_pd(mask, w));
    any = _mm256_or_pd(any, mask);
  }
  double total = hsum4(red);
  bool ov = _mm256_movemask_pd(any) != 0;
  for (; k < n; ++k) {
    const double lo = std::max(t0, starts[k]);
    const double hi = std::min(t1, ends[k]);
    if (hi > lo) {
      ov = true;
      const double depth = std::min(base, depths[k]);
      total += (base - depth) * (hi - lo);
    }
  }
  if (ov) *overlapped = true;
  return acc - total;
}

void tick_terms_avx2(const double* t0, const double* t1, const double* phase,
                     double period, double duration, double* out,
                     std::size_t n) {
  const __m256d vperiod = _mm256_set1_pd(period);
  const __m256d vdur = _mm256_set1_pd(duration);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d ph = _mm256_loadu_pd(phase + k);
    const __m256d a =
        _mm256_div_pd(_mm256_sub_pd(_mm256_loadu_pd(t0 + k), ph), vperiod);
    const __m256d first = _mm256_add_pd(
        _mm256_mul_pd(
            _mm256_round_pd(a, _MM_FROUND_TO_POS_INF | _MM_FROUND_NO_EXC),
            vperiod),
        ph);
    const __m256d vt1 = _mm256_loadu_pd(t1 + k);
    const __m256d m = _mm256_add_pd(
        _mm256_round_pd(
            _mm256_div_pd(_mm256_sub_pd(vt1, first), vperiod),
            _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC),
        one);
    const __m256d d = _mm256_mul_pd(m, vdur);
    const __m256d mask = _mm256_cmp_pd(first, vt1, _CMP_LT_OQ);
    _mm256_storeu_pd(out + k, _mm256_and_pd(mask, d));
  }
  for (; k < n; ++k) {
    out[k] = tick_delay_one(t0[k], t1[k], phase[k], period, duration);
  }
}

void scale_work_avx2(const double* work, double scale, const double* rate,
                     const double* core_rate, double* out, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(scale);
  std::size_t k = 0;
  if (core_rate != nullptr) {
    for (; k + 4 <= n; k += 4) {
      const __m256d eff = _mm256_div_pd(
          _mm256_div_pd(_mm256_mul_pd(_mm256_loadu_pd(work + k), vs),
                        _mm256_loadu_pd(rate + k)),
          _mm256_loadu_pd(core_rate + k));
      _mm256_storeu_pd(out + k, eff);
    }
    for (; k < n; ++k) out[k] = work[k] * scale / rate[k] / core_rate[k];
  } else {
    for (; k + 4 <= n; k += 4) {
      const __m256d eff =
          _mm256_div_pd(_mm256_mul_pd(_mm256_loadu_pd(work + k), vs),
                        _mm256_loadu_pd(rate + k));
      _mm256_storeu_pd(out + k, eff);
    }
    for (; k < n; ++k) out[k] = work[k] * scale / rate[k];
  }
}

}  // namespace

const Kernels& kernels_avx2() noexcept {
  static const Kernels k{scan_events_avx2, scan_episodes_avx2,
                         tick_terms_avx2, scale_work_avx2};
  return k;
}

}  // namespace omv::sim::batch

#else  // scalar fallback when the AVX2 build is unavailable

namespace omv::sim::batch {

const Kernels& kernels_avx2() noexcept { return kernels_scalar(); }

}  // namespace omv::sim::batch

#endif
