#pragma once
// Simulator facade: owns the machine and all hardware/OS models, and
// provides the one execution primitive everything else is built from —
// "run `work` seconds of nominal compute on HW thread h starting at t".
//
// Elapsed wall time folds in, in order: the platform work-rate calibration,
// oversubscription time-sharing, SMT co-scheduling throughput, DVFS
// frequency integration, and OS-noise preemptions (whose windows are
// extended fixed-point style, since a preemption lengthens the window which
// may capture further preemptions).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "sim/cost_model.hpp"
#include "sim/freq.hpp"
#include "sim/memory.hpp"
#include "sim/noise.hpp"
#include "sim/os_placement.hpp"
#include "topo/topology.hpp"

namespace omv::snap {
class SnapshotWriter;
class SnapshotReader;
class Capture;
class Restore;
}  // namespace omv::snap

namespace omv::sim {

/// Full simulator configuration.
///
/// The per-platform factory bundles below are the paper platforms'
/// calibration source of truth; the scenario layer (src/scenario) wraps
/// them as the catalog presets "dardel"/"vera" and serializes every field
/// for user-authored scenarios, so new platforms are data, not new
/// factories.
struct SimConfig {
  NoiseConfig noise;
  FreqConfig freq;
  MemConfig mem;
  CostModel costs;
  /// Relative compute speed of each topo core class (indexed by
  /// topo::Machine::core_class): 1.0 = nominal, 0.6 = an E-core finishing
  /// the same work in 1/0.6 the time. Empty (the default, and the only
  /// sensible value for homogeneous machines) means every class runs at
  /// nominal speed; classes beyond the vector's size default to 1.0.
  /// Populated by the scenario layer from per-group `work_rate` keys.
  std::vector<double> class_work_rate;

  /// Dardel-calibrated bundle (pair with topo::Machine::dardel()).
  static SimConfig dardel();
  /// Vera-calibrated bundle (pair with topo::Machine::vera()).
  static SimConfig vera();
  /// Noise-free, frequency-flat bundle (unit tests, ablation baselines).
  static SimConfig ideal();
};

/// The multicore-system simulator.
class Simulator {
 public:
  Simulator(topo::Machine machine, SimConfig cfg);

  [[nodiscard]] const topo::Machine& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] const CostModel& costs() const noexcept { return cfg_.costs; }
  /// Full configuration bundle (lets callers clone per-worker simulators
  /// for sharded experiment execution).
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] NoiseModel& noise() noexcept { return *noise_; }
  [[nodiscard]] FreqModel& freq() noexcept { return *freq_; }
  [[nodiscard]] const MemoryModel& memory() const noexcept { return *mem_; }
  /// Per-run miscellaneous RNG stream (jitters).
  [[nodiscard]] Rng& rng() noexcept { return misc_rng_; }

  /// Resets the per-run state of all models (noise events, frequency
  /// episodes, run-scoped degradations) under `run_seed`. `busy` is the set
  /// of HW threads hosting benchmark threads (daemon placement).
  void begin_run(std::uint64_t run_seed, const topo::CpuSet& busy);

  /// Completion time of `work` nominal-fmax compute seconds started at `t0`
  /// on HW thread `h`. `share` >= 1 is the oversubscription factor;
  /// `smt_busy` marks both core siblings computing simultaneously.
  [[nodiscard]] double exec(std::size_t h, double t0, double work,
                            std::size_t share = 1, bool smt_busy = false);

  /// As exec(), but with an explicit throughput multiplier instead of the
  /// cost-model SMT factor (used by the memory model path where bandwidth,
  /// not core throughput, dominates).
  [[nodiscard]] double exec_scaled(std::size_t h, double t0, double work,
                                   double rate_factor);

  /// Advances a whole team's clocks through one lockstep compute segment in
  /// a single call: one RNG pass in thread order (the misc-RNG draw
  /// sequence of the per-thread loop, exactly), one ISA-dispatched
  /// effective-work kernel (per-lane mul/div — bit-identical across ISAs),
  /// then the per-thread clock advances in thread order (so lazy noise/
  /// frequency materialization is ordered exactly as the per-thread loop's
  /// and results are bit-identical to `for (i) clocks[i] = exec(...)` on
  /// every ISA). `pl` spans and `clocks` must share one length; `work` is
  /// either one nominal duration for all threads or one per thread.
  void exec_batch(const Placement& pl, double work, std::span<double> clocks);
  void exec_batch(const Placement& pl, std::span<const double> work,
                  std::span<double> clocks);

  /// Per-phase SMT throughput sample (mean smt_throughput with jitter).
  [[nodiscard]] double sample_smt_throughput();

  /// Serializes the full per-run state (machine geometry guards, misc RNG,
  /// noise and frequency models) into `w`.
  void capture(snap::SnapshotWriter& w);

  /// Restores state captured by `capture`. Throws snap::SnapshotError on
  /// any mismatch — including cross-machine geometry mismatches, checked
  /// before any field is decoded.
  void restore(snap::SnapshotReader& r);

  /// Re-derives independent RNG sub-streams for every model, keyed by
  /// `salt`, leaving materialized histories shared — N forks of one
  /// restored snapshot diverge deterministically for warm-started sweeps.
  void fork_streams(std::uint64_t salt);

 private:
  friend class snap::Capture;
  friend class snap::Restore;

  /// Single field enumeration driving both snapshot directions.
  template <typename V>
  void snapshot_fields(V& v) {
    v.object("misc_rng", misc_rng_);
    v.object("noise", *noise_);
    v.object("freq", *freq_);
  }

  /// Fixed-point clock advance shared by exec_scaled and exec_batch: the
  /// frequency-integrated elapsed time for `eff_work` is computed once and
  /// reused across iterations — its arguments never change inside the
  /// loop, and re-running it cannot return a different value (episode
  /// arrivals are monotone, so the first call materialized everything its
  /// window reads), making the cache bit-identical to the historical
  /// per-iteration recomputation.
  [[nodiscard]] double advance(std::size_t h, std::size_t core, double t0,
                               double eff_work);
  void exec_batch_impl(const Placement& pl, const double* work,
                       std::span<double> clocks);

  topo::Machine machine_;
  SimConfig cfg_;
  /// Per-core compute rate resolved from cfg_.class_work_rate (empty when
  /// every class runs at nominal speed — the homogeneous fast path).
  std::vector<double> core_rate_;
  std::unique_ptr<NoiseModel> noise_;
  std::unique_ptr<FreqModel> freq_;
  std::unique_ptr<MemoryModel> mem_;
  Rng misc_rng_;
  /// exec_batch scratch (rates, effective work, per-thread core ids and
  /// core rates) — capacity retained across phases.
  std::vector<double> batch_rate_;
  std::vector<double> batch_eff_;
  std::vector<double> batch_work_;
  std::vector<double> batch_core_rate_;
  std::vector<std::size_t> batch_core_;
};

}  // namespace omv::sim
