#include "sim/memory.hpp"

#include <algorithm>
#include <stdexcept>

namespace omv::sim {

MemConfig MemConfig::dardel() {
  MemConfig c;
  c.domain_gbps = 48.0;
  c.per_core_gbps = 22.0;
  return c;
}

MemConfig MemConfig::vera() {
  MemConfig c;
  c.domain_gbps = 60.0;
  c.per_core_gbps = 14.0;
  return c;
}

MemoryModel::MemoryModel(const topo::Machine& machine, MemConfig cfg)
    : machine_(machine), cfg_(cfg) {}

double MemoryModel::thread_gbps(std::size_t hw, std::size_t data_domain,
                                std::size_t sharers) const {
  sharers = std::max<std::size_t>(sharers, 1);
  const double share = cfg_.domain_gbps / static_cast<double>(sharers);
  double bw = std::min(cfg_.per_core_gbps, share);
  const auto& t = machine_.thread(hw);
  if (t.numa != data_domain) {
    const std::size_t data_socket =
        machine_.numa_threads(data_domain).empty()
            ? 0
            : machine_.thread(machine_.numa_threads(data_domain).first())
                  .socket;
    bw *= (t.socket == data_socket) ? cfg_.remote_numa_factor
                                    : cfg_.remote_socket_factor;
  }
  return bw;
}

std::vector<double> MemoryModel::phase_times(
    const std::vector<std::size_t>& placement,
    const std::vector<std::size_t>& data_domain, double bytes_per_thread,
    const std::vector<double>& jitter) const {
  const std::size_t n = placement.size();
  if (data_domain.size() != n || jitter.size() != n) {
    throw std::invalid_argument("MemoryModel::phase_times: size mismatch");
  }
  // Count how many threads stream from each domain.
  std::vector<std::size_t> sharers(machine_.n_numa(), 0);
  for (std::size_t d : data_domain) ++sharers.at(d);

  std::vector<double> times(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double bw =
        thread_gbps(placement[i], data_domain[i], sharers[data_domain[i]]) *
        jitter[i];
    times[i] = bytes_per_thread / (bw * 1e9);
  }
  return times;
}

}  // namespace omv::sim
