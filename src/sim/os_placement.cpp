#include "sim/os_placement.hpp"

#include <algorithm>
#include <stdexcept>

namespace omv::sim {

PlacementModel::PlacementModel(const topo::Machine& machine,
                               std::vector<topo::CpuSet> affinities,
                               bool pinned, PlacementConfig cfg,
                               std::uint64_t seed)
    : machine_(&machine),
      affinities_(std::move(affinities)),
      pinned_(pinned),
      cfg_(cfg),
      rng_(Rng(seed).fork(0x05)) {
  if (affinities_.empty()) {
    throw std::invalid_argument("PlacementModel: no threads");
  }
  initial_place();
}

void PlacementModel::initial_place() {
  const std::size_t n = affinities_.size();
  state_.hw.assign(n, 0);
  state_.migrated.assign(n, false);

  // Occupancy per HW thread, to spread threads whose sets overlap.
  std::vector<std::size_t> occupancy(machine_->n_threads(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const topo::CpuSet& options = affinities_[i];
    if (options.empty()) {
      throw std::invalid_argument("PlacementModel: empty affinity set");
    }
    // Least-occupied member of the set; prefer smt_index 0 on ties (the OS
    // fills physical cores before hyperthreads).
    std::size_t best = options.first();
    for (std::size_t cand : options) {
      const auto& tb = machine_->thread(best);
      const auto& tc = machine_->thread(cand);
      if (occupancy[cand] < occupancy[best] ||
          (occupancy[cand] == occupancy[best] &&
           tc.smt_index < tb.smt_index)) {
        best = cand;
      }
    }
    state_.hw[i] = best;
    ++occupancy[best];
  }
  // First-touch: data lives where the thread first ran.
  state_.data_domain.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    state_.data_domain[i] = machine_->thread(state_.hw[i]).numa;
  }
  recompute_derived();
}

void PlacementModel::recompute_derived() {
  const std::size_t n = state_.hw.size();
  std::vector<std::size_t> per_hw(machine_->n_threads(), 0);
  std::vector<std::size_t> per_core(machine_->n_cores(), 0);
  for (std::size_t h : state_.hw) {
    ++per_hw[h];
    ++per_core[machine_->thread(h).core];
  }
  state_.share.assign(n, 1);
  state_.smt_coscheduled.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t core = machine_->thread(state_.hw[i]).core;
    state_.share[i] = std::max<std::size_t>(1, per_hw[state_.hw[i]]);
    // Per-core SMT width, not the machine average: on a mixed-SMT machine
    // the historical smt_per_core() floor average reported 1 and this flag
    // never fired, even for threads genuinely co-scheduled on an SMT core.
    state_.smt_coscheduled[i] =
        per_core[core] > 1 && machine_->smt_of_core(core) > 1;
  }
}

const Placement& PlacementModel::next_rep() {
  if (first_) {
    first_ = false;
    return state_;
  }
  std::fill(state_.migrated.begin(), state_.migrated.end(), false);
  if (pinned_) return state_;

  bool changed = false;
  // Balancer rescue: the load balancer eventually notices an oversubscribed
  // CPU and moves one of its threads to an idle one. One rescue per rep at
  // most — real balancing is rate-limited.
  for (std::size_t i = 0; i < state_.hw.size(); ++i) {
    if (state_.share[i] > 1 && rng_.bernoulli(cfg_.rescue_prob)) {
      std::vector<std::size_t> load(machine_->n_threads(), 0);
      for (std::size_t h : state_.hw) ++load[h];
      std::size_t dest = 0;
      for (std::size_t h = 1; h < load.size(); ++h) {
        if (load[h] < load[dest]) dest = h;
      }
      if (load[dest] == 0) {
        state_.hw[i] = dest;
        state_.migrated[i] = true;
        changed = true;
      }
      break;
    }
  }
  for (std::size_t i = 0; i < state_.hw.size(); ++i) {
    if (!rng_.bernoulli(cfg_.migrate_prob)) continue;
    std::size_t dest;
    if (rng_.bernoulli(cfg_.bad_migration_prob)) {
      // Misguided balance decision: any CPU, may stack threads.
      dest = rng_.next_below(machine_->n_threads());
    } else {
      // Sensible decision: the least-loaded CPU (first such).
      std::vector<std::size_t> load(machine_->n_threads(), 0);
      for (std::size_t h : state_.hw) ++load[h];
      dest = 0;
      for (std::size_t h = 1; h < load.size(); ++h) {
        if (load[h] < load[dest]) dest = h;
      }
    }
    if (dest != state_.hw[i]) {
      state_.hw[i] = dest;
      state_.migrated[i] = true;
      changed = true;
      // Data stays in the first-touch domain — accesses may now be remote.
    }
  }
  if (changed) recompute_derived();
  return state_;
}

topo::CpuSet PlacementModel::busy_set() const {
  topo::CpuSet s;
  for (std::size_t h : state_.hw) s.add(h);
  return s;
}

}  // namespace omv::sim
