#include "omp_model/constructs.hpp"

#include <algorithm>
#include <vector>

namespace omv::ompsim {
namespace {

double repeat_scale(std::size_t repeats) {
  return static_cast<double>(std::max<std::size_t>(repeats, 1));
}

/// Serializes the team through a per-thread exclusive section of
/// `work + overhead` seconds, in arrival (clock) order.
void serialize(SimTeam& team, double work, double overhead,
               std::size_t repeats) {
  const double r = repeat_scale(repeats);
  const std::size_t n = team.size();
  // Arrival order: ascending current clock, stable by thread id.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return team.clock(a) < team.clock(b);
                   });
  std::vector<double> clocks(team.clocks().begin(), team.clocks().end());
  double lock_free_at = 0.0;
  for (std::size_t idx : order) {
    const double enter = std::max(clocks[idx], lock_free_at);
    const double done = team.exec_at(idx, enter + overhead * r, work * r);
    clocks[idx] = done;
    lock_free_at = done;
  }
  team.set_clocks(clocks);
}

}  // namespace

void parallel_region(SimTeam& team, double work, std::size_t repeats) {
  const double r = repeat_scale(repeats);
  // r forks + r joins: every instance begins and ends with the team
  // aligned, so the batch collapses into one fork/payload/join with scaled
  // costs — identical clock effects, O(threads) instead of O(r * threads).
  team.align_clocks(team.now() + team.fork_cost() * r);
  team.compute(work * r);
  team.sync_episode(team.barrier_cost(), repeats);
}

void barrier_construct(SimTeam& team, double work, std::size_t repeats) {
  const double r = repeat_scale(repeats);
  team.compute(work * r);
  team.sync_episode(team.barrier_cost(), repeats);
}

void for_construct(SimTeam& team, double work, std::size_t repeats) {
  const double r = repeat_scale(repeats);
  const auto& c = team.simulator().costs();
  team.compute(work * r + c.static_setup * r);
  team.sync_episode(team.barrier_cost(), repeats);
}

void single_construct(SimTeam& team, double work, std::size_t repeats) {
  const double r = repeat_scale(repeats);
  const auto& c = team.simulator().costs();
  // Winner (thread 0 by convention after alignment) does the payload plus
  // arbitration; everyone then synchronizes.
  team.compute_one(0, work * r + c.single_arbitration * r);
  team.sync_episode(team.barrier_cost(), repeats);
}

void critical_construct(SimTeam& team, double work, std::size_t repeats) {
  serialize(team, work, team.simulator().costs().critical_enter, repeats);
}

void lock_construct(SimTeam& team, double work, std::size_t repeats) {
  serialize(team, work, team.simulator().costs().lock_op, repeats);
}

void ordered_construct(SimTeam& team, double work, std::size_t repeats) {
  const double r = repeat_scale(repeats);
  const auto& c = team.simulator().costs();
  // Iterations release in thread order: thread i cannot start its payload
  // before thread i-1 finished (a pipeline with hand-off cost).
  std::vector<double> clocks(team.clocks().begin(), team.clocks().end());
  double prev_done = 0.0;
  for (std::size_t i = 0; i < team.size(); ++i) {
    const double start = std::max(clocks[i], prev_done) + c.ordered_wait * r;
    const double done = team.exec_at(i, start, work * r);
    clocks[i] = done;
    prev_done = done;
  }
  team.set_clocks(clocks);
  team.sync_episode(team.barrier_cost(), repeats);
}

void atomic_construct(SimTeam& team, std::size_t repeats) {
  const double r = repeat_scale(repeats);
  const auto& c = team.simulator().costs();
  const double per_thread =
      (c.atomic_op + c.atomic_contention * static_cast<double>(team.size())) *
      r;
  team.compute(per_thread);
}

void reduction_construct(SimTeam& team, double work, std::size_t repeats) {
  const double r = repeat_scale(repeats);
  const auto& c = team.simulator().costs();
  team.align_clocks(team.now() + team.fork_cost() * r);
  team.compute(work * r);
  const double combine =
      c.reduction_per_level * static_cast<double>(sim::ceil_log2(team.size()));
  team.sync_episode(combine + team.barrier_cost(), repeats);
}

}  // namespace omv::ompsim
