#include "omp_model/worksharing.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

namespace omv::ompsim {

Schedule parse_schedule(const std::string& s) {
  if (s == "static") return Schedule::static_;
  if (s == "dynamic") return Schedule::dynamic;
  if (s == "guided") return Schedule::guided;
  throw std::invalid_argument("unknown schedule '" + s + "'");
}

const char* schedule_name(Schedule s) noexcept {
  switch (s) {
    case Schedule::static_:
      return "static";
    case Schedule::dynamic:
      return "dynamic";
    case Schedule::guided:
      return "guided";
  }
  return "?";
}

std::size_t static_iters_for_thread(std::size_t i, std::size_t n_threads,
                                    std::size_t chunk,
                                    std::size_t total_iters) {
  if (chunk == 0) {
    // schedule(static) without a chunk: one near-equal block per thread.
    const std::size_t base = total_iters / n_threads;
    const std::size_t rem = total_iters % n_threads;
    return base + (i < rem ? 1 : 0);
  }
  const std::size_t n_chunks = (total_iters + chunk - 1) / chunk;
  if (n_chunks == 0) return 0;
  // Chunks i, i+T, i+2T, ...; the final chunk may be short.
  const std::size_t full = n_chunks / n_threads;
  const std::size_t rem_chunks = n_chunks % n_threads;
  std::size_t mine = full + (i < rem_chunks ? 1 : 0);
  std::size_t iters = mine * chunk;
  // The very last chunk is truncated; it belongs to thread (n_chunks-1) % T.
  const std::size_t last_owner = (n_chunks - 1) % n_threads;
  const std::size_t tail = n_chunks * chunk - total_iters;
  if (i == last_owner) iters -= tail;
  return iters;
}

namespace {

/// Greedy central-queue engine shared by dynamic and guided: repeatedly hand
/// the next chunk to the earliest-clock thread.
void central_queue_loop(SimTeam& team, std::size_t total_iters,
                        double work_per_iter, double grab_cost,
                        std::size_t first_chunk, std::size_t min_chunk,
                        bool guided, std::size_t coarsen) {
  const std::size_t n = team.size();
  using Entry = std::pair<double, std::size_t>;  // (clock, thread)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  std::vector<double> clock(n);
  for (std::size_t i = 0; i < n; ++i) {
    clock[i] = team.clock(i);
    pq.emplace(clock[i], i);
  }

  std::size_t remaining = total_iters;
  std::size_t chunk = std::max<std::size_t>(first_chunk, 1);
  while (remaining > 0) {
    auto [t, i] = pq.top();
    pq.pop();
    std::size_t grabbed_chunks = 0;
    std::size_t iters = 0;
    // Batch `coarsen` consecutive grabs by the same thread into one segment.
    while (grabbed_chunks < coarsen && remaining > 0) {
      if (guided) {
        chunk = std::max<std::size_t>(min_chunk,
                                      remaining / (2 * n));
        chunk = std::max<std::size_t>(chunk, 1);
      }
      const std::size_t take = std::min(chunk, remaining);
      iters += take;
      remaining -= take;
      ++grabbed_chunks;
    }
    const double work = static_cast<double>(iters) * work_per_iter +
                        static_cast<double>(grabbed_chunks) * grab_cost;
    const double done = team.exec_at(i, t, work);
    clock[i] = done;
    pq.emplace(done, i);
  }
  // Propagate final clocks back into the team, then the implicit barrier.
  team.set_clocks(clock);
  team.barrier();
}

}  // namespace

void for_loop(SimTeam& team, Schedule kind, std::size_t chunk,
              std::size_t total_iters, double work_per_iter,
              std::size_t coarsen) {
  const auto& costs = team.simulator().costs();
  const std::size_t n = team.size();
  coarsen = std::max<std::size_t>(coarsen, 1);

  switch (kind) {
    case Schedule::static_: {
      std::vector<double> work(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        work[i] = static_cast<double>(static_iters_for_thread(
                      i, n, chunk, total_iters)) *
                      work_per_iter +
                  costs.static_setup;
      }
      team.compute(work);
      team.barrier();
      break;
    }
    case Schedule::dynamic: {
      const double grab = costs.sched_grab_base +
                          costs.sched_grab_contention *
                              static_cast<double>(n);
      central_queue_loop(team, total_iters, work_per_iter, grab,
                         std::max<std::size_t>(chunk, 1),
                         std::max<std::size_t>(chunk, 1),
                         /*guided=*/false, coarsen);
      break;
    }
    case Schedule::guided: {
      const double grab = costs.sched_grab_base +
                          costs.sched_grab_contention *
                              static_cast<double>(n);
      // Guided already performs O(T log(iters/T)) grabs — never batch them:
      // batching would hand several exponentially-large leading chunks to
      // one thread and destroy the balance the schedule exists for.
      central_queue_loop(team, total_iters, work_per_iter, grab,
                         /*first_chunk=*/std::max<std::size_t>(
                             total_iters / (2 * n), 1),
                         /*min_chunk=*/std::max<std::size_t>(chunk, 1),
                         /*guided=*/true, /*coarsen=*/1);
      break;
    }
  }
}

}  // namespace omv::ompsim
