#pragma once
// OpenMP worksharing-loop schedulers on a simulated team.
//
// Implements the three schedule kinds of `#pragma omp for` from scratch:
//
//   * static  — chunks assigned round-robin at region entry, zero runtime
//               arbitration (chunk 0 -> thread 0, chunk 1 -> thread 1, ...).
//   * dynamic — a central chunk queue; each grab is an atomic fetch-add whose
//               cost grows with the number of contending threads. Modelled as
//               greedy list scheduling: the next chunk always goes to the
//               thread whose clock is earliest (exactly the behaviour of a
//               central queue with instantaneous arbitration order).
//   * guided  — like dynamic but the chunk size starts at remaining/T and
//               decays exponentially down to the minimum chunk size.
//
// A `coarsen` knob lets schedbench-at-scale batch c consecutive chunks into
// one simulated grab whose cost is c times the per-grab cost; the schedule
// shape (self-balancing, end-of-loop straggler) is preserved while the event
// count drops by c.

#include <cstddef>
#include <string>

#include "omp_model/team.hpp"

namespace omv::ompsim {

/// Loop schedule kinds (OpenMP 5.0 `schedule` clause).
enum class Schedule { static_, dynamic, guided };

/// Parses "static" / "dynamic" / "guided".
[[nodiscard]] Schedule parse_schedule(const std::string& s);
[[nodiscard]] const char* schedule_name(Schedule s) noexcept;

/// Runs one `#pragma omp for schedule(kind, chunk)` region over
/// `total_iters` iterations of `work_per_iter` nominal seconds each,
/// including the trailing implicit barrier.
///
/// `coarsen` >= 1 batches that many chunks per simulated grab (dynamic /
/// guided only; static needs no coarsening since it is simulated in one
/// segment per thread regardless of iteration count).
void for_loop(SimTeam& team, Schedule kind, std::size_t chunk,
              std::size_t total_iters, double work_per_iter,
              std::size_t coarsen = 1);

/// Iterations thread `i` receives under schedule(static, chunk) — exposed
/// for property tests (every iteration assigned exactly once).
[[nodiscard]] std::size_t static_iters_for_thread(std::size_t i,
                                                  std::size_t n_threads,
                                                  std::size_t chunk,
                                                  std::size_t total_iters);

}  // namespace omv::ompsim
