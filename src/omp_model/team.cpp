#include "omp_model/team.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/snapshot.hpp"

namespace omv::ompsim {
namespace {

sim::PlacementModel make_placement(sim::Simulator& simulator,
                                   const TeamConfig& cfg,
                                   std::uint64_t seed) {
  const auto& machine = simulator.machine();
  if (cfg.n_threads == 0) {
    throw std::invalid_argument("SimTeam: zero threads");
  }
  if (cfg.n_threads > machine.n_threads()) {
    throw std::invalid_argument(
        "SimTeam: more OpenMP threads than hardware threads");
  }
  const std::string spec =
      cfg.places_spec.empty() ? std::string("threads") : cfg.places_spec;
  const auto places = topo::parse_places(spec, machine);
  auto affinities = topo::thread_affinities(cfg.n_threads, places, cfg.bind,
                                            machine);
  const bool pinned = cfg.bind != topo::ProcBind::none;
  return sim::PlacementModel(machine, std::move(affinities), pinned,
                             cfg.placement, seed);
}

}  // namespace

SimTeam::SimTeam(sim::Simulator& simulator, TeamConfig cfg, std::uint64_t seed)
    : sim_(simulator),
      cfg_(std::move(cfg)),
      seed_(seed),
      placement_model_(make_placement(simulator, cfg_, seed)),
      clocks_(cfg_.n_threads, 0.0) {}

void SimTeam::rebuild_placement(std::uint64_t seed) {
  placement_model_ = make_placement(sim_, cfg_, seed);
}

void SimTeam::begin_run(std::uint64_t run_seed) {
  rebuild_placement(run_seed);
  sim_.begin_run(run_seed, placement_model_.busy_set());
  sim_.freq().set_activity_domains(numa_span());
  sim_.freq().set_load_fraction(
      static_cast<double>(placement_model_.busy_set().count()) /
      static_cast<double>(sim_.machine().n_threads()));
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
}

void SimTeam::begin_rep() {
  const auto& pl = placement_model_.next_rep();
  sim_.noise().set_busy(placement_model_.busy_set());

  const double t = now() + cfg_.inter_rep_gap;
  align_clocks(t);
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    if (pl.migrated[i]) clocks_[i] += sim_.costs().migration_cost;
  }
}

double SimTeam::now() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

void SimTeam::align_clocks(double t) {
  std::fill(clocks_.begin(), clocks_.end(), t);
}

void SimTeam::set_clocks(std::span<const double> t) {
  if (t.size() != clocks_.size()) {
    throw std::invalid_argument("SimTeam::set_clocks: size mismatch");
  }
  std::copy(t.begin(), t.end(), clocks_.begin());
}

std::size_t SimTeam::count_span(std::size_t (topo::HwThread::*domain)) const {
  // barrier_cost() runs once per synchronization episode — use a reusable
  // scratch bitmap (epoch-tagged so it never needs clearing) instead of
  // allocating a vector<bool> per call.
  const auto& pl = placement_model_.current();
  const std::size_t n_domains =
      std::max(sim_.machine().n_numa(), sim_.machine().n_sockets());
  if (span_scratch_.size() < n_domains) span_scratch_.resize(n_domains, 0);
  if (++span_epoch_ == 0) {  // epoch wrap: stale tags could alias — reset
    std::fill(span_scratch_.begin(), span_scratch_.end(), 0);
    span_epoch_ = 1;
  }
  std::size_t n = 0;
  for (std::size_t h : pl.hw) {
    const std::size_t d = sim_.machine().thread(h).*domain;
    if (span_scratch_[d] != span_epoch_) {
      span_scratch_[d] = span_epoch_;
      ++n;
    }
  }
  return n;
}

std::size_t SimTeam::numa_span() const {
  return count_span(&topo::HwThread::numa);
}

std::size_t SimTeam::socket_span() const {
  return count_span(&topo::HwThread::socket);
}

double SimTeam::barrier_cost() const {
  const auto& c = sim_.costs();
  const std::size_t t = size();
  double cost = 0.0;
  switch (cfg_.barrier_alg) {
    case BarrierAlgorithm::tree:
      cost = c.barrier_base +
             c.barrier_per_level * static_cast<double>(sim::ceil_log2(t));
      break;
    case BarrierAlgorithm::centralized:
      cost = c.barrier_base +
             c.barrier_central_per_thread * static_cast<double>(t);
      break;
  }
  cost += c.barrier_numa_step * static_cast<double>(numa_span() - 1);
  cost += c.barrier_socket_step * static_cast<double>(socket_span() - 1);
  return cost;
}

bool SimTeam::any_smt_coscheduled() const {
  const auto& pl = placement_model_.current();
  for (bool b : pl.smt_coscheduled) {
    if (b) return true;
  }
  return false;
}

void SimTeam::sync_episode(double base_cost, std::size_t repeats) {
  const auto& c = sim_.costs();
  const auto& pl = placement_model_.current();
  const double r = static_cast<double>(std::max<std::size_t>(repeats, 1));

  // Oversubscribed threads wait out scheduler timeslices before the episode
  // completes — once per episode instance. Sample a bounded number of draws
  // and scale, so batching many instances stays cheap but keeps the tail.
  const double mu_log =
      std::log(std::max(c.oversub_stall_mean, 1e-9)) -
      0.5 * c.oversub_stall_sigma * c.oversub_stall_sigma;
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    if (pl.share[i] <= 1) continue;
    const std::size_t draws =
        std::min<std::size_t>(std::max<std::size_t>(repeats, 1), 8);
    double stall = 0.0;
    for (std::size_t k = 0; k < draws; ++k) {
      stall += sim_.rng().lognormal(mu_log, c.oversub_stall_sigma);
    }
    clocks_[i] += stall * (r / static_cast<double>(draws));
  }

  // SMT co-scheduled teams synchronize slower and with high variance.
  double cost = base_cost;
  if (any_smt_coscheduled()) {
    const double extra =
        std::abs(sim_.rng().normal(c.smt_sync_overhead, c.smt_sync_jitter));
    cost *= 1.0 + extra;
  }
  align_clocks(now() + cost * r);
}

void SimTeam::barrier() { sync_episode(barrier_cost(), 1); }

double SimTeam::fork_cost() const {
  const auto& c = sim_.costs();
  return c.fork_base + c.fork_per_thread * static_cast<double>(size());
}

void SimTeam::fork() {
  // The primary thread wakes the team from the team's current frontier.
  align_clocks(now() + fork_cost());
}

void SimTeam::join() { barrier(); }

double SimTeam::exec_at(std::size_t i, double t, double work) {
  const auto& pl = placement_model_.current();
  return sim_.exec(pl.hw[i], t, work, pl.share[i], pl.smt_coscheduled[i]);
}

void SimTeam::compute_one(std::size_t i, double work) {
  clocks_[i] = exec_at(i, clocks_[i], work);
}

void SimTeam::compute(double work) {
  sim_.exec_batch(placement_model_.current(), work, clocks_);
}

void SimTeam::compute(std::span<const double> work) {
  if (work.size() != clocks_.size()) {
    throw std::invalid_argument("SimTeam::compute: work span size mismatch");
  }
  sim_.exec_batch(placement_model_.current(), work, clocks_);
}

void SimTeam::compute_loop(double work) {
  for (std::size_t i = 0; i < clocks_.size(); ++i) compute_one(i, work);
}

void SimTeam::compute_loop(std::span<const double> work) {
  if (work.size() != clocks_.size()) {
    throw std::invalid_argument(
        "SimTeam::compute_loop: work span size mismatch");
  }
  for (std::size_t i = 0; i < clocks_.size(); ++i) compute_one(i, work[i]);
}

void SimTeam::capture(snap::SnapshotWriter& w) {
  sim_.capture(w);
  w.field_u64("team.n_threads", clocks_.size());
  snap::Capture v(w);
  v.object("team", *this);
}

void SimTeam::restore(snap::SnapshotReader& r) {
  sim_.restore(r);
  r.expect_u64("team.n_threads", clocks_.size(), "team size");
  snap::Restore v(r);
  v.object("team", *this);
  // The placement vectors are restored verbatim; their lengths must match
  // the team the snapshot was taken from.
  const auto& pl = placement_model_.current();
  if (pl.hw.size() != clocks_.size() || pl.share.size() != clocks_.size() ||
      pl.smt_coscheduled.size() != clocks_.size() ||
      pl.migrated.size() != clocks_.size() ||
      pl.data_domain.size() != clocks_.size()) {
    r.fail_here(r.offset(), "restored placement does not match team size");
  }
}

void SimTeam::fork_streams(std::uint64_t salt) {
  sim_.fork_streams(salt);
  placement_model_.fork_streams(salt);
}

}  // namespace omv::ompsim
