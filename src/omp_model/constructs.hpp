#pragma once
// Simulated OpenMP synchronization constructs (syncbench's subjects), built
// on SimTeam's clock primitives. Each function models one construct instance
// executed by the whole team, with `work` nominal compute seconds of payload
// per participating thread (the EPCC delay).

#include <cstddef>

#include "omp_model/team.hpp"

namespace omv::ompsim {

/// `#pragma omp parallel { delay(work); }` — fork, payload, join.
/// `repeats` batches that many consecutive instances into one phase
/// (deterministic costs are multiplied; one barrier-max per batch).
void parallel_region(SimTeam& team, double work, std::size_t repeats = 1);

/// Payload inside an open region followed by `#pragma omp barrier`.
void barrier_construct(SimTeam& team, double work, std::size_t repeats = 1);

/// `#pragma omp for` with static schedule over exactly one iteration per
/// thread (syncbench's FOR microbenchmark) inside an open region.
void for_construct(SimTeam& team, double work, std::size_t repeats = 1);

/// `#pragma omp single { delay(work); }` — one winner does the payload,
/// everyone synchronizes.
void single_construct(SimTeam& team, double work, std::size_t repeats = 1);

/// `#pragma omp critical { delay(work); }` executed once per thread —
/// full serialization in arrival order.
void critical_construct(SimTeam& team, double work, std::size_t repeats = 1);

/// omp_set_lock / delay / omp_unset_lock once per thread.
void lock_construct(SimTeam& team, double work, std::size_t repeats = 1);

/// `#pragma omp for ordered` — iterations hand off in thread order.
void ordered_construct(SimTeam& team, double work, std::size_t repeats = 1);

/// One atomic RMW per thread (contention scales with team size).
void atomic_construct(SimTeam& team, std::size_t repeats = 1);

/// `#pragma omp parallel reduction(+:x) { delay(work); x += ...; }` —
/// fork, payload, tree combine, join. The paper's most expensive
/// synchronization microbenchmark.
void reduction_construct(SimTeam& team, double work, std::size_t repeats = 1);

}  // namespace omv::ompsim
