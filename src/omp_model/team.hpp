#pragma once
// SimTeam — a simulated OpenMP thread team executing on the multicore
// simulator in lockstep phases.
//
// The team owns one clock per OpenMP thread. Construct methods advance the
// clocks through compute segments (Simulator::exec folds in frequency,
// SMT, oversubscription and OS-noise effects) and synchronization points
// (barriers advance every clock to the slowest arrival plus the barrier
// cost — the noise-amplification mechanism at the heart of the paper).
//
// Thread placement comes from the same OMP_PLACES / OMP_PROC_BIND
// implementation the native backend uses; unpinned teams are re-placed by
// the OS model between repetitions.

#include <cstdint>
#include <span>
#include <vector>

#include "sim/os_placement.hpp"
#include "sim/simulator.hpp"
#include "topo/places.hpp"
#include "topo/proc_bind.hpp"

namespace omv::ompsim {

/// Barrier algorithm — an ablatable design choice.
enum class BarrierAlgorithm {
  tree,         ///< log-depth gather/release (production runtimes).
  centralized,  ///< single counter, linear contention.
};

/// Team configuration.
struct TeamConfig {
  std::size_t n_threads = 4;
  /// OMP_PLACES specification, parsed against the simulator's machine.
  /// Empty string = "threads".
  std::string places_spec = "threads";
  topo::ProcBind bind = topo::ProcBind::close;
  BarrierAlgorithm barrier_alg = BarrierAlgorithm::tree;
  sim::PlacementConfig placement;  ///< unpinned OS behaviour.
  /// Wall-clock gap between repetitions (benchmark setup, statistics,
  /// output — everything outside the timed region; EPCC spends far more
  /// wall time around a 1 ms timed section than inside it). Simulated time
  /// advances by this much at every begin_rep, which is what exposes short
  /// timed regions to second-scale background processes such as frequency
  /// dip episodes (the paper's Figs. 6/7 couple the two via wall time).
  double inter_rep_gap = 50e-3;
};

/// A simulated OpenMP team.
class SimTeam {
 public:
  /// Builds a team on `simulator`. Throws if the config asks for more
  /// threads than the machine has HW threads (matching OMP_NUM_THREADS
  /// oversubscription being out of the paper's scope).
  SimTeam(sim::Simulator& simulator, TeamConfig cfg, std::uint64_t seed = 1);

  /// Starts a fresh run: re-seeds simulator models, resets placement and
  /// clocks to zero.
  void begin_run(std::uint64_t run_seed);

  /// Starts a repetition: applies OS migrations (unpinned), charges
  /// migration penalties, refreshes the noise model's busy set, and aligns
  /// all clocks (threads wait on the team before a timed region).
  void begin_rep();

  // --- Phase primitives -------------------------------------------------

  /// Parallel-region fork: primary wakes the team (cost grows with size);
  /// all clocks start at the fork completion.
  void fork();

  /// Parallel-region join: implicit barrier.
  void join();

  /// Every thread computes `work` nominal seconds (heterogeneity via span).
  /// Advances all thread clocks through one batched simulator call
  /// (Simulator::exec_batch) — bit-identical to the per-thread loop below
  /// on every ISA.
  void compute(double work);
  void compute(std::span<const double> work);
  void compute(std::initializer_list<double> work) {
    compute(std::span<const double>(work.begin(), work.size()));
  }

  /// Per-thread reference implementation of compute() — one exec() call per
  /// thread. Retained as the differential baseline the batched phase is
  /// pinned against (tests/test_team_batch.cpp) and timed against
  /// (perf_hotpath's team_compute_phase kernel).
  void compute_loop(double work);
  void compute_loop(std::span<const double> work);

  /// Explicit barrier.
  void barrier();

  /// Advances thread `i`'s clock through `work` nominal compute seconds.
  void compute_one(std::size_t i, double work);

  // --- Clock access ------------------------------------------------------

  [[nodiscard]] std::size_t size() const noexcept { return clocks_.size(); }
  [[nodiscard]] double clock(std::size_t i) const { return clocks_.at(i); }
  [[nodiscard]] std::span<const double> clocks() const noexcept {
    return clocks_;
  }
  /// Latest clock (the team's frontier).
  [[nodiscard]] double now() const;
  /// Sets every clock to `t` (used by the EPCC timed-section boundaries).
  void align_clocks(double t);

  /// Overwrites all clocks (used by the worksharing schedulers, which
  /// advance thread clocks through exec_at themselves).
  void set_clocks(std::span<const double> t);

  /// Current placement (HW thread, share, SMT state per thread).
  [[nodiscard]] const sim::Placement& placement() const {
    return placement_model_.current();
  }

  /// Deterministic barrier cost for the current team span (exposed for
  /// tests/ablation; excludes SMT sync jitter and oversubscription stalls).
  [[nodiscard]] double barrier_cost() const;

  /// Fork cost for the current team size (deterministic part).
  [[nodiscard]] double fork_cost() const;

  /// Synchronization episode: charges oversubscribed threads their
  /// scheduler stalls, applies the SMT sync-overhead factor to `base_cost`,
  /// then aligns all clocks to max + cost. `repeats` batches that many
  /// consecutive episodes (costs and stalls scale accordingly).
  void sync_episode(double base_cost, std::size_t repeats = 1);

  /// True when any team thread is SMT co-scheduled with another.
  [[nodiscard]] bool any_smt_coscheduled() const;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const TeamConfig& config() const noexcept { return cfg_; }

  /// Executes `work` on thread i starting at time t, returning completion
  /// (applies this thread's share/SMT state). Exposed for the worksharing
  /// schedulers.
  [[nodiscard]] double exec_at(std::size_t i, double t, double work);

  /// Serializes the team's run state (clocks, placement) and the underlying
  /// simulator into `w`. Together with `restore` this round-trips a run
  /// mid-protocol bit-identically.
  void capture(snap::SnapshotWriter& w);

  /// Restores state captured by `capture`. Throws snap::SnapshotError on
  /// any mismatch (including a team-size mismatch).
  void restore(snap::SnapshotReader& r);

  /// Re-derives independent RNG sub-streams (simulator models + placement)
  /// keyed by `salt`, for warm-started forks of a restored snapshot.
  void fork_streams(std::uint64_t salt);

 private:
  friend class snap::Capture;
  friend class snap::Restore;

  /// Single field enumeration driving both snapshot directions (team-owned
  /// columns; the simulator serializes itself separately in capture()).
  template <typename V>
  void snapshot_fields(V& v) {
    v.field("clocks", clocks_);
    v.object("placement", placement_model_);
  }

  void rebuild_placement(std::uint64_t seed);
  /// Distinct values of the given HwThread domain field across the team's
  /// current placement (shared engine of numa_span / socket_span).
  [[nodiscard]] std::size_t count_span(
      std::size_t(topo::HwThread::*domain)) const;
  [[nodiscard]] std::size_t numa_span() const;
  [[nodiscard]] std::size_t socket_span() const;

  sim::Simulator& sim_;
  TeamConfig cfg_;
  std::uint64_t seed_;
  sim::PlacementModel placement_model_;
  std::vector<double> clocks_;
  /// Epoch-tagged scratch for count_span (mutable: spans are logically
  /// const queries; the scratch is pure memoization space).
  mutable std::vector<std::uint32_t> span_scratch_;
  mutable std::uint32_t span_epoch_ = 0;
};

}  // namespace omv::ompsim
