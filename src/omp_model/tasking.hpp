#pragma once
// Simulated OpenMP tasking (EPCC taskbench subset).
//
// The paper's future work points at larger OpenMP applications; task-based
// codes are the next step beyond worksharing loops. This models the two
// canonical EPCC task micro-benchmarks:
//
//  * parallel_task_generation — every thread creates its own tasks
//    (`#pragma omp task` inside `parallel`), contending on the task pool;
//  * master_task_generation — one producer creates all tasks, the rest
//    steal (the classic single-producer bottleneck).
//
// Cost model: task creation is an allocation + enqueue (contended like an
// atomic), execution adds a dequeue/steal cost; the run ends with a
// taskwait barrier. Noise/frequency effects apply through SimTeam::exec_at
// exactly as for loops, so tasking inherits every variability mechanism.

#include <cstddef>

#include "omp_model/team.hpp"

namespace omv::ompsim {

/// Tasking cost knobs (seconds); defaults sized like the loop-scheduling
/// constants in CostModel.
struct TaskCosts {
  double create = 0.35e-6;       ///< uncontended task creation.
  double create_contention = 6e-9;  ///< extra per contending producer.
  double dequeue = 0.10e-6;      ///< pop from own queue.
  double steal = 0.45e-6;        ///< steal from another queue.
};

/// Every thread creates `tasks_per_thread` tasks of `work` seconds each and
/// the team executes them to completion (work-sharing of the pool is
/// self-balancing like dynamic scheduling). Ends with a taskwait barrier.
void parallel_task_generation(SimTeam& team, std::size_t tasks_per_thread,
                              double work, const TaskCosts& costs = {});

/// Thread 0 creates `total_tasks` tasks; all threads execute them (workers
/// pay the steal cost, the producer pays creation serially). Ends with a
/// taskwait barrier. The producer is the bottleneck at scale — the shape
/// EPCC taskbench's MASTER TASK pattern shows.
void master_task_generation(SimTeam& team, std::size_t total_tasks,
                            double work, const TaskCosts& costs = {});

}  // namespace omv::ompsim
