#include "omp_model/tasking.hpp"

#include <algorithm>
#include <queue>
#include <vector>

namespace omv::ompsim {

void parallel_task_generation(SimTeam& team, std::size_t tasks_per_thread,
                              double work, const TaskCosts& costs) {
  const std::size_t n = team.size();
  const double create =
      costs.create + costs.create_contention * static_cast<double>(n);
  // Phase 1: every thread creates its tasks (parallel, contended).
  team.compute(static_cast<double>(tasks_per_thread) * create);
  // Phase 2: execution is self-balancing (own queue first, then steals).
  // Model as a central pool drained greedily: per-task cost = work +
  // dequeue (own) with the tail of the pool costing steals.
  const std::size_t total = tasks_per_thread * n;
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  std::vector<double> clock(n);
  for (std::size_t i = 0; i < n; ++i) {
    clock[i] = team.clock(i);
    pq.emplace(clock[i], i);
  }
  std::size_t remaining = total;
  std::size_t own_budget = tasks_per_thread;  // first own tasks are cheap
  std::vector<std::size_t> own(n, own_budget);
  while (remaining > 0) {
    auto [t, i] = pq.top();
    pq.pop();
    const double overhead = own[i] > 0 ? costs.dequeue : costs.steal;
    if (own[i] > 0) --own[i];
    const double done = team.exec_at(i, t, work + overhead);
    clock[i] = done;
    pq.emplace(done, i);
    --remaining;
  }
  team.set_clocks(clock);
  team.barrier();  // taskwait
}

void master_task_generation(SimTeam& team, std::size_t total_tasks,
                            double work, const TaskCosts& costs) {
  const std::size_t n = team.size();
  // The producer emits tasks serially; consumers (including the producer
  // once it finishes producing) execute them, paying the steal cost.
  std::vector<double> clock(team.clocks().begin(), team.clocks().end());
  std::vector<double> ready_at(total_tasks, 0.0);
  {
    double t = clock[0];
    for (std::size_t k = 0; k < total_tasks; ++k) {
      t += costs.create;  // single producer: no contention term
      ready_at[k] = t;
    }
    clock[0] = t;
  }
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (std::size_t i = 0; i < n; ++i) pq.emplace(clock[i], i);
  for (std::size_t k = 0; k < total_tasks; ++k) {
    auto [t, i] = pq.top();
    pq.pop();
    const double start = std::max(t, ready_at[k]);
    const double done = team.exec_at(i, start + costs.steal, work);
    clock[i] = done;
    pq.emplace(done, i);
  }
  team.set_clocks(clock);
  team.barrier();  // taskwait
}

}  // namespace omv::ompsim
