#include "bench_suite/schedbench_sim.hpp"

#include <algorithm>

#include "bench_suite/protocol.hpp"

namespace omv::bench {

SimSchedBench::SimSchedBench(sim::Simulator& simulator,
                             ompsim::TeamConfig team_cfg, EpccParams params,
                             std::size_t max_grabs_per_rep)
    : sim_(&simulator),
      team_cfg_(std::move(team_cfg)),
      params_(params),
      max_grabs_(std::max<std::size_t>(max_grabs_per_rep, 100)) {}

std::size_t SimSchedBench::coarsen_for(std::size_t chunk) const {
  chunk = std::max<std::size_t>(chunk, 1);
  const std::size_t total_iters = team_cfg_.n_threads * params_.itersperthr;
  const std::size_t total_chunks = (total_iters + chunk - 1) / chunk;
  return std::max<std::size_t>(1, total_chunks / max_grabs_);
}

double SimSchedBench::rep_time_us(ompsim::SimTeam& team,
                                  ompsim::Schedule kind, std::size_t chunk) {
  team.begin_rep();
  const double t0 = team.now();
  const std::size_t total_iters = team.size() * params_.itersperthr;
  const double work_per_iter = params_.delay_us * 1e-6;
  ompsim::for_loop(team, kind, chunk, total_iters, work_per_iter,
                   coarsen_for(chunk));
  return (team.now() - t0) * 1e6;
}

RunMatrix SimSchedBench::run_protocol(ompsim::Schedule kind, std::size_t chunk,
                                      const ExperimentSpec& spec) {
  ompsim::SimTeam team(*sim_, team_cfg_, spec.seed);
  RunHooks hooks;
  hooks.before_run = [&](std::size_t, std::uint64_t run_seed) {
    team.begin_run(run_seed);
  };
  return run_experiment(
      spec, [&](const RepContext&) { return rep_time_us(team, kind, chunk); },
      hooks);
}

RunMatrix SimSchedBench::run_protocol(ompsim::Schedule kind, std::size_t chunk,
                                      const ExperimentSpec& spec,
                                      std::size_t jobs,
                                      const snap::CheckpointPolicy* ckpt) {
  return run_protocol_sharded(
      *sim_, team_cfg_, spec, jobs,
      [team_cfg = team_cfg_, params = params_,
       max_grabs = max_grabs_](sim::Simulator& sim) {
        return SimSchedBench(sim, team_cfg, params, max_grabs);
      },
      [kind, chunk](SimSchedBench& bench, ompsim::SimTeam& team) {
        return bench.rep_time_us(team, kind, chunk);
      },
      NoRunEndHook{}, ckpt);
}

}  // namespace omv::bench
