#pragma once
// Fixed-Time-Quantum (FTQ) noise probe.
//
// The classic OS-noise measurement (Sottile & Minnich): repeatedly count
// how much fixed-size work completes inside fixed wall-clock quanta; a
// quantum robbed by a daemon/interrupt completes less work. This is the
// direct-measurement companion to the paper's statistical approach and the
// tool for "pinpointing the exact sources of OS noise" (its future work):
// the per-quantum deficit series feeds the autocorrelation detector to
// recover periodic sources.
//
// Two backends: native (spin work on this host, optionally pinned) and
// simulated (samples the simulator's noise model on a chosen HW thread).

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"
#include "topo/cpuset.hpp"

namespace omv::bench {

/// One FTQ sample: work completed within one quantum.
struct FtqSample {
  double start_s = 0.0;  ///< quantum start (relative).
  double work = 0.0;     ///< work units completed (native: loop iterations).
};

/// Noise metrics derived from an FTQ trace.
struct FtqReport {
  double mean_work = 0.0;
  double max_work = 0.0;  ///< best (least disturbed) quantum.
  /// Fraction of aggregate work lost to noise: 1 - mean/max.
  double noise_fraction = 0.0;
  /// Fraction of quanta that lost more than 10% of the best work.
  double disturbed_quanta = 0.0;
};

/// Computes the report from raw samples.
[[nodiscard]] FtqReport analyze_ftq(const std::vector<FtqSample>& samples);

/// Runs FTQ natively: `quanta` quanta of `quantum_s` seconds each, spinning
/// a calibrated work loop, optionally pinned to `cpu`.
[[nodiscard]] std::vector<FtqSample> run_ftq_native(
    std::size_t quanta, double quantum_s,
    std::optional<std::size_t> cpu = std::nullopt);

/// Runs FTQ against the simulator: on HW thread `hw`, starting at simulated
/// time `t0`, using the simulator's noise model. Work units are seconds of
/// undisturbed compute. Deterministic.
[[nodiscard]] std::vector<FtqSample> run_ftq_sim(sim::Simulator& simulator,
                                                 std::size_t hw, double t0,
                                                 std::size_t quanta,
                                                 double quantum_s);

/// Per-quantum *deficit* series (max - work), the input for periodic-noise
/// detection via stats::dominant_period.
[[nodiscard]] std::vector<double> ftq_deficits(
    const std::vector<FtqSample>& samples);

}  // namespace omv::bench
