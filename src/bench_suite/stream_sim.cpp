#include "bench_suite/stream_sim.hpp"

#include <algorithm>
#include <cmath>

#include "bench_suite/protocol.hpp"

namespace omv::bench {

const char* stream_kernel_name(StreamKernel k) noexcept {
  switch (k) {
    case StreamKernel::copy:
      return "copy";
    case StreamKernel::mul:
      return "mul";
    case StreamKernel::add:
      return "add";
    case StreamKernel::triad:
      return "triad";
    case StreamKernel::dot:
      return "dot";
  }
  return "?";
}

const std::array<StreamKernel, 5>& all_stream_kernels() noexcept {
  static const std::array<StreamKernel, 5> kAll = {
      StreamKernel::copy, StreamKernel::mul, StreamKernel::add,
      StreamKernel::triad, StreamKernel::dot};
  return kAll;
}

double stream_bytes_per_elem(StreamKernel k) noexcept {
  switch (k) {
    case StreamKernel::copy:
    case StreamKernel::mul:
    case StreamKernel::dot:
      return 16.0;  // one read stream + one write (or second read) stream.
    case StreamKernel::add:
    case StreamKernel::triad:
      return 24.0;  // two reads + one write.
  }
  return 16.0;
}

SimStream::SimStream(sim::Simulator& simulator, ompsim::TeamConfig team_cfg,
                     std::size_t array_elems, double smt_stream_penalty)
    : sim_(&simulator),
      team_cfg_(std::move(team_cfg)),
      array_elems_(array_elems),
      smt_penalty_(smt_stream_penalty) {}

double SimStream::kernel_time_s(ompsim::SimTeam& team, StreamKernel k) {
  team.begin_rep();
  const double t0 = team.now();
  const auto& pl = team.placement();
  const std::size_t n = team.size();

  const double total_bytes =
      static_cast<double>(array_elems_) * stream_bytes_per_elem(k);
  const double bytes_per_thread = total_bytes / static_cast<double>(n);

  // Per-phase bandwidth jitter (row-buffer/prefetcher luck).
  std::vector<double> jitter(n, 1.0);
  const double sig = sim_->memory().config().jitter_sigma_log;
  if (sig > 0.0) {
    for (auto& j : jitter) {
      j = std::exp(sim_->rng().normal(-0.5 * sig * sig, sig));
    }
  }
  auto base = sim_->memory().phase_times(pl.hw, pl.data_domain,
                                         bytes_per_thread, jitter);

  // Oversubscription serializes the streams on one HW thread; SMT
  // co-scheduling costs a small constant factor (bandwidth-bound work is
  // largely SMT-neutral).
  std::vector<double> clocks(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double d = base[i] * static_cast<double>(pl.share[i]);
    if (pl.smt_coscheduled[i]) d *= smt_penalty_;
    // OS noise extends the phase (fixed-point as in Simulator::exec).
    const double start = t0;
    for (int iter = 0; iter < 6; ++iter) {
      const double delay =
          sim_->noise().preemption_delay(pl.hw[i], start, start + d);
      const double nd = base[i] * static_cast<double>(pl.share[i]) *
                            (pl.smt_coscheduled[i] ? smt_penalty_ : 1.0) +
                        delay;
      if (nd <= d + 1e-12) {
        d = nd;
        break;
      }
      d = nd;
    }
    clocks[i] = t0 + d;
  }
  team.set_clocks(clocks);
  if (k == StreamKernel::dot) {
    const double combine =
        sim_->costs().reduction_per_level *
        static_cast<double>(sim::ceil_log2(team.size()));
    team.align_clocks(team.now() + combine);
  }
  team.barrier();
  return team.now() - t0;
}

StreamRunResult SimStream::run_kernel(ompsim::SimTeam& team, StreamKernel k,
                                      std::size_t reps) {
  StreamRunResult r;
  if (reps == 0) return r;
  double sum = 0.0;
  r.min_s = 1e300;
  r.max_s = 0.0;
  for (std::size_t i = 0; i < reps; ++i) {
    const double t = kernel_time_s(team, k);
    sum += t;
    r.min_s = std::min(r.min_s, t);
    r.max_s = std::max(r.max_s, t);
  }
  r.avg_s = sum / static_cast<double>(reps);
  return r;
}

RunMatrix SimStream::run_protocol(StreamKernel k, const ExperimentSpec& spec) {
  ompsim::SimTeam team(*sim_, team_cfg_, spec.seed);
  RunHooks hooks;
  hooks.before_run = [&](std::size_t, std::uint64_t run_seed) {
    team.begin_run(run_seed);
  };
  return run_experiment(
      spec,
      [&](const RepContext&) { return kernel_time_s(team, k) * 1e3; },
      hooks);
}

RunMatrix SimStream::run_protocol(StreamKernel k, const ExperimentSpec& spec,
                                  std::size_t jobs,
                                  const snap::CheckpointPolicy* ckpt) {
  return run_protocol_sharded(
      *sim_, team_cfg_, spec, jobs,
      [team_cfg = team_cfg_, elems = array_elems_,
       smt_penalty = smt_penalty_](sim::Simulator& sim) {
        return SimStream(sim, team_cfg, elems, smt_penalty);
      },
      [k](SimStream& bench, ompsim::SimTeam& team) {
        return bench.kernel_time_s(team, k) * 1e3;
      },
      NoRunEndHook{}, ckpt);
}

}  // namespace omv::bench
