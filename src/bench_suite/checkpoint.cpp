#include "bench_suite/checkpoint.hpp"

#include <filesystem>

namespace omv::bench {

std::string capture_run_state(ompsim::SimTeam& team) {
  snap::SnapshotWriter w;
  team.capture(w);
  return w.take();
}

void restore_run_state(const std::string& blob, const std::string& origin,
                       ompsim::SimTeam& team) {
  snap::SnapshotReader r(blob, origin);
  team.restore(r);
  r.expect_end();
}

std::optional<LoadedCheckpoint> load_cell_checkpoint(
    const snap::CheckpointPolicy& pol) {
  if (pol.resume_from.empty()) return std::nullopt;
  const std::string bytes = snap::load_snapshot_file(pol.resume_from);
  snap::SnapshotReader r(bytes, pol.resume_from);
  LoadedCheckpoint out;
  out.stamp = snap::read_stamp(r, &pol.stamp);
  const std::uint64_t completed = r.field_u64("completed_runs");
  out.done_times.reserve(completed);
  out.done_states.reserve(completed);
  for (std::uint64_t i = 0; i < completed; ++i) {
    const std::string p = "run" + std::to_string(i);
    out.done_times.push_back(r.field_vec_f64(p + ".times"));
    out.done_states.push_back(r.field_bytes(p + ".state"));
  }
  out.partial = r.field_vec_f64("partial");
  out.current_state = r.field_bytes("current");
  r.expect_end();
  return out;
}

void write_cell_checkpoint(const snap::CheckpointPolicy& pol,
                           std::uint64_t run, std::uint64_t rep,
                           const std::vector<std::vector<double>>& done_times,
                           const std::vector<std::string>& done_states,
                           const std::vector<double>& partial,
                           const std::string& current_state) {
  snap::SnapshotWriter w;
  snap::SnapshotStamp stamp = pol.stamp;
  stamp.run = run;
  stamp.rep = rep;
  snap::write_stamp(w, stamp);
  w.field_u64("completed_runs", done_times.size());
  for (std::size_t i = 0; i < done_times.size(); ++i) {
    const std::string p = "run" + std::to_string(i);
    w.field_vec_f64(p + ".times", done_times[i]);
    w.field_bytes(p + ".state", done_states[i]);
  }
  w.field_vec_f64("partial", partial);
  w.field_bytes("current", current_state);
  snap::save_snapshot_file(pol.path, w.take());
  snap::note_checkpoint_write();
  if (pol.stop_after > 0 && snap::checkpoint_writes() >= pol.stop_after) {
    throw snap::CheckpointStop(
        "checkpoint stop: wrote checkpoint " + std::to_string(run) + ":" +
        std::to_string(rep) + " to " + pol.path +
        " and the configured stop-after limit was reached");
  }
}

void clear_cell_checkpoint(const snap::CheckpointPolicy& pol) {
  std::error_code ec;
  std::filesystem::remove(pol.path, ec);
}

}  // namespace omv::bench
