#include "bench_suite/syncbench_sim.hpp"

#include <algorithm>

#include "bench_suite/protocol.hpp"

namespace omv::bench {

SimSyncBench::SimSyncBench(sim::Simulator& simulator,
                           ompsim::TeamConfig team_cfg, EpccParams params,
                           std::size_t groups)
    : sim_(&simulator),
      team_cfg_(std::move(team_cfg)),
      params_(params),
      groups_(std::max<std::size_t>(groups, 1)) {}

double SimSyncBench::ideal_instance_us(SyncConstruct c) const {
  const auto& cm = sim_->costs();
  const double t = static_cast<double>(team_cfg_.n_threads);
  const double levels =
      static_cast<double>(sim::ceil_log2(team_cfg_.n_threads));
  const double delay_s = params_.delay_us * 1e-6 * cm.work_scale;
  // Approximate topology span (worst case: close packing fills domains in
  // order; span grows with T). Use machine geometry.
  const auto& m = sim_->machine();
  const std::size_t threads_per_numa =
      std::max<std::size_t>(1, m.n_threads() / m.n_numa());
  const std::size_t numa_span = std::min<std::size_t>(
      m.n_numa(),
      (team_cfg_.n_threads + threads_per_numa - 1) / threads_per_numa);
  const std::size_t threads_per_socket =
      std::max<std::size_t>(1, m.n_threads() / m.n_sockets());
  const std::size_t socket_span = std::min<std::size_t>(
      m.n_sockets(),
      (team_cfg_.n_threads + threads_per_socket - 1) / threads_per_socket);
  const double barrier =
      cm.barrier_base + cm.barrier_per_level * levels +
      cm.barrier_numa_step * static_cast<double>(numa_span - 1) +
      cm.barrier_socket_step * static_cast<double>(socket_span - 1);
  const double fork = cm.fork_base + cm.fork_per_thread * t;

  double s = 0.0;
  switch (c) {
    case SyncConstruct::parallel:
      s = fork + delay_s + barrier;
      break;
    case SyncConstruct::for_:
      s = cm.static_setup + delay_s + barrier;
      break;
    case SyncConstruct::barrier:
      s = delay_s + barrier;
      break;
    case SyncConstruct::single:
      s = cm.single_arbitration + delay_s + barrier;
      break;
    case SyncConstruct::critical:
      s = (cm.critical_enter + delay_s) * t;
      break;
    case SyncConstruct::lock:
      s = (cm.lock_op + delay_s) * t;
      break;
    case SyncConstruct::ordered:
      s = (cm.ordered_wait + delay_s) * t + barrier;
      break;
    case SyncConstruct::atomic:
      s = cm.atomic_op + cm.atomic_contention * t;
      break;
    case SyncConstruct::reduction:
      s = fork + delay_s + cm.reduction_per_level * levels + barrier;
      break;
  }
  return s * 1e6;
}

std::size_t SimSyncBench::innerreps(SyncConstruct c) const {
  return calibrate_innerreps(ideal_instance_us(c), params_.test_time_us);
}

void SimSyncBench::dispatch(ompsim::SimTeam& team, SyncConstruct c,
                            double work_s, std::size_t repeats) {
  using namespace ompsim;
  switch (c) {
    case SyncConstruct::parallel:
      parallel_region(team, work_s, repeats);
      break;
    case SyncConstruct::for_:
      for_construct(team, work_s, repeats);
      break;
    case SyncConstruct::barrier:
      barrier_construct(team, work_s, repeats);
      break;
    case SyncConstruct::single:
      single_construct(team, work_s, repeats);
      break;
    case SyncConstruct::critical:
      critical_construct(team, work_s, repeats);
      break;
    case SyncConstruct::lock:
      lock_construct(team, work_s, repeats);
      break;
    case SyncConstruct::ordered:
      ordered_construct(team, work_s, repeats);
      break;
    case SyncConstruct::atomic:
      atomic_construct(team, repeats);
      break;
    case SyncConstruct::reduction:
      reduction_construct(team, work_s, repeats);
      break;
  }
}

double SimSyncBench::rep_time_us(ompsim::SimTeam& team, SyncConstruct c) {
  team.begin_rep();
  const double t0 = team.now();
  const std::size_t inner = innerreps(c);
  const std::size_t g = std::min(groups_, inner);
  const std::size_t per_group = inner / g;
  const std::size_t leftover = inner - per_group * g;
  const double work_s = params_.delay_us * 1e-6;
  for (std::size_t i = 0; i < g; ++i) {
    const std::size_t reps = per_group + (i < leftover ? 1 : 0);
    if (reps) dispatch(team, c, work_s, reps);
  }
  return (team.now() - t0) * 1e6;
}

double SimSyncBench::overhead_from_rep_us(double rep_time_us,
                                          SyncConstruct c) const {
  return overhead_us(rep_time_us, innerreps(c),
                     params_.delay_us * sim_->costs().work_scale);
}

RunMatrix SimSyncBench::run_protocol(SyncConstruct c,
                                     const ExperimentSpec& spec) {
  ompsim::SimTeam team(*sim_, team_cfg_, spec.seed);
  RunHooks hooks;
  hooks.before_run = [&](std::size_t, std::uint64_t run_seed) {
    team.begin_run(run_seed);
  };
  return run_experiment(
      spec, [&](const RepContext&) { return rep_time_us(team, c); }, hooks);
}

RunMatrix SimSyncBench::run_protocol(SyncConstruct c,
                                     const ExperimentSpec& spec,
                                     std::size_t jobs,
                                     const snap::CheckpointPolicy* ckpt) {
  return run_protocol_sharded(
      *sim_, team_cfg_, spec, jobs,
      [team_cfg = team_cfg_, params = params_,
       groups = groups_](sim::Simulator& sim) {
        return SimSyncBench(sim, team_cfg, params, groups);
      },
      [c](SimSyncBench& bench, ompsim::SimTeam& team) {
        return bench.rep_time_us(team, c);
      },
      NoRunEndHook{}, ckpt);
}

}  // namespace omv::bench
