#pragma once
// Native OpenMP backends for syncbench, schedbench and BabelStream —
// real `#pragma omp` constructs measured with the EPCC protocol on the host.
// These are the code paths a user runs on an actual multicore node; the CI
// environment for this repository has a single core, so the tests only
// exercise them at small thread counts for correctness, and the paper-scale
// experiments use the simulator backend.
//
// All entry points degrade gracefully when compiled without OpenMP
// (serial execution, omp_* shims).

#include <cstddef>
#include <vector>

#include "bench_suite/epcc.hpp"
#include "bench_suite/stream_sim.hpp"  // StreamKernel, StreamRunResult
#include "core/experiment.hpp"

namespace omv::bench {

/// Configuration for the native backends.
struct NativeConfig {
  std::size_t n_threads = 2;
  /// delay-loop calibration (iterations per microsecond); <= 0 means
  /// calibrate on first use.
  double iters_per_us = 0.0;
};

/// syncbench, native backend.
class NativeSyncBench {
 public:
  explicit NativeSyncBench(NativeConfig cfg,
                           EpccParams params = EpccParams::syncbench());

  /// Measures one outer repetition of construct `c` (microseconds,
  /// wall clock). innerreps is calibrated on first use per construct.
  [[nodiscard]] double rep_time_us(SyncConstruct c);

  /// Full protocol (runs x reps). Each run re-forms the thread team.
  [[nodiscard]] RunMatrix run_protocol(SyncConstruct c,
                                       const ExperimentSpec& spec);

  /// Serial reference time for one delay payload (microseconds).
  [[nodiscard]] double reference_us();

  [[nodiscard]] std::size_t innerreps(SyncConstruct c);

 private:
  double time_construct_us(SyncConstruct c, std::size_t inner);

  NativeConfig cfg_;
  EpccParams params_;
  std::vector<std::size_t> innerreps_cache_;
};

/// schedbench, native backend.
class NativeSchedBench {
 public:
  explicit NativeSchedBench(NativeConfig cfg,
                            EpccParams params = EpccParams::schedbench());

  /// One repetition: a full parallel-for over n_threads * itersperthr
  /// iterations of delay(delay_us), schedule given by name ("static",
  /// "dynamic", "guided") and chunk.
  [[nodiscard]] double rep_time_us(const std::string& schedule,
                                   std::size_t chunk);

  [[nodiscard]] RunMatrix run_protocol(const std::string& schedule,
                                       std::size_t chunk,
                                       const ExperimentSpec& spec);

 private:
  NativeConfig cfg_;
  EpccParams params_;
};

/// BabelStream, native backend.
class NativeStream {
 public:
  NativeStream(NativeConfig cfg,
               std::size_t array_elems = std::size_t{1} << 22);

  /// One timed execution of kernel `k` (seconds).
  [[nodiscard]] double kernel_time_s(StreamKernel k);

  /// BabelStream-style min/avg/max over `reps` in-run repetitions.
  [[nodiscard]] StreamRunResult run_kernel(StreamKernel k, std::size_t reps);

  /// Verifies kernel results against the analytic expectation; returns
  /// true when all arrays check out (BabelStream's solution check).
  [[nodiscard]] bool validate();

 private:
  void init_arrays();

  NativeConfig cfg_;
  std::size_t n_;
  std::vector<double> a_, b_, c_;
  double dot_result_ = 0.0;
};

/// EPCC taskbench subset, native backend (real `#pragma omp task`).
class NativeTaskBench {
 public:
  explicit NativeTaskBench(NativeConfig cfg,
                           EpccParams params = EpccParams::syncbench());

  /// One repetition of PARALLEL TASK GENERATION: every thread creates
  /// `tasks_per_thread` tasks of delay(delay_us) each, then taskwait.
  /// Returns microseconds. Serial-compiled builds run the payloads inline.
  [[nodiscard]] double parallel_generation_rep_us(
      std::size_t tasks_per_thread);

  /// One repetition of MASTER TASK GENERATION: one producer creates
  /// `total_tasks` tasks executed by the team.
  [[nodiscard]] double master_generation_rep_us(std::size_t total_tasks);

 private:
  NativeConfig cfg_;
  EpccParams params_;
};

/// Number of OpenMP threads the native backend will actually get.
[[nodiscard]] std::size_t native_max_threads();

}  // namespace omv::bench
