#pragma once
// syncbench on the simulated OpenMP runtime.
//
// For each synchronization construct, one outer repetition executes
// `innerreps` construct instances (calibrated once per configuration against
// the noise-free cost of an instance). Instances are simulated in groups so
// a repetition costs O(groups * threads) events regardless of innerreps.

#include <cstdint>

#include "bench_suite/epcc.hpp"
#include "core/experiment.hpp"
#include "omp_model/constructs.hpp"
#include "omp_model/team.hpp"
#include "sim/simulator.hpp"

namespace omv::snap {
struct CheckpointPolicy;
}  // namespace omv::snap

namespace omv::bench {

/// syncbench, simulator backend.
class SimSyncBench {
 public:
  /// `groups` bounds the number of simulated phases per repetition.
  SimSyncBench(sim::Simulator& simulator, ompsim::TeamConfig team_cfg,
               EpccParams params = EpccParams::syncbench(),
               std::size_t groups = 16);

  /// Noise-free time of one instance of `c` in microseconds (used for
  /// innerreps calibration; computed analytically from the cost model).
  [[nodiscard]] double ideal_instance_us(SyncConstruct c) const;

  /// Calibrated innerreps for construct `c`.
  [[nodiscard]] std::size_t innerreps(SyncConstruct c) const;

  /// Simulates one outer repetition of construct `c` on `team`, returning
  /// its duration in microseconds. Advances the team's clocks.
  [[nodiscard]] double rep_time_us(ompsim::SimTeam& team, SyncConstruct c);

  /// Overhead per instance for a measured repetition (EPCC definition;
  /// the serial reference is the pure delay payload).
  [[nodiscard]] double overhead_from_rep_us(double rep_time_us,
                                            SyncConstruct c) const;

  /// Runs the full paper protocol (spec.runs x spec.reps) for construct `c`
  /// and returns the RunMatrix of repetition times (microseconds).
  [[nodiscard]] RunMatrix run_protocol(SyncConstruct c,
                                       const ExperimentSpec& spec);

  /// As run_protocol, but shards the spec's runs across `jobs` worker
  /// threads (0 = hardware concurrency; 1 = inline). Each run executes on
  /// a private Simulator + team whose state begin_run re-derives entirely
  /// from the run seed, so the RunMatrix is bit-identical to the serial
  /// overload. When `ckpt` names an engaged checkpoint policy, the cell
  /// executes serially with snapshot checkpoints (still bit-identical).
  [[nodiscard]] RunMatrix run_protocol(
      SyncConstruct c, const ExperimentSpec& spec, std::size_t jobs,
      const snap::CheckpointPolicy* ckpt = nullptr);

  [[nodiscard]] const EpccParams& params() const noexcept { return params_; }
  [[nodiscard]] const ompsim::TeamConfig& team_config() const noexcept {
    return team_cfg_;
  }

 private:
  void dispatch(ompsim::SimTeam& team, SyncConstruct c, double work_s,
                std::size_t repeats);

  sim::Simulator* sim_;
  ompsim::TeamConfig team_cfg_;
  EpccParams params_;
  std::size_t groups_;
};

}  // namespace omv::bench
