#include "bench_suite/epcc.hpp"

#include <algorithm>
#include <chrono>

namespace omv::bench {

const std::vector<SyncConstruct>& all_sync_constructs() {
  static const std::vector<SyncConstruct> kAll = {
      SyncConstruct::parallel, SyncConstruct::for_,
      SyncConstruct::barrier,  SyncConstruct::single,
      SyncConstruct::critical, SyncConstruct::lock,
      SyncConstruct::ordered,  SyncConstruct::atomic,
      SyncConstruct::reduction};
  return kAll;
}

const char* sync_construct_name(SyncConstruct c) noexcept {
  switch (c) {
    case SyncConstruct::parallel:
      return "parallel";
    case SyncConstruct::for_:
      return "for";
    case SyncConstruct::barrier:
      return "barrier";
    case SyncConstruct::single:
      return "single";
    case SyncConstruct::critical:
      return "critical";
    case SyncConstruct::lock:
      return "lock";
    case SyncConstruct::ordered:
      return "ordered";
    case SyncConstruct::atomic:
      return "atomic";
    case SyncConstruct::reduction:
      return "reduction";
  }
  return "?";
}

std::size_t calibrate_innerreps(double instance_time_us, double test_time_us) {
  if (instance_time_us <= 0.0) return 1000;
  const double reps = test_time_us / instance_time_us;
  return std::clamp<std::size_t>(static_cast<std::size_t>(reps), 1, 1000000);
}

double overhead_us(double rep_time_us, std::size_t innerreps,
                   double reference_per_instance_us) {
  if (innerreps == 0) return 0.0;
  return rep_time_us / static_cast<double>(innerreps) -
         reference_per_instance_us;
}

namespace {
// Volatile sink defeats dead-code elimination of the spin loop.
volatile double g_delay_sink = 0.0;

void spin_iters(std::size_t iters) {
  double a = 1.0;
  for (std::size_t i = 0; i < iters; ++i) {
    a += static_cast<double>(i & 7) * 0.5;
  }
  g_delay_sink = a;
}
}  // namespace

double calibrate_delay_per_us() {
  // Time a large fixed iteration count; repeat and take the fastest to
  // shed warm-up effects.
  constexpr std::size_t kIters = 2'000'000;
  double best_us = 1e300;
  for (int trial = 0; trial < 3; ++trial) {
    const auto t0 = std::chrono::steady_clock::now();
    spin_iters(kIters);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    best_us = std::min(best_us, us);
  }
  return best_us > 0.0 ? static_cast<double>(kIters) / best_us : 1000.0;
}

void spin_delay(double us, double iters_per_us) {
  if (us <= 0.0) return;
  spin_iters(static_cast<std::size_t>(us * iters_per_us));
}

}  // namespace omv::bench
