#include "bench_suite/native.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#if defined(_OPENMP)
#include <omp.h>
#else
// Serial shims so the library still builds and runs without OpenMP.
namespace {
inline int omp_get_max_threads() { return 1; }
inline int omp_get_thread_num() { return 0; }
inline void omp_set_num_threads(int) {}
using omp_lock_t = int;
inline void omp_init_lock(omp_lock_t*) {}
inline void omp_destroy_lock(omp_lock_t*) {}
inline void omp_set_lock(omp_lock_t*) {}
inline void omp_unset_lock(omp_lock_t*) {}
}  // namespace
#endif

namespace omv::bench {
namespace {

double wall_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::size_t native_max_threads() {
  return static_cast<std::size_t>(std::max(1, omp_get_max_threads()));
}

// --------------------------------------------------------------------------
// NativeTaskBench
// --------------------------------------------------------------------------

NativeTaskBench::NativeTaskBench(NativeConfig cfg, EpccParams params)
    : cfg_(cfg), params_(params) {
  if (cfg_.n_threads == 0) {
    throw std::invalid_argument("NativeTaskBench: zero threads");
  }
  if (cfg_.iters_per_us <= 0.0) {
    cfg_.iters_per_us = calibrate_delay_per_us();
  }
}

double NativeTaskBench::parallel_generation_rep_us(
    std::size_t tasks_per_thread) {
  omp_set_num_threads(static_cast<int>(cfg_.n_threads));
  const double delay = params_.delay_us;
  const double ipu = cfg_.iters_per_us;
  const auto n = static_cast<long>(tasks_per_thread);

  const double t0 = wall_us();
#if defined(_OPENMP)
#pragma omp parallel
  {
    for (long i = 0; i < n; ++i) {
#pragma omp task firstprivate(delay, ipu)
      { spin_delay(delay, ipu); }
    }
#pragma omp taskwait
  }
#else
  for (std::size_t t = 0; t < cfg_.n_threads; ++t) {
    for (long i = 0; i < n; ++i) spin_delay(delay, ipu);
  }
#endif
  return wall_us() - t0;
}

double NativeTaskBench::master_generation_rep_us(std::size_t total_tasks) {
  omp_set_num_threads(static_cast<int>(cfg_.n_threads));
  const double delay = params_.delay_us;
  const double ipu = cfg_.iters_per_us;
  const auto n = static_cast<long>(total_tasks);

  const double t0 = wall_us();
#if defined(_OPENMP)
#pragma omp parallel
  {
#pragma omp master
    {
      for (long i = 0; i < n; ++i) {
#pragma omp task firstprivate(delay, ipu)
        { spin_delay(delay, ipu); }
      }
    }
#pragma omp barrier
  }
#else
  for (long i = 0; i < n; ++i) spin_delay(delay, ipu);
#endif
  return wall_us() - t0;
}

// --------------------------------------------------------------------------
// NativeSyncBench
// --------------------------------------------------------------------------

NativeSyncBench::NativeSyncBench(NativeConfig cfg, EpccParams params)
    : cfg_(cfg), params_(params) {
  if (cfg_.n_threads == 0) {
    throw std::invalid_argument("NativeSyncBench: zero threads");
  }
  if (cfg_.iters_per_us <= 0.0) {
    cfg_.iters_per_us = calibrate_delay_per_us();
  }
  innerreps_cache_.assign(all_sync_constructs().size(), 0);
}

double NativeSyncBench::reference_us() {
  // Time a serial loop of delay payloads, per EPCC's reference measurement.
  constexpr std::size_t kLoops = 1024;
  const double t0 = wall_us();
  for (std::size_t i = 0; i < kLoops; ++i) {
    spin_delay(params_.delay_us, cfg_.iters_per_us);
  }
  return (wall_us() - t0) / kLoops;
}

double NativeSyncBench::time_construct_us(SyncConstruct c,
                                          std::size_t inner) {
  const double delay = params_.delay_us;
  const double ipu = cfg_.iters_per_us;
  const int nt = static_cast<int>(cfg_.n_threads);
  omp_set_num_threads(nt);

  double total = 0.0;
  [[maybe_unused]] volatile double sink = 0.0;
  static omp_lock_t lock;
  static bool lock_init = false;
  if (!lock_init) {
    omp_init_lock(&lock);
    lock_init = true;
  }

  const double t0 = wall_us();
  switch (c) {
    case SyncConstruct::parallel: {
      for (std::size_t k = 0; k < inner; ++k) {
#if defined(_OPENMP)
#pragma omp parallel
#endif
        { spin_delay(delay, ipu); }
      }
      break;
    }
    case SyncConstruct::for_: {
#if defined(_OPENMP)
#pragma omp parallel
#endif
      {
        for (std::size_t k = 0; k < inner; ++k) {
#if defined(_OPENMP)
#pragma omp for schedule(static)
#endif
          for (int i = 0; i < nt; ++i) {
            spin_delay(delay, ipu);
          }
        }
      }
      break;
    }
    case SyncConstruct::barrier: {
#if defined(_OPENMP)
#pragma omp parallel
#endif
      {
        for (std::size_t k = 0; k < inner; ++k) {
          spin_delay(delay, ipu);
#if defined(_OPENMP)
#pragma omp barrier
#endif
        }
      }
      break;
    }
    case SyncConstruct::single: {
#if defined(_OPENMP)
#pragma omp parallel
#endif
      {
        for (std::size_t k = 0; k < inner; ++k) {
#if defined(_OPENMP)
#pragma omp single
#endif
          { spin_delay(delay, ipu); }
        }
      }
      break;
    }
    case SyncConstruct::critical: {
#if defined(_OPENMP)
#pragma omp parallel
#endif
      {
        for (std::size_t k = 0; k < inner; ++k) {
#if defined(_OPENMP)
#pragma omp critical
#endif
          { spin_delay(delay, ipu); }
        }
      }
      break;
    }
    case SyncConstruct::lock: {
#if defined(_OPENMP)
#pragma omp parallel
#endif
      {
        for (std::size_t k = 0; k < inner; ++k) {
          omp_set_lock(&lock);
          spin_delay(delay, ipu);
          omp_unset_lock(&lock);
        }
      }
      break;
    }
    case SyncConstruct::ordered: {
      for (std::size_t k = 0; k < inner; ++k) {
#if defined(_OPENMP)
#pragma omp parallel for ordered schedule(static, 1)
#endif
        for (int i = 0; i < nt; ++i) {
#if defined(_OPENMP)
#pragma omp ordered
#endif
          { spin_delay(delay, ipu); }
        }
      }
      break;
    }
    case SyncConstruct::atomic: {
      double acc = 0.0;
#if defined(_OPENMP)
#pragma omp parallel
#endif
      {
        for (std::size_t k = 0; k < inner; ++k) {
#if defined(_OPENMP)
#pragma omp atomic
#endif
          acc += 1.0;
        }
      }
      sink = acc;
      break;
    }
    case SyncConstruct::reduction: {
      double acc = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
#if defined(_OPENMP)
#pragma omp parallel reduction(+ : acc)
#endif
        {
          spin_delay(delay, ipu);
          acc += 1.0;
        }
      }
      sink = acc;
      break;
    }
  }
  total = wall_us() - t0;
  return total;
}

std::size_t NativeSyncBench::innerreps(SyncConstruct c) {
  auto& cached = innerreps_cache_[static_cast<std::size_t>(c)];
  if (cached != 0) return cached;
  // Calibrate: time a small probe batch, scale to test_time.
  constexpr std::size_t kProbe = 8;
  const double probe_us = time_construct_us(c, kProbe);
  const double instance_us =
      std::max(probe_us / static_cast<double>(kProbe), 1e-3);
  cached = calibrate_innerreps(instance_us, params_.test_time_us);
  return cached;
}

double NativeSyncBench::rep_time_us(SyncConstruct c) {
  return time_construct_us(c, innerreps(c));
}

RunMatrix NativeSyncBench::run_protocol(SyncConstruct c,
                                        const ExperimentSpec& spec) {
  (void)innerreps(c);  // calibrate outside the timed region
  return run_experiment(
      spec, [&](const RepContext&) { return rep_time_us(c); });
}

// --------------------------------------------------------------------------
// NativeSchedBench
// --------------------------------------------------------------------------

NativeSchedBench::NativeSchedBench(NativeConfig cfg, EpccParams params)
    : cfg_(cfg), params_(params) {
  if (cfg_.n_threads == 0) {
    throw std::invalid_argument("NativeSchedBench: zero threads");
  }
  if (cfg_.iters_per_us <= 0.0) {
    cfg_.iters_per_us = calibrate_delay_per_us();
  }
}

double NativeSchedBench::rep_time_us(const std::string& schedule,
                                     std::size_t chunk) {
  const auto nt = static_cast<int>(cfg_.n_threads);
  omp_set_num_threads(nt);
  const auto total =
      static_cast<long>(cfg_.n_threads * params_.itersperthr);
  const double delay = params_.delay_us;
  const double ipu = cfg_.iters_per_us;
  const auto c = static_cast<int>(std::max<std::size_t>(chunk, 1));
  (void)c;

  const double t0 = wall_us();
  if (schedule == "static") {
#if defined(_OPENMP)
#pragma omp parallel for schedule(static, c)
#endif
    for (long i = 0; i < total; ++i) spin_delay(delay, ipu);
  } else if (schedule == "dynamic") {
#if defined(_OPENMP)
#pragma omp parallel for schedule(dynamic, c)
#endif
    for (long i = 0; i < total; ++i) spin_delay(delay, ipu);
  } else if (schedule == "guided") {
#if defined(_OPENMP)
#pragma omp parallel for schedule(guided, c)
#endif
    for (long i = 0; i < total; ++i) spin_delay(delay, ipu);
  } else {
    throw std::invalid_argument("NativeSchedBench: unknown schedule '" +
                                schedule + "'");
  }
  return wall_us() - t0;
}

RunMatrix NativeSchedBench::run_protocol(const std::string& schedule,
                                         std::size_t chunk,
                                         const ExperimentSpec& spec) {
  return run_experiment(spec, [&](const RepContext&) {
    return rep_time_us(schedule, chunk);
  });
}

// --------------------------------------------------------------------------
// NativeStream
// --------------------------------------------------------------------------

NativeStream::NativeStream(NativeConfig cfg, std::size_t array_elems)
    : cfg_(cfg), n_(array_elems) {
  if (cfg_.n_threads == 0) {
    throw std::invalid_argument("NativeStream: zero threads");
  }
  init_arrays();
}

void NativeStream::init_arrays() {
  omp_set_num_threads(static_cast<int>(cfg_.n_threads));
  a_.assign(n_, 0.0);
  b_.assign(n_, 0.0);
  c_.assign(n_, 0.0);
  const auto n = static_cast<long>(n_);
  // First-touch initialization in parallel, as BabelStream does.
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (long i = 0; i < n; ++i) {
    a_[i] = 0.1;
    b_[i] = 0.2;
    c_[i] = 0.0;
  }
}

double NativeStream::kernel_time_s(StreamKernel k) {
  omp_set_num_threads(static_cast<int>(cfg_.n_threads));
  constexpr double kScalar = 0.4;
  const auto n = static_cast<long>(n_);
  double* a = a_.data();
  double* b = b_.data();
  double* c = c_.data();

  const auto t0 = std::chrono::steady_clock::now();
  switch (k) {
    case StreamKernel::copy:
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
      for (long i = 0; i < n; ++i) c[i] = a[i];
      break;
    case StreamKernel::mul:
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
      for (long i = 0; i < n; ++i) b[i] = kScalar * c[i];
      break;
    case StreamKernel::add:
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
      for (long i = 0; i < n; ++i) c[i] = a[i] + b[i];
      break;
    case StreamKernel::triad:
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
      for (long i = 0; i < n; ++i) a[i] = b[i] + kScalar * c[i];
      break;
    case StreamKernel::dot: {
      double sum = 0.0;
#if defined(_OPENMP)
#pragma omp parallel for schedule(static) reduction(+ : sum)
#endif
      for (long i = 0; i < n; ++i) sum += a[i] * b[i];
      dot_result_ = sum;
      break;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

StreamRunResult NativeStream::run_kernel(StreamKernel k, std::size_t reps) {
  StreamRunResult r;
  if (reps == 0) return r;
  r.min_s = 1e300;
  double sum = 0.0;
  for (std::size_t i = 0; i < reps; ++i) {
    const double t = kernel_time_s(k);
    sum += t;
    r.min_s = std::min(r.min_s, t);
    r.max_s = std::max(r.max_s, t);
  }
  r.avg_s = sum / static_cast<double>(reps);
  return r;
}

bool NativeStream::validate() {
  // Re-run the canonical sequence once from fresh arrays and check the
  // closed-form expectation, as BabelStream's --check does.
  init_arrays();
  double av = 0.1;
  double bv = 0.2;
  double cv = 0.0;
  constexpr double kScalar = 0.4;
  (void)kernel_time_s(StreamKernel::copy);   // c = a
  cv = av;
  (void)kernel_time_s(StreamKernel::mul);    // b = s*c
  bv = kScalar * cv;
  (void)kernel_time_s(StreamKernel::add);    // c = a + b
  cv = av + bv;
  (void)kernel_time_s(StreamKernel::triad);  // a = b + s*c
  av = bv + kScalar * cv;
  (void)kernel_time_s(StreamKernel::dot);

  const double eps = 1e-12 * static_cast<double>(n_);
  for (std::size_t i = 0; i < std::min<std::size_t>(n_, 1024); ++i) {
    if (std::abs(a_[i] - av) > 1e-9 || std::abs(b_[i] - bv) > 1e-9 ||
        std::abs(c_[i] - cv) > 1e-9) {
      return false;
    }
  }
  const double expect_dot = av * bv * static_cast<double>(n_);
  return std::abs(dot_result_ - expect_dot) <=
         std::max(1e-6, eps * std::abs(expect_dot));
}

}  // namespace omv::bench
