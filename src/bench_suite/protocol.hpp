#pragma once
// Shared sharded-protocol plumbing for the simulator-backed benchmarks.
//
// Every Sim* benchmark parallelizes the same way: each run gets a private
// clone of the Simulator (same machine + config), a private benchmark
// object and a private SimTeam, and SimTeam::begin_run re-derives all
// per-run state from the run seed — which is what makes the sharded
// result bit-identical to the serial run_protocol path. This header is
// the single implementation of that per-run cloning contract; changing
// the contract here changes it for every benchmark at once.

#include <memory>
#include <type_traits>
#include <utility>

#include "bench_suite/checkpoint.hpp"
#include "core/parallel_runner.hpp"
#include "omp_model/team.hpp"
#include "sim/simulator.hpp"

namespace omv::bench {

/// Shards spec.runs across `jobs` worker threads (0 = hardware
/// concurrency; 1 = inline). Each run builds a private Simulator clone of
/// `base`, a benchmark instance via `make_bench(sim)`, and a SimTeam on
/// `team_cfg`; begin_run(run_seed) then resets every model. Repetitions
/// execute `rep(bench, team)`; after a run's last timed repetition,
/// `on_run_end(bench, team, sim, slot)` fires (e.g. to sample the run's
/// frequency trace into a run-indexed slot).
///
/// When `ckpt` names an engaged checkpoint policy, execution routes through
/// run_protocol_checkpointed instead: serial, with snapshot writes every N
/// reps and/or a resume from a prior snapshot — bit-identical to the
/// sharded path (runs derive their entire state from run_seed either way).
template <typename MakeBench, typename Rep, typename OnRunEnd = NoRunEndHook>
[[nodiscard]] RunMatrix run_protocol_sharded(
    const sim::Simulator& base, const ompsim::TeamConfig& team_cfg,
    const ExperimentSpec& spec, std::size_t jobs, MakeBench make_bench,
    Rep rep, OnRunEnd on_run_end = {},
    const snap::CheckpointPolicy* ckpt = nullptr) {
  if (ckpt != nullptr && ckpt->engaged()) {
    return run_protocol_checkpointed(base, team_cfg, spec, make_bench, rep,
                                     on_run_end, *ckpt);
  }
  const topo::Machine machine = base.machine();
  const sim::SimConfig sim_cfg = base.config();
  const std::uint64_t team_seed = spec.seed;
  const std::size_t n_reps = spec.reps;
  return run_experiment_parallel(
      spec,
      [=](const RunSlot& slot) -> RepKernel {
        auto sim = std::make_shared<sim::Simulator>(machine, sim_cfg);
        using Bench = std::decay_t<decltype(make_bench(*sim))>;
        auto bench = std::make_shared<Bench>(make_bench(*sim));
        auto team =
            std::make_shared<ompsim::SimTeam>(*sim, team_cfg, team_seed);
        team->begin_run(slot.run_seed);
        return [sim, bench, team, rep, on_run_end, slot,
                n_reps](const RepContext& c) {
          const double t = rep(*bench, *team);
          // c.rep + 1 == n_reps is underflow-safe for n_reps == 0 (the
          // kernel sees no timed reps then, so the hook cannot fire).
          if (!c.warmup && c.rep + 1 == n_reps) {
            on_run_end(*bench, *team, *sim, slot);
          }
          return t;
        };
      },
      jobs);
}

}  // namespace omv::bench
