#pragma once
// BabelStream on the simulated machine.
//
// Five kernels over arrays of `array_elems` doubles: copy (c = a), mul
// (b = s*c), add (c = a + b), triad (a = b + s*c), dot (sum += a*b). Kernel
// time is bandwidth-bound: each thread streams its slice from its
// first-touch NUMA domain through the memory model (contention, remote
// penalties), multiplied by oversubscription, slightly degraded under SMT
// co-scheduling, extended by OS-noise preemptions, and closed by the
// end-of-kernel barrier (dot adds a reduction).

#include <array>
#include <cstdint>

#include "core/experiment.hpp"
#include "omp_model/team.hpp"
#include "sim/simulator.hpp"

namespace omv::snap {
struct CheckpointPolicy;
}  // namespace omv::snap

namespace omv::bench {

/// The five BabelStream kernels.
enum class StreamKernel { copy, mul, add, triad, dot };

[[nodiscard]] const char* stream_kernel_name(StreamKernel k) noexcept;
[[nodiscard]] const std::array<StreamKernel, 5>& all_stream_kernels() noexcept;

/// Bytes moved per element by each kernel (reads + writes of 8-byte
/// doubles; write-allocate traffic folded into the store stream).
[[nodiscard]] double stream_bytes_per_elem(StreamKernel k) noexcept;

/// Per-run result: min/avg/max over the in-run kernel repetitions —
/// BabelStream's native reporting, which the paper normalizes to the
/// average (Section 4.2).
struct StreamRunResult {
  double min_s = 0.0;
  double avg_s = 0.0;
  double max_s = 0.0;
  [[nodiscard]] double norm_min() const {
    return avg_s > 0.0 ? min_s / avg_s : 0.0;
  }
  [[nodiscard]] double norm_max() const {
    return avg_s > 0.0 ? max_s / avg_s : 0.0;
  }
};

/// BabelStream, simulator backend.
class SimStream {
 public:
  /// Default array size 2^25 doubles (the paper's configuration).
  SimStream(sim::Simulator& simulator, ompsim::TeamConfig team_cfg,
            std::size_t array_elems = std::size_t{1} << 25,
            double smt_stream_penalty = 1.08);

  /// Simulates one timed execution of kernel `k`, returning seconds.
  [[nodiscard]] double kernel_time_s(ompsim::SimTeam& team, StreamKernel k);

  /// Runs `reps` repetitions of kernel `k` within an existing run.
  [[nodiscard]] StreamRunResult run_kernel(ompsim::SimTeam& team,
                                           StreamKernel k, std::size_t reps);

  /// Full protocol: for each run, `reps` repetitions; RunMatrix of kernel
  /// times in milliseconds.
  [[nodiscard]] RunMatrix run_protocol(StreamKernel k,
                                       const ExperimentSpec& spec);

  /// As run_protocol, but shards the spec's runs across `jobs` worker
  /// threads (0 = hardware concurrency; 1 = inline); bit-identical to the
  /// serial overload. `ckpt` optionally routes the cell through the
  /// checkpointed (serial, snapshot-writing) protocol loop.
  [[nodiscard]] RunMatrix run_protocol(
      StreamKernel k, const ExperimentSpec& spec, std::size_t jobs,
      const snap::CheckpointPolicy* ckpt = nullptr);

  [[nodiscard]] std::size_t array_elems() const noexcept {
    return array_elems_;
  }

 private:
  sim::Simulator* sim_;
  ompsim::TeamConfig team_cfg_;
  std::size_t array_elems_;
  double smt_penalty_;
};

}  // namespace omv::bench
