#pragma once
// EPCC OpenMP micro-benchmark measurement protocol, reimplemented.
//
// The EPCC suite measures the *overhead* of an OpenMP construct as the
// difference between the time per iteration of a loop containing the
// construct (with a calibrated spin payload, the "delay") and a serial
// reference loop containing only the delay. Each outer repetition executes
// `innerreps` construct instances, where innerreps is calibrated so one
// outer repetition lasts roughly `test_time_us`. The paper runs 100 outer
// repetitions per run (Table 1) and 10 runs per configuration.

#include <cstddef>
#include <string>
#include <vector>

namespace omv::bench {

/// Table 1 parameters.
struct EpccParams {
  std::size_t outer_reps = 100;
  double delay_us = 0.1;       ///< payload per construct instance.
  double test_time_us = 1000;  ///< target duration of one outer repetition.
  std::size_t itersperthr = 8192;  ///< schedbench only.

  /// schedbench column of Table 1 (delay 15 us, itersperthr 8192).
  static EpccParams schedbench() {
    EpccParams p;
    p.delay_us = 15.0;
    p.itersperthr = 8192;
    return p;
  }
  /// syncbench column of Table 1 (delay 0.1 us).
  static EpccParams syncbench() {
    EpccParams p;
    p.delay_us = 0.1;
    return p;
  }
};

/// The synchronization constructs syncbench measures.
enum class SyncConstruct {
  parallel,
  for_,
  barrier,
  single,
  critical,
  lock,
  ordered,
  atomic,
  reduction,
};

/// All constructs in syncbench order.
[[nodiscard]] const std::vector<SyncConstruct>& all_sync_constructs();
[[nodiscard]] const char* sync_construct_name(SyncConstruct c) noexcept;

/// Calibrates innerreps so `instance_time_us * innerreps ~= test_time_us`,
/// clamped to [1, 10^6] (EPCC's guard rails).
[[nodiscard]] std::size_t calibrate_innerreps(double instance_time_us,
                                              double test_time_us);

/// Overhead per construct instance given a measured outer repetition:
/// rep_time / innerreps - reference_per_instance.
[[nodiscard]] double overhead_us(double rep_time_us, std::size_t innerreps,
                                 double reference_per_instance_us);

// --- Native delay loop ---------------------------------------------------

/// Calibrates the native spin-delay loop: returns iterations per
/// microsecond. Deterministic work (no syscalls), mirrors EPCC's delay().
[[nodiscard]] double calibrate_delay_per_us();

/// Spins for roughly `us` microseconds using the calibration factor.
void spin_delay(double us, double iters_per_us);

}  // namespace omv::bench
