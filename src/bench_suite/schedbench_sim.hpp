#pragma once
// schedbench on the simulated OpenMP runtime.
//
// One outer repetition is one `#pragma omp parallel for schedule(kind,
// chunk)` region over n_threads * itersperthr iterations of delay(delay_us)
// each (Table 1: 8192 iterations of 15 us per thread). Dynamic/guided
// scheduling is simulated chunk-by-chunk through the central-queue engine,
// with automatic coarsening to bound the event count at scale.

#include <cstdint>

#include "bench_suite/epcc.hpp"
#include "core/experiment.hpp"
#include "omp_model/team.hpp"
#include "omp_model/worksharing.hpp"
#include "sim/simulator.hpp"

namespace omv::snap {
struct CheckpointPolicy;
}  // namespace omv::snap

namespace omv::bench {

/// schedbench, simulator backend.
class SimSchedBench {
 public:
  SimSchedBench(sim::Simulator& simulator, ompsim::TeamConfig team_cfg,
                EpccParams params = EpccParams::schedbench(),
                std::size_t max_grabs_per_rep = 20000);

  /// Simulates one repetition (one full scheduled loop), returning its
  /// duration in microseconds.
  [[nodiscard]] double rep_time_us(ompsim::SimTeam& team,
                                   ompsim::Schedule kind, std::size_t chunk);

  /// Full paper protocol for (kind, chunk); times in microseconds.
  [[nodiscard]] RunMatrix run_protocol(ompsim::Schedule kind,
                                       std::size_t chunk,
                                       const ExperimentSpec& spec);

  /// As run_protocol, but shards the spec's runs across `jobs` worker
  /// threads (0 = hardware concurrency; 1 = inline); bit-identical to the
  /// serial overload. `ckpt` optionally routes the cell through the
  /// checkpointed (serial, snapshot-writing) protocol loop.
  [[nodiscard]] RunMatrix run_protocol(
      ompsim::Schedule kind, std::size_t chunk, const ExperimentSpec& spec,
      std::size_t jobs, const snap::CheckpointPolicy* ckpt = nullptr);

  /// The coarsening factor used for a given chunk size (1 = exact).
  [[nodiscard]] std::size_t coarsen_for(std::size_t chunk) const;

  [[nodiscard]] const EpccParams& params() const noexcept { return params_; }

 private:
  sim::Simulator* sim_;
  ompsim::TeamConfig team_cfg_;
  EpccParams params_;
  std::size_t max_grabs_;
};

}  // namespace omv::bench
