#pragma once
// Checkpointed protocol execution.
//
// The protocol loop gains a mid-flight persistence point: every N timed
// repetitions the full run state (simulator models, team clocks, placement)
// plus the protocol cursor and all completed repetition times are serialized
// to a versioned snapshot file. A fresh process can resume the cell from the
// snapshot and continue; the continuation is bit-identical to straight-line
// execution, because every stateful component round-trips exactly (the
// snapshot visitors serialize the same columnar arrays the models compute
// from) and the rep loop re-enters at the precise cursor.
//
// Checkpointed cells execute serially: the protocol cursor is a single
// linear position, and the sharded path's out-of-order run completion has no
// meaningful "latest checkpoint". Runs still derive their entire state from
// run_seed, so the serial result is bit-identical to the sharded one.

#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/deadline.hpp"
#include "core/experiment.hpp"
#include "core/parallel_runner.hpp"
#include "core/snapshot.hpp"
#include "omp_model/team.hpp"
#include "sim/simulator.hpp"

namespace omv::bench {

/// Default (no-op) end-of-run hook for run_protocol_sharded /
/// run_protocol_checkpointed.
struct NoRunEndHook {
  template <typename Bench>
  void operator()(Bench&, ompsim::SimTeam&, sim::Simulator&,
                  const RunSlot&) const noexcept {}
};

/// Serializes a team's (and its simulator's) full run state into a
/// standalone snapshot blob (header + fields, no stamp).
[[nodiscard]] std::string capture_run_state(ompsim::SimTeam& team);

/// Restores a blob produced by capture_run_state. `origin` labels
/// diagnostics (usually the snapshot file path plus a cursor note).
void restore_run_state(const std::string& blob, const std::string& origin,
                       ompsim::SimTeam& team);

/// A cell checkpoint loaded from disk.
struct LoadedCheckpoint {
  snap::SnapshotStamp stamp;  ///< identity + (run, rep) cursor.
  /// Repetition times of runs completed before the checkpoint.
  std::vector<std::vector<double>> done_times;
  /// End-of-run state blobs matching done_times (empty strings when the
  /// protocol carries no end-of-run hook).
  std::vector<std::string> done_states;
  /// Timed repetition times completed so far in run `stamp.run`.
  std::vector<double> partial;
  /// Mid-run state of run `stamp.run` at repetition `stamp.rep`.
  std::string current_state;
};

/// Loads and strictly validates the checkpoint named by `pol.resume_from`
/// (nullopt when the policy names no resume source). Throws
/// snap::SnapshotError on any mismatch: wrong magic, version skew, engine /
/// scenario-fingerprint / cell mismatch, truncation.
[[nodiscard]] std::optional<LoadedCheckpoint> load_cell_checkpoint(
    const snap::CheckpointPolicy& pol);

/// Atomically writes a cell checkpoint at cursor (run, rep) to `pol.path`,
/// then honours `pol.stop_after` (throws snap::CheckpointStop once the
/// process-wide write counter reaches it — the test/CI kill switch).
void write_cell_checkpoint(const snap::CheckpointPolicy& pol,
                           std::uint64_t run, std::uint64_t rep,
                           const std::vector<std::vector<double>>& done_times,
                           const std::vector<std::string>& done_states,
                           const std::vector<double>& partial,
                           const std::string& current_state);

/// Removes the cell's checkpoint file, if any (called once the cell
/// completes — a finished cell must not resume from a stale cursor).
void clear_cell_checkpoint(const snap::CheckpointPolicy& pol);

/// Serial protocol loop with checkpoint/resume. Mirrors the per-run cloning
/// contract of run_protocol_sharded exactly (private Simulator clone, bench
/// via make_bench, private SimTeam, begin_run(run_seed)), so its results are
/// bit-identical to both the sharded and the serial paths. Completed runs
/// found in a resume snapshot are not re-executed: their repetition times
/// are taken from the snapshot, and — when an end-of-run hook is present —
/// their end-of-run state is restored so the hook replays bit-identically
/// (hooks may draw from model RNG streams, e.g. frequency-trace sampling).
template <typename MakeBench, typename Rep, typename OnRunEnd = NoRunEndHook>
[[nodiscard]] RunMatrix run_protocol_checkpointed(
    const sim::Simulator& base, const ompsim::TeamConfig& team_cfg,
    const ExperimentSpec& spec, MakeBench make_bench, Rep rep,
    OnRunEnd on_run_end, const snap::CheckpointPolicy& pol) {
  constexpr bool kHasHook =
      !std::is_same_v<std::decay_t<OnRunEnd>, NoRunEndHook>;
  const topo::Machine machine = base.machine();
  const sim::SimConfig sim_cfg = base.config();

  std::vector<std::vector<double>> done_times;
  std::vector<std::string> done_states;
  std::vector<double> partial;
  std::string resume_state;
  std::size_t resume_run = 0;
  std::size_t resume_rep = 0;
  bool resuming = false;
  if (auto loaded = load_cell_checkpoint(pol)) {
    resume_run = static_cast<std::size_t>(loaded->stamp.run);
    resume_rep = static_cast<std::size_t>(loaded->stamp.rep);
    if (resume_run != loaded->done_times.size() ||
        loaded->done_states.size() != loaded->done_times.size() ||
        loaded->partial.size() != resume_rep || resume_run >= spec.runs ||
        resume_rep > spec.reps) {
      snap::fail(pol.resume_from, 0,
                 "checkpoint cursor inconsistent with the protocol spec "
                 "(runs/reps changed?)");
    }
    done_times = std::move(loaded->done_times);
    done_states = std::move(loaded->done_states);
    partial = std::move(loaded->partial);
    resume_state = std::move(loaded->current_state);
    resuming = true;
  }

  RunMatrix matrix(spec.name);
  for (std::size_t r = 0; r < spec.runs; ++r) {
    const std::uint64_t run_seed = derive_run_seed(spec.seed, r);
    const RunSlot slot{0, r, run_seed};

    if (r < done_times.size()) {
      // Completed before the checkpoint. Replay the end-of-run hook from
      // the run's restored end state so hook side effects (trace sampling)
      // are rebuilt bit-identically; skip construction entirely otherwise.
      if constexpr (kHasHook) {
        sim::Simulator sim(machine, sim_cfg);
        auto bench = make_bench(sim);
        ompsim::SimTeam team(sim, team_cfg, spec.seed);
        restore_run_state(done_states[r],
                          pol.resume_from + " (run " + std::to_string(r) +
                              " end state)",
                          team);
        on_run_end(bench, team, sim, slot);
      }
      matrix.add_run(done_times[r]);
      continue;
    }

    sim::Simulator sim(machine, sim_cfg);
    auto bench = make_bench(sim);
    ompsim::SimTeam team(sim, team_cfg, spec.seed);
    std::vector<double> times;
    std::size_t start_rep = 0;
    if (resuming && r == resume_run) {
      // Warmup repetitions ran before the checkpoint's first timed rep.
      restore_run_state(resume_state, pol.resume_from, team);
      std::swap(times, partial);
      start_rep = resume_rep;
    } else {
      team.begin_run(run_seed);
      for (std::size_t w = 0; w < spec.warmup; ++w) {
        core::check_cell_deadline();
        (void)rep(bench, team);
      }
    }

    times.reserve(spec.reps);
    for (std::size_t k = start_rep; k < spec.reps; ++k) {
      // Deadline poll before each timed rep: a checkpointed cell that blows
      // its --cell-timeout unwinds here with CellTimeout; the last
      // checkpoint (if any) survives for --resume after the quarantine is
      // investigated.
      core::check_cell_deadline();
      times.push_back(rep(bench, team));
      const bool final_rep = r + 1 == spec.runs && k + 1 == spec.reps;
      if (pol.every_reps > 0 && !pol.path.empty() && !final_rep &&
          (k + 1) % pol.every_reps == 0) {
        write_cell_checkpoint(pol, r, k + 1, done_times, done_states, times,
                              capture_run_state(team));
      }
    }

    // End-of-run state is captured before the hook fires — the same cursor
    // a checkpoint landing at rep == spec.reps holds — so the hook replay
    // on resume starts from the identical stream position.
    std::string end_state;
    if constexpr (kHasHook) {
      end_state = capture_run_state(team);
      if (spec.reps > 0) on_run_end(bench, team, sim, slot);
    }
    done_states.push_back(std::move(end_state));
    done_times.push_back(times);
    matrix.add_run(std::move(times));
  }

  if (!pol.path.empty()) clear_cell_checkpoint(pol);
  return matrix;
}

}  // namespace omv::bench
