#include "bench_suite/ftq.hpp"

#include <algorithm>
#include <chrono>

#include "bench_suite/epcc.hpp"
#include "topo/affinity.hpp"

namespace omv::bench {

FtqReport analyze_ftq(const std::vector<FtqSample>& samples) {
  FtqReport r;
  if (samples.empty()) return r;
  double sum = 0.0;
  for (const auto& s : samples) {
    sum += s.work;
    r.max_work = std::max(r.max_work, s.work);
  }
  r.mean_work = sum / static_cast<double>(samples.size());
  r.noise_fraction =
      r.max_work > 0.0 ? 1.0 - r.mean_work / r.max_work : 0.0;
  std::size_t disturbed = 0;
  for (const auto& s : samples) {
    if (s.work < 0.9 * r.max_work) ++disturbed;
  }
  r.disturbed_quanta =
      static_cast<double>(disturbed) / static_cast<double>(samples.size());
  return r;
}

std::vector<double> ftq_deficits(const std::vector<FtqSample>& samples) {
  double mx = 0.0;
  for (const auto& s : samples) mx = std::max(mx, s.work);
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(mx - s.work);
  return out;
}

std::vector<FtqSample> run_ftq_native(std::size_t quanta, double quantum_s,
                                      std::optional<std::size_t> cpu) {
  if (cpu) topo::pin_current_thread(topo::CpuSet::single(*cpu));
  std::vector<FtqSample> out;
  out.reserve(quanta);
  using clock = std::chrono::steady_clock;
  const auto origin = clock::now();
  const double ipu = calibrate_delay_per_us();
  for (std::size_t q = 0; q < quanta; ++q) {
    const auto start = clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(quantum_s));
    double work = 0.0;
    while (clock::now() < deadline) {
      // One grain ~ 10 us of calibrated spinning.
      spin_delay(10.0, ipu);
      work += 1.0;
    }
    out.push_back(
        {std::chrono::duration<double>(start - origin).count(), work});
  }
  return out;
}

std::vector<FtqSample> run_ftq_sim(sim::Simulator& simulator, std::size_t hw,
                                   double t0, std::size_t quanta,
                                   double quantum_s) {
  std::vector<FtqSample> out;
  out.reserve(quanta);
  double t = t0;
  for (std::size_t q = 0; q < quanta; ++q) {
    // Work completed in [t, t+quantum): quantum minus preemption time,
    // scaled by the frequency factor over the window.
    const double preempted =
        simulator.noise().preemption_delay(hw, t, t + quantum_s);
    const std::size_t core = simulator.machine().thread(hw).core;
    const double f = simulator.freq().mean_factor(core, t, t + quantum_s);
    const double usable = std::max(0.0, quantum_s - preempted);
    out.push_back({t - t0, usable * f});
    t += quantum_s;
  }
  return out;
}

}  // namespace omv::bench
