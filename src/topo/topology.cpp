#include "topo/topology.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <stdexcept>

namespace omv::topo {

Machine::Machine(std::string name, std::vector<HwThread> threads,
                 double base_ghz, double max_ghz)
    : name_(std::move(name)),
      threads_(std::move(threads)),
      base_ghz_(base_ghz),
      max_ghz_(max_ghz) {
  if (threads_.empty()) {
    throw std::invalid_argument("Machine: no hardware threads");
  }
  std::sort(threads_.begin(), threads_.end(),
            [](const HwThread& a, const HwThread& b) {
              return a.os_id < b.os_id;
            });
  std::set<std::size_t> cores;
  std::set<std::size_t> numas;
  std::set<std::size_t> sockets;
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    if (threads_[i].os_id != i) {
      throw std::invalid_argument("Machine: os_ids must be dense from 0");
    }
    cores.insert(threads_[i].core);
    numas.insert(threads_[i].numa);
    sockets.insert(threads_[i].socket);
  }
  n_cores_ = cores.size();
  n_numa_ = numas.size();
  n_sockets_ = sockets.size();
  if (base_ghz_ <= 0.0 || max_ghz_ < base_ghz_) {
    throw std::invalid_argument("Machine: invalid frequency range");
  }
}

Machine Machine::uniform(std::string name, std::size_t sockets,
                         std::size_t numa_per_socket,
                         std::size_t cores_per_numa, std::size_t smt,
                         double base_ghz, double max_ghz) {
  if (sockets == 0 || numa_per_socket == 0 || cores_per_numa == 0 ||
      smt == 0) {
    throw std::invalid_argument("Machine::uniform: zero-sized dimension");
  }
  const std::size_t n_cores = sockets * numa_per_socket * cores_per_numa;
  std::vector<HwThread> threads;
  threads.reserve(n_cores * smt);
  for (std::size_t s = 0; s < smt; ++s) {
    for (std::size_t core = 0; core < n_cores; ++core) {
      HwThread t;
      t.os_id = s * n_cores + core;
      t.core = core;
      t.numa = core / cores_per_numa;
      t.socket = t.numa / numa_per_socket;
      t.smt_index = s;
      threads.push_back(t);
    }
  }
  return Machine(std::move(name), std::move(threads), base_ghz, max_ghz);
}

Machine Machine::dardel() {
  return uniform("dardel", /*sockets=*/2, /*numa_per_socket=*/4,
                 /*cores_per_numa=*/16, /*smt=*/2, /*base_ghz=*/2.25,
                 /*max_ghz=*/3.4);
}

Machine Machine::vera() {
  return uniform("vera", /*sockets=*/2, /*numa_per_socket=*/1,
                 /*cores_per_numa=*/16, /*smt=*/1, /*base_ghz=*/2.1,
                 /*max_ghz=*/3.7);
}

std::optional<Machine> Machine::detect_native() {
  // Best-effort parse of /sys/devices/system/cpu/cpuN/topology.
  std::vector<HwThread> threads;
  for (std::size_t cpu = 0;; ++cpu) {
    const std::string base =
        "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    std::ifstream core_f(base + "core_id");
    std::ifstream pkg_f(base + "physical_package_id");
    if (!core_f || !pkg_f) {
      if (cpu == 0) return std::nullopt;
      break;
    }
    std::size_t core_id = 0;
    std::size_t pkg = 0;
    core_f >> core_id;
    pkg_f >> pkg;
    HwThread t;
    t.os_id = cpu;
    t.socket = pkg;
    t.numa = pkg;  // refined below if NUMA info exists; socket is a safe default.
    t.core = pkg * 4096 + core_id;  // globalize per-socket core ids.
    threads.push_back(t);
  }
  if (threads.empty()) return std::nullopt;
  // Renumber cores densely and set smt_index by arrival order per core.
  std::vector<std::size_t> core_ids;
  for (const auto& t : threads) core_ids.push_back(t.core);
  std::sort(core_ids.begin(), core_ids.end());
  core_ids.erase(std::unique(core_ids.begin(), core_ids.end()),
                 core_ids.end());
  std::vector<std::size_t> seen(core_ids.size(), 0);
  for (auto& t : threads) {
    const auto it =
        std::lower_bound(core_ids.begin(), core_ids.end(), t.core);
    const auto dense =
        static_cast<std::size_t>(it - core_ids.begin());
    t.core = dense;
    t.smt_index = seen[dense]++;
  }
  try {
    return Machine("native", std::move(threads));
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

CpuSet Machine::core_threads(std::size_t core) const {
  CpuSet s;
  for (const auto& t : threads_) {
    if (t.core == core) s.add(t.os_id);
  }
  return s;
}

CpuSet Machine::numa_threads(std::size_t numa) const {
  CpuSet s;
  for (const auto& t : threads_) {
    if (t.numa == numa) s.add(t.os_id);
  }
  return s;
}

CpuSet Machine::socket_threads(std::size_t socket) const {
  CpuSet s;
  for (const auto& t : threads_) {
    if (t.socket == socket) s.add(t.os_id);
  }
  return s;
}

CpuSet Machine::all_threads() const {
  CpuSet s;
  for (const auto& t : threads_) s.add(t.os_id);
  return s;
}

CpuSet Machine::primary_threads() const {
  CpuSet s;
  for (const auto& t : threads_) {
    if (t.smt_index == 0) s.add(t.os_id);
  }
  return s;
}

std::optional<std::size_t> Machine::sibling(std::size_t os_id) const {
  const auto& me = thread(os_id);
  for (const auto& t : threads_) {
    if (t.core == me.core && t.os_id != os_id) return t.os_id;
  }
  return std::nullopt;
}

bool Machine::same_numa(std::size_t a, std::size_t b) const {
  return thread(a).numa == thread(b).numa;
}

bool Machine::same_socket(std::size_t a, std::size_t b) const {
  return thread(a).socket == thread(b).socket;
}

}  // namespace omv::topo
