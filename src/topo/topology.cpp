#include "topo/topology.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <string>

namespace omv::topo {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("Machine: " + what);
}

std::string id_str(std::size_t v) { return std::to_string(v); }

}  // namespace

Machine::Machine(std::string name, std::vector<HwThread> threads,
                 double base_ghz, double max_ghz)
    : Machine(std::move(name), std::move(threads),
              {CoreClass{"core", base_ghz, max_ghz}}) {}

Machine::Machine(std::string name, std::vector<HwThread> threads,
                 std::vector<CoreClass> classes)
    : name_(std::move(name)),
      threads_(std::move(threads)),
      classes_(std::move(classes)),
      base_ghz_(0.0),
      max_ghz_(0.0) {
  validate_and_index();
}

void Machine::validate_and_index() {
  if (threads_.empty()) fail("no hardware threads");
  if (classes_.empty()) fail("no core classes");
  for (const CoreClass& c : classes_) {
    if (c.base_ghz <= 0.0 || c.max_ghz < c.base_ghz) {
      fail("invalid frequency range for class '" + c.name + "' (" +
           std::to_string(c.base_ghz) + "-" + std::to_string(c.max_ghz) +
           " GHz)");
    }
  }
  base_ghz_ = classes_.front().base_ghz;
  max_ghz_ = classes_.front().max_ghz;
  for (const CoreClass& c : classes_) {
    base_ghz_ = std::min(base_ghz_, c.base_ghz);
    max_ghz_ = std::max(max_ghz_, c.max_ghz);
  }

  std::sort(threads_.begin(), threads_.end(),
            [](const HwThread& a, const HwThread& b) {
              return a.os_id < b.os_id;
            });
  std::size_t max_core = 0;
  std::size_t max_numa = 0;
  std::size_t max_socket = 0;
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const HwThread& t = threads_[i];
    if (t.os_id != i) fail("os_ids must be dense from 0");
    if (t.cls >= classes_.size()) {
      fail("thread " + id_str(t.os_id) + " names core class " +
           id_str(t.cls) + " but only " + id_str(classes_.size()) +
           " class(es) are defined");
    }
    // Dense id spaces are subsets of [0, n_threads); rejecting wild ids
    // up front bounds every validation table to O(n_threads) — a
    // SIZE_MAX smt_index must produce this error, not a wrapped resize
    // and out-of-bounds write, and a ~2^40 core id must not allocate a
    // 2^40-entry table before the density check can fail.
    if (t.core >= threads_.size() || t.numa >= threads_.size() ||
        t.socket >= threads_.size() || t.smt_index >= threads_.size()) {
      fail("thread " + id_str(t.os_id) +
           " carries an id outside the dense range (core " +
           id_str(t.core) + ", numa " + id_str(t.numa) + ", socket " +
           id_str(t.socket) + ", smt_index " + id_str(t.smt_index) +
           " must all be < " + id_str(threads_.size()) + ")");
    }
    max_core = std::max(max_core, t.core);
    max_numa = std::max(max_numa, t.numa);
    max_socket = std::max(max_socket, t.socket);
  }
  n_cores_ = max_core + 1;
  n_numa_ = max_numa + 1;
  n_sockets_ = max_socket + 1;

  // Per-core consistency: every HW thread of a core must agree on the
  // core's NUMA domain, socket and class, and the smt_index values must
  // form 0..k-1 with no duplicates. kNone marks a core not seen yet.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> core_numa(n_cores_, kNone);
  std::vector<std::size_t> core_socket(n_cores_, kNone);
  core_class_.assign(n_cores_, kNone);
  smt_of_core_.assign(n_cores_, 0);
  std::vector<std::size_t> core_max_smt(n_cores_, 0);
  std::vector<std::vector<bool>> smt_seen(n_cores_);
  for (const HwThread& t : threads_) {
    if (core_numa[t.core] == kNone) {
      core_numa[t.core] = t.numa;
      core_socket[t.core] = t.socket;
      core_class_[t.core] = t.cls;
    } else {
      if (core_numa[t.core] != t.numa) {
        fail("core " + id_str(t.core) + " spans NUMA domains " +
             id_str(core_numa[t.core]) + " and " + id_str(t.numa));
      }
      if (core_socket[t.core] != t.socket) {
        fail("core " + id_str(t.core) + " spans sockets " +
             id_str(core_socket[t.core]) + " and " + id_str(t.socket));
      }
      if (core_class_[t.core] != t.cls) {
        fail("core " + id_str(t.core) + " mixes core classes " +
             id_str(core_class_[t.core]) + " and " + id_str(t.cls));
      }
    }
    auto& seen = smt_seen[t.core];
    if (t.smt_index >= seen.size()) seen.resize(t.smt_index + 1, false);
    if (seen[t.smt_index]) {
      fail("duplicate smt_index " + id_str(t.smt_index) + " on core " +
           id_str(t.core));
    }
    seen[t.smt_index] = true;
    ++smt_of_core_[t.core];
    core_max_smt[t.core] = std::max(core_max_smt[t.core], t.smt_index);
  }
  std::vector<bool> class_used(classes_.size(), false);
  max_smt_ = 0;
  for (std::size_t core = 0; core < n_cores_; ++core) {
    if (core_numa[core] == kNone) {
      fail("core ids must be dense from 0 (core " + id_str(core) +
           " has no hardware threads)");
    }
    class_used[core_class_[core]] = true;
    // Duplicates were rejected above, so count == max+1 iff 0..max are all
    // present — a gap means e.g. smt_index {0, 2}.
    if (smt_of_core_[core] != core_max_smt[core] + 1) {
      fail("smt_index values on core " + id_str(core) +
           " are not dense from 0");
    }
    max_smt_ = std::max(max_smt_, smt_of_core_[core]);
  }
  for (std::size_t cls = 0; cls < classes_.size(); ++cls) {
    if (!class_used[cls]) {
      fail("core class " + id_str(cls) + " ('" + classes_[cls].name +
           "') has no cores");
    }
  }

  // NUMA domains nest inside sockets; both id spaces must be dense.
  std::vector<std::size_t> numa_socket(n_numa_, kNone);
  std::vector<bool> socket_seen(n_sockets_, false);
  for (const HwThread& t : threads_) {
    if (numa_socket[t.numa] == kNone) {
      numa_socket[t.numa] = t.socket;
    } else if (numa_socket[t.numa] != t.socket) {
      fail("NUMA domain " + id_str(t.numa) + " spans sockets " +
           id_str(numa_socket[t.numa]) + " and " + id_str(t.socket));
    }
    socket_seen[t.socket] = true;
  }
  for (std::size_t d = 0; d < n_numa_; ++d) {
    if (numa_socket[d] == kNone) {
      fail("NUMA ids must be dense from 0 (domain " + id_str(d) +
           " has no hardware threads)");
    }
  }
  for (std::size_t s = 0; s < n_sockets_; ++s) {
    if (!socket_seen[s]) {
      fail("socket ids must be dense from 0 (socket " + id_str(s) +
           " has no hardware threads)");
    }
  }
}

Machine Machine::uniform(std::string name, std::size_t sockets,
                         std::size_t numa_per_socket,
                         std::size_t cores_per_numa, std::size_t smt,
                         double base_ghz, double max_ghz) {
  if (sockets == 0 || numa_per_socket == 0 || cores_per_numa == 0 ||
      smt == 0) {
    throw std::invalid_argument("Machine::uniform: zero-sized dimension");
  }
  const std::size_t n_cores = sockets * numa_per_socket * cores_per_numa;
  std::vector<HwThread> threads;
  threads.reserve(n_cores * smt);
  for (std::size_t s = 0; s < smt; ++s) {
    for (std::size_t core = 0; core < n_cores; ++core) {
      HwThread t;
      t.os_id = s * n_cores + core;
      t.core = core;
      t.numa = core / cores_per_numa;
      t.socket = t.numa / numa_per_socket;
      t.smt_index = s;
      threads.push_back(t);
    }
  }
  return Machine(std::move(name), std::move(threads), base_ghz, max_ghz);
}

Machine Machine::dardel() {
  return uniform("dardel", /*sockets=*/2, /*numa_per_socket=*/4,
                 /*cores_per_numa=*/16, /*smt=*/2, /*base_ghz=*/2.25,
                 /*max_ghz=*/3.4);
}

Machine Machine::vera() {
  return uniform("vera", /*sockets=*/2, /*numa_per_socket=*/1,
                 /*cores_per_numa=*/16, /*smt=*/1, /*base_ghz=*/2.1,
                 /*max_ghz=*/3.7);
}

std::optional<Machine> Machine::detect_native() {
  // Best-effort parse of /sys/devices/system/cpu/cpuN/topology.
  std::vector<HwThread> threads;
  for (std::size_t cpu = 0;; ++cpu) {
    const std::string base =
        "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    std::ifstream core_f(base + "core_id");
    std::ifstream pkg_f(base + "physical_package_id");
    if (!core_f || !pkg_f) {
      if (cpu == 0) return std::nullopt;
      break;
    }
    std::size_t core_id = 0;
    std::size_t pkg = 0;
    core_f >> core_id;
    pkg_f >> pkg;
    HwThread t;
    t.os_id = cpu;
    t.socket = pkg;
    t.numa = pkg;  // refined below if NUMA info exists; socket is a safe default.
    t.core = pkg * 4096 + core_id;  // globalize per-socket core ids.
    threads.push_back(t);
  }
  if (threads.empty()) return std::nullopt;
  // Renumber cores densely and set smt_index by arrival order per core.
  std::vector<std::size_t> core_ids;
  for (const auto& t : threads) core_ids.push_back(t.core);
  std::sort(core_ids.begin(), core_ids.end());
  core_ids.erase(std::unique(core_ids.begin(), core_ids.end()),
                 core_ids.end());
  std::vector<std::size_t> seen(core_ids.size(), 0);
  for (auto& t : threads) {
    const auto it =
        std::lower_bound(core_ids.begin(), core_ids.end(), t.core);
    const auto dense =
        static_cast<std::size_t>(it - core_ids.begin());
    t.core = dense;
    t.smt_index = seen[dense]++;
  }
  try {
    return Machine("native", std::move(threads));
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

CpuSet Machine::core_threads(std::size_t core) const {
  CpuSet s;
  for (const auto& t : threads_) {
    if (t.core == core) s.add(t.os_id);
  }
  return s;
}

CpuSet Machine::numa_threads(std::size_t numa) const {
  CpuSet s;
  for (const auto& t : threads_) {
    if (t.numa == numa) s.add(t.os_id);
  }
  return s;
}

CpuSet Machine::socket_threads(std::size_t socket) const {
  CpuSet s;
  for (const auto& t : threads_) {
    if (t.socket == socket) s.add(t.os_id);
  }
  return s;
}

CpuSet Machine::all_threads() const {
  CpuSet s;
  for (const auto& t : threads_) s.add(t.os_id);
  return s;
}

CpuSet Machine::primary_threads() const {
  CpuSet s;
  for (const auto& t : threads_) {
    if (t.smt_index == 0) s.add(t.os_id);
  }
  return s;
}

std::vector<std::size_t> Machine::cores_with_smt(std::size_t min_smt) const {
  std::vector<std::size_t> out;
  for (std::size_t core = 0; core < n_cores_; ++core) {
    if (smt_of_core_[core] >= min_smt) out.push_back(core);
  }
  return out;
}

std::vector<std::size_t> Machine::cores_in_numa(std::size_t numa) const {
  std::vector<std::size_t> out;
  std::vector<bool> seen(n_cores_, false);
  for (const auto& t : threads_) {
    if (t.numa == numa && !seen[t.core]) {
      seen[t.core] = true;
      out.push_back(t.core);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::size_t> Machine::sibling(std::size_t os_id) const {
  const auto& me = thread(os_id);
  for (const auto& t : threads_) {
    if (t.core == me.core && t.os_id != os_id) return t.os_id;
  }
  return std::nullopt;
}

bool Machine::same_numa(std::size_t a, std::size_t b) const {
  return thread(a).numa == thread(b).numa;
}

bool Machine::same_socket(std::size_t a, std::size_t b) const {
  return thread(a).socket == thread(b).socket;
}

}  // namespace omv::topo
