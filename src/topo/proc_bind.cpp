#include "topo/proc_bind.hpp"

#include <stdexcept>

namespace omv::topo {

ProcBind parse_proc_bind(const std::string& s) {
  if (s == "close") return ProcBind::close;
  if (s == "spread") return ProcBind::spread;
  if (s == "primary" || s == "master") return ProcBind::primary;
  if (s == "none" || s == "false") return ProcBind::none;
  if (s == "true") return ProcBind::close;  // implementation-defined; gcc uses close-like
  throw std::invalid_argument("OMP_PROC_BIND: unknown policy '" + s + "'");
}

const char* proc_bind_name(ProcBind b) noexcept {
  switch (b) {
    case ProcBind::none:
      return "none";
    case ProcBind::close:
      return "close";
    case ProcBind::spread:
      return "spread";
    case ProcBind::primary:
      return "primary";
  }
  return "?";
}

ThreadPlaceMap assign_places(std::size_t n_threads, const PlaceList& places,
                             ProcBind policy, std::size_t primary_place) {
  if (policy == ProcBind::none) return {};
  const std::size_t P = places.size();
  if (P == 0) throw std::invalid_argument("assign_places: empty place list");
  if (primary_place >= P) {
    throw std::invalid_argument("assign_places: primary place out of range");
  }
  ThreadPlaceMap map(n_threads, primary_place);
  if (n_threads == 0) return map;

  switch (policy) {
    case ProcBind::primary:
      break;  // all threads already at primary_place.
    case ProcBind::close: {
      if (n_threads <= P) {
        for (std::size_t i = 0; i < n_threads; ++i) {
          map[i] = (primary_place + i) % P;
        }
      } else {
        // Each place receives floor(T/P) or ceil(T/P) consecutive threads;
        // the first T mod P places receive the extra thread.
        const std::size_t base = n_threads / P;
        const std::size_t rem = n_threads % P;
        std::size_t t = 0;
        for (std::size_t p = 0; p < P; ++p) {
          const std::size_t take = base + (p < rem ? 1 : 0);
          for (std::size_t k = 0; k < take; ++k) {
            map[t++] = (primary_place + p) % P;
          }
        }
      }
      break;
    }
    case ProcBind::spread: {
      if (n_threads <= P) {
        // Partition P places into T contiguous subpartitions; thread i gets
        // the first place of subpartition i.
        const std::size_t base = P / n_threads;
        const std::size_t rem = P % n_threads;
        std::size_t start = 0;
        for (std::size_t i = 0; i < n_threads; ++i) {
          map[i] = (primary_place + start) % P;
          start += base + (i < rem ? 1 : 0);
        }
      } else {
        // T > P: same distribution as close.
        return assign_places(n_threads, places, ProcBind::close,
                             primary_place);
      }
      break;
    }
    case ProcBind::none:
      break;
  }
  return map;
}

std::vector<CpuSet> thread_affinities(std::size_t n_threads,
                                      const PlaceList& places, ProcBind policy,
                                      const Machine& machine,
                                      std::size_t primary_place) {
  std::vector<CpuSet> out;
  out.reserve(n_threads);
  if (policy == ProcBind::none) {
    const CpuSet all = machine.all_threads();
    for (std::size_t i = 0; i < n_threads; ++i) out.push_back(all);
    return out;
  }
  const auto map = assign_places(n_threads, places, policy, primary_place);
  for (std::size_t i = 0; i < n_threads; ++i) out.push_back(places[map[i]]);
  return out;
}

}  // namespace omv::topo
