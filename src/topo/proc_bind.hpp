#pragma once
// OMP_PROC_BIND thread-to-place assignment (OpenMP 5.0 §2.6.2).
//
// Implements the `close`, `spread` and `primary` policies plus `none`
// (unbound). The same mapping drives both the native backend (pthread
// affinity masks) and the simulator, so pinning experiments exercise the
// shipped production code path.

#include <cstddef>
#include <string>
#include <vector>

#include "topo/places.hpp"

namespace omv::topo {

/// Binding policy. `none` leaves threads unbound (the paper's
/// "before thread-pinning" configuration, where the OS may migrate them).
enum class ProcBind { none, close, spread, primary };

/// Parses "close"/"spread"/"primary"(or "master")/"none"/"true"/"false".
/// Throws std::invalid_argument otherwise.
[[nodiscard]] ProcBind parse_proc_bind(const std::string& s);

/// Human-readable policy name.
[[nodiscard]] const char* proc_bind_name(ProcBind b) noexcept;

/// Assignment of OpenMP threads to places: result[i] is the index into the
/// place list for OpenMP thread i. Empty when the policy is `none`.
using ThreadPlaceMap = std::vector<std::size_t>;

/// Computes the place index of each of `n_threads` OpenMP threads under the
/// given policy, starting from the place containing the primary thread
/// (`primary_place`, index into `places`).
///
/// Semantics follow the spec:
///  * close, T <= P : thread i -> place (primary + i) mod P.
///  * close, T >  P : consecutive threads share places, each place receiving
///    floor(T/P) or ceil(T/P) threads.
///  * spread, T <= P: places are divided into T contiguous subpartitions;
///    thread i is bound to the first place of subpartition i.
///  * spread, T >  P: equivalent to close for the assignment (each place is
///    its own subpartition with ceil(T/P)/floor(T/P) threads).
///  * primary      : every thread binds to `primary_place`.
[[nodiscard]] ThreadPlaceMap assign_places(std::size_t n_threads,
                                           const PlaceList& places,
                                           ProcBind policy,
                                           std::size_t primary_place = 0);

/// Convenience: resolves each OpenMP thread to the CpuSet it may run on.
/// For `none`, every thread receives `machine.all_threads()`.
[[nodiscard]] std::vector<CpuSet> thread_affinities(
    std::size_t n_threads, const PlaceList& places, ProcBind policy,
    const Machine& machine, std::size_t primary_place = 0);

}  // namespace omv::topo
