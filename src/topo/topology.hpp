#pragma once
// Hardware topology model: sockets > NUMA domains > physical cores > hardware
// threads (logical CPUs). Includes presets for the paper's two platforms and
// best-effort native detection from Linux sysfs.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "topo/cpuset.hpp"

namespace omv::topo {

/// One hardware thread (logical CPU as the OS numbers them).
struct HwThread {
  std::size_t os_id = 0;      ///< logical CPU id.
  std::size_t core = 0;       ///< physical core id (global).
  std::size_t numa = 0;       ///< NUMA domain id (global).
  std::size_t socket = 0;     ///< socket id.
  std::size_t smt_index = 0;  ///< 0 = first hyperthread of the core, 1 = second...
};

/// Immutable machine description.
class Machine {
 public:
  /// Builds a machine from explicit hardware threads (validated: dense os_ids
  /// starting at 0). Throws std::invalid_argument on inconsistency.
  explicit Machine(std::string name, std::vector<HwThread> threads,
                   double base_ghz = 2.0, double max_ghz = 3.0);

  /// Generic symmetric builder: `sockets` sockets x `numa_per_socket` domains
  /// x `cores_per_numa` cores x `smt` hardware threads per core.
  /// HW-thread numbering follows the common Linux convention: all first
  /// siblings (0..cores-1) then all second siblings (cores..2*cores-1).
  static Machine uniform(std::string name, std::size_t sockets,
                         std::size_t numa_per_socket,
                         std::size_t cores_per_numa, std::size_t smt,
                         double base_ghz = 2.0, double max_ghz = 3.0);

  /// Dardel node: 2x AMD EPYC Zen2 64-core, SMT-2, quad-NUMA per socket
  /// (8 domains of 16 cores), base 2.25 GHz, boost 3.4 GHz. 128 cores,
  /// 256 HW threads. Thin wrapper over uniform(); the scenario catalog's
  /// "dardel" preset is pinned bit-identical (tests/test_scenario.cpp).
  static Machine dardel();

  /// Vera node: 2x Intel Xeon Gold 6130 16-core, no SMT, one NUMA domain per
  /// socket, base 2.1 GHz, boost 3.7 GHz. 32 cores / 32 HW threads.
  /// Thin wrapper over uniform(); mirrored by the catalog's "vera" preset.
  static Machine vera();

  /// Detects the current host from /sys/devices/system/cpu (Linux). Returns
  /// nullopt when the information is unavailable.
  static std::optional<Machine> detect_native();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t n_threads() const noexcept {
    return threads_.size();
  }
  [[nodiscard]] std::size_t n_cores() const noexcept { return n_cores_; }
  [[nodiscard]] std::size_t n_numa() const noexcept { return n_numa_; }
  [[nodiscard]] std::size_t n_sockets() const noexcept { return n_sockets_; }
  [[nodiscard]] std::size_t smt_per_core() const noexcept {
    return n_cores_ ? threads_.size() / n_cores_ : 0;
  }
  [[nodiscard]] double base_ghz() const noexcept { return base_ghz_; }
  [[nodiscard]] double max_ghz() const noexcept { return max_ghz_; }

  /// Hardware thread by OS id.
  [[nodiscard]] const HwThread& thread(std::size_t os_id) const {
    return threads_.at(os_id);
  }
  [[nodiscard]] const std::vector<HwThread>& threads() const noexcept {
    return threads_;
  }

  /// All HW threads of physical core `core`.
  [[nodiscard]] CpuSet core_threads(std::size_t core) const;
  /// All HW threads of NUMA domain `numa`.
  [[nodiscard]] CpuSet numa_threads(std::size_t numa) const;
  /// All HW threads of socket `socket`.
  [[nodiscard]] CpuSet socket_threads(std::size_t socket) const;
  /// All HW threads.
  [[nodiscard]] CpuSet all_threads() const;
  /// First-sibling HW threads only (one per physical core) — the ST pool.
  [[nodiscard]] CpuSet primary_threads() const;

  /// The SMT sibling of `os_id` on the same core (nullopt if SMT=1).
  [[nodiscard]] std::optional<std::size_t> sibling(std::size_t os_id) const;

  /// True when two HW threads live in the same NUMA domain.
  [[nodiscard]] bool same_numa(std::size_t a, std::size_t b) const;
  /// True when two HW threads live on the same socket.
  [[nodiscard]] bool same_socket(std::size_t a, std::size_t b) const;

 private:
  std::string name_;
  std::vector<HwThread> threads_;
  std::size_t n_cores_ = 0;
  std::size_t n_numa_ = 0;
  std::size_t n_sockets_ = 0;
  double base_ghz_;
  double max_ghz_;
};

}  // namespace omv::topo
