#pragma once
// Hardware topology model: sockets > NUMA domains > physical cores > hardware
// threads (logical CPUs). Supports heterogeneous machines: cores belong to a
// *core class* (e.g. big.LITTLE P/E clusters) with a per-class frequency
// range, and SMT width may differ per core (partially SMT-disabled nodes).
// Includes presets for the paper's two platforms and best-effort native
// detection from Linux sysfs.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "topo/cpuset.hpp"

namespace omv::topo {

/// One class of physical cores (homogeneous machines have exactly one).
/// The class carries everything that differs between e.g. P-cores and
/// E-cores at the topology level: a display name and the frequency range.
/// (Per-class *compute-rate* calibration is simulator state, not topology —
/// see sim::SimConfig::class_work_rate.)
struct CoreClass {
  std::string name = "core";
  double base_ghz = 2.0;
  double max_ghz = 3.0;
};

/// One hardware thread (logical CPU as the OS numbers them).
struct HwThread {
  std::size_t os_id = 0;      ///< logical CPU id.
  std::size_t core = 0;       ///< physical core id (global).
  std::size_t numa = 0;       ///< NUMA domain id (global).
  std::size_t socket = 0;     ///< socket id.
  std::size_t smt_index = 0;  ///< 0 = first hyperthread of the core, 1 = second...
  std::size_t cls = 0;        ///< core-class index (0 on homogeneous machines).
};

/// Immutable machine description.
class Machine {
 public:
  /// Builds a homogeneous machine from explicit hardware threads (all
  /// `cls` fields must be 0; one implicit class named "core" spans the
  /// frequency range). Throws std::invalid_argument on inconsistency —
  /// see the class-list constructor for the full validation contract.
  explicit Machine(std::string name, std::vector<HwThread> threads,
                   double base_ghz = 2.0, double max_ghz = 3.0);

  /// Builds a (possibly heterogeneous) machine from explicit hardware
  /// threads and the core-class table the threads' `cls` fields index.
  /// Validated exhaustively; throws std::invalid_argument naming the
  /// offending entity when
  ///   * os_ids are not dense from 0,
  ///   * a core's threads disagree on NUMA domain, socket, or class,
  ///   * a NUMA domain spans more than one socket,
  ///   * core / NUMA / socket / class ids are not dense from 0,
  ///   * smt_index values within a core are duplicated or gapped,
  ///   * a class frequency range is empty or non-positive.
  Machine(std::string name, std::vector<HwThread> threads,
          std::vector<CoreClass> classes);

  /// Generic symmetric builder: `sockets` sockets x `numa_per_socket` domains
  /// x `cores_per_numa` cores x `smt` hardware threads per core.
  /// HW-thread numbering follows the common Linux convention: all first
  /// siblings (0..cores-1) then all second siblings (cores..2*cores-1).
  static Machine uniform(std::string name, std::size_t sockets,
                         std::size_t numa_per_socket,
                         std::size_t cores_per_numa, std::size_t smt,
                         double base_ghz = 2.0, double max_ghz = 3.0);

  /// Dardel node: 2x AMD EPYC Zen2 64-core, SMT-2, quad-NUMA per socket
  /// (8 domains of 16 cores), base 2.25 GHz, boost 3.4 GHz. 128 cores,
  /// 256 HW threads. Thin wrapper over uniform(); the scenario catalog's
  /// "dardel" preset is pinned bit-identical (tests/test_scenario.cpp).
  static Machine dardel();

  /// Vera node: 2x Intel Xeon Gold 6130 16-core, no SMT, one NUMA domain per
  /// socket, base 2.1 GHz, boost 3.7 GHz. 32 cores / 32 HW threads.
  /// Thin wrapper over uniform(); mirrored by the catalog's "vera" preset.
  static Machine vera();

  /// Detects the current host from /sys/devices/system/cpu (Linux). Returns
  /// nullopt when the information is unavailable.
  static std::optional<Machine> detect_native();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t n_threads() const noexcept {
    return threads_.size();
  }
  [[nodiscard]] std::size_t n_cores() const noexcept { return n_cores_; }
  [[nodiscard]] std::size_t n_numa() const noexcept { return n_numa_; }
  [[nodiscard]] std::size_t n_sockets() const noexcept { return n_sockets_; }

  /// Widest SMT of any core. The historical `smt_per_core()` returned the
  /// floor average n_threads/n_cores, which under-reports SMT on mixed
  /// machines (4 SMT-2 + 4 SMT-1 cores averaged to "1"); callers that
  /// gated SMT-aware behaviour on it silently treated such machines as
  /// SMT-free. Use smt_of_core() for per-core decisions.
  [[nodiscard]] std::size_t max_smt_per_core() const noexcept {
    return max_smt_;
  }
  /// Number of HW threads of physical core `core`. Throws std::out_of_range
  /// for ids >= n_cores().
  [[nodiscard]] std::size_t smt_of_core(std::size_t core) const {
    return smt_of_core_.at(core);
  }

  /// Lowest class base frequency (homogeneous machines: the base clock).
  [[nodiscard]] double base_ghz() const noexcept { return base_ghz_; }
  /// Highest class boost frequency (homogeneous machines: the max clock).
  [[nodiscard]] double max_ghz() const noexcept { return max_ghz_; }

  /// Core classes (size 1 on homogeneous machines).
  [[nodiscard]] const std::vector<CoreClass>& classes() const noexcept {
    return classes_;
  }
  [[nodiscard]] std::size_t n_classes() const noexcept {
    return classes_.size();
  }
  /// Class index of physical core `core`. Throws std::out_of_range for ids
  /// >= n_cores().
  [[nodiscard]] std::size_t core_class(std::size_t core) const {
    return core_class_.at(core);
  }
  [[nodiscard]] double core_base_ghz(std::size_t core) const {
    return classes_[core_class(core)].base_ghz;
  }
  [[nodiscard]] double core_max_ghz(std::size_t core) const {
    return classes_[core_class(core)].max_ghz;
  }

  /// Hardware thread by OS id.
  [[nodiscard]] const HwThread& thread(std::size_t os_id) const {
    return threads_.at(os_id);
  }
  [[nodiscard]] const std::vector<HwThread>& threads() const noexcept {
    return threads_;
  }

  /// All HW threads of physical core `core`.
  [[nodiscard]] CpuSet core_threads(std::size_t core) const;
  /// All HW threads of NUMA domain `numa`.
  [[nodiscard]] CpuSet numa_threads(std::size_t numa) const;
  /// All HW threads of socket `socket`.
  [[nodiscard]] CpuSet socket_threads(std::size_t socket) const;
  /// All HW threads.
  [[nodiscard]] CpuSet all_threads() const;
  /// First-sibling HW threads only (one per physical core) — the ST pool.
  [[nodiscard]] CpuSet primary_threads() const;

  /// Physical core ids with at least `min_smt` HW threads, ascending —
  /// the eligible pool for SMT contrasts on mixed machines.
  [[nodiscard]] std::vector<std::size_t> cores_with_smt(
      std::size_t min_smt) const;
  /// Physical core ids of NUMA domain `numa`, ascending.
  [[nodiscard]] std::vector<std::size_t> cores_in_numa(
      std::size_t numa) const;

  /// The SMT sibling of `os_id` on the same core (nullopt if the core has
  /// a single HW thread).
  [[nodiscard]] std::optional<std::size_t> sibling(std::size_t os_id) const;

  /// True when two HW threads live in the same NUMA domain.
  [[nodiscard]] bool same_numa(std::size_t a, std::size_t b) const;
  /// True when two HW threads live on the same socket.
  [[nodiscard]] bool same_socket(std::size_t a, std::size_t b) const;

 private:
  void validate_and_index();

  std::string name_;
  std::vector<HwThread> threads_;
  std::vector<CoreClass> classes_;
  std::size_t n_cores_ = 0;
  std::size_t n_numa_ = 0;
  std::size_t n_sockets_ = 0;
  std::size_t max_smt_ = 0;
  std::vector<std::size_t> smt_of_core_;  ///< per-core HW-thread count.
  std::vector<std::size_t> core_class_;   ///< per-core class index.
  double base_ghz_;
  double max_ghz_;
};

}  // namespace omv::topo
