#pragma once
// OMP_PLACES parser (OpenMP 5.0 §6.5).
//
// Supports the abstract names `threads`, `cores`, `sockets`, `numa_domains`
// (each optionally with a count, e.g. "cores(8)") and the explicit list
// syntax:
//
//   place-list     := place-interval ("," place-interval)*
//   place-interval := place [":" count [":" stride]]
//   place          := "{" res-interval ("," res-interval)* "}"
//   res-interval   := nonneg-num [":" len [":" stride]]
//
// e.g. "{0:4}:8:4" expands to 8 places of 4 consecutive HW threads each,
// starting at 0, 4, 8, ... A place is a CpuSet; OpenMP threads are bound to
// places by the proc_bind policy (see proc_bind.hpp).

#include <string>
#include <vector>

#include "topo/cpuset.hpp"
#include "topo/topology.hpp"

namespace omv::topo {

/// A place list: each place is a set of hardware threads.
using PlaceList = std::vector<CpuSet>;

/// Parses an OMP_PLACES value against a machine (abstract names need the
/// topology). Throws std::invalid_argument on syntax errors, empty places, or
/// references to nonexistent hardware threads.
[[nodiscard]] PlaceList parse_places(const std::string& spec,
                                     const Machine& machine);

/// Builds the abstract place list for a machine without parsing:
/// one place per hardware thread.
[[nodiscard]] PlaceList places_threads(const Machine& machine);
/// One place per physical core (both SMT siblings in the place).
[[nodiscard]] PlaceList places_cores(const Machine& machine);
/// One place per NUMA domain.
[[nodiscard]] PlaceList places_numa(const Machine& machine);
/// One place per socket.
[[nodiscard]] PlaceList places_sockets(const Machine& machine);

/// Renders a place list back to explicit OMP_PLACES syntax (for logs).
[[nodiscard]] std::string to_string(const PlaceList& places);

}  // namespace omv::topo
