#include "topo/affinity.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include <thread>

namespace omv::topo {

#if defined(__linux__)

bool pin_current_thread(const CpuSet& set) noexcept {
  if (set.empty()) return false;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  for (std::size_t cpu : set) {
    if (cpu < CPU_SETSIZE) CPU_SET(cpu, &mask);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
}

CpuSet current_thread_affinity() noexcept {
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (pthread_getaffinity_np(pthread_self(), sizeof(mask), &mask) != 0) {
    return {};
  }
  CpuSet out;
  for (std::size_t cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &mask)) out.add(cpu);
  }
  return out;
}

std::size_t usable_cpu_count() noexcept {
  const CpuSet cur = current_thread_affinity();
  if (!cur.empty()) return cur.count();
  const unsigned hc = std::thread::hardware_concurrency();
  return hc ? hc : 1;
}

#else  // non-Linux fallback: affinity is a no-op.

bool pin_current_thread(const CpuSet&) noexcept { return false; }

CpuSet current_thread_affinity() noexcept { return {}; }

std::size_t usable_cpu_count() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc ? hc : 1;
}

#endif

}  // namespace omv::topo
