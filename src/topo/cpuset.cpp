#include "topo/cpuset.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <stdexcept>

namespace omv::topo {

void CpuSet::ensure(std::size_t cpu) {
  const std::size_t word = cpu / 64;
  if (word >= bits_.size()) bits_.resize(word + 1, 0);
}

void CpuSet::trim() {
  while (!bits_.empty() && bits_.back() == 0) bits_.pop_back();
}

CpuSet CpuSet::single(std::size_t cpu) {
  CpuSet s;
  s.add(cpu);
  return s;
}

CpuSet CpuSet::range(std::size_t first, std::size_t count) {
  CpuSet s;
  for (std::size_t i = 0; i < count; ++i) s.add(first + i);
  return s;
}

CpuSet CpuSet::parse(const std::string& list) {
  CpuSet s;
  std::size_t pos = 0;
  const auto parse_num = [&]() -> std::size_t {
    if (pos >= list.size() || !std::isdigit(static_cast<unsigned char>(list[pos]))) {
      throw std::invalid_argument("CpuSet::parse: expected digit in '" + list +
                                  "'");
    }
    std::size_t v = 0;
    while (pos < list.size() &&
           std::isdigit(static_cast<unsigned char>(list[pos]))) {
      v = v * 10 + static_cast<std::size_t>(list[pos] - '0');
      ++pos;
    }
    return v;
  };
  if (list.empty()) return s;
  while (true) {
    const std::size_t lo = parse_num();
    std::size_t hi = lo;
    if (pos < list.size() && list[pos] == '-') {
      ++pos;
      hi = parse_num();
      if (hi < lo) throw std::invalid_argument("CpuSet::parse: inverted range");
    }
    for (std::size_t c = lo; c <= hi; ++c) s.add(c);
    if (pos == list.size()) break;
    if (list[pos] != ',') {
      throw std::invalid_argument("CpuSet::parse: expected ',' in '" + list +
                                  "'");
    }
    ++pos;
  }
  return s;
}

void CpuSet::add(std::size_t cpu) {
  ensure(cpu);
  bits_[cpu / 64] |= (1ULL << (cpu % 64));
}

void CpuSet::remove(std::size_t cpu) {
  if (cpu / 64 < bits_.size()) {
    bits_[cpu / 64] &= ~(1ULL << (cpu % 64));
    trim();
  }
}

bool CpuSet::contains(std::size_t cpu) const noexcept {
  return cpu / 64 < bits_.size() &&
         (bits_[cpu / 64] >> (cpu % 64)) & 1ULL;
}

std::size_t CpuSet::count() const noexcept {
  std::size_t n = 0;
  for (auto w : bits_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t CpuSet::first() const {
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    if (bits_[w]) {
      return w * 64 +
             static_cast<std::size_t>(std::countr_zero(bits_[w]));
    }
  }
  throw std::out_of_range("CpuSet::first: empty set");
}

std::vector<std::size_t> CpuSet::to_vector() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t cpu : *this) out.push_back(cpu);
  return out;
}

std::string CpuSet::to_string() const {
  const auto v = to_vector();
  std::string out;
  std::size_t i = 0;
  while (i < v.size()) {
    std::size_t j = i;
    while (j + 1 < v.size() && v[j + 1] == v[j] + 1) ++j;
    if (!out.empty()) out += ',';
    out += std::to_string(v[i]);
    if (j > i) out += '-' + std::to_string(v[j]);
    i = j + 1;
  }
  return out;
}

CpuSet CpuSet::operator|(const CpuSet& o) const {
  CpuSet s = *this;
  if (o.bits_.size() > s.bits_.size()) s.bits_.resize(o.bits_.size(), 0);
  for (std::size_t w = 0; w < o.bits_.size(); ++w) s.bits_[w] |= o.bits_[w];
  return s;
}

CpuSet CpuSet::operator&(const CpuSet& o) const {
  CpuSet s;
  const std::size_t n = std::min(bits_.size(), o.bits_.size());
  s.bits_.assign(n, 0);
  for (std::size_t w = 0; w < n; ++w) s.bits_[w] = bits_[w] & o.bits_[w];
  s.trim();
  return s;
}

CpuSet CpuSet::operator-(const CpuSet& o) const {
  CpuSet s = *this;
  const std::size_t n = std::min(s.bits_.size(), o.bits_.size());
  for (std::size_t w = 0; w < n; ++w) s.bits_[w] &= ~o.bits_[w];
  s.trim();
  return s;
}

bool CpuSet::operator==(const CpuSet& o) const {
  CpuSet a = *this;
  CpuSet b = o;
  a.trim();
  b.trim();
  return a.bits_ == b.bits_;
}

}  // namespace omv::topo
