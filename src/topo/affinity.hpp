#pragma once
// Native thread-affinity application (Linux pthread). The simulator uses the
// same ThreadPlaceMap directly; this layer is only needed for the native
// OpenMP backend and the frequency-logger's spare-core pinning.

#include "topo/cpuset.hpp"

namespace omv::topo {

/// Pins the calling thread to `set`. Returns false (and leaves affinity
/// untouched) when the platform call fails — e.g. the mask names CPUs the
/// host does not have. Never throws.
bool pin_current_thread(const CpuSet& set) noexcept;

/// Current affinity mask of the calling thread (empty on failure).
[[nodiscard]] CpuSet current_thread_affinity() noexcept;

/// Number of CPUs currently usable by this process (affinity-aware).
[[nodiscard]] std::size_t usable_cpu_count() noexcept;

}  // namespace omv::topo
