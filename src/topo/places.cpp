#include "topo/places.hpp"

#include <cctype>
#include <stdexcept>

namespace omv::topo {
namespace {

/// Minimal recursive-descent parser over the explicit place syntax.
class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  PlaceList parse() {
    PlaceList places;
    parse_place_interval(places);
    while (!eof() && peek() == ',') {
      ++pos_;
      parse_place_interval(places);
    }
    if (!eof()) fail("trailing characters");
    return places;
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;

  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("OMP_PLACES parse error at position " +
                                std::to_string(pos_) + ": " + what + " in '" +
                                s_ + "'");
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  long parse_num() {
    skip_ws();
    bool neg = false;
    if (!eof() && (peek() == '-' || peek() == '+')) {
      neg = peek() == '-';
      ++pos_;
    }
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("expected number");
    }
    long v = 0;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      v = v * 10 + (peek() - '0');
      ++pos_;
    }
    skip_ws();
    return neg ? -v : v;
  }

  CpuSet parse_place() {
    skip_ws();
    if (eof() || peek() != '{') fail("expected '{'");
    ++pos_;
    CpuSet place;
    parse_res_interval(place);
    while (!eof() && peek() == ',') {
      ++pos_;
      parse_res_interval(place);
    }
    skip_ws();
    if (eof() || peek() != '}') fail("expected '}'");
    ++pos_;
    skip_ws();
    return place;
  }

  void parse_res_interval(CpuSet& place) {
    const long start = parse_num();
    long len = 1;
    long stride = 1;
    if (!eof() && peek() == ':') {
      ++pos_;
      len = parse_num();
      if (!eof() && peek() == ':') {
        ++pos_;
        stride = parse_num();
      }
    }
    if (start < 0 || len <= 0) fail("invalid resource interval");
    for (long i = 0; i < len; ++i) {
      const long id = start + i * stride;
      if (id < 0) fail("negative hardware thread id");
      place.add(static_cast<std::size_t>(id));
    }
  }

  void parse_place_interval(PlaceList& places) {
    const CpuSet base = parse_place();
    long count = 1;
    long stride = 1;
    if (!eof() && peek() == ':') {
      ++pos_;
      count = parse_num();
      if (!eof() && peek() == ':') {
        ++pos_;
        stride = parse_num();
      }
      if (count <= 0) fail("invalid place count");
    }
    for (long c = 0; c < count; ++c) {
      CpuSet shifted;
      for (std::size_t cpu : base) {
        const long id = static_cast<long>(cpu) + c * stride;
        if (id < 0) fail("place shifted below 0");
        shifted.add(static_cast<std::size_t>(id));
      }
      places.push_back(std::move(shifted));
    }
  }
};

/// Splits "name(count)" into name and optional count.
struct AbstractSpec {
  std::string name;
  std::size_t count = 0;  // 0 = all
  bool valid = false;
};

AbstractSpec parse_abstract(const std::string& spec) {
  AbstractSpec a;
  std::size_t i = 0;
  while (i < spec.size() &&
         (std::isalpha(static_cast<unsigned char>(spec[i])) || spec[i] == '_')) {
    a.name += spec[i];
    ++i;
  }
  if (a.name.empty()) return a;
  if (i == spec.size()) {
    a.valid = true;
    return a;
  }
  if (spec[i] != '(') return a;
  ++i;
  std::size_t v = 0;
  bool got = false;
  while (i < spec.size() && std::isdigit(static_cast<unsigned char>(spec[i]))) {
    v = v * 10 + static_cast<std::size_t>(spec[i] - '0');
    ++i;
    got = true;
  }
  if (!got || i + 1 != spec.size() || spec[i] != ')') return a;
  if (v == 0) return a;
  a.count = v;
  a.valid = true;
  return a;
}

void validate(const PlaceList& places, const Machine& m,
              const std::string& spec) {
  if (places.empty()) {
    throw std::invalid_argument("OMP_PLACES '" + spec + "': no places");
  }
  for (const auto& p : places) {
    if (p.empty()) {
      throw std::invalid_argument("OMP_PLACES '" + spec + "': empty place");
    }
    for (std::size_t cpu : p) {
      if (cpu >= m.n_threads()) {
        throw std::invalid_argument(
            "OMP_PLACES '" + spec + "': hardware thread " +
            std::to_string(cpu) + " does not exist (machine has " +
            std::to_string(m.n_threads()) + ")");
      }
    }
  }
}

PlaceList truncate(PlaceList places, std::size_t count) {
  if (count != 0 && count < places.size()) places.resize(count);
  return places;
}

}  // namespace

PlaceList places_threads(const Machine& machine) {
  PlaceList out;
  out.reserve(machine.n_threads());
  for (const auto& t : machine.threads()) {
    out.push_back(CpuSet::single(t.os_id));
  }
  return out;
}

PlaceList places_cores(const Machine& machine) {
  PlaceList out;
  out.reserve(machine.n_cores());
  for (std::size_t c = 0; c < machine.n_cores(); ++c) {
    out.push_back(machine.core_threads(c));
  }
  return out;
}

PlaceList places_numa(const Machine& machine) {
  PlaceList out;
  out.reserve(machine.n_numa());
  for (std::size_t n = 0; n < machine.n_numa(); ++n) {
    out.push_back(machine.numa_threads(n));
  }
  return out;
}

PlaceList places_sockets(const Machine& machine) {
  PlaceList out;
  out.reserve(machine.n_sockets());
  for (std::size_t s = 0; s < machine.n_sockets(); ++s) {
    out.push_back(machine.socket_threads(s));
  }
  return out;
}

PlaceList parse_places(const std::string& spec, const Machine& machine) {
  const auto abs = parse_abstract(spec);
  PlaceList places;
  if (abs.valid) {
    if (abs.name == "threads") {
      places = truncate(places_threads(machine), abs.count);
    } else if (abs.name == "cores") {
      places = truncate(places_cores(machine), abs.count);
    } else if (abs.name == "numa_domains") {
      places = truncate(places_numa(machine), abs.count);
    } else if (abs.name == "sockets") {
      places = truncate(places_sockets(machine), abs.count);
    } else {
      throw std::invalid_argument("OMP_PLACES: unknown abstract name '" +
                                  abs.name + "'");
    }
  } else {
    places = Parser(spec).parse();
  }
  validate(places, machine, spec);
  return places;
}

std::string to_string(const PlaceList& places) {
  // Emits ids one by one ("{0,1,2,3}") rather than CpuSet's Linux range
  // format ("0-3"): the OMP_PLACES grammar has no dash ranges, and the
  // output must parse back through parse_places.
  std::string out;
  for (std::size_t i = 0; i < places.size(); ++i) {
    if (i) out += ',';
    out += '{';
    const auto ids = places[i].to_vector();
    for (std::size_t k = 0; k < ids.size(); ++k) {
      if (k) out += ',';
      out += std::to_string(ids[k]);
    }
    out += '}';
  }
  return out;
}

}  // namespace omv::topo
