#pragma once
// Dynamic CPU sets, the common currency between the places parser, the
// proc_bind mapper, the native affinity layer and the simulator.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

namespace omv::topo {

/// A set of hardware-thread (logical CPU) ids. Ids are dense small integers;
/// the set grows on demand.
class CpuSet {
 public:
  CpuSet() = default;

  /// Forward iterator over members in ascending order. Allocation-free —
  /// the simulator's per-event hot paths iterate sets directly instead of
  /// materializing a std::vector via to_vector().
  class const_iterator {
   public:
    using value_type = std::size_t;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;

    std::size_t operator*() const noexcept {
      return word_ * 64 +
             static_cast<std::size_t>(std::countr_zero(current_));
    }

    const_iterator& operator++() noexcept {
      current_ &= current_ - 1;  // clear lowest set bit
      advance();
      return *this;
    }

    const_iterator operator++(int) noexcept {
      const_iterator old = *this;
      ++*this;
      return old;
    }

    bool operator==(const const_iterator& o) const noexcept {
      return word_ == o.word_ && current_ == o.current_;
    }

   private:
    friend class CpuSet;
    const_iterator(const std::uint64_t* words, std::size_t n_words,
                   std::size_t word) noexcept
        : words_(words), n_words_(n_words), word_(word) {
      if (word_ < n_words_) current_ = words_[word_];
      advance();
    }

    /// Skips empty words until a set bit or the end is reached.
    void advance() noexcept {
      while (current_ == 0 && word_ < n_words_) {
        ++word_;
        current_ = word_ < n_words_ ? words_[word_] : 0;
      }
      if (current_ == 0) word_ = n_words_;
    }

    const std::uint64_t* words_ = nullptr;
    std::size_t n_words_ = 0;
    std::size_t word_ = 0;
    std::uint64_t current_ = 0;
  };

  [[nodiscard]] const_iterator begin() const noexcept {
    return {bits_.data(), bits_.size(), 0};
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return {bits_.data(), bits_.size(), bits_.size()};
  }

  /// Singleton set {cpu}.
  static CpuSet single(std::size_t cpu);
  /// Contiguous range [first, first+count).
  static CpuSet range(std::size_t first, std::size_t count);
  /// Parses Linux list format: "0-3,8,10-11". Throws std::invalid_argument
  /// on malformed input.
  static CpuSet parse(const std::string& list);

  /// Adds one cpu id.
  void add(std::size_t cpu);
  /// Removes one cpu id (no-op if absent).
  void remove(std::size_t cpu);
  [[nodiscard]] bool contains(std::size_t cpu) const noexcept;
  [[nodiscard]] std::size_t count() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return count() == 0; }

  /// Smallest member; throws std::out_of_range if empty.
  [[nodiscard]] std::size_t first() const;

  /// Ascending list of members.
  [[nodiscard]] std::vector<std::size_t> to_vector() const;

  /// Linux list format ("0-3,8").
  [[nodiscard]] std::string to_string() const;

  /// Set union / intersection / difference.
  [[nodiscard]] CpuSet operator|(const CpuSet& o) const;
  [[nodiscard]] CpuSet operator&(const CpuSet& o) const;
  [[nodiscard]] CpuSet operator-(const CpuSet& o) const;

  bool operator==(const CpuSet& o) const;

 private:
  // One bit per cpu, in 64-bit words.
  std::vector<std::uint64_t> bits_;
  void ensure(std::size_t cpu);
  void trim();
};

}  // namespace omv::topo
