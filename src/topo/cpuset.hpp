#pragma once
// Dynamic CPU sets, the common currency between the places parser, the
// proc_bind mapper, the native affinity layer and the simulator.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace omv::topo {

/// A set of hardware-thread (logical CPU) ids. Ids are dense small integers;
/// the set grows on demand.
class CpuSet {
 public:
  CpuSet() = default;

  /// Singleton set {cpu}.
  static CpuSet single(std::size_t cpu);
  /// Contiguous range [first, first+count).
  static CpuSet range(std::size_t first, std::size_t count);
  /// Parses Linux list format: "0-3,8,10-11". Throws std::invalid_argument
  /// on malformed input.
  static CpuSet parse(const std::string& list);

  /// Adds one cpu id.
  void add(std::size_t cpu);
  /// Removes one cpu id (no-op if absent).
  void remove(std::size_t cpu);
  [[nodiscard]] bool contains(std::size_t cpu) const noexcept;
  [[nodiscard]] std::size_t count() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return count() == 0; }

  /// Smallest member; throws std::out_of_range if empty.
  [[nodiscard]] std::size_t first() const;

  /// Ascending list of members.
  [[nodiscard]] std::vector<std::size_t> to_vector() const;

  /// Linux list format ("0-3,8").
  [[nodiscard]] std::string to_string() const;

  /// Set union / intersection / difference.
  [[nodiscard]] CpuSet operator|(const CpuSet& o) const;
  [[nodiscard]] CpuSet operator&(const CpuSet& o) const;
  [[nodiscard]] CpuSet operator-(const CpuSet& o) const;

  bool operator==(const CpuSet& o) const;

 private:
  // One bit per cpu, in 64-bit words.
  std::vector<std::uint64_t> bits_;
  void ensure(std::size_t cpu);
  void trim();
};

}  // namespace omv::topo
