#include "freqlog/freq_reader.hpp"

#include <fstream>
#include <string>

namespace omv::freqlog {

namespace {
std::string cpufreq_path(std::size_t core) {
  return "/sys/devices/system/cpu/cpu" + std::to_string(core) +
         "/cpufreq/scaling_cur_freq";
}
}  // namespace

SysfsFreqReader::SysfsFreqReader() {
  for (std::size_t c = 0;; ++c) {
    std::ifstream f("/sys/devices/system/cpu/cpu" + std::to_string(c) +
                    "/topology/core_id");
    if (!f) break;
    ++n_cores_;
  }
  if (n_cores_ > 0) {
    std::ifstream f(cpufreq_path(0));
    available_ = static_cast<bool>(f);
  }
}

std::optional<double> SysfsFreqReader::read_ghz(std::size_t core) {
  std::ifstream f(cpufreq_path(core));
  if (!f) return std::nullopt;
  long khz = 0;
  f >> khz;
  if (!f || khz <= 0) return std::nullopt;
  return static_cast<double>(khz) / 1e6;
}

}  // namespace omv::freqlog
