#pragma once
// Frequency readers: the abstraction over "where do per-core frequencies
// come from". Two implementations:
//   * SysfsFreqReader — the real Linux CPUFreq interface
//     (/sys/devices/system/cpu/cpuN/cpufreq/scaling_cur_freq), which is what
//     the paper's Python logger read;
//   * SimFreqReader  — samples the simulator's frequency model at its
//     current simulated time (set by the benchmark between phases).

#include <cstddef>
#include <optional>
#include <vector>

#include "sim/freq.hpp"

namespace omv::freqlog {

/// Reads the instantaneous frequency (GHz) of every core.
class FreqReader {
 public:
  virtual ~FreqReader() = default;
  /// Number of cores this reader reports on.
  [[nodiscard]] virtual std::size_t n_cores() const = 0;
  /// Frequency of `core` in GHz; nullopt when unreadable.
  [[nodiscard]] virtual std::optional<double> read_ghz(std::size_t core) = 0;
};

/// Linux sysfs CPUFreq reader. Gracefully reports nullopt per core when the
/// interface is absent (containers, non-Linux).
class SysfsFreqReader final : public FreqReader {
 public:
  SysfsFreqReader();
  [[nodiscard]] std::size_t n_cores() const override { return n_cores_; }
  [[nodiscard]] std::optional<double> read_ghz(std::size_t core) override;

  /// True when at least one core's cpufreq node is readable.
  [[nodiscard]] bool available() const noexcept { return available_; }

 private:
  std::size_t n_cores_ = 0;
  bool available_ = false;
};

/// Simulator-backed reader: samples FreqModel at an externally advanced
/// simulated time.
class SimFreqReader final : public FreqReader {
 public:
  SimFreqReader(sim::FreqModel& model, std::size_t n_cores)
      : model_(&model), n_cores_(n_cores) {}

  /// Sets the simulated time of subsequent reads.
  void set_time(double t) noexcept { time_ = t; }
  [[nodiscard]] double time() const noexcept { return time_; }

  [[nodiscard]] std::size_t n_cores() const override { return n_cores_; }
  [[nodiscard]] std::optional<double> read_ghz(std::size_t core) override {
    return model_->sample_ghz(core, time_);
  }

 private:
  sim::FreqModel* model_;
  std::size_t n_cores_;
  double time_ = 0.0;
};

}  // namespace omv::freqlog
