#pragma once
// Frequency logger + trace analysis.
//
// Mirrors the paper's methodology: a logger samples every core's frequency
// at a fixed interval while the benchmark runs. Natively this is a
// background thread pinned to a spare core (the paper used a Python script
// on a separate core); against the simulator it samples the frequency model
// along simulated time. The trace analysis quantifies the paper's "brown /
// grey regions": the fraction of samples below a threshold of fmax.

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "freqlog/freq_reader.hpp"
#include "topo/cpuset.hpp"

namespace omv::freqlog {

/// One sample: time, core, frequency.
struct FreqSample {
  double time = 0.0;
  std::size_t core = 0;
  double ghz = 0.0;
};

/// A recorded frequency trace.
class FreqTrace {
 public:
  void add(FreqSample s) { samples_.push_back(s); }
  void append(const FreqTrace& other);
  [[nodiscard]] const std::vector<FreqSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

  /// Fraction of samples with ghz < threshold_fraction * fmax_ghz —
  /// the "variation region" metric for Figs. 6b/6d and 7b/7d.
  [[nodiscard]] double fraction_below(double fmax_ghz,
                                      double threshold_fraction) const;

  /// Per-core-fmax variant for heterogeneous machines: a sample of core c
  /// is "below" when ghz < threshold_fraction * fmax_per_core[c] (cores
  /// beyond the vector are never below). On uniform machines this is
  /// bit-identical to the scalar overload — an E-core cruising at its own
  /// fmax must not count as a dip just because P-cores clock higher.
  [[nodiscard]] double fraction_below(
      const std::vector<double>& fmax_per_core,
      double threshold_fraction) const;

  /// Minimum / mean / maximum sampled frequency (GHz); zeros when empty.
  struct Extremes {
    double min = 0.0;
    double mean = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Extremes extremes() const;

  /// Number of maximal contiguous episodes (in sample order per core) with
  /// ghz < threshold_fraction * fmax.
  [[nodiscard]] std::size_t episode_count(double fmax_ghz,
                                          double threshold_fraction) const;

  /// Per-core-fmax variant (see fraction_below).
  [[nodiscard]] std::size_t episode_count(
      const std::vector<double>& fmax_per_core,
      double threshold_fraction) const;

 private:
  std::vector<FreqSample> samples_;
};

/// Samples all cores of a reader at a simulated-time grid (simulator mode:
/// no threads involved, fully deterministic).
[[nodiscard]] FreqTrace sample_sim(SimFreqReader& reader, double t0, double t1,
                                   double interval);

/// Background logger thread (native mode): samples all cores every
/// `interval_s` of wall time, optionally pinned to `logger_cpu` so the
/// logger itself does not disturb the benchmark (the paper's separate core).
class BackgroundLogger {
 public:
  BackgroundLogger(FreqReader& reader, double interval_s,
                   std::optional<std::size_t> logger_cpu = std::nullopt);
  ~BackgroundLogger();

  BackgroundLogger(const BackgroundLogger&) = delete;
  BackgroundLogger& operator=(const BackgroundLogger&) = delete;

  /// Stops sampling and returns the trace (idempotent).
  FreqTrace stop();

 private:
  void run();

  FreqReader& reader_;
  double interval_s_;
  std::optional<std::size_t> logger_cpu_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  FreqTrace trace_;
  bool joined_ = false;
};

}  // namespace omv::freqlog
