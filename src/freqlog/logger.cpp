#include "freqlog/logger.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "topo/affinity.hpp"

namespace omv::freqlog {

void FreqTrace::append(const FreqTrace& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

double FreqTrace::fraction_below(double fmax_ghz,
                                 double threshold_fraction) const {
  if (samples_.empty()) return 0.0;
  const double thr = fmax_ghz * threshold_fraction;
  std::size_t below = 0;
  for (const auto& s : samples_) {
    if (s.ghz < thr) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(samples_.size());
}

double FreqTrace::fraction_below(const std::vector<double>& fmax_per_core,
                                 double threshold_fraction) const {
  if (samples_.empty()) return 0.0;
  std::size_t below = 0;
  for (const auto& s : samples_) {
    if (s.core < fmax_per_core.size() &&
        s.ghz < fmax_per_core[s.core] * threshold_fraction) {
      ++below;
    }
  }
  return static_cast<double>(below) / static_cast<double>(samples_.size());
}

FreqTrace::Extremes FreqTrace::extremes() const {
  Extremes e;
  if (samples_.empty()) return e;
  e.min = samples_[0].ghz;
  e.max = samples_[0].ghz;
  double sum = 0.0;
  for (const auto& s : samples_) {
    e.min = std::min(e.min, s.ghz);
    e.max = std::max(e.max, s.ghz);
    sum += s.ghz;
  }
  e.mean = sum / static_cast<double>(samples_.size());
  return e;
}

std::size_t FreqTrace::episode_count(double fmax_ghz,
                                     double threshold_fraction) const {
  const double thr = fmax_ghz * threshold_fraction;
  // Per-core pass in recorded order.
  std::map<std::size_t, bool> in_episode;
  std::size_t episodes = 0;
  for (const auto& s : samples_) {
    bool& active = in_episode[s.core];
    if (s.ghz < thr) {
      if (!active) {
        active = true;
        ++episodes;
      }
    } else {
      active = false;
    }
  }
  return episodes;
}

std::size_t FreqTrace::episode_count(
    const std::vector<double>& fmax_per_core,
    double threshold_fraction) const {
  std::map<std::size_t, bool> in_episode;
  std::size_t episodes = 0;
  for (const auto& s : samples_) {
    bool& active = in_episode[s.core];
    const bool dip = s.core < fmax_per_core.size() &&
                     s.ghz < fmax_per_core[s.core] * threshold_fraction;
    if (dip) {
      if (!active) {
        active = true;
        ++episodes;
      }
    } else {
      active = false;
    }
  }
  return episodes;
}

FreqTrace sample_sim(SimFreqReader& reader, double t0, double t1,
                     double interval) {
  FreqTrace trace;
  if (interval <= 0.0 || t1 <= t0) return trace;
  // Integer stepping avoids floating-point drift deciding the sample count.
  const auto steps = static_cast<std::size_t>((t1 - t0) / interval);
  for (std::size_t i = 0; i < steps; ++i) {
    const double t = t0 + static_cast<double>(i) * interval;
    reader.set_time(t);
    for (std::size_t c = 0; c < reader.n_cores(); ++c) {
      if (const auto g = reader.read_ghz(c)) {
        trace.add({t, c, *g});
      }
    }
  }
  return trace;
}

BackgroundLogger::BackgroundLogger(FreqReader& reader, double interval_s,
                                   std::optional<std::size_t> logger_cpu)
    : reader_(reader), interval_s_(interval_s), logger_cpu_(logger_cpu) {
  thread_ = std::thread([this] { run(); });
}

void BackgroundLogger::run() {
  if (logger_cpu_) {
    topo::pin_current_thread(topo::CpuSet::single(*logger_cpu_));
  }
  const auto start = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_relaxed)) {
    const double t =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    for (std::size_t c = 0; c < reader_.n_cores(); ++c) {
      if (const auto g = reader_.read_ghz(c)) {
        trace_.add({t, c, *g});
      }
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_s_));
  }
}

FreqTrace BackgroundLogger::stop() {
  if (!joined_) {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
    joined_ = true;
  }
  return trace_;
}

BackgroundLogger::~BackgroundLogger() { stop(); }

}  // namespace omv::freqlog
