#include "freqlog/trace_csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/atomic_file.hpp"

namespace omv::freqlog {

namespace {

[[noreturn]] void bad_line(const char* what, std::size_t line_no) {
  throw std::invalid_argument("freq-trace CSV: " + std::string(what) +
                              " at line " + std::to_string(line_no));
}

void write_double(std::ostream& os, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 17);
  os.write(buf, res.ptr - buf);
}

}  // namespace

void write_freq_trace_csv(std::ostream& os, const FreqTrace& trace) {
  os << "time,core,ghz\n";
  for (const auto& s : trace.samples()) {
    write_double(os, s.time);
    os << ',' << s.core << ',';
    write_double(os, s.ghz);
    os << '\n';
  }
}

std::string freq_trace_to_csv(const FreqTrace& trace) {
  std::ostringstream os;
  write_freq_trace_csv(os, trace);
  return os.str();
}

FreqTrace read_freq_trace_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("freq-trace CSV: empty input");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != "time,core,ghz") {
    throw std::invalid_argument("freq-trace CSV: bad header '" + line + "'");
  }
  FreqTrace trace;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    FreqSample s;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    auto r1 = std::from_chars(p, end, s.time);
    if (r1.ec != std::errc{} || r1.ptr == end || *r1.ptr != ',') {
      bad_line("bad time", line_no);
    }
    auto r2 = std::from_chars(r1.ptr + 1, end, s.core);
    if (r2.ec != std::errc{} || r2.ptr == end || *r2.ptr != ',') {
      bad_line("bad core", line_no);
    }
    auto r3 = std::from_chars(r2.ptr + 1, end, s.ghz);
    if (r3.ec != std::errc{}) bad_line("bad ghz", line_no);
    if (r3.ptr != end) bad_line("trailing garbage after ghz", line_no);
    trace.add(s);
  }
  return trace;
}

FreqTrace freq_trace_from_csv(const std::string& csv) {
  std::istringstream is(csv);
  return read_freq_trace_csv(is);
}

void save_freq_trace(const std::string& path, const FreqTrace& trace) {
  // Atomic commit (site "sidecar"): in a campaign these ride the cache as
  // <hash>.trace.csv sidecars, committed before the .key marker.
  core::atomic_write_file(path, freq_trace_to_csv(trace), "sidecar");
}

FreqTrace load_freq_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "'");
  return read_freq_trace_csv(f);
}

}  // namespace omv::freqlog
