#pragma once
// CSV round-trip for frequency traces, mirroring core/trace_io's dialect:
// a "time,core,ghz" header, one row per sample with 17-significant-digit
// doubles (lossless round-trip), and strict parsing (trailing garbage or
// malformed fields throw instead of silently truncating a trace).
//
// The result cache persists each fig6/fig7 panel's trace next to its
// RunMatrix so a cached campaign cell restores the *whole* panel —
// frequency-dip statistics included — bit-identically.

#include <iosfwd>
#include <string>

#include "freqlog/logger.hpp"

namespace omv::freqlog {

/// Writes a trace as "time,core,ghz" CSV.
void write_freq_trace_csv(std::ostream& os, const FreqTrace& trace);
[[nodiscard]] std::string freq_trace_to_csv(const FreqTrace& trace);

/// Parses the CSV produced by write_freq_trace_csv. Sample order is
/// preserved (episode counting is order-sensitive). Throws
/// std::invalid_argument on a bad header, malformed fields, or trailing
/// garbage; tolerates blank lines and CRLF endings. Unlike the run-matrix
/// dialect, '#' lines carry no metadata here and are skipped wholesale by
/// design (a trace's sample count is self-describing).
[[nodiscard]] FreqTrace read_freq_trace_csv(std::istream& is);
[[nodiscard]] FreqTrace freq_trace_from_csv(const std::string& csv);

/// File variants (std::runtime_error on IO failure).
void save_freq_trace(const std::string& path, const FreqTrace& trace);
[[nodiscard]] FreqTrace load_freq_trace(const std::string& path);

}  // namespace omv::freqlog
