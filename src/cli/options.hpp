#pragma once
// Shared command-line / environment handling for the campaign driver and
// the standalone harness binaries.
//
// Every binary accepts the same flags:
//   --list            list registered harnesses and exit
//   --scenarios       list the scenario catalog and exit
//   --isa-report      list the batched-kernel ISA levels this host can
//                     dispatch to (one per line, best last) and exit
//   --only <glob>     select harnesses by name glob (repeatable; omnivar)
//   --jobs[=]N        shard each protocol's runs over N workers (0 = one
//                     per hardware thread); falls back to OMNIVAR_JOBS
//   --scenario[=]S    run on scenario S: a catalog name or a scenario-file
//                     path; repeatable — the omnivar driver fans the
//                     selected harnesses out over every listed scenario in
//                     one process (one shared --out cache); falls back to
//                     OMNIVAR_SCENARIO, else the paper's Dardel+Vera
//                     default
//   --scenario-set[=]FILE
//                     append the scenario selectors listed in FILE (one
//                     per line; '#' comments and blank lines skipped) to
//                     the --scenario list
//   --cell-jobs[=]N   run up to N protocol cells concurrently across all
//                     selected harnesses and scenarios (0 = one per
//                     hardware thread); falls back to OMNIVAR_CELL_JOBS,
//                     else 1 — the serial harness-by-harness loop
//   --plan            enumerate every protocol cell the selection would
//                     run (harness, scenario, label, spec hash, cost) and
//                     exit without computing anything
//   --bench-campaign  time a fixed multi-harness multi-scenario campaign
//                     serial vs scheduled vs warm and write
//                     BENCH_campaign.json (omnivar driver only)
//   --out[=]DIR       campaign directory: JSON artifacts + result cache
//   --checkpoint-every[=]N
//                     checkpoint each protocol cell every N timed reps to
//                     a .snap sidecar of its cache entry (requires --out);
//                     falls back to OMNIVAR_CHECKPOINT_EVERY
//   --resume[=]SRC    resume interrupted cells: "auto" scans each cell's
//                     .snap sidecar, an explicit path names one snapshot
//                     (requires --out)
//   --retry-cells[=]N retry a failing protocol cell N times (seeded
//                     exponential backoff) before quarantining it; falls
//                     back to OMNIVAR_RETRY_CELLS, else 0
//   --cell-timeout[=]MS
//                     per-cell wall-clock budget in milliseconds, enforced
//                     cooperatively at repetition boundaries; falls back
//                     to OMNIVAR_CELL_TIMEOUT_MS, else unlimited
//   --fault-spec[=]SPEC
//                     arm the deterministic fault-injection plan (see
//                     core/faultinject.hpp for the grammar); falls back to
//                     OMNIVAR_FAULT_SPEC; a malformed spec is a usage
//                     error (exit 2), never silently ignored
//   --version         print engine version, snapshot format and dispatched
//                     ISA on stdout and exit
//   --help            usage
// Parsing is strict: a typo'd jobs value must not silently become
// "saturate every core" on a measurement harness, so malformed values are
// reported and ignored rather than guessed at.

#include <cstddef>
#include <string>
#include <vector>

namespace omv::cli {

/// Strictly parses a non-negative integer. Returns false on empty,
/// non-digit, negative, or overflowing input (strtoul alone would happily
/// wrap "-4").
[[nodiscard]] bool parse_uint(const char* text, std::size_t& out);

/// Strictly parses a job count ("0" = hardware concurrency).
[[nodiscard]] bool parse_job_count(const char* text, std::size_t& out);

/// Parsed options shared by omnivar and the standalone binaries.
struct Options {
  bool list = false;
  bool list_scenarios = false;  ///< --scenarios catalog listing.
  bool isa_report = false;      ///< --isa-report dispatchable-ISA listing.
  bool version = false;         ///< --version identity report.
  bool help = false;
  bool plan = false;              ///< --plan cell enumeration listing.
  bool bench_campaign = false;    ///< --bench-campaign scheduler benchmark.
  std::vector<std::string> only;  ///< --only name globs (empty = all).
  std::size_t jobs = 0;           ///< resolved worker count; 0 = unset.
  std::size_t cell_jobs = 0;      ///< resolved cell concurrency; 0 = unset.
  std::vector<std::string> scenarios;  ///< --scenario selectors, in order.
  std::string scenario_set;       ///< --scenario-set file; empty = none.
  std::string out_dir;            ///< --out campaign dir; empty = none.
  std::size_t checkpoint_every = 0;  ///< --checkpoint-every; 0 = off.
  std::string resume;  ///< --resume "auto" or snapshot path; empty = off.
  std::size_t retry_cells = 0;     ///< --retry-cells; 0 = no retries.
  std::size_t cell_timeout_ms = 0;  ///< --cell-timeout; 0 = unlimited.
  std::string fault_spec;  ///< --fault-spec; empty = unset.
  std::vector<std::string> errors;  ///< malformed/unknown arguments.
};

/// Parses argv. Unknown arguments and malformed values are collected in
/// `errors` (reported by the caller); parsing always completes.
[[nodiscard]] Options parse_options(int argc, char** argv);

/// Effective worker count: `cli_jobs` when set (non-zero), else the
/// OMNIVAR_JOBS environment variable (0 there = hardware concurrency; a
/// malformed value is reported once to stderr and ignored), else 1 —
/// serial, the paper's original execution model.
[[nodiscard]] std::size_t effective_jobs(std::size_t cli_jobs);

/// Effective scenario selector: `cli_scenario` when non-empty, else the
/// OMNIVAR_SCENARIO environment variable, else "" — the paper's default
/// Dardel+Vera contrast mode.
[[nodiscard]] std::string effective_scenario(const std::string& cli_scenario);

/// Effective scenario selector list: the repeated --scenario values plus
/// the lines of --scenario-set FILE, in order; when both are absent, the
/// OMNIVAR_SCENARIO environment variable as a single selector, else empty
/// — the paper's Dardel+Vera default. Throws std::runtime_error when the
/// set file cannot be read (a typo'd file must not silently run the
/// default scenario).
[[nodiscard]] std::vector<std::string> effective_scenarios(const Options& o);

/// Effective cell concurrency: `cli_cell_jobs` when set (non-zero), else
/// OMNIVAR_CELL_JOBS (0 there = hardware concurrency; malformed values
/// reported once to stderr and ignored), else 1 — the serial
/// harness-by-harness campaign loop.
[[nodiscard]] std::size_t effective_cell_jobs(std::size_t cli_cell_jobs);

/// Effective checkpoint cadence: `cli_every` when set (non-zero), else the
/// OMNIVAR_CHECKPOINT_EVERY environment variable (malformed values are
/// reported once to stderr and ignored), else 0 — checkpointing off.
[[nodiscard]] std::size_t effective_checkpoint_every(std::size_t cli_every);

/// Effective cell retry budget: `cli_retries` when set (non-zero), else
/// OMNIVAR_RETRY_CELLS (malformed values reported once and ignored),
/// else 0 — quarantine on the first failure.
[[nodiscard]] std::size_t effective_retry_cells(std::size_t cli_retries);

/// Effective per-cell wall-clock budget in ms: `cli_ms` when set
/// (non-zero), else OMNIVAR_CELL_TIMEOUT_MS (malformed values reported
/// once and ignored), else 0 — unlimited.
[[nodiscard]] std::size_t effective_cell_timeout_ms(std::size_t cli_ms);

/// Effective fault spec: `cli_spec` when non-empty, else
/// OMNIVAR_FAULT_SPEC, else "" — no faults armed.
[[nodiscard]] std::string effective_fault_spec(const std::string& cli_spec);

}  // namespace omv::cli
