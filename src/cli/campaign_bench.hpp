#pragma once
// --bench-campaign: the campaign scheduler's tracked perf trajectory.
//
// Times one fixed multi-harness, multi-scenario campaign three ways —
// cold at --cell-jobs 1 (the historical serial loop), cold at --cell-jobs
// N through the campaign cell scheduler, and warm (cache-hit) through the
// scheduler — and writes BENCH_campaign.json (schema
// omnivar-bench-campaign-v1: makespans, cells/sec, scheduler efficiency,
// host metadata) so successive commits accumulate a comparable scheduling
// perf curve. Respects OMNIVAR_QUICK for a CI-sized protocol.
//
// All three runs execute against private throwaway cache directories, so
// the benchmark never touches (or is accelerated by) a real campaign's
// --out cache.

namespace omv::cli {

struct Options;

/// Runs the campaign scheduler benchmark and writes BENCH_campaign.json
/// into --out (the current directory when --out is absent). Returns a
/// process exit code.
[[nodiscard]] int run_campaign_bench(const Options& o);

}  // namespace omv::cli
