#pragma once
// Campaign execution context: the artifact + result-cache layer under every
// harness.
//
// A RunContext is handed to each harness's run function. It provides:
//   * jobs() — the sharding knob (--jobs / OMNIVAR_JOBS);
//   * protocol() — cached protocol execution: each run_protocol invocation
//     is keyed by a canonical spec fingerprint (harness, label, seed, runs,
//     reps, warmup, benchmark config); its RunMatrix persists as
//     <out>/cache/<hash>.csv with the canonical key in <hash>.key, so a
//     re-invocation loads the bit-identical matrix instead of recomputing
//     (the CSV stores 17-significant-digit times — a lossless double
//     round-trip);
//   * series()/table()/verdict()/metric() — print exactly what the
//     pre-campaign harnesses printed, additionally recording the data for
//     the JSON artifact.
//
// Artifacts: <out>/<harness>.json holds the science (cells, series at
// full precision, tables, metrics, verdicts) and is byte-stable across
// cached re-runs provided the harness records only deterministic data —
// every fig/table harness does; micro_core, which records wall-clock
// ns/op metrics, is the documented exception. Wall-clock timing and cache
// provenance go to <out>/campaign.json, which is expected to differ
// between invocations.
//
// The cache validates the stored canonical key on every hit (collision /
// stale-key defense) and falls back to recomputing — a cache can never
// make a campaign wrong, only faster. Every .key commit file additionally
// opens with a cache schema stamp (kCacheKeySchema): entries written by a
// different cache/simulator generation fail the stamp check and degrade to
// a recompute instead of silently serving stale cells. Bump the stamp
// whenever model changes invalidate archived RunMatrix data.
//
// Scenario threading: when a --scenario / OMNIVAR_SCENARIO selection is
// active, the resolved ScenarioSpec rides on the RunContext; harnesses run
// on it instead of the paper's Dardel+Vera pair, and its fingerprint is
// folded into every cell key (via harness::cell_key), so cached cells can
// never be served across platforms.
//
// Campaign cell scheduling: at --cell-jobs N > 1 the driver runs every
// (harness, scenario) unit on its own thread, each unit's science stdout
// captured into a private buffer (set_output_capture) and replayed in
// registry x scenario order once the unit finishes — stdout, artifacts and
// cache contents are byte-identical to the serial loop at any concurrency.
// Cold cells are routed through one shared CellPool (configure_scheduler):
// warm cache loads proceed on the unit threads while cold compute drains
// through the pool, longest-expected-unit first. An enumeration pass
// (ContextMode::kEnumerate) discovers every cell's spec hash and cost
// without computing: protocol() records the plan and returns a placeholder
// matrix, and all output is discarded.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cli/exit_codes.hpp"
#include "cli/supervisor.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/run_matrix.hpp"
#include "core/snapshot.hpp"
#include "core/spec_hash.hpp"
#include "scenario/scenario.hpp"

namespace omv::cli {

/// Cache generation stamp: the first line of every cache .key commit file.
/// Entries missing it (pre-stamp caches) or carrying another generation
/// are ignored and recomputed.
inline constexpr std::string_view kCacheKeySchema = "omnivar-cache-v2";

/// Simulator-engine generation, absorbed into every cell's SpecKey (and
/// therefore its hash): bump it whenever a model/code change alters what
/// any cached RunMatrix would contain, and every pre-bump cache dir
/// degrades to a recompute instead of serving stale cells. This closes
/// the remaining PR 2 hazard — the platform axis was versioned by the
/// scenario fingerprint, the simulator code itself was not.
inline constexpr std::string_view kEngineVersion = "omnivar-engine-v5";

/// Effective engine version: OMNIVAR_ENGINE_VERSION when set (a test hook
/// so cache-invalidation behaviour is testable without rebuilding), else
/// kEngineVersion.
[[nodiscard]] std::string_view engine_version();

/// Provenance of one cached protocol cell.
struct CellRecord {
  std::string label;
  std::string hash;       ///< 16-hex spec hash (cache file stem).
  std::uint64_t seed = 0;
  std::size_t runs = 0;
  std::size_t reps = 0;
  std::size_t warmup = 0;
  bool cached = false;    ///< served from cache this invocation.
};

struct VerdictRecord {
  bool ok = false;
  std::string text;
};

struct SeriesRecord {
  std::string name;
  std::string x_name;
  std::vector<std::string> columns;
  std::vector<std::pair<double, std::vector<double>>> points;
};

struct TableRecord {
  std::string name;
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

struct MetricRecord {
  std::string name;
  double value = 0.0;
};

/// One protocol cell declared during an enumeration pass: the exact spec
/// hash a serial execution would compute under, plus a cost hint
/// (runs x (warmup + reps)) driving longest-expected-first dispatch.
struct CellPlan {
  std::string label;
  std::string hash;
  double cost = 0.0;
};

/// How a RunContext treats protocol() calls.
enum class ContextMode {
  kExecute,    ///< normal: cache lookup / supervised compute.
  kEnumerate,  ///< declare-only: record CellPlan, return a placeholder.
};

/// Campaign-wide cell scheduler: one pool of --cell-jobs workers shared by
/// every (harness, scenario) unit. RunContext routes each cold cell's
/// supervised compute-and-commit through run_cell(); the submitting unit
/// thread blocks until its cell finishes (cells within a unit are data-
/// dependent), so campaign concurrency comes from units overlapping.
/// Priority is the unit's remaining enumerated work, so the units with the
/// most compute left dispatch first and the makespan tail shrinks.
class CellScheduler {
 public:
  /// `unit_costs[u]` = total enumerated cost of unit u (0 when the unit's
  /// enumeration failed — its cells then dispatch at priority 0).
  CellScheduler(std::size_t cell_jobs, std::vector<double> unit_costs);

  /// Runs `fn` (one cold cell of `unit`, enumerated cost `cost`) on a pool
  /// worker and blocks until it finishes, rethrowing its exception. After
  /// note_stop() this throws snap::CheckpointStop instead of dispatching —
  /// in-flight cells drain, new ones never start.
  void run_cell(std::size_t unit, double cost,
                const std::function<void()>& fn);

  /// Halts new cell dispatch (a checkpoint stop tripped in some unit).
  void note_stop() noexcept { stopping_.store(true); }
  [[nodiscard]] bool stopping() const noexcept { return stopping_.load(); }
  [[nodiscard]] std::size_t workers() const noexcept;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
  std::atomic<bool> stopping_{false};
};

class RunContext {
 public:
  /// `out_dir` empty disables artifacts and caching (standalone default).
  /// `scenario` engaged = run on that platform instead of the paper's
  /// Dardel+Vera default (harnesses read it via scenario()).
  RunContext(std::string harness, std::size_t jobs, std::string out_dir,
             std::optional<scenario::ScenarioSpec> scenario = std::nullopt,
             ContextMode mode = ContextMode::kExecute);

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// True on an enumeration pass: protocol() records cells without
  /// computing and every print is discarded. Harnesses whose cells are
  /// self-timed wall-clock cases outside protocol() (micro_core,
  /// perf_hotpath) return early when this is set.
  [[nodiscard]] bool enumerating() const noexcept {
    return mode_ == ContextMode::kEnumerate;
  }

  /// Cells declared by protocol() during an enumeration pass, in call
  /// order — exactly the cells a serial execution would compute or load.
  [[nodiscard]] const std::vector<CellPlan>& plan() const noexcept {
    return plan_;
  }

  /// Redirects this context's science stdout (series/table/verdict/print
  /// and the FAILED-cell line) into `buffer` for ordered replay; null
  /// restores direct stdout. The campaign driver owns the buffer.
  void set_output_capture(std::string* buffer) noexcept {
    capture_ = buffer;
  }

  /// Routes this context's cold cells through the campaign-wide scheduler
  /// as unit `unit`; null (the default) computes inline on this thread.
  void configure_scheduler(CellScheduler* sched, std::size_t unit) noexcept {
    sched_ = sched;
    unit_ = unit;
  }

  /// printf into the harness's science stdout stream: direct stdout by
  /// default, the capture buffer under the campaign scheduler, discarded
  /// while enumerating. All harness report output must go through the
  /// context (print/series/table/verdict) so replay keeps byte order.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 2, 3)))
#endif
  void print(const char* fmt, ...);

  /// The active scenario selection; nullptr in the default paper mode.
  [[nodiscard]] const scenario::ScenarioSpec* scenario() const noexcept {
    return scenario_ ? &*scenario_ : nullptr;
  }

  /// Arms per-cell checkpointing: every protocol cell computed by this
  /// context writes a snapshot sidecar ("<cache stem>.snap") every `every`
  /// timed repetitions, and `resume` selects a resume source — "auto"
  /// resumes each cell from its own sidecar when one exists, an explicit
  /// path resumes exactly the cell whose stamp the snapshot carries.
  /// Requires caching (an --out dir); ignored otherwise.
  void configure_checkpoints(std::size_t every, std::string resume);

  /// The checkpoint policy of the cell currently computing, for forwarding
  /// into run_protocol(...); nullptr when checkpointing is not armed (the
  /// common case) or no cell is computing.
  [[nodiscard]] const snap::CheckpointPolicy* checkpoint() const noexcept {
    return ckpt_active_ ? &ckpt_policy_ : nullptr;
  }

  /// Arms cell supervision: every cold cell computed by this context may
  /// retry `retries` times with seeded exponential backoff and is bounded
  /// by the cooperative wall-clock `timeout` (0 = none). A cell that
  /// exhausts its retries is quarantined: the failure is recorded (see
  /// failures()), a "[omnivar] FAILED cell ..." line goes to stdout, and
  /// CellQuarantined unwinds the harness while the campaign continues.
  void configure_supervision(std::size_t retries,
                             std::chrono::milliseconds timeout);

  /// Cells quarantined under this context (recorded before the unwind).
  [[nodiscard]] const std::vector<CellFailure>& failures() const noexcept {
    return failures_;
  }

  /// Records a platform this harness ran on (display name + scenario
  /// fingerprint; deduplicated) for the artifact's provenance block.
  void note_platform(const std::string& name,
                     const std::string& fingerprint);
  [[nodiscard]] const std::string& harness() const noexcept {
    return harness_;
  }
  [[nodiscard]] const std::string& out_dir() const noexcept {
    return out_dir_;
  }
  [[nodiscard]] bool caching() const noexcept { return !out_dir_.empty(); }

  /// Hook persisting extra per-cell data next to the RunMatrix CSV; `stem`
  /// is "<out>/cache/<hash>" (append your own extension). Load returns
  /// false to veto the cache hit (missing/corrupt sidecar => recompute).
  using ExtraSave = std::function<void(const std::string& stem)>;
  using ExtraLoad = std::function<bool(const std::string& stem)>;

  /// Runs one protocol cell through the result cache. `config` carries the
  /// benchmark-specific fingerprint fields; harness, label and the spec's
  /// protocol parameters are appended here. On a validated cache hit
  /// `compute` is not invoked.
  [[nodiscard]] RunMatrix protocol(const std::string& label,
                                   const ExperimentSpec& spec, SpecKey config,
                                   const std::function<RunMatrix()>& compute,
                                   const ExtraSave& save_extra = nullptr,
                                   const ExtraLoad& load_extra = nullptr);

  /// Prints the series exactly as the harnesses always did
  /// (printf("%s\n", render(ascii, digits))) and records it for the
  /// artifact at full precision.
  void series(const std::string& name, const report::Series& s,
              int digits = 4);

  /// Prints the table (printf("%s\n", render())) and records it.
  void table(const std::string& name, const report::Table& t);

  /// Records a table without printing (for call sites with bespoke
  /// surrounding output).
  void record_table(const std::string& name, const report::Table& t);

  /// Prints the standard "[SHAPE-OK] ..." verdict line and records it.
  void verdict(bool ok, const std::string& text);

  /// Records a named scalar (artifact only; no output).
  void metric(const std::string& name, double value);

  [[nodiscard]] std::size_t cache_hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t cache_misses() const noexcept { return misses_; }
  [[nodiscard]] bool all_ok() const noexcept;
  [[nodiscard]] const std::vector<VerdictRecord>& verdicts() const noexcept {
    return verdicts_;
  }
  [[nodiscard]] const std::vector<CellRecord>& cells() const noexcept {
    return cells_;
  }

  /// The deterministic artifact document (schema omnivar-artifact-v2:
  /// v1 plus the scenario/platform provenance blocks).
  [[nodiscard]] std::string artifact_json(
      const std::string& description) const;

 private:
  /// Appends `text` to the capture buffer, or writes it to stdout when no
  /// capture is installed; drops it on an enumeration pass.
  void emit(std::string_view text);

  std::string harness_;
  std::size_t jobs_ = 1;
  std::string out_dir_;
  std::optional<scenario::ScenarioSpec> scenario_;
  ContextMode mode_ = ContextMode::kExecute;
  std::vector<CellPlan> plan_;      ///< enumeration-pass cell declarations.
  std::string* capture_ = nullptr;  ///< science-stdout sink; null = stdout.
  CellScheduler* sched_ = nullptr;  ///< campaign cell pool; null = inline.
  std::size_t unit_ = 0;            ///< this context's scheduler unit id.
  std::size_t ckpt_every_ = 0;   ///< configure_checkpoints cadence.
  std::string resume_sel_;       ///< "auto", a snapshot path, or "".
  snap::CheckpointPolicy ckpt_policy_;  ///< policy of the computing cell.
  bool ckpt_active_ = false;
  SupervisorConfig supervision_;  ///< retry/timeout policy for cold cells.
  std::vector<CellFailure> failures_;
  std::vector<std::pair<std::string, std::string>> platforms_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::vector<CellRecord> cells_;
  std::vector<SeriesRecord> series_;
  std::vector<TableRecord> tables_;
  std::vector<MetricRecord> metrics_;
  std::vector<VerdictRecord> verdicts_;
};

/// Creates `dir` (and parents). Throws std::runtime_error on failure.
void ensure_dir(const std::string& dir);

/// main() body for a standalone harness binary: parses the shared flags
/// and runs the binary's single registered harness (writing its artifact
/// when --out is given).
[[nodiscard]] int run_standalone(int argc, char** argv);

/// main() body for the omnivar driver: --list / --only / --jobs / --out
/// over every registered harness; writes per-harness artifacts plus
/// campaign.json. Driver chrome goes to stderr so stdout stays exactly the
/// concatenated harness reports (and is byte-identical across cached
/// re-runs).
[[nodiscard]] int run_campaign(int argc, char** argv);

}  // namespace omv::cli
