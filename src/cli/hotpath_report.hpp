#pragma once
// BENCH_hotpath.json — the repo's tracked hot-path perf trajectory.
//
// The perf_hotpath harness self-times the simulator's query kernels
// (preemption_delay, mean_factor, elapsed_for_work, a full SimTeam barrier
// phase) at several event densities, against the retained brute-force
// reference implementations (sim/reference.hpp) as the in-file baseline.
// This module renders those measurements as a machine-readable JSON
// document so successive commits accumulate a comparable perf curve, and
// CI can validate the file's shape in quick mode.

#include <cstddef>
#include <string>
#include <vector>

namespace omv::cli {

/// One (kernel, density) measurement. `baseline_ns` is the median ns/op of
/// this kernel's baseline implementation over the same stream and query
/// sequence (what `baseline_kind` names); 0 means the kernel has no
/// baseline (e.g. the barrier phase, which is reported absolute).
struct HotpathKernelResult {
  std::string kernel;
  std::string density;
  std::size_t stream_events = 0;  ///< events/episodes materialized.
  double optimized_ns = 0.0;      ///< median ns/op, optimized implementation.
  double baseline_ns = 0.0;       ///< median ns/op, baseline implementation.
  /// What baseline_ns measures: "reference_scan" (brute-force
  /// sim/reference.hpp queries), "indexed_per_call" (per-call indexed
  /// queries, baselining the batched variants), or "per_thread_loop"
  /// (SimTeam::compute_loop, baselining the batched team phase).
  std::string baseline_kind = "reference_scan";

  /// True when a baseline exists and the optimized path is slower than it
  /// (speedup < 1.0) — the condition perf_hotpath flags as
  /// [PERF-REGRESSION].
  [[nodiscard]] bool regression() const noexcept {
    return baseline_ns > 0.0 && optimized_ns > baseline_ns;
  }
};

struct HotpathReport {
  bool quick = false;          ///< OMNIVAR_QUICK measurement (reduced budget).
  std::string sim_machine;     ///< simulated topology preset name.
  std::string isa;             ///< dispatched batched-kernel ISA level.
  bool isa_overridden = false; ///< OMNIVAR_ISA forced the level.
  /// Adaptive scan/index cutovers in effect (events per window / episodes
  /// per domain) — the thresholds the density-adaptive dispatch switches
  /// at, recorded so trajectory points remain comparable across commits.
  std::size_t noise_scan_cutover = 0;
  std::size_t freq_scan_cutover = 0;
  std::vector<HotpathKernelResult> kernels;
};

/// Renders the report as schema "omnivar-bench-hotpath-v2" JSON (includes
/// host metadata: hardware concurrency, compiler, build flavor, dispatched
/// ISA, adaptive cutovers; per-kernel regression booleans plus a top-level
/// any_regression). Throws std::invalid_argument when the report holds no
/// kernels — an empty perf file must fail loudly, not accumulate silently.
[[nodiscard]] std::string hotpath_report_json(const HotpathReport& report);

/// Writes the rendered report to `path`. Returns false on I/O failure.
bool write_hotpath_report(const HotpathReport& report,
                          const std::string& path);

}  // namespace omv::cli
