#pragma once
// BENCH_hotpath.json — the repo's tracked hot-path perf trajectory.
//
// The perf_hotpath harness self-times the simulator's query kernels
// (preemption_delay, mean_factor, elapsed_for_work, a full SimTeam barrier
// phase) at several event densities, against the retained brute-force
// reference implementations (sim/reference.hpp) as the in-file baseline.
// This module renders those measurements as a machine-readable JSON
// document so successive commits accumulate a comparable perf curve, and
// CI can validate the file's shape in quick mode.

#include <cstddef>
#include <string>
#include <vector>

namespace omv::cli {

/// One (kernel, density) measurement. `baseline_ns` is the median ns/op of
/// the pre-index brute-force reference over the same stream and query
/// sequence; 0 means the kernel has no scan baseline (e.g. the barrier
/// phase, which is reported absolute).
struct HotpathKernelResult {
  std::string kernel;
  std::string density;
  std::size_t stream_events = 0;  ///< events/episodes materialized.
  double optimized_ns = 0.0;      ///< median ns/op, indexed implementation.
  double baseline_ns = 0.0;       ///< median ns/op, brute-force reference.
};

struct HotpathReport {
  bool quick = false;          ///< OMNIVAR_QUICK measurement (reduced budget).
  std::string sim_machine;     ///< simulated topology preset name.
  std::vector<HotpathKernelResult> kernels;
};

/// Renders the report as schema "omnivar-bench-hotpath-v1" JSON (includes
/// host metadata: hardware concurrency, compiler, build flavor). Throws
/// std::invalid_argument when the report holds no kernels — an empty perf
/// file must fail loudly, not accumulate silently.
[[nodiscard]] std::string hotpath_report_json(const HotpathReport& report);

/// Writes the rendered report to `path`. Returns false on I/O failure.
bool write_hotpath_report(const HotpathReport& report,
                          const std::string& path);

}  // namespace omv::cli
