#include "cli/supervisor.hpp"

#include <cstdio>
#include <thread>

#include "core/deadline.hpp"
#include "core/faultinject.hpp"
#include "core/snapshot.hpp"
#include "core/spec_hash.hpp"

namespace omv::cli {

std::string classify_current_exception() {
  try {
    throw;
  } catch (const core::CellTimeout&) {
    return "timeout";
  } catch (const fault::InjectedFault& e) {
    return e.taxonomy();
  } catch (const std::ios_base::failure&) {
    return "io";
  } catch (const std::exception&) {
    return "exception";
  } catch (...) {
    return "exception";
  }
}

std::chrono::milliseconds backoff_delay(std::uint64_t seed,
                                        std::size_t attempt) {
  // Base 25ms doubling per attempt, capped at 2s, with ±25% jitter from a
  // splitmix-style scramble of (seed, attempt) — fully deterministic for a
  // given cell, different across cells so a herd of retries desynchronizes.
  constexpr std::uint64_t kBaseMs = 25;
  constexpr std::uint64_t kCapMs = 2000;
  std::uint64_t ms = kBaseMs;
  for (std::size_t i = 1; i < attempt && ms < kCapMs; ++i) ms *= 2;
  if (ms > kCapMs) ms = kCapMs;
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (attempt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const std::uint64_t jitter = z % (ms / 2 + 1);  // 0 .. 50% of base
  return std::chrono::milliseconds(3 * ms / 4 + jitter);  // 75% .. 125%
}

RunMatrix supervise_cell(const SupervisorConfig& cfg,
                         const std::string& label, const std::string& hash,
                         const std::function<RunMatrix()>& body) {
  // Backoff seed: FNV over the hash (or the label when caching is off) so
  // the retry schedule is a pure function of cell identity.
  const std::uint64_t backoff_seed =
      fnv1a64(hash.empty() ? label : hash);

  const std::size_t attempts = cfg.retries + 1;
  for (std::size_t attempt = 1;; ++attempt) {
    core::arm_cell_deadline(cfg.timeout);
    struct DisarmDeadline {
      ~DisarmDeadline() { core::clear_cell_deadline(); }
    } disarm;
    try {
      // Injected faults fire inside the supervised (and thus retried)
      // region: a cell_throw raises here; a slow_cell stall burns budget
      // against the armed deadline before the compute starts.
      const auto stall = fault::active_plan().on_cell_attempt(label);
      if (stall.count() > 0) core::interruptible_stall(stall);
      return body();
    } catch (const snap::CheckpointStop&) {
      throw;  // deliberate stop: never a failure, never retried
    } catch (const CellQuarantined&) {
      throw;  // no nested supervision
    } catch (const std::exception& e) {
      const std::string taxonomy = classify_current_exception();
      if (attempt < attempts) {
        std::fprintf(stderr,
                     "[omnivar] cell '%s' attempt %zu/%zu failed (%s): %s; "
                     "retrying\n",
                     label.c_str(), attempt, attempts, taxonomy.c_str(),
                     e.what());
        std::this_thread::sleep_for(backoff_delay(backoff_seed, attempt));
        continue;
      }
      CellFailure f;
      f.label = label;
      f.hash = hash;
      f.taxonomy = taxonomy;
      f.error = e.what();
      f.attempts = attempt;
      throw CellQuarantined(std::move(f));
    }
  }
}

}  // namespace omv::cli
