#pragma once
// Supervised cell execution: retry, timeout, quarantine.
//
// The campaign's cache layer hands every cold cell's compute-and-commit
// function to supervise_cell, which:
//   * consults the active fault plan (injected throws and stalls fire
//     here, deterministically);
//   * arms the cooperative per-cell wall-clock deadline (--cell-timeout;
//     repetition loops poll it — worker-pool-based cancellation, no
//     in-process signals);
//   * on failure retries up to `retries` times with seeded exponential
//     backoff (the seed derives from the cell hash, so backoff schedules
//     are reproducible);
//   * after the last attempt throws CellQuarantined carrying the failure
//     record (taxonomy, attempts, error text) — the campaign driver
//     quarantines the cell, keeps running every other harness, and exits
//     kExitQuarantined.
//
// Error taxonomy: "timeout" (core::CellTimeout), "io" (injected
// torn_write/enospc, filesystem errors from the commit path), "exception"
// (anything else a cell throws). snap::CheckpointStop is NOT a failure —
// it propagates untouched (a deliberate stop must never be retried or
// quarantined).

#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "core/run_matrix.hpp"

namespace omv::cli {

/// One quarantined cell, as recorded in campaign.json's failures block.
struct CellFailure {
  std::string label;     ///< cell label (harness-scoped)
  std::string hash;      ///< 16-hex spec hash ("" when caching is off)
  std::string taxonomy;  ///< "timeout" | "io" | "exception"
  std::string error;     ///< what() of the final attempt
  std::size_t attempts = 0;  ///< total attempts (1 + retries performed)
};

/// Raised by supervise_cell once retries are exhausted; unwinds the
/// harness (the failed cell's matrix cannot exist, so dependent cells of
/// the same harness cannot run) and is absorbed by the campaign driver.
class CellQuarantined : public std::runtime_error {
 public:
  explicit CellQuarantined(CellFailure f)
      : std::runtime_error("cell '" + f.label + "' quarantined (" +
                           f.taxonomy + " after " +
                           std::to_string(f.attempts) + " attempt(s)): " +
                           f.error),
        failure(std::move(f)) {}
  CellFailure failure;
};

struct SupervisorConfig {
  std::size_t retries = 0;  ///< --retry-cells: extra attempts after the 1st
  std::chrono::milliseconds timeout{0};  ///< --cell-timeout; 0 = none
};

/// Classifies an in-flight exception for the failure taxonomy (exposed for
/// tests). Call inside a catch block.
[[nodiscard]] std::string classify_current_exception();

/// Seeded backoff delay before retry attempt `attempt` (1-based): an
/// exponential base doubled per attempt with ±25% deterministic jitter
/// derived from `seed`. Exposed for tests.
[[nodiscard]] std::chrono::milliseconds backoff_delay(std::uint64_t seed,
                                                      std::size_t attempt);

/// Runs `body` under supervision (see file comment). `label` names the
/// cell for fault matching and diagnostics; `hash` its cache stem (may be
/// empty). Returns body's matrix on the first successful attempt.
[[nodiscard]] RunMatrix supervise_cell(
    const SupervisorConfig& cfg, const std::string& label,
    const std::string& hash, const std::function<RunMatrix()>& body);

}  // namespace omv::cli
