#pragma once
// Process exit codes of the omnivar driver and the standalone harness
// binaries — the single authority; no scattered literals.
//
//   0  the selected harnesses ran to completion (shape verdicts are
//      recorded in artifacts, not exit codes)
//   1  a harness failed outright (unhandled error, unwritable artifact)
//   2  usage: malformed invocation, unknown scenario, no matching harness,
//      malformed fault spec
//   3  deliberate checkpoint stop (OMNIVAR_CHECKPOINT_STOP_AFTER tripped
//      right after a checkpoint landed; resume with --resume)
//   4  graceful degradation: at least one protocol cell was quarantined
//      after exhausting its retries — the campaign completed every other
//      cell, campaign.json carries the failures block
//
// Precedence when several apply to one campaign: a checkpoint stop (3)
// ends the campaign immediately and wins; otherwise any quarantined cell
// makes the campaign exit 4 (the driver exits 4 iff a cell was
// quarantined); otherwise any hard harness failure exits 1.

namespace omv::cli {

enum ExitCode : int {
  kExitOk = 0,
  kExitHarnessFailed = 1,
  kExitUsage = 2,
  kExitCheckpointStop = 3,
  kExitQuarantined = 4,
};

}  // namespace omv::cli
