#include "cli/campaign_bench.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cli/campaign.hpp"
#include "cli/exit_codes.hpp"
#include "cli/options.hpp"
#include "cli/registry.hpp"
#include "core/atomic_file.hpp"
#include "core/json_writer.hpp"
#include "core/parallel_runner.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "sim/isa.hpp"

namespace omv::cli {

namespace {

/// The benchmark's fixed workload: a protocol-heavy multi-harness subset
/// (scaling figure, variability figure, scheduler table) fanned out over
/// two contrasting scenario presets — enough units (6) for the scheduler
/// to overlap, small enough to finish in CI quick mode.
const char* const kBenchHarnesses[] = {"fig1", "fig3", "table2"};
const char* const kBenchScenarios[] = {"vera", "epyc-like"};

const char* compiler_id() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

const char* build_flavor() {
#if defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

struct BenchUnit {
  const HarnessInfo* h = nullptr;
  const scenario::ScenarioSpec* scn = nullptr;
};

struct CampaignTiming {
  double seconds = 0.0;
  std::size_t cells_computed = 0;
  std::size_t cells_cached = 0;
  bool ok = true;
};

/// Executes the benchmark campaign once against `out_dir`. cell_jobs <= 1
/// runs the serial unit loop; otherwise units run on their own threads
/// with cold cells draining through one CellScheduler — the same two code
/// shapes run_campaign dispatches between. Science stdout is captured and
/// discarded: the benchmark reports timings, not figures.
CampaignTiming execute_campaign(const std::vector<BenchUnit>& units,
                                std::size_t cell_jobs,
                                const std::string& out_dir) {
  CampaignTiming t;
  const auto t0 = std::chrono::steady_clock::now();

  const auto run_unit = [&](const BenchUnit& unit, CellScheduler* sched,
                            std::size_t u, std::string* sink,
                            CampaignTiming& into) {
    try {
      RunContext ctx(unit.h->name, 1, out_dir,
                     std::optional<scenario::ScenarioSpec>(*unit.scn));
      ctx.set_output_capture(sink);
      if (sched != nullptr) ctx.configure_scheduler(sched, u);
      if (unit.h->run(ctx) != kExitOk) into.ok = false;
      into.cells_computed += ctx.cache_misses();
      into.cells_cached += ctx.cache_hits();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[omnivar] bench unit %s failed: %s\n",
                   unit.h->name.c_str(), e.what());
      into.ok = false;
    }
  };

  if (cell_jobs <= 1) {
    std::string sink;
    for (const BenchUnit& unit : units) {
      sink.clear();
      run_unit(unit, nullptr, 0, &sink, t);
    }
  } else {
    // Enumerate for cost hints, then fan the units out exactly as
    // run_campaign's scheduler path does.
    std::vector<double> unit_costs(units.size(), 0.0);
    for (std::size_t u = 0; u < units.size(); ++u) {
      RunContext ectx(units[u].h->name, 1, "",
                      std::optional<scenario::ScenarioSpec>(*units[u].scn),
                      ContextMode::kEnumerate);
      try {
        (void)units[u].h->run(ectx);
      } catch (const std::exception&) {
        // Unprioritized is fine for a benchmark unit.
      }
      for (const CellPlan& c : ectx.plan()) unit_costs[u] += c.cost;
    }
    CellScheduler sched(cell_jobs, std::move(unit_costs));
    std::vector<std::string> sinks(units.size());
    std::vector<CampaignTiming> parts(units.size());
    std::vector<std::thread> threads;
    threads.reserve(units.size());
    for (std::size_t u = 0; u < units.size(); ++u) {
      threads.emplace_back([&, u] {
        run_unit(units[u], &sched, u, &sinks[u], parts[u]);
      });
    }
    for (std::size_t u = 0; u < units.size(); ++u) {
      threads[u].join();
      t.cells_computed += parts[u].cells_computed;
      t.cells_cached += parts[u].cells_cached;
      t.ok = t.ok && parts[u].ok;
    }
  }

  const auto t1 = std::chrono::steady_clock::now();
  t.seconds = std::chrono::duration<double>(t1 - t0).count();
  return t;
}

double cells_per_second(const CampaignTiming& t) {
  const double cells =
      static_cast<double>(t.cells_computed + t.cells_cached);
  return t.seconds > 0.0 ? cells / t.seconds : 0.0;
}

}  // namespace

int run_campaign_bench(const Options& o) {
  const bool quick = [] {
    const char* q = std::getenv("OMNIVAR_QUICK");
    return q != nullptr && q[0] == '1';
  }();

  std::vector<BenchUnit> units;
  std::vector<scenario::ScenarioSpec> scns;
  scns.reserve(std::size(kBenchScenarios));
  for (const char* name : kBenchScenarios) {
    try {
      scns.push_back(scenario::resolve(name));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[omnivar] --bench-campaign: %s\n", e.what());
      return kExitUsage;
    }
  }
  for (const char* name : kBenchHarnesses) {
    const HarnessInfo* h = Registry::instance().find(name);
    if (h == nullptr) {
      std::fprintf(stderr,
                   "[omnivar] --bench-campaign requires harness '%s' "
                   "(run it from the omnivar driver)\n",
                   name);
      return kExitUsage;
    }
    for (const auto& s : scns) units.push_back({h, &s});
  }

  // Contrast serial against the requested concurrency; when --cell-jobs
  // is unset, one worker per hardware thread (the scheduler's natural
  // scale — 1 on a single-CPU host, which measures scheduling overhead
  // parity instead of speedup).
  std::size_t cell_jobs = effective_cell_jobs(o.cell_jobs);
  if (cell_jobs <= 1) cell_jobs = resolve_jobs(0);

  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("omnivar-bench-campaign-" + std::to_string(::getpid())))
          .string();
  const std::string serial_dir = root + "/serial";
  const std::string parallel_dir = root + "/parallel";

  std::fprintf(stderr,
               "[omnivar] campaign bench: %zu units, cell-jobs %zu%s\n",
               units.size(), cell_jobs, quick ? " (quick)" : "");
  const CampaignTiming serial_cold =
      execute_campaign(units, 1, serial_dir);
  const CampaignTiming parallel_cold =
      execute_campaign(units, cell_jobs, parallel_dir);
  const CampaignTiming warm = execute_campaign(units, cell_jobs,
                                               parallel_dir);

  std::error_code ec;
  std::filesystem::remove_all(root, ec);  // best-effort cleanup

  const double speedup = parallel_cold.seconds > 0.0
                             ? serial_cold.seconds / parallel_cold.seconds
                             : 0.0;

  json::JsonWriter w;
  w.begin_object();
  w.key("schema").value("omnivar-bench-campaign-v1");
  w.key("quick").value(quick);
  w.key("host").begin_object();
  w.key("hardware_concurrency")
      .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("compiler").value(compiler_id());
  w.key("build").value(build_flavor());
  w.key("isa").value(sim::isa_name(sim::active_isa()));
  w.end_object();
  w.key("harnesses").begin_array();
  for (const char* name : kBenchHarnesses) w.value(name);
  w.end_array();
  w.key("scenarios").begin_array();
  for (const auto& s : scns) w.value(s.name);
  w.end_array();
  w.key("units").value(units.size());
  w.key("cell_jobs").value(cell_jobs);
  w.key("cells").value(serial_cold.cells_computed + serial_cold.cells_cached);
  w.key("serial_cold").begin_object();
  w.key("seconds").value(serial_cold.seconds);
  w.key("cells_computed").value(serial_cold.cells_computed);
  w.key("cells_per_second").value(cells_per_second(serial_cold));
  w.end_object();
  w.key("parallel_cold").begin_object();
  w.key("seconds").value(parallel_cold.seconds);
  w.key("cells_computed").value(parallel_cold.cells_computed);
  w.key("cells_per_second").value(cells_per_second(parallel_cold));
  w.end_object();
  w.key("warm").begin_object();
  w.key("seconds").value(warm.seconds);
  w.key("cells_cached").value(warm.cells_cached);
  w.key("cells_per_second").value(cells_per_second(warm));
  w.end_object();
  w.key("speedup").value(speedup);
  // Fraction of the pool's theoretical capacity the scheduler converted
  // into makespan reduction: 1.0 = perfect scaling, ~1/N = no scaling
  // (expected on a single-CPU host, where this documents overhead parity).
  w.key("scheduler_efficiency")
      .value(cell_jobs > 0 ? speedup / static_cast<double>(cell_jobs) : 0.0);
  w.key("ok").value(serial_cold.ok && parallel_cold.ok && warm.ok);
  w.end_object();

  const std::string out_dir = o.out_dir.empty() ? "." : o.out_dir;
  if (!o.out_dir.empty()) ensure_dir(out_dir);
  const std::string path = out_dir + "/BENCH_campaign.json";
  try {
    core::atomic_write_file(path, w.str() + "\n", "artifact");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[omnivar] cannot write %s: %s\n", path.c_str(),
                 e.what());
    return kExitHarnessFailed;
  }
  std::fprintf(stderr,
               "[omnivar] campaign bench: serial %.2fs, parallel %.2fs, "
               "warm %.2fs -> %s\n",
               serial_cold.seconds, parallel_cold.seconds, warm.seconds,
               path.c_str());
  return kExitOk;
}

}  // namespace omv::cli
